package runstore

import (
	"errors"
	"fmt"
	"io/fs"
	"strings"
	"time"
)

// Advisory per-key write claims. A claim is a `<key>.lock` file next to the
// artefact holding the claimant's name; it is taken with O_CREATE|O_EXCL
// (atomic on POSIX filesystems), so exactly one of two racing workers wins.
// Claims are advisory: Put itself stays atomic (temp file + rename) and
// never requires one, but a writer that cannot guarantee atomicity — or a
// farm that wants torn-write protection even against crashed writers —
// brackets its write with Claim/Release so a reader can tell "someone is
// mid-write" from "this artefact is whole". Staleness is the caller's
// policy: ClaimInfo exposes the claim's age and Release breaks any holder's
// claim, so a caller with a clock decides when a holder is presumed dead.

// claimPath maps a key to its advisory lock file.
func (s *Store) claimPath(key string) (string, error) {
	p, err := s.path(key)
	if err != nil {
		return "", err
	}
	return strings.TrimSuffix(p, ".json") + ".lock", nil
}

// Claim takes the advisory write claim on key for owner. ok=false means
// another owner holds it (read who and since when with ClaimInfo).
func (s *Store) Claim(key, owner string) (ok bool, err error) {
	p, err := s.claimPath(key)
	if err != nil {
		return false, err
	}
	if err := s.fsys.MkdirAll(dirOf(p), 0o755); err != nil {
		return false, fmt.Errorf("runstore: %w", err)
	}
	err = s.fsys.WriteFileExcl(p, []byte(owner))
	if err != nil {
		if errors.Is(err, fs.ErrExist) {
			return false, nil
		}
		return false, fmt.Errorf("runstore: claiming %q: %w", key, err)
	}
	return true, nil
}

// Release drops the claim on key, whoever holds it — breaking a crashed
// writer's stale claim is deliberately allowed; the caller decides
// staleness from ClaimInfo's age. Releasing an unclaimed key is a no-op.
func (s *Store) Release(key string) error {
	p, err := s.claimPath(key)
	if err != nil {
		return err
	}
	if err := s.fsys.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("runstore: releasing %q: %w", key, err)
	}
	return nil
}

// ClaimInfo reports key's current claim: the owner string and the claim
// file's modification time (its age on the caller's clock is the staleness
// signal). held=false when the key is unclaimed.
func (s *Store) ClaimInfo(key string) (owner string, since time.Time, held bool, err error) {
	p, err := s.claimPath(key)
	if err != nil {
		return "", time.Time{}, false, err
	}
	data, err := s.fsys.ReadFile(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return "", time.Time{}, false, nil
		}
		return "", time.Time{}, false, fmt.Errorf("runstore: %w", err)
	}
	fi, err := s.fsys.Stat(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return "", time.Time{}, false, nil // released between read and stat
		}
		return "", time.Time{}, false, fmt.Errorf("runstore: %w", err)
	}
	return string(data), fi.ModTime(), true, nil
}

// BreakClaim removes key's claim only if it is still the exact claim the
// caller observed: same owner and same modification time as a prior
// ClaimInfo read. It returns broken=false — and removes nothing — when the
// claim has changed hands (the observed holder released and another owner
// claimed afresh) or vanished. Unconditional Release cannot make that
// distinction, which is how a staleness-based break could destroy a fresh
// live claim; BreakClaim narrows the window to the re-check itself.
func (s *Store) BreakClaim(key, owner string, since time.Time) (broken bool, err error) {
	p, err := s.claimPath(key)
	if err != nil {
		return false, err
	}
	cur, curSince, held, err := s.ClaimInfo(key)
	if err != nil {
		return false, err
	}
	if !held || cur != owner || !curSince.Equal(since) {
		return false, nil
	}
	if err := s.fsys.Remove(p); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return false, nil // released between the re-check and the remove
		}
		return false, fmt.Errorf("runstore: breaking claim on %q: %w", key, err)
	}
	return true, nil
}
