package runstore

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestClaimExclusive(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("cell"))

	ok, err := s.Claim(key, "w0")
	if err != nil || !ok {
		t.Fatalf("first claim: ok=%v err=%v", ok, err)
	}
	// Exactly one of two claimants wins; the loser learns who holds it.
	ok, err = s.Claim(key, "w1")
	if err != nil || ok {
		t.Fatalf("second claim should lose: ok=%v err=%v", ok, err)
	}
	owner, since, held, err := s.ClaimInfo(key)
	if err != nil || !held || owner != "w0" {
		t.Fatalf("ClaimInfo: owner=%q held=%v err=%v", owner, held, err)
	}
	if since.IsZero() || time.Since(since) > time.Minute {
		t.Fatalf("claim age implausible: since=%v", since)
	}
	// Release frees it for the next claimant.
	if err := s.Release(key); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Claim(key, "w1"); err != nil || !ok {
		t.Fatalf("claim after release: ok=%v err=%v", ok, err)
	}
}

func TestClaimBreakStale(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("cell"))
	if ok, _ := s.Claim(key, "crashed-worker"); !ok {
		t.Fatal("claim failed")
	}
	// A different worker decides the holder is dead and breaks the claim —
	// Release is deliberately not owner-checked.
	if err := s.Release(key); err != nil {
		t.Fatal(err)
	}
	if _, _, held, err := s.ClaimInfo(key); err != nil || held {
		t.Fatalf("claim survived the break: held=%v err=%v", held, err)
	}
	if ok, err := s.Claim(key, "w1"); err != nil || !ok {
		t.Fatalf("claim after break: ok=%v err=%v", ok, err)
	}
}

func TestClaimReleaseUnclaimedIsNoop(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(Key([]byte("never-claimed"))); err != nil {
		t.Fatalf("releasing an unclaimed key: %v", err)
	}
	if _, _, held, err := s.ClaimInfo(Key([]byte("never-claimed"))); err != nil || held {
		t.Fatalf("unclaimed key reported held: held=%v err=%v", held, err)
	}
}

func TestClaimRejectsMalformedKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", "../../../../etc/passwd"} {
		if _, err := s.Claim(bad, "w"); err == nil {
			t.Errorf("Claim(%q) accepted malformed key", bad)
		}
		if err := s.Release(bad); err == nil {
			t.Errorf("Release(%q) accepted malformed key", bad)
		}
		if _, _, _, err := s.ClaimInfo(bad); err == nil {
			t.Errorf("ClaimInfo(%q) accepted malformed key", bad)
		}
	}
}

func TestClaimCoexistsWithArtifact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("cell"))
	if err := s.Put(key, []byte("artefact")); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Claim(key, "w0"); err != nil || !ok {
		t.Fatalf("claim next to artefact: ok=%v err=%v", ok, err)
	}
	// The lock file sits next to the artefact and is not counted by Len.
	if _, err := os.Stat(filepath.Join(dir, key[:2], key+".lock")); err != nil {
		t.Fatalf("lock file not at expected path: %v", err)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len counted the lock file: %d, %v", n, err)
	}
	if err := s.Release(key); err != nil {
		t.Fatal(err)
	}
	if data, ok, err := s.Get(key); err != nil || !ok || string(data) != "artefact" {
		t.Fatalf("artefact damaged by claim cycle: %q ok=%v err=%v", data, ok, err)
	}
}

// crashFS kills a writer mid-Put, as a process death would: after budget
// bytes have reached the temp file, every later operation silently does
// nothing — no error-path cleanup runs, the temp debris stays, the rename
// never happens. budget < 0 means crash at the rename itself (full temp
// file written, artefact never linked in).
type crashFS struct {
	real    osFS
	budget  int
	crashed bool
}

type crashFile struct {
	fsys *crashFS
	f    fileHandle
}

func (c *crashFS) MkdirAll(dir string, perm fs.FileMode) error {
	if c.crashed {
		return nil
	}
	return c.real.MkdirAll(dir, perm)
}

func (c *crashFS) CreateTemp(dir, pattern string) (fileHandle, error) {
	f, err := c.real.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &crashFile{fsys: c, f: f}, nil
}

func (c *crashFS) Rename(oldpath, newpath string) error {
	if c.crashed || c.budget < 0 {
		c.crashed = true
		return nil // the process died; the rename never reached the kernel
	}
	return c.real.Rename(oldpath, newpath)
}

func (c *crashFS) Remove(name string) error {
	if c.crashed {
		return nil // no cleanup path runs in a dead process
	}
	return c.real.Remove(name)
}

func (c *crashFS) WriteFileExcl(name string, data []byte) error {
	if c.crashed {
		return nil
	}
	return c.real.WriteFileExcl(name, data)
}

func (f *crashFile) Write(p []byte) (int, error) {
	if f.fsys.crashed {
		return len(p), nil
	}
	if f.fsys.budget >= 0 && len(p) > f.fsys.budget {
		// The crash instant: only the first budget bytes ever hit the disk.
		_, _ = f.f.Write(p[:f.fsys.budget])
		f.fsys.crashed = true
		return len(p), nil // a dead process reports nothing; Put proceeds into no-ops
	}
	if f.fsys.budget >= 0 {
		f.fsys.budget -= len(p)
	}
	return f.f.Write(p)
}

func (f *crashFile) Close() error {
	if f.fsys.crashed {
		return nil
	}
	return f.f.Close()
}

func (f *crashFile) Name() string { return f.f.Name() }

// TestStoreCrashMidWriteAtEveryOffset kills the writer at every byte offset
// of the artefact — plus at the rename itself — and proves the store never
// exposes a torn artefact and always accepts a retry.
func TestStoreCrashMidWriteAtEveryOffset(t *testing.T) {
	data := []byte(`{"delivered":42,"schema":3,"tail":"intact"}`)
	for offset := 0; offset <= len(data); offset++ {
		budget := offset
		name := fmt.Sprintf("offset=%d", offset)
		if offset == len(data) {
			budget = -1 // full write, crash at the rename
			name = "crash-at-rename"
		}
		t.Run(name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := Key([]byte("cell"))
			s.fsys = &crashFS{budget: budget}
			_ = s.Put(key, data) // the writer dies somewhere inside

			// Nothing torn is ever visible: the key reads as absent.
			if got, ok, err := s.Get(key); err != nil || ok {
				t.Fatalf("torn artefact visible after crash: %q ok=%v err=%v", got, ok, err)
			}
			if n, err := s.Len(); err != nil || n != 0 {
				t.Fatalf("Len sees crash debris: %d, %v", n, err)
			}

			// A reincarnated writer repairs the key over the debris.
			s.fsys = osFS{}
			if err := s.Put(key, data); err != nil {
				t.Fatalf("Put after crash: %v", err)
			}
			got, ok, err := s.Get(key)
			if err != nil || !ok || string(got) != string(data) {
				t.Fatalf("after repair: %q ok=%v err=%v", got, ok, err)
			}
		})
	}
}
