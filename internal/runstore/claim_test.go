package runstore

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestClaimExclusive(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("cell"))

	ok, err := s.Claim(key, "w0")
	if err != nil || !ok {
		t.Fatalf("first claim: ok=%v err=%v", ok, err)
	}
	// Exactly one of two claimants wins; the loser learns who holds it.
	ok, err = s.Claim(key, "w1")
	if err != nil || ok {
		t.Fatalf("second claim should lose: ok=%v err=%v", ok, err)
	}
	owner, since, held, err := s.ClaimInfo(key)
	if err != nil || !held || owner != "w0" {
		t.Fatalf("ClaimInfo: owner=%q held=%v err=%v", owner, held, err)
	}
	if since.IsZero() || time.Since(since) > time.Minute {
		t.Fatalf("claim age implausible: since=%v", since)
	}
	// Release frees it for the next claimant.
	if err := s.Release(key); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Claim(key, "w1"); err != nil || !ok {
		t.Fatalf("claim after release: ok=%v err=%v", ok, err)
	}
}

func TestClaimBreakStale(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("cell"))
	if ok, _ := s.Claim(key, "crashed-worker"); !ok {
		t.Fatal("claim failed")
	}
	// A different worker decides the holder is dead and breaks the claim —
	// Release is deliberately not owner-checked.
	if err := s.Release(key); err != nil {
		t.Fatal(err)
	}
	if _, _, held, err := s.ClaimInfo(key); err != nil || held {
		t.Fatalf("claim survived the break: held=%v err=%v", held, err)
	}
	if ok, err := s.Claim(key, "w1"); err != nil || !ok {
		t.Fatalf("claim after break: ok=%v err=%v", ok, err)
	}
}

func TestClaimReleaseUnclaimedIsNoop(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(Key([]byte("never-claimed"))); err != nil {
		t.Fatalf("releasing an unclaimed key: %v", err)
	}
	if _, _, held, err := s.ClaimInfo(Key([]byte("never-claimed"))); err != nil || held {
		t.Fatalf("unclaimed key reported held: held=%v err=%v", held, err)
	}
}

func TestClaimRejectsMalformedKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", "../../../../etc/passwd"} {
		if _, err := s.Claim(bad, "w"); err == nil {
			t.Errorf("Claim(%q) accepted malformed key", bad)
		}
		if err := s.Release(bad); err == nil {
			t.Errorf("Release(%q) accepted malformed key", bad)
		}
		if _, _, _, err := s.ClaimInfo(bad); err == nil {
			t.Errorf("ClaimInfo(%q) accepted malformed key", bad)
		}
	}
}

func TestClaimCoexistsWithArtifact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("cell"))
	if err := s.Put(key, []byte("artefact")); err != nil {
		t.Fatal(err)
	}
	if ok, err := s.Claim(key, "w0"); err != nil || !ok {
		t.Fatalf("claim next to artefact: ok=%v err=%v", ok, err)
	}
	// The lock file sits next to the artefact and is not counted by Len.
	if _, err := os.Stat(filepath.Join(dir, key[:2], key+".lock")); err != nil {
		t.Fatalf("lock file not at expected path: %v", err)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len counted the lock file: %d, %v", n, err)
	}
	if err := s.Release(key); err != nil {
		t.Fatal(err)
	}
	if data, ok, err := s.Get(key); err != nil || !ok || string(data) != "artefact" {
		t.Fatalf("artefact damaged by claim cycle: %q ok=%v err=%v", data, ok, err)
	}
}

// probeFS wraps the real filesystem, counting claim-inspection calls and
// optionally failing them — the seam ClaimInfo must flow through for the
// fault harness to reach it.
type probeFS struct {
	real         osFS
	reads, stats int
	failRead     error
	failStat     error
}

func (p *probeFS) MkdirAll(dir string, perm fs.FileMode) error { return p.real.MkdirAll(dir, perm) }
func (p *probeFS) CreateTemp(dir, pattern string) (fileHandle, error) {
	return p.real.CreateTemp(dir, pattern)
}
func (p *probeFS) Rename(oldpath, newpath string) error { return p.real.Rename(oldpath, newpath) }
func (p *probeFS) Remove(name string) error             { return p.real.Remove(name) }
func (p *probeFS) WriteFileExcl(name string, data []byte) error {
	return p.real.WriteFileExcl(name, data)
}
func (p *probeFS) ReadFile(name string) ([]byte, error) {
	p.reads++
	if p.failRead != nil {
		return nil, p.failRead
	}
	return p.real.ReadFile(name)
}
func (p *probeFS) Stat(name string) (fs.FileInfo, error) {
	p.stats++
	if p.failStat != nil {
		return nil, p.failStat
	}
	return p.real.Stat(name)
}

// TestClaimInfoRoutesThroughFS is the regression lock for the injectable-fs
// bypass: ClaimInfo used to call os.ReadFile/os.Stat directly, so injected
// filesystem faults (and the crash harness) never reached it. Every read it
// performs must flow through the store's fsys, and an injected failure must
// surface as ClaimInfo's error.
func TestClaimInfoRoutesThroughFS(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("cell"))
	if ok, _ := s.Claim(key, "w0"); !ok {
		t.Fatal("claim failed")
	}
	probe := &probeFS{}
	s.fsys = probe
	owner, _, held, err := s.ClaimInfo(key)
	if err != nil || !held || owner != "w0" {
		t.Fatalf("ClaimInfo through probe: owner=%q held=%v err=%v", owner, held, err)
	}
	if probe.reads != 1 || probe.stats != 1 {
		t.Fatalf("ClaimInfo bypassed fsys: reads=%d stats=%d, want 1/1", probe.reads, probe.stats)
	}
	probe.failRead = fmt.Errorf("injected read fault")
	if _, _, _, err := s.ClaimInfo(key); err == nil || !strings.Contains(err.Error(), "injected read fault") {
		t.Fatalf("injected read fault did not surface: %v", err)
	}
	probe.failRead = nil
	probe.failStat = fmt.Errorf("injected stat fault")
	if _, _, _, err := s.ClaimInfo(key); err == nil || !strings.Contains(err.Error(), "injected stat fault") {
		t.Fatalf("injected stat fault did not surface: %v", err)
	}
}

// TestBreakClaimBreaksObservedStaleClaim: the legitimate break — the claim
// is exactly the one the breaker observed going stale.
func TestBreakClaimBreaksObservedStaleClaim(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("cell"))
	if ok, _ := s.Claim(key, "crashed-worker"); !ok {
		t.Fatal("claim failed")
	}
	// Age the claim two hours, as a crashed holder's lock would.
	lock := filepath.Join(dir, key[:2], key+".lock")
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	owner, since, held, err := s.ClaimInfo(key)
	if err != nil || !held || owner != "crashed-worker" {
		t.Fatalf("ClaimInfo: owner=%q held=%v err=%v", owner, held, err)
	}
	broken, err := s.BreakClaim(key, owner, since)
	if err != nil || !broken {
		t.Fatalf("BreakClaim(observed stale) = %v, %v; want broken", broken, err)
	}
	if _, _, held, _ := s.ClaimInfo(key); held {
		t.Fatal("claim survived the break")
	}
	if ok, err := s.Claim(key, "w1"); err != nil || !ok {
		t.Fatalf("claim after break: ok=%v err=%v", ok, err)
	}
}

// TestBreakClaimRefusesFreshClaim is the TOCTOU regression: between the
// breaker's ClaimInfo and its break, the stale holder releases and another
// worker takes a *fresh* claim. An unconditional Release would destroy that
// live claim mid-write; BreakClaim must refuse because owner/mtime no longer
// match what the breaker observed.
func TestBreakClaimRefusesFreshClaim(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("cell"))
	if ok, _ := s.Claim(key, "slow-holder"); !ok {
		t.Fatal("claim failed")
	}
	lock := filepath.Join(dir, key[:2], key+".lock")
	old := time.Now().Add(-2 * time.Hour)
	if err := os.Chtimes(lock, old, old); err != nil {
		t.Fatal(err)
	}
	// The breaker observes the stale claim...
	owner, since, held, err := s.ClaimInfo(key)
	if err != nil || !held {
		t.Fatalf("ClaimInfo: held=%v err=%v", held, err)
	}
	// ...and in the race window the holder releases and w9 claims afresh.
	if err := s.Release(key); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Claim(key, "w9"); !ok {
		t.Fatal("fresh claim failed")
	}
	broken, err := s.BreakClaim(key, owner, since)
	if err != nil || broken {
		t.Fatalf("BreakClaim destroyed a fresh claim: broken=%v err=%v", broken, err)
	}
	cur, _, held, err := s.ClaimInfo(key)
	if err != nil || !held || cur != "w9" {
		t.Fatalf("fresh claim damaged: owner=%q held=%v err=%v", cur, held, err)
	}
	// Same owner re-claiming also counts as fresh: mtime differs.
	if err := s.Release(key); err != nil {
		t.Fatal(err)
	}
	if ok, _ := s.Claim(key, "slow-holder"); !ok {
		t.Fatal("re-claim failed")
	}
	if broken, err := s.BreakClaim(key, "slow-holder", since); err != nil || broken {
		t.Fatalf("BreakClaim matched a re-claim by mtime: broken=%v err=%v", broken, err)
	}
	// Breaking a vanished claim is a quiet no-op.
	if err := s.Release(key); err != nil {
		t.Fatal(err)
	}
	if broken, err := s.BreakClaim(key, owner, since); err != nil || broken {
		t.Fatalf("BreakClaim on unclaimed key: broken=%v err=%v", broken, err)
	}
	// Malformed keys are rejected like the other claim calls.
	if _, err := s.BreakClaim("short", "w", time.Time{}); err == nil {
		t.Error("BreakClaim accepted malformed key")
	}
}

// crashFS kills a writer mid-Put, as a process death would: after budget
// bytes have reached the temp file, every later operation silently does
// nothing — no error-path cleanup runs, the temp debris stays, the rename
// never happens. budget < 0 means crash at the rename itself (full temp
// file written, artefact never linked in).
type crashFS struct {
	real    osFS
	budget  int
	crashed bool
}

type crashFile struct {
	fsys *crashFS
	f    fileHandle
}

func (c *crashFS) MkdirAll(dir string, perm fs.FileMode) error {
	if c.crashed {
		return nil
	}
	return c.real.MkdirAll(dir, perm)
}

func (c *crashFS) CreateTemp(dir, pattern string) (fileHandle, error) {
	f, err := c.real.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &crashFile{fsys: c, f: f}, nil
}

func (c *crashFS) Rename(oldpath, newpath string) error {
	if c.crashed || c.budget < 0 {
		c.crashed = true
		return nil // the process died; the rename never reached the kernel
	}
	return c.real.Rename(oldpath, newpath)
}

func (c *crashFS) Remove(name string) error {
	if c.crashed {
		return nil // no cleanup path runs in a dead process
	}
	return c.real.Remove(name)
}

func (c *crashFS) WriteFileExcl(name string, data []byte) error {
	if c.crashed {
		return nil
	}
	return c.real.WriteFileExcl(name, data)
}

func (c *crashFS) ReadFile(name string) ([]byte, error) {
	if c.crashed {
		return nil, fs.ErrNotExist // a dead process reads nothing
	}
	return c.real.ReadFile(name)
}

func (c *crashFS) Stat(name string) (fs.FileInfo, error) {
	if c.crashed {
		return nil, fs.ErrNotExist
	}
	return c.real.Stat(name)
}

func (f *crashFile) Write(p []byte) (int, error) {
	if f.fsys.crashed {
		return len(p), nil
	}
	if f.fsys.budget >= 0 && len(p) > f.fsys.budget {
		// The crash instant: only the first budget bytes ever hit the disk.
		_, _ = f.f.Write(p[:f.fsys.budget])
		f.fsys.crashed = true
		return len(p), nil // a dead process reports nothing; Put proceeds into no-ops
	}
	if f.fsys.budget >= 0 {
		f.fsys.budget -= len(p)
	}
	return f.f.Write(p)
}

func (f *crashFile) Close() error {
	if f.fsys.crashed {
		return nil
	}
	return f.f.Close()
}

func (f *crashFile) Name() string { return f.f.Name() }

// TestStoreCrashMidWriteAtEveryOffset kills the writer at every byte offset
// of the artefact — plus at the rename itself — and proves the store never
// exposes a torn artefact and always accepts a retry.
func TestStoreCrashMidWriteAtEveryOffset(t *testing.T) {
	data := []byte(`{"delivered":42,"schema":3,"tail":"intact"}`)
	for offset := 0; offset <= len(data); offset++ {
		budget := offset
		name := fmt.Sprintf("offset=%d", offset)
		if offset == len(data) {
			budget = -1 // full write, crash at the rename
			name = "crash-at-rename"
		}
		t.Run(name, func(t *testing.T) {
			s, err := Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			key := Key([]byte("cell"))
			s.fsys = &crashFS{budget: budget}
			_ = s.Put(key, data) // the writer dies somewhere inside

			// Nothing torn is ever visible: the key reads as absent.
			if got, ok, err := s.Get(key); err != nil || ok {
				t.Fatalf("torn artefact visible after crash: %q ok=%v err=%v", got, ok, err)
			}
			if n, err := s.Len(); err != nil || n != 0 {
				t.Fatalf("Len sees crash debris: %d, %v", n, err)
			}

			// A reincarnated writer repairs the key over the debris.
			s.fsys = osFS{}
			if err := s.Put(key, data); err != nil {
				t.Fatalf("Put after crash: %v", err)
			}
			got, ok, err := s.Get(key)
			if err != nil || !ok || string(got) != string(data) {
				t.Fatalf("after repair: %q ok=%v err=%v", got, ok, err)
			}
		})
	}
}
