package runstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestKeyDeterministic(t *testing.T) {
	a := Key([]byte("config-1"))
	b := Key([]byte("config-1"))
	c := Key([]byte("config-2"))
	if a != b {
		t.Fatal("same canonical bytes hashed differently")
	}
	if a == c {
		t.Fatal("different canonical bytes collided")
	}
	if len(a) != 64 {
		t.Fatalf("key length %d, want 64 hex chars", len(a))
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("cell"))

	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("empty store Get: ok=%v err=%v", ok, err)
	}
	if err := s.Put(key, []byte(`{"delivered":42}`)); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if string(data) != `{"delivered":42}` {
		t.Fatalf("data = %q", data)
	}

	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
}

func TestStoreLayoutFanOut(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("x"))
	if err := s.Put(key, []byte("data")); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, key[:2], key+".json")
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("artefact not at two-level fan-out path: %v", err)
	}
}

func TestStoreRejectsMalformedKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", "../../../../etc/passwd", Key([]byte("x"))[:63] + "Z"} {
		if _, _, err := s.Get(bad); err == nil {
			t.Errorf("Get(%q) accepted malformed key", bad)
		}
		if err := s.Put(bad, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted malformed key", bad)
		}
	}
}

func TestStoreSurvivesPartialWriteDebris(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("cell"))
	// Simulate a killed writer: a stray temp file in the bucket dir.
	bucket := filepath.Join(dir, key[:2])
	if err := os.MkdirAll(bucket, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(bucket, "."+key[:8]+"-dead.tmp"), []byte("trunc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Get(key); err != nil || ok {
		t.Fatalf("debris visible as artefact: ok=%v err=%v", ok, err)
	}
	if err := s.Put(key, []byte("good")); err != nil {
		t.Fatal(err)
	}
	data, ok, err := s.Get(key)
	if err != nil || !ok || string(data) != "good" {
		t.Fatalf("after debris: %q ok=%v err=%v", data, ok, err)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len counted debris: %d, %v", n, err)
	}
}

func TestStoreConcurrentSameKey(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key([]byte("hot-cell"))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Content-addressed: every writer of a key writes identical
			// bytes, so racing renames are benign.
			if err := s.Put(key, []byte("same-content")); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	data, ok, err := s.Get(key)
	if err != nil || !ok || string(data) != "same-content" {
		t.Fatalf("after concurrent puts: %q ok=%v err=%v", data, ok, err)
	}
}

func TestStoreManyKeys(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := s.Put(Key([]byte(fmt.Sprintf("cell-%d", i))), []byte(fmt.Sprintf("%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		data, ok, err := s.Get(Key([]byte(fmt.Sprintf("cell-%d", i))))
		if err != nil || !ok || string(data) != fmt.Sprintf("%d", i) {
			t.Fatalf("cell %d: %q ok=%v err=%v", i, data, ok, err)
		}
	}
	if got, err := s.Len(); err != nil || got != n {
		t.Fatalf("Len = %d, %v", got, err)
	}
}
