// Package runstore is a content-addressed on-disk store for simulation run
// artefacts. Artefacts are keyed by the SHA-256 of a canonical description
// of what produced them (configuration + seed + an encoding schema version),
// so a sweep that re-encounters a (config, seed) cell it has already
// computed loads the stored result instead of re-simulating, and an
// interrupted sweep resumes from whatever its previous invocations persisted.
//
// Layout: <dir>/<key[:2]>/<key>.json — two-level fan-out keeps directories
// small for million-cell sweep grids. Writes go through a temp file in the
// same directory followed by an atomic rename, so a killed sweep never
// leaves a truncated artefact behind; concurrent writers of the same key
// both write the same content (keys are deterministic), so last-rename-wins
// is safe.
//
// Cache invalidation is the caller's contract: the key must hash everything
// that determines the artefact's bytes — every semantic config field, the
// seed, and a schema/semantics version that the caller bumps whenever the
// simulator's behaviour or the artefact encoding changes. The store itself
// never expires entries; delete the directory to flush it.
package runstore

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"
)

// fsOps is the slice of the filesystem the store's write path uses. It is
// injectable so the crash tests can kill a write at any byte offset and
// prove the store never exposes a torn artefact; production uses osFS.
type fsOps interface {
	MkdirAll(dir string, perm fs.FileMode) error
	// CreateTemp opens an exclusive temp file in dir for the atomic-write
	// dance.
	CreateTemp(dir, pattern string) (fileHandle, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	// WriteFileExcl creates name with data, failing with fs.ErrExist if
	// it already exists (the advisory-claim primitive).
	WriteFileExcl(name string, data []byte) error
	// ReadFile reads name whole (the claim-inspection primitive).
	ReadFile(name string) ([]byte, error)
	// Stat reports name's metadata (a claim's mtime is its age signal).
	Stat(name string) (fs.FileInfo, error)
}

// fileHandle is the writable temp-file surface Put needs.
type fileHandle interface {
	io.WriteCloser
	Name() string
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }
func (osFS) CreateTemp(dir, pattern string) (fileHandle, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) WriteFileExcl(name string, data []byte) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil {
		os.Remove(name)
		return werr
	}
	if cerr != nil {
		os.Remove(name)
		return cerr
	}
	return nil
}
func (osFS) ReadFile(name string) ([]byte, error)  { return os.ReadFile(name) }
func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

// dirOf is filepath.Dir, named for the claim path helper.
func dirOf(p string) string { return filepath.Dir(p) }

// Key returns the store key for a canonical artefact description: the
// SHA-256 hex digest of the bytes. Callers are responsible for making the
// description canonical (deterministic field order, no environment-dependent
// content).
func Key(canonical []byte) string {
	sum := sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])
}

// Stats counts store traffic since Open.
type Stats struct {
	// Hits counts Get calls that found an artefact.
	Hits uint64
	// Misses counts Get calls that found nothing.
	Misses uint64
	// Puts counts successfully persisted artefacts.
	Puts uint64
}

// Store is a content-addressed artefact directory. Safe for concurrent use
// by multiple goroutines (sweep workers) and cooperating processes.
type Store struct {
	dir    string
	fsys   fsOps
	hits   atomic.Uint64
	misses atomic.Uint64
	puts   atomic.Uint64
}

// Open ensures dir exists and returns a store rooted there.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("runstore: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runstore: %w", err)
	}
	return &Store{dir: dir, fsys: osFS{}}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path maps a key to its artefact file.
func (s *Store) path(key string) (string, error) {
	if len(key) != sha256.Size*2 {
		return "", fmt.Errorf("runstore: malformed key %q", key)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return "", fmt.Errorf("runstore: malformed key %q", key)
		}
	}
	return filepath.Join(s.dir, key[:2], key+".json"), nil
}

// Get returns the artefact stored under key, reporting ok=false (and no
// error) when the key has never been stored.
func (s *Store) Get(key string) (data []byte, ok bool, err error) {
	p, err := s.path(key)
	if err != nil {
		return nil, false, err
	}
	data, err = os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			s.misses.Add(1)
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("runstore: %w", err)
	}
	s.hits.Add(1)
	return data, true, nil
}

// Put persists data under key atomically (temp file + rename).
func (s *Store) Put(key string, data []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := s.fsys.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	tmp, err := s.fsys.CreateTemp(dir, "."+key[:8]+"-*.tmp")
	if err != nil {
		return fmt.Errorf("runstore: %w", err)
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		s.fsys.Remove(tmp.Name())
		if werr == nil {
			werr = cerr
		}
		return fmt.Errorf("runstore: %w", werr)
	}
	if err := s.fsys.Rename(tmp.Name(), p); err != nil {
		s.fsys.Remove(tmp.Name())
		return fmt.Errorf("runstore: %w", err)
	}
	s.puts.Add(1)
	return nil
}

// Stats returns traffic counters since Open.
func (s *Store) Stats() Stats {
	return Stats{Hits: s.hits.Load(), Misses: s.misses.Load(), Puts: s.puts.Load()}
}

// Len walks the store and returns the number of persisted artefacts.
func (s *Store) Len() (int, error) {
	n := 0
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("runstore: %w", err)
	}
	return n, nil
}
