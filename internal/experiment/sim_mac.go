package experiment

import (
	"time"

	"mlorass/internal/lorawan"
	"mlorass/internal/mac"
	"mlorass/internal/netserver"
	"mlorass/internal/radio"
)

// This file is the simulator side of the MAC subsystem (Config.MAC): the
// first bidirectional traffic in the reproduction. Uplinks decoded at a
// gateway feed the network server's ADR controller; confirmed uplinks and
// pending LinkADRReq commands are answered by gateway downlinks placed into
// the Class-A RX1/RX2 windows under a per-gateway duty budget, transmitted
// on the same shared medium as the uplinks (so downlink airtime interferes
// with uplink traffic, as on a real single-channel deployment). Every entry
// point below is reached only when cfg.MAC.Enabled(): a zero-valued MAC
// config schedules no events, draws no random numbers, and leaves the run
// byte-identical to the paper's uplink-only model.

// setupMAC assembles the MAC control plane: per-DR PHY tables, the downlink
// airtime cache, the network server's ADR controller and per-gateway
// downlink scheduler.
func (s *sim) setupMAC() error {
	s.macOn = true
	s.confirmed = s.cfg.MAC.Confirmed
	for dr := 0; dr < lorawan.NumDataRates; dr++ {
		s.phyByDR[dr] = radio.DefaultPHY(lorawan.DataRate(dr).SF())
		// Downlink airtimes per data rate, without and with a piggybacked
		// LinkADRReq.
		s.dlAirTbl[dr][0] = s.phyByDR[dr].Airtime(lorawan.DownlinkBytes(false))
		s.dlAirTbl[dr][1] = s.phyByDR[dr].Airtime(lorawan.DownlinkBytes(true))
	}
	s.noiseFloor = radio.NoiseFloorDBm(s.phy.BandwidthHz)
	// Resolved by Normalize: 0 selected the device power.
	s.gwTxPowDBm = radio.DBm(s.cfg.MAC.DownlinkTxPowerDBm)

	var ctrl *mac.Controller
	if s.cfg.MAC.ADR {
		var err error
		ctrl, err = mac.NewController(mac.ADRConfig{
			MarginDB:   radio.DB(s.cfg.MAC.ADRMarginDB),
			HistoryLen: s.cfg.MAC.ADRHistory,
			StepDB:     3,
			MinHistory: s.cfg.MAC.ADRMinHistory,
		}, s.fleet.Len())
		if err != nil {
			return err
		}
	}
	sched, err := mac.NewScheduler(len(s.gws), s.cfg.MAC.DownlinkDutyCycle)
	if err != nil {
		return err
	}
	s.server.AttachMAC(&netserver.MAC{ADR: ctrl, Sched: sched})
	return nil
}

// uplinkPHY returns the PHY parameters the device's next uplink uses: the
// fixed configured SF without the MAC, the device's ADR data rate with it.
func (s *sim) uplinkPHY(d *device) *radio.PHYParams {
	if s.macOn {
		return &s.phyByDR[d.dr]
	}
	return &s.phy
}

// rxTiming returns the receive-window timing for a downlink answering one of
// d's uplinks. When ADR is on, every downlink budgets the full ack+command
// frame, so window selection never depends on the controller's decision.
func (s *sim) rxTiming(d *device) netserver.RxTiming {
	withCmd := 0
	if s.cfg.MAC.ADR {
		withCmd = 1
	}
	return netserver.RxTiming{
		RX1Delay: s.cfg.MAC.RX1Delay,
		RX2Delay: s.cfg.MAC.RX2Delay,
		// RX1 answers on the uplink data rate, RX2 on the fixed fallback.
		RX1Air: s.dlAirTbl[d.dr][withCmd],
		RX2Air: s.dlAirTbl[lorawan.DefaultRX2DataRate][withCmd],
	}
}

// macUplink runs the MAC reaction to one of d's uplinks decoded by gateway
// gw at instant now (the uplink's end): the network server observes the SNR,
// may issue an ADR command, and schedules the ack/command downlink. For
// confirmed traffic the device then waits for the ack — the bundle stays
// parked in pendFrame until the ack arrives or the window closes; for
// unconfirmed traffic the uplink completes immediately, exactly like the
// paper's instant-ack model.
func (s *sim) macUplink(d *device, gw int, rssi radio.DBm, now time.Duration) {
	snr := rssi.Sub(s.noiseFloor)
	plan, ok := s.server.MAC().OnUplink(
		d.id, gw, snr, d.dr, d.txPowIdx, s.confirmed, now, s.rxTiming(d))
	// ok is false both when no downlink is due (unconfirmed, no pending
	// command) and when the gateway's duty budget had no open window; the
	// scheduler's own stats count the true drops, reconciled into the
	// telemetry snapshot by collect. A dropped ack means the device times
	// out and retransmits an already-delivered bundle — a duplicate the
	// server deduplicates, the cost of a congested downlink budget.
	if ok {
		s.sendDownlink(d, plan)
	}
	if !s.confirmed {
		s.uplinkAcked(d)
		return
	}
	d.awaitingAck = true
	// The ack window closes once RX2's frame could no longer be on the
	// air; one extra millisecond keeps the timeout strictly after any
	// RX2 resolution at equal instants.
	deadline := now + s.cfg.MAC.RX2Delay + s.rxTiming(d).RX2Air + time.Millisecond
	h, err := s.es.At(deadline, d.ackTimeoutFn)
	if err != nil {
		// Unreachable for a positive deadline; fail open to the
		// unconfirmed behaviour rather than wedging the device.
		d.awaitingAck = false
		s.uplinkAcked(d)
		return
	}
	d.ackTimeoutH = h
}

// uplinkAcked finalises a successful uplink: the contact observation, retry
// reset, forwarding-state clears, and backlog continuation shared by the
// paper's instant ack, the unconfirmed MAC path, and a received ack
// downlink.
func (s *sim) uplinkAcked(d *device) {
	d.acked = true
	d.attempts = 0
	d.fwdTarget = -1
	// Next sink contact reached: the no-send-back bans lift.
	d.noSendBack = d.noSendBack[:0]
	s.scheduleNextAttempt(d)
}

// sendDownlink puts a planned gateway downlink on the shared medium and arms
// its resolution event. Gateway transmitter ids are negative (-1-gw) so the
// medium's same-sender overlap skip never aliases a device id. Replacing a
// still-pending downlink is deliberate (freshest wins — see resolveDownlink);
// the replaced frame stays on the medium as interference but is never
// decoded.
func (s *sim) sendDownlink(d *device, plan netserver.DownlinkPlan) {
	tx := s.medium.Begin(-1-plan.Gateway, s.gws[plan.Gateway], s.gwTxPowDBm,
		plan.Start, plan.Start+plan.AirTime, nil)
	d.dlTx = tx
	d.dlAck = plan.Ack
	d.dlCmd = plan.Cmd
	d.dlHasCmd = plan.HasCmd
	s.downlinks++
	s.rec.AddDownlink()
	if _, err := s.es.At(plan.Start+plan.AirTime, d.dlFn); err != nil {
		d.dlTx = nil // unreachable for future instants
	}
}

// resolveDownlink completes a gateway downlink at its end-of-air instant:
// the device decodes it if it is alive, in gateway range, not transmitting,
// and the shared-medium reception (collisions with uplink traffic included)
// succeeds. A lost downlink is simply not received — the ack timeout or a
// later ADR command retry recovers it.
//
// A resolution whose instant does not match the pending transmission's end
// is stale: at generous uplink duty cycles an unconfirmed device can uplink
// again before its previous downlink lands, and sendDownlink then replaces
// the pending downlink (the device radio could never decode two anyway).
// The replaced downlink's event must not resolve the replacement early —
// medium.Receive is only valid at a transmission's own end.
func (s *sim) resolveDownlink(d *device, end time.Duration) {
	tx := d.dlTx
	if tx == nil || tx.End != end {
		return
	}
	d.dlTx = nil
	pos, ok := s.devPos(d, end)
	if !ok || d.busy || d.failed || tx.Pos.Dist(pos) > s.cfg.GatewayRangeM ||
		!s.medium.Receive(tx, pos).OK() {
		return
	}
	s.downlinkDeliveries++
	s.rec.AddDownlinkDelivery()
	if d.dlHasCmd {
		if ans := d.dlCmd.Apply(); ans.Accepted() {
			if adr := s.server.MAC().ADR; adr != nil && d.dlCmd.DataRate != d.dr {
				// SNR samples measured at the old data rate must not
				// drive the next decision.
				adr.Reset(d.id)
			}
			d.dr = d.dlCmd.DataRate
			d.txPowIdx = d.dlCmd.TxPowerIndex
			// The TXPower ladder is anchored at the configured baseline
			// power: index 0 reproduces the fixed-power paper setting.
			d.txPowDBm = lorawan.TxPowerDBm(radio.DBm(s.cfg.TxPowerDBm), d.txPowIdx)
			s.adrApplied++
			s.rec.AddADRApplied()
		}
	}
	if d.dlAck {
		s.ackReceived(d)
	}
}

// ackReceived closes a confirmed uplink successfully.
func (s *sim) ackReceived(d *device) {
	if !d.awaitingAck {
		return
	}
	d.awaitingAck = false
	s.es.Cancel(d.ackTimeoutH)
	s.uplinkAcked(d)
}

// ackTimeout fires when a confirmed uplink's ack window closes unanswered:
// the bundle returns to the queue head and the device retransmits after the
// LoRaWAN ack backoff (on top of its duty-cycle silence), up to the retry
// budget. An exhausted budget leaves the messages queued for the next slot,
// mirroring the unconfirmed retry policy.
func (s *sim) ackTimeout(d *device, now time.Duration) {
	if !d.awaitingAck {
		return
	}
	d.awaitingAck = false
	s.ackTimeouts++
	s.rec.AddAckTimeout()
	d.queue.PushFront(d.pendFrame.Messages)
	if d.failed {
		return
	}
	d.attempts++
	if d.attempts >= s.cfg.MAC.AckRetryMax {
		return
	}
	s.retransmissions++
	s.rec.AddRetransmission()
	at := d.duty.NextFree()
	if b := now + mac.AckBackoff(d.attempts, d.rnd); b > at {
		at = b
	}
	if !d.retryScheduled {
		d.retryScheduled = true
		if _, err := s.es.At(at, d.retryFn); err != nil {
			d.retryScheduled = false
		}
	}
}
