package experiment

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"mlorass/internal/geo"
	"mlorass/internal/lorawan"
	"mlorass/internal/rng"
	"mlorass/internal/routing"
)

// The sharded engine's contract is shard-count and tile-layout invariance:
// the same config must produce bit-identical results for every Shards ≥ 1,
// every partition of the city, and every GOMAXPROCS. Shards = 1 is the
// reference (locked by its own golden); every test here compares against it.
// All tests run under the CI race job (`go test -race -run Shard ./...`).

// shardTestVariants spans the engine's cross-tile machinery: plain uplinks,
// handover/overhear forwarding, the keyed Class-A listen gate, the MAC
// subsystem (confirmed + ADR downlinks through the coordinator), and the
// disruption layer's intrinsic gateway/churn lookups.
func shardTestVariants() map[string]func(*Config) {
	return map[string]func(*Config){
		"norouting": func(c *Config) { c.Scheme = routing.SchemeNoRouting },
		"rcaetx":    func(c *Config) { c.Scheme = routing.SchemeRCAETX },
		"robc-queuea": func(c *Config) {
			c.Scheme = routing.SchemeROBC
			c.Class = lorawan.ClassQueueA
		},
		"mac-adr-confirmed": func(c *Config) {
			c.Scheme = routing.SchemeRCAETX
			c.MAC = MACConfig{Confirmed: true, ADR: true}
		},
		"disruption": func(c *Config) {
			c.Scheme = routing.SchemeRCAETX
			c.Disruption.GatewayOutageFraction = 0.5
			c.Disruption.DeviceChurnFraction = 0.25
		},
	}
}

func shardTestBase() Config {
	cfg := QuickConfig()
	cfg.Seed = 1
	cfg.Duration = time.Hour
	return cfg
}

// runShardedReport runs cfg on the sharded engine and returns the report
// bytes, failing on error or on any causality violation.
func runShardedReport(t *testing.T, cfg Config, assign func(id int, home geo.Point) int) string {
	t.Helper()
	res, diag, err := runSharded(cfg, assign)
	if err != nil {
		t.Fatalf("shards=%d: %v", cfg.Shards, err)
	}
	if diag.Causality != 0 {
		t.Fatalf("shards=%d: %d causality violations (boundary event before tile clock)",
			cfg.Shards, diag.Causality)
	}
	return res.Report()
}

// TestShardCountEquivalence: every shard count produces the byte-identical
// report, across every variant of the cross-tile machinery.
func TestShardCountEquivalence(t *testing.T) {
	for name, mut := range shardTestVariants() {
		t.Run(name, func(t *testing.T) {
			base := shardTestBase()
			mut(&base)
			base.Shards = 1
			ref := runShardedReport(t, base, nil)
			for _, n := range []int{2, 4, 8} {
				cfg := base
				cfg.Shards = n
				if got := runShardedReport(t, cfg, nil); got != ref {
					t.Errorf("shards=%d report differs from shards=1:\n--- shards=1\n%s\n--- shards=%d\n%s",
						n, ref, n, got)
				}
			}
		})
	}
}

// TestShardFullScaleEquivalence runs the paper-scale city (the full fleet
// over a 12 km side) for four hours. Regression for a divergence the quick
// configs never tripped: interference depended on per-pool prune order —
// a short frame resolving early evicted an interferer still overlapping a
// longer frame — so the interferer set changed with the partition. Only a
// dense channel with interleaved frame lengths exposes it.
func TestShardFullScaleEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full-scale city")
	}
	base := DefaultConfig()
	base.Scheme = routing.SchemeROBC
	base.Duration = 4 * time.Hour
	base.Shards = 1
	ref := runShardedReport(t, base, nil)
	for _, n := range []int{2, 8} {
		cfg := base
		cfg.Shards = n
		if got := runShardedReport(t, cfg, nil); got != ref {
			t.Errorf("shards=%d full-scale report differs from shards=1:\n--- shards=1\n%s\n--- shards=%d\n%s",
				n, ref, n, got)
		}
	}
}

// TestShardRandomBoundaryInvariance: the property half of the equivalence
// layer. Randomised tile assignments — shifted strip boundaries and fully
// random device→tile maps, including empty tiles — must not move a single
// bit of the result.
func TestShardRandomBoundaryInvariance(t *testing.T) {
	base := shardTestBase()
	base.Scheme = routing.SchemeRCAETX
	base.Shards = 1
	ref := runShardedReport(t, base, nil)

	src := rng.New(7)
	for trial := 0; trial < 6; trial++ {
		k := 2 + src.Intn(7)
		var assign func(id int, home geo.Point) int
		kind := "strips"
		switch trial % 3 {
		case 0:
			// Vertical strips with a random boundary offset.
			area := base.area()
			off := src.Uniform(0, area.Width())
			assign = func(_ int, home geo.Point) int {
				x := home.X - area.Min.X + off
				w := area.Width()
				for x >= w {
					x -= w
				}
				ti := int(float64(k) * x / w)
				if ti >= k {
					ti = k - 1
				}
				return ti
			}
		case 1:
			// Horizontal strips: an orthogonal cut of the same city.
			kind = "rows"
			area := base.area()
			assign = func(_ int, home geo.Point) int {
				ti := int(float64(k) * (home.Y - area.Min.Y) / area.Height())
				if ti < 0 {
					ti = 0
				}
				if ti >= k {
					ti = k - 1
				}
				return ti
			}
		case 2:
			// Fully random ownership: geometry-free, maximally adversarial
			// for the boundary-exchange machinery (every neighbour pair
			// may be split).
			kind = "random"
			perTrial := rng.New(rng.Key2(99, uint64(trial), uint64(k)))
			owners := map[int]int{}
			assign = func(id int, _ geo.Point) int {
				ti, ok := owners[id]
				if !ok {
					ti = perTrial.Intn(k)
					owners[id] = ti
				}
				return ti
			}
		}
		cfg := base
		cfg.Shards = k
		if got := runShardedReport(t, cfg, assign); got != ref {
			t.Errorf("trial %d (%s, k=%d): partition changed the result:\n--- reference\n%s\n--- got\n%s",
				trial, kind, k, ref, got)
		}
	}
}

// TestShardGOMAXPROCSStress hammers the boundary-inbox exchange at scheduler
// widths 1, 2, and 8 with a handover-heavy scenario on 8 tiles: a dense
// city, forwarding on, confirmed MAC downlinks crossing tiles every window.
// Identical bytes at every width proves the barriers, not scheduling luck,
// order the exchange.
func TestShardGOMAXPROCSStress(t *testing.T) {
	base := shardTestBase()
	base.Scheme = routing.SchemeRCAETX
	base.AreaSideM = 4000 // denser city: more cross-tile neighbours
	base.MAC = MACConfig{Confirmed: true, ADR: true}
	base.Shards = 8

	var ref string
	for i, procs := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(procs)
		got := runShardedReport(t, base, nil)
		runtime.GOMAXPROCS(prev)
		if i == 0 {
			ref = got
			continue
		}
		if got != ref {
			t.Errorf("GOMAXPROCS=%d changed the result:\n--- first\n%s\n--- got\n%s", procs, ref, got)
		}
	}
}

// TestShardLookaheadSafety is the lookahead-safety property test: across
// random transmission schedules (duty cycles from choked to unlimited,
// slot intervals from 2 to 25 minutes, MAC on and off, every shard
// count and strip/row layouts), no tile ever receives a boundary event
// with a timestamp earlier than its local clock.
func TestShardLookaheadSafety(t *testing.T) {
	src := rng.New(0xca05a117)
	duties := []float64{0.01, 0.3, 1.0}
	intervals := []time.Duration{2 * time.Minute, 9 * time.Minute, 25 * time.Minute}
	for trial := 0; trial < 8; trial++ {
		cfg := shardTestBase()
		cfg.Duration = 30 * time.Minute
		cfg.Scheme = routing.SchemeRCAETX
		cfg.Seed = uint64(trial + 1)
		cfg.DutyCycle = duties[src.Intn(len(duties))]
		cfg.MsgInterval = intervals[src.Intn(len(intervals))]
		cfg.Shards = 1 + src.Intn(8)
		if src.Intn(2) == 1 {
			cfg.MAC = MACConfig{Confirmed: true, ADR: true}
		}
		_, diag, err := runSharded(cfg, nil)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg.Shards, err)
		}
		if diag.Causality != 0 {
			t.Errorf("trial %d: duty=%v interval=%v shards=%d mac=%v: %d causality violations",
				trial, cfg.DutyCycle, cfg.MsgInterval, cfg.Shards, cfg.MAC.Enabled(), diag.Causality)
		}
		if cfg.MAC.Enabled() && diag.Lookahead > lorawan.DefaultRX1Delay {
			t.Errorf("trial %d: lookahead %v exceeds RX1Delay %v — downlink plans could demand the past",
				trial, diag.Lookahead, lorawan.DefaultRX1Delay)
		}
	}
}

// TestShardEquivalenceFigTables: the Fig 8/9/12/13 table bytes are
// shard-count invariant (the figure path goes through Run, proving the
// Config.Shards dispatch too).
func TestShardEquivalenceFigTables(t *testing.T) {
	render := func(shards int) string {
		t.Helper()
		var points []SweepPoint
		for _, scheme := range Schemes() {
			cfg := shardTestBase()
			cfg.Scheme = scheme
			cfg.NumGateways = 10
			cfg.Shards = shards
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			points = append(points, SweepPoint{
				Environment: cfg.Environment, Scheme: scheme, Gateways: 10, Result: res,
			})
		}
		return fmt.Sprintf("%s\n%s\n%s\n%s",
			Fig8Table(points), Fig9Table(points), Fig12Table(points), Fig13Table(points))
	}
	ref := render(1)
	for _, n := range []int{2, 4} {
		if got := render(n); got != ref {
			t.Errorf("fig tables differ at shards=%d:\n--- shards=1\n%s\n--- shards=%d\n%s", n, ref, n, got)
		}
	}
}

// TestShardEquivalenceOutageTable: the resilience figure is shard-count
// invariant under the full outage grid.
func TestShardEquivalenceOutageTable(t *testing.T) {
	render := func(shards int) string {
		t.Helper()
		cfg := shardTestBase()
		cfg.Shards = shards
		points, err := OutageSweep(cfg, Urban, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return OutageTable(points)
	}
	ref := render(1)
	if got := render(4); got != ref {
		t.Errorf("outage table differs at shards=4:\n--- shards=1\n%s\n--- shards=4\n%s", ref, got)
	}
}

// TestShardEquivalenceADRTable: the ADR figure is shard-count invariant.
func TestShardEquivalenceADRTable(t *testing.T) {
	render := func(shards int) string {
		t.Helper()
		cfg := adrGoldenConfig(1)
		cfg.Shards = shards
		points, err := ADRSweep(cfg, Urban, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ADRTable(points)
	}
	ref := render(1)
	if got := render(4); got != ref {
		t.Errorf("ADR table differs at shards=4:\n--- shards=1\n%s\n--- shards=4\n%s", ref, got)
	}
}

// TestShardGoldenReport locks the shards=1 reference output the same way the
// serial engine's goldens are locked. The serial goldens themselves are
// untouched by the sharded engine (Shards=0 never enters it); this file is
// the sharded contract's anchor. Regenerate with -update.
func TestShardGoldenReport(t *testing.T) {
	var rep string
	for _, scheme := range Schemes() {
		cfg := QuickConfig()
		cfg.Seed = 1
		cfg.Scheme = scheme
		cfg.Shards = 1
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep += res.Report()
	}
	goldenCompare(t, "report_quick_shards1.golden", rep)
}

// TestShardSerialUntouched: a Shards=0 config takes the serial engine and
// renders the committed pre-shard golden bytes — the "don't break working
// code" half of the contract, asserted directly.
func TestShardSerialUntouched(t *testing.T) {
	var rep string
	for _, scheme := range Schemes() {
		cfg := QuickConfig()
		cfg.Seed = 1
		cfg.Scheme = scheme
		cfg.Shards = 0
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep += res.Report()
	}
	goldenCompare(t, "report_quick_seed1.golden", rep)
}

// TestShardKernelLoopAllocInvariant extends the PR 4 hot-path allocation
// discipline to the per-shard kernel loop: doubling the simulated horizon
// (and so the window count) must not add per-window allocations — every
// outbox, arena, merge buffer, and sort is reused once warmed. The bound
// admits amortised buffer growth but fails on any per-window allocation
// (ingest records, trace merges, comparator closures all sit inside the
// loop; the windows differ by ~900 here, so even one alloc per window
// trips it).
func TestShardKernelLoopAllocInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc measurement needs full runs")
	}
	measure := func(d time.Duration) (float64, int) {
		cfg := shardTestBase()
		cfg.Scheme = routing.SchemeRCAETX
		cfg.Duration = d
		cfg.Shards = 4
		var windows int
		allocs := testing.AllocsPerRun(3, func() {
			_, diag, err := runSharded(cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			windows = diag.Windows
		})
		return allocs, windows
	}
	a1, w1 := measure(30 * time.Minute)
	a2, w2 := measure(time.Hour)
	extraWindows := w2 - w1
	if extraWindows <= 0 {
		t.Fatalf("window counts did not grow: %d vs %d", w1, w2)
	}
	perWindow := (a2 - a1) / float64(extraWindows)
	if perWindow > 0.5 {
		t.Errorf("kernel loop allocates in steady state: %.2f allocs/window over %d extra windows (%.0f → %.0f)",
			perWindow, extraWindows, a1, a2)
	}
}
