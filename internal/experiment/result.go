package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mlorass/internal/radio"
	"mlorass/internal/stats"
	"mlorass/internal/telemetry"
)

// Result carries every measurement the paper's figures are built from.
type Result struct {
	// Config echoes the run configuration (with defaults filled in).
	Config Config

	// Generated counts application messages created by all devices.
	Generated uint64
	// Delivered counts distinct messages that reached the server: the
	// total-throughput quantity of Fig. 9.
	Delivered int
	// Duplicates counts redundant copies the server discarded.
	Duplicates uint64
	// QueueDrops counts messages discarded by full device queues.
	QueueDrops uint64

	// Delay summarises end-to-end delays of delivered messages in
	// seconds (Fig. 8).
	Delay stats.Summary
	// Hops summarises wireless hop counts of delivered messages
	// (Fig. 12; direct uplinks count 1).
	Hops stats.Summary
	// MsgSendsPerNode summarises, per ever-active device, the number of
	// message copies transmitted — the paper's Fig. 13 energy-overhead
	// proxy.
	MsgSendsPerNode stats.Summary
	// FramesPerNode summarises transmitted frames per ever-active device.
	FramesPerNode stats.Summary
	// RadioOnPerNode summarises per-device radio-on time in seconds
	// (transmit + listen), the Queue-based Class-A ablation quantity.
	RadioOnPerNode stats.Summary

	// Throughput is the arrivals time series in ThroughputBin buckets
	// (Figs. 10–11).
	Throughput *stats.TimeSeries

	// Medium carries channel-level counters (collisions etc.).
	Medium radio.MediumStats

	// ActiveDevices counts devices that operated during the horizon.
	ActiveDevices int

	// HandoverAttempts and HandoverSuccesses count device-to-device
	// transfer transmissions; HandoverMsgs counts messages moved.
	HandoverAttempts  uint64
	HandoverSuccesses uint64
	HandoverMsgs      uint64
	// HandoverLostMsgs counts messages lost in handover frames the
	// target missed (there is no d2d ACK, so the sender cannot recover
	// them).
	HandoverLostMsgs uint64

	// MAC-subsystem measurements (all zero when Config.MAC is
	// zero-valued — the paper's uplink-only model).

	// Downlinks counts gateway downlink frames put on the air;
	// DownlinkDeliveries counts those decoded by their device.
	Downlinks          uint64
	DownlinkDeliveries uint64
	// DownlinkDrops counts downlinks the per-gateway duty budget could
	// not place in either receive window.
	DownlinkDrops uint64
	// AckTimeouts counts confirmed uplinks whose ack window closed
	// unanswered; Retransmissions counts the retries they triggered.
	AckTimeouts     uint64
	Retransmissions uint64
	// ADRCommands counts LinkADRReq commands the network server issued;
	// ADRApplied counts those devices received and applied.
	ADRCommands uint64
	ADRApplied  uint64

	// GatewayOutageWindows counts the disruption layer's scheduled
	// gateway downtime windows (0 when disruption is off).
	GatewayOutageWindows int
	// DeviceFailures counts devices permanently churned out mid-run by
	// the disruption layer.
	DeviceFailures int

	// DirectDelay and RelayedDelay split the delivered-message delays by
	// whether the message ever hopped device-to-device.
	DirectDelay  stats.Summary
	RelayedDelay stats.Summary

	// Telemetry is the run's streaming-metrics snapshot: hot-path
	// counters plus the delay and airtime histograms, which merge
	// exactly across replications (zero when Config.Telemetry.Disabled).
	Telemetry telemetry.Snapshot

	// rawDelays holds every delivered message's delay in seconds, for
	// percentile analysis (internal diagnostics and sweeps).
	rawDelays []float64
	// originDelivered holds the origin device of every delivery, in
	// arrival order (internal diagnostics).
	originDelivered []int
}

// DelayPercentile returns the p-th percentile of delivered-message delays in
// seconds.
func (r *Result) DelayPercentile(p float64) float64 {
	return stats.Percentile(r.rawDelays, p)
}

// MatchedDelayMean returns the mean delay in seconds over the k fastest
// deliveries. Comparing schemes at the same k (the smallest delivery count
// among them) removes the survivorship bias that inflates a forwarding
// scheme's plain mean: rescuing messages the baseline never delivers adds
// slow samples that the baseline's mean simply omits.
func (r *Result) MatchedDelayMean(k int) float64 {
	if k <= 0 || len(r.rawDelays) == 0 {
		return 0
	}
	sorted := make([]float64, len(r.rawDelays))
	copy(sorted, r.rawDelays)
	sort.Float64s(sorted)
	if k > len(sorted) {
		k = len(sorted)
	}
	sum := 0.0
	for _, v := range sorted[:k] {
		sum += v
	}
	return sum / float64(k)
}

// collect gathers a Result after the event loop finishes.
func (s *sim) collect() *Result {
	r := &Result{
		Config:     s.cfg,
		Generated:  s.generated,
		Delivered:  s.server.Count(),
		Duplicates: s.server.Duplicates(),
		Throughput: s.throughput,
		Medium:     s.medium.Stats(),
	}
	r.HandoverAttempts = s.handoverAttempts
	r.HandoverSuccesses = s.handoverSuccesses
	r.HandoverMsgs = s.handoverMsgs
	r.HandoverLostMsgs = s.handoverLostMsgs
	if s.macOn {
		r.Downlinks = s.downlinks
		r.DownlinkDeliveries = s.downlinkDeliveries
		r.AckTimeouts = s.ackTimeouts
		r.Retransmissions = s.retransmissions
		r.ADRApplied = s.adrApplied
		if m := s.server.MAC(); m != nil {
			r.ADRCommands = m.Commands
			r.DownlinkDrops = m.Sched.Stats().Dropped
		}
	}
	r.GatewayOutageWindows = s.gatewayOutageWindows
	r.DeviceFailures = s.deviceFailures
	for _, del := range s.server.Deliveries() {
		r.Delay.AddDuration(del.Delay())
		r.rawDelays = append(r.rawDelays, del.Delay().Seconds())
		r.originDelivered = append(r.originDelivered, del.Origin)
		r.Hops.Add(float64(del.Hops))
		if del.Hops > 1 {
			r.RelayedDelay.AddDuration(del.Delay())
		} else {
			r.DirectDelay.AddDuration(del.Delay())
		}
	}
	for _, d := range s.devices {
		r.QueueDrops += d.queue.Dropped()
		if !d.everActive {
			continue
		}
		r.ActiveDevices++
		r.MsgSendsPerNode.Add(float64(d.msgSends))
		r.FramesPerNode.Add(float64(d.framesSent))
		r.RadioOnPerNode.AddDuration(d.energy.RadioOnTime())
	}
	if s.rec != nil {
		r.Telemetry = s.rec.Snapshot()
		// The queues also drop on requeue overflow (PushFront), which
		// the streamed counter cannot see; reconcile with the
		// authoritative per-queue total. Downlink drops and ADR command
		// issues are counted by the network server's scheduler and MAC,
		// which cannot reach the recorder.
		r.Telemetry.Counters.QueueDrops = r.QueueDrops
		r.Telemetry.Counters.DownlinkDrops = r.DownlinkDrops
		r.Telemetry.Counters.ADRCommands = r.ADRCommands
	}
	return r
}

// DeliveryRatio returns Delivered/Generated (0 when nothing was generated).
func (r *Result) DeliveryRatio() float64 {
	if r.Generated == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Generated)
}

// MeanDelay returns the mean end-to-end delay.
func (r *Result) MeanDelay() time.Duration {
	return time.Duration(r.Delay.Mean() * float64(time.Second))
}

// String renders a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s gw=%d: delivered %d/%d (%.1f%%), delay %s ±%.0fs, hops %.2f, sends/node %.1f",
		r.Config.Scheme, r.Config.Environment, r.Config.NumGateways,
		r.Delivered, r.Generated, 100*r.DeliveryRatio(),
		r.MeanDelay().Round(time.Second), r.Delay.StdErr(),
		r.Hops.Mean(), r.MsgSendsPerNode.Mean())
}

// Aggregate collapses the Results of replicated runs (same scenario,
// different seeds) into cross-replication statistics. Each Summary field
// holds one scalar per replication, so Mean() is the replication mean and
// CI95() the half-width of the 95% confidence interval — the error bars a
// multi-seed figure reports instead of one-seed point estimates.
type Aggregate struct {
	// Reps is the number of replications aggregated.
	Reps int

	// Delivered summarises per-replication delivered-message counts
	// (Fig. 9's quantity).
	Delivered stats.Summary
	// DeliveryPct summarises per-replication delivery ratios in percent.
	DeliveryPct stats.Summary
	// MeanDelayS summarises per-replication mean end-to-end delays in
	// seconds (Fig. 8's quantity).
	MeanDelayS stats.Summary
	// MeanHops summarises per-replication mean hop counts (Fig. 12).
	MeanHops stats.Summary
	// MaxHops summarises per-replication maximum hop counts.
	MaxHops stats.Summary
	// SendsPerNode summarises per-replication mean message sends per node
	// (Fig. 13's energy-overhead proxy).
	SendsPerNode stats.Summary
	// QueueDrops summarises per-replication queue-drop counts.
	QueueDrops stats.Summary
	// Collisions summarises per-replication channel collision counts.
	Collisions stats.Summary

	// Telemetry merges the replications' snapshots exactly: DelayHist's
	// percentiles are the true percentiles of the pooled delivered-message
	// population, not an average of per-replication percentiles — the
	// lossless aggregation mean ± CI cannot provide.
	Telemetry telemetry.Snapshot
}

// DelayPercentiles returns the pooled p50/p95/p99 end-to-end delays in
// seconds across all replications (zeros when telemetry was disabled).
func (a *Aggregate) DelayPercentiles() (p50, p95, p99 float64) {
	h := &a.Telemetry.Delay
	return h.Percentile(50), h.Percentile(95), h.Percentile(99)
}

// AggregateResults collapses replicated runs into an Aggregate. Replications
// are folded in slice order, so the same Results always produce the same
// Aggregate bit for bit. Nil entries are skipped.
func AggregateResults(reps []*Result) *Aggregate {
	a := &Aggregate{}
	for _, r := range reps {
		if r == nil {
			continue
		}
		a.Reps++
		a.Delivered.Add(float64(r.Delivered))
		a.DeliveryPct.Add(100 * r.DeliveryRatio())
		a.MeanDelayS.Add(r.Delay.Mean())
		a.MeanHops.Add(r.Hops.Mean())
		a.MaxHops.Add(r.Hops.Max())
		a.SendsPerNode.Add(r.MsgSendsPerNode.Mean())
		a.QueueDrops.Add(float64(r.QueueDrops))
		a.Collisions.Add(float64(r.Medium.Collisions))
		a.Telemetry.Merge(r.Telemetry)
	}
	return a
}

// String renders a one-line "metric mean ±CI" summary of the aggregate.
func (a *Aggregate) String() string {
	return fmt.Sprintf("reps=%d: delivered %.0f ±%.0f, delay %.1f ±%.1fs, hops %.2f ±%.2f, sends/node %.1f ±%.1f",
		a.Reps,
		a.Delivered.Mean(), a.Delivered.CI95(),
		a.MeanDelayS.Mean(), a.MeanDelayS.CI95(),
		a.MeanHops.Mean(), a.MeanHops.CI95(),
		a.SendsPerNode.Mean(), a.SendsPerNode.CI95())
}

// Report renders a multi-line human-readable report.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scheme=%s env=%s gateways=%d class=%s seed=%d\n",
		r.Config.Scheme, r.Config.Environment, r.Config.NumGateways, r.Config.Class, r.Config.Seed)
	fmt.Fprintf(&b, "  devices active          %d\n", r.ActiveDevices)
	fmt.Fprintf(&b, "  messages generated      %d\n", r.Generated)
	fmt.Fprintf(&b, "  messages delivered      %d (%.1f%%)\n", r.Delivered, 100*r.DeliveryRatio())
	fmt.Fprintf(&b, "  duplicates discarded    %d\n", r.Duplicates)
	fmt.Fprintf(&b, "  queue drops             %d\n", r.QueueDrops)
	fmt.Fprintf(&b, "  mean end-to-end delay   %s (stderr %.1fs)\n", r.MeanDelay().Round(time.Second), r.Delay.StdErr())
	fmt.Fprintf(&b, "  mean hops               %.2f (max %.0f)\n", r.Hops.Mean(), r.Hops.Max())
	fmt.Fprintf(&b, "  msg sends per node      %.1f\n", r.MsgSendsPerNode.Mean())
	fmt.Fprintf(&b, "  frames per node         %.1f\n", r.FramesPerNode.Mean())
	fmt.Fprintf(&b, "  radio-on per node       %s\n", time.Duration(r.RadioOnPerNode.Mean()*float64(time.Second)).Round(time.Second))
	fmt.Fprintf(&b, "  channel: tx=%d rx=%d collisions=%d\n", r.Medium.Transmissions, r.Medium.Receptions, r.Medium.Collisions)
	fmt.Fprintf(&b, "  handovers: %d/%d ok, %d msgs moved, %d msgs lost\n", r.HandoverSuccesses, r.HandoverAttempts, r.HandoverMsgs, r.HandoverLostMsgs)
	fmt.Fprintf(&b, "  delay direct %.0fs (n=%d) vs relayed %.0fs (n=%d)\n",
		r.DirectDelay.Mean(), r.DirectDelay.N(), r.RelayedDelay.Mean(), r.RelayedDelay.N())
	// Disruption lines appear only for disrupted runs so paper-default
	// reports stay byte-identical to the pre-scenario-engine output.
	if r.Config.Disruption.Enabled() {
		fmt.Fprintf(&b, "  disruption: %d gateway outage windows, %d device failures\n",
			r.GatewayOutageWindows, r.DeviceFailures)
	}
	// MAC lines likewise appear only when the subsystem is on, keeping the
	// zero-value-off invariant visible in the report bytes themselves.
	if r.Config.MAC.Enabled() {
		fmt.Fprintf(&b, "  mac: adr=%v confirmed=%v\n", r.Config.MAC.ADR, r.Config.MAC.Confirmed)
		fmt.Fprintf(&b, "  downlinks: %d on air, %d received, %d budget-dropped\n",
			r.Downlinks, r.DownlinkDeliveries, r.DownlinkDrops)
		fmt.Fprintf(&b, "  confirmed: %d ack timeouts, %d retransmissions\n",
			r.AckTimeouts, r.Retransmissions)
		meanSF := "n/a" // the SF distribution lives in telemetry
		if r.Telemetry.SF.Total() > 0 {
			meanSF = fmt.Sprintf("%.2f", r.Telemetry.SF.MeanSF())
		}
		fmt.Fprintf(&b, "  adr: %d commands issued, %d applied, mean uplink SF %s\n",
			r.ADRCommands, r.ADRApplied, meanSF)
	}
	if r.Config.Mobility.Model != MobilityBuses {
		fmt.Fprintf(&b, "  mobility: %s (%d nodes)\n", r.Config.Mobility.Model, r.Config.Mobility.NumNodes)
	}
	return b.String()
}
