// Package experiment assembles the full MLoRa-SS simulation from the
// substrate packages and runs the paper's evaluation scenarios: the London
// bus network mobility, grid-deployed gateways, a shared SF7 channel, the
// device classes, and one of the three forwarding schemes.
//
// One Run executes one 24-hour (configurable) scenario and returns the
// measurements every figure in Sec. VII is built from. Sweep helpers in this
// package regenerate the figure series; the bench harness at the repository
// root and cmd/expsweep call into them.
package experiment

import (
	"fmt"
	"time"

	"mlorass/internal/disruption"
	"mlorass/internal/geo"
	"mlorass/internal/gwplan"
	"mlorass/internal/lorawan"
	"mlorass/internal/radio"
	"mlorass/internal/routing"
	"mlorass/internal/telemetry"
	"mlorass/internal/tfl"
)

// Environment selects the paper's urban/rural device-to-device range
// settings (Sec. VII-A6: 0.5 km urban — buildings block signals — and 1 km
// rural, equal to the device-to-gateway range).
type Environment int

// Environments.
const (
	Urban Environment = iota + 1
	Rural
)

// String names the environment.
func (e Environment) String() string {
	switch e {
	case Urban:
		return "urban"
	case Rural:
		return "rural"
	default:
		return fmt.Sprintf("Environment(%d)", int(e))
	}
}

// D2DRangeM returns the device-to-device communication range in metres.
func (e Environment) D2DRangeM() float64 {
	if e == Rural {
		return 1000
	}
	return 500
}

// Config parameterises one simulation run. Zero fields are filled by
// Normalize; Validate rejects inconsistent settings.
type Config struct {
	// Seed drives every random stream in the run.
	Seed uint64

	// Scheme is the forwarding scheme under test.
	Scheme routing.Scheme
	// Class is the device class; the paper's main results use Modified
	// Class-C, with Queue-based Class-A as the energy ablation.
	Class lorawan.DeviceClass

	// Environment picks the urban/rural device-to-device range. Ignored
	// when D2DRangeM is set explicitly.
	Environment Environment
	// D2DRangeM overrides the environment's device-to-device range.
	D2DRangeM float64
	// GatewayRangeM is the device-to-gateway range (paper: 1 km at SF7).
	GatewayRangeM float64

	// NumGateways is the gateway count (the paper sweeps 40–100).
	NumGateways int
	// GatewayStrategy places gateways (grid by default).
	GatewayStrategy gwplan.Strategy

	// Mobility selects and parameterises the movement scenario. The zero
	// value is the paper's timetabled bus fleet (sized by the dataset
	// fields below); MobilityRandomWaypoint and MobilitySensorGrid open
	// non-timetabled and static duty-cycled workloads.
	Mobility MobilityConfig

	// Disruption schedules gateway outage/recovery windows and permanent
	// mid-run device churn on the simulation timeline. The zero value
	// keeps every gateway up and every device alive for the whole run —
	// the paper's setting.
	Disruption disruption.Config

	// Mobility scale: the synthetic TFL dataset parameters. Either supply
	// a Dataset directly or let Run generate one from NumRoutes and
	// PeakHeadway over an AreaSideM square.
	Dataset     *tfl.Dataset
	NumRoutes   int
	PeakHeadway time.Duration
	// AreaSideM is the side of the square simulation area in metres.
	// The default world is a density-preserving 4x downscale of the
	// paper's 600 km² (24.5 km square): a 12.25 km square (150 km²)
	// holding one quarter of the gateways and buses, so buses-per-km²,
	// gateways-per-km², and all ranges match the paper exactly while a
	// 24-hour run stays laptop-sized. NumGateways therefore corresponds
	// to 4x its value in the paper's figures (15 ≡ 60).
	AreaSideM float64

	// Duration is the simulated horizon (paper: 24 h).
	Duration time.Duration
	// MsgInterval is Δt: message generation and uplink-slot interval
	// (paper: 3 min).
	MsgInterval time.Duration
	// QueueMax bounds each device's data queue (Qmax in Eq. 11).
	QueueMax int

	// Alpha is the RCA-ETX EWMA weight (paper evaluation: 0.5).
	Alpha float64

	// Radio parameters.
	SF            radio.SpreadingFactor
	TxPowerDBm    float64
	DutyCycle     float64
	ShadowSigmaDB float64
	CaptureDB     float64

	// ThroughputBin is the bucket width of the arrival time series
	// (paper Figs. 10–11: 10 minutes).
	ThroughputBin time.Duration

	// Telemetry configures the run's streaming observability: the
	// always-on counters/histograms and the optional per-packet trace.
	// The zero value records metrics and traces nothing, and leaves every
	// reported figure byte-identical to the pre-telemetry simulator.
	Telemetry TelemetryOptions

	// MAC configures the adaptive-data-rate and confirmed-traffic
	// subsystem. The zero value switches the whole MAC control plane off —
	// fixed SF, fixed power, instant always-successful acks — which is the
	// paper's setting; every existing figure is byte-identical under it.
	MAC MACConfig

	// Shards selects the execution engine. 0 (the zero value) runs the
	// original single-threaded kernel, byte-identical to every committed
	// golden. N ≥ 1 partitions the city into N spatial tiles and runs one
	// event kernel per tile on its own goroutine, synchronised by
	// conservative-lookahead windows; sharded results are bit-identical
	// for every N and every tile boundary (Shards=1 is the reference),
	// but intentionally distinct from the serial engine — see the README
	// "Sharded runs" determinism contract.
	Shards int
}

// MACConfig parameterises the ADR + confirmed-downlink subsystem. The zero
// value disables it entirely (Enabled() == false): no downlinks exist, no
// extra random draws are made, and the run is byte-identical to the paper's
// uplink-only model. Unset knobs of an enabled config are filled with
// LoRaWAN defaults by Normalize.
type MACConfig struct {
	// ADR enables the network-server SNR-margin data-rate adaptation:
	// uplink SNR history per device, LinkADRReq commands delivered through
	// downlinks.
	ADR bool
	// Confirmed switches device uplinks to confirmed traffic: gateways
	// answer each decoded uplink with an ack downlink in RX1/RX2, and
	// unacked devices retransmit with backoff instead of assuming success.
	Confirmed bool

	// ADRMarginDB is the installation margin of the ADR algorithm. Like
	// every other knob, 0 selects the default (10 dB); use a small
	// positive value for an effectively zero margin.
	ADRMarginDB float64
	// ADRHistory is the per-device SNR window length (default 20 uplinks).
	ADRHistory int
	// ADRMinHistory is the observation count required before the first
	// command (default 4).
	ADRMinHistory int
	// InitialSF is the spreading factor devices join at (default: the
	// run's configured SF). Real LoRaWAN devices join at a robust slow
	// rate and let ADR speed them up; setting SF12 here with ADR on
	// reproduces that ramp, and is what the ADR sweep measures against
	// the paper's fixed-SF7 baseline.
	InitialSF radio.SpreadingFactor

	// RX1Delay and RX2Delay are the Class-A receive-window offsets
	// (defaults 1 s and 2 s).
	RX1Delay, RX2Delay time.Duration
	// DownlinkDutyCycle is the per-gateway transmit duty fraction
	// (default 0.1, the EU868 10 % downlink sub-band).
	DownlinkDutyCycle float64
	// DownlinkTxPowerDBm is the gateway transmit power. 0 selects the
	// device TxPowerDBm (symmetric links); Normalize resolves it, so the
	// echoed Result.Config always shows the power the run used.
	DownlinkTxPowerDBm float64
	// AckRetryMax bounds confirmed-uplink transmissions of one frame
	// (default: the paper's 8-attempt retry budget).
	AckRetryMax int
}

// Enabled reports whether any part of the MAC control plane is on. The
// paper's model corresponds to the zero value (off).
func (m MACConfig) Enabled() bool { return m.ADR || m.Confirmed }

// normalize fills unset knobs of an enabled config; a disabled config is
// left exactly zero so the zero-value-off invariant is visible in the
// echoed Result.Config. deviceTxPowDBm anchors the downlink-power default.
func (m *MACConfig) normalize(deviceTxPowDBm float64) {
	if !m.Enabled() {
		return
	}
	if m.DownlinkTxPowerDBm == 0 {
		m.DownlinkTxPowerDBm = deviceTxPowDBm
	}
	if m.ADRMarginDB == 0 {
		m.ADRMarginDB = 10
	}
	if m.ADRHistory == 0 {
		m.ADRHistory = 20
	}
	if m.ADRMinHistory == 0 {
		m.ADRMinHistory = 4
	}
	if m.RX1Delay == 0 {
		m.RX1Delay = lorawan.DefaultRX1Delay
	}
	if m.RX2Delay == 0 {
		m.RX2Delay = lorawan.DefaultRX2Delay
	}
	if m.DownlinkDutyCycle == 0 {
		m.DownlinkDutyCycle = 0.1
	}
	if m.AckRetryMax == 0 {
		m.AckRetryMax = lorawan.DefaultRetryPolicy().Max
	}
}

// validate reports configuration errors of an enabled MAC config.
func (m MACConfig) validate() error {
	if !m.Enabled() {
		return nil
	}
	if m.ADRMarginDB < 0 {
		return fmt.Errorf("experiment: MAC.ADRMarginDB %v must be non-negative", m.ADRMarginDB)
	}
	if m.ADRHistory <= 0 {
		return fmt.Errorf("experiment: MAC.ADRHistory %d must be positive", m.ADRHistory)
	}
	if m.ADRMinHistory <= 0 || m.ADRMinHistory > m.ADRHistory {
		return fmt.Errorf("experiment: MAC.ADRMinHistory %d outside [1, %d]", m.ADRMinHistory, m.ADRHistory)
	}
	if m.RX1Delay <= 0 || m.RX2Delay <= m.RX1Delay {
		return fmt.Errorf("experiment: receive windows RX1=%v RX2=%v must satisfy 0 < RX1 < RX2", m.RX1Delay, m.RX2Delay)
	}
	if m.DownlinkDutyCycle <= 0 || m.DownlinkDutyCycle > 1 {
		return fmt.Errorf("experiment: MAC.DownlinkDutyCycle %v outside (0, 1]", m.DownlinkDutyCycle)
	}
	if m.AckRetryMax <= 0 {
		return fmt.Errorf("experiment: MAC.AckRetryMax %d must be positive", m.AckRetryMax)
	}
	if m.InitialSF != 0 && !m.InitialSF.Valid() {
		return fmt.Errorf("experiment: MAC.InitialSF %d invalid", int(m.InitialSF))
	}
	return nil
}

// TelemetryOptions selects the run's telemetry behaviour.
type TelemetryOptions struct {
	// Disabled turns off the metric recorders entirely (the run's
	// Result.Telemetry stays zero). Used by overhead benchmarks; normal
	// runs leave recording on — it is allocation-free on the hot path.
	Disabled bool
	// Trace, when non-nil, receives sampled per-packet events (generate,
	// relay hops, gateway uplink, server deliver/dedup, queue drops).
	// The tracer may be shared across the runs of a sweep: sinks are
	// concurrency-safe and every event carries its run label. Tracing
	// does not alter any measurement.
	Trace *telemetry.Tracer
	// Spans, when non-nil, receives wall-clock phase spans: per-window
	// kernel/resolve/deliver and merge timings from the sharded engine,
	// per-cell timings from ParallelSweep. Span timing lives entirely in
	// the sink (internal/obs.FlightRecorder) — the engines never read the
	// clock, so instrumentation cannot perturb results. Runtime-only:
	// excluded from JSON artefacts and from the run-store key, like Trace.
	Spans telemetry.SpanSink `json:"-"`
	// Live, when non-nil, is handed each run's metric Recorder for the
	// run's lifetime so an external scraper (internal/obs.Registry) can
	// serve /metrics mid-run; Recorder snapshots are concurrency-safe.
	// Runtime-only, like Spans.
	Live telemetry.LiveAttacher `json:"-"`
}

// DefaultConfig returns the paper-shaped scenario at a laptop-runnable
// scale: the full 600 km² area and 24-hour horizon with a fleet sized by
// NumRoutes × PeakHeadway.
func DefaultConfig() Config {
	return Config{
		Seed:            1,
		Scheme:          routing.SchemeNoRouting,
		Class:           lorawan.ClassModifiedC,
		Environment:     Urban,
		GatewayRangeM:   1000,
		NumGateways:     15,
		GatewayStrategy: gwplan.Grid,
		NumRoutes:       45,
		PeakHeadway:     6 * time.Minute,
		AreaSideM:       12250,
		Duration:        24 * time.Hour,
		MsgInterval:     3 * time.Minute,
		QueueMax:        1000,
		Alpha:           0.5,
		SF:              radio.SF7,
		TxPowerDBm:      14,
		DutyCycle:       0.01,
		ShadowSigmaDB:   7.8,
		CaptureDB:       6,
		ThroughputBin:   10 * time.Minute,
	}
}

// QuickConfig returns a reduced-scale scenario for tests and benchmarks:
// a 4-hour horizon over a smaller fleet, same physics.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.NumRoutes = 16
	cfg.PeakHeadway = 12 * time.Minute
	cfg.Duration = 4 * time.Hour
	cfg.NumGateways = 5
	cfg.AreaSideM = 8000
	return cfg
}

// Normalize fills unset fields from DefaultConfig so partially specified
// configs behave predictably.
func (c *Config) Normalize() {
	def := DefaultConfig()
	if c.Scheme == 0 {
		c.Scheme = def.Scheme
	}
	if c.Class == 0 {
		c.Class = def.Class
	}
	if c.Environment == 0 {
		c.Environment = def.Environment
	}
	if c.D2DRangeM == 0 {
		c.D2DRangeM = c.Environment.D2DRangeM()
	}
	if c.GatewayRangeM == 0 {
		c.GatewayRangeM = def.GatewayRangeM
	}
	if c.NumGateways == 0 {
		c.NumGateways = def.NumGateways
	}
	if c.GatewayStrategy == 0 {
		c.GatewayStrategy = def.GatewayStrategy
	}
	if c.NumRoutes == 0 {
		c.NumRoutes = def.NumRoutes
	}
	if c.PeakHeadway == 0 {
		c.PeakHeadway = def.PeakHeadway
	}
	if c.AreaSideM == 0 {
		c.AreaSideM = def.AreaSideM
	}
	if c.Duration == 0 {
		c.Duration = def.Duration
	}
	if c.MsgInterval == 0 {
		c.MsgInterval = def.MsgInterval
	}
	if c.QueueMax == 0 {
		c.QueueMax = def.QueueMax
	}
	if c.Alpha == 0 {
		c.Alpha = def.Alpha
	}
	if c.SF == 0 {
		c.SF = def.SF
	}
	if c.TxPowerDBm == 0 {
		c.TxPowerDBm = def.TxPowerDBm
	}
	if c.DutyCycle == 0 {
		c.DutyCycle = def.DutyCycle
	}
	if c.ShadowSigmaDB == 0 {
		c.ShadowSigmaDB = def.ShadowSigmaDB
	}
	if c.CaptureDB == 0 {
		c.CaptureDB = def.CaptureDB
	}
	if c.ThroughputBin == 0 {
		c.ThroughputBin = def.ThroughputBin
	}
	c.MAC.normalize(c.TxPowerDBm)
	if c.Mobility.Model != MobilityBuses {
		dm := defaultMobility()
		if c.Mobility.NumNodes == 0 {
			c.Mobility.NumNodes = dm.NumNodes
		}
		if c.Mobility.SpeedMinMPS == 0 {
			c.Mobility.SpeedMinMPS = dm.SpeedMinMPS
		}
		if c.Mobility.SpeedMaxMPS == 0 {
			c.Mobility.SpeedMaxMPS = dm.SpeedMaxMPS
		}
		if c.Mobility.PauseMax == 0 {
			c.Mobility.PauseMax = dm.PauseMax
		}
		if c.Mobility.OnWindow == 0 {
			c.Mobility.OnWindow = dm.OnWindow
		}
		if c.Mobility.Period == 0 {
			c.Mobility.Period = dm.Period
		}
	}
}

// Validate reports configuration errors. Call Normalize first.
func (c *Config) Validate() error {
	if !c.Scheme.Valid() {
		return fmt.Errorf("experiment: invalid scheme %d", int(c.Scheme))
	}
	if !c.Class.Valid() {
		return fmt.Errorf("experiment: invalid device class %d", int(c.Class))
	}
	if !c.Class.CanOverhear() && c.Scheme != routing.SchemeNoRouting {
		return fmt.Errorf("experiment: scheme %v requires an overhearing device class, got %v", c.Scheme, c.Class)
	}
	if c.D2DRangeM <= 0 || c.GatewayRangeM <= 0 {
		return fmt.Errorf("experiment: ranges d2d=%v gw=%v must be positive", c.D2DRangeM, c.GatewayRangeM)
	}
	if c.NumGateways <= 0 {
		return fmt.Errorf("experiment: NumGateways %d must be positive", c.NumGateways)
	}
	if !c.GatewayStrategy.Valid() {
		return fmt.Errorf("experiment: invalid gateway strategy %d", int(c.GatewayStrategy))
	}
	if c.Dataset == nil && (c.NumRoutes <= 0 || c.PeakHeadway <= 0 || c.AreaSideM <= 0) {
		return fmt.Errorf("experiment: need a dataset or NumRoutes/PeakHeadway/AreaSideM")
	}
	if c.Duration <= 0 || c.MsgInterval <= 0 {
		return fmt.Errorf("experiment: duration %v and interval %v must be positive", c.Duration, c.MsgInterval)
	}
	if c.MsgInterval >= c.Duration {
		return fmt.Errorf("experiment: interval %v must be shorter than duration %v", c.MsgInterval, c.Duration)
	}
	if c.QueueMax <= 0 {
		return fmt.Errorf("experiment: QueueMax %d must be positive", c.QueueMax)
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("experiment: alpha %v outside (0, 1]", c.Alpha)
	}
	if !c.SF.Valid() {
		return fmt.Errorf("experiment: invalid SF %d", int(c.SF))
	}
	if c.DutyCycle <= 0 || c.DutyCycle > 1 {
		return fmt.Errorf("experiment: duty cycle %v outside (0, 1]", c.DutyCycle)
	}
	if c.ThroughputBin <= 0 {
		return fmt.Errorf("experiment: throughput bin %v must be positive", c.ThroughputBin)
	}
	if !c.Mobility.Model.Valid() {
		return fmt.Errorf("experiment: invalid mobility model %d", int(c.Mobility.Model))
	}
	if c.Mobility.Model != MobilityBuses {
		if c.Dataset != nil {
			return fmt.Errorf("experiment: Dataset only applies to the %v model, not %v", MobilityBuses, c.Mobility.Model)
		}
		if c.GatewayStrategy == gwplan.RouteAware {
			return fmt.Errorf("experiment: route-aware gateway placement needs the %v model, got %v", MobilityBuses, c.Mobility.Model)
		}
		if c.Mobility.NumNodes <= 0 {
			return fmt.Errorf("experiment: Mobility.NumNodes %d must be positive", c.Mobility.NumNodes)
		}
	}
	if err := c.Disruption.Validate(); err != nil {
		return err
	}
	if err := c.MAC.validate(); err != nil {
		return err
	}
	if c.Shards < 0 || c.Shards > 1024 {
		return fmt.Errorf("experiment: Shards %d outside [0, 1024] (0 = serial engine)", c.Shards)
	}
	return nil
}

// area returns the simulation area: the dataset's if supplied, otherwise the
// configured square.
func (c *Config) area() geo.Rect {
	if c.Dataset != nil {
		return c.Dataset.Area
	}
	return geo.Square(c.AreaSideM)
}
