package experiment

import (
	"testing"
	"time"

	"mlorass/internal/obs"
	"mlorass/internal/telemetry"
)

// These tests lock the live-scrape contract end to end: a Registry attached
// through Config.Telemetry.Live is scraped continuously while the engines
// run — under -race this is the proof that a /metrics request can never
// tear a hot-path counter — and the registry's post-run state must equal
// the run's own quiesced telemetry. The name carries "Shard" so the CI
// race job's non-short shard pass covers the sharded variant.

func scrapeDuringRun(t *testing.T, cfg Config) {
	t.Helper()
	reg := obs.NewRegistry()
	flight := obs.NewFlightRecorder(256)
	cfg.Telemetry.Live = reg
	cfg.Telemetry.Spans = flight

	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Run(cfg)
		done <- outcome{res, err}
	}()

	var scrapes int
	var lastGen uint64
	var out outcome
	for running := true; running; {
		select {
		case out = <-done:
			running = false
		default:
			s := reg.Snapshot()
			if s.Counters.Generated < lastGen {
				t.Fatalf("live Generated regressed %d -> %d", lastGen, s.Counters.Generated)
			}
			lastGen = s.Counters.Generated
			scrapes++
			time.Sleep(200 * time.Microsecond)
		}
	}
	if out.err != nil {
		t.Fatal(out.err)
	}
	if scrapes == 0 {
		t.Fatal("no scrape overlapped the run")
	}

	// Quiesced: the registry's merged base must match the result exactly.
	got := reg.Snapshot()
	want := out.res.Telemetry
	if got.Counters.Generated != want.Counters.Generated ||
		got.Counters.FramesOnAir != want.Counters.FramesOnAir ||
		got.Counters.UplinkDeliveries != want.Counters.UplinkDeliveries ||
		got.Counters.ServerFresh != want.Counters.ServerFresh {
		t.Errorf("registry counters diverged from Result.Telemetry:\n got %+v\nwant %+v",
			got.Counters, want.Counters)
	}
	if got.Delay != want.Delay {
		t.Errorf("registry delay histogram diverged: got %v want %v",
			got.Delay.String(), want.Delay.String())
	}
	if reg.LiveRuns() != 0 {
		t.Errorf("%d recorders still attached after the run", reg.LiveRuns())
	}

	if cfg.Shards > 0 {
		// The sharded engine must have recorded every phase family.
		byName := map[string]bool{}
		for _, pt := range flight.PhaseTotals() {
			byName[pt.Name] = true
		}
		for _, name := range []string{"kernel", "resolve", "deliver", "merge"} {
			if !byName[name] {
				t.Errorf("no %q spans recorded (totals: %v)", name, flight.PhaseTotals())
			}
		}
		if flight.Recorded() == 0 {
			t.Error("flight recorder saw no spans")
		}
	}
}

func obsLiveTestConfig() Config {
	cfg := QuickConfig()
	cfg.Seed = 7
	cfg.Duration = 2 * time.Hour
	return cfg
}

func TestLiveScrapeDuringSerialRun(t *testing.T) {
	scrapeDuringRun(t, obsLiveTestConfig())
}

func TestLiveScrapeDuringShardedRun(t *testing.T) {
	cfg := obsLiveTestConfig()
	cfg.Shards = 2
	scrapeDuringRun(t, cfg)
}

// TestLiveScrapeShardedMatchesUninstrumented locks the zero-perturbation
// contract: attaching a registry and a span sink must not change a single
// byte of the sharded engine's report.
func TestLiveScrapeShardedMatchesUninstrumented(t *testing.T) {
	cfg := obsLiveTestConfig()
	cfg.Shards = 2
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Telemetry.Live = obs.NewRegistry()
	cfg.Telemetry.Spans = obs.NewFlightRecorder(0)
	instr, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Report() != instr.Report() {
		t.Error("instrumentation changed the sharded report")
	}
	if plain.Telemetry != instr.Telemetry {
		t.Error("instrumentation changed the telemetry snapshot")
	}
}

// TestSweepCellSpans: ParallelSweep emits one labelled cell span per
// replication, marking store hits.
func TestSweepCellSpans(t *testing.T) {
	flight := obs.NewFlightRecorder(64)
	base := QuickConfig()
	base.Seed = 3
	base.Duration = time.Hour
	base.Telemetry.Spans = flight
	if _, err := ParallelSweep(base, Urban, SweepOptions{Workers: 2, Reps: 1}); err != nil {
		t.Fatal(err)
	}
	spans := flight.Spans(0)
	want := len(GatewaySweep()) * len(Schemes())
	if len(spans) != want {
		t.Fatalf("recorded %d cell spans, want %d", len(spans), want)
	}
	labels := map[string]bool{}
	for _, sp := range spans {
		if sp.Name != "cell" {
			t.Errorf("unexpected span %q", sp.Name)
		}
		if sp.Attr != 0 {
			t.Errorf("storeless sweep marked span cached: %+v", sp)
		}
		if sp.SimNS != base.Duration.Nanoseconds() {
			t.Errorf("cell span sim clock = %d, want %d", sp.SimNS, base.Duration.Nanoseconds())
		}
		labels[sp.Label] = true
	}
	if len(labels) != want {
		t.Errorf("cell labels not unique: %d distinct of %d", len(labels), want)
	}
	if !labels["urban/ROBC/gw=10/rep=0"] {
		t.Errorf("missing expected label, got %v", labels)
	}
}

// The nil-sink fast path must not allocate: spans off means the sweep and
// engine hot paths stay allocation-identical to the pre-obs tree.
var _ telemetry.SpanSink = (*obs.FlightRecorder)(nil)
var _ telemetry.LiveAttacher = (*obs.Registry)(nil)
