package experiment

import (
	"fmt"
	"strings"
	"time"

	"mlorass/internal/mobility"
	"mlorass/internal/tfl"
)

// MobilityModel selects the movement scenario of a run.
type MobilityModel int

// Mobility models. The zero value is the paper's timetabled bus fleet, so
// legacy configs reproduce the paper byte for byte.
const (
	// MobilityBuses is the timetabled London-style bus fleet (tfl dataset).
	MobilityBuses MobilityModel = iota
	// MobilityRandomWaypoint is a fleet of random-waypoint vehicles.
	MobilityRandomWaypoint
	// MobilitySensorGrid is a static, duty-cycled sensor grid.
	MobilitySensorGrid
)

// String names the model (also the cmd/expsweep -scenario vocabulary).
func (m MobilityModel) String() string {
	switch m {
	case MobilityBuses:
		return "buses"
	case MobilityRandomWaypoint:
		return "randomwaypoint"
	case MobilitySensorGrid:
		return "sensorgrid"
	default:
		return fmt.Sprintf("MobilityModel(%d)", int(m))
	}
}

// Valid reports whether the model is one of the defined scenarios.
func (m MobilityModel) Valid() bool {
	return m >= MobilityBuses && m <= MobilitySensorGrid
}

// ParseMobilityModel resolves a -scenario flag value to a model.
func ParseMobilityModel(s string) (MobilityModel, error) {
	switch strings.ToLower(s) {
	case "", "buses", "bus", "tfl":
		return MobilityBuses, nil
	case "randomwaypoint", "rwp":
		return MobilityRandomWaypoint, nil
	case "sensorgrid", "sensors", "grid":
		return MobilitySensorGrid, nil
	default:
		return 0, fmt.Errorf("experiment: unknown mobility scenario %q (want buses | randomwaypoint | sensorgrid)", s)
	}
}

// MobilityConfig selects and parameterises the movement scenario. The zero
// value is the bus fleet with its dataset-driven parameters; the remaining
// fields apply to the new models and take defaults from Normalize.
type MobilityConfig struct {
	// Model picks the scenario.
	Model MobilityModel
	// NumNodes is the node count for the random-waypoint and sensor-grid
	// models (the bus fleet is sized by the dataset).
	NumNodes int
	// SpeedMinMPS and SpeedMaxMPS bound random-waypoint leg speeds.
	SpeedMinMPS float64
	SpeedMaxMPS float64
	// PauseMax bounds the random-waypoint pause at each waypoint.
	PauseMax time.Duration
	// OnWindow and Period set the sensor-grid duty cycle: each sensor is
	// awake for OnWindow out of every Period.
	OnWindow time.Duration
	Period   time.Duration
}

// defaultMobility returns the non-bus models' default parameters: a fleet
// about the size of the default daytime bus plateau, roaming at urban
// traffic speeds or duty-cycling 10 minutes per hour.
func defaultMobility() MobilityConfig {
	return MobilityConfig{
		NumNodes:    150,
		SpeedMinMPS: 2.41,
		SpeedMaxMPS: 10.33,
		PauseMax:    2 * time.Minute,
		OnWindow:    10 * time.Minute,
		Period:      time.Hour,
	}
}

// buildFleet assembles the run's mobility scenario. For the bus model it
// returns the dataset too (gateway planning may be route-aware); the other
// models return a nil dataset.
func buildFleet(cfg *Config) (*mobility.Fleet, *tfl.Dataset, error) {
	switch cfg.Mobility.Model {
	case MobilityBuses:
		ds := cfg.Dataset
		if ds == nil {
			gc := tfl.DefaultGenConfig(cfg.Seed, cfg.NumRoutes, cfg.PeakHeadway)
			gc.Area = cfg.area()
			var err error
			ds, err = tfl.Generate(gc)
			if err != nil {
				return nil, nil, fmt.Errorf("experiment: dataset: %w", err)
			}
		}
		fleet, err := mobility.NewFleet(ds)
		if err != nil {
			return nil, nil, err
		}
		return fleet, ds, nil
	case MobilityRandomWaypoint:
		fleet, err := mobility.NewRandomWaypointFleet(mobility.RandomWaypointConfig{
			Seed:        cfg.Seed ^ 0x52b9,
			Area:        cfg.area(),
			NumNodes:    cfg.Mobility.NumNodes,
			SpeedMinMPS: cfg.Mobility.SpeedMinMPS,
			SpeedMaxMPS: cfg.Mobility.SpeedMaxMPS,
			PauseMax:    cfg.Mobility.PauseMax,
			Horizon:     cfg.Duration,
		})
		return fleet, nil, err
	case MobilitySensorGrid:
		fleet, err := mobility.NewSensorGridFleet(mobility.SensorGridConfig{
			Seed:     cfg.Seed ^ 0x5e45,
			Area:     cfg.area(),
			NumNodes: cfg.Mobility.NumNodes,
			OnWindow: cfg.Mobility.OnWindow,
			Period:   cfg.Mobility.Period,
			Horizon:  cfg.Duration,
		})
		return fleet, nil, err
	default:
		return nil, nil, fmt.Errorf("experiment: invalid mobility model %d", int(cfg.Mobility.Model))
	}
}
