package experiment

import (
	"fmt"
	"time"

	"mlorass/internal/core"
	"mlorass/internal/disruption"
	"mlorass/internal/eventsim"
	"mlorass/internal/geo"
	"mlorass/internal/gwplan"
	"mlorass/internal/lorawan"
	"mlorass/internal/mobility"
	"mlorass/internal/netserver"
	"mlorass/internal/radio"
	"mlorass/internal/rng"
	"mlorass/internal/routing"
	"mlorass/internal/stats"
	"mlorass/internal/telemetry"
)

// device is one LoRaWAN end-device riding one mobility node.
type device struct {
	id   int
	node mobility.Model

	// cursor is the node's stateful trajectory reader: bit-identical to
	// node.PositionAt but resuming the segment walk between the
	// near-monotonic queries the simulator issues. memo* cache the last
	// query, so one instant's repeated position reads (transmit, range
	// checks, overhearing) resolve once.
	cursor    mobility.Cursor
	memoAt    time.Duration
	memoPos   geo.Point
	memoOK    bool
	memoValid bool

	// failed marks a device permanently lost to mid-run churn (disruption
	// layer): it stops generating, transmitting, and overhearing.
	failed bool

	queue  *lorawan.Queue
	est    *core.GatewayEstimator
	duty   *lorawan.DutyGovernor
	energy lorawan.EnergyMeter
	rnd    *rng.Source

	seq      uint32
	attempts int // retransmissions of the current head bundle

	busy           bool // a transmission is on the air
	retryScheduled bool

	// Prebuilt event callbacks: the slot tick, the duty-cycle retry, and
	// the transmission resolution are scheduled millions of times per
	// run, so each device allocates its closures once instead of one per
	// scheduling.
	slotFn    eventsim.Event
	retryFn   eventsim.Event
	resolveFn eventsim.Event

	// bundle is the device's frame scratch: the in-flight transmission's
	// messages live here (at most one transmission is on the air per
	// device), reused across transmissions.
	bundle []lorawan.Message

	// Pending transmission state consumed by resolveFn: the frame on the
	// air, its radio handle, and its destination (-1 = sink uplink).
	pendTx    *radio.Transmission
	pendFrame lorawan.Frame
	pendDest  int

	// Pending handover decision: the next transmission slot is addressed
	// to fwdTarget instead of the sinks (Sec. IV-A: the handover rides
	// the device's regular duty-cycled broadcast). The decision expires
	// after one slot interval so stale neighbours are not chased.
	fwdTarget int
	fwdCount  int
	fwdExpiry time.Duration

	// noSendBack holds neighbours this device received data from; it is
	// cleared on the next successful sink contact (Sec. V-B2). A small
	// sorted-insertion-free id list: membership is a linear scan over the
	// handful of neighbours met since the last sink contact, cheaper and
	// allocation-free compared to a map.
	noSendBack []int32

	// acked records whether any uplink was acknowledged since the last
	// slot tick; the estimator consumes and resets it (Eq. 3's contact
	// observation).
	acked bool

	// MAC-subsystem state (zero and unread when Config.MAC is zero-valued).
	//
	// dr and txPowIdx are the device's current ADR-assigned link
	// parameters; txPowDBm is the resolved transmit power (always
	// initialised, even with the MAC off, so the transmit path reads one
	// field). awaitingAck marks a confirmed uplink whose ack window is
	// open: the device holds its bundle in pendFrame and transmits nothing
	// until the ack arrives or ackTimeoutH fires.
	dr          lorawan.DataRate
	txPowIdx    int
	txPowDBm    radio.DBm
	awaitingAck bool
	ackTimeoutH eventsim.Handle

	// Pending downlink addressed to this device — at most one, freshest
	// wins: if a generous duty cycle lets a new uplink's downlink be
	// scheduled before the previous one lands, the replacement takes the
	// slot and the old resolution event no-ops (resolveDownlink matches
	// the instant against dlTx.End). dlFn resolves it; ackTimeoutFn
	// closes the ack window.
	dlTx         *radio.Transmission
	dlAck        bool
	dlCmd        lorawan.LinkADRReq
	dlHasCmd     bool
	dlFn         eventsim.Event
	ackTimeoutFn eventsim.Event

	// listenFraction is γx for Queue-based Class-A devices (Eq. 11),
	// recomputed each slot; Modified Class-C devices always listen (1).
	listenFraction float64

	everActive bool
	framesSent uint64
	msgSends   uint64

	// Sharded-engine state (zero and unread under the serial engine).
	//
	// msgSeq numbers this device's generated messages so sharded message
	// IDs are intrinsic — (id+1)<<32|msgSeq — instead of a global counter
	// whose value would depend on cross-device event interleaving. dlSeq
	// numbers received downlink plans for keyed shadowing draws. The
	// flight intervals record the device's current and previous uplink
	// on-air spans so receiver-side phases can answer "was this device
	// transmitting at instant T" for any T inside the window without
	// ordering against the transmitter's own phase — see busyAt.
	msgSeq        uint32
	dlSeq         uint32
	flightStart   time.Duration
	flightEnd     time.Duration
	prevFlightSta time.Duration
	prevFlightEnd time.Duration
}

// busyAt reports whether one of the device's recorded uplink flights was on
// the air at instant at. Two intervals suffice: the duty governor keeps a
// device from having more than two flights overlap any lookahead window.
//
//mlorass:hotpath
func (d *device) busyAt(at time.Duration) bool {
	if at >= d.flightStart && at < d.flightEnd {
		return true
	}
	return at >= d.prevFlightSta && at < d.prevFlightEnd
}

// sim is one assembled simulation run.
type sim struct {
	cfg     Config
	es      *eventsim.Simulator
	fleet   *mobility.Fleet
	gws     []geo.Point
	medium  *radio.Medium
	server  *netserver.Server
	policy  routing.Policy
	phy     radio.PHYParams
	link    core.LinkModel
	gwCfg   core.GatewayConfig
	retry   lorawan.RetryPolicy
	devices []*device

	// contactCapacityPPS is the service rate credited to a sink contact:
	// one full bundle per duty-cycled transmission opportunity.
	contactCapacityPPS float64

	// activeList holds the in-service device ids in ascending order
	// (sorted insertion on activation), so spatial-index rebuilds consume
	// ids pre-sorted and candidate queries come back ordered for free.
	activeList []int
	activeDead int
	ix         *devIndex
	// posFn is the prebuilt position source for index rebuilds; it reads
	// the rebuild instant from ixNow so no per-rebuild closure exists.
	posFn func(id int) (geo.Point, bool)
	ixNow time.Duration

	// gwCands is the gateway-candidate scratch reused by every
	// receiveAtGateways call.
	gwCands []gwCand

	// gwUp tracks per-gateway availability; nil when the disruption layer
	// is off (every gateway permanently up, the paper's setting).
	gwUp []bool
	// Disruption diagnostics.
	gatewayOutageWindows int
	deviceFailures       int

	msgCounter uint64
	generated  uint64
	throughput *stats.TimeSeries

	// d2dShadow draws the shadowing for overheard-RSSI measurements
	// (Eq. 5 input). Device-to-device frames themselves are received
	// deterministically within range: the paper's FLoRa substrate has no
	// device-to-device PHY, so its handovers and overhearing operate
	// above the collision model, and only gateway uplinks contend.
	// d2dLoss caches the medium's path-loss model so the overhear loop
	// avoids copying the whole medium config per candidate.
	d2dShadow *rng.Source
	d2dLoss   radio.PathLoss

	// Forwarding diagnostics.
	handoverAttempts  uint64
	handoverSuccesses uint64
	handoverMsgs      uint64
	handoverLostMsgs  uint64

	// rec is the run's streaming metric recorder (nil when telemetry is
	// disabled; every method is nil-safe). tracer samples per-packet
	// events (nil when tracing is off); traceRun labels its records.
	rec      *telemetry.Recorder
	tracer   *telemetry.Tracer
	traceRun string

	// MAC subsystem (all nil/zero when cfg.MAC is zero-valued — the
	// paper's uplink-only model, byte-identical to the pre-MAC simulator).
	macOn     bool
	confirmed bool
	// phyByDR holds the PHY parameters of every ADR data rate; dlAirTbl
	// caches downlink airtimes per (data rate, with-ADR-command) pair.
	phyByDR    [lorawan.NumDataRates]radio.PHYParams
	dlAirTbl   [lorawan.NumDataRates][2]time.Duration
	noiseFloor radio.DBm
	gwTxPowDBm radio.DBm
	// MAC diagnostics.
	downlinks          uint64
	downlinkDeliveries uint64
	ackTimeouts        uint64
	retransmissions    uint64
	adrApplied         uint64
}

// Run executes one scenario and returns its measurements.
func Run(cfg Config) (*Result, error) {
	cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards > 0 {
		// The windowed sharded engine: bit-identical results for every
		// shard count and tile layout, deliberately distinct from the
		// serial engine below (see sim_sharded.go).
		res, _, err := runSharded(cfg, nil)
		return res, err
	}

	fleet, ds, err := buildFleet(&cfg)
	if err != nil {
		return nil, err
	}
	area := cfg.area()
	if ds != nil {
		area = ds.Area
	}
	var gws []geo.Point
	if cfg.GatewayStrategy == gwplan.RouteAware {
		gws, err = gwplan.PlaceRouteAware(ds, cfg.NumGateways, cfg.GatewayRangeM)
	} else {
		gws, err = gwplan.Place(cfg.GatewayStrategy, area, cfg.NumGateways, cfg.Seed^0x9e37)
	}
	if err != nil {
		return nil, err
	}
	policy, err := routing.New(cfg.Scheme)
	if err != nil {
		return nil, err
	}

	phy := radio.DefaultPHY(cfg.SF)
	fullFrame := lorawan.Frame{Messages: make([]lorawan.Message, lorawan.MaxBundle)}
	fullAirtime := phy.Airtime(fullFrame.PayloadBytes())
	// One bundled frame per duty-cycled opportunity: the best service
	// rate any contact can offer.
	cmaxPPS := cfg.DutyCycle / fullAirtime.Seconds()

	loss := radio.DefaultPathLoss()
	loss.ShadowSigmaDB = radio.DB(cfg.ShadowSigmaDB)
	medium, err := radio.NewMedium(radio.MediumConfig{
		Loss: loss,
		// Connectivity is range-gated per link class as in the paper;
		// sensitivity must not re-gate it, so it is effectively
		// disabled and Eq. (5) consumes the raw RSSI.
		SensitivityDBm: -1e9,
		CaptureDB:      radio.DB(cfg.CaptureDB),
		Seed:           cfg.Seed ^ 0x51ab,
	})
	if err != nil {
		return nil, err
	}

	gwCfg := core.GatewayConfig{
		Alpha:           cfg.Alpha,
		Delta:           cfg.MsgInterval,
		DefaultCapacity: cmaxPPS,
		PhiMin:          1e-5,
		PhiMax:          cmaxPPS,
	}
	if err := gwCfg.Validate(); err != nil {
		return nil, err
	}
	link := core.DefaultLinkModel(cmaxPPS)
	link.GammaMinDBm = cfg.SF.Sensitivity()
	if err := link.Validate(); err != nil {
		return nil, err
	}

	throughput, err := stats.NewTimeSeries(cfg.ThroughputBin, cfg.Duration)
	if err != nil {
		return nil, err
	}

	// The index's drift bound is the fleet's top speed, floored at the
	// historical 11 m/s bus bound so legacy scenarios index identically.
	idxSpeed := fleet.MaxSpeedMPS()
	if idxSpeed < 11 {
		idxSpeed = 11
	}
	s := &sim{
		cfg:                cfg,
		es:                 eventsim.New(),
		fleet:              fleet,
		gws:                gws,
		medium:             medium,
		server:             netserver.New(),
		policy:             policy,
		phy:                phy,
		link:               link,
		gwCfg:              gwCfg,
		retry:              lorawan.DefaultRetryPolicy(),
		contactCapacityPPS: cmaxPPS,
		throughput:         throughput,
		ix:                 newDevIndex(cfg.D2DRangeM, 30*time.Second, idxSpeed),
		d2dShadow:          rng.New(cfg.Seed ^ 0x0d2d),
		d2dLoss:            loss,
	}
	if !cfg.Telemetry.Disabled {
		s.rec = telemetry.NewRecorder()
	}
	s.tracer = cfg.Telemetry.Trace
	if s.tracer != nil {
		s.traceRun = fmt.Sprintf("%s/%s/gw=%d/seed=%d",
			cfg.Environment, cfg.Scheme, cfg.NumGateways, cfg.Seed)
		// The kernel probe is wired only while tracing (its per-event
		// interface call is measurable, the plain recorders are not),
		// and only with a live recorder: a typed-nil probe would make
		// the kernel pay the call for a guaranteed no-op.
		if s.rec != nil {
			s.es.SetProbe(s.rec)
		}
	}
	if s.rec != nil || s.tracer != nil {
		// The server ledger streams delays into the recorder and
		// deliver/dedup records into the trace as they happen.
		s.server.SetObserver(s)
	}

	if cfg.MAC.Enabled() {
		if err := s.setupMAC(); err != nil {
			return nil, err
		}
	}

	rootRNG := rng.New(cfg.Seed ^ 0xdee1)
	s.devices = make([]*device, fleet.Len())
	for i := 0; i < fleet.Len(); i++ {
		est, err := core.NewGatewayEstimator(gwCfg)
		if err != nil {
			return nil, err
		}
		d := &device{
			id:             i,
			node:           fleet.Node(i),
			cursor:         mobility.NewCursor(fleet.Node(i)),
			queue:          lorawan.NewQueue(cfg.QueueMax),
			est:            est,
			duty:           lorawan.NewDutyGovernor(cfg.DutyCycle),
			rnd:            rootRNG.Split(),
			bundle:         make([]lorawan.Message, 0, lorawan.MaxBundle),
			pendDest:       -1,
			fwdTarget:      -1,
			listenFraction: 1,
			txPowDBm:       radio.DBm(cfg.TxPowerDBm),
		}
		if s.macOn {
			joinSF := cfg.MAC.InitialSF
			if joinSF == 0 {
				joinSF = cfg.SF
			}
			dr0, _ := lorawan.DataRateForSF(joinSF)
			d.dr = dr0
			d.dlFn = func(end time.Duration) { s.resolveDownlink(d, end) }
			d.ackTimeoutFn = func(at time.Duration) { s.ackTimeout(d, at) }
		}
		d.slotFn = func(now time.Duration) {
			if d.failed {
				return // churned device: the slot chain ends here
			}
			s.tick(d, now)
			s.scheduleTick(d, now+s.cfg.MsgInterval)
		}
		d.retryFn = func(later time.Duration) {
			d.retryScheduled = false
			s.tryUplink(d, later)
		}
		d.resolveFn = func(end time.Duration) { s.resolve(d, end) }
		s.devices[i] = d

		start, end := d.node.Window()
		if start >= cfg.Duration {
			continue
		}
		// Stagger slots uniformly within the interval so the fleet's
		// uplinks do not synchronise.
		jitter := time.Duration(d.rnd.Uniform(0, cfg.MsgInterval.Seconds()) * float64(time.Second))
		first := start + jitter
		if first >= end || first >= cfg.Duration {
			continue
		}
		if _, err := s.es.At(start, func(time.Duration) { s.activate(d) }); err != nil {
			return nil, err
		}
		if end < cfg.Duration {
			if _, err := s.es.At(end, func(time.Duration) { s.deactivate(d) }); err != nil {
				return nil, err
			}
		}
		s.scheduleTick(d, first)
	}

	s.posFn = func(id int) (geo.Point, bool) {
		z := s.devices[id]
		if p, ok := s.devPos(z, s.ixNow); ok {
			return p, true
		}
		// A node asleep at rebuild time but with a known fixed position
		// stays indexed: it may wake before the next rebuild, and the
		// overhear loop re-checks live activity anyway.
		if sm, ok := z.node.(mobility.StaticModel); ok && !z.failed {
			return sm.FixedPosition(), true
		}
		return geo.Point{}, false
	}

	if err := s.scheduleDisruption(); err != nil {
		return nil, err
	}

	if cfg.Telemetry.Live != nil && s.rec != nil {
		// Publish the recorder for live scraping until Run returns; by
		// then the kernel has quiesced, so the snapshot the detach folds
		// into the scraper's cumulative base equals Result.Telemetry.
		detach := cfg.Telemetry.Live.Attach(s.rec)
		defer detach()
	}
	if err := s.es.RunUntil(cfg.Duration); err != nil {
		return nil, err
	}
	return s.collect(), nil
}

// scheduleDisruption compiles the disruption plan and places its outage,
// recovery, and churn events on the simulation timeline. A disabled config
// schedules nothing, leaving the run untouched.
func (s *sim) scheduleDisruption() error {
	if !s.cfg.Disruption.Enabled() {
		return nil
	}
	plan, err := disruption.Compile(s.cfg.Disruption, s.cfg.Seed^0xd15c, len(s.gws), len(s.devices), s.cfg.Duration)
	if err != nil {
		return err
	}
	s.gwUp = make([]bool, len(s.gws))
	for i := range s.gwUp {
		s.gwUp[i] = true
	}
	for gi, windows := range plan.GatewayOutages {
		gi := gi
		for _, w := range windows {
			s.gatewayOutageWindows++
			if _, err := s.es.At(w.Start, func(time.Duration) { s.gwUp[gi] = false }); err != nil {
				return err
			}
			if w.End < s.cfg.Duration {
				if _, err := s.es.At(w.End, func(time.Duration) { s.gwUp[gi] = true }); err != nil {
					return err
				}
			}
		}
	}
	for di, failAt := range plan.DeviceFailAt {
		if failAt < 0 || failAt >= s.cfg.Duration {
			continue
		}
		d := s.devices[di]
		s.deviceFailures++
		if _, err := s.es.At(failAt, func(time.Duration) {
			d.failed = true
			s.deactivate(d)
		}); err != nil {
			return err
		}
	}
	return nil
}

// devPos returns device d's position at the given instant through its
// trajectory cursor, memoising the last query so one instant's repeated
// reads resolve once. Bit-identical to d.node.PositionAt(at).
//
//mlorass:hotpath
func (s *sim) devPos(d *device, at time.Duration) (geo.Point, bool) {
	if d.memoValid && d.memoAt == at {
		return d.memoPos, d.memoOK
	}
	p, ok := d.cursor.PositionAt(at)
	d.memoAt, d.memoPos, d.memoOK, d.memoValid = at, p, ok, true
	return p, ok
}

func (s *sim) activate(d *device) {
	d.everActive = true
	// Sorted insertion keeps the active list ascending by id; most
	// activations append (ids tie-break in creation order at equal
	// instants), so the memmove is rare and short.
	i := len(s.activeList)
	for i > 0 && s.activeList[i-1] > d.id {
		i--
	}
	s.activeList = append(s.activeList, 0)
	copy(s.activeList[i+1:], s.activeList[i:])
	s.activeList[i] = d.id
}

func (s *sim) deactivate(d *device) {
	s.activeDead++
	if s.activeDead*2 > len(s.activeList) {
		now := s.es.Now()
		kept := s.activeList[:0]
		for _, id := range s.activeList {
			z := s.devices[id]
			// Keep every live device whose service window is still
			// open, not just those instantaneously active: models may
			// flicker within their window (duty-cycled sensors), and a
			// node evicted here would never re-enter the list.
			_, end := z.node.Window()
			if !z.failed && now < end {
				kept = append(kept, id)
			}
		}
		s.activeList = kept
		s.activeDead = 0
	}
}

// scheduleTick arms the device's next Δt slot (the prebuilt slotFn: tick,
// then re-arm).
func (s *sim) scheduleTick(d *device, at time.Duration) {
	_, end := d.node.Window()
	if at >= s.cfg.Duration || at >= end {
		return
	}
	if _, err := s.es.At(at, d.slotFn); err != nil {
		// Scheduling in the past cannot happen from a monotone tick
		// chain; ignore defensively.
		return
	}
}

// tick is one device slot: observe the estimator, account listening energy,
// generate a message, and attempt an uplink (Sec. VII-A4/5).
//
//mlorass:hotpath
func (s *sim) tick(d *device, now time.Duration) {
	if d.failed || !d.node.Active(now) {
		return
	}

	// Estimator observation (Eqs. 3–4). t∆ is the residual duty-cycle
	// wait before this device may broadcast.
	tDelta := d.duty.NextFree() - now
	if tDelta < 0 {
		tDelta = 0
	}
	d.est.Observe(now, d.acked, s.contactCapacityPPS, tDelta)
	d.acked = false

	// Listening energy for the interval just starting, and the listen
	// gate used for overhearing during it (Eq. 11 for Queue-based
	// Class-A; Modified Class-C always listens).
	switch s.cfg.Class {
	case lorawan.ClassQueueA:
		d.listenFraction = lorawan.QueueAListenFraction(
			d.est.Phi(), s.gwCfg.PhiMax, d.queue.Len(), s.cfg.QueueMax)
	default:
		d.listenFraction = 1
	}
	d.energy.RecordRx(time.Duration(d.listenFraction * float64(s.cfg.MsgInterval)))

	// Generate this slot's message; a full queue drops it (counted).
	s.msgCounter++
	s.generated++
	s.rec.AddGenerated()
	traced := s.tracer.Sampled(s.msgCounter)
	if traced {
		s.emitTrace(telemetry.Event{
			T: now, Kind: telemetry.KindGenerate, Msg: s.msgCounter,
			Dev: d.id, Peer: -1, Gw: -1,
		})
	}
	if !d.queue.Push(lorawan.Message{
		ID:      s.msgCounter,
		Origin:  d.id,
		Created: now,
		Via:     -1,
	}) {
		s.rec.AddQueueDrop()
		if traced {
			s.emitTrace(telemetry.Event{
				T: now, Kind: telemetry.KindDrop, Msg: s.msgCounter,
				Dev: d.id, Peer: -1, Gw: -1,
			})
		}
	}
	// A new packet resets the retransmission counter (Sec. VII-A5).
	d.attempts = 0

	s.tryUplink(d, now)
}

// tryUplink attempts the device's slot transmission, deferring to the duty
// governor when the channel budget is exhausted. A fresh forwarding decision
// redirects the frame to the chosen neighbour; otherwise it is a
// sink-addressed uplink. Either way every frame is a broadcast that gateways
// and neighbours may receive.
//
//mlorass:hotpath
func (s *sim) tryUplink(d *device, now time.Duration) {
	if d.busy || d.awaitingAck || d.failed || d.queue.Len() == 0 || !d.node.Active(now) {
		return
	}
	if !d.duty.CanSend(now) {
		if !d.retryScheduled {
			d.retryScheduled = true
			if _, err := s.es.At(d.duty.NextFree(), d.retryFn); err != nil {
				d.retryScheduled = false
			}
		}
		return
	}
	dest := -1
	count := lorawan.MaxBundle
	if d.fwdTarget >= 0 {
		if now < d.fwdExpiry && s.stillInRange(d, d.fwdTarget, now) {
			dest = d.fwdTarget
			if d.fwdCount < count {
				count = d.fwdCount
			}
		} else {
			d.fwdTarget = -1
		}
	}
	s.transmit(d, now, dest, count)
}

// stillInRange reports whether the handover target is active and within the
// device-to-device range.
func (s *sim) stillInRange(d *device, dest int, now time.Duration) bool {
	target := s.devices[dest]
	if target.failed {
		return false
	}
	dpos, ok1 := s.devPos(d, now)
	tpos, ok2 := s.devPos(target, now)
	return ok1 && ok2 && dpos.Dist(tpos) <= s.cfg.D2DRangeM
}

// transmit puts one frame on the air. dest is -1 for a sink-addressed uplink
// or a device index for a device-to-device handover; count bounds the bundle.
// The bundle lives in the device's reusable scratch (one transmission in
// flight per device), and resolution state rides the device so the prebuilt
// resolveFn closure needs no per-transmission capture.
//
//mlorass:hotpath
func (s *sim) transmit(d *device, now time.Duration, dest, count int) {
	pos, ok := s.devPos(d, now)
	if !ok {
		return
	}
	if count > lorawan.MaxBundle {
		count = lorawan.MaxBundle
	}
	bundle := d.bundle[:0]
	if dest < 0 {
		bundle = d.queue.PopNInto(count, bundle)
	} else {
		// The no-send-back rule: never return a message to the device
		// it came from.
		bundle = d.queue.PopNotViaInto(count, dest, bundle)
	}
	d.bundle = bundle[:0]
	if len(bundle) == 0 {
		return
	}

	d.seq++
	frame := lorawan.Frame{
		From:               d.id,
		Seq:                d.seq,
		Messages:           bundle,
		AdvertisedRCAETX:   d.est.RCAETX(),
		AdvertisedQueueLen: d.queue.Len() + len(bundle),
	}
	phy := s.uplinkPHY(d)
	airtime := phy.Airtime(frame.PayloadBytes())
	tx := s.medium.Begin(d.id, pos, d.txPowDBm, now, now+airtime, nil)

	d.busy = true
	d.duty.Record(now, airtime)
	d.energy.RecordTx(airtime)
	d.framesSent++
	d.msgSends += uint64(len(bundle))
	s.rec.AddFrame()
	s.rec.ObserveAirtime(airtime.Seconds())
	s.rec.AddUplinkSF(int(phy.SF))

	d.pendTx = tx
	d.pendFrame = frame
	d.pendDest = dest
	if _, err := s.es.At(now+airtime, d.resolveFn); err != nil {
		// Unreachable for positive airtime; restore queue state.
		d.busy = false
		d.pendTx = nil
		d.queue.PushFront(bundle)
	}
}

// resolve completes a transmission: gateway reception and ACK, then
// device-to-device handover or retransmission bookkeeping, then neighbour
// overhearing and forwarding decisions. The frame, radio handle, and
// destination were parked on the device by transmit.
//
//mlorass:hotpath
func (s *sim) resolve(d *device, now time.Duration) {
	tx, frame, dest := d.pendTx, d.pendFrame, d.pendDest
	d.busy = false
	// The radio handle is dead after this event: the medium may recycle
	// it once the transmission has ended.
	d.pendTx = nil

	gw, rssi := s.receiveAtGateways(tx)
	switch {
	case gw >= 0:
		// Delivered. Without the MAC the gateway ACK is instant and
		// always succeeds (Sec. VII-A5) and the bundle leaves the
		// network; with it, the network server reacts (ADR, downlink
		// ack) and confirmed traffic holds the bundle until acked.
		s.rec.AddUplinkDelivery()
		if s.tracer != nil {
			for _, m := range frame.Messages {
				if s.tracer.Sampled(m.ID) {
					s.emitTrace(telemetry.Event{
						T: now, Kind: telemetry.KindUplink, Msg: m.ID,
						Dev: d.id, Peer: -1, Gw: gw, Hops: m.Hops + 1,
					})
				}
			}
		}
		fresh := s.server.Ingest(now, gw, frame.Messages)
		s.rec.AddServerFresh(fresh)
		s.throughput.Record(now, fresh)
		if s.macOn {
			s.macUplink(d, gw, rssi, now)
		} else {
			// Keep draining the backlog at every duty opportunity
			// while the contact lasts — the duty cycle is the only
			// regulatory send-rate limit; relays carrying other
			// devices' data must not idle until their next
			// generation slot.
			s.uplinkAcked(d)
		}
	case dest >= 0:
		// One handover attempt per decision, win or lose.
		d.fwdTarget = -1
		s.resolveHandover(d, tx, frame, dest, now)
		s.scheduleNextAttempt(d)
	default:
		// Failed uplink: requeue in FIFO order and retransmit after
		// the duty-cycle timer, up to the retry budget.
		d.queue.PushFront(frame.Messages)
		d.attempts++
		if !s.retry.Exhausted(d.attempts) {
			s.scheduleNextAttempt(d)
		}
	}

	s.overhear(d, tx, frame, dest, now)
}

// scheduleNextAttempt arms the device's next transmission at the earliest
// duty-free instant if it still holds data.
func (s *sim) scheduleNextAttempt(d *device) {
	if d.retryScheduled || d.queue.Len() == 0 {
		return
	}
	d.retryScheduled = true
	if _, err := s.es.At(d.duty.NextFree(), d.retryFn); err != nil {
		d.retryScheduled = false
	}
}

// gwCand is one in-range gateway during reception resolution.
type gwCand struct {
	idx  int
	dist float64
}

// receiveAtGateways attempts reception at every gateway inside the gateway
// range, nearest first, and returns the first that decodes the frame (-1 if
// none) along with the RSSI it observed (the MAC layer's SNR input). The
// candidate scratch is reused across calls and ordered by insertion sort —
// the total (dist, idx) key makes the order identical to any comparison
// sort, and in-range gateway counts are single digits.
//
//mlorass:hotpath
func (s *sim) receiveAtGateways(tx *radio.Transmission) (int, radio.DBm) {
	cands := s.gwCands[:0]
	maxR := s.cfg.GatewayRangeM
	for i, gp := range s.gws {
		if s.gwUp != nil && !s.gwUp[i] {
			continue // gateway inside an outage window
		}
		// Bounding-box pre-filter: |dx| > R (or |dy| > R) implies the
		// Euclidean distance exceeds R, skipping the hypot.
		if dx := tx.Pos.X - gp.X; dx > maxR || dx < -maxR {
			continue
		}
		if dy := tx.Pos.Y - gp.Y; dy > maxR || dy < -maxR {
			continue
		}
		if d := tx.Pos.Dist(gp); d <= maxR {
			c := gwCand{idx: i, dist: d}
			j := len(cands)
			cands = append(cands, c)
			for j > 0 && (cands[j-1].dist > c.dist ||
				(cands[j-1].dist == c.dist && cands[j-1].idx > c.idx)) {
				cands[j] = cands[j-1]
				j--
			}
			cands[j] = c
		}
	}
	s.gwCands = cands[:0]
	for _, c := range cands {
		if rec := s.medium.Receive(tx, s.gws[c.idx]); rec.OK() {
			return c.idx, rec.RSSIDBm
		}
	}
	return -1, 0
}

// resolveHandover completes a device-to-device transfer: if the target
// decodes the frame it absorbs the messages (hop count incremented,
// provenance recorded); otherwise the sender requeues them.
func (s *sim) resolveHandover(d *device, tx *radio.Transmission, frame lorawan.Frame, dest int, now time.Duration) {
	s.handoverAttempts++
	target := s.devices[dest]
	tpos, ok := s.devPos(target, now)
	received := ok && !target.busy && !target.failed && s.listening(target) &&
		tx.Pos.Dist(tpos) <= s.cfg.D2DRangeM
	if !received {
		// The handover missed: a collision at the target, the target
		// transmitting, or the pair separating during the airtime. The
		// always-listening Class-C sender never hears the data
		// re-advertised, so it keeps the bundle and retries later —
		// handovers are effectively reliable, matching the paper's
		// application-layer transfer model.
		s.handoverLostMsgs += uint64(len(frame.Messages))
		d.queue.PushFront(frame.Messages)
		return
	}
	s.handoverSuccesses++
	s.handoverMsgs += uint64(len(frame.Messages))
	s.rec.AddRelayHops(len(frame.Messages))
	for _, m := range frame.Messages {
		m.Hops++
		m.Via = d.id
		traced := s.tracer.Sampled(m.ID)
		if traced {
			s.emitTrace(telemetry.Event{
				T: now, Kind: telemetry.KindRelay, Msg: m.ID,
				Dev: d.id, Peer: dest, Gw: -1, Hops: m.Hops,
			})
		}
		if !target.queue.Push(m) { // full queue counts a drop
			s.rec.AddQueueDrop()
			if traced {
				s.emitTrace(telemetry.Event{
					T: now, Kind: telemetry.KindDrop, Msg: m.ID,
					Dev: dest, Peer: -1, Gw: -1, Hops: m.Hops,
				})
			}
		}
	}
	target.banSendBack(d.id)
}

// banSendBack records that this device received data from the given
// neighbour (no-send-back rule); duplicates are skipped.
func (d *device) banSendBack(id int) {
	for _, b := range d.noSendBack {
		if int(b) == id {
			return
		}
	}
	d.noSendBack = append(d.noSendBack, int32(id))
}

// bannedSendBack reports whether the neighbour is under the no-send-back
// rule.
func (d *device) bannedSendBack(id int) bool {
	for _, b := range d.noSendBack {
		if int(b) == id {
			return true
		}
	}
	return false
}

// emitTrace stamps the run label onto an event and forwards it to the
// tracer. Callers have already checked Sampled for the message.
func (s *sim) emitTrace(e telemetry.Event) {
	e.Run = s.traceRun
	s.tracer.Emit(e)
	s.rec.AddTraceEvent()
}

// Delivered implements netserver.Observer: the ledger's first-copy
// acceptance streams the end-to-end delay into the recorder and a deliver
// record into the trace.
func (s *sim) Delivered(d netserver.Delivery) {
	s.rec.ObserveDelay(d.Delay().Seconds())
	if s.tracer.Sampled(d.MessageID) {
		s.emitTrace(telemetry.Event{
			T: d.Arrived, Kind: telemetry.KindDeliver, Msg: d.MessageID,
			Dev: -1, Peer: -1, Gw: d.Gateway, Hops: d.Hops,
			DelayS: d.Delay().Seconds(),
		})
	}
}

// Duplicate implements netserver.Observer: a deduplicated copy counts and,
// when sampled, traces.
func (s *sim) Duplicate(now time.Duration, gw int, m lorawan.Message) {
	s.rec.AddServerDuplicate()
	if s.tracer.Sampled(m.ID) {
		s.emitTrace(telemetry.Event{
			T: now, Kind: telemetry.KindDuplicate, Msg: m.ID,
			Dev: -1, Peer: -1, Gw: gw, Hops: m.Hops + 1,
		})
	}
}

// listening reports whether a device's receiver is open right now: Modified
// Class-C always listens; Queue-based Class-A listens for the γ fraction of
// the slot (modelled as a Bernoulli draw per reception opportunity).
func (s *sim) listening(d *device) bool {
	if s.cfg.Class != lorawan.ClassQueueA {
		return true
	}
	if d.listenFraction >= 1 {
		return true
	}
	if d.listenFraction <= 0 {
		return false
	}
	return d.rnd.Float64() < d.listenFraction
}

// overhear lets every in-range listening neighbour receive the broadcast and
// run the forwarding policy against the advertised RCA-ETX and queue length
// (Sec. IV-A).
//
//mlorass:hotpath
func (s *sim) overhear(sender *device, tx *radio.Transmission, frame lorawan.Frame, dest int, now time.Duration) {
	if s.policy.Scheme() == routing.SchemeNoRouting {
		return
	}
	maxR := s.cfg.D2DRangeM
	if s.ix.stale(now) {
		s.ixNow = now
		s.ix.refresh(now, s.activeList, s.posFn)
	}
	for _, zi := range s.ix.candidates(now, tx.Pos, maxR) {
		if zi == sender.id || zi == dest {
			continue
		}
		z := s.devices[zi]
		if z.busy || z.failed || z.queue.Len() == 0 {
			continue
		}
		zpos, ok := s.devPos(z, now)
		if !ok {
			continue
		}
		// Bounding-box pre-filter before the exact (hypot) distance.
		if dx := tx.Pos.X - zpos.X; dx > maxR || dx < -maxR {
			continue
		}
		if dy := tx.Pos.Y - zpos.Y; dy > maxR || dy < -maxR {
			continue
		}
		dist := tx.Pos.Dist(zpos)
		if dist > maxR {
			continue
		}
		if !s.listening(z) {
			continue
		}
		if z.bannedSendBack(sender.id) {
			continue
		}
		// One RSSI measurement per overheard broadcast feeds Eq. (5),
		// at the sender's (possibly ADR-lowered) transmit power.
		rssi := s.d2dLoss.RSSI(sender.txPowDBm, radio.Meters(dist), s.d2dShadow)
		linkETX := s.link.RCAETX(rssi)
		local := routing.LocalState{
			RCAETX:   z.est.RCAETX(),
			Phi:      z.est.Phi(),
			QueueLen: z.queue.Len(),
		}
		dec := s.policy.OnOverhear(local, frame, linkETX, s.gwCfg.PhiMin, s.gwCfg.PhiMax)
		if !dec.Forward {
			continue
		}
		// Record the decision; the handover rides z's next regular
		// transmission opportunity — its upcoming slot tick or an
		// already-scheduled duty-cycle retry (one pending decision at
		// a time, freshest wins). Riding existing opportunities keeps
		// the channel load of the forwarding schemes at the baseline's
		// level, as in the paper's ≤2.2x message-overhead budget.
		z.fwdTarget = sender.id
		z.fwdCount = dec.Count
		z.fwdExpiry = now + s.cfg.MsgInterval
	}
}
