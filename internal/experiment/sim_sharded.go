package experiment

import (
	"fmt"
	"slices"
	"time"

	"mlorass/internal/core"
	"mlorass/internal/disruption"
	"mlorass/internal/eventsim"
	"mlorass/internal/geo"
	"mlorass/internal/gwplan"
	"mlorass/internal/lorawan"
	"mlorass/internal/mac"
	"mlorass/internal/mobility"
	"mlorass/internal/netserver"
	"mlorass/internal/radio"
	"mlorass/internal/rng"
	"mlorass/internal/routing"
	"mlorass/internal/stats"
	"mlorass/internal/telemetry"
)

// This file is the sharded execution engine (Config.Shards ≥ 1): the city is
// partitioned into spatial tiles, each tile runs its own event kernel on its
// own goroutine, and the tiles advance in lockstep through conservative
// lookahead windows. Per window (W, W+L]:
//
//   phase A (parallel)  every tile applies its inbox (handover settlements,
//                       downlink plans) and runs its kernel to the window
//                       horizon H = W+L: slot ticks, duty retries, churn.
//                       Transmissions begun are recorded in a per-tile
//                       outbox instead of scheduling kernel resolutions.
//   A/B barrier         the coordinator merges every tile's new
//                       transmissions; each tile imports the foreign ones
//                       into its radio-medium view (order-free: capture
//                       takes a max over the interferer set).
//   phase B (parallel)  each tile resolves its transmissions due by H in
//                       (time, device, kind) order: gateway reception with
//                       keyed shadowing draws, MAC requests, broadcast
//                       records for receivers — all emitted to outboxes.
//   B/C barrier         the coordinator feeds decoded frames to the ledger,
//                       throughput series and delay histogram in intrinsic
//                       (time, sender, seq) order, and replays MAC
//                       operations against the one global ADR controller
//                       and downlink scheduler; downlink plans route to
//                       their device's tile for the next window.
//   phase C (parallel)  each tile delivers the window's broadcasts to its
//                       own devices in global (time, sender, seq) order:
//                       handover reception and neighbour overhearing.
//                       Failed handovers emit settlements routed back to
//                       the sender's tile.
//   C barrier           trace events merge-sort and emit; next window.
//
// Determinism contract: every cross-device random draw is keyed on
// intrinsic identities (seed, sender, frame sequence, receiver) via
// rng.Key*/rng.Seeded, every cross-tile merge is sorted by an intrinsic
// total order, and every cross-device state read happens in a fixed phase —
// so results are BIT-IDENTICAL for every shard count N ≥ 1, every tile
// layout, and every GOMAXPROCS. They are intentionally distinct from the
// serial engine (Shards = 0), whose sequential draw order cannot be
// reproduced concurrently; the serial engine and all its goldens stay
// untouched. Divergences are the window-quantised visibility of cross-event
// state and the keyed (rather than sequential) draw streams — documented in
// README "Sharded runs".
//
// Lookahead: L = 2 s, clamped to RX1Delay when the MAC is on, so a downlink
// scheduled from window j (start ≥ uplinkEnd + RX1Delay ≥ W_j + L) is always
// appliable at the start of window j+1 — no tile ever receives an event
// earlier than its local clock (the causality counter, asserted zero by the
// property tests). Duty-cycle retries that would land inside the already-run
// window are clamped to the window grid and counted as lateRetries.

// shardPhase* number the pool phases.
const (
	shardPhaseKernel = iota
	shardPhaseResolve
	shardPhaseDeliver
)

// resolve kinds, ordered: uplinks resolve before downlinks at equal instants.
const (
	rkUplink uint8 = iota
	rkDownlink
)

// MAC coordinator-op kinds, ordered to match phase B execution order.
const (
	macOpUplink uint8 = iota
	macOpReset
)

// txRec is one transmission begun this window, merged into every tile's
// medium view at the A/B barrier.
type txRec struct {
	shard      int32
	from       int
	pos        geo.Point
	pow        radio.DBm
	start, end time.Duration
}

// bcastRec is one resolved device frame fanned out to receivers in phase C.
// The message payload lives in the sender shard's window arena.
type bcastRec struct {
	at    time.Duration
	from  int
	seq   uint32
	shard int32
	// dest is the effective handover target (-1 when sink-addressed or
	// preempted by a gateway decode); skip is the originally addressed
	// device, excluded from overhearing either way (as in the serial
	// engine's overhear loop).
	dest         int
	skip         int
	pow          radio.DBm
	pos          geo.Point
	advRCAETX    float64
	advQueueLen  int
	mStart, mEnd int32
}

// ingestRec is one gateway-decoded frame bound for the coordinator ledger.
type ingestRec struct {
	at           time.Duration
	from         int
	seq          uint32
	gw           int
	shard        int32
	mStart, mEnd int32
}

// macOp is one MAC-plane operation replayed by the coordinator against the
// global controller/scheduler in intrinsic (at, dev, kind) order.
type macOp struct {
	at     time.Duration
	dev    int
	kind   uint8
	gw     int
	snr    radio.DB
	dr     lorawan.DataRate
	powIdx int
	timing netserver.RxTiming
}

// planRec is one committed downlink plan routed to the device's tile.
type planRec struct {
	dev    int
	gw     int
	start  time.Duration
	air    time.Duration
	ack    bool
	cmd    lorawan.LinkADRReq
	hasCmd bool
}

// settleRec reconciles a failed handover back onto the sender: the bundle
// (still in the sender shard's arena) returns to its queue head at the next
// window start.
type settleRec struct {
	at           time.Duration
	sender       int
	shard        int32
	mStart, mEnd int32
}

// airRec carries one frame's airtime to the coordinator so the airtime
// histogram accumulates as a single sorted stream (bitwise N-invariant).
type airRec struct {
	at  time.Duration
	dev int
	sec float64
}

// resolveRef is one pending transmission resolution on a tile.
type resolveRef struct {
	at   time.Duration
	dev  *device
	kind uint8
}

// shardDiag exposes engine internals to the test layer.
type shardDiag struct {
	// Windows is the number of lookahead windows executed.
	Windows int
	// Causality counts inbox events carrying a timestamp earlier than the
	// receiving tile's local clock — always zero (property-tested).
	Causality uint64
	// LateRetries counts duty-cycle retries clamped to the window grid
	// (benign quantisation, distinct from causality violations).
	LateRetries uint64
	// Lookahead is the window length used.
	Lookahead time.Duration
}

// sharded is the engine: coordinator state plus one shard per tile.
type sharded struct {
	cfg       Config
	k         int
	lookahead time.Duration

	fleet   *mobility.Fleet
	gws     []geo.Point
	policy  routing.Policy
	phy     radio.PHYParams
	link    core.LinkModel
	gwCfg   core.GatewayConfig
	retry   lorawan.RetryPolicy
	devices []*device
	owner   []int32
	shards  []*shard
	pool    *eventsim.Pool

	contactCapacityPPS float64
	d2dLoss            radio.PathLoss
	overhearOn         bool

	server               *netserver.Server
	throughput           *stats.TimeSeries
	plan                 *disruption.Plan
	gatewayOutageWindows int
	deviceFailures       int

	// Coordinator-side telemetry: the delay stream, ledger counters and
	// the trace sink all accumulate on one goroutine in sorted order.
	rec      *telemetry.Recorder
	tracer   *telemetry.Tracer
	traceRun string

	macOn      bool
	confirmed  bool
	adrOn      bool
	phyByDR    [lorawan.NumDataRates]radio.PHYParams
	dlAirTbl   [lorawan.NumDataRates][2]time.Duration
	noiseFloor radio.DBm
	gwTxPowDBm radio.DBm

	// Intrinsic draw seeds (keyed draws only — no sequential streams).
	gwShadowSeed uint64
	d2dSeed      uint64
	listenSeed   uint64

	// Current window bounds, written by the coordinator between barriers.
	windowStart time.Duration
	horizon     time.Duration

	// Merged per-window views (coordinator-written, shard-read).
	windowTx    []txRec
	windowBcast []bcastRec

	// Coordinator scratch, reused across windows.
	freshBuf   []ingestRec
	airBuf     []airRec
	macBuf     []macOp
	settleBuf  []settleRec
	traceBuf   []telemetry.Event
	coordTrace []telemetry.Event

	windows int
}

// frameKey packs a transmission's intrinsic identity (sender, sequence)
// into one key word. Gateway downlink senders are negative (-1-gw), which
// maps to a distinct high word.
//
//mlorass:hotpath
func frameKey(from int, seq uint32) uint64 {
	return uint64(uint32(int32(from+1)))<<32 | uint64(seq)
}

// intrinsicMsgID numbers a device's messages independently of any global
// event order: (device+1) in the high word, the device's own counter in the
// low word.
//
//mlorass:hotpath
func intrinsicMsgID(dev int, seq uint32) uint64 {
	return uint64(dev+1)<<32 | uint64(seq)
}

// shardLookahead derives the conservative window length: 2 s of slack, or
// the RX1 delay when the MAC is on so downlink plans from window j are
// always in window j+1's future.
func shardLookahead(cfg *Config) time.Duration {
	l := 2 * time.Second
	if cfg.MAC.Enabled() && cfg.MAC.RX1Delay < l {
		l = cfg.MAC.RX1Delay
	}
	if l <= 0 {
		l = time.Millisecond
	}
	return l
}

// defaultAssign partitions by vertical strips of the area: contiguous tiles
// with balanced geometry, the natural fit for the paper's city square.
func defaultAssign(area geo.Rect, k int) func(id int, home geo.Point) int {
	w := area.Width()
	return func(_ int, home geo.Point) int {
		if w <= 0 || k <= 1 {
			return 0
		}
		t := int(float64(k) * (home.X - area.Min.X) / w)
		if t < 0 {
			t = 0
		}
		if t >= k {
			t = k - 1
		}
		return t
	}
}

// runSharded executes cfg on the windowed sharded engine. assign overrides
// the tile assignment (tests randomise it to prove layout invariance); nil
// selects the default strip partition. The returned diagnostics back the
// causality and equivalence test layer.
func runSharded(cfg Config, assign func(id int, home geo.Point) int) (*Result, *shardDiag, error) {
	cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	k := cfg.Shards
	if k < 1 {
		k = 1
	}

	fleet, ds, err := buildFleet(&cfg)
	if err != nil {
		return nil, nil, err
	}
	area := cfg.area()
	if ds != nil {
		area = ds.Area
	}
	var gws []geo.Point
	if cfg.GatewayStrategy == gwplan.RouteAware {
		gws, err = gwplan.PlaceRouteAware(ds, cfg.NumGateways, cfg.GatewayRangeM)
	} else {
		gws, err = gwplan.Place(cfg.GatewayStrategy, area, cfg.NumGateways, cfg.Seed^0x9e37)
	}
	if err != nil {
		return nil, nil, err
	}
	policy, err := routing.New(cfg.Scheme)
	if err != nil {
		return nil, nil, err
	}

	phy := radio.DefaultPHY(cfg.SF)
	fullFrame := lorawan.Frame{Messages: make([]lorawan.Message, lorawan.MaxBundle)}
	fullAirtime := phy.Airtime(fullFrame.PayloadBytes())
	cmaxPPS := cfg.DutyCycle / fullAirtime.Seconds()

	loss := radio.DefaultPathLoss()
	loss.ShadowSigmaDB = radio.DB(cfg.ShadowSigmaDB)

	gwCfg := core.GatewayConfig{
		Alpha:           cfg.Alpha,
		Delta:           cfg.MsgInterval,
		DefaultCapacity: cmaxPPS,
		PhiMin:          1e-5,
		PhiMax:          cmaxPPS,
	}
	if err := gwCfg.Validate(); err != nil {
		return nil, nil, err
	}
	link := core.DefaultLinkModel(cmaxPPS)
	link.GammaMinDBm = cfg.SF.Sensitivity()
	if err := link.Validate(); err != nil {
		return nil, nil, err
	}
	throughput, err := stats.NewTimeSeries(cfg.ThroughputBin, cfg.Duration)
	if err != nil {
		return nil, nil, err
	}

	idxSpeed := fleet.MaxSpeedMPS()
	if idxSpeed < 11 {
		idxSpeed = 11
	}

	e := &sharded{
		cfg:                cfg,
		k:                  k,
		lookahead:          shardLookahead(&cfg),
		fleet:              fleet,
		gws:                gws,
		policy:             policy,
		phy:                phy,
		link:               link,
		gwCfg:              gwCfg,
		retry:              lorawan.DefaultRetryPolicy(),
		server:             netserver.New(),
		throughput:         throughput,
		contactCapacityPPS: cmaxPPS,
		d2dLoss:            loss,
		overhearOn:         cfg.Scheme != routing.SchemeNoRouting,
		gwShadowSeed:       cfg.Seed ^ 0x51ab,
		d2dSeed:            cfg.Seed ^ 0x0d2d,
		listenSeed:         cfg.Seed ^ 0x115e,
	}
	if !cfg.Telemetry.Disabled {
		e.rec = telemetry.NewRecorder()
	}
	e.tracer = cfg.Telemetry.Trace
	if e.tracer != nil {
		e.traceRun = fmt.Sprintf("%s/%s/gw=%d/seed=%d",
			cfg.Environment, cfg.Scheme, cfg.NumGateways, cfg.Seed)
	}
	if e.rec != nil || e.tracer != nil {
		e.server.SetObserver(e)
	}
	if cfg.MAC.Enabled() {
		if err := e.setupMAC(); err != nil {
			return nil, nil, err
		}
	}

	if assign == nil {
		assign = defaultAssign(area, k)
	}
	mediumCfg := radio.MediumConfig{
		Loss:           loss,
		SensitivityDBm: -1e9,
		CaptureDB:      radio.DB(cfg.CaptureDB),
		Seed:           cfg.Seed ^ 0x51ab,
	}
	e.shards = make([]*shard, k)
	for i := 0; i < k; i++ {
		medium, err := radio.NewMedium(mediumCfg)
		if err != nil {
			return nil, nil, err
		}
		s := &shard{
			eng:    e,
			idx:    i,
			es:     eventsim.New(),
			medium: medium,
			ix:     newDevIndex(cfg.D2DRangeM, 30*time.Second, idxSpeed),
		}
		if !cfg.Telemetry.Disabled {
			s.rec = telemetry.NewRecorder()
		}
		if e.tracer != nil && s.rec != nil {
			s.es.SetProbe(s.rec)
		}
		s.posFn = func(id int) (geo.Point, bool) {
			z := e.devices[id]
			if p, ok := s.devPos(z, s.ixNow); ok {
				return p, true
			}
			if sm, ok := z.node.(mobility.StaticModel); ok && !z.failed {
				return sm.FixedPosition(), true
			}
			return geo.Point{}, false
		}
		e.shards[i] = s
	}

	if err := e.buildDevices(assign, area); err != nil {
		return nil, nil, err
	}
	if err := e.scheduleDisruption(); err != nil {
		return nil, nil, err
	}

	if live := cfg.Telemetry.Live; live != nil {
		// Publish every recorder — coordinator (delay/airtime stream) and
		// per-shard (tile-local counters) — for the run's duration; a
		// scrape merges them exactly like collect() does at the end.
		if e.rec != nil {
			defer live.Attach(e.rec)()
		}
		for _, s := range e.shards {
			if s.rec != nil {
				defer live.Attach(s.rec)()
			}
		}
	}

	e.pool = eventsim.NewPool(k, e.phase)
	if err := e.run(); err != nil {
		return nil, nil, err
	}
	res, diag := e.collect()
	return res, diag, nil
}

// setupMAC mirrors sim.setupMAC: the MAC control plane is global — one ADR
// controller and one downlink scheduler on the coordinator, driven in
// intrinsic order by the windowed macOp stream.
func (e *sharded) setupMAC() error {
	e.macOn = true
	e.confirmed = e.cfg.MAC.Confirmed
	for dr := 0; dr < lorawan.NumDataRates; dr++ {
		e.phyByDR[dr] = radio.DefaultPHY(lorawan.DataRate(dr).SF())
		e.dlAirTbl[dr][0] = e.phyByDR[dr].Airtime(lorawan.DownlinkBytes(false))
		e.dlAirTbl[dr][1] = e.phyByDR[dr].Airtime(lorawan.DownlinkBytes(true))
	}
	e.noiseFloor = radio.NoiseFloorDBm(e.phy.BandwidthHz)
	e.gwTxPowDBm = radio.DBm(e.cfg.MAC.DownlinkTxPowerDBm)

	var ctrl *mac.Controller
	if e.cfg.MAC.ADR {
		var err error
		ctrl, err = mac.NewController(mac.ADRConfig{
			MarginDB:   radio.DB(e.cfg.MAC.ADRMarginDB),
			HistoryLen: e.cfg.MAC.ADRHistory,
			StepDB:     3,
			MinHistory: e.cfg.MAC.ADRMinHistory,
		}, e.fleet.Len())
		if err != nil {
			return err
		}
	}
	sched, err := mac.NewScheduler(len(e.gws), e.cfg.MAC.DownlinkDutyCycle)
	if err != nil {
		return err
	}
	e.server.AttachMAC(&netserver.MAC{ADR: ctrl, Sched: sched})
	return nil
}

// buildDevices creates every device in id order (preserving the per-device
// RNG split sequence for any tile layout), assigns tile ownership by home
// position, and schedules activation/slot events on the owner's kernel.
func (e *sharded) buildDevices(assign func(id int, home geo.Point) int, area geo.Rect) error {
	cfg := &e.cfg
	rootRNG := rng.New(cfg.Seed ^ 0xdee1)
	n := e.fleet.Len()
	e.devices = make([]*device, n)
	e.owner = make([]int32, n)
	for i := 0; i < n; i++ {
		est, err := core.NewGatewayEstimator(e.gwCfg)
		if err != nil {
			return err
		}
		d := &device{
			id:             i,
			node:           e.fleet.Node(i),
			cursor:         mobility.NewCursor(e.fleet.Node(i)),
			queue:          lorawan.NewQueue(cfg.QueueMax),
			est:            est,
			duty:           lorawan.NewDutyGovernor(cfg.DutyCycle),
			rnd:            rootRNG.Split(),
			bundle:         make([]lorawan.Message, 0, lorawan.MaxBundle),
			pendDest:       -1,
			fwdTarget:      -1,
			listenFraction: 1,
			txPowDBm:       radio.DBm(cfg.TxPowerDBm),
			flightStart:    -1,
			flightEnd:      -1,
			prevFlightSta:  -1,
			prevFlightEnd:  -1,
		}
		e.devices[i] = d

		ti := assign(i, e.homePos(d, area))
		if ti < 0 {
			ti = 0
		}
		if ti >= e.k {
			ti = e.k - 1
		}
		e.owner[i] = int32(ti)
		sh := e.shards[ti]
		sh.owned = append(sh.owned, d)

		if e.macOn {
			joinSF := cfg.MAC.InitialSF
			if joinSF == 0 {
				joinSF = cfg.SF
			}
			dr0, _ := lorawan.DataRateForSF(joinSF)
			d.dr = dr0
			d.dlFn = func(end time.Duration) { sh.resolveDown(d, end) }
			d.ackTimeoutFn = func(at time.Duration) { sh.ackTimeout(d, at) }
		}
		d.slotFn = func(now time.Duration) {
			if d.failed {
				return
			}
			sh.tick(d, now)
			sh.scheduleTick(d, now+cfg.MsgInterval)
		}
		d.retryFn = func(later time.Duration) {
			d.retryScheduled = false
			sh.tryUplink(d, later)
		}
		// resolveFn is unused by the sharded engine (resolutions ride the
		// phase B list, not the kernel), but kept non-nil for symmetry.
		d.resolveFn = func(end time.Duration) { sh.resolveUp(d, end) }

		start, end := d.node.Window()
		if start >= cfg.Duration {
			continue
		}
		jitter := time.Duration(d.rnd.Uniform(0, cfg.MsgInterval.Seconds()) * float64(time.Second))
		first := start + jitter
		if first >= end || first >= cfg.Duration {
			continue
		}
		if _, err := sh.es.At(start, func(time.Duration) { sh.activate(d) }); err != nil {
			return err
		}
		if end < cfg.Duration {
			if _, err := sh.es.At(end, func(time.Duration) { sh.deactivate(d) }); err != nil {
				return err
			}
		}
		sh.scheduleTick(d, first)
	}
	return nil
}

// homePos is the device's tile-assignment anchor: its fixed position for
// static models, its service-window start position for mobile ones.
func (e *sharded) homePos(d *device, area geo.Rect) geo.Point {
	if sm, ok := d.node.(mobility.StaticModel); ok {
		return sm.FixedPosition()
	}
	start, _ := d.node.Window()
	if p, ok := d.node.PositionAt(start); ok {
		return p
	}
	return area.Center()
}

// scheduleDisruption compiles the plan. Gateway availability is looked up
// intrinsically per instant (Plan.GatewayUp) instead of via mutable flags,
// so tiles never share outage state; device churn schedules owner-tile
// kernel events exactly like the serial engine.
func (e *sharded) scheduleDisruption() error {
	if !e.cfg.Disruption.Enabled() {
		return nil
	}
	plan, err := disruption.Compile(e.cfg.Disruption, e.cfg.Seed^0xd15c, len(e.gws), len(e.devices), e.cfg.Duration)
	if err != nil {
		return err
	}
	e.plan = plan
	e.gatewayOutageWindows = plan.OutageWindows()
	for di, failAt := range plan.DeviceFailAt {
		if failAt < 0 || failAt >= e.cfg.Duration {
			continue
		}
		d := e.devices[di]
		sh := e.shards[e.owner[di]]
		e.deviceFailures++
		if _, err := sh.es.At(failAt, func(time.Duration) {
			d.failed = true
			sh.deactivate(d)
		}); err != nil {
			return err
		}
	}
	return nil
}

// gwUpAt reports gateway availability at an instant.
//
//mlorass:hotpath
func (e *sharded) gwUpAt(gw int, at time.Duration) bool {
	return e.plan == nil || e.plan.GatewayUp(gw, at)
}

// aliveAt reports whether the device has not yet churned out at an instant.
//
//mlorass:hotpath
func (e *sharded) aliveAt(dev int, at time.Duration) bool {
	return e.plan == nil || e.plan.DeviceAlive(dev, at)
}

// phase dispatches one pool phase on one shard. With a span sink
// configured, every dispatch is timed: the sink owns the clock, so the
// engine stays determinism-lint clean, and the SpanEnd is a stack value
// with constant-string names — no allocation per window.
func (e *sharded) phase(ph, si int) {
	s := e.shards[si]
	sink := e.cfg.Telemetry.Spans
	var tok telemetry.SpanToken
	if sink != nil {
		tok = sink.StartSpan()
	}
	switch ph {
	case shardPhaseKernel:
		s.runKernel()
	case shardPhaseResolve:
		s.runResolve()
	case shardPhaseDeliver:
		s.runDeliver()
	}
	if sink == nil {
		return
	}
	var name string
	var attr int64
	switch ph {
	case shardPhaseKernel:
		// Queue depth after the advance: how much future work the tile
		// is carrying into the next window.
		name, attr = "kernel", int64(s.es.QueueLen())
	case shardPhaseResolve:
		// Cross-tile import fan-out: every shard scans the window's full
		// transmission set, so this is the replication cost driver.
		name, attr = "resolve", int64(len(e.windowTx))
	case shardPhaseDeliver:
		name, attr = "deliver", int64(len(e.windowBcast))
	}
	sink.EndSpan(telemetry.SpanEnd{Token: tok, Name: name, Shard: si, At: e.windowStart, Attr: attr})
}

// run drives the window loop.
func (e *sharded) run() error {
	defer e.pool.Close()
	d := e.cfg.Duration
	for w := time.Duration(0); w < d; {
		h := w + e.lookahead
		if h > d {
			h = d
		}
		e.windowStart, e.horizon = w, h
		e.windows++

		e.pool.Run(shardPhaseKernel)
		if err := e.firstErr(); err != nil {
			return err
		}
		e.gatherTx()
		e.pool.Run(shardPhaseResolve)
		if err := e.firstErr(); err != nil {
			return err
		}
		sink := e.cfg.Telemetry.Spans
		var tok telemetry.SpanToken
		if sink != nil {
			tok = sink.StartSpan()
		}
		e.coordinate()
		e.gatherBcast()
		if sink != nil {
			// The coordinator's serial section; attr is the window's
			// fresh-delivery count, the merge's output volume.
			sink.EndSpan(telemetry.SpanEnd{
				Token: tok, Name: "merge", Shard: -1, At: w, Attr: int64(len(e.freshBuf)),
			})
		}
		e.pool.Run(shardPhaseDeliver)
		e.routeSettlements()
		e.flushTrace()
		w = h
	}
	return nil
}

func (e *sharded) firstErr() error {
	for _, s := range e.shards {
		if s.err != nil {
			return s.err
		}
	}
	return nil
}

// gatherTx merges the window's transmissions for the A/B barrier import.
func (e *sharded) gatherTx() {
	e.windowTx = e.windowTx[:0]
	for _, s := range e.shards {
		e.windowTx = append(e.windowTx, s.outTx...)
	}
}

// gatherBcast merges and orders the window's broadcasts for phase C.
func (e *sharded) gatherBcast() {
	e.windowBcast = e.windowBcast[:0]
	for _, s := range e.shards {
		e.windowBcast = append(e.windowBcast, s.outBcast...)
	}
	slices.SortFunc(e.windowBcast, cmpBcast)
}

// coordinate runs the B/C barrier work: ledger ingest, the single-stream
// airtime histogram, and the MAC control plane, all in intrinsic order.
func (e *sharded) coordinate() {
	e.freshBuf = e.freshBuf[:0]
	for _, s := range e.shards {
		e.freshBuf = append(e.freshBuf, s.outFresh...)
	}
	slices.SortFunc(e.freshBuf, cmpIngest)
	for i := range e.freshBuf {
		rec := &e.freshBuf[i]
		msgs := e.shards[rec.shard].msgArena[rec.mStart:rec.mEnd]
		fresh := e.server.Ingest(rec.at, rec.gw, msgs)
		e.rec.AddServerFresh(fresh)
		e.throughput.Record(rec.at, fresh)
	}

	e.airBuf = e.airBuf[:0]
	for _, s := range e.shards {
		e.airBuf = append(e.airBuf, s.outAir...)
	}
	slices.SortFunc(e.airBuf, cmpAir)
	for i := range e.airBuf {
		e.rec.ObserveAirtime(e.airBuf[i].sec)
	}

	if !e.macOn {
		return
	}
	e.macBuf = e.macBuf[:0]
	for _, s := range e.shards {
		e.macBuf = append(e.macBuf, s.outMac...)
	}
	slices.SortFunc(e.macBuf, cmpMacOp)
	m := e.server.MAC()
	for i := range e.macBuf {
		op := &e.macBuf[i]
		if op.kind == macOpReset {
			if m.ADR != nil {
				m.ADR.Reset(op.dev)
			}
			continue
		}
		plan, ok := m.OnUplink(op.dev, op.gw, op.snr, op.dr, op.powIdx, e.confirmed, op.at, op.timing)
		if !ok {
			continue
		}
		sh := e.shards[e.owner[plan.Device]]
		sh.inPlan = append(sh.inPlan, planRec{
			dev:    plan.Device,
			gw:     plan.Gateway,
			start:  plan.Start,
			air:    plan.AirTime,
			ack:    plan.Ack,
			cmd:    plan.Cmd,
			hasCmd: plan.HasCmd,
		})
	}
}

// routeSettlements distributes failed-handover reconciliations to their
// senders' tiles in intrinsic order.
func (e *sharded) routeSettlements() {
	e.settleBuf = e.settleBuf[:0]
	for _, s := range e.shards {
		e.settleBuf = append(e.settleBuf, s.outSettle...)
	}
	slices.SortFunc(e.settleBuf, cmpSettle)
	for _, st := range e.settleBuf {
		sh := e.shards[st.shard]
		sh.inSettle = append(sh.inSettle, st)
	}
}

// flushTrace merge-sorts the window's trace events and emits them.
func (e *sharded) flushTrace() {
	if e.tracer == nil {
		e.coordTrace = e.coordTrace[:0]
		return
	}
	e.traceBuf = e.traceBuf[:0]
	for _, s := range e.shards {
		e.traceBuf = append(e.traceBuf, s.outTrace...)
	}
	e.traceBuf = append(e.traceBuf, e.coordTrace...)
	e.coordTrace = e.coordTrace[:0]
	slices.SortStableFunc(e.traceBuf, cmpTrace)
	for i := range e.traceBuf {
		ev := e.traceBuf[i]
		ev.Run = e.traceRun
		e.tracer.Emit(ev)
		e.rec.AddTraceEvent()
	}
}

// Delivered implements netserver.Observer on the coordinator.
func (e *sharded) Delivered(d netserver.Delivery) {
	e.rec.ObserveDelay(d.Delay().Seconds())
	if e.tracer.Sampled(d.MessageID) {
		e.coordTrace = append(e.coordTrace, telemetry.Event{
			T: d.Arrived, Kind: telemetry.KindDeliver, Msg: d.MessageID,
			Dev: -1, Peer: -1, Gw: d.Gateway, Hops: d.Hops,
			DelayS: d.Delay().Seconds(),
		})
	}
}

// Duplicate implements netserver.Observer on the coordinator.
func (e *sharded) Duplicate(now time.Duration, gw int, m lorawan.Message) {
	e.rec.AddServerDuplicate()
	if e.tracer.Sampled(m.ID) {
		e.coordTrace = append(e.coordTrace, telemetry.Event{
			T: now, Kind: telemetry.KindDuplicate, Msg: m.ID,
			Dev: -1, Peer: -1, Gw: gw, Hops: m.Hops + 1,
		})
	}
}

// collect mirrors sim.collect over the tile set.
func (e *sharded) collect() (*Result, *shardDiag) {
	r := &Result{
		Config:     e.cfg,
		Delivered:  e.server.Count(),
		Duplicates: e.server.Duplicates(),
		Throughput: e.throughput,
	}
	diag := &shardDiag{Windows: e.windows, Lookahead: e.lookahead}
	var ms radio.MediumStats
	for _, s := range e.shards {
		st := s.medium.Stats()
		ms.Transmissions += st.Transmissions
		ms.Receptions += st.Receptions
		ms.Collisions += st.Collisions
		ms.BelowSensitivity += st.BelowSensitivity
		ms.OutOfRange += st.OutOfRange
		r.Generated += s.generated
		r.HandoverAttempts += s.handoverAttempts
		r.HandoverSuccesses += s.handoverSuccesses
		r.HandoverMsgs += s.handoverMsgs
		r.HandoverLostMsgs += s.handoverLostMsgs
		diag.Causality += s.causality
		diag.LateRetries += s.lateRetries
		if e.macOn {
			r.Downlinks += s.downlinks
			r.DownlinkDeliveries += s.downlinkDeliveries
			r.AckTimeouts += s.ackTimeouts
			r.Retransmissions += s.retransmissions
			r.ADRApplied += s.adrApplied
		}
	}
	r.Medium = ms
	if e.macOn {
		if m := e.server.MAC(); m != nil {
			r.ADRCommands = m.Commands
			r.DownlinkDrops = m.Sched.Stats().Dropped
		}
	}
	r.GatewayOutageWindows = e.gatewayOutageWindows
	r.DeviceFailures = e.deviceFailures
	for _, del := range e.server.Deliveries() {
		r.Delay.AddDuration(del.Delay())
		r.rawDelays = append(r.rawDelays, del.Delay().Seconds())
		r.originDelivered = append(r.originDelivered, del.Origin)
		r.Hops.Add(float64(del.Hops))
		if del.Hops > 1 {
			r.RelayedDelay.AddDuration(del.Delay())
		} else {
			r.DirectDelay.AddDuration(del.Delay())
		}
	}
	for _, d := range e.devices {
		r.QueueDrops += d.queue.Dropped()
		if !d.everActive {
			continue
		}
		r.ActiveDevices++
		r.MsgSendsPerNode.Add(float64(d.msgSends))
		r.FramesPerNode.Add(float64(d.framesSent))
		r.RadioOnPerNode.AddDuration(d.energy.RadioOnTime())
	}
	if e.rec != nil {
		snap := e.rec.Snapshot()
		for _, s := range e.shards {
			if s.rec != nil {
				snap.Merge(s.rec.Snapshot())
			}
		}
		r.Telemetry = snap
		r.Telemetry.Counters.QueueDrops = r.QueueDrops
		r.Telemetry.Counters.DownlinkDrops = r.DownlinkDrops
		r.Telemetry.Counters.ADRCommands = r.ADRCommands
	}
	return r, diag
}

// Intrinsic total orders for the cross-tile merges. All comparators are
// package-level capture-free functions so slices.SortFunc allocates nothing.

func cmpResolveRef(a, b resolveRef) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	if a.dev.id != b.dev.id {
		return a.dev.id - b.dev.id
	}
	return int(a.kind) - int(b.kind)
}

func cmpBcast(a, b bcastRec) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	if a.from != b.from {
		return a.from - b.from
	}
	return int(a.seq) - int(b.seq)
}

func cmpIngest(a, b ingestRec) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	if a.from != b.from {
		return a.from - b.from
	}
	return int(a.seq) - int(b.seq)
}

func cmpMacOp(a, b macOp) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	if a.dev != b.dev {
		return a.dev - b.dev
	}
	return int(a.kind) - int(b.kind)
}

func cmpAir(a, b airRec) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	return a.dev - b.dev
}

func cmpSettle(a, b settleRec) int {
	if a.at != b.at {
		if a.at < b.at {
			return -1
		}
		return 1
	}
	return a.sender - b.sender
}

func traceRank(k telemetry.EventKind) int {
	switch k {
	case telemetry.KindGenerate:
		return 0
	case telemetry.KindRelay:
		return 1
	case telemetry.KindUplink:
		return 2
	case telemetry.KindDeliver:
		return 3
	case telemetry.KindDuplicate:
		return 4
	case telemetry.KindDrop:
		return 5
	}
	return 6
}

func cmpTrace(a, b telemetry.Event) int {
	if a.T != b.T {
		if a.T < b.T {
			return -1
		}
		return 1
	}
	if a.Msg != b.Msg {
		if a.Msg < b.Msg {
			return -1
		}
		return 1
	}
	if ra, rb := traceRank(a.Kind), traceRank(b.Kind); ra != rb {
		return ra - rb
	}
	if a.Dev != b.Dev {
		return a.Dev - b.Dev
	}
	if a.Peer != b.Peer {
		return a.Peer - b.Peer
	}
	if a.Gw != b.Gw {
		return a.Gw - b.Gw
	}
	return a.Hops - b.Hops
}
