package experiment

import (
	"slices"
	"time"

	"mlorass/internal/eventsim"
	"mlorass/internal/geo"
	"mlorass/internal/lorawan"
	"mlorass/internal/mac"
	"mlorass/internal/netserver"
	"mlorass/internal/radio"
	"mlorass/internal/rng"
	"mlorass/internal/routing"
	"mlorass/internal/telemetry"
)

// shard is one spatial tile: its own event kernel, radio-medium view,
// spatial index, and telemetry recorder over the devices it owns. All
// cross-tile state flows through the out*/in* window buffers, exchanged at
// the coordinator's barriers — no shard ever writes another shard's state.
type shard struct {
	eng    *sharded
	idx    int
	es     *eventsim.Simulator
	medium *radio.Medium
	rec    *telemetry.Recorder
	err    error

	owned []*device

	activeList []int
	activeDead int
	ix         *devIndex
	posFn      func(id int) (geo.Point, bool)
	ixNow      time.Duration

	gwCands []gwCand

	generated         uint64
	handoverAttempts  uint64
	handoverSuccesses uint64
	handoverMsgs      uint64
	handoverLostMsgs  uint64

	downlinks          uint64
	downlinkDeliveries uint64
	ackTimeouts        uint64
	retransmissions    uint64
	adrApplied         uint64

	causality   uint64
	lateRetries uint64

	// resolves are the tile's pending transmission resolutions, executed in
	// (time, device, kind) order by phase B once due; entries beyond the
	// horizon carry over (an airtime may span windows).
	resolves []resolveRef

	// msgArena holds this window's resolved message bundles; broadcast,
	// ingest, and settlement records span into it. Reset each phase B,
	// after last window's settlements were applied.
	msgArena []lorawan.Message

	outTx     []txRec
	outAir    []airRec
	outFresh  []ingestRec
	outBcast  []bcastRec
	outMac    []macOp
	outSettle []settleRec
	outTrace  []telemetry.Event

	inPlan   []planRec
	inSettle []settleRec
}

// trace buffers a sampled event for the coordinator's sorted flush. Callers
// have already checked Sampled.
//
//mlorass:hotpath
func (s *shard) trace(e telemetry.Event) {
	s.outTrace = append(s.outTrace, e)
}

// schedAt schedules fn, clamping instants the kernel has already passed to
// its current clock (the next window runs them first). Clamps count as
// lateRetries: benign window-grid quantisation of duty-cycle retries, not
// causality violations.
//
//mlorass:hotpath
func (s *shard) schedAt(at time.Duration, fn eventsim.Event) bool {
	if now := s.es.Now(); at < now {
		at = now
		s.lateRetries++
	}
	_, err := s.es.At(at, fn)
	return err == nil
}

// devPos mirrors sim.devPos: the cursor read with a one-instant memo.
//
//mlorass:hotpath
func (s *shard) devPos(d *device, at time.Duration) (geo.Point, bool) {
	if d.memoValid && d.memoAt == at {
		return d.memoPos, d.memoOK
	}
	p, ok := d.cursor.PositionAt(at)
	d.memoAt, d.memoPos, d.memoOK, d.memoValid = at, p, ok, true
	return p, ok
}

func (s *shard) activate(d *device) {
	d.everActive = true
	i := len(s.activeList)
	for i > 0 && s.activeList[i-1] > d.id {
		i--
	}
	s.activeList = append(s.activeList, 0)
	copy(s.activeList[i+1:], s.activeList[i:])
	s.activeList[i] = d.id
}

func (s *shard) deactivate(d *device) {
	s.activeDead++
	if s.activeDead*2 > len(s.activeList) {
		now := s.es.Now()
		kept := s.activeList[:0]
		for _, id := range s.activeList {
			z := s.eng.devices[id]
			_, end := z.node.Window()
			if !z.failed && now < end {
				kept = append(kept, id)
			}
		}
		s.activeList = kept
		s.activeDead = 0
	}
}

func (s *shard) scheduleTick(d *device, at time.Duration) {
	_, end := d.node.Window()
	if at >= s.eng.cfg.Duration || at >= end {
		return
	}
	if _, err := s.es.At(at, d.slotFn); err != nil {
		return
	}
}

// ---------------------------------------------------------------- phase A

// runKernel applies the tile's inbox from the previous window and runs its
// kernel to the horizon. Settlements are applied before downlink plans, both
// in the coordinator's intrinsic routing order, then the window's slot
// ticks, retries, and churn events execute.
func (s *shard) runKernel() {
	e := s.eng
	w := e.windowStart

	s.outTx = s.outTx[:0]
	s.outAir = s.outAir[:0]
	s.outFresh = s.outFresh[:0]
	s.outBcast = s.outBcast[:0]
	s.outMac = s.outMac[:0]
	s.outSettle = s.outSettle[:0]
	s.outTrace = s.outTrace[:0]

	// Failed handovers from last window: the bundle (still in this tile's
	// previous-window arena — the sender is always local) returns to the
	// sender's queue head, and a retry is armed like the serial engine does
	// at resolve time.
	for _, st := range s.inSettle {
		if st.at > w {
			s.causality++
		}
		d := e.devices[st.sender]
		d.queue.PushFront(e.shards[st.shard].msgArena[st.mStart:st.mEnd])
		s.scheduleNextAttempt(d)
	}
	s.inSettle = s.inSettle[:0]

	// Downlink plans committed by the coordinator last window. The
	// lookahead bound L ≤ RX1Delay guarantees start ≥ this window's start;
	// anything earlier would be a causality violation.
	for i := range s.inPlan {
		p := &s.inPlan[i]
		if p.start < w {
			s.causality++
		}
		s.sendDownlink(e.devices[p.dev], p)
	}
	s.inPlan = s.inPlan[:0]

	if err := s.es.RunUntil(e.horizon); err != nil {
		s.err = err
	}
}

// tick mirrors sim.tick with intrinsic message identity: the estimator
// observation, the listen fraction, this slot's generated message, and the
// uplink attempt.
//
//mlorass:hotpath
func (s *shard) tick(d *device, now time.Duration) {
	e := s.eng
	if d.failed || !d.node.Active(now) {
		return
	}

	tDelta := d.duty.NextFree() - now
	if tDelta < 0 {
		tDelta = 0
	}
	d.est.Observe(now, d.acked, e.contactCapacityPPS, tDelta)
	d.acked = false

	switch e.cfg.Class {
	case lorawan.ClassQueueA:
		d.listenFraction = lorawan.QueueAListenFraction(
			d.est.Phi(), e.gwCfg.PhiMax, d.queue.Len(), e.cfg.QueueMax)
	default:
		d.listenFraction = 1
	}
	d.energy.RecordRx(time.Duration(d.listenFraction * float64(e.cfg.MsgInterval)))

	// Message IDs are intrinsic — (device+1)<<32 | per-device counter — so
	// identity never depends on cross-device event interleaving.
	d.msgSeq++
	id := intrinsicMsgID(d.id, d.msgSeq)
	s.generated++
	s.rec.AddGenerated()
	traced := e.tracer.Sampled(id)
	if traced {
		s.trace(telemetry.Event{
			T: now, Kind: telemetry.KindGenerate, Msg: id,
			Dev: d.id, Peer: -1, Gw: -1,
		})
	}
	if !d.queue.Push(lorawan.Message{
		ID:      id,
		Origin:  d.id,
		Created: now,
		Via:     -1,
	}) {
		s.rec.AddQueueDrop()
		if traced {
			s.trace(telemetry.Event{
				T: now, Kind: telemetry.KindDrop, Msg: id,
				Dev: d.id, Peer: -1, Gw: -1,
			})
		}
	}
	d.attempts = 0

	s.tryUplink(d, now)
}

// tryUplink mirrors sim.tryUplink.
//
//mlorass:hotpath
func (s *shard) tryUplink(d *device, now time.Duration) {
	if d.busy || d.awaitingAck || d.failed || d.queue.Len() == 0 || !d.node.Active(now) {
		return
	}
	if !d.duty.CanSend(now) {
		if !d.retryScheduled {
			d.retryScheduled = true
			if !s.schedAt(d.duty.NextFree(), d.retryFn) {
				d.retryScheduled = false
			}
		}
		return
	}
	dest := -1
	count := lorawan.MaxBundle
	if d.fwdTarget >= 0 {
		if now < d.fwdExpiry && s.stillInRange(d, d.fwdTarget, now) {
			dest = d.fwdTarget
			if d.fwdCount < count {
				count = d.fwdCount
			}
		} else {
			d.fwdTarget = -1
		}
	}
	s.transmit(d, now, dest, count)
}

// stillInRange checks the handover target with intrinsic reads only: churn
// via the disruption plan, position via the stateless trajectory — the
// target may live on any tile.
func (s *shard) stillInRange(d *device, dest int, now time.Duration) bool {
	e := s.eng
	if !e.aliveAt(dest, now) {
		return false
	}
	dpos, ok1 := s.devPos(d, now)
	tpos, ok2 := e.devices[dest].node.PositionAt(now)
	return ok1 && ok2 && dpos.Dist(tpos) <= e.cfg.D2DRangeM
}

// transmit mirrors sim.transmit, recording the flight interval and emitting
// the transmission to the window outbox instead of scheduling a kernel
// resolution.
//
//mlorass:hotpath
func (s *shard) transmit(d *device, now time.Duration, dest, count int) {
	pos, ok := s.devPos(d, now)
	if !ok {
		return
	}
	if count > lorawan.MaxBundle {
		count = lorawan.MaxBundle
	}
	bundle := d.bundle[:0]
	if dest < 0 {
		bundle = d.queue.PopNInto(count, bundle)
	} else {
		bundle = d.queue.PopNotViaInto(count, dest, bundle)
	}
	d.bundle = bundle[:0]
	if len(bundle) == 0 {
		return
	}

	d.seq++
	frame := lorawan.Frame{
		From:               d.id,
		Seq:                d.seq,
		Messages:           bundle,
		AdvertisedRCAETX:   d.est.RCAETX(),
		AdvertisedQueueLen: d.queue.Len() + len(bundle),
	}
	phy := s.uplinkPHY(d)
	airtime := phy.Airtime(frame.PayloadBytes())
	end := now + airtime
	tx := s.medium.Begin(d.id, pos, d.txPowDBm, now, end, nil)

	d.busy = true
	d.duty.Record(now, airtime)
	d.energy.RecordTx(airtime)
	d.framesSent++
	d.msgSends += uint64(len(bundle))
	s.rec.AddFrame()
	s.rec.AddUplinkSF(int(phy.SF))

	d.prevFlightSta, d.prevFlightEnd = d.flightStart, d.flightEnd
	d.flightStart, d.flightEnd = now, end

	d.pendTx = tx
	d.pendFrame = frame
	d.pendDest = dest
	s.outTx = append(s.outTx, txRec{
		shard: int32(s.idx), from: d.id, pos: pos, pow: d.txPowDBm,
		start: now, end: end,
	})
	s.outAir = append(s.outAir, airRec{at: now, dev: d.id, sec: airtime.Seconds()})
	s.resolves = append(s.resolves, resolveRef{at: end, dev: d, kind: rkUplink})
}

func (s *shard) uplinkPHY(d *device) *radio.PHYParams {
	e := s.eng
	if e.macOn {
		return &e.phyByDR[d.dr]
	}
	return &e.phy
}

func (s *shard) scheduleNextAttempt(d *device) {
	if d.retryScheduled || d.queue.Len() == 0 {
		return
	}
	d.retryScheduled = true
	if !s.schedAt(d.duty.NextFree(), d.retryFn) {
		d.retryScheduled = false
	}
}

// sendDownlink mirrors sim.sendDownlink from a coordinator-committed plan.
// dlSeq keys the downlink's shadowing draw; the frame also joins the window
// outbox so other tiles see its interference.
func (s *shard) sendDownlink(d *device, p *planRec) {
	e := s.eng
	tx := s.medium.Begin(-1-p.gw, e.gws[p.gw], e.gwTxPowDBm,
		p.start, p.start+p.air, nil)
	d.dlTx = tx
	d.dlAck = p.ack
	d.dlCmd = p.cmd
	d.dlHasCmd = p.hasCmd
	d.dlSeq++
	s.downlinks++
	s.rec.AddDownlink()
	s.outTx = append(s.outTx, txRec{
		shard: int32(s.idx), from: -1 - p.gw, pos: e.gws[p.gw],
		pow: e.gwTxPowDBm, start: p.start, end: p.start + p.air,
	})
	s.resolves = append(s.resolves, resolveRef{at: p.start + p.air, dev: d, kind: rkDownlink})
}

// ---------------------------------------------------------------- phase B

// runResolve imports the window's foreign transmissions as interference and
// executes the tile's due resolutions in (time, device, kind) order.
// Pointer-retention safety: resolutions run in ascending end-time order and
// receive prunes with cutoff = the resolving frame's start, which never
// exceeds any still-pending frame's end — so a pending pendTx/dlTx is never
// recycled under the device holding it.
func (s *shard) runResolve() {
	e := s.eng
	h := e.horizon
	s.msgArena = s.msgArena[:0]
	for i := range e.windowTx {
		t := &e.windowTx[i]
		if t.shard == int32(s.idx) {
			continue
		}
		s.medium.ImportTx(t.from, t.pos, t.pow, t.start, t.end)
	}
	slices.SortFunc(s.resolves, cmpResolveRef)
	kept := s.resolves[:0]
	for _, r := range s.resolves {
		if r.at > h {
			kept = append(kept, r)
			continue
		}
		if r.kind == rkUplink {
			s.resolveUp(r.dev, r.at)
		} else {
			s.resolveDown(r.dev, r.at)
		}
	}
	s.resolves = kept
}

// resolveUp mirrors sim.resolve's sender side: gateway reception, MAC
// reaction or retry bookkeeping, and the broadcast record receivers consume
// in phase C. The handover outcome itself is receiver-side (phase C), with
// failure settling back next window.
//
//mlorass:hotpath
func (s *shard) resolveUp(d *device, now time.Duration) {
	e := s.eng
	tx, frame, dest := d.pendTx, d.pendFrame, d.pendDest
	d.busy = false
	d.pendTx = nil

	gw, rssi := s.receiveAtGateways(tx, frame.Seq, now)

	// The bundle's window-arena copy: the coordinator's ledger ingest,
	// phase C receivers, and a possible next-window settlement span it.
	mStart := int32(len(s.msgArena))
	s.msgArena = append(s.msgArena, frame.Messages...)
	mEnd := int32(len(s.msgArena))

	bDest := dest
	switch {
	case gw >= 0:
		// Delivered: a gateway decode preempts any handover addressing,
		// exactly like the serial switch.
		bDest = -1
		s.rec.AddUplinkDelivery()
		if e.tracer != nil {
			for _, m := range frame.Messages {
				if e.tracer.Sampled(m.ID) {
					s.trace(telemetry.Event{
						T: now, Kind: telemetry.KindUplink, Msg: m.ID,
						Dev: d.id, Peer: -1, Gw: gw, Hops: m.Hops + 1,
					})
				}
			}
		}
		s.outFresh = append(s.outFresh, ingestRec{
			at: now, from: d.id, seq: frame.Seq, gw: gw,
			shard: int32(s.idx), mStart: mStart, mEnd: mEnd,
		})
		if e.macOn {
			s.macUplink(d, gw, rssi, now)
		} else {
			s.uplinkAcked(d)
		}
	case dest >= 0:
		// One handover attempt per decision; the receiving tile judges it
		// in phase C and settles a miss back to this tile next window.
		d.fwdTarget = -1
		s.scheduleNextAttempt(d)
	default:
		d.queue.PushFront(frame.Messages)
		d.attempts++
		if !e.retry.Exhausted(d.attempts) {
			s.scheduleNextAttempt(d)
		}
	}

	if bDest >= 0 || e.overhearOn {
		s.outBcast = append(s.outBcast, bcastRec{
			at: now, from: d.id, seq: frame.Seq, shard: int32(s.idx),
			dest: bDest, skip: dest, pow: d.txPowDBm, pos: tx.Pos,
			advRCAETX:   frame.AdvertisedRCAETX,
			advQueueLen: frame.AdvertisedQueueLen,
			mStart:      mStart, mEnd: mEnd,
		})
	}
}

// receiveAtGateways mirrors sim.receiveAtGateways with intrinsic gateway
// availability and a keyed shadowing draw per (frame, gateway).
//
//mlorass:hotpath
func (s *shard) receiveAtGateways(tx *radio.Transmission, seq uint32, now time.Duration) (int, radio.DBm) {
	e := s.eng
	cands := s.gwCands[:0]
	maxR := e.cfg.GatewayRangeM
	for i, gp := range e.gws {
		if !e.gwUpAt(i, now) {
			continue
		}
		if dx := tx.Pos.X - gp.X; dx > maxR || dx < -maxR {
			continue
		}
		if dy := tx.Pos.Y - gp.Y; dy > maxR || dy < -maxR {
			continue
		}
		if d := tx.Pos.Dist(gp); d <= maxR {
			c := gwCand{idx: i, dist: d}
			j := len(cands)
			cands = append(cands, c)
			for j > 0 && (cands[j-1].dist > c.dist ||
				(cands[j-1].dist == c.dist && cands[j-1].idx > c.idx)) {
				cands[j] = cands[j-1]
				j--
			}
			cands[j] = c
		}
	}
	s.gwCands = cands[:0]
	fk := frameKey(tx.From, seq)
	for _, c := range cands {
		key := rng.Key2(e.gwShadowSeed, fk, uint64(c.idx+1))
		// Prune by window start, not tx.Start: the per-frame cutoff is
		// resolve-order dependent, and resolve interleaving is exactly what
		// a partition changes.
		if rec := s.medium.ReceiveKeyed(tx, e.gws[c.idx], key, e.windowStart); rec.OK() {
			return c.idx, rec.RSSIDBm
		}
	}
	return -1, 0
}

// macUplink mirrors sim.macUplink, emitting the network-server reaction as
// a coordinator op (replayed in intrinsic order against the one global ADR
// controller and scheduler) while the device-side ack window opens here.
func (s *shard) macUplink(d *device, gw int, rssi radio.DBm, now time.Duration) {
	e := s.eng
	snr := rssi.Sub(e.noiseFloor)
	s.outMac = append(s.outMac, macOp{
		at: now, dev: d.id, kind: macOpUplink, gw: gw, snr: snr,
		dr: d.dr, powIdx: d.txPowIdx, timing: s.rxTiming(d),
	})
	if !e.confirmed {
		s.uplinkAcked(d)
		return
	}
	d.awaitingAck = true
	// RX2Delay ≥ lookahead, so the deadline is strictly beyond the horizon
	// and stays a plain kernel event.
	deadline := now + e.cfg.MAC.RX2Delay + s.rxTiming(d).RX2Air + time.Millisecond
	h, err := s.es.At(deadline, d.ackTimeoutFn)
	if err != nil {
		d.awaitingAck = false
		s.uplinkAcked(d)
		return
	}
	d.ackTimeoutH = h
}

func (s *shard) rxTiming(d *device) netserver.RxTiming {
	e := s.eng
	withCmd := 0
	if e.cfg.MAC.ADR {
		withCmd = 1
	}
	return netserver.RxTiming{
		RX1Delay: e.cfg.MAC.RX1Delay,
		RX2Delay: e.cfg.MAC.RX2Delay,
		RX1Air:   e.dlAirTbl[d.dr][withCmd],
		RX2Air:   e.dlAirTbl[lorawan.DefaultRX2DataRate][withCmd],
	}
}

func (s *shard) uplinkAcked(d *device) {
	d.acked = true
	d.attempts = 0
	d.fwdTarget = -1
	d.noSendBack = d.noSendBack[:0]
	s.scheduleNextAttempt(d)
}

// resolveDown mirrors sim.resolveDownlink with partition-invariant gates
// (flight intervals, the disruption plan) and a keyed shadowing draw. An
// ADR history reset becomes a coordinator op so the global controller
// applies it in intrinsic order.
func (s *shard) resolveDown(d *device, at time.Duration) {
	e := s.eng
	tx := d.dlTx
	if tx == nil || tx.End != at {
		return
	}
	d.dlTx = nil
	pos, ok := s.devPos(d, at)
	if !ok || d.busyAt(at) || !e.aliveAt(d.id, at) ||
		tx.Pos.Dist(pos) > e.cfg.GatewayRangeM {
		return
	}
	key := rng.Key2(e.gwShadowSeed, frameKey(tx.From, d.dlSeq), uint64(d.id+1))
	// The window-start prune epoch keeps the interferer set a pure function
	// of the global transmission history, whatever the partition.
	if !s.medium.ReceiveKeyed(tx, pos, key, e.windowStart).OK() {
		return
	}
	s.downlinkDeliveries++
	s.rec.AddDownlinkDelivery()
	if d.dlHasCmd {
		if ans := d.dlCmd.Apply(); ans.Accepted() {
			if e.cfg.MAC.ADR && d.dlCmd.DataRate != d.dr {
				s.outMac = append(s.outMac, macOp{at: at, dev: d.id, kind: macOpReset})
			}
			d.dr = d.dlCmd.DataRate
			d.txPowIdx = d.dlCmd.TxPowerIndex
			d.txPowDBm = lorawan.TxPowerDBm(radio.DBm(e.cfg.TxPowerDBm), d.txPowIdx)
			s.adrApplied++
			s.rec.AddADRApplied()
		}
	}
	if d.dlAck {
		s.ackReceived(d)
	}
}

func (s *shard) ackReceived(d *device) {
	if !d.awaitingAck {
		return
	}
	d.awaitingAck = false
	s.es.Cancel(d.ackTimeoutH)
	s.uplinkAcked(d)
}

// ackTimeout mirrors sim.ackTimeout; it runs as a kernel event (phase A).
func (s *shard) ackTimeout(d *device, now time.Duration) {
	e := s.eng
	if !d.awaitingAck {
		return
	}
	d.awaitingAck = false
	s.ackTimeouts++
	s.rec.AddAckTimeout()
	d.queue.PushFront(d.pendFrame.Messages)
	if d.failed {
		return
	}
	d.attempts++
	if d.attempts >= e.cfg.MAC.AckRetryMax {
		return
	}
	s.retransmissions++
	s.rec.AddRetransmission()
	at := d.duty.NextFree()
	if b := now + mac.AckBackoff(d.attempts, d.rnd); b > at {
		at = b
	}
	if !d.retryScheduled {
		d.retryScheduled = true
		if !s.schedAt(at, d.retryFn) {
			d.retryScheduled = false
		}
	}
}

// ---------------------------------------------------------------- phase C

// runDeliver walks the window's merged broadcasts in global (time, sender,
// seq) order, handling handover reception for targets this tile owns and
// overhearing across the tile's own spatial index. Every random draw is
// keyed on (frame, receiver), so outcomes are identical for every tile
// layout even though each tile only judges its own receivers.
func (s *shard) runDeliver() {
	e := s.eng
	for i := range e.windowBcast {
		b := &e.windowBcast[i]
		if b.dest >= 0 && int(e.owner[b.dest]) == s.idx {
			s.receiveHandover(b)
		}
		if e.overhearOn {
			s.overhearBcast(b)
		}
	}
}

// receiveHandover mirrors sim.resolveHandover's receiver side. A miss emits
// a settlement the coordinator routes back to the sender's tile.
func (s *shard) receiveHandover(b *bcastRec) {
	e := s.eng
	s.handoverAttempts++
	target := e.devices[b.dest]
	msgs := e.shards[b.shard].msgArena[b.mStart:b.mEnd]
	tpos, ok := s.devPos(target, b.at)
	received := ok && !target.busyAt(b.at) && e.aliveAt(b.dest, b.at) &&
		s.listeningAt(target, b.from, b.seq) &&
		b.pos.Dist(tpos) <= e.cfg.D2DRangeM
	if !received {
		s.handoverLostMsgs += uint64(len(msgs))
		s.outSettle = append(s.outSettle, settleRec{
			at: b.at, sender: b.from, shard: b.shard,
			mStart: b.mStart, mEnd: b.mEnd,
		})
		return
	}
	s.handoverSuccesses++
	s.handoverMsgs += uint64(len(msgs))
	s.rec.AddRelayHops(len(msgs))
	for _, m := range msgs {
		m.Hops++
		m.Via = b.from
		traced := e.tracer.Sampled(m.ID)
		if traced {
			s.trace(telemetry.Event{
				T: b.at, Kind: telemetry.KindRelay, Msg: m.ID,
				Dev: b.from, Peer: b.dest, Gw: -1, Hops: m.Hops,
			})
		}
		if !target.queue.Push(m) {
			s.rec.AddQueueDrop()
			if traced {
				s.trace(telemetry.Event{
					T: b.at, Kind: telemetry.KindDrop, Msg: m.ID,
					Dev: b.dest, Peer: -1, Gw: -1, Hops: m.Hops,
				})
			}
		}
	}
	target.banSendBack(b.from)
}

// listeningAt mirrors sim.listening with a Bernoulli draw keyed on the
// (frame, receiver) pair instead of the receiver's sequential stream.
//
//mlorass:hotpath
func (s *shard) listeningAt(z *device, from int, seq uint32) bool {
	e := s.eng
	if e.cfg.Class != lorawan.ClassQueueA {
		return true
	}
	if z.listenFraction >= 1 {
		return true
	}
	if z.listenFraction <= 0 {
		return false
	}
	src := rng.Seeded(rng.Key2(e.listenSeed, frameKey(from, seq), uint64(z.id+1)))
	return src.Float64() < z.listenFraction
}

// overhearBcast mirrors sim.overhear over this tile's own spatial index,
// with keyed listening and shadowing draws per (frame, neighbour).
//
//mlorass:hotpath
func (s *shard) overhearBcast(b *bcastRec) {
	e := s.eng
	maxR := e.cfg.D2DRangeM
	now := b.at
	if s.ix.stale(now) {
		s.ixNow = now
		s.ix.refresh(now, s.activeList, s.posFn)
	}
	fk := frameKey(b.from, b.seq)
	frame := lorawan.Frame{
		From:               b.from,
		Seq:                b.seq,
		Messages:           e.shards[b.shard].msgArena[b.mStart:b.mEnd],
		AdvertisedRCAETX:   b.advRCAETX,
		AdvertisedQueueLen: b.advQueueLen,
	}
	for _, zi := range s.ix.candidates(now, b.pos, maxR) {
		if zi == b.from || zi == b.skip {
			continue
		}
		z := e.devices[zi]
		if z.busyAt(now) || !e.aliveAt(zi, now) || z.queue.Len() == 0 {
			continue
		}
		zpos, ok := s.devPos(z, now)
		if !ok {
			continue
		}
		if dx := b.pos.X - zpos.X; dx > maxR || dx < -maxR {
			continue
		}
		if dy := b.pos.Y - zpos.Y; dy > maxR || dy < -maxR {
			continue
		}
		dist := b.pos.Dist(zpos)
		if dist > maxR {
			continue
		}
		if !s.listeningAt(z, b.from, b.seq) {
			continue
		}
		if z.bannedSendBack(b.from) {
			continue
		}
		src := rng.Seeded(rng.Key2(e.d2dSeed, fk, uint64(zi+1)))
		rssi := e.d2dLoss.RSSI(b.pow, radio.Meters(dist), &src)
		linkETX := e.link.RCAETX(rssi)
		local := routing.LocalState{
			RCAETX:   z.est.RCAETX(),
			Phi:      z.est.Phi(),
			QueueLen: z.queue.Len(),
		}
		dec := e.policy.OnOverhear(local, frame, linkETX, e.gwCfg.PhiMin, e.gwCfg.PhiMax)
		if !dec.Forward {
			continue
		}
		z.fwdTarget = b.from
		z.fwdCount = dec.Count
		z.fwdExpiry = now + e.cfg.MsgInterval
	}
}
