package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mlorass/internal/gwplan"
	"mlorass/internal/lorawan"
	"mlorass/internal/routing"
	"mlorass/internal/stats"
	"mlorass/internal/tfl"
)

// Schemes lists the three evaluated forwarding schemes in figure order.
func Schemes() []routing.Scheme {
	return []routing.Scheme{routing.SchemeNoRouting, routing.SchemeRCAETX, routing.SchemeROBC}
}

// GatewaySweep returns the gateway counts of the figure sweeps. The counts
// are the scaled world's; multiplied by the density scale factor (4 for the
// default quarter-area world) they correspond to the paper's 40–100 axis.
func GatewaySweep() []int { return []int{10, 13, 15, 18, 20, 23, 25} }

// PaperEquivalentGateways converts a scaled gateway count to the paper's
// 600 km² axis (×4 for the default 150 km² world).
func PaperEquivalentGateways(n int) int { return n * 4 }

// SweepPoint is one (environment, scheme, gateway-count) cell of a figure.
type SweepPoint struct {
	Environment Environment
	Scheme      routing.Scheme
	Gateways    int
	Result      *Result
}

// SweepFigures runs the full Fig. 8/9/12/13 grid: every scheme × gateway
// count for the given environment. The base config supplies scale and seed;
// progress, if non-nil, receives one line per completed run.
//
// It is a thin serial wrapper around ParallelSweep: one worker, one
// replication per cell, progress lines in figure order.
func SweepFigures(base Config, env Environment, progress func(string)) ([]SweepPoint, error) {
	var fn func(CellUpdate)
	if progress != nil {
		fn = func(u CellUpdate) { progress(u.Result.String()) }
	}
	cells, err := ParallelSweepFunc(base, env, SweepOptions{Workers: 1, Reps: 1}, fn)
	if err != nil {
		return nil, err
	}
	out := make([]SweepPoint, len(cells))
	for i, c := range cells {
		out[i] = SweepPoint{Environment: c.Environment, Scheme: c.Scheme, Gateways: c.Gateways, Result: c.Reps[0]}
	}
	return out, nil
}

// Fig8Table renders the mean end-to-end delay table (paper Fig. 8): one row
// per gateway count, one column per scheme, in seconds with standard errors.
func Fig8Table(points []SweepPoint) string {
	return schemeTable(points, "Fig 8: mean end-to-end delay [s] (± stderr)",
		func(r *Result) string {
			return fmt.Sprintf("%7.1f ±%5.1f", r.Delay.Mean(), r.Delay.StdErr())
		})
}

// Fig8MatchedTable renders mean delay at matched delivery coverage: for each
// gateway count, every scheme's mean over its K fastest deliveries, where K
// is the smallest delivery count among the schemes at that gateway count.
// This removes the survivorship bias of the plain mean (a forwarding scheme
// that rescues otherwise-undeliverable messages adds slow samples the
// baseline's mean omits) and is the fair delay comparison EXPERIMENTS.md
// reports against the paper's 10-25 % reduction.
func Fig8MatchedTable(points []SweepPoint) string {
	minDelivered := map[int]int{}
	for _, p := range points {
		if cur, ok := minDelivered[p.Gateways]; !ok || p.Result.Delivered < cur {
			minDelivered[p.Gateways] = p.Result.Delivered
		}
	}
	return schemeTable(points, "Fig 8 (matched coverage): mean delay [s] over each scheme's K fastest deliveries",
		func(r *Result) string {
			return fmt.Sprintf("%13.1f", r.MatchedDelayMean(minDelivered[r.Config.NumGateways]))
		})
}

// Fig9Table renders total network throughput (paper Fig. 9): distinct
// messages delivered over the horizon.
func Fig9Table(points []SweepPoint) string {
	return schemeTable(points, "Fig 9: total throughput [messages delivered]",
		func(r *Result) string { return fmt.Sprintf("%13d", r.Delivered) })
}

// Fig12Table renders the mean hop count (paper Fig. 12).
func Fig12Table(points []SweepPoint) string {
	return schemeTable(points, "Fig 12: mean hops per delivered message",
		func(r *Result) string {
			return fmt.Sprintf("%6.2f (max %2.0f)", r.Hops.Mean(), r.Hops.Max())
		})
}

// Fig13Table renders the mean number of message copies transmitted per node
// (paper Fig. 13), the energy-overhead proxy.
func Fig13Table(points []SweepPoint) string {
	return schemeTable(points, "Fig 13: mean messages sent per node",
		func(r *Result) string { return fmt.Sprintf("%13.1f", r.MsgSendsPerNode.Mean()) })
}

// OverheadRatios returns, per gateway count, each forwarding scheme's
// message-send overhead relative to NoRouting (the paper reports 1.6–2.2×).
func OverheadRatios(points []SweepPoint) map[int]map[routing.Scheme]float64 {
	base := map[int]float64{}
	for _, p := range points {
		if p.Scheme == routing.SchemeNoRouting {
			base[p.Gateways] = p.Result.MsgSendsPerNode.Mean()
		}
	}
	out := map[int]map[routing.Scheme]float64{}
	for _, p := range points {
		if p.Scheme == routing.SchemeNoRouting {
			continue
		}
		b := base[p.Gateways]
		if b <= 0 {
			continue
		}
		if out[p.Gateways] == nil {
			out[p.Gateways] = map[routing.Scheme]float64{}
		}
		out[p.Gateways][p.Scheme] = p.Result.MsgSendsPerNode.Mean() / b
	}
	return out
}

// schemeTable renders a gateways × schemes grid using cell.
func schemeTable(points []SweepPoint, title string, cell func(*Result) string) string {
	byKey := map[[2]int]*Result{}
	gwSet := map[int]bool{}
	var env Environment
	for _, p := range points {
		byKey[[2]int{p.Gateways, int(p.Scheme)}] = p.Result
		gwSet[p.Gateways] = true
		env = p.Environment
	}
	var gws []int
	for _, g := range GatewaySweep() {
		if gwSet[g] {
			gws = append(gws, g)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s environment\n", title, env)
	fmt.Fprintf(&b, "%-18s", "gateways (paper)")
	for _, s := range Schemes() {
		fmt.Fprintf(&b, " | %16s", s)
	}
	b.WriteByte('\n')
	for _, g := range gws {
		fmt.Fprintf(&b, "%3d (%3d)         ", g, PaperEquivalentGateways(g))
		for _, s := range Schemes() {
			r := byKey[[2]int{g, int(s)}]
			if r == nil {
				fmt.Fprintf(&b, " | %16s", "-")
				continue
			}
			fmt.Fprintf(&b, " | %16s", cell(r))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// OutageFractions lists the gateway-down fractions of the outage-resilience
// sweep (0 is the paper's permanently healthy baseline).
func OutageFractions() []float64 { return []float64{0, 0.2, 0.4, 0.6, 0.8} }

// OutagePoint is one (scheme, fraction-of-gateways-down) cell of the
// resilience sweep.
type OutagePoint struct {
	Environment Environment
	Scheme      routing.Scheme
	// Fraction is the configured fraction of gateways taken down for one
	// outage window during the run.
	Fraction float64
	Result   *Result
}

// OutageSweep runs the outage-resilience grid: every scheme × gateway-down
// fraction for the given environment, on the same worker pool as the figure
// sweeps (values < 1 mean GOMAXPROCS). Each run is independently seeded and
// deterministic; results land in (fraction outer, scheme inner) order
// regardless of completion order. The paper never tests infrastructure
// failure — this sweep asks whether the forwarding schemes' delivery
// advantage survives it.
func OutageSweep(base Config, env Environment, workers int, progress func(string)) ([]OutagePoint, error) {
	var points []OutagePoint
	for _, f := range OutageFractions() {
		for _, scheme := range Schemes() {
			points = append(points, OutagePoint{Environment: env, Scheme: scheme, Fraction: f})
		}
	}
	i, err := runPool(len(points), workers,
		func(i int) (*Result, error) {
			cfg := base
			cfg.Environment = env
			cfg.D2DRangeM = 0 // re-derive from environment
			cfg.Scheme = points[i].Scheme
			cfg.Disruption.GatewayOutageFraction = points[i].Fraction
			return Run(cfg)
		},
		func(i int, res *Result) {
			points[i].Result = res
			if progress != nil {
				progress(fmt.Sprintf("down=%.0f%% %s", 100*points[i].Fraction, res))
			}
		})
	if err != nil {
		return nil, fmt.Errorf("outage sweep %v/%v/down=%.0f%%: %w",
			env, points[i].Scheme, 100*points[i].Fraction, err)
	}
	return points, nil
}

// OutageTable renders the resilience sweep: delivery ratio (and delivered
// counts) per scheme as the fraction of gateways down grows. Rows are the
// distinct fractions present in points, ascending, so callers sweeping
// custom fractions render in full.
func OutageTable(points []OutagePoint) string {
	type key struct {
		frac   float64
		scheme routing.Scheme
	}
	byKey := map[key]*Result{}
	var fracs []float64
	seen := map[float64]bool{}
	var env Environment
	for _, p := range points {
		byKey[key{p.Fraction, p.Scheme}] = p.Result
		if !seen[p.Fraction] {
			seen[p.Fraction] = true
			fracs = append(fracs, p.Fraction)
		}
		env = p.Environment
	}
	sort.Float64s(fracs)
	var b strings.Builder
	fmt.Fprintf(&b, "Outage resilience: delivery ratio vs fraction of gateways down — %s environment\n", env)
	fmt.Fprintf(&b, "%-18s", "gateways down")
	for _, s := range Schemes() {
		fmt.Fprintf(&b, " | %16s", s)
	}
	b.WriteByte('\n')
	for _, f := range fracs {
		fmt.Fprintf(&b, "%-18s", fmt.Sprintf("%.0f%%", 100*f))
		for _, s := range Schemes() {
			r := byKey[key{f, s}]
			if r == nil {
				fmt.Fprintf(&b, " | %16s", "-")
				continue
			}
			fmt.Fprintf(&b, " | %7.1f%% (%5d)", 100*r.DeliveryRatio(), r.Delivered)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ThroughputSeries runs the Figs. 10–11 experiment: the per-10-minute
// arrival series over 24 hours at the highest gateway density, for each
// scheme, in the given environment.
func ThroughputSeries(base Config, env Environment) (map[routing.Scheme][]int, error) {
	out := map[routing.Scheme][]int{}
	for _, scheme := range Schemes() {
		cfg := base
		cfg.Environment = env
		cfg.D2DRangeM = 0
		cfg.NumGateways = GatewaySweep()[len(GatewaySweep())-1]
		cfg.Scheme = scheme
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("series %v/%v: %w", env, scheme, err)
		}
		out[scheme] = res.Throughput.Counts()
	}
	return out, nil
}

// SeriesTable renders a throughput time series grid (one row per bucket).
func SeriesTable(series map[routing.Scheme][]int, bin time.Duration, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-10s", title, "t[s]")
	for _, s := range Schemes() {
		fmt.Fprintf(&b, " | %10s", s)
	}
	b.WriteByte('\n')
	n := 0
	for _, s := range Schemes() {
		if len(series[s]) > n {
			n = len(series[s])
		}
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%-10d", int(bin.Seconds())*i)
		for _, s := range Schemes() {
			v := 0
			if i < len(series[s]) {
				v = series[s][i]
			}
			fmt.Fprintf(&b, " | %10d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Fig7Data returns the Fig. 7 dataset statistics: hourly active-bus counts
// and the trip-duration histogram (30-minute bins up to 10 h).
func Fig7Data(seed uint64, numRoutes int, peakHeadway time.Duration) (active []int, durations *stats.Histogram, err error) {
	ds, err := tfl.Generate(tfl.DefaultGenConfig(seed, numRoutes, peakHeadway))
	if err != nil {
		return nil, nil, err
	}
	active = ds.ActiveBuses(time.Hour)
	durations, err = stats.NewHistogram(0, 10*3600, 20)
	if err != nil {
		return nil, nil, err
	}
	for _, d := range ds.TripDurations() {
		durations.Add(d.Seconds())
	}
	return active, durations, nil
}

// AblationAlpha sweeps the EWMA weight α (Sec. IV-B / VII discussion) for a
// fixed scenario and returns mean delay and throughput per α.
func AblationAlpha(base Config, scheme routing.Scheme, alphas []float64) (map[float64]*Result, error) {
	out := map[float64]*Result{}
	for _, a := range alphas {
		cfg := base
		cfg.Scheme = scheme
		cfg.Alpha = a
		res, err := Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("alpha %v: %w", a, err)
		}
		out[a] = res
	}
	return out, nil
}

// AblationClass compares Modified Class-C against Queue-based Class-A
// (Sec. VII-C: on-par performance, some radio-on energy saved).
func AblationClass(base Config, scheme routing.Scheme) (modC, queueA *Result, err error) {
	cfg := base
	cfg.Scheme = scheme
	cfg.Class = lorawan.ClassModifiedC
	modC, err = Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	cfg.Class = lorawan.ClassQueueA
	queueA, err = Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	return modC, queueA, nil
}

// AblationPlacement compares grid, random, and route-aware gateway
// placement: the paper's "further observations" ablation plus its stated
// future-work direction (greedy maximum route coverage).
func AblationPlacement(base Config, scheme routing.Scheme) (grid, random, routeAware *Result, err error) {
	cfg := base
	cfg.Scheme = scheme
	cfg.GatewayStrategy = gwplan.Grid
	grid, err = Run(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg.GatewayStrategy = gwplan.Random
	random, err = Run(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	cfg.GatewayStrategy = gwplan.RouteAware
	routeAware, err = Run(cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	return grid, random, routeAware, nil
}
