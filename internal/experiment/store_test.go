package experiment

import (
	"fmt"
	"testing"
	"time"

	"mlorass/internal/routing"
	"mlorass/internal/runstore"
	"mlorass/internal/tfl"
)

func TestCacheKeyDeterministicAndSensitive(t *testing.T) {
	cfg := sweepTestConfig()
	k1, ok1 := cacheKey(cfg)
	k2, ok2 := cacheKey(cfg)
	if !ok1 || !ok2 || k1 != k2 {
		t.Fatalf("cache key unstable: %q/%v vs %q/%v", k1, ok1, k2, ok2)
	}
	// Normalized and un-normalized forms of the same config share a key.
	norm := cfg
	norm.Normalize()
	if kn, _ := cacheKey(norm); kn != k1 {
		t.Fatal("normalization changed the cache key")
	}
	// Every semantic change must change the key.
	variants := map[string]func(*Config){
		"seed":      func(c *Config) { c.Seed = 99 },
		"scheme":    func(c *Config) { c.Scheme = routing.SchemeROBC },
		"gateways":  func(c *Config) { c.NumGateways = 7 },
		"duration":  func(c *Config) { c.Duration = 3 * time.Hour },
		"alpha":     func(c *Config) { c.Alpha = 0.9 },
		"outage":    func(c *Config) { c.Disruption.GatewayOutageFraction = 0.5 },
		"mobility":  func(c *Config) { c.Mobility.Model = MobilityRandomWaypoint },
		"telemetry": func(c *Config) { c.Telemetry.Disabled = true },
		"mac-adr":   func(c *Config) { c.MAC.ADR = true },
		"mac-conf":  func(c *Config) { c.MAC.Confirmed = true },
	}
	for name, mutate := range variants {
		c := cfg
		mutate(&c)
		if kv, ok := cacheKey(c); !ok || kv == k1 {
			t.Errorf("%s change did not change the cache key", name)
		}
	}
	// An explicit dataset is uncacheable.
	withDS := cfg
	withDS.Dataset = &tfl.Dataset{}
	if _, ok := cacheKey(withDS); ok {
		t.Fatal("explicit dataset reported cacheable")
	}
}

func TestResultArtifactRoundTrip(t *testing.T) {
	cfg := telemetryTestConfig()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := encodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeResult(data, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != res.String() || back.Report() != res.Report() {
		t.Fatal("decoded artefact renders differently")
	}
	if back.Delay != res.Delay || back.Hops != res.Hops || back.Delivered != res.Delivered {
		t.Fatal("decoded artefact summaries differ")
	}
	if back.Telemetry.Delay.Percentile(99) != res.Telemetry.Delay.Percentile(99) {
		t.Fatal("decoded telemetry percentiles differ")
	}
	if back.DelayPercentile(95) != res.DelayPercentile(95) {
		t.Fatal("decoded raw delays differ")
	}
	if back.MatchedDelayMean(100) != res.MatchedDelayMean(100) {
		t.Fatal("decoded matched-coverage mean differs")
	}
	tb, rb := back.Throughput.Counts(), res.Throughput.Counts()
	for i := range rb {
		if tb[i] != rb[i] {
			t.Fatal("decoded throughput series differs")
		}
	}
}

// sweepTables renders every aggregate figure table for comparison.
func sweepTables(points []AggregatePoint) string {
	return fmt.Sprintf("%s\n%s\n%s\n%s\n%s",
		Fig8AggTable(points), Fig8PercentilesAggTable(points),
		Fig9AggTable(points), Fig12AggTable(points), Fig13AggTable(points))
}

// TestParallelSweepStoreRoundTrip is the resumability acceptance test: a
// repeated sweep against the same store re-simulates nothing (every cell
// loads from cache) and renders byte-identical aggregate tables.
func TestParallelSweepStoreRoundTrip(t *testing.T) {
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := sweepTestConfig()
	opts := SweepOptions{Workers: 4, Reps: 2, Store: store}

	var firstCached, secondCached, secondTotal int
	first, err := ParallelSweepFunc(base, Urban, opts, func(u CellUpdate) {
		if u.Cached {
			firstCached++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if firstCached != 0 {
		t.Fatalf("cold sweep reported %d cached cells", firstCached)
	}
	jobs := len(GatewaySweep()) * len(Schemes()) * opts.Reps
	if st := store.Stats(); st.Puts != uint64(jobs) {
		t.Fatalf("cold sweep persisted %d artefacts, want %d", st.Puts, jobs)
	}

	second, err := ParallelSweepFunc(base, Urban, opts, func(u CellUpdate) {
		secondTotal++
		if u.Cached {
			secondCached++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if secondCached != jobs || secondTotal != jobs {
		t.Fatalf("warm sweep re-simulated %d of %d cells, want 0", secondTotal-secondCached, secondTotal)
	}
	if st := store.Stats(); st.Puts != uint64(jobs) {
		t.Fatalf("warm sweep wrote %d extra artefacts", st.Puts-uint64(jobs))
	}
	if got, want := sweepTables(second), sweepTables(first); got != want {
		t.Fatalf("cached sweep tables differ:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// Replication-0 projections (matched-coverage table path) match too.
	if got, want := Fig8MatchedTable(projectRep(second, 0)), Fig8MatchedTable(projectRep(first, 0)); got != want {
		t.Fatal("cached matched-coverage table differs")
	}
}

func projectRep(points []AggregatePoint, rep int) []SweepPoint {
	out := make([]SweepPoint, len(points))
	for i, p := range points {
		out[i] = SweepPoint{Environment: p.Environment, Scheme: p.Scheme, Gateways: p.Gateways, Result: p.Reps[rep]}
	}
	return out
}

// TestParallelSweepStoreResume simulates an interrupted sweep: a store
// pre-populated with only some cells loads those and simulates the rest.
func TestParallelSweepStoreResume(t *testing.T) {
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := sweepTestConfig()

	// "Interrupted" first pass: persist just two cells by hand.
	prePopulated := 0
	for _, gw := range GatewaySweep()[:2] {
		cfg := base
		cfg.Environment = Urban
		cfg.D2DRangeM = 0
		cfg.NumGateways = gw
		cfg.Scheme = routing.SchemeNoRouting
		cfg.Seed = RepSeed(base.Seed, 0)
		if _, cached, err := runThroughStore(store, cfg); err != nil || cached {
			t.Fatalf("pre-populate: cached=%v err=%v", cached, err)
		}
		prePopulated++
	}

	cachedSeen := 0
	points, err := ParallelSweepFunc(base, Urban, SweepOptions{Workers: 2, Reps: 1, Store: store}, func(u CellUpdate) {
		if u.Cached {
			cachedSeen++
			if u.Scheme != routing.SchemeNoRouting || u.Gateways > GatewaySweep()[1] {
				t.Errorf("unexpected cached cell %v/gw=%d", u.Scheme, u.Gateways)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if cachedSeen != prePopulated {
		t.Fatalf("resume loaded %d cached cells, want %d", cachedSeen, prePopulated)
	}
	// The resumed sweep matches a from-scratch sweep exactly.
	fresh, err := ParallelSweep(base, Urban, SweepOptions{Workers: 2, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sweepTables(points) != sweepTables(fresh) {
		t.Fatal("resumed sweep tables differ from from-scratch sweep")
	}
}

// TestRunThroughStoreTruncatedArtefact is the regression test for the
// truncated-artefact family: files damaged in ways that still parse as JSON
// (a crash mid-rewrite, a hand-edited store, disk corruption landing on a
// value) must read as corruption and be recomputed, never served as a cached
// cell of zeros. The nastiest case — `{"schema":N}` with the current schema
// number — previously decoded "successfully" into an all-zero Result with a
// nil throughput series.
func TestRunThroughStoreTruncatedArtefact(t *testing.T) {
	cfg := sweepTestConfig()
	key, ok := cacheKey(cfg)
	if !ok {
		t.Fatal("config not cacheable")
	}
	// A genuine artefact, to derive realistic truncations from.
	genuine, err := encodeResult(mustRun(t, cfg))
	if err != nil {
		t.Fatal(err)
	}
	corruptions := map[string][]byte{
		"empty file":                            {},
		"json null":                             []byte("null"),
		"garbage":                               []byte("\x00\xff\x17 not json at all"),
		"truncated mid-token":                   genuine[:len(genuine)/2],
		"valid json, current schema, no fields": []byte(fmt.Sprintf(`{"schema":%d}`, storeSchemaVersion)),
		"schema only, no throughput":            []byte(fmt.Sprintf(`{"schema":%d,"delivered":3}`, storeSchemaVersion)),
		"inconsistent delivery samples":         []byte(fmt.Sprintf(`{"schema":%d,"delivered":3,"throughput":{"bin_seconds":600,"counts":[0]},"raw_delays":[1.0]}`, storeSchemaVersion)),
		"stale schema":                          []byte(`{"schema":1}`),
	}
	for name, data := range corruptions {
		t.Run(name, func(t *testing.T) {
			store, err := runstore.Open(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			if err := store.Put(key, data); err != nil {
				t.Fatal(err)
			}
			res, cached, err := runThroughStore(store, cfg)
			if err != nil {
				t.Fatalf("corrupt artefact failed the cell: %v", err)
			}
			if cached {
				t.Fatal("corrupt artefact served as a cached result")
			}
			if res.Throughput == nil || res.Delivered == 0 {
				t.Fatal("recomputed cell is not a real run")
			}
			// The recompute repaired the entry: the next read hits and
			// round-trips the real result.
			res2, cached2, err := runThroughStore(store, cfg)
			if err != nil || !cached2 {
				t.Fatalf("after repair: cached=%v err=%v", cached2, err)
			}
			if res2.Report() != res.Report() {
				t.Fatal("repaired artefact renders differently")
			}
		})
	}
}

// TestSweepResumesOverTruncatedArtefact drives the same regression through
// the full sweep engine: one truncated cell in an otherwise warm store must
// cost exactly one re-simulation, not fail (or poison) the sweep.
func TestSweepResumesOverTruncatedArtefact(t *testing.T) {
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := sweepTestConfig()
	opts := SweepOptions{Workers: 2, Reps: 1, Store: store}
	first, err := ParallelSweep(base, Urban, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate one stored cell the way a crash mid-rewrite would.
	cfg := base
	cfg.Environment = Urban
	cfg.D2DRangeM = 0
	cfg.NumGateways = GatewaySweep()[0]
	cfg.Scheme = routing.SchemeNoRouting
	cfg.Seed = RepSeed(base.Seed, 0)
	key, ok := cacheKey(cfg)
	if !ok {
		t.Fatal("cell not cacheable")
	}
	if err := store.Put(key, []byte(fmt.Sprintf(`{"schema":%d}`, storeSchemaVersion))); err != nil {
		t.Fatal(err)
	}
	recomputed := 0
	second, err := ParallelSweepFunc(base, Urban, opts, func(u CellUpdate) {
		if !u.Cached {
			recomputed++
		}
	})
	if err != nil {
		t.Fatalf("sweep failed over a truncated artefact: %v", err)
	}
	if recomputed != 1 {
		t.Fatalf("truncated cell cost %d re-simulations, want exactly 1", recomputed)
	}
	if got, want := sweepTables(second), sweepTables(first); got != want {
		t.Fatalf("recomputed sweep tables differ:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunThroughStoreCorruptArtefact checks self-healing: a corrupt stored
// artefact is ignored, re-simulated, and overwritten.
func TestRunThroughStoreCorruptArtefact(t *testing.T) {
	store, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := sweepTestConfig()
	key, ok := cacheKey(cfg)
	if !ok {
		t.Fatal("config not cacheable")
	}
	if err := store.Put(key, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	res, cached, err := runThroughStore(store, cfg)
	if err != nil || cached {
		t.Fatalf("corrupt artefact: cached=%v err=%v", cached, err)
	}
	// The overwrite repaired the entry: next call hits.
	res2, cached2, err := runThroughStore(store, cfg)
	if err != nil || !cached2 {
		t.Fatalf("after repair: cached=%v err=%v", cached2, err)
	}
	if res2.String() != res.String() {
		t.Fatal("repaired artefact differs")
	}
}
