package experiment

import (
	"testing"
	"time"

	"mlorass/internal/geo"
	"mlorass/internal/routing"
	"mlorass/internal/tfl"
)

// lineDataset builds a minimal controlled world: one straight 4 km route
// with a handful of staggered shifts, used by tests that need predictable
// geometry.
func lineDataset() *tfl.Dataset {
	ds := &tfl.Dataset{
		Area: geo.Square(5000),
		Routes: []tfl.Route{{
			ID:       "LINE",
			SpeedMPS: 6,
			Points:   []geo.Point{{X: 500, Y: 2500}, {X: 4500, Y: 2500}},
		}},
	}
	for i := 0; i < 6; i++ {
		ds.Trips = append(ds.Trips, tfl.Trip{
			ID:       i,
			RouteID:  "LINE",
			Start:    time.Duration(i) * 10 * time.Minute,
			Duration: 90 * time.Minute,
			Reverse:  i%2 == 1,
		})
	}
	return ds
}

// crossDataset builds two crossing routes where only one passes a gateway:
// the canonical forwarding scenario. Route COVERED passes the single
// gateway; route DARK never comes within gateway range, so its buses can
// deliver only by handing data to COVERED buses near the crossing.
func crossDataset() *tfl.Dataset {
	return &tfl.Dataset{
		Area: geo.Square(10000),
		Routes: []tfl.Route{
			{
				ID:       "COVERED",
				SpeedMPS: 8,
				// Passes (2500, 5000) where the gateway sits.
				Points: []geo.Point{{X: 500, Y: 5000}, {X: 4500, Y: 5000}},
			},
			{
				ID:       "DARK",
				SpeedMPS: 8,
				// Crosses COVERED at (4000, 5000) but stays > 1 km
				// from the gateway at all times.
				Points: []geo.Point{{X: 4000, Y: 1000}, {X: 4000, Y: 9000}},
			},
		},
		Trips: []tfl.Trip{
			{ID: 0, RouteID: "COVERED", Start: 0, Duration: 4 * time.Hour},
			{ID: 1, RouteID: "COVERED", Start: 20 * time.Minute, Duration: 4 * time.Hour, Reverse: true},
			{ID: 2, RouteID: "DARK", Start: 0, Duration: 4 * time.Hour},
			{ID: 3, RouteID: "DARK", Start: 30 * time.Minute, Duration: 4 * time.Hour, Reverse: true},
		},
	}
}

// crossConfig runs the crossing scenario with the gateway pinned on the
// COVERED route.
func crossConfig(scheme routing.Scheme) Config {
	cfg := DefaultConfig()
	cfg.Dataset = crossDataset()
	cfg.Scheme = scheme
	cfg.Duration = 4 * time.Hour
	cfg.Environment = Rural // 1 km d2d so crossing contacts connect
	cfg.D2DRangeM = 1000
	cfg.NumGateways = 1
	return cfg
}

func TestDarkRouteDeliversNothingWithoutForwarding(t *testing.T) {
	res, err := Run(crossConfig(routing.SchemeNoRouting))
	if err != nil {
		t.Fatal(err)
	}
	// The gateway grid places the single gateway at the area centre
	// (5000, 5000): COVERED passes within range, DARK's nearest approach
	// is (4000, 5000) → 1000 m… place explicitly via geometry: centre of
	// 10 km square is (5000,5000); DARK runs along x=4000 → min distance
	// 1000 m = exactly the range gate, so DARK only delivers marginally.
	// The structural claim: COVERED devices deliver the bulk.
	if res.Delivered == 0 {
		t.Fatal("COVERED route should deliver")
	}
	darkDelivered := countOriginDeliveries(res, 2) + countOriginDeliveries(res, 3)
	coveredDelivered := countOriginDeliveries(res, 0) + countOriginDeliveries(res, 1)
	if coveredDelivered == 0 {
		t.Fatal("covered buses delivered nothing")
	}
	if darkDelivered > coveredDelivered/2 {
		t.Fatalf("dark route delivered %d vs covered %d; geometry broken", darkDelivered, coveredDelivered)
	}
}

func TestForwardingRescuesDarkRoute(t *testing.T) {
	noFwd, err := Run(crossConfig(routing.SchemeNoRouting))
	if err != nil {
		t.Fatal(err)
	}
	robc, err := Run(crossConfig(routing.SchemeROBC))
	if err != nil {
		t.Fatal(err)
	}
	darkBase := countOriginDeliveries(noFwd, 2) + countOriginDeliveries(noFwd, 3)
	darkROBC := countOriginDeliveries(robc, 2) + countOriginDeliveries(robc, 3)
	if darkROBC <= darkBase {
		t.Fatalf("ROBC did not rescue the dark route: %d vs baseline %d", darkROBC, darkBase)
	}
	if robc.Hops.Max() < 2 {
		t.Fatalf("rescued messages should be multi-hop, max hops = %v", robc.Hops.Max())
	}
}

// countOriginDeliveries counts delivered messages originated by device id.
func countOriginDeliveries(r *Result, origin int) int {
	n := 0
	for _, h := range r.originDelivered {
		if h == origin {
			n++
		}
	}
	return n
}
