package experiment

import (
	"testing"
	"time"

	"mlorass/internal/routing"
)

// TestMatchedCoverageDiagnostic is a longer diagnostic comparing schemes at
// matched delivery coverage; skipped in -short runs.
func TestMatchedCoverageDiagnostic(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic: run without -short")
	}
	results := map[routing.Scheme]*Result{}
	for _, sch := range []routing.Scheme{routing.SchemeNoRouting, routing.SchemeROBC} {
		cfg := DefaultConfig()
		cfg.Duration = 12 * time.Hour
		cfg.NumGateways = 4
		cfg.Environment = Rural
		cfg.Scheme = sch
		r, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		results[sch] = r
	}
	k := results[routing.SchemeNoRouting].Delivered
	if results[routing.SchemeROBC].Delivered < k {
		k = results[routing.SchemeROBC].Delivered
	}
	for sch, r := range results {
		t.Logf("%-10s deliv=%d mean=%.0fs matched(k=%d)=%.0fs",
			sch, r.Delivered, r.Delay.Mean(), k, r.MatchedDelayMean(k))
	}
}
