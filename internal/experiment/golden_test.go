package experiment

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// The golden files were captured from the pre-scenario-engine tree, so these
// tests prove the mobility/disruption refactor left the paper-default
// simulation byte-identical: same Report() text, same figure tables, for the
// same seed. Regenerate deliberately with `go test -run Golden -update`.
var updateGolden = flag.Bool("update", false, "rewrite golden files")

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: output drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestGoldenQuickReports locks Result.Report() for QuickConfig at seed 1
// across all three schemes: determinism or formatting regressions fail here
// before they corrupt a figure.
func TestGoldenQuickReports(t *testing.T) {
	var rep string
	for _, scheme := range Schemes() {
		cfg := QuickConfig()
		cfg.Seed = 1
		cfg.Scheme = scheme
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep += res.Report()
	}
	goldenCompare(t, "report_quick_seed1.golden", rep)
}

// TestGoldenFigTables locks the Fig8/9/12/13 table output for a QuickConfig
// sweep subset (gateway counts 10 and 15, all schemes) at seed 1.
func TestGoldenFigTables(t *testing.T) {
	var points []SweepPoint
	for _, gw := range []int{10, 15} {
		for _, scheme := range Schemes() {
			cfg := QuickConfig()
			cfg.Seed = 1
			cfg.Scheme = scheme
			cfg.NumGateways = gw
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			points = append(points, SweepPoint{
				Environment: cfg.Environment, Scheme: scheme, Gateways: gw, Result: res,
			})
		}
	}
	tables := fmt.Sprintf("%s\n%s\n%s\n%s",
		Fig8Table(points), Fig9Table(points), Fig12Table(points), Fig13Table(points))
	goldenCompare(t, "fig_tables_quick.golden", tables)
}

// TestGoldenOutageTable locks the PR 2 resilience figure the same way the
// Fig 8/9/12/13 tables are locked: the full OutageSweep grid for QuickConfig
// at seed 1, urban. Disruption-compilation or table-rendering drift fails
// here before it corrupts the resilience artefact.
func TestGoldenOutageTable(t *testing.T) {
	cfg := QuickConfig()
	cfg.Seed = 1
	points, err := OutageSweep(cfg, Urban, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "outage_table_quick.golden", OutageTable(points))
}
