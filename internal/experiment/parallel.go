package experiment

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"mlorass/internal/routing"
	"mlorass/internal/runstore"
	"mlorass/internal/telemetry"
)

// SweepOptions configures ParallelSweep.
type SweepOptions struct {
	// Workers is the worker-pool size; values < 1 mean GOMAXPROCS.
	Workers int
	// Reps is the number of replications per cell, each with a seed
	// derived from the base config's via RepSeed; values < 1 mean 1.
	Reps int
	// Progress, when non-nil, receives one CellUpdate per completed
	// replication, in completion order. ParallelSweep sends from a single
	// goroutine and never closes the channel; the caller must drain it
	// concurrently (sends block) and owns closing it after the sweep
	// returns.
	Progress chan<- CellUpdate
	// Store, when non-nil, backs the sweep with the run-artifact cache:
	// a cell whose (config, seed) key is already stored is loaded
	// instead of re-simulated, and every freshly simulated cell is
	// persisted — so repeating or resuming an interrupted sweep only
	// pays for the cells it has never computed. Cached cells reproduce
	// the original Result byte for byte in every aggregate table.
	Store *runstore.Store
}

// CellUpdate is one completed replication, streamed while a sweep runs.
type CellUpdate struct {
	Environment Environment
	Scheme      routing.Scheme
	Gateways    int
	// Rep is the replication index within the cell, Seed its derived seed.
	Rep  int
	Seed uint64
	// Result is the completed run's measurements.
	Result *Result
	// Cached reports that the result was loaded from the run store
	// instead of simulated.
	Cached bool
	// Completed counts runs finished so far (including this one) out of
	// Total, for progress displays.
	Completed int
	Total     int
}

// AggregatePoint is one (environment, scheme, gateway-count) cell of a
// replicated figure sweep: every replication's Result plus the collapsed
// cross-replication statistics.
type AggregatePoint struct {
	Environment Environment
	Scheme      routing.Scheme
	Gateways    int
	// Seeds holds the replication seeds in replication order.
	Seeds []uint64
	// Reps holds each replication's Result in replication order.
	Reps []*Result
	// Agg is the cross-replication aggregate of Reps.
	Agg *Aggregate
}

// RepSeed derives the seed of replication rep from a base seed.
// Replication 0 uses the base seed itself, so a single-replication sweep
// reproduces a plain Run(cfg) exactly; later replications mix the index
// through SplitMix64-style finalisation so nearby bases stay uncorrelated.
func RepSeed(base uint64, rep int) uint64 {
	if rep == 0 {
		return base
	}
	z := base + uint64(rep)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// sweepJob is one (cell, replication) run of a sweep.
type sweepJob struct {
	cell int // index into the AggregatePoint slice
	rep  int
	cfg  Config
}

// runPool executes jobs 0..n-1 across a pool of workers (values < 1 mean
// GOMAXPROCS). run is called concurrently; every successful result is handed
// to onDone from the single collector goroutine, in completion order. Once
// any job fails the remaining jobs are skipped, and the lowest-index failure
// is reported as (index, error) so a failing sweep names the same job no
// matter how completions interleave; full success returns (-1, nil). Both
// figure and resilience sweeps run on this pool.
func runPool(n, workers int, run func(i int) (*Result, error), onDone func(i int, res *Result)) (int, error) {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	type done struct {
		idx int
		res *Result
		err error
	}
	jobCh := make(chan int)
	doneCh := make(chan done)
	var (
		failed atomic.Bool // workers skip remaining jobs once set
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobCh {
				if failed.Load() {
					doneCh <- done{idx: i}
					continue
				}
				res, err := run(i)
				doneCh <- done{idx: i, res: res, err: err}
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			jobCh <- i
		}
		close(jobCh)
		wg.Wait()
		close(doneCh)
	}()

	firstErrIdx, firstErr := n, error(nil)
	for d := range doneCh {
		if d.err != nil {
			failed.Store(true)
			if d.idx < firstErrIdx {
				firstErrIdx, firstErr = d.idx, d.err
			}
			continue
		}
		if d.res == nil {
			continue // skipped after a failure elsewhere
		}
		onDone(d.idx, d.res)
	}
	if firstErr != nil {
		return firstErrIdx, firstErr
	}
	return -1, nil
}

// ParallelSweep runs the full figure grid — every scheme × gateway count for
// the given environment, replicated opts.Reps times with seeds derived via
// RepSeed — across a pool of opts.Workers goroutines. Each Run is
// independently seeded and shares no state, so cells execute concurrently;
// results are slotted back into deterministic figure order (gateway count
// outer, scheme inner, replication innermost) regardless of completion
// order, and each cell's replications are collapsed into an Aggregate.
//
// With Workers: 1 and Reps: 1 the output is identical, run for run, to the
// serial SweepFigures engine this generalises.
func ParallelSweep(base Config, env Environment, opts SweepOptions) ([]AggregatePoint, error) {
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	reps := opts.Reps
	if reps < 1 {
		reps = 1
	}

	// Lay out cells and jobs in figure order (shared with the sweep farm);
	// results land by index.
	cells, jobs := layoutSweep(base, env, reps)
	// The collector slots results and streams progress; runPool keeps the
	// lowest-index error so a failing sweep reports the same cell no
	// matter how completions interleave. cached[i] is written only by the
	// worker running job i and read by the single collector after that
	// job's done message, so the flags need no lock.
	completed := 0
	cached := make([]bool, len(jobs))
	ji, err := runPool(len(jobs), workers,
		func(i int) (*Result, error) {
			j := jobs[i]
			sink := j.cfg.Telemetry.Spans
			var tok telemetry.SpanToken
			if sink != nil {
				tok = sink.StartSpan()
			}
			res, hit, err := runThroughStore(opts.Store, j.cfg)
			cached[i] = hit
			if sink != nil && err == nil {
				// One span per cell replication: wall time, whether the
				// store served it (attr 1) or it was simulated (attr 0),
				// and the cell identity. The label formats only on the
				// instrumented path.
				var attr int64
				if hit {
					attr = 1
				}
				c := cells[j.cell]
				sink.EndSpan(telemetry.SpanEnd{
					Token: tok, Name: "cell", Shard: i, At: j.cfg.Duration, Attr: attr,
					Label: fmt.Sprintf("%v/%v/gw=%d/rep=%d", c.Environment, c.Scheme, c.Gateways, j.rep),
				})
			}
			return res, err
		},
		func(i int, res *Result) {
			j := jobs[i]
			cells[j.cell].Reps[j.rep] = res
			completed++
			if opts.Progress != nil {
				c := cells[j.cell]
				opts.Progress <- CellUpdate{
					Environment: c.Environment,
					Scheme:      c.Scheme,
					Gateways:    c.Gateways,
					Rep:         j.rep,
					Seed:        c.Seeds[j.rep],
					Result:      res,
					Cached:      cached[i],
					Completed:   completed,
					Total:       len(jobs),
				}
			}
		})
	if err != nil {
		c := cells[jobs[ji].cell]
		return nil, fmt.Errorf("sweep %v/%v/gw=%d rep=%d: %w",
			c.Environment, c.Scheme, c.Gateways, jobs[ji].rep, err)
	}
	for i := range cells {
		cells[i].Agg = AggregateResults(cells[i].Reps)
	}
	return cells, nil
}

// ParallelSweepFunc runs ParallelSweep and delivers progress updates to fn,
// called sequentially from a single goroutine, so callers get streamed
// progress without managing the Progress channel's drain-and-close dance
// themselves. A nil fn is a plain ParallelSweep.
func ParallelSweepFunc(base Config, env Environment, opts SweepOptions, fn func(CellUpdate)) ([]AggregatePoint, error) {
	if fn == nil {
		return ParallelSweep(base, env, opts)
	}
	ch := make(chan CellUpdate)
	drained := make(chan struct{})
	opts.Progress = ch
	go func() {
		defer close(drained)
		for u := range ch {
			fn(u)
		}
	}()
	points, err := ParallelSweep(base, env, opts)
	close(ch)
	<-drained
	return points, err
}

// Fig8AggTable renders the replicated mean end-to-end delay table (paper
// Fig. 8) with 95% confidence intervals across replications.
func Fig8AggTable(points []AggregatePoint) string {
	return aggTable(points, "Fig 8: mean end-to-end delay [s] (mean ± 95% CI)",
		func(a *Aggregate) string {
			return fmt.Sprintf("%7.1f ±%5.1f", a.MeanDelayS.Mean(), a.MeanDelayS.CI95())
		})
}

// Fig8PercentilesAggTable renders the pooled end-to-end delay percentiles
// (p50/p95/p99) per cell, computed from the exactly merged per-replication
// delay histograms — true population percentiles, not averaged
// per-replication percentiles. It goes beyond the paper's Fig. 8 mean ± CI:
// tail latency is the quantity a production deployment is provisioned by.
func Fig8PercentilesAggTable(points []AggregatePoint) string {
	return aggTable(points, "Fig 8 (percentiles): end-to-end delay p50/p95/p99 [s] (pooled across reps)",
		func(a *Aggregate) string {
			p50, p95, p99 := a.DelayPercentiles()
			return fmt.Sprintf("%5.1f/%5.0f/%5.0f", p50, p95, p99)
		})
}

// Fig9AggTable renders replicated total throughput (paper Fig. 9).
func Fig9AggTable(points []AggregatePoint) string {
	return aggTable(points, "Fig 9: total throughput [messages delivered] (mean ± 95% CI)",
		func(a *Aggregate) string {
			return fmt.Sprintf("%7.0f ±%5.0f", a.Delivered.Mean(), a.Delivered.CI95())
		})
}

// Fig12AggTable renders the replicated mean hop count (paper Fig. 12).
func Fig12AggTable(points []AggregatePoint) string {
	return aggTable(points, "Fig 12: mean hops per delivered message (mean ± 95% CI)",
		func(a *Aggregate) string {
			return fmt.Sprintf("%6.2f ±%5.2f", a.MeanHops.Mean(), a.MeanHops.CI95())
		})
}

// Fig13AggTable renders the replicated per-node message overhead (paper
// Fig. 13).
func Fig13AggTable(points []AggregatePoint) string {
	return aggTable(points, "Fig 13: mean messages sent per node (mean ± 95% CI)",
		func(a *Aggregate) string {
			return fmt.Sprintf("%7.1f ±%5.1f", a.SendsPerNode.Mean(), a.SendsPerNode.CI95())
		})
}

// OverheadRatiosAgg returns, per gateway count, each forwarding scheme's
// replication-mean message-send overhead relative to NoRouting (the paper
// reports 1.6–2.2×).
func OverheadRatiosAgg(points []AggregatePoint) map[int]map[routing.Scheme]float64 {
	base := map[int]float64{}
	for _, p := range points {
		if p.Scheme == routing.SchemeNoRouting {
			base[p.Gateways] = p.Agg.SendsPerNode.Mean()
		}
	}
	out := map[int]map[routing.Scheme]float64{}
	for _, p := range points {
		if p.Scheme == routing.SchemeNoRouting {
			continue
		}
		b := base[p.Gateways]
		if b <= 0 {
			continue
		}
		if out[p.Gateways] == nil {
			out[p.Gateways] = map[routing.Scheme]float64{}
		}
		out[p.Gateways][p.Scheme] = p.Agg.SendsPerNode.Mean() / b
	}
	return out
}

// aggTable renders a gateways × schemes grid of aggregate cells.
func aggTable(points []AggregatePoint, title string, cell func(*Aggregate) string) string {
	byKey := map[[2]int]*Aggregate{}
	gwSet := map[int]bool{}
	var env Environment
	reps := 0
	for _, p := range points {
		byKey[[2]int{p.Gateways, int(p.Scheme)}] = p.Agg
		gwSet[p.Gateways] = true
		env = p.Environment
		if p.Agg != nil && p.Agg.Reps > reps {
			reps = p.Agg.Reps
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s environment, %d rep(s)\n", title, env, reps)
	fmt.Fprintf(&b, "%-18s", "gateways (paper)")
	for _, s := range Schemes() {
		fmt.Fprintf(&b, " | %16s", s)
	}
	b.WriteByte('\n')
	for _, g := range GatewaySweep() {
		if !gwSet[g] {
			continue
		}
		fmt.Fprintf(&b, "%3d (%3d)         ", g, PaperEquivalentGateways(g))
		for _, s := range Schemes() {
			a := byKey[[2]int{g, int(s)}]
			if a == nil {
				fmt.Fprintf(&b, " | %16s", "-")
				continue
			}
			fmt.Fprintf(&b, " | %16s", cell(a))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
