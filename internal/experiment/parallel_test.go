package experiment

import (
	"reflect"
	"testing"
	"time"

	"mlorass/internal/routing"
)

// sweepTestConfig is a very small scenario so a full 21-cell grid stays
// test-suite friendly.
func sweepTestConfig() Config {
	cfg := DefaultConfig()
	cfg.AreaSideM = 5000
	cfg.NumRoutes = 6
	cfg.PeakHeadway = 20 * time.Minute
	cfg.Duration = time.Hour
	return cfg
}

func TestRepSeed(t *testing.T) {
	if RepSeed(42, 0) != 42 {
		t.Fatal("replication 0 must reuse the base seed so reps=1 reproduces plain runs")
	}
	seen := map[uint64]bool{}
	for _, base := range []uint64{0, 1, 2, 42, 1 << 60} {
		for rep := 0; rep < 8; rep++ {
			s := RepSeed(base, rep)
			if s != RepSeed(base, rep) {
				t.Fatal("RepSeed not deterministic")
			}
			if seen[s] {
				t.Fatalf("seed collision at base=%d rep=%d (seed %d)", base, rep, s)
			}
			seen[s] = true
		}
	}
}

// TestParallelMatchesSerial is the engine's core guarantee: for the same
// seed set, a replicated sweep over many workers produces aggregates byte
// identical to the one-worker serial engine's, with deterministic figure
// ordering regardless of completion order.
func TestParallelMatchesSerial(t *testing.T) {
	base := sweepTestConfig()
	serial, err := ParallelSweep(base, Urban, SweepOptions{Workers: 1, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParallelSweep(base, Urban, SweepOptions{Workers: 8, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("cell counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		s, p := serial[i], par[i]
		if s.Scheme != p.Scheme || s.Gateways != p.Gateways || s.Environment != p.Environment {
			t.Fatalf("cell %d keys differ: %+v vs %+v", i, s, p)
		}
		if !reflect.DeepEqual(s.Seeds, p.Seeds) {
			t.Fatalf("cell %d seeds differ: %v vs %v", i, s.Seeds, p.Seeds)
		}
		if !reflect.DeepEqual(s.Agg, p.Agg) {
			t.Fatalf("cell %d aggregates differ:\n serial %+v\n parallel %+v", i, s.Agg, p.Agg)
		}
		for rep := range s.Reps {
			a, b := s.Reps[rep], p.Reps[rep]
			if a.Delivered != b.Delivered || a.Generated != b.Generated ||
				a.Delay.Mean() != b.Delay.Mean() ||
				a.Medium.Transmissions != b.Medium.Transmissions {
				t.Fatalf("cell %d rep %d results differ", i, rep)
			}
		}
	}
	// The rendered figure artefacts must match byte for byte.
	for _, render := range []func([]AggregatePoint) string{
		Fig8AggTable, Fig9AggTable, Fig12AggTable, Fig13AggTable,
	} {
		if render(serial) != render(par) {
			t.Fatalf("rendered tables differ:\n%s\nvs\n%s", render(serial), render(par))
		}
	}
}

// TestSweepFiguresWrapperDeterministic pins the serial wrapper's behaviour:
// figure ordering, one replication per cell, progress lines in figure order.
func TestSweepFiguresWrapperDeterministic(t *testing.T) {
	base := sweepTestConfig()
	var lines []string
	points, err := SweepFigures(base, Urban, func(l string) { lines = append(lines, l) })
	if err != nil {
		t.Fatal(err)
	}
	wantCells := len(GatewaySweep()) * len(Schemes())
	if len(points) != wantCells {
		t.Fatalf("got %d points, want %d", len(points), wantCells)
	}
	if len(lines) != wantCells {
		t.Fatalf("got %d progress lines, want %d", len(lines), wantCells)
	}
	i := 0
	for _, gw := range GatewaySweep() {
		for _, scheme := range Schemes() {
			p := points[i]
			if p.Gateways != gw || p.Scheme != scheme {
				t.Fatalf("point %d out of figure order: gw=%d scheme=%v, want gw=%d scheme=%v",
					i, p.Gateways, p.Scheme, gw, scheme)
			}
			if lines[i] != p.Result.String() {
				t.Fatalf("progress line %d does not match point %d", i, i)
			}
			i++
		}
	}
}

// TestParallelProgressStreams checks the channel-based progress stream: one
// update per completed replication with a monotone completion counter, even
// with many workers finishing out of order.
func TestParallelProgressStreams(t *testing.T) {
	base := sweepTestConfig()
	const reps = 2
	total := len(GatewaySweep()) * len(Schemes()) * reps
	ch := make(chan CellUpdate, total)
	if _, err := ParallelSweep(base, Rural, SweepOptions{Workers: 6, Reps: reps, Progress: ch}); err != nil {
		t.Fatal(err)
	}
	close(ch)
	n := 0
	for u := range ch {
		n++
		if u.Completed != n {
			t.Fatalf("update %d carries Completed=%d", n, u.Completed)
		}
		if u.Total != total {
			t.Fatalf("Total = %d, want %d", u.Total, total)
		}
		if u.Result == nil {
			t.Fatal("progress update without a result")
		}
		if u.Rep < 0 || u.Rep >= reps {
			t.Fatalf("rep index %d out of range", u.Rep)
		}
		if u.Seed != RepSeed(base.Seed, u.Rep) {
			t.Fatalf("update seed %d != RepSeed(%d, %d)", u.Seed, base.Seed, u.Rep)
		}
	}
	if n != total {
		t.Fatalf("streamed %d updates, want %d", n, total)
	}
}

// TestParallelSweepPropagatesErrors checks a bad base config fails the sweep
// with a cell-identifying error instead of hanging the pool.
func TestParallelSweepPropagatesErrors(t *testing.T) {
	base := sweepTestConfig()
	base.Alpha = 2 // rejected by Validate
	if _, err := ParallelSweep(base, Urban, SweepOptions{Workers: 4, Reps: 2}); err == nil {
		t.Fatal("invalid config did not fail the sweep")
	}
}

// TestSeedSensitivity exercises the replication aggregator's reason to
// exist: the same scenario under different seeds must yield different but
// statistically compatible results.
func TestSeedSensitivity(t *testing.T) {
	cfg := sweepTestConfig()
	cfg.Scheme = routing.SchemeROBC
	cfg.Duration = 2 * time.Hour
	const reps = 4
	results := make([]*Result, reps)
	for rep := 0; rep < reps; rep++ {
		c := cfg
		c.Seed = RepSeed(cfg.Seed, rep)
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		results[rep] = r
	}
	distinct := false
	for _, r := range results[1:] {
		if r.Delivered != results[0].Delivered || r.Delay.Mean() != results[0].Delay.Mean() {
			distinct = true
		}
	}
	if !distinct {
		t.Fatal("different seeds produced identical replications")
	}
	agg := AggregateResults(results)
	if agg.Reps != reps {
		t.Fatalf("aggregated %d reps, want %d", agg.Reps, reps)
	}
	if agg.Delivered.CI95() <= 0 {
		t.Fatal("replication CI is zero although replications differ")
	}
	// Statistical compatibility: every replication stays within a loose
	// band around the cross-replication mean — seeds perturb, they do not
	// change the regime.
	mean := agg.Delivered.Mean()
	for rep, r := range results {
		if d := float64(r.Delivered); d < 0.5*mean || d > 1.5*mean {
			t.Fatalf("rep %d delivered %d, wildly off the replication mean %.0f", rep, r.Delivered, mean)
		}
	}
}

// TestAggregateResults pins the aggregation arithmetic on hand-built
// results.
func TestAggregateResults(t *testing.T) {
	mk := func(delivered int, generated uint64, delays ...float64) *Result {
		r := &Result{Delivered: delivered, Generated: generated}
		for _, d := range delays {
			r.Delay.Add(d)
			r.Hops.Add(1)
		}
		r.MsgSendsPerNode.Add(10)
		return r
	}
	a := AggregateResults([]*Result{
		mk(10, 20, 100, 200), // mean delay 150, ratio 50%
		mk(20, 20, 300, 500), // mean delay 400, ratio 100%
		nil,                  // skipped
	})
	if a.Reps != 2 {
		t.Fatalf("Reps = %d, want 2", a.Reps)
	}
	if got := a.Delivered.Mean(); got != 15 {
		t.Fatalf("mean delivered = %v, want 15", got)
	}
	if got := a.MeanDelayS.Mean(); got != 275 {
		t.Fatalf("mean of mean delays = %v, want 275", got)
	}
	if got := a.DeliveryPct.Mean(); got != 75 {
		t.Fatalf("mean delivery pct = %v, want 75", got)
	}
	if a.Delivered.CI95() <= 0 {
		t.Fatal("CI of differing replications must be positive")
	}
	if a.String() == "" {
		t.Fatal("empty aggregate summary")
	}
	one := AggregateResults([]*Result{mk(10, 20, 100)})
	if one.Delivered.CI95() != 0 {
		t.Fatal("single replication must report zero CI, not NaN")
	}
}

// TestAggTablesRender checks the replicated tables carry every scheme column
// and the rep count.
func TestAggTablesRender(t *testing.T) {
	base := sweepTestConfig()
	points, err := ParallelSweep(base, Urban, SweepOptions{Workers: 4, Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, table := range []string{
		Fig8AggTable(points), Fig9AggTable(points), Fig12AggTable(points), Fig13AggTable(points),
	} {
		if table == "" {
			t.Fatal("empty aggregate table")
		}
		for _, s := range Schemes() {
			if !containsStr(table, s.String()) {
				t.Fatalf("table missing column %v:\n%s", s, table)
			}
		}
		if !containsStr(table, "2 rep(s)") {
			t.Fatalf("table does not state the replication count:\n%s", table)
		}
	}
	ratios := OverheadRatiosAgg(points)
	if len(ratios) != len(GatewaySweep()) {
		t.Fatalf("overhead ratios cover %d gateway counts, want %d", len(ratios), len(GatewaySweep()))
	}
	for gw, m := range ratios {
		for sch, v := range m {
			if v <= 0 {
				t.Fatalf("gw=%d %v overhead ratio %v not positive", gw, sch, v)
			}
		}
	}
}
