package experiment

import (
	"fmt"
	"io"
	"sync"

	"mlorass/internal/routing"
	"mlorass/internal/sweepfarm"
)

// layoutSweep lays out the figure grid's cells and jobs in deterministic
// figure order: gateway count outer, scheme inner, replication innermost.
// Both the in-process ParallelSweep pool and the crash-tolerant sweep farm
// enumerate cells through this one function, so their grids — and therefore
// their store keys and their output tables — are identical by construction.
func layoutSweep(base Config, env Environment, reps int) (cells []AggregatePoint, jobs []sweepJob) {
	if reps < 1 {
		reps = 1
	}
	for _, gw := range GatewaySweep() {
		for _, scheme := range Schemes() {
			ci := len(cells)
			cells = append(cells, AggregatePoint{
				Environment: env,
				Scheme:      scheme,
				Gateways:    gw,
				Seeds:       make([]uint64, reps),
				Reps:        make([]*Result, reps),
			})
			for rep := 0; rep < reps; rep++ {
				cfg := base
				cfg.Environment = env
				cfg.D2DRangeM = 0 // re-derive from environment
				cfg.NumGateways = gw
				cfg.Scheme = scheme
				cfg.Seed = RepSeed(base.Seed, rep)
				cells[ci].Seeds[rep] = cfg.Seed
				jobs = append(jobs, sweepJob{cell: ci, rep: rep, cfg: cfg})
			}
		}
	}
	return cells, jobs
}

// FarmSweep adapts one figure sweep to the sweepfarm protocol: it enumerates
// the grid as sweepfarm cells (keyed by the same content address the run
// store uses), computes cells as encoded artefacts, verifies artefacts with
// the store decoder's integrity checks, and merges verified artefacts into
// AggregatePoints — idempotently, deduped by store key, so a cell result
// that arrives twice (duplicate completion, coordinator restart replaying
// recovery) changes nothing.
type FarmSweep struct {
	cells []AggregatePoint
	jobs  []sweepJob

	// OnResult, when non-nil, observes each newly absorbed replication's
	// Result (duplicates never reach it). Called synchronously from Absorb —
	// which the farm coordinator runs under its lock — immediately before
	// the coordinator emits the cell's Done event, so an event observer can
	// pair the two.
	OnResult func(*Result)

	mu sync.Mutex
	// absorbed dedupes the merge by store key (and by index for keyless
	// cells): the exactly-once guard on this side of the protocol.
	absorbed map[string]bool
	slotted  []bool
}

// NewFarmSweep lays out the figure grid for env: every scheme × gateway
// count, replicated reps times with seeds derived via RepSeed.
func NewFarmSweep(base Config, env Environment, reps int) *FarmSweep {
	cells, jobs := layoutSweep(base, env, reps)
	return &FarmSweep{
		cells:    cells,
		jobs:     jobs,
		absorbed: map[string]bool{},
		slotted:  make([]bool, len(jobs)),
	}
}

// Cells enumerates the sweep as sweepfarm cells, one per (cell, replication)
// job, in figure order. Cell keys are the run store's content addresses, so
// a farm over the same store directory as a previous expsweep -store run
// reuses its artefacts; a config without a canonical byte form (an explicit
// Dataset) yields keyless cells whose artefacts travel inline.
func (f *FarmSweep) Cells() []sweepfarm.Cell {
	out := make([]sweepfarm.Cell, len(f.jobs))
	for i, j := range f.jobs {
		key, _ := cacheKey(j.cfg)
		c := f.cells[j.cell]
		out[i] = sweepfarm.Cell{
			Index: i,
			Key:   key,
			Label: fmt.Sprintf("%v/%v/gw=%d/rep=%d", c.Environment, c.Scheme, c.Gateways, j.rep),
		}
	}
	return out
}

// Run computes one cell: a full simulation encoded as a store artefact.
// Deterministic in the cell (the config embeds the derived seed), which is
// what makes the farm's at-least-once execution safe.
func (f *FarmSweep) Run(c sweepfarm.Cell) ([]byte, error) {
	res, err := Run(f.jobs[c.Index].cfg)
	if err != nil {
		return nil, err
	}
	return encodeResult(res)
}

// Verify rejects torn, truncated or stale-schema artefacts using the same
// structural integrity checks the run store's loader applies.
func (f *FarmSweep) Verify(c sweepfarm.Cell, data []byte) error {
	_, err := decodeResult(data, f.jobs[c.Index].cfg)
	return err
}

// Absorb merges one verified artefact into the sweep's aggregate state.
// Absorbing the same cell twice is a no-op: results are deduped by store key
// before the merge (by index for keyless cells), so duplicate completions
// and restart replays cannot double-count a replication.
func (f *FarmSweep) Absorb(c sweepfarm.Cell, data []byte) error {
	res, err := decodeResult(data, f.jobs[c.Index].cfg)
	if err != nil {
		return err
	}
	dedupe := c.Key
	if dedupe == "" {
		dedupe = fmt.Sprintf("inline:%d", c.Index)
	}
	f.mu.Lock()
	if f.absorbed[dedupe] {
		f.mu.Unlock()
		return nil
	}
	f.absorbed[dedupe] = true
	j := f.jobs[c.Index]
	f.cells[j.cell].Reps[j.rep] = res
	f.slotted[c.Index] = true
	f.mu.Unlock()
	if f.OnResult != nil {
		f.OnResult(res)
	}
	return nil
}

// Points collapses the absorbed results into the sweep's AggregatePoints.
// Replications lost to quarantine stay nil and are skipped by the
// aggregation — the tables show what was measured, and the farm's gap
// report names what was not.
func (f *FarmSweep) Points() []AggregatePoint {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]AggregatePoint, len(f.cells))
	copy(out, f.cells)
	for i := range out {
		out[i].Agg = AggregateResults(out[i].Reps)
	}
	return out
}

// RenderFigureTables writes the figure sweep's complete stdout block for one
// environment: the Fig 8/9/12/13 aggregate tables, the optional pooled
// percentile table, the matched-coverage table over replication 0, and the
// overhead-ratio lines. expsweep and sweepd both print through this one
// function, which is what makes their outputs byte-identical by
// construction rather than by test alone. Cells with no replication-0 result
// (quarantined under the farm) are omitted from the matched-coverage table;
// every other table renders them as "-".
func RenderFigureTables(w io.Writer, points []AggregatePoint, reps int, percentiles bool) {
	fmt.Fprintln(w, Fig8AggTable(points))
	if percentiles {
		fmt.Fprintln(w, Fig8PercentilesAggTable(points))
	}
	if reps > 1 {
		fmt.Fprintln(w, "(the matched-coverage table below uses replication 0 only: it needs raw per-delivery samples, not aggregates)")
	}
	var rep0 []SweepPoint
	for _, p := range points {
		if len(p.Reps) == 0 || p.Reps[0] == nil {
			continue
		}
		rep0 = append(rep0, SweepPoint{
			Environment: p.Environment,
			Scheme:      p.Scheme,
			Gateways:    p.Gateways,
			Result:      p.Reps[0],
		})
	}
	fmt.Fprintln(w, Fig8MatchedTable(rep0))
	fmt.Fprintln(w, Fig9AggTable(points))
	fmt.Fprintln(w, Fig12AggTable(points))
	fmt.Fprintln(w, Fig13AggTable(points))
	fmt.Fprintln(w, "overhead ratios vs NoRouting (paper: 1.6-2.2x):")
	ratios := OverheadRatiosAgg(points)
	for _, gw := range GatewaySweep() {
		if m, ok := ratios[gw]; ok {
			fmt.Fprintf(w, "  gw=%3d  RCA-ETX %.2fx  ROBC %.2fx\n",
				gw, m[routing.SchemeRCAETX], m[routing.SchemeROBC])
		}
	}
	fmt.Fprintln(w)
}
