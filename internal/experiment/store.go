package experiment

import (
	"encoding/json"
	"fmt"
	"time"

	"mlorass/internal/disruption"
	"mlorass/internal/gwplan"
	"mlorass/internal/lorawan"
	"mlorass/internal/radio"
	"mlorass/internal/routing"
	"mlorass/internal/runstore"
	"mlorass/internal/stats"
	"mlorass/internal/telemetry"
)

// storeSchemaVersion versions the (simulator semantics, artefact encoding)
// pair. Bump it whenever either changes — any edit that can alter a Result
// for the same (config, seed), or the resultArtifact layout — and every
// previously stored artefact silently becomes a miss. This is the store's
// entire cache-invalidation model: keys are content-addressed over
// (schema version, semantic config, seed), never expired by time.
//
// Version 2: the MAC subsystem (Config.MAC in the key, downlink/ADR
// measurements and the SF distribution in the artefact).
//
// Version 3: the sharded execution engine (Config.Shards in the key —
// sharded results are deliberately distinct from serial ones, so the
// engine choice is semantic).
const storeSchemaVersion = 3

// storeKey is the canonical, deterministic description of everything that
// determines a Run's Result. Field order is fixed by the struct; every
// semantic Config field appears, and only non-semantic ones (trace sink,
// progress plumbing) are omitted. TelemetryDisabled is semantic: it decides
// whether the artefact carries a telemetry snapshot.
type storeKey struct {
	Schema            int                   `json:"schema"`
	Seed              uint64                `json:"seed"`
	Scheme            routing.Scheme        `json:"scheme"`
	Class             lorawan.DeviceClass   `json:"class"`
	Environment       Environment           `json:"environment"`
	D2DRangeM         float64               `json:"d2d_range_m"`
	GatewayRangeM     float64               `json:"gateway_range_m"`
	NumGateways       int                   `json:"num_gateways"`
	GatewayStrategy   gwplan.Strategy       `json:"gateway_strategy"`
	Mobility          MobilityConfig        `json:"mobility"`
	Disruption        disruption.Config     `json:"disruption"`
	NumRoutes         int                   `json:"num_routes"`
	PeakHeadway       time.Duration         `json:"peak_headway"`
	AreaSideM         float64               `json:"area_side_m"`
	Duration          time.Duration         `json:"duration"`
	MsgInterval       time.Duration         `json:"msg_interval"`
	QueueMax          int                   `json:"queue_max"`
	Alpha             float64               `json:"alpha"`
	SF                radio.SpreadingFactor `json:"sf"`
	TxPowerDBm        float64               `json:"tx_power_dbm"`
	DutyCycle         float64               `json:"duty_cycle"`
	ShadowSigmaDB     float64               `json:"shadow_sigma_db"`
	CaptureDB         float64               `json:"capture_db"`
	ThroughputBin     time.Duration         `json:"throughput_bin"`
	TelemetryDisabled bool                  `json:"telemetry_disabled"`
	MAC               MACConfig             `json:"mac"`
	Shards            int                   `json:"shards"`
}

// cacheKey returns the run store key for cfg. ok is false when the config
// is not cacheable: an explicitly supplied Dataset has no canonical byte
// form here, so those runs always simulate.
func cacheKey(cfg Config) (key string, ok bool) {
	if cfg.Dataset != nil {
		return "", false
	}
	cfg.Normalize()
	k := storeKey{
		Schema:            storeSchemaVersion,
		Seed:              cfg.Seed,
		Scheme:            cfg.Scheme,
		Class:             cfg.Class,
		Environment:       cfg.Environment,
		D2DRangeM:         cfg.D2DRangeM,
		GatewayRangeM:     cfg.GatewayRangeM,
		NumGateways:       cfg.NumGateways,
		GatewayStrategy:   cfg.GatewayStrategy,
		Mobility:          cfg.Mobility,
		Disruption:        cfg.Disruption,
		NumRoutes:         cfg.NumRoutes,
		PeakHeadway:       cfg.PeakHeadway,
		AreaSideM:         cfg.AreaSideM,
		Duration:          cfg.Duration,
		MsgInterval:       cfg.MsgInterval,
		QueueMax:          cfg.QueueMax,
		Alpha:             cfg.Alpha,
		SF:                cfg.SF,
		TxPowerDBm:        cfg.TxPowerDBm,
		DutyCycle:         cfg.DutyCycle,
		ShadowSigmaDB:     cfg.ShadowSigmaDB,
		CaptureDB:         cfg.CaptureDB,
		ThroughputBin:     cfg.ThroughputBin,
		TelemetryDisabled: cfg.Telemetry.Disabled,
		MAC:               cfg.MAC,
		Shards:            cfg.Shards,
	}
	b, err := json.Marshal(k)
	if err != nil {
		return "", false
	}
	return runstore.Key(b), true
}

// resultArtifact is a Result's wire form: every measurement, including the
// raw per-delivery samples the matched-coverage table needs and the
// telemetry snapshot, but not the Config (the loader restores it from the
// request, which by key construction is semantically identical). JSON
// float64 encoding round-trips bit for bit, so a decoded artefact renders
// every aggregate table byte-identically to the original run.
type resultArtifact struct {
	Schema               int                `json:"schema"`
	Generated            uint64             `json:"generated"`
	Delivered            int                `json:"delivered"`
	Duplicates           uint64             `json:"duplicates"`
	QueueDrops           uint64             `json:"queue_drops"`
	Delay                stats.Summary      `json:"delay"`
	Hops                 stats.Summary      `json:"hops"`
	MsgSendsPerNode      stats.Summary      `json:"msg_sends_per_node"`
	FramesPerNode        stats.Summary      `json:"frames_per_node"`
	RadioOnPerNode       stats.Summary      `json:"radio_on_per_node"`
	Throughput           *stats.TimeSeries  `json:"throughput"`
	Medium               radio.MediumStats  `json:"medium"`
	ActiveDevices        int                `json:"active_devices"`
	HandoverAttempts     uint64             `json:"handover_attempts"`
	HandoverSuccesses    uint64             `json:"handover_successes"`
	HandoverMsgs         uint64             `json:"handover_msgs"`
	HandoverLostMsgs     uint64             `json:"handover_lost_msgs"`
	GatewayOutageWindows int                `json:"gateway_outage_windows"`
	DeviceFailures       int                `json:"device_failures"`
	DirectDelay          stats.Summary      `json:"direct_delay"`
	RelayedDelay         stats.Summary      `json:"relayed_delay"`
	Downlinks            uint64             `json:"downlinks"`
	DownlinkDeliveries   uint64             `json:"downlink_deliveries"`
	DownlinkDrops        uint64             `json:"downlink_drops"`
	AckTimeouts          uint64             `json:"ack_timeouts"`
	Retransmissions      uint64             `json:"retransmissions"`
	ADRCommands          uint64             `json:"adr_commands"`
	ADRApplied           uint64             `json:"adr_applied"`
	Telemetry            telemetry.Snapshot `json:"telemetry"`
	RawDelays            []float64          `json:"raw_delays"`
	OriginDelivered      []int              `json:"origin_delivered"`
}

// encodeResult serialises a Result for the run store.
func encodeResult(r *Result) ([]byte, error) {
	return json.Marshal(resultArtifact{
		Schema:               storeSchemaVersion,
		Generated:            r.Generated,
		Delivered:            r.Delivered,
		Duplicates:           r.Duplicates,
		QueueDrops:           r.QueueDrops,
		Delay:                r.Delay,
		Hops:                 r.Hops,
		MsgSendsPerNode:      r.MsgSendsPerNode,
		FramesPerNode:        r.FramesPerNode,
		RadioOnPerNode:       r.RadioOnPerNode,
		Throughput:           r.Throughput,
		Medium:               r.Medium,
		ActiveDevices:        r.ActiveDevices,
		HandoverAttempts:     r.HandoverAttempts,
		HandoverSuccesses:    r.HandoverSuccesses,
		HandoverMsgs:         r.HandoverMsgs,
		HandoverLostMsgs:     r.HandoverLostMsgs,
		GatewayOutageWindows: r.GatewayOutageWindows,
		DeviceFailures:       r.DeviceFailures,
		DirectDelay:          r.DirectDelay,
		RelayedDelay:         r.RelayedDelay,
		Downlinks:            r.Downlinks,
		DownlinkDeliveries:   r.DownlinkDeliveries,
		DownlinkDrops:        r.DownlinkDrops,
		AckTimeouts:          r.AckTimeouts,
		Retransmissions:      r.Retransmissions,
		ADRCommands:          r.ADRCommands,
		ADRApplied:           r.ADRApplied,
		Telemetry:            r.Telemetry,
		RawDelays:            r.rawDelays,
		OriginDelivered:      r.originDelivered,
	})
}

// decodeResult restores a stored artefact as the Result that Run(cfg) would
// have produced, rejecting artefacts from another schema version and
// artefacts that parse but fail the structural invariants every real run
// satisfies. The integrity check matters for crash recovery: a truncated or
// hand-damaged file that still happens to be valid JSON (`{"schema":2}`,
// say) must read as corruption — to be recomputed and overwritten — not as
// a cached cell of zeros that silently poisons a sweep.
func decodeResult(data []byte, cfg Config) (*Result, error) {
	var a resultArtifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("experiment: stored artefact: %w", err)
	}
	if a.Schema != storeSchemaVersion {
		return nil, fmt.Errorf("experiment: stored artefact schema %d, want %d", a.Schema, storeSchemaVersion)
	}
	if a.Throughput == nil {
		return nil, fmt.Errorf("experiment: stored artefact has no throughput series (truncated?)")
	}
	if a.Delivered < 0 || len(a.RawDelays) != a.Delivered || len(a.OriginDelivered) != a.Delivered {
		return nil, fmt.Errorf("experiment: stored artefact delivery samples %d/%d inconsistent with delivered %d (truncated?)",
			len(a.RawDelays), len(a.OriginDelivered), a.Delivered)
	}
	if a.Delay.N() != uint64(a.Delivered) || a.Hops.N() != uint64(a.Delivered) {
		return nil, fmt.Errorf("experiment: stored artefact summaries (n=%d/%d) inconsistent with delivered %d (truncated?)",
			a.Delay.N(), a.Hops.N(), a.Delivered)
	}
	cfg.Normalize()
	return &Result{
		Config:               cfg,
		Generated:            a.Generated,
		Delivered:            a.Delivered,
		Duplicates:           a.Duplicates,
		QueueDrops:           a.QueueDrops,
		Delay:                a.Delay,
		Hops:                 a.Hops,
		MsgSendsPerNode:      a.MsgSendsPerNode,
		FramesPerNode:        a.FramesPerNode,
		RadioOnPerNode:       a.RadioOnPerNode,
		Throughput:           a.Throughput,
		Medium:               a.Medium,
		ActiveDevices:        a.ActiveDevices,
		HandoverAttempts:     a.HandoverAttempts,
		HandoverSuccesses:    a.HandoverSuccesses,
		HandoverMsgs:         a.HandoverMsgs,
		HandoverLostMsgs:     a.HandoverLostMsgs,
		GatewayOutageWindows: a.GatewayOutageWindows,
		DeviceFailures:       a.DeviceFailures,
		DirectDelay:          a.DirectDelay,
		RelayedDelay:         a.RelayedDelay,
		Downlinks:            a.Downlinks,
		DownlinkDeliveries:   a.DownlinkDeliveries,
		DownlinkDrops:        a.DownlinkDrops,
		AckTimeouts:          a.AckTimeouts,
		Retransmissions:      a.Retransmissions,
		ADRCommands:          a.ADRCommands,
		ADRApplied:           a.ADRApplied,
		Telemetry:            a.Telemetry,
		rawDelays:            a.RawDelays,
		originDelivered:      a.OriginDelivered,
	}, nil
}

// runThroughStore executes one sweep cell through the artefact cache: a
// stored (config, seed) cell loads instead of simulating; a fresh cell
// simulates and persists. A nil store, an uncacheable config, or a corrupt
// stored artefact falls back to a plain Run (corruption is repaired by
// overwriting); a failing Put fails the cell, because a sweep that silently
// stops persisting would defeat resumability.
func runThroughStore(store *runstore.Store, cfg Config) (res *Result, cached bool, err error) {
	if store == nil {
		res, err := Run(cfg)
		return res, false, err
	}
	key, cacheable := cacheKey(cfg)
	if cacheable {
		if data, ok, err := store.Get(key); err == nil && ok {
			if res, derr := decodeResult(data, cfg); derr == nil {
				return res, true, nil
			}
			// Corrupt or stale-schema artefact: fall through and
			// overwrite it with a fresh run.
		}
	}
	res, err = Run(cfg)
	if err != nil || !cacheable {
		return res, false, err
	}
	data, err := encodeResult(res)
	if err != nil {
		return nil, false, fmt.Errorf("experiment: encode artefact: %w", err)
	}
	if err := store.Put(key, data); err != nil {
		return nil, false, err
	}
	return res, false, nil
}
