package experiment

import (
	"testing"
	"testing/quick"
	"time"

	"mlorass/internal/geo"
)

// gridWorld gives every device a fixed position for index tests.
type gridWorld map[int]geo.Point

func (w gridWorld) pos(id int) (geo.Point, bool) {
	p, ok := w[id]
	return p, ok
}

func TestDevIndexFindsNeighbours(t *testing.T) {
	ix := newDevIndex(1000, 30*time.Second, 11)
	world := gridWorld{
		1: {X: 100, Y: 100},
		2: {X: 500, Y: 100},
		3: {X: 5000, Y: 5000},
	}
	ix.refresh(0, []int{1, 2, 3}, world.pos)
	got := ix.candidates(0, geo.Point{X: 0, Y: 0}, 800)
	if !containsInt(got, 1) || !containsInt(got, 2) {
		t.Fatalf("candidates %v missing nearby devices", got)
	}
	if containsInt(got, 3) {
		t.Fatalf("candidates %v include the far device", got)
	}
}

func TestDevIndexCandidatesSorted(t *testing.T) {
	ix := newDevIndex(500, time.Minute, 11)
	world := gridWorld{}
	ids := make([]int, 0, 20)
	for i := 19; i >= 0; i-- {
		world[i] = geo.Point{X: float64(i * 37 % 900), Y: float64(i * 53 % 900)}
		ids = append(ids, i)
	}
	ix.refresh(0, ids, world.pos)
	got := ix.candidates(0, geo.Point{X: 450, Y: 450}, 2000)
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("candidates not sorted: %v", got)
		}
	}
}

func TestDevIndexSkipsInactive(t *testing.T) {
	ix := newDevIndex(1000, time.Minute, 11)
	world := gridWorld{1: {X: 10, Y: 10}}
	// Device 2 reports no position (inactive) and must not be indexed.
	pos := func(id int) (geo.Point, bool) {
		if id == 2 {
			return geo.Point{}, false
		}
		return world.pos(id)
	}
	ix.refresh(0, []int{1, 2}, pos)
	got := ix.candidates(0, geo.Point{X: 0, Y: 0}, 100)
	if containsInt(got, 2) {
		t.Fatalf("inactive device indexed: %v", got)
	}
}

func TestDevIndexStaleness(t *testing.T) {
	ix := newDevIndex(1000, 30*time.Second, 11)
	world := gridWorld{1: {X: 100, Y: 100}}
	ix.refresh(0, []int{1}, world.pos)
	// Within the rebuild window the index is not rebuilt even if the
	// world changes...
	world[2] = geo.Point{X: 200, Y: 200}
	ix.refresh(10*time.Second, []int{1, 2}, world.pos)
	if got := ix.candidates(10*time.Second, geo.Point{X: 150, Y: 150}, 500); containsInt(got, 2) {
		t.Fatalf("index rebuilt too early: %v", got)
	}
	// ...after the window it is.
	ix.refresh(40*time.Second, []int{1, 2}, world.pos)
	if got := ix.candidates(40*time.Second, geo.Point{X: 150, Y: 150}, 500); !containsInt(got, 2) {
		t.Fatalf("index not rebuilt after staleness window: %v", got)
	}
}

func TestDevIndexSlackCoversMovement(t *testing.T) {
	// A device indexed at its build-time position must still be found
	// after moving at max speed for the full staleness window.
	ix := newDevIndex(500, 30*time.Second, 11)
	start := geo.Point{X: 1000, Y: 1000}
	world := gridWorld{1: start}
	ix.refresh(0, []int{1}, world.pos)
	// 29 s later the device has moved 11 m/s × 29 s ≈ 319 m away; a
	// query centred on its NEW position with radius 100 must still list
	// it because of the slack widening.
	moved := geo.Point{X: start.X + 319, Y: start.Y}
	got := ix.candidates(29*time.Second, moved, 100)
	if !containsInt(got, 1) {
		t.Fatalf("moving device escaped the index slack: %v", got)
	}
}

func TestDevIndexDefaultCell(t *testing.T) {
	ix := newDevIndex(0, time.Minute, 11) // 0 falls back to 1 km cells
	if ix.cellM != 1000 {
		t.Fatalf("default cell = %v", ix.cellM)
	}
}

// Property: the index over-approximates — every device truly within the
// query radius at build time appears among the candidates.
func TestQuickDevIndexComplete(t *testing.T) {
	f := func(coords []uint16, qx, qy uint16, radRaw uint8) bool {
		ix := newDevIndex(700, time.Minute, 11)
		world := gridWorld{}
		ids := make([]int, 0, len(coords)/2)
		for i := 0; i+1 < len(coords); i += 2 {
			id := i / 2
			world[id] = geo.Point{X: float64(coords[i] % 10000), Y: float64(coords[i+1] % 10000)}
			ids = append(ids, id)
		}
		ix.refresh(0, ids, world.pos)
		q := geo.Point{X: float64(qx % 10000), Y: float64(qy % 10000)}
		radius := float64(radRaw)*10 + 1
		got := ix.candidates(0, q, radius)
		for id, p := range world {
			if p.Dist(q) <= radius && !containsInt(got, id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// TestDevIndexZeroAllocSteadyState locks the flat grid's zero-allocation
// invariant: once the arena and scratch buffers are warm, rebuilds and
// candidate queries allocate nothing.
func TestDevIndexZeroAllocSteadyState(t *testing.T) {
	ix := newDevIndex(500, 30*time.Second, 11)
	world := gridWorld{}
	ids := make([]int, 0, 200)
	for i := 0; i < 200; i++ {
		world[i] = geo.Point{X: float64(i*97%5000) + 0.5, Y: float64(i*131%5000) + 0.5}
		ids = append(ids, i)
	}
	pos := world.pos // hoisted: the closure is the caller's, not the grid's
	now := time.Duration(0)
	// Warm every buffer (arena, entries, cursors, scratch).
	for i := 0; i < 3; i++ {
		ix.refresh(now, ids, pos)
		ix.candidates(now, geo.Point{X: 2500, Y: 2500}, 800)
		now += time.Minute
	}
	if n := testing.AllocsPerRun(100, func() {
		now += time.Minute // always stale: every call is a full rebuild
		ix.refresh(now, ids, pos)
	}); n != 0 {
		t.Fatalf("grid refresh allocates %v per rebuild, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		ix.candidates(now, geo.Point{X: 2500, Y: 2500}, 800)
	}); n != 0 {
		t.Fatalf("grid query allocates %v per call, want 0", n)
	}
}

// TestDevIndexMatchesBruteForce cross-checks the flat grid against a brute
// force reference over randomised worlds: identical candidate supersets
// (modulo the deliberate cell over-approximation) and ascending order, for
// ascending and non-ascending id input.
func TestDevIndexMatchesBruteForce(t *testing.T) {
	rnd := func(seed, mod int) float64 { return float64((seed*2654435761)%mod) + 0.25 }
	for _, descending := range []bool{false, true} {
		ix := newDevIndex(700, 30*time.Second, 11)
		world := gridWorld{}
		var ids []int
		for i := 0; i < 300; i++ {
			world[i] = geo.Point{X: rnd(i+1, 9000), Y: rnd(i+7, 9000)}
			ids = append(ids, i)
		}
		if descending {
			for l, r := 0, len(ids)-1; l < r; l, r = l+1, r-1 {
				ids[l], ids[r] = ids[r], ids[l]
			}
		}
		ix.refresh(0, ids, world.pos)
		for q := 0; q < 50; q++ {
			p := geo.Point{X: rnd(q+3, 9000), Y: rnd(q+11, 9000)}
			radius := 400 + float64(q*37%1200)
			got := ix.candidates(time.Duration(q)*time.Second, p, radius)
			for i := 1; i < len(got); i++ {
				if got[i] <= got[i-1] {
					t.Fatalf("descending=%v query %d: candidates not ascending: %v", descending, q, got)
				}
			}
			for id, pt := range world {
				if pt.Dist(p) <= radius && !containsInt(got, id) {
					t.Fatalf("descending=%v query %d: device %d within %v missing from %v",
						descending, q, id, radius, got)
				}
			}
		}
	}
}
