package experiment

import (
	"reflect"
	"testing"
)

// TestFarmSweepDuplicateAbsorb locks the farm adapter's exactly-once merge:
// absorbing every cell artefact a second time — as duplicate completions or
// a restarted coordinator's recovery replay would — changes neither the
// aggregates nor the rendered tables, and the duplicate never reaches
// OnResult.
func TestFarmSweepDuplicateAbsorb(t *testing.T) {
	base := sweepTestConfig()
	ref, err := ParallelSweep(base, Urban, SweepOptions{Workers: 4, Reps: 1})
	if err != nil {
		t.Fatal(err)
	}

	fsweep := NewFarmSweep(base, Urban, 1)
	results := 0
	fsweep.OnResult = func(*Result) { results++ }
	cells := fsweep.Cells()
	artefacts := make([][]byte, len(cells))
	for i, c := range cells {
		data, err := fsweep.Run(c)
		if err != nil {
			t.Fatalf("cell %d (%s): %v", i, c.Label, err)
		}
		artefacts[i] = data
		if err := fsweep.Absorb(c, data); err != nil {
			t.Fatalf("absorb cell %d: %v", i, err)
		}
	}
	if results != len(cells) {
		t.Fatalf("OnResult fired %d times for %d cells", results, len(cells))
	}
	once := fsweep.Points()

	// Replay every artefact, in reverse arrival order for good measure.
	for i := len(cells) - 1; i >= 0; i-- {
		if err := fsweep.Absorb(cells[i], artefacts[i]); err != nil {
			t.Fatalf("duplicate absorb cell %d: %v", i, err)
		}
	}
	if results != len(cells) {
		t.Fatalf("duplicate absorption reached OnResult: %d calls for %d cells", results, len(cells))
	}
	twice := fsweep.Points()
	if !reflect.DeepEqual(once, twice) {
		t.Fatal("duplicate absorption changed the aggregates")
	}

	// And the farm's aggregates match the in-process pool's, cell for cell.
	if len(twice) != len(ref) {
		t.Fatalf("cell counts differ: farm %d vs pool %d", len(twice), len(ref))
	}
	for i := range ref {
		if !reflect.DeepEqual(ref[i].Agg, twice[i].Agg) {
			t.Fatalf("cell %d aggregates differ:\n pool %+v\n farm %+v", i, ref[i].Agg, twice[i].Agg)
		}
	}
	for _, render := range []func([]AggregatePoint) string{
		Fig8AggTable, Fig9AggTable, Fig12AggTable, Fig13AggTable,
	} {
		if render(ref) != render(twice) {
			t.Fatal("rendered tables differ between pool and farm after duplicate absorption")
		}
	}
}

// TestFarmSweepKeylessDedupe covers the inline path: cells without a store
// key dedupe by index, so duplicates of keyless completions are discarded
// just the same.
func TestFarmSweepKeylessDedupe(t *testing.T) {
	base := sweepTestConfig()
	fsweep := NewFarmSweep(base, Urban, 1)
	results := 0
	fsweep.OnResult = func(*Result) { results++ }
	c := fsweep.Cells()[0]
	c.Key = "" // artefact travels inline: no content address to dedupe by
	data, err := fsweep.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := fsweep.Absorb(c, data); err != nil {
			t.Fatal(err)
		}
	}
	if results != 1 {
		t.Fatalf("keyless cell absorbed %d times, want 1", results)
	}
}
