package experiment

import (
	"fmt"
	"strings"

	"mlorass/internal/radio"
)

// ADRMode is one column of the ADR sweep: a MAC configuration applied on
// top of the base scenario.
type ADRMode int

// ADR sweep modes, in figure order.
const (
	// ADRModeFixed is the paper's baseline: fixed SF, instant acks
	// (Config.MAC zero-valued).
	ADRModeFixed ADRMode = iota + 1
	// ADRModeADR enables the network-server ADR loop over unconfirmed
	// traffic.
	ADRModeADR
	// ADRModeConfirmed enables ADR plus confirmed uplinks with downlink
	// acks and retransmission backoff.
	ADRModeConfirmed
)

// String names the mode as a table column header.
func (m ADRMode) String() string {
	switch m {
	case ADRModeFixed:
		return "fixed-SF"
	case ADRModeADR:
		return "ADR"
	case ADRModeConfirmed:
		return "ADR+confirmed"
	default:
		return fmt.Sprintf("ADRMode(%d)", int(m))
	}
}

// apply returns the MACConfig this mode runs under. The adaptive modes join
// devices at SF12 — the robust rate a real LoRaWAN device starts from — so
// the sweep measures how far the ADR loop climbs back toward the paper's
// fixed-SF7 operating point under mobility.
func (m ADRMode) apply() MACConfig {
	switch m {
	case ADRModeADR:
		return MACConfig{ADR: true, InitialSF: radio.SF12}
	case ADRModeConfirmed:
		return MACConfig{ADR: true, Confirmed: true, InitialSF: radio.SF12}
	default:
		return MACConfig{}
	}
}

// ADRModes lists the sweep's MAC configurations in column order.
func ADRModes() []ADRMode { return []ADRMode{ADRModeFixed, ADRModeADR, ADRModeConfirmed} }

// ADRPoint is one (mode, gateway-count) cell of the ADR sweep.
type ADRPoint struct {
	Environment Environment
	Mode        ADRMode
	Gateways    int
	Result      *Result
}

// ADRSweep runs the adaptive-data-rate figure: every MAC mode × gateway
// count for the given environment on the shared worker pool (values < 1
// mean GOMAXPROCS). The paper fixes SF7 because "ADR degrades under
// mobility" — this sweep measures exactly that claim in the reproduction,
// plus what confirmed traffic's downlink load costs on the shared channel.
func ADRSweep(base Config, env Environment, workers int, progress func(string)) ([]ADRPoint, error) {
	var points []ADRPoint
	for _, gw := range GatewaySweep() {
		for _, mode := range ADRModes() {
			points = append(points, ADRPoint{Environment: env, Mode: mode, Gateways: gw})
		}
	}
	i, err := runPool(len(points), workers,
		func(i int) (*Result, error) {
			cfg := base
			cfg.Environment = env
			cfg.D2DRangeM = 0 // re-derive from environment
			cfg.NumGateways = points[i].Gateways
			cfg.MAC = points[i].Mode.apply()
			return Run(cfg)
		},
		func(i int, res *Result) {
			points[i].Result = res
			if progress != nil {
				progress(fmt.Sprintf("%-13s %s", points[i].Mode, res))
			}
		})
	if err != nil {
		return nil, fmt.Errorf("adr sweep %v/%v/gw=%d: %w",
			env, points[i].Mode, points[i].Gateways, err)
	}
	return points, nil
}

// ADRTable renders the ADR sweep: delivery ratio, mean uplink SF, and the
// confirmed-path costs (retransmissions, downlink budget drops) per mode as
// gateway density grows. Each cell reads "deliv% @ meanSF"; the confirmed
// column appends "retx" counts so the downlink tax is visible in the same
// artefact.
func ADRTable(points []ADRPoint) string {
	type key struct {
		gw   int
		mode ADRMode
	}
	byKey := map[key]*Result{}
	gwSet := map[int]bool{}
	var env Environment
	for _, p := range points {
		byKey[key{p.Gateways, p.Mode}] = p.Result
		gwSet[p.Gateways] = true
		env = p.Environment
	}
	var b strings.Builder
	fmt.Fprintf(&b, "ADR: delivery %%, mean uplink SF, and retransmissions vs gateway density — %s environment\n", env)
	fmt.Fprintf(&b, "%-18s", "gateways (paper)")
	for _, m := range ADRModes() {
		fmt.Fprintf(&b, " | %22s", m)
	}
	b.WriteByte('\n')
	for _, g := range GatewaySweep() {
		if !gwSet[g] {
			continue
		}
		fmt.Fprintf(&b, "%3d (%3d)         ", g, PaperEquivalentGateways(g))
		for _, m := range ADRModes() {
			r := byKey[key{g, m}]
			if r == nil {
				fmt.Fprintf(&b, " | %22s", "-")
				continue
			}
			sf := "  n/a" // SF distribution unavailable: telemetry off
			if r.Telemetry.SF.Total() > 0 {
				sf = fmt.Sprintf("%5.2f", r.Telemetry.SF.MeanSF())
			}
			cell := fmt.Sprintf("%5.1f%% @SF%s", 100*r.DeliveryRatio(), sf)
			if m == ADRModeConfirmed {
				cell = fmt.Sprintf("%s %4d retx", cell, r.Retransmissions)
			}
			fmt.Fprintf(&b, " | %22s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
