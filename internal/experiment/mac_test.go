package experiment

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"mlorass/internal/radio"
)

// macTestConfig is a small-but-dense scenario for MAC behaviour tests.
func macTestConfig() Config {
	cfg := QuickConfig()
	cfg.Duration = 2 * time.Hour
	return cfg
}

func TestMACConfigZeroValueOff(t *testing.T) {
	var m MACConfig
	if m.Enabled() {
		t.Fatal("zero MACConfig reports enabled")
	}
	cfg := macTestConfig()
	cfg.Normalize()
	if cfg.MAC != (MACConfig{}) {
		t.Fatalf("Normalize mutated a zero MAC config: %+v", cfg.MAC)
	}
	// An enabled config gets its defaults filled.
	cfg.MAC.ADR = true
	cfg.Normalize()
	if cfg.MAC.ADRMarginDB != 10 || cfg.MAC.ADRHistory != 20 ||
		cfg.MAC.RX1Delay != time.Second || cfg.MAC.RX2Delay != 2*time.Second ||
		cfg.MAC.DownlinkDutyCycle != 0.1 || cfg.MAC.AckRetryMax != 8 {
		t.Fatalf("enabled MAC defaults not filled: %+v", cfg.MAC)
	}
	// The downlink power default resolves to the device power at
	// Normalize time, so the echoed config shows what the run used.
	if cfg.MAC.DownlinkTxPowerDBm != cfg.TxPowerDBm {
		t.Fatalf("downlink power %v not resolved to device power %v",
			cfg.MAC.DownlinkTxPowerDBm, cfg.TxPowerDBm)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMACConfigValidate(t *testing.T) {
	bad := []func(*MACConfig){
		func(m *MACConfig) { m.ADRMarginDB = -1 },
		func(m *MACConfig) { m.ADRHistory = -2 },
		func(m *MACConfig) { m.ADRMinHistory = 99 },
		func(m *MACConfig) { m.RX2Delay = m.RX1Delay },
		func(m *MACConfig) { m.DownlinkDutyCycle = 1.5 },
		func(m *MACConfig) { m.AckRetryMax = -1 },
		func(m *MACConfig) { m.InitialSF = 99 },
	}
	for i, mutate := range bad {
		cfg := macTestConfig()
		cfg.MAC.Confirmed = true
		cfg.Normalize()
		mutate(&cfg.MAC)
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad MAC config %d validated", i)
		}
	}
}

// TestZeroMACHasNoMACTraffic: the zero-valued MAC config must not produce a
// single downlink, retransmission, or ADR command — the structural half of
// the zero-value-off invariant (the byte-identity half is the golden tests).
func TestZeroMACHasNoMACTraffic(t *testing.T) {
	res, err := Run(macTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Downlinks != 0 || res.DownlinkDeliveries != 0 || res.DownlinkDrops != 0 ||
		res.AckTimeouts != 0 || res.Retransmissions != 0 ||
		res.ADRCommands != 0 || res.ADRApplied != 0 {
		t.Fatalf("zero-MAC run produced MAC traffic: %+v", res)
	}
	// Every uplink frame sits on the configured SF.
	if n := res.Telemetry.SF.Total(); n != res.Telemetry.Counters.FramesOnAir {
		t.Fatalf("SF histogram counted %d frames, %d on air", n, res.Telemetry.Counters.FramesOnAir)
	}
	if got := res.Telemetry.SF.MeanSF(); got != float64(res.Config.SF) {
		t.Fatalf("mean SF %v, want the configured SF%d", got, int(res.Config.SF))
	}
}

// TestZeroValueMACByteIdentity is the acceptance-criterion test: a config
// whose MAC field is explicitly zeroed renders the exact golden bytes
// captured before the MAC subsystem existed (same files the plain golden
// tests lock, asserted here under an explicit MAC zero value so the
// invariant survives even if future defaults change).
func TestZeroValueMACByteIdentity(t *testing.T) {
	var rep string
	for _, scheme := range Schemes() {
		cfg := QuickConfig()
		cfg.Seed = 1
		cfg.Scheme = scheme
		cfg.MAC = MACConfig{}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep += res.Report()
	}
	goldenCompare(t, "report_quick_seed1.golden", rep)
}

// TestConfirmedTrafficBehaviour exercises the confirmed-downlink path: acks
// flow, some are lost (timeouts, retransmissions, duplicates at the server),
// and the run stays deterministic.
func TestConfirmedTrafficBehaviour(t *testing.T) {
	cfg := macTestConfig()
	cfg.MAC.Confirmed = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Downlinks == 0 {
		t.Fatal("confirmed run produced no downlinks")
	}
	if res.DownlinkDeliveries == 0 || res.DownlinkDeliveries > res.Downlinks {
		t.Fatalf("downlink deliveries %d of %d on air", res.DownlinkDeliveries, res.Downlinks)
	}
	// Every ack timeout must have triggered a retransmission or exhausted
	// the budget; retransmissions never exceed timeouts.
	if res.Retransmissions > res.AckTimeouts {
		t.Fatalf("%d retransmissions from %d timeouts", res.Retransmissions, res.AckTimeouts)
	}
	// Telemetry counters mirror the Result fields.
	c := res.Telemetry.Counters
	if c.Downlinks != res.Downlinks || c.DownlinkDeliveries != res.DownlinkDeliveries ||
		c.AckTimeouts != res.AckTimeouts || c.Retransmissions != res.Retransmissions ||
		c.DownlinkDrops != res.DownlinkDrops {
		t.Fatalf("telemetry counters diverge from result: %+v vs %+v", c, res)
	}
	if res.Delivered == 0 {
		t.Fatal("confirmed run delivered nothing")
	}
}

// TestADRAdaptsDataRates: devices joining at SF12 with a healthy gateway
// density must be commanded to faster rates, and the SF histogram must show
// uplinks across multiple spreading factors.
func TestADRAdaptsDataRates(t *testing.T) {
	cfg := macTestConfig()
	cfg.MAC.ADR = true
	cfg.MAC.InitialSF = radio.SF12
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ADRCommands == 0 || res.ADRApplied == 0 {
		t.Fatalf("ADR issued %d commands, %d applied — no adaptation", res.ADRCommands, res.ADRApplied)
	}
	if res.ADRApplied > res.ADRCommands {
		t.Fatalf("%d applied > %d issued", res.ADRApplied, res.ADRCommands)
	}
	mean := res.Telemetry.SF.MeanSF()
	if mean >= 12 || mean < 7 {
		t.Fatalf("mean uplink SF %v: no climb from SF12 toward SF7", mean)
	}
	if res.Telemetry.SF[0] == 0 {
		t.Fatal("no uplink ever reached SF7 despite ADR")
	}
	if res.Telemetry.SF[5] == 0 {
		t.Fatal("no uplink at the SF12 join rate — InitialSF ignored")
	}
}

// TestADRHighDutyFreshestDownlinkWins: at a generous uplink duty cycle an
// unconfirmed device can uplink again before its previous ADR downlink
// lands, replacing it; the replaced downlink's resolution event must no-op
// rather than resolve the replacement before its own end (regression: the
// stale event used to consume the fresh transmission early).
func TestADRHighDutyFreshestDownlinkWins(t *testing.T) {
	cfg := macTestConfig()
	cfg.DutyCycle = 0.5
	cfg.MsgInterval = 30 * time.Second
	cfg.MAC.ADR = true
	cfg.MAC.InitialSF = radio.SF12
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Downlinks == 0 {
		t.Fatal("scenario produced no downlinks — regression surface not exercised")
	}
	if a.DownlinkDeliveries > a.Downlinks {
		t.Fatalf("%d deliveries from %d downlinks", a.DownlinkDeliveries, a.Downlinks)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() != b.Report() {
		t.Fatal("high-duty ADR run not deterministic")
	}
}

// TestADRCommandsCounterConsistency: the telemetry snapshot's ADRCommands is
// reconciled from the network server's MAC (regression: it used to stay 0).
func TestADRCommandsCounterConsistency(t *testing.T) {
	cfg := macTestConfig()
	cfg.MAC.ADR = true
	cfg.MAC.InitialSF = radio.SF12
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ADRCommands == 0 {
		t.Fatal("no commands issued — consistency check vacuous")
	}
	if got := res.Telemetry.Counters.ADRCommands; got != res.ADRCommands {
		t.Fatalf("telemetry ADRCommands %d != result %d", got, res.ADRCommands)
	}
	if got := res.Telemetry.Counters.ADRApplied; got != res.ADRApplied {
		t.Fatalf("telemetry ADRApplied %d != result %d", got, res.ADRApplied)
	}
}

// TestADRMonotoneMarginEffect: raising the installation margin (less
// aggressive adaptation) must not speed the network up — the sim-level echo
// of the mac package's monotonicity property.
func TestADRMonotoneMarginEffect(t *testing.T) {
	mean := func(margin float64) float64 {
		cfg := macTestConfig()
		cfg.MAC.ADR = true
		cfg.MAC.InitialSF = radio.SF12
		cfg.MAC.ADRMarginDB = margin
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Telemetry.SF.MeanSF()
	}
	aggressive, conservative := mean(5), mean(20)
	if conservative < aggressive {
		t.Fatalf("margin 20 dB yielded faster mean SF (%v) than 5 dB (%v)", conservative, aggressive)
	}
}

// TestMACDeterminism: identical MAC configs and seeds reproduce identical
// reports; different seeds differ.
func TestMACDeterminism(t *testing.T) {
	cfg := macTestConfig()
	cfg.MAC.ADR = true
	cfg.MAC.Confirmed = true
	cfg.MAC.InitialSF = radio.SF12
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() != b.Report() {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a.Report(), b.Report())
	}
	cfg.Seed = 99
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() == c.Report() {
		t.Fatal("different seeds produced identical MAC runs")
	}
}

// adrGoldenConfig is the scenario the ADRTable goldens lock: the small sweep
// world so two full mode × gateway grids stay test-suite fast.
func adrGoldenConfig(seed uint64) Config {
	cfg := sweepTestConfig()
	cfg.Seed = seed
	return cfg
}

// TestGoldenADRTable locks the new figure's bytes under two seeds: the
// determinism lock for the ADR subsystem, exactly like the Fig 8/9/12/13 and
// outage-table goldens.
func TestGoldenADRTable(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			points, err := ADRSweep(adrGoldenConfig(seed), Urban, 1, nil)
			if err != nil {
				t.Fatal(err)
			}
			goldenCompare(t, fmt.Sprintf("adr_table_small_seed%d.golden", seed), ADRTable(points))
		})
	}
}

// TestADRSweepParallelMatchesSerial: the ADR sweep through the worker pool
// is order-independent.
func TestADRSweepParallelMatchesSerial(t *testing.T) {
	base := adrGoldenConfig(1)
	serial, err := ADRSweep(base, Urban, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	parallel, err := ADRSweep(base, Urban, 4, func(s string) { lines = append(lines, s) })
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != len(parallel) {
		t.Fatalf("progress reported %d of %d cells", len(lines), len(parallel))
	}
	if got, want := ADRTable(parallel), ADRTable(serial); got != want {
		t.Fatalf("parallel ADR table differs:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if !strings.Contains(ADRTable(serial), "fixed-SF") {
		t.Fatal("table lost its baseline column")
	}
}
