package experiment

import (
	"strings"
	"testing"
	"time"

	"mlorass/internal/gwplan"
	"mlorass/internal/routing"
)

// tinyScenario returns a fast non-bus scenario config.
func tinyScenario(model MobilityModel) Config {
	cfg := tinyConfig()
	cfg.Scheme = routing.SchemeROBC
	cfg.Mobility.Model = model
	cfg.Mobility.NumNodes = 40
	return cfg
}

func runScenario(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRandomWaypointScenarioRuns(t *testing.T) {
	res := runScenario(t, tinyScenario(MobilityRandomWaypoint))
	if res.ActiveDevices != 40 {
		t.Fatalf("active devices %d, want all 40 (random-waypoint vehicles never rest)", res.ActiveDevices)
	}
	if res.Generated == 0 || res.Delivered == 0 {
		t.Fatalf("random waypoint generated %d / delivered %d", res.Generated, res.Delivered)
	}
}

func TestSensorGridScenarioRuns(t *testing.T) {
	cfg := tinyScenario(MobilitySensorGrid)
	res := runScenario(t, cfg)
	if res.Generated == 0 || res.Delivered == 0 {
		t.Fatalf("sensor grid generated %d / delivered %d", res.Generated, res.Delivered)
	}
	// Duty-cycled sensors are awake OnWindow/Period of the time, so they
	// must generate far fewer messages than an always-on population would.
	slots := uint64(cfg.Duration / cfg.MsgInterval)
	alwaysOn := uint64(cfg.Mobility.NumNodes) * slots
	if res.Generated*2 > alwaysOn {
		t.Fatalf("duty-cycled sensors generated %d of an always-on %d", res.Generated, alwaysOn)
	}
}

// TestSensorGridForwardingHappens exercises the overhear candidate plumbing
// under the hardest scenario for it — duty-cycled sensors flickering across
// index rebuilds while churn triggers active-list compactions — and requires
// that device-to-device forwarding still occurs.
func TestSensorGridForwardingHappens(t *testing.T) {
	cfg := tinyScenario(MobilitySensorGrid)
	// 150 nodes on a 5 km square puts grid neighbours ~385 m apart, inside
	// the 500 m urban d2d range; fewer would leave every pair out of reach.
	cfg.Mobility.NumNodes = 150
	cfg.Mobility.OnWindow = 30 * time.Minute
	cfg.NumGateways = 1
	cfg.Disruption.DeviceChurnFraction = 0.6 // force compactions mid-run
	res := runScenario(t, cfg)
	if res.HandoverAttempts == 0 {
		t.Fatal("no handover attempts in a dense duty-cycled grid: asleep sensors likely dropped from the candidate pool")
	}
}

// TestCrossModelDeterminism verifies the bit-identical-Result guarantee for
// each new mobility model and for disruption-enabled runs: same seed, same
// Report, same channel counters.
func TestCrossModelDeterminism(t *testing.T) {
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"randomwaypoint", func() Config { return tinyScenario(MobilityRandomWaypoint) }},
		{"sensorgrid", func() Config { return tinyScenario(MobilitySensorGrid) }},
		{"disruption-buses", func() Config {
			cfg := tinyConfig()
			cfg.Scheme = routing.SchemeROBC
			cfg.Disruption.GatewayOutageFraction = 0.5
			cfg.Disruption.DeviceChurnFraction = 0.25
			return cfg
		}},
		{"disruption-randomwaypoint", func() Config {
			cfg := tinyScenario(MobilityRandomWaypoint)
			cfg.Disruption.GatewayOutageFraction = 0.4
			cfg.Disruption.DeviceChurnFraction = 0.2
			return cfg
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := runScenario(t, tc.cfg())
			b := runScenario(t, tc.cfg())
			if a.Report() != b.Report() {
				t.Fatalf("same seed, different reports:\n%s\nvs\n%s", a.Report(), b.Report())
			}
			if a.Medium.Transmissions != b.Medium.Transmissions ||
				a.Medium.Collisions != b.Medium.Collisions ||
				a.Generated != b.Generated || a.Delivered != b.Delivered {
				t.Fatalf("same seed, different counters: %+v vs %+v", a.Medium, b.Medium)
			}
		})
	}
}

func TestScenarioSeedSensitivity(t *testing.T) {
	for _, model := range []MobilityModel{MobilityRandomWaypoint, MobilitySensorGrid} {
		cfg := tinyScenario(model)
		a := runScenario(t, cfg)
		cfg.Seed = 99
		b := runScenario(t, cfg)
		if a.Generated == b.Generated && a.Delivered == b.Delivered && a.Delay.Mean() == b.Delay.Mean() {
			t.Errorf("%v: different seeds produced identical results", model)
		}
	}
}

func TestGatewayOutagesReduceDelivery(t *testing.T) {
	base := tinyConfig()
	healthy := runScenario(t, base)

	cfg := tinyConfig()
	cfg.Disruption.GatewayOutageFraction = 1
	cfg.Disruption.OutageDuration = cfg.Duration // every gateway down all run
	down := runScenario(t, cfg)
	if down.GatewayOutageWindows != cfg.NumGateways {
		t.Fatalf("outage windows %d, want one per gateway (%d)", down.GatewayOutageWindows, cfg.NumGateways)
	}
	if down.Delivered != 0 {
		t.Fatalf("delivered %d with every gateway down all run", down.Delivered)
	}
	if healthy.Delivered == 0 {
		t.Fatal("healthy baseline delivered nothing")
	}
}

func TestDeviceChurnKillsDevices(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scheme = routing.SchemeROBC
	cfg.Disruption.DeviceChurnFraction = 0.5
	res := runScenario(t, cfg)
	if res.DeviceFailures == 0 {
		t.Fatal("no device failures scheduled at 50% churn")
	}
	baseline := runScenario(t, tinyConfig())
	if res.Generated >= baseline.Generated {
		t.Fatalf("churned run generated %d >= healthy %d", res.Generated, baseline.Generated)
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad model", func(c *Config) { c.Mobility.Model = 99 }},
		{"route-aware with rwp", func(c *Config) {
			c.Mobility.Model = MobilityRandomWaypoint
			c.GatewayStrategy = gwplan.RouteAware
		}},
		{"dataset with sensor grid", func(c *Config) {
			c.Mobility.Model = MobilitySensorGrid
			c.Dataset = lineDataset()
		}},
		{"outage fraction above 1", func(c *Config) { c.Disruption.GatewayOutageFraction = 1.5 }},
		{"negative churn", func(c *Config) { c.Disruption.DeviceChurnFraction = -0.1 }},
	}
	for _, tc := range cases {
		cfg := tinyConfig()
		tc.mut(&cfg)
		cfg.Normalize()
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestParseMobilityModel(t *testing.T) {
	for in, want := range map[string]MobilityModel{
		"":               MobilityBuses,
		"buses":          MobilityBuses,
		"randomwaypoint": MobilityRandomWaypoint,
		"rwp":            MobilityRandomWaypoint,
		"sensorgrid":     MobilitySensorGrid,
	} {
		got, err := ParseMobilityModel(in)
		if err != nil || got != want {
			t.Errorf("ParseMobilityModel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseMobilityModel("teleport"); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestMobilityNormalizeDefaults(t *testing.T) {
	cfg := tinyConfig()
	cfg.Mobility.Model = MobilityRandomWaypoint
	cfg.Normalize()
	if cfg.Mobility.NumNodes == 0 || cfg.Mobility.SpeedMaxMPS == 0 || cfg.Mobility.Period == 0 {
		t.Fatalf("mobility defaults not filled: %+v", cfg.Mobility)
	}
	// The bus model must not grow spurious knobs: zero stays zero.
	bus := tinyConfig()
	bus.Normalize()
	if bus.Mobility != (MobilityConfig{}) {
		t.Fatalf("bus mobility config mutated by Normalize: %+v", bus.Mobility)
	}
}

// TestOutageSweepAndTable runs the resilience sweep at tiny scale and checks
// the table renders every fraction row with delivery falling as outages grow.
func TestOutageSweepAndTable(t *testing.T) {
	base := tinyConfig()
	base.Duration = time.Hour
	base.Disruption.OutageDuration = time.Hour // downed gateways stay down
	points, err := OutageSweep(base, Urban, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(OutageFractions())*len(Schemes()) {
		t.Fatalf("sweep returned %d points", len(points))
	}
	byFrac := map[float64]int{}
	for _, p := range points {
		if p.Result == nil {
			t.Fatalf("missing result for %v down=%.1f", p.Scheme, p.Fraction)
		}
		if p.Scheme == routing.SchemeNoRouting {
			byFrac[p.Fraction] = p.Result.Delivered
		}
	}
	if byFrac[0.8] >= byFrac[0] {
		t.Errorf("delivery did not fall under outage: healthy %d vs 80%% down %d", byFrac[0], byFrac[0.8])
	}
	table := OutageTable(points)
	for _, want := range []string{"Outage resilience", "0%", "80%", "NoRouting", "ROBC"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
