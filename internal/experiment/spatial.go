package experiment

import (
	"math"
	"slices"
	"time"

	"mlorass/internal/geo"
)

// devIndex is a uniform-grid spatial index over active device positions.
//
// Device positions change continuously, so the index is rebuilt lazily every
// rebuildEvery of virtual time and queries widen their radius by the maximum
// distance a bus can travel in that window. Queries therefore over-approximate
// the candidate set; callers verify exact distances against live positions.
// This turns the per-transmission neighbourhood scan from O(active devices)
// into O(nearby devices), which is what makes paper-scale fleet densities
// affordable.
//
// The grid is a flat dense arena over the bounding box of occupied cells:
// one []int32 backing array holds every indexed device id grouped by cell
// (cellStart[c]..cellStart[c+1] delimits cell c's group), rebuilt by a
// counting sort. A second arena precomputes each cell's *neighbourhood* —
// the ascending id list of every device within nbSpan cells — by appending
// ids in ascending order during the rebuild, so the common query (radius
// close to the cell size, the simulator's device-to-device range) returns a
// precomputed ascending list with no per-query sort or merge. Queries whose
// widened radius exceeds the precomputed span fall back to
// concatenate-and-sort over the covered cell groups. Every buffer is reused
// across refreshes: steady-state rebuilds and queries allocate nothing.
type devIndex struct {
	cellM        float64
	rebuildEvery time.Duration
	maxSpeedMPS  float64

	// nbSpan is the neighbourhood half-width in cells: it covers a query
	// of radius cellM (the nominal query radius — the simulator uses
	// cellM = the device-to-device range) plus the maximum drift slack a
	// query can accumulate before the next rebuild.
	nbSpan int

	builtAt time.Duration
	valid   bool

	// Dense-grid arena, rebuilt by refresh.
	minCX, minCY int
	cols, rows   int
	cellStart    []int32 // len cols*rows+1: group offsets into ids
	ids          []int32 // indexed device ids, grouped by cell

	// Neighbourhood arena: nbStart[c]..nbStart[c+1] delimits cell c's
	// precomputed ascending candidate list in nbIDs. nbPosX/nbPosY carry
	// each member's build-time position (float32 — posEpsilonM absorbs
	// the rounding), so a query filters the neighbourhood down to the
	// exact widened-radius circle: tighter than any cell box, with a few
	// flops per member and no per-query sort or merge.
	nbStart []int32
	nbIDs   []int32
	nbPosX  []float32
	nbPosY  []float32
	// posEps is this rebuild's circle-filter widening: posEpsilonM plus
	// the worst-case float32 rounding of the stored positions.
	posEps float64

	// Rebuild scratch, reused across refreshes.
	entries []devEntry // indexed ids and their cells, ascending by id
	cursors []int32    // per-cell write cursor for the placement passes

	scratch []int
}

// devEntry is one indexed device during a rebuild.
type devEntry struct {
	id     int32
	cx, cy int32
	px, py float32 // build-time position
}

// posEpsilonM is the floor of the circle pre-filter's over-widening; the
// rebuild adds a term proportional to the largest coordinate magnitude so
// the float32 rounding of stored build positions (ulp = |x|·2⁻²³) is always
// covered: candidates are only ever added by the widening, never lost.
const posEpsilonM = 0.05

// newDevIndex sizes the grid by the largest query radius.
func newDevIndex(cellM float64, rebuildEvery time.Duration, maxSpeedMPS float64) *devIndex {
	if cellM <= 0 {
		cellM = 1000
	}
	maxSlack := maxSpeedMPS * rebuildEvery.Seconds()
	return &devIndex{
		cellM:        cellM,
		rebuildEvery: rebuildEvery,
		maxSpeedMPS:  maxSpeedMPS,
		nbSpan:       int(math.Ceil((cellM + maxSlack) / cellM)),
	}
}

func (ix *devIndex) cellOf(p geo.Point) [2]int {
	return [2]int{int(p.X / ix.cellM), int(p.Y / ix.cellM)}
}

// stale reports whether refresh would rebuild at the given instant. Callers
// on the hot path check it before assembling the position source.
func (ix *devIndex) stale(now time.Duration) bool {
	return !ix.valid || now-ix.builtAt >= ix.rebuildEvery
}

// refresh rebuilds the index when stale. positions must yield the live
// position of each listed device (ok=false entries are skipped). The caller
// usually lists ids in ascending order (the simulator's active list); any
// other order costs one extra sort pass per rebuild.
//
//mlorass:hotpath
func (ix *devIndex) refresh(now time.Duration, ids []int, pos func(id int) (geo.Point, bool)) {
	if !ix.stale(now) {
		return
	}
	// Pass 1: collect (id, cell) for every positioned device and the
	// occupied-cell bounding box.
	ix.entries = ix.entries[:0]
	minCX, minCY := 1<<30, 1<<30
	maxCX, maxCY := -(1 << 30), -(1 << 30)
	maxAbs := 0.0
	ascending := true
	prev := int32(-1 << 31)
	for _, id := range ids {
		p, ok := pos(id)
		if !ok {
			continue
		}
		if a := math.Abs(p.X); a > maxAbs {
			maxAbs = a
		}
		if a := math.Abs(p.Y); a > maxAbs {
			maxAbs = a
		}
		c := ix.cellOf(p)
		if c[0] < minCX {
			minCX = c[0]
		}
		if c[0] > maxCX {
			maxCX = c[0]
		}
		if c[1] < minCY {
			minCY = c[1]
		}
		if c[1] > maxCY {
			maxCY = c[1]
		}
		if int32(id) < prev {
			ascending = false
		}
		prev = int32(id)
		ix.entries = append(ix.entries, devEntry{
			id: int32(id), cx: int32(c[0]), cy: int32(c[1]),
			px: float32(p.X), py: float32(p.Y),
		})
	}
	ix.builtAt = now
	ix.valid = true
	// Per-coordinate float32 error ≤ |x|·2⁻²³ ≈ |x|·1.2e-7; the factor 4
	// covers both axes plus margin.
	ix.posEps = posEpsilonM + maxAbs*4e-7
	if len(ix.entries) == 0 {
		ix.cols, ix.rows = 0, 0
		ix.cellStart = ix.cellStart[:0]
		ix.ids = ix.ids[:0]
		ix.nbStart = ix.nbStart[:0]
		ix.nbIDs = ix.nbIDs[:0]
		ix.nbPosX = ix.nbPosX[:0]
		ix.nbPosY = ix.nbPosY[:0]
		return
	}
	if !ascending {
		//lint:ignore hotpathlint capture-free comparator on the cold path: the simulator's active list is already ascending
		slices.SortFunc(ix.entries, func(a, b devEntry) int { return int(a.id) - int(b.id) })
	}
	ix.minCX, ix.minCY = minCX, minCY
	ix.cols = maxCX - minCX + 1
	ix.rows = maxCY - minCY + 1

	// Counting sort. Pass 2: per-cell counts and prefix sums.
	nCells := ix.cols * ix.rows
	ix.cellStart = resize(ix.cellStart, nCells+1)
	ix.cursors = resize(ix.cursors, nCells+1)
	for i := range ix.entries {
		e := &ix.entries[i]
		flat := (int(e.cy)-minCY)*ix.cols + (int(e.cx) - minCX)
		e.cx = int32(flat) // reuse the slot for the flat cell
		ix.cellStart[flat+1]++
	}
	for c := 1; c <= nCells; c++ {
		ix.cellStart[c] += ix.cellStart[c-1]
	}
	// Pass 3: stable placement — entries are ascending by id, so every
	// cell's group comes out ascending.
	copy(ix.cursors, ix.cellStart)
	n := len(ix.entries)
	if cap(ix.ids) < n {
		//lint:ignore hotpathlint amortized growth to the run's high-water device count; steady state reuses
		ix.ids = make([]int32, n)
	} else {
		ix.ids = ix.ids[:n]
	}
	for i := range ix.entries {
		e := &ix.entries[i]
		ix.ids[ix.cursors[e.cx]] = e.id
		ix.cursors[e.cx]++
	}

	// Passes 4–5: neighbourhood lists. Count each entry into every cell
	// within nbSpan, prefix-sum, then place — again in ascending id
	// order, so each neighbourhood is ascending with no sort.
	span := ix.nbSpan
	ix.nbStart = resize(ix.nbStart, nCells+1)
	for i := range ix.entries {
		e := &ix.entries[i]
		cx, cy := int(e.cx)%ix.cols, int(e.cx)/ix.cols
		x0, x1 := max(cx-span, 0), min(cx+span, ix.cols-1)
		y0, y1 := max(cy-span, 0), min(cy+span, ix.rows-1)
		for y := y0; y <= y1; y++ {
			row := y * ix.cols
			for x := x0; x <= x1; x++ {
				ix.nbStart[row+x+1]++
			}
		}
	}
	for c := 1; c <= nCells; c++ {
		ix.nbStart[c] += ix.nbStart[c-1]
	}
	total := int(ix.nbStart[nCells])
	if cap(ix.nbIDs) < total {
		//lint:ignore hotpathlint amortized growth to the neighbourhood high-water mark; steady state reuses
		ix.nbIDs = make([]int32, total)
		//lint:ignore hotpathlint amortized growth to the neighbourhood high-water mark; steady state reuses
		ix.nbPosX = make([]float32, total)
		//lint:ignore hotpathlint amortized growth to the neighbourhood high-water mark; steady state reuses
		ix.nbPosY = make([]float32, total)
	} else {
		ix.nbIDs = ix.nbIDs[:total]
		ix.nbPosX = ix.nbPosX[:total]
		ix.nbPosY = ix.nbPosY[:total]
	}
	copy(ix.cursors, ix.nbStart)
	for i := range ix.entries {
		e := &ix.entries[i]
		cx, cy := int(e.cx)%ix.cols, int(e.cx)/ix.cols
		x0, x1 := max(cx-span, 0), min(cx+span, ix.cols-1)
		y0, y1 := max(cy-span, 0), min(cy+span, ix.rows-1)
		for y := y0; y <= y1; y++ {
			row := y * ix.cols
			for x := x0; x <= x1; x++ {
				cur := ix.cursors[row+x]
				ix.nbIDs[cur] = e.id
				ix.nbPosX[cur] = e.px
				ix.nbPosY[cur] = e.py
				ix.cursors[row+x] = cur + 1
			}
		}
	}
}

// candidates returns device ids possibly within radius of p at query time,
// in ascending id order for deterministic iteration. The result is a
// superset of the devices within the radius (callers filter by exact
// distance); the fast path serves it straight from the precomputed
// neighbourhood arena. The result slice is reused across calls; callers
// must not retain it.
//
//mlorass:hotpath
func (ix *devIndex) candidates(now time.Duration, p geo.Point, radius float64) []int {
	ix.scratch = ix.scratch[:0]
	if ix.cols == 0 {
		return ix.scratch
	}
	slack := ix.maxSpeedMPS * (now - ix.builtAt).Seconds()
	r := radius + slack
	lo := ix.cellOf(geo.Point{X: p.X - r, Y: p.Y - r})
	hi := ix.cellOf(geo.Point{X: p.X + r, Y: p.Y + r})
	c := ix.cellOf(p)
	cx, cy := c[0]-ix.minCX, c[1]-ix.minCY
	if cx >= 0 && cx < ix.cols && cy >= 0 && cy < ix.rows &&
		lo[0] >= c[0]-ix.nbSpan && lo[1] >= c[1]-ix.nbSpan &&
		hi[0] <= c[0]+ix.nbSpan && hi[1] <= c[1]+ix.nbSpan {
		// Filter the precomputed neighbourhood down to the widened
		// circle around p by build-time position: any device within
		// radius of p now was within radius+slack of p at build time,
		// so the circle keeps every true candidate while discarding
		// the cell-quantisation fringe a box filter would pass. The
		// result stays ascending (a subsequence of an ascending list).
		r2 := (r + ix.posEps) * (r + ix.posEps)
		flat := cy*ix.cols + cx
		s, e := ix.nbStart[flat], ix.nbStart[flat+1]
		xs, ys, ids := ix.nbPosX[s:e], ix.nbPosY[s:e], ix.nbIDs[s:e]
		for i := range xs {
			dx := p.X - float64(xs[i])
			dy := p.Y - float64(ys[i])
			if dx*dx+dy*dy > r2 {
				continue
			}
			ix.scratch = append(ix.scratch, int(ids[i]))
		}
		return ix.scratch
	}
	return ix.candidatesSlow(lo, hi)
}

// candidatesSlow serves queries outside the precomputed neighbourhood span
// (wider radius, or a centre cell outside the occupied bounding box):
// concatenate every covered cell group, then sort.
//
//mlorass:hotpath
func (ix *devIndex) candidatesSlow(lo, hi [2]int) []int {
	if lo[0] < ix.minCX {
		lo[0] = ix.minCX
	}
	if lo[1] < ix.minCY {
		lo[1] = ix.minCY
	}
	if hi[0] > ix.minCX+ix.cols-1 {
		hi[0] = ix.minCX + ix.cols - 1
	}
	if hi[1] > ix.minCY+ix.rows-1 {
		hi[1] = ix.minCY + ix.rows - 1
	}
	for cy := lo[1]; cy <= hi[1]; cy++ {
		rowBase := (cy - ix.minCY) * ix.cols
		for cx := lo[0]; cx <= hi[0]; cx++ {
			cell := rowBase + cx - ix.minCX
			for _, id := range ix.ids[ix.cellStart[cell]:ix.cellStart[cell+1]] {
				ix.scratch = append(ix.scratch, int(id))
			}
		}
	}
	slices.Sort(ix.scratch)
	return ix.scratch
}

// resize returns s with exactly n zeroed elements, reusing capacity.
func resize(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	clear(s)
	return s
}
