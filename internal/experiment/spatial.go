package experiment

import (
	"sort"
	"time"

	"mlorass/internal/geo"
)

// devIndex is a uniform-grid spatial index over active device positions.
//
// Device positions change continuously, so the index is rebuilt lazily every
// rebuildEvery of virtual time and queries widen their radius by the maximum
// distance a bus can travel in that window. Queries therefore over-approximate
// the candidate set; callers verify exact distances against live positions.
// This turns the per-transmission neighbourhood scan from O(active devices)
// into O(nearby devices), which is what makes paper-scale fleet densities
// affordable.
type devIndex struct {
	cellM        float64
	rebuildEvery time.Duration
	maxSpeedMPS  float64

	builtAt time.Duration
	valid   bool
	byCell  map[[2]int][]int

	scratch []int
}

// newDevIndex sizes the grid by the largest query radius.
func newDevIndex(cellM float64, rebuildEvery time.Duration, maxSpeedMPS float64) *devIndex {
	if cellM <= 0 {
		cellM = 1000
	}
	return &devIndex{
		cellM:        cellM,
		rebuildEvery: rebuildEvery,
		maxSpeedMPS:  maxSpeedMPS,
		byCell:       make(map[[2]int][]int),
	}
}

func (ix *devIndex) cellOf(p geo.Point) [2]int {
	return [2]int{int(p.X / ix.cellM), int(p.Y / ix.cellM)}
}

// refresh rebuilds the index when stale. positions must yield the live
// position of each listed device (ok=false entries are skipped).
func (ix *devIndex) refresh(now time.Duration, ids []int, pos func(id int) (geo.Point, bool)) {
	if ix.valid && now-ix.builtAt < ix.rebuildEvery {
		return
	}
	clear(ix.byCell)
	for _, id := range ids {
		p, ok := pos(id)
		if !ok {
			continue
		}
		c := ix.cellOf(p)
		ix.byCell[c] = append(ix.byCell[c], id)
	}
	ix.builtAt = now
	ix.valid = true
}

// candidates returns device ids possibly within radius of p at query time,
// sorted ascending for deterministic iteration. The result slice is reused
// across calls; callers must not retain it.
func (ix *devIndex) candidates(now time.Duration, p geo.Point, radius float64) []int {
	slack := ix.maxSpeedMPS * (now - ix.builtAt).Seconds()
	r := radius + slack
	lo := ix.cellOf(geo.Point{X: p.X - r, Y: p.Y - r})
	hi := ix.cellOf(geo.Point{X: p.X + r, Y: p.Y + r})
	ix.scratch = ix.scratch[:0]
	for cx := lo[0]; cx <= hi[0]; cx++ {
		for cy := lo[1]; cy <= hi[1]; cy++ {
			ix.scratch = append(ix.scratch, ix.byCell[[2]int{cx, cy}]...)
		}
	}
	sort.Ints(ix.scratch)
	return ix.scratch
}
