package experiment

import (
	"testing"
	"time"

	"mlorass/internal/gwplan"
	"mlorass/internal/lorawan"
	"mlorass/internal/routing"
)

// tinyConfig is a fast scenario for unit tests: a 2-hour horizon over a
// small dense town so every code path (contacts, disconnections, handovers,
// retries, collisions) is exercised in well under a second.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.AreaSideM = 5000
	cfg.NumRoutes = 8
	cfg.PeakHeadway = 15 * time.Minute
	cfg.NumGateways = 3
	cfg.Duration = 2 * time.Hour
	return cfg
}

func runTiny(t *testing.T, mut func(*Config)) *Result {
	t.Helper()
	cfg := tinyConfig()
	if mut != nil {
		mut(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunAllSchemes(t *testing.T) {
	for _, scheme := range Schemes() {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			res := runTiny(t, func(c *Config) { c.Scheme = scheme })
			if res.Generated == 0 {
				t.Fatal("no messages generated")
			}
			if res.Delivered == 0 {
				t.Fatal("no messages delivered")
			}
			if uint64(res.Delivered) > res.Generated {
				t.Fatalf("delivered %d > generated %d", res.Delivered, res.Generated)
			}
			if res.ActiveDevices == 0 {
				t.Fatal("no active devices")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	a := runTiny(t, func(c *Config) { c.Scheme = routing.SchemeROBC })
	b := runTiny(t, func(c *Config) { c.Scheme = routing.SchemeROBC })
	if a.Delivered != b.Delivered || a.Generated != b.Generated {
		t.Fatalf("same seed differs: %d/%d vs %d/%d", a.Delivered, a.Generated, b.Delivered, b.Generated)
	}
	if a.Delay.Mean() != b.Delay.Mean() {
		t.Fatalf("delay means differ: %v vs %v", a.Delay.Mean(), b.Delay.Mean())
	}
	if a.Medium.Transmissions != b.Medium.Transmissions {
		t.Fatalf("transmission counts differ")
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	a := runTiny(t, nil)
	b := runTiny(t, func(c *Config) { c.Seed = 2 })
	if a.Generated == b.Generated && a.Delivered == b.Delivered &&
		a.Delay.Mean() == b.Delay.Mean() {
		t.Fatal("different seeds produced identical results")
	}
}

func TestNoRoutingHopsAlwaysOne(t *testing.T) {
	res := runTiny(t, nil) // default scheme is NoRouting
	if res.Hops.Min() != 1 || res.Hops.Max() != 1 {
		t.Fatalf("NoRouting hops [%v, %v], want exactly 1 (Fig. 12)", res.Hops.Min(), res.Hops.Max())
	}
	if res.HandoverAttempts != 0 {
		t.Fatalf("NoRouting attempted %d handovers", res.HandoverAttempts)
	}
}

func TestForwardingSchemesProduceHandovers(t *testing.T) {
	for _, scheme := range []routing.Scheme{routing.SchemeRCAETX, routing.SchemeROBC} {
		res := runTiny(t, func(c *Config) { c.Scheme = scheme })
		if res.HandoverAttempts == 0 {
			t.Errorf("%v made no handover attempts in a dense scenario", scheme)
		}
		if res.Hops.Max() < 2 && res.HandoverSuccesses > 0 {
			t.Errorf("%v moved messages but max hops = %v", scheme, res.Hops.Max())
		}
	}
}

func TestDelayNonNegativeAndConsistent(t *testing.T) {
	res := runTiny(t, func(c *Config) { c.Scheme = routing.SchemeROBC })
	if res.Delay.Min() < 0 {
		t.Fatalf("negative delay %v", res.Delay.Min())
	}
	if res.Delay.N() != uint64(res.Delivered) {
		t.Fatalf("delay samples %d != delivered %d", res.Delay.N(), res.Delivered)
	}
	if res.DirectDelay.N()+res.RelayedDelay.N() != res.Delay.N() {
		t.Fatal("direct + relayed does not partition deliveries")
	}
}

func TestThroughputSeriesSumsToDelivered(t *testing.T) {
	res := runTiny(t, func(c *Config) { c.Scheme = routing.SchemeROBC })
	if got := res.Throughput.Total(); got != res.Delivered {
		t.Fatalf("throughput series total %d != delivered %d", got, res.Delivered)
	}
}

func TestValidationRejectsBadConfigs(t *testing.T) {
	muts := []struct {
		name string
		mut  func(*Config)
	}{
		{"bad scheme", func(c *Config) { c.Scheme = 99 }},
		{"bad class", func(c *Config) { c.Class = 99 }},
		{"forwarding without overhearing class", func(c *Config) {
			c.Scheme = routing.SchemeROBC
			c.Class = lorawan.ClassA
		}},
		{"interval >= duration", func(c *Config) { c.MsgInterval = c.Duration }},
		{"bad strategy", func(c *Config) { c.GatewayStrategy = 99 }},
		{"negative alpha normalizes but 2 rejected", func(c *Config) { c.Alpha = 2 }},
		{"bad SF", func(c *Config) { c.SF = 42 }},
		{"duty > 1", func(c *Config) { c.DutyCycle = 1.5 }},
	}
	for _, tt := range muts {
		cfg := tinyConfig()
		tt.mut(&cfg)
		cfg.Normalize()
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", tt.name)
		}
	}
}

func TestNormalizeFillsDefaults(t *testing.T) {
	var cfg Config
	cfg.Normalize()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("normalized zero config invalid: %v", err)
	}
	def := DefaultConfig()
	if cfg.Scheme != def.Scheme || cfg.MsgInterval != def.MsgInterval || cfg.Alpha != def.Alpha {
		t.Fatal("defaults not applied")
	}
	if cfg.D2DRangeM != Urban.D2DRangeM() {
		t.Fatalf("D2D range = %v, want urban default", cfg.D2DRangeM)
	}
}

func TestEnvironmentRanges(t *testing.T) {
	if Urban.D2DRangeM() != 500 || Rural.D2DRangeM() != 1000 {
		t.Fatal("environment d2d ranges wrong (Sec. VII-A6)")
	}
	if Urban.String() != "urban" || Rural.String() != "rural" {
		t.Fatal("environment names wrong")
	}
}

func TestRuralReachesFartherNeighbours(t *testing.T) {
	urban := runTiny(t, func(c *Config) {
		c.Scheme = routing.SchemeROBC
		c.Environment = Urban
	})
	rural := runTiny(t, func(c *Config) {
		c.Scheme = routing.SchemeROBC
		c.Environment = Rural
		c.D2DRangeM = 0
	})
	// With double the d2d range, rural sees at least as many handover
	// opportunities.
	if rural.HandoverAttempts < urban.HandoverAttempts {
		t.Fatalf("rural handover attempts %d < urban %d", rural.HandoverAttempts, urban.HandoverAttempts)
	}
}

func TestQueueClassAUsesLessRadio(t *testing.T) {
	modC := runTiny(t, func(c *Config) { c.Scheme = routing.SchemeROBC })
	queueA := runTiny(t, func(c *Config) {
		c.Scheme = routing.SchemeROBC
		c.Class = lorawan.ClassQueueA
	})
	if queueA.RadioOnPerNode.Mean() >= modC.RadioOnPerNode.Mean() {
		t.Fatalf("Queue-based Class-A radio-on %.0fs not below Modified-C %.0fs (Sec. VII-C)",
			queueA.RadioOnPerNode.Mean(), modC.RadioOnPerNode.Mean())
	}
}

func TestRandomPlacementRuns(t *testing.T) {
	res := runTiny(t, func(c *Config) {
		c.GatewayStrategy = gwplan.Random
		c.Scheme = routing.SchemeROBC
	})
	if res.Delivered == 0 {
		t.Fatal("random placement delivered nothing")
	}
}

func TestCustomDataset(t *testing.T) {
	ds := lineDataset()
	res := runTiny(t, func(c *Config) {
		c.Dataset = ds
		c.NumGateways = 1
	})
	if res.ActiveDevices != len(ds.Trips) {
		t.Fatalf("active devices %d != trips %d", res.ActiveDevices, len(ds.Trips))
	}
	if res.Delivered == 0 {
		t.Fatal("no deliveries on the line dataset")
	}
}

func TestGatewayCountMonotonicity(t *testing.T) {
	// More gateways must not reduce NoRouting delivery substantially:
	// coverage only grows. Allow a small tolerance for collision noise.
	few := runTiny(t, func(c *Config) { c.NumGateways = 2 })
	many := runTiny(t, func(c *Config) { c.NumGateways = 12 })
	if float64(many.Delivered) < 0.9*float64(few.Delivered) {
		t.Fatalf("delivery dropped from %d to %d when adding gateways", few.Delivered, many.Delivered)
	}
}

func TestSweepHelpers(t *testing.T) {
	gws := GatewaySweep()
	if len(gws) < 5 {
		t.Fatalf("gateway sweep too small: %v", gws)
	}
	for i := 1; i < len(gws); i++ {
		if gws[i] <= gws[i-1] {
			t.Fatalf("gateway sweep not increasing: %v", gws)
		}
	}
	if PaperEquivalentGateways(gws[0]) != gws[0]*4 {
		t.Fatal("paper-equivalent scaling wrong")
	}
}

func TestFig7Data(t *testing.T) {
	active, hist, err := Fig7Data(1, 10, 20*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(active) != 24 {
		t.Fatalf("active bins = %d", len(active))
	}
	if hist.N() == 0 {
		t.Fatal("empty duration histogram")
	}
}

func TestTablesRender(t *testing.T) {
	cfg := tinyConfig()
	cfg.Duration = time.Hour
	var points []SweepPoint
	for _, scheme := range Schemes() {
		c := cfg
		c.Scheme = scheme
		c.NumGateways = 3
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		points = append(points, SweepPoint{Environment: Urban, Scheme: scheme, Gateways: 3, Result: res})
	}
	for _, table := range []string{
		Fig8Table(points), Fig9Table(points), Fig12Table(points), Fig13Table(points),
	} {
		if table == "" {
			t.Fatal("empty table")
		}
	}
	// All three scheme columns must appear.
	table := Fig8Table(points)
	for _, s := range Schemes() {
		if !containsStr(table, s.String()) {
			t.Fatalf("table missing column %v:\n%s", s, table)
		}
	}
}

func TestReportRenders(t *testing.T) {
	res := runTiny(t, func(c *Config) { c.Scheme = routing.SchemeROBC })
	rep := res.Report()
	for _, want := range []string{"delivered", "delay", "hops", "handovers"} {
		if !containsStr(rep, want) {
			t.Fatalf("report missing %q:\n%s", want, rep)
		}
	}
	if res.String() == "" {
		t.Fatal("empty one-line summary")
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && indexOf(haystack, needle) >= 0
}

func indexOf(haystack, needle string) int {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return i
		}
	}
	return -1
}

func TestRouteAwarePlacementEndToEnd(t *testing.T) {
	grid := runTiny(t, nil)
	aware := runTiny(t, func(c *Config) { c.GatewayStrategy = gwplan.RouteAware })
	if aware.Delivered == 0 {
		t.Fatal("route-aware placement delivered nothing")
	}
	// Gateways on the routes must not hurt delivery relative to a blind
	// grid in the same world.
	if float64(aware.Delivered) < 0.9*float64(grid.Delivered) {
		t.Fatalf("route-aware delivery %d well below grid %d", aware.Delivered, grid.Delivered)
	}
}
