package experiment

import (
	"strings"
	"testing"
	"time"

	"mlorass/internal/routing"
	"mlorass/internal/telemetry"
)

// telemetryTestConfig is a small-but-dense scenario with forwarding enabled
// so relay and dedup paths are exercised (the sparse sweepTestConfig world
// produces no handovers).
func telemetryTestConfig() Config {
	cfg := QuickConfig()
	cfg.Scheme = routing.SchemeROBC
	cfg.Duration = 2 * time.Hour
	return cfg
}

// TestTelemetrySnapshotConsistent cross-checks the streamed counters and
// histograms against the post-run ledger measurements they mirror.
func TestTelemetrySnapshotConsistent(t *testing.T) {
	res, err := Run(telemetryTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := res.Telemetry.Counters
	if c.Generated != res.Generated {
		t.Errorf("Generated counter %d != %d", c.Generated, res.Generated)
	}
	if c.ServerFresh != uint64(res.Delivered) {
		t.Errorf("ServerFresh counter %d != delivered %d", c.ServerFresh, res.Delivered)
	}
	if c.ServerDuplicates != res.Duplicates {
		t.Errorf("ServerDuplicates counter %d != %d", c.ServerDuplicates, res.Duplicates)
	}
	if c.RelayHops != res.HandoverMsgs {
		t.Errorf("RelayHops counter %d != handover msgs %d", c.RelayHops, res.HandoverMsgs)
	}
	if c.QueueDrops != res.QueueDrops {
		t.Errorf("QueueDrops counter %d != %d", c.QueueDrops, res.QueueDrops)
	}
	if c.FramesOnAir != res.Medium.Transmissions {
		t.Errorf("FramesOnAir counter %d != medium tx %d", c.FramesOnAir, res.Medium.Transmissions)
	}
	if got, want := res.Telemetry.Delay.N(), uint64(res.Delivered); got != want {
		t.Errorf("delay histogram holds %d samples, want %d", got, want)
	}
	if got, want := res.Telemetry.Airtime.N(), res.Medium.Transmissions; got != want {
		t.Errorf("airtime histogram holds %d samples, want %d", got, want)
	}
	// The histogram's exact-mean carry must agree with the ledger mean.
	if hm, lm := res.Telemetry.Delay.Mean(), res.Delay.Mean(); hm != 0 && !approxEqual(hm, lm, 1e-9) {
		t.Errorf("histogram mean %v != summary mean %v", hm, lm)
	}
	// Percentiles are ordered and bracketed by the observed range.
	p50, p95, p99 := res.Telemetry.Delay.Percentile(50), res.Telemetry.Delay.Percentile(95), res.Telemetry.Delay.Percentile(99)
	if !(p50 <= p95 && p95 <= p99) || p99 > res.Delay.Max() {
		t.Errorf("percentiles disordered: p50=%v p95=%v p99=%v max=%v", p50, p95, p99, res.Delay.Max())
	}
}

// TestTelemetryDisabled checks the benchmark escape hatch: disabling
// telemetry zeroes the snapshot and changes no measurement.
func TestTelemetryDisabled(t *testing.T) {
	cfg := telemetryTestConfig()
	on, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Telemetry.Disabled = true
	off, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if off.Telemetry.Delay.N() != 0 || off.Telemetry.Counters != (telemetry.Counters{}) {
		t.Fatal("disabled telemetry still recorded")
	}
	if off.Delivered != on.Delivered || off.Generated != on.Generated ||
		off.Delay != on.Delay || off.Hops != on.Hops {
		t.Fatal("telemetry switch changed simulation measurements")
	}
	if off.Report() != on.Report() {
		t.Fatal("telemetry switch changed Report output")
	}
}

// TestTraceEndToEnd runs a traced simulation and checks the per-packet
// record: every sampled delivered message has a coherent generate →
// (relays) → uplink → deliver chain with consistent timestamps and hops, and
// tracing changes no measurement.
func TestTraceEndToEnd(t *testing.T) {
	cfg := telemetryTestConfig()
	base, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sink := &telemetry.MemSink{}
	cfg.Telemetry.Trace = telemetry.NewTracer(sink, 1)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != base.Delivered || res.Delay != base.Delay {
		t.Fatal("tracing changed simulation measurements")
	}
	events := sink.Events()
	if uint64(len(events)) != res.Telemetry.Counters.TraceEvents {
		t.Fatalf("sink holds %d events, counter says %d", len(events), res.Telemetry.Counters.TraceEvents)
	}

	byMsg := map[uint64][]telemetry.Event{}
	kinds := map[telemetry.EventKind]int{}
	for _, e := range events {
		byMsg[e.Msg] = append(byMsg[e.Msg], e)
		kinds[e.Kind]++
		if !strings.Contains(e.Run, "ROBC") || !strings.Contains(e.Run, "seed=1") {
			t.Fatalf("event run label %q missing context", e.Run)
		}
	}
	if kinds[telemetry.KindGenerate] != int(res.Generated) {
		t.Fatalf("%d generate events, want %d", kinds[telemetry.KindGenerate], res.Generated)
	}
	if kinds[telemetry.KindDeliver] != res.Delivered {
		t.Fatalf("%d deliver events, want %d", kinds[telemetry.KindDeliver], res.Delivered)
	}
	if kinds[telemetry.KindRelay] != int(res.HandoverMsgs) {
		t.Fatalf("%d relay events, want %d", kinds[telemetry.KindRelay], res.HandoverMsgs)
	}
	if kinds[telemetry.KindRelay] == 0 {
		t.Fatal("ROBC run produced no relay events; trace not exercising handovers")
	}

	delivered := 0
	for msg, evs := range byMsg {
		if evs[0].Kind != telemetry.KindGenerate {
			t.Fatalf("msg %d: first event %v, want generate", msg, evs[0].Kind)
		}
		last := time.Duration(-1)
		sawDeliver := false
		for _, e := range evs {
			if e.T < last {
				t.Fatalf("msg %d: timestamps regress", msg)
			}
			last = e.T
			if e.Kind == telemetry.KindDeliver {
				sawDeliver = true
				if e.DelayS <= 0 {
					t.Fatalf("msg %d: deliver with delay %v", msg, e.DelayS)
				}
			}
		}
		if sawDeliver {
			delivered++
		}
	}
	if delivered != res.Delivered {
		t.Fatalf("%d traced messages delivered, want %d", delivered, res.Delivered)
	}
	// Tracing wires the kernel probe: kernel event counts stream too.
	if res.Telemetry.Counters.KernelEvents == 0 {
		t.Fatal("kernel probe recorded no events during traced run")
	}
}

// TestTraceSampling checks that a sampled trace holds complete per-message
// records for the sampled subset only.
func TestTraceSampling(t *testing.T) {
	cfg := telemetryTestConfig()
	sink := &telemetry.MemSink{}
	tracer := telemetry.NewTracer(sink, 8)
	cfg.Telemetry.Trace = tracer
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := sink.Events()
	if len(events) == 0 {
		t.Fatal("1-in-8 sampling captured nothing")
	}
	gens := 0
	for _, e := range events {
		if !tracer.Sampled(e.Msg) {
			t.Fatalf("unsampled message %d leaked into trace", e.Msg)
		}
		if e.Kind == telemetry.KindGenerate {
			gens++
		}
	}
	if gens >= int(res.Generated) {
		t.Fatalf("sampling did not thin the trace: %d/%d generates", gens, res.Generated)
	}
}

// TestFig8PercentilesAggTable renders the percentile table from a replicated
// aggregate and checks pooled-histogram semantics.
func TestFig8PercentilesAggTable(t *testing.T) {
	cfg := telemetryTestConfig()
	var reps []*Result
	var pooled telemetry.Histogram
	for rep := 0; rep < 2; rep++ {
		c := cfg
		c.Seed = RepSeed(cfg.Seed, rep)
		res, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, res)
		pooled.Merge(&res.Telemetry.Delay)
	}
	agg := AggregateResults(reps)
	if agg.Telemetry.Delay.N() != pooled.N() {
		t.Fatalf("aggregate pooled %d samples, want %d", agg.Telemetry.Delay.N(), pooled.N())
	}
	p50, p95, p99 := agg.DelayPercentiles()
	if p50 != pooled.Percentile(50) || p95 != pooled.Percentile(95) || p99 != pooled.Percentile(99) {
		t.Fatal("aggregate percentiles differ from pooled histogram")
	}
	table := Fig8PercentilesAggTable([]AggregatePoint{{
		Environment: cfg.Environment, Scheme: cfg.Scheme, Gateways: cfg.NumGateways, Agg: agg,
	}})
	if !strings.Contains(table, "p50/p95/p99") || !strings.Contains(table, "ROBC") {
		t.Fatalf("percentile table malformed:\n%s", table)
	}
}

func approxEqual(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
