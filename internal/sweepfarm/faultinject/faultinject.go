// Package faultinject is the sweep farm's deterministic fault harness: a
// scripted (or seeded-random) schedule of worker crashes, worker stalls,
// message loss/duplication/delay, and torn artefact writes, injected
// through the farm's Hooks, Transport and ArtifactStore seams. Schedules
// are deterministic — rules fire on the Nth occurrence of a (worker,
// checkpoint) or (worker, op) stream, and random schedules derive from a
// seed — so a failing schedule replays exactly. The farm's contract, proven
// by the tests that drive this package: every schedule converges to the
// same artefact bytes and the same merged tables as a fault-free serial
// run.
package faultinject

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mlorass/internal/rng"
	"mlorass/internal/sweepfarm"
)

// Op names a worker→coordinator message type for message-fault rules.
type Op uint8

const (
	OpClaim Op = iota
	OpHeartbeat
	OpComplete
)

// String names the op.
func (o Op) String() string {
	switch o {
	case OpClaim:
		return "claim"
	case OpHeartbeat:
		return "heartbeat"
	case OpComplete:
		return "complete"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// MsgFault is what happens to a matched message.
type MsgFault uint8

const (
	// DropRequest loses the message before the coordinator sees it.
	DropRequest MsgFault = iota
	// DropReply delivers the message but loses the acknowledgement — the
	// sender cannot tell this from DropRequest, which is the whole
	// at-least-once problem.
	DropReply
	// Duplicate delivers the message twice.
	Duplicate
	// Delay holds the message for Rule.For before delivering it.
	Delay
)

// String names the fault.
func (f MsgFault) String() string {
	switch f {
	case DropRequest:
		return "drop-request"
	case DropReply:
		return "drop-reply"
	case Duplicate:
		return "duplicate"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("MsgFault(%d)", uint8(f))
	}
}

// crashRule kills a worker at a checkpoint (or stalls it there).
type crashRule struct {
	worker string // "" = any worker
	phase  sweepfarm.Phase
	nth    int // 1-based occurrence in the (worker, phase) stream
	stall  time.Duration
}

// msgRule faults a message.
type msgRule struct {
	op     Op
	worker string
	nth    int
	fault  MsgFault
	delay  time.Duration
}

// tearRule tears an artefact write: the Nth store Put (optionally of one
// key) persists only a prefix of its bytes while reporting success — a
// crashed non-atomic writer.
type tearRule struct {
	key  string // "" = any key
	nth  int    // 1-based occurrence in the (key-filtered) Put stream
	keep float64
}

// wireKind classifies a wire-level fault (see WrapDial). Wire rules count
// global event streams across every connection the wrapped dialler opened:
// dials for refusals, request-frame writes for tears and stalls, reply
// reads for resets. The wire client writes each request as exactly one
// Write call, which is what makes "the nth request frame" well defined.
type wireKind uint8

const (
	wireRefuse wireKind = iota // nth dial: connection refused
	wireTear                   // nth request write: half the frame lands, conn dies
	wireReset                  // nth reply: conn reset before a byte of it arrives
	wireStall                  // nth request write: held for d first
)

// wireRule faults a wire event.
type wireRule struct {
	kind wireKind
	nth  int // 1-based; <= 0 matches every occurrence
	d    time.Duration
}

// Stats counts the faults a schedule actually fired, so tests can assert
// the scripted scenario happened rather than silently not matching.
type Stats struct {
	Crashes, Stalls, DroppedRequests, DroppedReplies, Duplicated, Delayed, TornWrites int
	// Wire-level counters (see WrapDial).
	WireRefusals, TornFrames, ResetReplies, WireStalls int
}

// Injector holds a fault schedule and implements the farm's injection
// seams: Hooks (crashes/stalls), a Transport wrapper (message faults) and
// an ArtifactStore wrapper (torn writes). Safe for concurrent use.
type Injector struct {
	mu      sync.Mutex
	clock   sweepfarm.Clock
	crashes []crashRule
	msgs    []msgRule
	tears   []tearRule
	wires   []wireRule
	counts  map[string]int
	stats   Stats
}

// New returns an empty schedule; delays and stalls wait on clock (nil =
// wall clock).
func New(clock sweepfarm.Clock) *Injector {
	if clock == nil {
		clock = sweepfarm.Wall()
	}
	return &Injector{clock: clock, counts: map[string]int{}}
}

// Crash schedules worker's nth arrival at phase to kill it ("" = any
// worker, counted as one stream).
func (in *Injector) Crash(worker string, phase sweepfarm.Phase, nth int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashes = append(in.crashes, crashRule{worker: worker, phase: phase, nth: nth})
	return in
}

// Stall schedules worker's nth arrival at phase to hang for d before
// continuing — the slow-worker fault (set d past the lease TTL to force an
// expiry while the worker still lives).
func (in *Injector) Stall(worker string, phase sweepfarm.Phase, nth int, d time.Duration) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.crashes = append(in.crashes, crashRule{worker: worker, phase: phase, nth: nth, stall: d})
	return in
}

// Message schedules a fault on worker's nth op message ("" = any worker).
// nth <= 0 matches every occurrence — a standing fault (e.g. "drop every
// heartbeat from w2": a live worker whose keepalives never arrive, the
// partitioned-worker shape). For Delay faults, d is the hold time.
func (in *Injector) Message(op Op, worker string, nth int, fault MsgFault, d time.Duration) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.msgs = append(in.msgs, msgRule{op: op, worker: worker, nth: nth, fault: fault, delay: d})
	return in
}

// TearWrite schedules the nth artefact Put (of key, or any key when "")
// to persist only the keep fraction of its bytes while reporting success.
func (in *Injector) TearWrite(key string, nth int, keep float64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.tears = append(in.tears, tearRule{key: key, nth: nth, keep: keep})
	return in
}

// WireRefuseConnect schedules the nth dial through WrapDial to be refused
// (nth <= 0: every dial — a coordinator that is simply gone).
func (in *Injector) WireRefuseConnect(nth int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.wires = append(in.wires, wireRule{kind: wireRefuse, nth: nth})
	return in
}

// WireTearFrame schedules the nth request frame to be torn: half its bytes
// reach the peer, then the connection dies. The receiver sees a torn
// payload; the sender sees a write error.
func (in *Injector) WireTearFrame(nth int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.wires = append(in.wires, wireRule{kind: wireTear, nth: nth})
	return in
}

// WireResetReply schedules the nth reply to be reset: the request was
// delivered whole and processed, but the connection dies before a byte of
// the answer arrives — the wire-level DropReply, and the classic
// duplicate-completion producer over TCP.
func (in *Injector) WireResetReply(nth int) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.wires = append(in.wires, wireRule{kind: wireReset, nth: nth})
	return in
}

// WireStall schedules the nth request frame to be held for d before being
// written — a frozen link. With d past the caller's exchange deadline the
// call times out and maps to ErrLost.
func (in *Injector) WireStall(nth int, d time.Duration) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.wires = append(in.wires, wireRule{kind: wireStall, nth: nth, d: d})
	return in
}

// Stats returns the fired-fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// errInjectedCrash is the hook error that downs a worker.
var errInjectedCrash = errors.New("faultinject: scripted crash")

// Phase implements sweepfarm.Hooks.
func (in *Injector) Phase(worker string, p sweepfarm.Phase, c sweepfarm.Cell) error {
	var stall time.Duration
	in.mu.Lock()
	crash := false
	for i, r := range in.crashes {
		if r.phase != p || (r.worker != "" && r.worker != worker) {
			continue
		}
		// Each rule keeps its own occurrence counter over the stream of
		// matching arrivals, so "nth" means "the nth time this worker
		// reaches this phase".
		k := fmt.Sprintf("phase/%s/%d/%d", r.worker, p, i)
		in.counts[k]++
		if in.counts[k] != r.nth {
			continue
		}
		if r.stall > 0 {
			stall = r.stall
			in.stats.Stalls++
		} else {
			crash = true
			in.stats.Crashes++
		}
	}
	clock := in.clock
	in.mu.Unlock()
	if stall > 0 {
		<-clock.After(stall)
	}
	if crash {
		return errInjectedCrash
	}
	return nil
}

// Hooks returns the injector as the farm's crash/stall hook.
func (in *Injector) Hooks() sweepfarm.Hooks { return in }

// WrapTransport wraps t with the schedule's message faults.
func (in *Injector) WrapTransport(t sweepfarm.Transport) sweepfarm.Transport {
	return &faultyTransport{in: in, inner: t}
}

// WrapStore wraps s with the schedule's torn writes.
func (in *Injector) WrapStore(s sweepfarm.ArtifactStore) sweepfarm.ArtifactStore {
	return &tearingStore{in: in, ArtifactStore: s}
}

// decide matches one message against the schedule; at most one rule fires
// per message (the first match in schedule order).
func (in *Injector) decide(op Op, worker string) (fault MsgFault, d time.Duration, fired bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, r := range in.msgs {
		if r.op != op || (r.worker != "" && r.worker != worker) {
			continue
		}
		k := fmt.Sprintf("msg/%d/%s/%d", op, r.worker, i)
		in.counts[k]++
		if r.nth > 0 && in.counts[k] != r.nth {
			continue
		}
		switch r.fault {
		case DropRequest:
			in.stats.DroppedRequests++
		case DropReply:
			in.stats.DroppedReplies++
		case Duplicate:
			in.stats.Duplicated++
		case Delay:
			in.stats.Delayed++
		}
		return r.fault, r.delay, true
	}
	return 0, 0, false
}

// decideWire matches one wire event against the schedule; at most one rule
// fires per event. classes lists the rule kinds this event can trigger
// (request writes can tear or stall; dials can only be refused).
func (in *Injector) decideWire(classes ...wireKind) (wireRule, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for i, r := range in.wires {
		match := false
		for _, c := range classes {
			if r.kind == c {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		k := fmt.Sprintf("wire/%d/%d", r.kind, i)
		in.counts[k]++
		if r.nth > 0 && in.counts[k] != r.nth {
			continue
		}
		switch r.kind {
		case wireRefuse:
			in.stats.WireRefusals++
		case wireTear:
			in.stats.TornFrames++
		case wireReset:
			in.stats.ResetReplies++
		case wireStall:
			in.stats.WireStalls++
		}
		return r, true
	}
	return wireRule{}, false
}

// WrapDial wraps dial with the schedule's wire faults: refused connects,
// torn request frames, resets mid-reply, and stalled writes. The returned
// dialler is the seam a wire client's ClientConfig.Dial plugs into; every
// connection it opens is wrapped.
func (in *Injector) WrapDial(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		if _, fired := in.decideWire(wireRefuse); fired {
			return nil, fmt.Errorf("faultinject: dial %s: connection refused (scripted)", addr)
		}
		conn, err := dial(addr)
		if err != nil {
			return nil, err
		}
		return &faultConn{Conn: conn, in: in}, nil
	}
}

// faultConn injects wire faults on one connection. It relies on the wire
// codec's one-Write-per-frame invariant: each Write is one request event,
// and the first Read after a successful Write is the start of its reply.
type faultConn struct {
	net.Conn
	in *Injector

	mu           sync.Mutex
	pendingReply bool
}

func (c *faultConn) Write(p []byte) (int, error) {
	if r, fired := c.in.decideWire(wireTear, wireStall); fired {
		switch r.kind {
		case wireTear:
			n := len(p) / 2
			if n > 0 {
				_, _ = c.Conn.Write(p[:n])
			}
			c.Conn.Close()
			return n, fmt.Errorf("faultinject: torn frame after %d of %d bytes (scripted)", n, len(p))
		case wireStall:
			<-c.in.clock.After(r.d)
		}
	}
	n, err := c.Conn.Write(p)
	if err == nil {
		c.mu.Lock()
		c.pendingReply = true
		c.mu.Unlock()
	}
	return n, err
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	startsReply := c.pendingReply
	c.pendingReply = false
	c.mu.Unlock()
	if startsReply {
		if _, fired := c.in.decideWire(wireReset); fired {
			c.Conn.Close()
			return 0, fmt.Errorf("faultinject: connection reset mid-reply (scripted)")
		}
	}
	return c.Conn.Read(p)
}

// faultyTransport applies message faults around the inner transport.
type faultyTransport struct {
	in    *Injector
	inner sweepfarm.Transport
}

// apply runs one message through the schedule. call delivers the message
// to the inner transport; it is invoked zero (lost request), one, or two
// (duplicate) times.
func (t *faultyTransport) apply(op Op, worker string, call func() error) error {
	fault, d, fired := t.in.decide(op, worker)
	if !fired {
		return call()
	}
	switch fault {
	case DropRequest:
		return sweepfarm.ErrLost
	case DropReply:
		_ = call()
		return sweepfarm.ErrLost
	case Duplicate:
		_ = call()
		return call()
	case Delay:
		<-t.in.clock.After(d)
		return call()
	default:
		return call()
	}
}

func (t *faultyTransport) Claim(req sweepfarm.ClaimRequest) (rep sweepfarm.ClaimReply, err error) {
	err = t.apply(OpClaim, req.Worker, func() error {
		var e error
		rep, e = t.inner.Claim(req)
		return e
	})
	if err != nil {
		return sweepfarm.ClaimReply{}, err
	}
	return rep, nil
}

func (t *faultyTransport) Heartbeat(req sweepfarm.HeartbeatRequest) (rep sweepfarm.HeartbeatReply, err error) {
	err = t.apply(OpHeartbeat, req.Worker, func() error {
		var e error
		rep, e = t.inner.Heartbeat(req)
		return e
	})
	if err != nil {
		return sweepfarm.HeartbeatReply{}, err
	}
	return rep, nil
}

func (t *faultyTransport) Complete(req sweepfarm.CompleteRequest) (rep sweepfarm.CompleteReply, err error) {
	err = t.apply(OpComplete, req.Worker, func() error {
		var e error
		rep, e = t.inner.Complete(req)
		return e
	})
	if err != nil {
		return sweepfarm.CompleteReply{}, err
	}
	return rep, nil
}

// tearingStore tears scheduled Puts: a prefix of the bytes lands (through
// the inner store's atomic path, so the tear is visible, not hidden by the
// temp-file dance) and the writer is told it succeeded — the strongest
// corruption the verify layer must catch.
type tearingStore struct {
	in *Injector
	sweepfarm.ArtifactStore
}

func (s *tearingStore) Put(key string, data []byte) error {
	s.in.mu.Lock()
	var keep float64 = -1
	for i, r := range s.in.tears {
		if r.key != "" && r.key != key {
			continue
		}
		k := fmt.Sprintf("tear/%s/%d", r.key, i)
		s.in.counts[k]++
		if s.in.counts[k] != r.nth {
			continue
		}
		keep = r.keep
		s.in.stats.TornWrites++
		break
	}
	s.in.mu.Unlock()
	if keep < 0 {
		return s.ArtifactStore.Put(key, data)
	}
	n := int(float64(len(data)) * keep)
	if n >= len(data) {
		n = len(data) - 1
	}
	if n < 0 {
		n = 0
	}
	if err := s.ArtifactStore.Put(key, data[:n]); err != nil {
		return err
	}
	return nil // the writer believes the full write landed
}

// RandomConfig scales Random schedules.
type RandomConfig struct {
	// Workers is the farm's worker count (rules target them by id).
	Workers int
	// Crashes, MsgFaults, Tears are how many rules of each kind to draw.
	Crashes, MsgFaults, Tears int
	// MaxNth bounds each rule's occurrence index.
	MaxNth int
	// Delay is the hold time for delay faults.
	Delay time.Duration
}

// Random derives a schedule from seed: crashes spread over workers and
// phases, message faults over ops and fault kinds, and torn writes — the
// seed corpus generator for the convergence property tests. The same seed
// always builds the same schedule.
func Random(seed uint64, clock sweepfarm.Clock, cfg RandomConfig) *Injector {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.MaxNth <= 0 {
		cfg.MaxNth = 3
	}
	src := rng.New(seed)
	in := New(clock)
	phases := []sweepfarm.Phase{sweepfarm.PhasePreClaim, sweepfarm.PhaseMidCompute, sweepfarm.PhasePostWrite}
	for i := 0; i < cfg.Crashes; i++ {
		w := fmt.Sprintf("w%d", src.Uint64()%uint64(cfg.Workers))
		in.Crash(w, phases[src.Uint64()%3], int(src.Uint64()%uint64(cfg.MaxNth))+1)
	}
	ops := []Op{OpClaim, OpHeartbeat, OpComplete}
	faults := []MsgFault{DropRequest, DropReply, Duplicate, Delay}
	for i := 0; i < cfg.MsgFaults; i++ {
		w := fmt.Sprintf("w%d", src.Uint64()%uint64(cfg.Workers))
		in.Message(ops[src.Uint64()%3], w, int(src.Uint64()%uint64(cfg.MaxNth))+1,
			faults[src.Uint64()%4], cfg.Delay)
	}
	for i := 0; i < cfg.Tears; i++ {
		in.TearWrite("", int(src.Uint64()%uint64(cfg.MaxNth))+1, src.Float64())
	}
	return in
}
