package faultinject

import (
	"strings"
	"testing"
	"time"

	"mlorass/internal/sweepfarm"
)

// fakeTransport records deliveries so tests can count how many times a
// faulted message actually reached the coordinator side.
type fakeTransport struct {
	claims, beats, completes int
}

func (t *fakeTransport) Claim(sweepfarm.ClaimRequest) (sweepfarm.ClaimReply, error) {
	t.claims++
	return sweepfarm.ClaimReply{OK: true}, nil
}

func (t *fakeTransport) Heartbeat(sweepfarm.HeartbeatRequest) (sweepfarm.HeartbeatReply, error) {
	t.beats++
	return sweepfarm.HeartbeatReply{OK: true}, nil
}

func (t *fakeTransport) Complete(sweepfarm.CompleteRequest) (sweepfarm.CompleteReply, error) {
	t.completes++
	return sweepfarm.CompleteReply{Accepted: true}, nil
}

// memStore is a minimal in-memory ArtifactStore for tear tests.
type memStore map[string][]byte

func (s memStore) Put(key string, data []byte) error {
	s[key] = append([]byte(nil), data...)
	return nil
}

func (s memStore) Get(key string) ([]byte, bool, error) {
	d, ok := s[key]
	return d, ok, nil
}

func (s memStore) Claim(key, owner string) (bool, error) { return true, nil }
func (s memStore) Release(key string) error              { return nil }
func (s memStore) ClaimInfo(key string) (string, time.Time, bool, error) {
	return "", time.Time{}, false, nil
}
func (s memStore) BreakClaim(key, owner string, since time.Time) (bool, error) {
	return false, nil
}

func TestCrashFiresOnNthArrival(t *testing.T) {
	in := New(nil).Crash("w0", sweepfarm.PhaseMidCompute, 2)
	h := in.Hooks()
	cell := sweepfarm.Cell{Index: 0}
	if err := h.Phase("w0", sweepfarm.PhaseMidCompute, cell); err != nil {
		t.Fatalf("first arrival crashed: %v", err)
	}
	if err := h.Phase("w1", sweepfarm.PhaseMidCompute, cell); err != nil {
		t.Fatalf("other worker crashed: %v", err)
	}
	if err := h.Phase("w0", sweepfarm.PhasePreClaim, cell); err != nil {
		t.Fatalf("other phase crashed: %v", err)
	}
	if err := h.Phase("w0", sweepfarm.PhaseMidCompute, cell); err == nil {
		t.Fatal("second arrival did not crash")
	}
	if err := h.Phase("w0", sweepfarm.PhaseMidCompute, cell); err != nil {
		t.Fatalf("rule refired on third arrival: %v", err)
	}
	if st := in.Stats(); st.Crashes != 1 {
		t.Fatalf("Crashes = %d, want 1", st.Crashes)
	}
}

func TestStallWaitsOnClock(t *testing.T) {
	clock := sweepfarm.NewFakeClock(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	in := New(clock).Stall("", sweepfarm.PhasePostWrite, 1, time.Minute)
	done := make(chan error, 1)
	go func() { done <- in.Hooks().Phase("w0", sweepfarm.PhasePostWrite, sweepfarm.Cell{}) }()
	select {
	case <-done:
		t.Fatal("stall returned before the clock advanced")
	case <-time.After(20 * time.Millisecond):
	}
	clock.Advance(time.Minute)
	if err := <-done; err != nil {
		t.Fatalf("stall turned into a crash: %v", err)
	}
	if st := in.Stats(); st.Stalls != 1 {
		t.Fatalf("Stalls = %d, want 1", st.Stalls)
	}
}

func TestMessageFaults(t *testing.T) {
	inner := &fakeTransport{}
	in := New(nil).
		Message(OpClaim, "w0", 1, DropRequest, 0).
		Message(OpHeartbeat, "", 1, DropReply, 0).
		Message(OpComplete, "w0", 1, Duplicate, 0).
		Message(OpComplete, "w0", 2, Delay, time.Millisecond)
	tr := in.WrapTransport(inner)

	// Dropped request: sender sees ErrLost, coordinator never sees it.
	if _, err := tr.Claim(sweepfarm.ClaimRequest{Worker: "w0"}); err != sweepfarm.ErrLost {
		t.Fatalf("dropped claim returned %v, want ErrLost", err)
	}
	if inner.claims != 0 {
		t.Fatalf("dropped claim was delivered %d times", inner.claims)
	}
	// Rule consumed: the next claim goes through.
	if _, err := tr.Claim(sweepfarm.ClaimRequest{Worker: "w0"}); err != nil || inner.claims != 1 {
		t.Fatalf("second claim: err=%v delivered=%d", err, inner.claims)
	}

	// Dropped reply: delivered exactly once, but the sender sees ErrLost —
	// indistinguishable from a dropped request, which is the point.
	if _, err := tr.Heartbeat(sweepfarm.HeartbeatRequest{Worker: "w9"}); err != sweepfarm.ErrLost {
		t.Fatalf("dropped heartbeat reply returned %v, want ErrLost", err)
	}
	if inner.beats != 1 {
		t.Fatalf("drop-reply heartbeat delivered %d times, want 1", inner.beats)
	}

	// Duplicate: delivered twice for one send.
	if _, err := tr.Complete(sweepfarm.CompleteRequest{Worker: "w0"}); err != nil {
		t.Fatal(err)
	}
	if inner.completes != 2 {
		t.Fatalf("duplicated complete delivered %d times, want 2", inner.completes)
	}

	// At most one rule fires per message, so the send after the duplicate
	// passes through clean (the delay rule's occurrence counter only sees
	// messages earlier rules did not consume)...
	if _, err := tr.Complete(sweepfarm.CompleteRequest{Worker: "w0"}); err != nil {
		t.Fatal(err)
	}
	if inner.completes != 3 {
		t.Fatalf("post-duplicate complete delivered %d times total, want 3", inner.completes)
	}
	// ...and the one after that is its 2nd occurrence: delivered after the
	// hold, once.
	if _, err := tr.Complete(sweepfarm.CompleteRequest{Worker: "w0"}); err != nil {
		t.Fatal(err)
	}
	if inner.completes != 4 {
		t.Fatalf("delayed complete delivered %d times total, want 4", inner.completes)
	}

	st := in.Stats()
	if st.DroppedRequests != 1 || st.DroppedReplies != 1 || st.Duplicated != 1 || st.Delayed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTearWriteKeepsPrefixAndLies(t *testing.T) {
	store := memStore{}
	in := New(nil).TearWrite("k1", 1, 0.5)
	s := in.WrapStore(store)
	data := []byte("0123456789")
	if err := s.Put("other", data); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := store.Get("other"); len(got) != len(data) {
		t.Fatalf("unmatched key torn: %d bytes", len(got))
	}
	if err := s.Put("k1", data); err != nil {
		t.Fatalf("torn write must report success, got %v", err)
	}
	if got, _, _ := store.Get("k1"); len(got) != 5 || string(got) != "01234" {
		t.Fatalf("torn artefact = %q, want the 5-byte prefix", got)
	}
	// Rule consumed: the healing rewrite lands whole.
	if err := s.Put("k1", data); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := store.Get("k1"); string(got) != string(data) {
		t.Fatalf("rewrite torn again: %q", got)
	}
	if st := in.Stats(); st.TornWrites != 1 {
		t.Fatalf("TornWrites = %d, want 1", st.TornWrites)
	}
}

func TestTearWriteNeverKeepsEverything(t *testing.T) {
	store := memStore{}
	s := New(nil).TearWrite("", 1, 1.0).WrapStore(store)
	if err := s.Put("k", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := store.Get("k"); len(got) >= 3 {
		t.Fatalf("keep=1.0 persisted %d of 3 bytes; a tear must lose something", len(got))
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	cfg := RandomConfig{Workers: 3, Crashes: 2, MsgFaults: 3, Tears: 1, MaxNth: 2, Delay: time.Millisecond}
	a, b := Random(42, nil, cfg), Random(42, nil, cfg)
	if len(a.crashes) != len(b.crashes) || len(a.msgs) != len(b.msgs) || len(a.tears) != len(b.tears) {
		t.Fatal("same seed built different schedule sizes")
	}
	for i := range a.crashes {
		if a.crashes[i] != b.crashes[i] {
			t.Fatalf("crash rule %d differs: %+v vs %+v", i, a.crashes[i], b.crashes[i])
		}
	}
	for i := range a.msgs {
		if a.msgs[i] != b.msgs[i] {
			t.Fatalf("msg rule %d differs: %+v vs %+v", i, a.msgs[i], b.msgs[i])
		}
	}
	c := Random(43, nil, cfg)
	same := len(a.crashes) == len(c.crashes) && len(a.msgs) == len(c.msgs)
	if same {
		diff := false
		for i := range a.crashes {
			if a.crashes[i] != c.crashes[i] {
				diff = true
			}
		}
		for i := range a.msgs {
			if a.msgs[i] != c.msgs[i] {
				diff = true
			}
		}
		if !diff {
			t.Fatal("different seeds built identical schedules")
		}
	}
}

func TestStringNames(t *testing.T) {
	for _, tc := range []struct {
		got, want string
	}{
		{OpClaim.String(), "claim"},
		{OpHeartbeat.String(), "heartbeat"},
		{OpComplete.String(), "complete"},
		{Op(9).String(), "Op(9)"},
		{DropRequest.String(), "drop-request"},
		{DropReply.String(), "drop-reply"},
		{Duplicate.String(), "duplicate"},
		{Delay.String(), "delay"},
		{MsgFault(9).String(), "MsgFault(9)"},
	} {
		if tc.got != tc.want {
			t.Errorf("String() = %q, want %q", tc.got, tc.want)
		}
	}
	if !strings.Contains(errInjectedCrash.Error(), "scripted crash") {
		t.Fatalf("crash error = %q", errInjectedCrash)
	}
}
