package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mlorass/internal/sweepfarm"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// roundTrip seals msg, frames it, reads it back and opens it into out.
func roundTrip(t *testing.T, kind Kind, msg, out any) {
	t.Helper()
	env, err := seal(kind, msg)
	if err != nil {
		t.Fatalf("seal %s: %v", kind, err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env, 0); err != nil {
		t.Fatalf("write %s: %v", kind, err)
	}
	got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatalf("read %s: %v", kind, err)
	}
	if err := open(got, kind, out); err != nil {
		t.Fatalf("open %s: %v", kind, err)
	}
}

func TestCodecRoundTripsEveryMessage(t *testing.T) {
	cell := sweepfarm.Cell{Index: 7, Key: strings.Repeat("ab", 32), Label: "urban/sf7"}

	var cr sweepfarm.ClaimRequest
	roundTrip(t, KindClaimRequest, sweepfarm.ClaimRequest{Worker: "w1"}, &cr)
	if cr.Worker != "w1" {
		t.Fatalf("ClaimRequest = %+v", cr)
	}

	var crep sweepfarm.ClaimReply
	roundTrip(t, KindClaimReply,
		sweepfarm.ClaimReply{OK: true, Cell: cell, LeaseID: 99, TTL: 30 * time.Second}, &crep)
	if !crep.OK || crep.LeaseID != 99 || crep.TTL != 30*time.Second || crep.Cell != cell {
		t.Fatalf("ClaimReply = %+v", crep)
	}

	var hr sweepfarm.HeartbeatRequest
	roundTrip(t, KindHeartbeatRequest,
		sweepfarm.HeartbeatRequest{Worker: "w1", LeaseID: 99, SentAt: t0}, &hr)
	if hr.LeaseID != 99 || !hr.SentAt.Equal(t0) {
		t.Fatalf("HeartbeatRequest = %+v", hr)
	}

	var hrep sweepfarm.HeartbeatReply
	roundTrip(t, KindHeartbeatReply, sweepfarm.HeartbeatReply{OK: true}, &hrep)
	if !hrep.OK {
		t.Fatalf("HeartbeatReply = %+v", hrep)
	}

	var co sweepfarm.CompleteRequest
	roundTrip(t, KindCompleteRequest, sweepfarm.CompleteRequest{
		Worker: "w1", LeaseID: 99, Cell: cell,
		Artifact: []byte{0x00, 0x01, 0xfe}, Cached: true, Failed: "boom"}, &co)
	if co.Cell != cell || !bytes.Equal(co.Artifact, []byte{0x00, 0x01, 0xfe}) || !co.Cached || co.Failed != "boom" {
		t.Fatalf("CompleteRequest = %+v", co)
	}

	var corep sweepfarm.CompleteReply
	roundTrip(t, KindCompleteReply, sweepfarm.CompleteReply{Accepted: true}, &corep)
	if !corep.Accepted {
		t.Fatalf("CompleteReply = %+v", corep)
	}
}

// frame hand-builds a length-prefixed frame around payload.
func frame(payload []byte) []byte {
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	return buf
}

func validFrame(t *testing.T) []byte {
	t.Helper()
	env, err := seal(KindClaimRequest, sweepfarm.ClaimRequest{Worker: "w1"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env, 0); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestReadFrameRejectsHostileInput(t *testing.T) {
	valid := validFrame(t)
	huge := make([]byte, 4)
	binary.BigEndian.PutUint32(huge, uint32(DefaultMaxFrame)+1)
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty stream", nil, io.EOF},
		{"torn length prefix", valid[:2], ErrBadFrame},
		{"torn payload", valid[:len(valid)-3], ErrBadFrame},
		{"zero length", frame(nil), ErrBadFrame},
		{"oversized length", huge, ErrFrameTooBig},
		{"not json", frame([]byte("not-json")), ErrBadFrame},
		{"wrong version", frame([]byte(`{"v":2,"kind":"claim","body":{}}`)), ErrBadFrame},
		{"unknown kind", frame([]byte(`{"v":1,"kind":"gossip","body":{}}`)), ErrBadFrame},
	}
	for _, c := range cases {
		_, err := ReadFrame(bytes.NewReader(c.in), 0)
		if !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
	// And the valid frame still reads, so the cases above fail for the
	// reasons they claim.
	if _, err := ReadFrame(bytes.NewReader(valid), 0); err != nil {
		t.Fatalf("valid frame: %v", err)
	}
}

func TestWriteFrameRefusesOversizedMessage(t *testing.T) {
	env, err := seal(KindCompleteRequest, sweepfarm.CompleteRequest{
		Worker: "w1", Artifact: bytes.Repeat([]byte{1}, 1024)})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, env, 64); !errors.Is(err, ErrFrameTooBig) {
		t.Fatalf("err = %v, want ErrFrameTooBig", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("refused frame still wrote %d bytes", buf.Len())
	}
}

// scriptTransport answers with canned replies and records requests.
type scriptTransport struct {
	mu         sync.Mutex
	claims     []sweepfarm.ClaimRequest
	claimRep   sweepfarm.ClaimReply
	claimErr   error
	heartbeats []sweepfarm.HeartbeatRequest
	completes  []sweepfarm.CompleteRequest
}

func (s *scriptTransport) Claim(req sweepfarm.ClaimRequest) (sweepfarm.ClaimReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.claims = append(s.claims, req)
	return s.claimRep, s.claimErr
}

func (s *scriptTransport) Heartbeat(req sweepfarm.HeartbeatRequest) (sweepfarm.HeartbeatReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.heartbeats = append(s.heartbeats, req)
	return sweepfarm.HeartbeatReply{OK: true}, nil
}

func (s *scriptTransport) Complete(req sweepfarm.CompleteRequest) (sweepfarm.CompleteReply, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.completes = append(s.completes, req)
	return sweepfarm.CompleteReply{Accepted: true}, nil
}

// serve starts a Server around tr on a loopback listener and returns its
// address plus the server (closed via t.Cleanup).
func serve(t *testing.T, tr sweepfarm.Transport) (string, *Server) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(tr, ServerConfig{Logf: t.Logf})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve: %v", err)
		}
	})
	return ln.Addr().String(), srv
}

func TestClientServerRoundTrip(t *testing.T) {
	cell := sweepfarm.Cell{Index: 3, Key: strings.Repeat("cd", 32), Label: "rural/sf9"}
	tr := &scriptTransport{claimRep: sweepfarm.ClaimReply{
		OK: true, Cell: cell, LeaseID: 17, TTL: 45 * time.Second}}
	addr, _ := serve(t, tr)
	c := NewClient(ClientConfig{Addr: addr})
	defer c.Close()

	rep, err := c.Claim(sweepfarm.ClaimRequest{Worker: "w2"})
	if err != nil {
		t.Fatalf("Claim: %v", err)
	}
	if !rep.OK || rep.LeaseID != 17 || rep.Cell != cell || rep.TTL != 45*time.Second {
		t.Fatalf("ClaimReply = %+v", rep)
	}
	if hrep, err := c.Heartbeat(sweepfarm.HeartbeatRequest{Worker: "w2", LeaseID: 17, SentAt: t0}); err != nil || !hrep.OK {
		t.Fatalf("Heartbeat: %+v, %v", hrep, err)
	}
	if crep, err := c.Complete(sweepfarm.CompleteRequest{Worker: "w2", LeaseID: 17, Cell: cell}); err != nil || !crep.Accepted {
		t.Fatalf("Complete: %+v, %v", crep, err)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if len(tr.claims) != 1 || tr.claims[0].Worker != "w2" {
		t.Fatalf("server saw claims %+v", tr.claims)
	}
	if len(tr.heartbeats) != 1 || !tr.heartbeats[0].SentAt.Equal(t0) {
		t.Fatalf("server saw heartbeats %+v", tr.heartbeats)
	}
	if len(tr.completes) != 1 || tr.completes[0].Cell != cell {
		t.Fatalf("server saw completes %+v", tr.completes)
	}
}

// TestClientSurfacesCoordinatorRejection pins the ErrLost boundary: a
// decoded error reply is a definitive rejection, not a lost message.
func TestClientSurfacesCoordinatorRejection(t *testing.T) {
	tr := &scriptTransport{claimErr: errors.New("sweep finished yesterday")}
	addr, _ := serve(t, tr)
	c := NewClient(ClientConfig{Addr: addr})
	defer c.Close()

	_, err := c.Claim(sweepfarm.ClaimRequest{Worker: "w2"})
	if err == nil || errors.Is(err, sweepfarm.ErrLost) {
		t.Fatalf("err = %v, want a definitive non-ErrLost rejection", err)
	}
	if !strings.Contains(err.Error(), "sweep finished yesterday") {
		t.Fatalf("err = %v, want the coordinator's message carried over", err)
	}
}

func TestClientMapsConnectionFailuresToErrLost(t *testing.T) {
	// A refused dial: grab a port and close it again.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	c := NewClient(ClientConfig{Addr: addr, DialTimeout: 500 * time.Millisecond})
	if _, err := c.Claim(sweepfarm.ClaimRequest{Worker: "w2"}); !errors.Is(err, sweepfarm.ErrLost) {
		t.Fatalf("refused dial: err = %v, want ErrLost", err)
	}

	// A server that hangs up after reading the request: reply lost.
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	go func() {
		conn, err := ln2.Accept()
		if err != nil {
			return
		}
		ReadFrame(conn, 0)
		conn.Close()
	}()
	c2 := NewClient(ClientConfig{Addr: ln2.Addr().String()})
	if _, err := c2.Claim(sweepfarm.ClaimRequest{Worker: "w2"}); !errors.Is(err, sweepfarm.ErrLost) {
		t.Fatalf("reset reply: err = %v, want ErrLost", err)
	}

	// A server that never replies at all: the exchange deadline fires.
	ln3, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln3.Close()
	go func() {
		conn, err := ln3.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		io.Copy(io.Discard, conn)
	}()
	c3 := NewClient(ClientConfig{Addr: ln3.Addr().String(), Timeout: 200 * time.Millisecond})
	if _, err := c3.Claim(sweepfarm.ClaimRequest{Worker: "w2"}); !errors.Is(err, sweepfarm.ErrLost) {
		t.Fatalf("stalled reply: err = %v, want ErrLost", err)
	}
}

// TestClientRetriesStaleConnection proves the transparent redial: a
// connection left over from an earlier call may be dead (coordinator
// restarted), and the next call must succeed on a fresh dial instead of
// surfacing ErrLost for a coordinator that is alive and well.
func TestClientRetriesStaleConnection(t *testing.T) {
	tr := &scriptTransport{claimRep: sweepfarm.ClaimReply{Done: true}}
	addr, _ := serve(t, tr)

	var mu sync.Mutex
	var conns []net.Conn
	c := NewClient(ClientConfig{Addr: addr, Dial: func(a string) (net.Conn, error) {
		conn, err := net.Dial("tcp", a)
		if err == nil {
			mu.Lock()
			conns = append(conns, conn)
			mu.Unlock()
		}
		return conn, err
	}})
	defer c.Close()

	if _, err := c.Claim(sweepfarm.ClaimRequest{Worker: "w2"}); err != nil {
		t.Fatalf("first Claim: %v", err)
	}
	// Kill the established conn out from under the client.
	mu.Lock()
	conns[0].Close()
	mu.Unlock()
	rep, err := c.Claim(sweepfarm.ClaimRequest{Worker: "w2"})
	if err != nil || !rep.Done {
		t.Fatalf("Claim over stale conn: %+v, %v — want a transparent redial", rep, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(conns) != 2 {
		t.Fatalf("dials = %d, want 2 (original + one redial)", len(conns))
	}
}

// TestServerPoisonsOnlyTheBadConnection sends garbage on one connection and
// a valid request on another: the garbled stream gets an error reply and a
// hangup, the good stream is unaffected.
func TestServerPoisonsOnlyTheBadConnection(t *testing.T) {
	tr := &scriptTransport{claimRep: sweepfarm.ClaimReply{Done: true}}
	addr, _ := serve(t, tr)

	bad, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer bad.Close()
	if _, err := bad.Write(frame([]byte(`{"v":1,"kind":"gossip"}`))); err != nil {
		t.Fatal(err)
	}
	bad.SetReadDeadline(time.Now().Add(2 * time.Second))
	env, err := ReadFrame(bad, 0)
	if err != nil {
		t.Fatalf("reading error reply: %v", err)
	}
	if env.Kind != KindError {
		t.Fatalf("reply kind = %q, want %q", env.Kind, KindError)
	}
	if _, err := ReadFrame(bad, 0); err == nil {
		t.Fatal("poisoned connection still open after error reply")
	}

	c := NewClient(ClientConfig{Addr: addr})
	defer c.Close()
	if rep, err := c.Claim(sweepfarm.ClaimRequest{Worker: "w2"}); err != nil || !rep.Done {
		t.Fatalf("good connection after poison: %+v, %v", rep, err)
	}
}

// TestServerDrainFinishesInFlightRequest proves Close is a drain, not a
// snap: a request already being handled gets its reply before the
// connection dies.
func TestServerDrainFinishesInFlightRequest(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	tr := &gateTransport{started: started, release: release}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(tr, ServerConfig{})
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()

	c := NewClient(ClientConfig{Addr: ln.Addr().String()})
	defer c.Close()
	callDone := make(chan error, 1)
	go func() {
		rep, err := c.Claim(sweepfarm.ClaimRequest{Worker: "w2"})
		if err == nil && !rep.Done {
			err = fmt.Errorf("reply = %+v, want Done", rep)
		}
		callDone <- err
	}()
	<-started
	closeDone := make(chan error, 1)
	go func() { closeDone <- srv.Close() }()
	close(release)
	if err := <-callDone; err != nil {
		t.Fatalf("in-flight call during drain: %v", err)
	}
	if err := <-closeDone; err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := <-serveDone; err != nil {
		t.Fatalf("Serve: %v", err)
	}
	// And the drained server is really gone.
	if _, err := c.Claim(sweepfarm.ClaimRequest{Worker: "w2"}); !errors.Is(err, sweepfarm.ErrLost) {
		t.Fatalf("call after drain: %v, want ErrLost", err)
	}
}

// gateTransport blocks Claim until released, so a test can hold a request
// in flight.
type gateTransport struct {
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func (g *gateTransport) Claim(sweepfarm.ClaimRequest) (sweepfarm.ClaimReply, error) {
	g.once.Do(func() { close(g.started) })
	<-g.release
	return sweepfarm.ClaimReply{Done: true}, nil
}

func (g *gateTransport) Heartbeat(sweepfarm.HeartbeatRequest) (sweepfarm.HeartbeatReply, error) {
	return sweepfarm.HeartbeatReply{}, nil
}

func (g *gateTransport) Complete(sweepfarm.CompleteRequest) (sweepfarm.CompleteReply, error) {
	return sweepfarm.CompleteReply{}, nil
}

// TestEnvelopeJSONShape pins the on-wire document so a cross-version reader
// knows what to expect: {"v":1,"kind":...,"body":...}.
func TestEnvelopeJSONShape(t *testing.T) {
	env, err := seal(KindHeartbeatReply, sweepfarm.HeartbeatReply{OK: true})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if string(m["v"]) != "1" || string(m["kind"]) != `"heartbeat.reply"` {
		t.Fatalf("envelope = %s", raw)
	}
}
