package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"

	"mlorass/internal/sweepfarm"
)

// FuzzWireDecode feeds arbitrary byte streams to the frame reader. The
// contract under fuzz: never panic, never allocate past the frame bound on
// a hostile length prefix, and either return a valid envelope or an error —
// and anything that decodes must re-encode to a frame that decodes to the
// same envelope.
func FuzzWireDecode(f *testing.F) {
	// Seed with every message kind plus the classic corruptions.
	seed := func(kind Kind, msg any) {
		env, err := seal(kind, msg)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, env, 0); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		if buf.Len() > 6 {
			f.Add(buf.Bytes()[:buf.Len()/2]) // torn payload
			f.Add(buf.Bytes()[:3])           // torn prefix
		}
	}
	seed(KindClaimRequest, sweepfarm.ClaimRequest{Worker: "w0"})
	seed(KindClaimReply, sweepfarm.ClaimReply{OK: true, LeaseID: 1, Cell: sweepfarm.Cell{Index: 2, Key: "k", Label: "l"}})
	seed(KindHeartbeatRequest, sweepfarm.HeartbeatRequest{Worker: "w0", LeaseID: 1})
	seed(KindHeartbeatReply, sweepfarm.HeartbeatReply{OK: true})
	seed(KindCompleteRequest, sweepfarm.CompleteRequest{Worker: "w0", Artifact: []byte{1, 2, 3}})
	seed(KindCompleteReply, sweepfarm.CompleteReply{Accepted: true})
	seed(KindError, errorBody{Message: "no"})

	huge := make([]byte, 8)
	binary.BigEndian.PutUint32(huge, 1<<31)
	f.Add(huge)
	f.Add([]byte{0, 0, 0, 0})

	// A small bound keeps the fuzzer fast and makes over-allocation (a
	// frame body bigger than the bound surviving decode) detectable.
	const bound = 1 << 16
	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := ReadFrame(bytes.NewReader(data), bound)
		if err != nil {
			return
		}
		if env.V != Version || !knownKind(env.Kind) {
			t.Fatalf("decode accepted invalid envelope %+v", env)
		}
		if len(env.Body) > bound {
			t.Fatalf("decoded body of %d bytes past the %d bound", len(env.Body), bound)
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, env, bound); err != nil {
			t.Fatalf("re-encoding decoded envelope: %v", err)
		}
		again, err := ReadFrame(&buf, bound)
		if err != nil {
			t.Fatalf("re-decoding re-encoded envelope: %v", err)
		}
		// Marshalling compacts RawMessage bodies, so compare against the
		// compacted original.
		var want bytes.Buffer
		if len(env.Body) > 0 {
			if err := json.Compact(&want, env.Body); err != nil {
				t.Fatalf("decoded body is not valid JSON: %v", err)
			}
		}
		if again.V != env.V || again.Kind != env.Kind || !bytes.Equal(again.Body, want.Bytes()) {
			t.Fatalf("round-trip drifted: %+v vs %+v", env, again)
		}
	})
}
