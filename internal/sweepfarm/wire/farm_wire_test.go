package wire_test

// The farm's convergence contract — every fault schedule produces the same
// bytes as a fault-free serial run — was proven over in-process transports
// by the sweepfarm tests. This file re-runs the same scenarios with the
// real codec in the loop: coordinator behind a wire.Server on loopback TCP,
// every worker talking through its own wire.Client, and the fault injector
// layered both above the client (message faults) and below it (wire faults:
// refused connects, torn frames, resets mid-reply, stalls).

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mlorass/internal/runstore"
	"mlorass/internal/sweepfarm"
	"mlorass/internal/sweepfarm/faultinject"
	"mlorass/internal/sweepfarm/wire"
)

func artifactFor(c sweepfarm.Cell) []byte {
	return []byte(fmt.Sprintf("{\"cell\":%d,\"label\":%q,\"value\":%d,\"eof\":\"#\"}",
		c.Index, c.Label, (c.Index+1)*43))
}

func verifyCell(c sweepfarm.Cell, data []byte) error {
	if !bytes.Equal(data, artifactFor(c)) {
		return fmt.Errorf("artefact for cell %d is damaged (%d bytes)", c.Index, len(data))
	}
	return nil
}

func newCells(n int) []sweepfarm.Cell {
	cells := make([]sweepfarm.Cell, n)
	for i := range cells {
		label := fmt.Sprintf("wire-cell-%02d", i)
		cells[i] = sweepfarm.Cell{
			Index: i,
			Key:   runstore.Key([]byte("wire_test:" + label)),
			Label: label,
		}
	}
	return cells
}

// recorder enforces the exactly-once merge and collects events.
type recorder struct {
	t      *testing.T
	mu     sync.Mutex
	got    map[int][]byte
	counts map[int]int
	events []sweepfarm.Event
}

func newRecorder(t *testing.T) *recorder {
	return &recorder{t: t, got: map[int][]byte{}, counts: map[int]int{}}
}

func (r *recorder) absorb(c sweepfarm.Cell, data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts[c.Index]++
	if r.counts[c.Index] > 1 {
		r.t.Errorf("cell %d absorbed %d times; merge must be exactly-once", c.Index, r.counts[c.Index])
	}
	r.got[c.Index] = append([]byte(nil), data...)
	return nil
}

func (r *recorder) event(e sweepfarm.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

func (r *recorder) countExpired() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Expired {
			n++
		}
	}
	return n
}

func (r *recorder) countCached() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == sweepfarm.EventDone && e.Cached {
			n++
		}
	}
	return n
}

func (r *recorder) assertConverged(t *testing.T, cells []sweepfarm.Cell) {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.got) != len(cells) {
		t.Fatalf("absorbed %d cells, want %d", len(r.got), len(cells))
	}
	for _, c := range cells {
		if !bytes.Equal(r.got[c.Index], artifactFor(c)) {
			t.Fatalf("cell %d bytes diverged from the fault-free run:\n got %q\nwant %q",
				c.Index, r.got[c.Index], artifactFor(c))
		}
	}
}

func fastLease() sweepfarm.LeaseConfig {
	return sweepfarm.LeaseConfig{
		TTL:         100 * time.Millisecond,
		MaxAttempts: 5,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Seed:        11,
	}
}

func fastWorker() sweepfarm.WorkerConfig {
	return sweepfarm.WorkerConfig{
		Poll:        2 * time.Millisecond,
		SendRetries: 3,
		ClaimStale:  250 * time.Millisecond,
	}
}

func openStore(t *testing.T) *runstore.Store {
	t.Helper()
	s, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatalf("runstore.Open: %v", err)
	}
	return s
}

type wireFarmOpts struct {
	workers int
	respawn bool
	inj     *faultinject.Injector
	// wireFaults routes the injector's conn-level faults under the client
	// (in addition to its message faults above the client).
	wireFaults bool
	timeout    time.Duration // client exchange timeout (default 2s)
}

// runWireFarm runs the standard farm harness with the transport seam
// replaced by real TCP: the coordinator serves on loopback, each worker
// (and each respawn) gets a fresh wire.Client.
func runWireFarm(t *testing.T, cells []sweepfarm.Cell, store sweepfarm.ArtifactStore, o wireFarmOpts) (*recorder, sweepfarm.Report, error) {
	t.Helper()
	rec := newRecorder(t)
	run := func(c sweepfarm.Cell) ([]byte, error) { return artifactFor(c), nil }

	var (
		startOnce sync.Once
		srv       *wire.Server
		addr      string
		mu        sync.Mutex
		clients   []*wire.Client
	)
	t.Cleanup(func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range clients {
			c.Close()
		}
		if srv != nil {
			srv.Close()
		}
	})

	timeout := o.timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	cfg := sweepfarm.FarmConfig{
		Workers: o.workers,
		Worker:  fastWorker(),
		Lease:   fastLease(),
		Verify:  verifyCell,
		Absorb:  rec.absorb,
		Events:  rec.event,
		Respawn: o.respawn,
	}
	if o.inj != nil {
		cfg.Hooks = o.inj.Hooks()
		if store != nil {
			store = o.inj.WrapStore(store)
		}
	}
	cfg.WrapTransport = func(tr sweepfarm.Transport) sweepfarm.Transport {
		startOnce.Do(func() {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatalf("listen: %v", err)
			}
			srv = wire.NewServer(tr, wire.ServerConfig{Logf: t.Logf})
			addr = ln.Addr().String()
			go srv.Serve(ln)
		})
		dial := func(a string) (net.Conn, error) {
			return net.DialTimeout("tcp", a, time.Second)
		}
		if o.inj != nil && o.wireFaults {
			dial = o.inj.WrapDial(dial)
		}
		c := wire.NewClient(wire.ClientConfig{
			Addr: addr, Timeout: timeout, DialTimeout: time.Second, Dial: dial})
		mu.Lock()
		clients = append(clients, c)
		mu.Unlock()
		var out sweepfarm.Transport = c
		if o.inj != nil {
			out = o.inj.WrapTransport(out)
		}
		return out
	}
	farm, err := sweepfarm.New(cells, run, store, nil, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := farm.Run()
	return rec, rep, err
}

// TestWireFarmFaultFreeMatchesSerial is the byte-identity baseline: a
// parallel farm whose every message crosses real TCP produces exactly what
// a serial in-process run produces.
func TestWireFarmFaultFreeMatchesSerial(t *testing.T) {
	cells := newCells(8)
	rec, rep, err := runWireFarm(t, cells, openStore(t), wireFarmOpts{workers: 3})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rec.assertConverged(t, cells)
	if rep.Done != len(cells) || len(rep.Quarantined) != 0 {
		t.Fatalf("Done=%d Quarantined=%v, want %d/none", rep.Done, rep.Quarantined, len(cells))
	}
}

// TestWireFarmCrashAtEachPhase re-proves crash recovery with the codec in
// the loop: a worker dies at each checkpoint, the supervisor respawns it
// with a fresh connection, and the sweep converges.
func TestWireFarmCrashAtEachPhase(t *testing.T) {
	for _, phase := range []sweepfarm.Phase{
		sweepfarm.PhasePreClaim, sweepfarm.PhaseMidCompute, sweepfarm.PhasePostWrite,
	} {
		phase := phase
		t.Run(phase.String(), func(t *testing.T) {
			t.Parallel()
			cells := newCells(6)
			inj := faultinject.New(nil).Crash("", phase, 2)
			rec, rep, err := runWireFarm(t, cells, openStore(t), wireFarmOpts{
				workers: 2, respawn: true, inj: inj})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			rec.assertConverged(t, cells)
			if inj.Stats().Crashes != 1 {
				t.Fatalf("crashes = %d, want 1", inj.Stats().Crashes)
			}
			if rep.Crashes != 1 {
				t.Fatalf("report crashes = %d, want 1", rep.Crashes)
			}
		})
	}
}

// TestWireFarmDuplicateAndDroppedCompletes drives the at-least-once paths
// over TCP: one completion delivered twice, one completion whose reply is
// lost (so the worker re-sends). The merge stays exactly-once.
func TestWireFarmDuplicateAndDroppedCompletes(t *testing.T) {
	cells := newCells(8)
	inj := faultinject.New(nil).
		Message(faultinject.OpComplete, "", 2, faultinject.Duplicate, 0).
		Message(faultinject.OpComplete, "", 5, faultinject.DropReply, 0)
	rec, rep, err := runWireFarm(t, cells, openStore(t), wireFarmOpts{workers: 2, inj: inj})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rec.assertConverged(t, cells)
	st := inj.Stats()
	if st.Duplicated != 1 || st.DroppedReplies != 1 {
		t.Fatalf("stats = %+v, want one duplicate and one dropped reply", st)
	}
	if rep.Done != len(cells) {
		t.Fatalf("Done = %d, want %d", rep.Done, len(cells))
	}
}

// TestWireFarmLeaseExpiresOverWire stalls a worker past the TTL while its
// heartbeats are dropped in flight; the lease dies, the cell completes
// elsewhere, and the zombie's late completion is deduped — all over TCP.
func TestWireFarmLeaseExpiresOverWire(t *testing.T) {
	cells := newCells(6)
	inj := faultinject.New(nil).
		Stall("", sweepfarm.PhaseMidCompute, 2, 250*time.Millisecond).
		Message(faultinject.OpHeartbeat, "", 0, faultinject.DropRequest, 0)
	rec, _, err := runWireFarm(t, cells, openStore(t), wireFarmOpts{workers: 2, inj: inj})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rec.assertConverged(t, cells)
	if inj.Stats().Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", inj.Stats().Stalls)
	}
	if rec.countExpired() < 1 {
		t.Fatal("no lease expiry observed despite a stall past the TTL")
	}
}

// TestWireFarmConnFaultsConverge is the tentpole scenario: refused
// connects, a torn request frame, resets mid-reply and a stalled write, all
// scripted at the conn layer under the real codec. Every one surfaces to
// the worker as ErrLost, the retry machinery grinds through, and the sweep
// converges byte-for-byte.
func TestWireFarmConnFaultsConverge(t *testing.T) {
	cells := newCells(8)
	inj := faultinject.New(nil).
		WireRefuseConnect(1). // first dial refused: worker starts partitioned
		WireTearFrame(3).
		WireResetReply(2).
		WireResetReply(9).
		WireStall(14, 300*time.Millisecond) // past the client timeout below
	rec, rep, err := runWireFarm(t, cells, openStore(t), wireFarmOpts{
		workers: 2, inj: inj, wireFaults: true, timeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rec.assertConverged(t, cells)
	st := inj.Stats()
	if st.WireRefusals != 1 || st.TornFrames != 1 || st.ResetReplies != 2 || st.WireStalls != 1 {
		t.Fatalf("stats = %+v, want every scripted wire fault fired", st)
	}
	if rep.Done != len(cells) {
		t.Fatalf("Done = %d, want %d", rep.Done, len(cells))
	}
}

// TestWireFarmRestartRecoversFromStore crashes the whole farm mid-sweep
// (workers connected over TCP, no respawn), then a fresh coordinator +
// server over the same store must recover persisted cells — including the
// unacked one — and finish.
func TestWireFarmRestartRecoversFromStore(t *testing.T) {
	cells := newCells(6)
	store := openStore(t)
	inj := faultinject.New(nil).Crash("w0", sweepfarm.PhasePostWrite, 3)
	_, rep1, err := runWireFarm(t, cells, store, wireFarmOpts{workers: 1, inj: inj})
	if err == nil {
		t.Fatal("first run succeeded; want an all-workers-dead error")
	}
	if !strings.Contains(err.Error(), "still open") {
		t.Fatalf("first run error = %v, want the still-open report", err)
	}
	if rep1.Done != 2 {
		t.Fatalf("first run Done = %d, want 2", rep1.Done)
	}
	rec2, rep2, err := runWireFarm(t, cells, store, wireFarmOpts{workers: 2})
	if err != nil {
		t.Fatalf("restarted run: %v", err)
	}
	rec2.assertConverged(t, cells)
	if rep2.Done != len(cells) {
		t.Fatalf("restarted run Done = %d, want %d", rep2.Done, len(cells))
	}
	if rec2.countCached() < 3 {
		t.Fatalf("restart recovered %d cells from the store, want >= 3", rec2.countCached())
	}
}

// TestWireClientFaultsMapToErrLost pins the transport-error contract at the
// seam the worker sees: every conn-level fault the injector can script
// surfaces as sweepfarm.ErrLost, never as a panic, a hang, or a silent
// wrong answer.
func TestWireClientFaultsMapToErrLost(t *testing.T) {
	tr := &doneTransport{}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.NewServer(tr, wire.ServerConfig{})
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })

	cases := []struct {
		name string
		inj  *faultinject.Injector
	}{
		{"refused connect", faultinject.New(nil).WireRefuseConnect(0)},
		{"torn frame", faultinject.New(nil).WireTearFrame(0)},
		{"reset reply", faultinject.New(nil).WireResetReply(0)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			dial := c.inj.WrapDial(func(a string) (net.Conn, error) { return net.Dial("tcp", a) })
			cl := wire.NewClient(wire.ClientConfig{
				Addr: ln.Addr().String(), Dial: dial, Timeout: 500 * time.Millisecond})
			defer cl.Close()
			if _, err := cl.Claim(sweepfarm.ClaimRequest{Worker: "w0"}); !errors.Is(err, sweepfarm.ErrLost) {
				t.Fatalf("err = %v, want sweepfarm.ErrLost", err)
			}
		})
	}
}

type doneTransport struct{}

func (doneTransport) Claim(sweepfarm.ClaimRequest) (sweepfarm.ClaimReply, error) {
	return sweepfarm.ClaimReply{Done: true}, nil
}
func (doneTransport) Heartbeat(sweepfarm.HeartbeatRequest) (sweepfarm.HeartbeatReply, error) {
	return sweepfarm.HeartbeatReply{OK: true}, nil
}
func (doneTransport) Complete(sweepfarm.CompleteRequest) (sweepfarm.CompleteReply, error) {
	return sweepfarm.CompleteReply{Accepted: true}, nil
}
