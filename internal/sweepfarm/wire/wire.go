// Package wire carries the sweep-farm protocol over a byte stream. It is
// the TCP half of the farm: a length-prefixed JSON codec for the five
// protocol messages, a Client that implements sweepfarm.Transport by
// dialling a coordinator, and a Server that exposes a local Transport
// (normally the *sweepfarm.Coordinator itself) to remote workers.
//
// The framing is deliberately dumb: a 4-byte big-endian length followed by
// one JSON envelope {v, kind, body}. Dumb framing keeps the failure model
// honest — any connection error, torn frame, or unparseable reply maps to
// sweepfarm.ErrLost ("the call failed and the sender cannot know whether the
// receiver processed it"), which is the one semantic the farm's convergence
// proofs are built on. The codec never trusts the peer: lengths are bounds-
// checked before any allocation, unknown envelope versions and kinds are
// errors, and a request that fails to decode poisons only its connection,
// never the coordinator.
//
// This package intentionally sits outside detlint's clock confinement (that
// is scoped to the sweepfarm and faultinject package names): socket
// deadlines are wall-clock business, and the fault harness injects at the
// net.Conn layer instead.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"mlorass/internal/sweepfarm"
)

// Version is the envelope version this build speaks. A peer announcing any
// other version is rejected — the farm's two halves ship in one binary, so a
// mismatch means operator error, not a negotiation opportunity.
const Version = 1

// DefaultMaxFrame bounds one frame (8 MiB). Artefacts for keyed cells travel
// through the shared store, not the wire, so real frames are tiny; the bound
// exists so a corrupt or hostile length prefix cannot make a peer allocate
// gigabytes before reading a single payload byte.
const DefaultMaxFrame = 8 << 20

// Kind tags the message inside an envelope.
type Kind string

// The five protocol messages plus the error reply. An ErrorReply is a
// *definitive* answer — the coordinator received, decoded and rejected the
// request — so the client surfaces it as a plain error, NOT as ErrLost: the
// caller must not retry a request the coordinator has already refused.
const (
	KindClaimRequest     Kind = "claim"
	KindClaimReply       Kind = "claim.reply"
	KindHeartbeatRequest Kind = "heartbeat"
	KindHeartbeatReply   Kind = "heartbeat.reply"
	KindCompleteRequest  Kind = "complete"
	KindCompleteReply    Kind = "complete.reply"
	KindError            Kind = "error"
)

// replyKind maps each request kind to the reply kind it expects.
var replyKind = map[Kind]Kind{
	KindClaimRequest:     KindClaimReply,
	KindHeartbeatRequest: KindHeartbeatReply,
	KindCompleteRequest:  KindCompleteReply,
}

// envelope is the one JSON document a frame carries.
type envelope struct {
	V    int             `json:"v"`
	Kind Kind            `json:"kind"`
	Body json.RawMessage `json:"body,omitempty"`
}

// errorBody is KindError's payload.
type errorBody struct {
	Message string `json:"message"`
}

// Decode errors. ErrFrameTooBig and ErrBadFrame poison the connection (the
// stream position is unrecoverable); they are distinct so tests and metrics
// can tell a hostile length from a torn stream.
var (
	// ErrFrameTooBig reports a length prefix past the frame bound.
	ErrFrameTooBig = errors.New("wire: frame exceeds size bound")
	// ErrBadFrame reports an undecodable frame: torn, empty, not JSON, or
	// an envelope with an unknown version or kind.
	ErrBadFrame = errors.New("wire: bad frame")
)

// WriteFrame encodes env and writes it as one length-prefixed frame in a
// single Write call. One Write per frame is a deliberate invariant: the
// fault-injection conn counts and tears *frames*, and a frame split across
// writes would blur what "torn" means.
func WriteFrame(w io.Writer, env envelope, maxFrame int) error {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	body, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("wire: encoding %s: %w", env.Kind, err)
	}
	if len(body) > maxFrame {
		return fmt.Errorf("%w: %s frame is %d bytes (bound %d)", ErrFrameTooBig, env.Kind, len(body), maxFrame)
	}
	buf := make([]byte, 4+len(body))
	binary.BigEndian.PutUint32(buf[:4], uint32(len(body)))
	copy(buf[4:], body)
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame and decodes its envelope. The length is bounds-
// checked before the payload buffer is allocated, so a hostile prefix costs
// at most the 4 bytes already read. Any error other than a clean EOF before
// the first byte leaves the stream unusable.
func ReadFrame(r io.Reader, maxFrame int) (envelope, error) {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return envelope{}, fmt.Errorf("%w: torn length prefix: %v", ErrBadFrame, err)
		}
		return envelope{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return envelope{}, fmt.Errorf("%w: zero-length frame", ErrBadFrame)
	}
	if n > uint32(maxFrame) {
		return envelope{}, fmt.Errorf("%w: %d bytes (bound %d)", ErrFrameTooBig, n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return envelope{}, fmt.Errorf("%w: torn payload after %d-byte prefix: %v", ErrBadFrame, n, err)
	}
	var env envelope
	if err := json.Unmarshal(body, &env); err != nil {
		return envelope{}, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	if env.V != Version {
		return envelope{}, fmt.Errorf("%w: envelope version %d (speak %d)", ErrBadFrame, env.V, Version)
	}
	if !knownKind(env.Kind) {
		return envelope{}, fmt.Errorf("%w: unknown kind %q", ErrBadFrame, env.Kind)
	}
	return env, nil
}

func knownKind(k Kind) bool {
	switch k {
	case KindClaimRequest, KindClaimReply, KindHeartbeatRequest,
		KindHeartbeatReply, KindCompleteRequest, KindCompleteReply, KindError:
		return true
	}
	return false
}

// seal wraps a message body into a versioned envelope.
func seal(kind Kind, body any) (envelope, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return envelope{}, fmt.Errorf("wire: encoding %s body: %w", kind, err)
	}
	return envelope{V: Version, Kind: kind, Body: raw}, nil
}

// open decodes env's body into out after checking the kind matches.
func open(env envelope, want Kind, out any) error {
	if env.Kind != want {
		return fmt.Errorf("%w: got %q, want %q", ErrBadFrame, env.Kind, want)
	}
	if err := json.Unmarshal(env.Body, out); err != nil {
		return fmt.Errorf("%w: %s body: %v", ErrBadFrame, want, err)
	}
	return nil
}

// decodeRequest decodes a request envelope into the matching protocol
// struct, for the server's dispatch loop.
func decodeRequest(env envelope) (any, error) {
	switch env.Kind {
	case KindClaimRequest:
		var req sweepfarm.ClaimRequest
		return req, open(env, env.Kind, &req)
	case KindHeartbeatRequest:
		var req sweepfarm.HeartbeatRequest
		return req, open(env, env.Kind, &req)
	case KindCompleteRequest:
		var req sweepfarm.CompleteRequest
		return req, open(env, env.Kind, &req)
	default:
		return nil, fmt.Errorf("%w: %q is not a request kind", ErrBadFrame, env.Kind)
	}
}
