package wire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mlorass/internal/sweepfarm"
)

// ServerConfig tunes a Server.
type ServerConfig struct {
	// MaxFrame overrides DefaultMaxFrame.
	MaxFrame int
	// ReplyTimeout bounds writing one reply frame. Zero means 5s. A worker
	// too slow to take a reply is cut loose (its lease expires, the farm
	// re-leases) rather than allowed to wedge a handler goroutine.
	ReplyTimeout time.Duration
	// Logf receives per-connection protocol errors (torn frames, garbled
	// requests). Nil discards them — they are a remote peer's problem and
	// never the coordinator's.
	Logf func(format string, args ...any)
}

// Server exposes a local sweepfarm.Transport — normally the *Coordinator
// itself — to remote wire.Clients. One goroutine per connection; each
// connection is a serial request-reply stream. A request that fails to
// decode gets a KindError reply (when the stream is still writable) and the
// connection is closed: framing errors poison only their connection, never
// the coordinator.
//
// A transport-level error from the wrapped Transport also becomes a
// KindError reply — on the worker side that surfaces as a definitive
// rejection, mirroring what an in-process worker would see as a returned
// error.
type Server struct {
	tr  sweepfarm.Transport
	cfg ServerConfig

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewServer wraps tr for serving.
func NewServer(tr sweepfarm.Transport, cfg ServerConfig) *Server {
	return &Server{tr: tr, cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Serve accepts connections on ln until Close. It blocks, returning nil
// after a clean Close and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("wire: server already closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close drains the server: stop accepting, unblock every idle read, and
// wait for in-flight handlers to finish their current request. Connections
// are not snapped mid-reply — a handler that has decoded a request gets to
// write its answer before its next read fails.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		// A deadline in the past fails the blocked (or next) read
		// immediately; the in-flight reply write has its own deadline.
		conn.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// handle runs one connection's serial request-reply loop.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	for {
		env, err := ReadFrame(conn, s.cfg.MaxFrame)
		if err != nil {
			// EOF is the peer hanging up; everything else poisons the
			// stream. Either way this connection is done — tell the peer
			// when the frame was garbled (best effort; its conn may be
			// gone) and drop it.
			if errors.Is(err, ErrBadFrame) || errors.Is(err, ErrFrameTooBig) {
				s.logf("wire: %s: %v", conn.RemoteAddr(), err)
				s.reply(conn, envelope{}, fmt.Errorf("undecodable request: %v", err))
			}
			return
		}
		req, err := decodeRequest(env)
		if err != nil {
			s.logf("wire: %s: %v", conn.RemoteAddr(), err)
			s.reply(conn, envelope{}, fmt.Errorf("undecodable %s request: %v", env.Kind, err))
			return
		}
		rep, err := s.dispatch(req)
		if err != nil {
			if !s.reply(conn, envelope{}, err) {
				return
			}
			continue
		}
		if !s.reply(conn, rep, nil) {
			return
		}
	}
}

// dispatch routes one decoded request through the wrapped Transport.
func (s *Server) dispatch(req any) (envelope, error) {
	switch req := req.(type) {
	case sweepfarm.ClaimRequest:
		rep, err := s.tr.Claim(req)
		if err != nil {
			return envelope{}, err
		}
		return seal(KindClaimReply, rep)
	case sweepfarm.HeartbeatRequest:
		rep, err := s.tr.Heartbeat(req)
		if err != nil {
			return envelope{}, err
		}
		return seal(KindHeartbeatReply, rep)
	case sweepfarm.CompleteRequest:
		rep, err := s.tr.Complete(req)
		if err != nil {
			return envelope{}, err
		}
		return seal(KindCompleteReply, rep)
	default:
		return envelope{}, fmt.Errorf("unroutable request type %T", req)
	}
}

// reply writes rep, or a KindError envelope carrying cause when cause is
// non-nil. It reports whether the connection is still usable.
func (s *Server) reply(conn net.Conn, rep envelope, cause error) bool {
	if cause != nil {
		var err error
		rep, err = seal(KindError, errorBody{Message: cause.Error()})
		if err != nil {
			return false
		}
	}
	timeout := s.cfg.ReplyTimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	if err := conn.SetWriteDeadline(time.Now().Add(timeout)); err != nil {
		return false
	}
	if err := WriteFrame(conn, rep, s.cfg.MaxFrame); err != nil {
		return false
	}
	return true
}

// logf forwards to cfg.Logf when set.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
