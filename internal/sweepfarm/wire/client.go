package wire

import (
	"fmt"
	"net"
	"sync"
	"time"

	"mlorass/internal/sweepfarm"
)

// ClientConfig tunes a Client.
type ClientConfig struct {
	// Addr is the coordinator's address (host:port).
	Addr string
	// DialTimeout bounds one connection attempt. Zero means 2s.
	DialTimeout time.Duration
	// Timeout bounds one request-reply exchange on an open connection.
	// Zero means 5s. A coordinator that takes longer than this to answer
	// is indistinguishable from a dead one, and the call maps to ErrLost.
	Timeout time.Duration
	// MaxFrame overrides DefaultMaxFrame.
	MaxFrame int
	// Dial overrides the TCP dial — the fault-injection seam (connect
	// refusals, torn conns). Nil dials Addr over TCP with DialTimeout.
	Dial func(addr string) (net.Conn, error)
}

// Client implements sweepfarm.Transport over one coordinator connection.
// Calls are serialised (the farm protocol is strictly request-reply per
// connection; a worker's claim loop is serial anyway, and heartbeats are
// cheap). Every transport-level failure — dial refused, conn reset, torn or
// garbled frame, deadline blown — is wrapped in sweepfarm.ErrLost: the
// caller cannot know whether the coordinator processed the request, which
// is exactly the semantic the farm's retry-and-dedupe machinery expects.
// The one exception is a decoded KindError reply: that is the coordinator
// *answering* with a rejection, and it surfaces as a plain error.
//
// A failed connection is dropped and the next call redials. When a call
// fails on a connection reused from an earlier call — the classic stale
// keepalive to a restarted coordinator — the client transparently retries
// once on a fresh connection before reporting ErrLost; the protocol is
// at-least-once by design, so the duplicate send is safe.
type Client struct {
	cfg ClientConfig

	mu   sync.Mutex
	conn net.Conn
}

// NewClient returns a client for the coordinator at cfg.Addr. No connection
// is made until the first call.
func NewClient(cfg ClientConfig) *Client { return &Client{cfg: cfg} }

var _ sweepfarm.Transport = (*Client)(nil)

// Claim implements sweepfarm.Transport.
func (c *Client) Claim(req sweepfarm.ClaimRequest) (sweepfarm.ClaimReply, error) {
	var rep sweepfarm.ClaimReply
	err := c.call(KindClaimRequest, req, &rep)
	return rep, err
}

// Heartbeat implements sweepfarm.Transport.
func (c *Client) Heartbeat(req sweepfarm.HeartbeatRequest) (sweepfarm.HeartbeatReply, error) {
	var rep sweepfarm.HeartbeatReply
	err := c.call(KindHeartbeatRequest, req, &rep)
	return rep, err
}

// Complete implements sweepfarm.Transport.
func (c *Client) Complete(req sweepfarm.CompleteRequest) (sweepfarm.CompleteReply, error) {
	var rep sweepfarm.CompleteReply
	err := c.call(KindCompleteRequest, req, &rep)
	return rep, err
}

// Close drops the connection. The client remains usable; the next call
// redials.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropConn()
	return nil
}

// call runs one request-reply exchange.
func (c *Client) call(kind Kind, req, out any) error {
	env, err := seal(kind, req)
	if err != nil {
		// An unencodable request is a programming error, not a lost message.
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	reused := c.conn != nil
	rep, err := c.exchange(env)
	if err != nil && reused {
		// The conn predates this call and may simply have gone stale
		// (coordinator restart, idle reset). One fresh-dial retry; the
		// possible duplicate send is what the coordinator dedupes anyway.
		rep, err = c.exchange(env)
	}
	if err != nil {
		return fmt.Errorf("%w: %s to %s: %v", sweepfarm.ErrLost, kind, c.cfg.Addr, err)
	}
	if rep.Kind == KindError {
		var eb errorBody
		if oerr := open(rep, KindError, &eb); oerr != nil {
			c.dropConn()
			return fmt.Errorf("%w: %s to %s: undecodable error reply: %v", sweepfarm.ErrLost, kind, c.cfg.Addr, oerr)
		}
		// A decoded rejection is definitive: the coordinator processed the
		// request and said no. Not ErrLost — do not retry it.
		return fmt.Errorf("wire: coordinator rejected %s: %s", kind, eb.Message)
	}
	if oerr := open(rep, replyKind[kind], out); oerr != nil {
		// Reply arrived but is not the answer to this request: the stream
		// is out of sync and the outcome unknown.
		c.dropConn()
		return fmt.Errorf("%w: %s to %s: %v", sweepfarm.ErrLost, kind, c.cfg.Addr, oerr)
	}
	return nil
}

// exchange writes env and reads one reply on the current connection,
// dialling first if necessary. Any failure drops the connection. Callers
// hold c.mu.
func (c *Client) exchange(env envelope) (envelope, error) {
	if c.conn == nil {
		conn, err := c.dial()
		if err != nil {
			return envelope{}, err
		}
		c.conn = conn
	}
	timeout := c.cfg.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	if err := c.conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		c.dropConn()
		return envelope{}, err
	}
	if err := WriteFrame(c.conn, env, c.cfg.MaxFrame); err != nil {
		c.dropConn()
		return envelope{}, err
	}
	rep, err := ReadFrame(c.conn, c.cfg.MaxFrame)
	if err != nil {
		c.dropConn()
		return envelope{}, err
	}
	return rep, nil
}

func (c *Client) dial() (net.Conn, error) {
	if c.cfg.Dial != nil {
		return c.cfg.Dial(c.cfg.Addr)
	}
	timeout := c.cfg.DialTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return net.DialTimeout("tcp", c.cfg.Addr, timeout)
}

// dropConn closes and forgets the connection. Callers hold c.mu.
func (c *Client) dropConn() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}
