// Package sweepfarm executes a sweep's cells across a pool of workers under
// expiring leases, with every artefact flowing through a content-addressed
// store. It is the crash-tolerant generalisation of an in-process worker
// pool: workers claim cells from a coordinator, stream heartbeats while they
// compute, publish artefacts through the store's atomic-write path, and
// report completion; a worker that dies simply stops heartbeating, its
// leases expire, and the cells are re-leased elsewhere with exponential
// backoff. Compute is at-least-once, merge is exactly-once: duplicate
// completions (a retry racing its original, a lost ack re-sent) are
// idempotent because cells are content-addressed, and the coordinator
// absorbs each cell into the sweep's aggregate exactly once. A cell that
// keeps failing is quarantined after a bounded number of attempts so the
// sweep always terminates — with an explicit gap report, never a silent
// zero.
//
// Everything nondeterministic is injected: the transport (worker↔coordinator
// messages), the artefact store (filesystem), and the clock, so the
// fault-injection harness in sweepfarm/faultinject can script crashes,
// message loss/duplication/delay, torn writes, clock skew and slow workers —
// and the tests prove every schedule converges to the same bytes as a
// fault-free serial run.
package sweepfarm

import (
	"sync"
	"time"
)

// Clock abstracts wall time so lease deadlines, heartbeat periods and
// backoff waits are testable and skewable. All of the package's time reads
// go through a Clock; Wall() is the only place the real clock is touched.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers one tick after d elapses.
	After(d time.Duration) <-chan time.Time
}

// wallClock is the production clock. It is the package's single point of
// contact with the real time package, which keeps detlint's clock
// confinement for sweepfarm honest.
type wallClock struct{}

// Wall returns the real wall clock.
func Wall() Clock { return wallClock{} }

func (wallClock) Now() time.Time {
	//lint:ignore detlint the wall-clock implementation behind the Clock interface; every other read in the package goes through Clock
	return time.Now()
}

func (wallClock) After(d time.Duration) <-chan time.Time {
	//lint:ignore detlint the wall-clock timer behind the Clock interface; every other wait in the package goes through Clock
	return time.After(d)
}

// Skewed returns a clock offset from base by d: a worker whose machine's
// clock runs hours ahead or behind the coordinator's. The coordinator only
// ever consults its own clock for lease arithmetic, so skewed workers must
// be harmless; the harness proves it.
func Skewed(base Clock, d time.Duration) Clock { return skewClock{base: base, d: d} }

type skewClock struct {
	base Clock
	d    time.Duration
}

func (c skewClock) Now() time.Time                         { return c.base.Now().Add(c.d) }
func (c skewClock) After(d time.Duration) <-chan time.Time { return c.base.After(d) }

// FakeClock is a manually advanced clock for deterministic tests. Waiters
// registered through After fire when Advance moves the current time past
// their deadline.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a fake clock reading start.
func NewFakeClock(start time.Time) *FakeClock { return &FakeClock{now: start} }

// Now returns the fake current time.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After registers a waiter due d from now. A non-positive d fires
// immediately.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward by d and fires every waiter whose
// deadline has passed.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	var keep []fakeWaiter
	var fire []fakeWaiter
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			fire = append(fire, w)
		} else {
			keep = append(keep, w)
		}
	}
	c.waiters = keep
	now := c.now
	c.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
	}
}
