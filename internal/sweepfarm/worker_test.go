package sweepfarm

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestHeartbeatPeriodClamp pins the period resolution: a configured period
// at or past the lease TTL would guarantee the lease expires mid-compute, so
// it is clamped to TTL/3 exactly like an unset one.
func TestHeartbeatPeriodClamp(t *testing.T) {
	cases := []struct {
		configured, ttl, want time.Duration
	}{
		{0, 30 * time.Second, 10 * time.Second},                // unset: derive TTL/3
		{5 * time.Second, 30 * time.Second, 5 * time.Second},   // sane: honoured
		{30 * time.Second, 30 * time.Second, 10 * time.Second}, // == TTL: clamp
		{60 * time.Second, 30 * time.Second, 10 * time.Second}, // > TTL: clamp
		{-time.Second, 30 * time.Second, 10 * time.Second},     // negative: derive
		{0, 0, time.Second},                   // nothing to derive from
		{2 * time.Second, 0, 2 * time.Second}, // no TTL: honoured
	}
	for _, c := range cases {
		if got := heartbeatPeriod(c.configured, c.ttl); got != c.want {
			t.Errorf("heartbeatPeriod(%v, %v) = %v, want %v", c.configured, c.ttl, got, c.want)
		}
	}
}

// beatRecorder is a Transport that only records heartbeats.
type beatRecorder struct {
	beats chan HeartbeatRequest
}

func (b *beatRecorder) Claim(ClaimRequest) (ClaimReply, error) { return ClaimReply{}, nil }
func (b *beatRecorder) Heartbeat(req HeartbeatRequest) (HeartbeatReply, error) {
	b.beats <- req
	return HeartbeatReply{OK: true}, nil
}
func (b *beatRecorder) Complete(CompleteRequest) (CompleteReply, error) {
	return CompleteReply{Accepted: true}, nil
}

// pendingWaiters reports how many After waiters the fake clock holds — the
// test's synchronisation point with the heartbeat goroutine.
func pendingWaiters(c *FakeClock) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}

func awaitWaiter(c *FakeClock) {
	for pendingWaiters(c) == 0 {
		runtime.Gosched()
	}
}

// TestStartHeartbeatsBeatsInsideMisconfiguredTTL drives the heartbeat loop
// on a fake clock with Heartbeat configured at twice the lease TTL — the
// misconfiguration that used to mean no beat could ever land in time — and
// proves beats now fire every TTL/3.
func TestStartHeartbeatsBeatsInsideMisconfiguredTTL(t *testing.T) {
	clock := NewFakeClock(t0)
	tr := &beatRecorder{beats: make(chan HeartbeatRequest, 8)}
	w := NewWorker(WorkerConfig{ID: "w0", Heartbeat: 60 * time.Second}, tr, nil, nil, nil, clock, nil)
	stop := w.startHeartbeats(ClaimReply{OK: true, LeaseID: 42, TTL: 30 * time.Second})
	defer stop()

	const clamped = 10 * time.Second // TTL/3
	for beat := 1; beat <= 3; beat++ {
		awaitWaiter(clock)
		clock.Advance(clamped - time.Millisecond)
		select {
		case req := <-tr.beats:
			t.Fatalf("beat %d fired %v early: %+v", beat, time.Millisecond, req)
		default:
		}
		clock.Advance(time.Millisecond)
		req := <-tr.beats
		if req.LeaseID != 42 || req.Worker != "w0" {
			t.Fatalf("beat %d = %+v, want lease 42 from w0", beat, req)
		}
		if want := t0.Add(time.Duration(beat) * clamped); !req.SentAt.Equal(want) {
			t.Fatalf("beat %d SentAt = %v, want %v", beat, req.SentAt, want)
		}
	}
}

// raceStore scripts the exact TOCTOU interleaving the publish path must
// survive: the worker observes a stale claim, and in the window before it
// acts, the holder releases and a different live worker takes a fresh claim.
type raceStore struct {
	mu    sync.Mutex
	owner string
	since time.Time
	data  []byte

	// afterInfo runs after ClaimInfo reports, simulating the race window.
	afterInfo func(s *raceStore)

	puts, releases int
	breaks         []string
}

func (s *raceStore) Get(key string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data, s.data != nil, nil
}

func (s *raceStore) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.puts++
	s.data = append([]byte(nil), data...)
	return nil
}

func (s *raceStore) Claim(key, owner string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.owner != "" {
		return false, nil
	}
	s.owner = owner
	return true, nil
}

func (s *raceStore) Release(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.releases++
	s.owner, s.since = "", time.Time{}
	return nil
}

func (s *raceStore) ClaimInfo(key string) (string, time.Time, bool, error) {
	s.mu.Lock()
	owner, since, held := s.owner, s.since, s.owner != ""
	after := s.afterInfo
	s.afterInfo = nil
	s.mu.Unlock()
	if after != nil {
		after(s)
	}
	return owner, since, held, nil
}

func (s *raceStore) BreakClaim(key, owner string, since time.Time) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.breaks = append(s.breaks, fmt.Sprintf("%s@%s", owner, since.UTC().Format(time.RFC3339)))
	if s.owner != owner || !s.since.Equal(since) {
		return false, nil
	}
	s.owner, s.since = "", time.Time{}
	return true, nil
}

// TestPublishRefusesToBreakFreshClaim is the regression test for the
// check-then-act race in Worker.publish: it used to break a stale claim with
// an unconditional Release, which could destroy a *fresh* claim taken by a
// live worker in the window after the staleness check. The conditional
// BreakClaim must refuse, leave the fresh claim standing, and the worker
// must fall through to adopting the fresh holder's published artefact.
func TestPublishRefusesToBreakFreshClaim(t *testing.T) {
	clock := NewFakeClock(t0)
	staleSince := t0.Add(-time.Hour)
	store := &raceStore{owner: "dead", since: staleSince}
	store.afterInfo = func(s *raceStore) {
		// The race window: the stale holder's claim is reaped elsewhere and
		// live worker w9 takes a fresh one, publishing shortly after.
		s.mu.Lock()
		s.owner, s.since = "w9", t0
		s.data = []byte("artefact-from-w9")
		s.mu.Unlock()
	}
	w := NewWorker(WorkerConfig{ID: "w0"}, nil, store, nil, nil, clock, nil)

	if err := w.publish(Cell{Index: 0, Key: "k"}, []byte("artefact-from-w0")); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if store.releases != 0 {
		t.Fatalf("publish released %d claims it did not hold; the conditional break must never touch a fresh claim", store.releases)
	}
	if want := []string{"dead@" + staleSince.UTC().Format(time.RFC3339)}; len(store.breaks) != 1 || store.breaks[0] != want[0] {
		t.Fatalf("breaks = %v, want exactly %v", store.breaks, want)
	}
	if store.owner != "w9" {
		t.Fatalf("fresh claim owner = %q, want w9 still holding", store.owner)
	}
	if store.puts != 0 {
		t.Fatalf("puts = %d; the worker must adopt w9's artefact, not overwrite mid-claim", store.puts)
	}
}

// TestPublishStillBreaksGenuinelyStaleClaim pins the other side: when the
// stale claim really is the current one, the conditional break succeeds and
// the worker goes on to publish under its own claim.
func TestPublishStillBreaksGenuinelyStaleClaim(t *testing.T) {
	clock := NewFakeClock(t0)
	store := &raceStore{owner: "dead", since: t0.Add(-time.Hour)}
	w := NewWorker(WorkerConfig{ID: "w0"}, nil, store, nil, nil, clock, nil)

	if err := w.publish(Cell{Index: 0, Key: "k"}, []byte("artefact")); err != nil {
		t.Fatalf("publish: %v", err)
	}
	if len(store.breaks) != 1 {
		t.Fatalf("breaks = %v, want the stale claim broken once", store.breaks)
	}
	if store.puts != 1 || string(store.data) != "artefact" {
		t.Fatalf("puts = %d data = %q; want the artefact published after the break", store.puts, store.data)
	}
	if store.releases != 1 || store.owner != "" {
		t.Fatalf("releases = %d owner = %q; want the worker's own claim released", store.releases, store.owner)
	}
}

// flakyTransport fails every Claim except one mid-run success, counting
// attempts.
type flakyTransport struct {
	mu      sync.Mutex
	claims  int
	okClaim int // claim number that succeeds (with an empty "nothing claimable" reply)
}

func (f *flakyTransport) Claim(ClaimRequest) (ClaimReply, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.claims++
	if f.claims == f.okClaim {
		return ClaimReply{}, nil
	}
	return ClaimReply{}, fmt.Errorf("%w: injected", ErrLost)
}

func (f *flakyTransport) Heartbeat(HeartbeatRequest) (HeartbeatReply, error) {
	return HeartbeatReply{}, fmt.Errorf("%w: injected", ErrLost)
}

func (f *flakyTransport) Complete(CompleteRequest) (CompleteReply, error) {
	return CompleteReply{}, fmt.Errorf("%w: injected", ErrLost)
}

func (f *flakyTransport) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.claims
}

// TestWorkerGivesUpWhenCoordinatorUnreachable proves the supervision signal:
// a worker whose every transport call fails for GiveUp exits with
// ErrUnreachable instead of polling forever — and a single successful call
// resets the deadline.
func TestWorkerGivesUpWhenCoordinatorUnreachable(t *testing.T) {
	clock := NewFakeClock(t0)
	tr := &flakyTransport{okClaim: 6}
	w := NewWorker(WorkerConfig{
		ID: "w0", Poll: time.Second, GiveUp: 10 * time.Second,
	}, tr, nil, nil, nil, clock, nil)

	errCh := make(chan error, 1)
	go func() { errCh <- w.Run() }()

	for {
		select {
		case err := <-errCh:
			if !errors.Is(err, ErrUnreachable) {
				t.Fatalf("Run: %v, want ErrUnreachable", err)
			}
			// Claim n happens at fake time t0+(n-1)s. Claim 6 succeeds at
			// +5s and resets the deadline, so the worker must survive past
			// the original +10s mark and give up only at +15s — claim 16.
			if got := tr.count(); got != 16 {
				t.Fatalf("claims = %d, want 16 (success at claim 6 must reset the give-up deadline)", got)
			}
			return
		default:
		}
		if pendingWaiters(clock) > 0 {
			clock.Advance(time.Second)
		}
		runtime.Gosched()
	}
}
