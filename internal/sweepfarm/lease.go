package sweepfarm

import (
	"time"

	"mlorass/internal/rng"
)

// Cell is one unit of sweep work. Index is its position in the sweep's
// deterministic enumeration order (results are assembled by index, never by
// completion order). Key is the cell's content address in the artefact
// store; an empty Key marks an uncacheable cell whose artefact travels
// inline in the completion message instead. Label names the cell in events
// and gap reports.
type Cell struct {
	Index int
	Key   string
	Label string
}

// LeaseConfig tunes the lease state machine.
type LeaseConfig struct {
	// TTL is how long a lease lives between heartbeats; an expired lease
	// frees its cell for re-claiming. Zero means 30 seconds.
	TTL time.Duration
	// MaxAttempts is the number of failed attempts (explicit failures,
	// corrupt artefacts, or expired leases) after which a cell is
	// quarantined instead of retried. Zero means 4.
	MaxAttempts int
	// BackoffBase scales the exponential retry backoff: a cell that has
	// failed n times is not re-leased until base·2^(n-1) plus jitter in
	// [0, base) has passed. Zero means 250 ms.
	BackoffBase time.Duration
	// BackoffMax caps the exponential backoff. Zero means 30 seconds.
	BackoffMax time.Duration
	// MaxPerWorker bounds the live leases any one worker may hold — the
	// farm's backpressure: a worker cannot strip-mine the queue and then
	// crash with half the sweep leased. Zero means 2.
	MaxPerWorker int
	// Seed feeds the deterministic jitter stream.
	Seed uint64
}

// withDefaults fills zero fields.
func (c LeaseConfig) withDefaults() LeaseConfig {
	if c.TTL <= 0 {
		c.TTL = 30 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 250 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 30 * time.Second
	}
	if c.MaxPerWorker <= 0 {
		c.MaxPerWorker = 2
	}
	return c
}

// cellState is the lease table's per-cell lifecycle.
type cellState uint8

const (
	statePending     cellState = iota // waiting to be leased (possibly backing off)
	stateLeased                       // held by a live lease
	stateDone                         // artefact verified and absorbed
	stateQuarantined                  // failed MaxAttempts times; reported as a gap
)

// cellRec is the lease table's bookkeeping for one cell.
type cellRec struct {
	state    cellState
	attempts int // failed attempts so far
	leaseID  uint64
	worker   string
	expiry   time.Time // lease deadline (leased cells)
	retryAt  time.Time // backoff gate (pending cells)
	lastErr  string
}

// leaseTable is the pure lease state machine: no goroutines, no clock of
// its own — every transition takes an explicit now, so the property tests
// can drive it through arbitrary schedules. The Coordinator wraps it in a
// mutex.
type leaseTable struct {
	cfg      LeaseConfig
	recs     []cellRec
	leaseSeq uint64
	// open counts cells not yet done or quarantined.
	open int
}

func newLeaseTable(n int, cfg LeaseConfig) *leaseTable {
	return &leaseTable{cfg: cfg.withDefaults(), recs: make([]cellRec, n), open: n}
}

// finished reports whether every cell is done or quarantined.
func (t *leaseTable) finished() bool { return t.open == 0 }

// liveLeases counts worker's unexpired leases at now.
func (t *leaseTable) liveLeases(worker string, now time.Time) int {
	n := 0
	for i := range t.recs {
		r := &t.recs[i]
		if r.state == stateLeased && r.worker == worker && r.expiry.After(now) {
			n++
		}
	}
	return n
}

// claim leases the lowest-index claimable cell to worker: pending, past its
// backoff gate, with the worker under its lease cap. ok is false when
// nothing is claimable right now (all leased, backing off, or finished).
// A pending cell whose backoff gate is still closed is never handed out,
// and a live lease is never stolen — expiry is the only way a leased cell
// returns to the pool.
func (t *leaseTable) claim(worker string, now time.Time) (idx int, leaseID uint64, ok bool) {
	if t.liveLeases(worker, now) >= t.cfg.MaxPerWorker {
		return 0, 0, false
	}
	for i := range t.recs {
		r := &t.recs[i]
		if r.state != statePending || r.retryAt.After(now) {
			continue
		}
		t.leaseSeq++
		r.state = stateLeased
		r.leaseID = t.leaseSeq
		r.worker = worker
		r.expiry = now.Add(t.cfg.TTL)
		return i, r.leaseID, true
	}
	return 0, 0, false
}

// heartbeat extends the lease's deadline; ok is false for a stale lease
// (expired, superseded, or the cell already done).
func (t *leaseTable) heartbeat(leaseID uint64, now time.Time) bool {
	for i := range t.recs {
		r := &t.recs[i]
		if r.state == stateLeased && r.leaseID == leaseID {
			r.expiry = now.Add(t.cfg.TTL)
			return true
		}
	}
	return false
}

// completeOK marks cell idx done. The first call transitions the cell and
// returns first=true; every later call (a duplicate completion after a lost
// ack, a zombie whose lease expired) is a no-op with first=false — the
// exactly-once half of the protocol.
func (t *leaseTable) completeOK(idx int) (first bool) {
	r := &t.recs[idx]
	if r.state == stateDone {
		return false
	}
	if r.state == stateQuarantined {
		// A late success beats a quarantine verdict: the artefact exists
		// and verified, so the gap closes.
		r.state = stateDone
		r.lastErr = ""
		return true
	}
	r.state = stateDone
	r.leaseID = 0
	r.worker = ""
	t.open--
	return true
}

// completeFail records a failed attempt on cell idx (an explicit compute
// failure or a corrupt artefact) and either schedules a backed-off retry or
// quarantines the cell. Failures reported against a stale lease are ignored
// — the cell has already moved on. quarantined reports a transition into
// quarantine.
func (t *leaseTable) completeFail(idx int, leaseID uint64, errMsg string, now time.Time) (counted, quarantined bool) {
	r := &t.recs[idx]
	if r.state != stateLeased || r.leaseID != leaseID {
		return false, false
	}
	return true, t.failAttempt(idx, errMsg, now)
}

// expire sweeps the table at now: every leased cell whose deadline has
// passed counts a failed attempt and is retried or quarantined. The
// callback receives each expiry (for events); it may be nil.
func (t *leaseTable) expire(now time.Time, fn func(idx int, worker string, quarantined bool)) {
	for i := range t.recs {
		r := &t.recs[i]
		if r.state != stateLeased || r.expiry.After(now) {
			continue
		}
		worker := r.worker
		q := t.failAttempt(i, "lease expired (worker lost?)", now)
		if fn != nil {
			fn(i, worker, q)
		}
	}
}

// failAttempt moves a leased cell through one failure: attempts++, then
// quarantine at the cap or pending with an exponential backoff gate.
func (t *leaseTable) failAttempt(idx int, errMsg string, now time.Time) (quarantined bool) {
	r := &t.recs[idx]
	r.attempts++
	r.leaseID = 0
	r.worker = ""
	r.lastErr = errMsg
	if r.attempts >= t.cfg.MaxAttempts {
		r.state = stateQuarantined
		t.open--
		return true
	}
	r.state = statePending
	r.retryAt = now.Add(t.backoff(idx, r.attempts))
	return false
}

// backoff returns base·2^(attempts-1) capped at max, plus deterministic
// jitter in [0, base) keyed by (seed, cell, attempt) — seeded, not sampled
// from a global stream, so a scripted schedule replays exactly.
func (t *leaseTable) backoff(idx, attempts int) time.Duration {
	d := t.cfg.BackoffBase
	for i := 1; i < attempts && d < t.cfg.BackoffMax; i++ {
		d *= 2
	}
	if d > t.cfg.BackoffMax {
		d = t.cfg.BackoffMax
	}
	j := rng.Key2(t.cfg.Seed, uint64(idx), uint64(attempts))
	return d + time.Duration(j%uint64(t.cfg.BackoffBase))
}
