package sweepfarm

import "time"

// ArtifactStore is the farm's view of the content-addressed artefact store.
// *runstore.Store implements it; the fault-injection harness wraps it with
// torn writes and the tests with in-memory fakes. Keys are content
// addresses, so concurrent writers of one key write the same bytes and
// last-write-wins is safe; the advisory claim keeps a torn writer (a
// non-atomic filesystem, a crashed process) from interleaving with a
// reader.
type ArtifactStore interface {
	// Get returns the artefact under key; ok=false when absent.
	Get(key string) (data []byte, ok bool, err error)
	// Put persists data under key atomically.
	Put(key string, data []byte) error
	// Claim takes the advisory per-key write claim for owner; ok=false
	// when another owner holds it.
	Claim(key, owner string) (ok bool, err error)
	// Release drops the advisory claim on key (any owner's; the caller's
	// own claim on the happy path).
	Release(key string) error
	// ClaimInfo reports the current claim holder and when the claim was
	// taken; held=false when the key is unclaimed.
	ClaimInfo(key string) (owner string, since time.Time, held bool, err error)
	// BreakClaim removes key's claim only if it is still exactly the claim
	// the caller observed via ClaimInfo — same owner, same take time.
	// broken=false means the claim changed hands (or vanished) since the
	// observation, so nothing was removed: the conditional form is what
	// keeps a staleness-based break from destroying a fresh live claim
	// taken in the check-then-act window.
	BreakClaim(key, owner string, since time.Time) (broken bool, err error)
}
