package sweepfarm

import (
	"errors"
	"fmt"
	"time"
)

// Runner computes one cell and returns its artefact bytes. It must be
// deterministic in the cell: two workers (or two attempts) computing the
// same cell produce identical bytes, which is what makes at-least-once
// execution safe under content addressing.
type Runner func(c Cell) ([]byte, error)

// Phase marks the worker checkpoints the fault-injection harness can crash
// at — the three windows a real process death lands in.
type Phase uint8

const (
	// PhasePreClaim: before asking for a lease (nothing held).
	PhasePreClaim Phase = iota
	// PhaseMidCompute: lease held, artefact not yet written.
	PhaseMidCompute
	// PhasePostWrite: artefact durably written, completion not yet acked —
	// the window that forces duplicate-completion handling.
	PhasePostWrite
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhasePreClaim:
		return "pre-claim"
	case PhaseMidCompute:
		return "mid-compute"
	case PhasePostWrite:
		return "post-write"
	default:
		return fmt.Sprintf("Phase(%d)", uint8(p))
	}
}

// Hooks intercepts worker checkpoints. Returning an error aborts the worker
// immediately — the injected analogue of kill -9 at that instant. A nil
// Hooks runs fault-free. Implementations may also stall (via their own
// clock) to model slow workers.
type Hooks interface {
	Phase(worker string, p Phase, c Cell) error
}

// ErrCrashed is returned by Worker.Run when a hook aborted it.
var ErrCrashed = errors.New("sweepfarm: worker crashed (injected)")

// ErrUnreachable is returned by Worker.Run when every transport call has
// failed for longer than WorkerConfig.GiveUp: the coordinator is presumed
// gone and the worker process should exit rather than poll forever.
var ErrUnreachable = errors.New("sweepfarm: coordinator unreachable")

// WorkerConfig tunes one worker process.
type WorkerConfig struct {
	// ID names the worker in leases and events.
	ID string
	// Concurrency is the number of cells computed at once — the worker's
	// in-flight bound (backpressure; the coordinator also caps leases per
	// worker). Zero means 1.
	Concurrency int
	// Heartbeat is the lease-extension period; zero derives TTL/3 from
	// each granted lease.
	Heartbeat time.Duration
	// Poll is the idle wait when no cell is claimable or the transport
	// errored. Zero means 50 ms.
	Poll time.Duration
	// SendRetries is how many times a completion report is re-sent
	// through a lossy transport before the worker gives up and lets the
	// lease expire instead. Zero means 3.
	SendRetries int
	// ClaimStale is the age past which another writer's advisory store
	// claim is presumed crashed and broken. Zero means 1 minute.
	ClaimStale time.Duration
	// GiveUp is how long the worker tolerates nothing but transport
	// failures before concluding the coordinator is gone and exiting with
	// ErrUnreachable — the supervision signal for a worker process whose
	// coordinator died or was partitioned away. Zero means never give up
	// (an in-process coordinator cannot vanish).
	GiveUp time.Duration
}

func (c WorkerConfig) withDefaults() WorkerConfig {
	if c.Concurrency <= 0 {
		c.Concurrency = 1
	}
	if c.Poll <= 0 {
		c.Poll = 50 * time.Millisecond
	}
	if c.SendRetries <= 0 {
		c.SendRetries = 3
	}
	if c.ClaimStale <= 0 {
		c.ClaimStale = time.Minute
	}
	return c
}

// Worker claims cells, computes them, publishes artefacts through the
// store's atomic-write path under an advisory claim, and reports
// completion; heartbeats stream while a cell computes. Transport, store,
// clock and hooks are all injectable.
type Worker struct {
	cfg    WorkerConfig
	coord  Transport
	store  ArtifactStore
	run    Runner
	verify Verify
	clock  Clock
	hooks  Hooks
}

// NewWorker wires a worker. store may be nil only if every cell is keyless.
// A nil clock means the wall clock; a nil hooks runs fault-free.
func NewWorker(cfg WorkerConfig, coord Transport, store ArtifactStore, run Runner, verify Verify, clock Clock, hooks Hooks) *Worker {
	if clock == nil {
		clock = Wall()
	}
	return &Worker{cfg: cfg.withDefaults(), coord: coord, store: store, run: run, verify: verify, clock: clock, hooks: hooks}
}

// Run processes cells until the coordinator reports the sweep finished
// (returns nil) or an injected crash aborts the worker (ErrCrashed). With
// Concurrency > 1 it runs that many claim loops; a crash in any slot downs
// the whole worker, as a process death would.
func (w *Worker) Run() error {
	n := w.cfg.Concurrency
	if n == 1 {
		return w.slot()
	}
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() { errCh <- w.slot() }()
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errCh; err != nil && first == nil {
			first = err
			// A crash is process-wide; remaining slots are abandoned (in
			// reality they died with the process — their leases expire).
			return first
		}
	}
	return first
}

// slot is one claim-compute-complete loop.
func (w *Worker) slot() error {
	lastOK := w.clock.Now()
	for {
		if err := w.phase(PhasePreClaim, Cell{Index: -1}); err != nil {
			return err
		}
		rep, err := w.coord.Claim(ClaimRequest{Worker: w.cfg.ID})
		if err != nil {
			if w.cfg.GiveUp > 0 && w.clock.Now().Sub(lastOK) >= w.cfg.GiveUp {
				return fmt.Errorf("%w: no successful call for %v (last transport error: %v)",
					ErrUnreachable, w.cfg.GiveUp, err)
			}
			w.sleep(w.cfg.Poll)
			continue
		}
		lastOK = w.clock.Now()
		if rep.Done {
			return nil
		}
		if !rep.OK {
			w.sleep(w.cfg.Poll)
			continue
		}
		if err := w.process(rep); err != nil {
			return err
		}
		lastOK = w.clock.Now()
	}
}

// process computes and reports one leased cell.
func (w *Worker) process(lease ClaimReply) error {
	cell := lease.Cell
	stopHB := w.startHeartbeats(lease)
	defer stopHB()

	req := CompleteRequest{Worker: w.cfg.ID, LeaseID: lease.LeaseID, Cell: cell}
	data, cached, err := w.obtain(cell)
	switch {
	case errors.Is(err, ErrCrashed):
		return err
	case err != nil:
		req.Failed = err.Error()
	default:
		req.Cached = cached
		switch {
		case cell.Key == "":
			req.Artifact = data
		case w.store == nil:
			// A keyed cell needs the shared store to carry its artefact; a
			// worker started without one (a misconfigured remote process)
			// must fail the attempt loudly, not panic in publish.
			req.Failed = fmt.Sprintf("cell %d is store-backed (key %.12s…) but this worker has no artefact store", cell.Index, cell.Key)
		case !cached:
			if err := w.publish(cell, data); err != nil {
				req.Failed = fmt.Sprintf("publishing artefact: %v", err)
			}
		}
	}
	if req.Failed == "" {
		// The artefact is durable (or inline); the crash window between
		// write and ack is the classic duplicate-completion producer.
		if err := w.phase(PhasePostWrite, cell); err != nil {
			return err
		}
	}
	// Report through a possibly lossy transport: retry a few times, then
	// give up and let the lease expire (the sweep still converges — the
	// cell is re-leased and its artefact found in the store).
	for try := 0; ; try++ {
		if _, err := w.coord.Complete(req); err == nil {
			return nil
		}
		if try >= w.cfg.SendRetries {
			return nil
		}
		w.sleep(w.cfg.Poll)
	}
}

// obtain produces the cell's artefact: from the store when a verified copy
// already exists (resume, or another worker won the race), otherwise by
// computing it.
func (w *Worker) obtain(cell Cell) (data []byte, cached bool, err error) {
	if cell.Key != "" && w.store != nil {
		if d, ok, _ := w.store.Get(cell.Key); ok && w.verifyOK(cell, d) {
			return d, true, nil
		}
	}
	if err := w.phase(PhaseMidCompute, cell); err != nil {
		return nil, false, err
	}
	d, err := w.run(cell)
	if err != nil {
		return nil, false, err
	}
	return d, false, nil
}

// publish writes the artefact under the store's advisory claim so a torn
// writer can never interleave with a reader: take the claim, atomic-write,
// release. A competing live claim is waited out (its writer is computing
// the same bytes); a stale claim — older than ClaimStale on this worker's
// clock — is presumed crashed and broken.
func (w *Worker) publish(cell Cell, data []byte) error {
	for {
		ok, err := w.store.Claim(cell.Key, w.cfg.ID)
		if err != nil {
			return err
		}
		if ok {
			err := w.store.Put(cell.Key, data)
			if rerr := w.store.Release(cell.Key); err == nil {
				err = rerr
			}
			return err
		}
		// Someone else holds the claim. If their write already landed and
		// verifies, the cell is published; otherwise wait or break a
		// stale claim.
		if d, found, _ := w.store.Get(cell.Key); found && w.verifyOK(cell, d) {
			return nil
		}
		if owner, since, held, _ := w.store.ClaimInfo(cell.Key); held && w.clock.Now().Sub(since) > w.cfg.ClaimStale {
			// Break exactly the claim observed stale — conditionally. In the
			// window between the observation and the break, the holder may
			// release and another worker take a *fresh* claim; an
			// unconditional Release here would destroy that live claim
			// mid-write. BreakClaim compares owner + take time and refuses
			// if the claim is no longer the one that went stale; either way
			// the loop re-reads the world and retries.
			if _, err := w.store.BreakClaim(cell.Key, owner, since); err != nil {
				return err
			}
			continue
		}
		w.sleep(w.cfg.Poll)
	}
}

// verifyOK applies the verifier (nil verifier accepts everything).
func (w *Worker) verifyOK(cell Cell, data []byte) bool {
	return w.verify == nil || w.verify(cell, data) == nil
}

// startHeartbeats extends the lease on a period well inside its TTL until
// the returned stop is called. Heartbeat failures are ignored: a stale
// lease just means another worker took over, and the completion protocol
// already tolerates that. A configured period at or past the lease TTL is
// clamped to TTL/3: honouring it would guarantee every lease expires
// mid-compute and the sweep would thrash through retries without ever
// being told why.
func (w *Worker) startHeartbeats(lease ClaimReply) (stop func()) {
	period := heartbeatPeriod(w.cfg.Heartbeat, lease.TTL)
	stopCh := make(chan struct{})
	doneCh := make(chan struct{})
	go func() {
		defer close(doneCh)
		for {
			select {
			case <-stopCh:
				return
			case <-w.clock.After(period):
				_, _ = w.coord.Heartbeat(HeartbeatRequest{
					Worker: w.cfg.ID, LeaseID: lease.LeaseID, SentAt: w.clock.Now()})
			}
		}
	}()
	return func() {
		close(stopCh)
		<-doneCh
	}
}

// heartbeatPeriod resolves the configured heartbeat period against the lease
// TTL it must keep alive. A period at or past the TTL can never land a beat
// in time, so it is clamped to TTL/3 (as is an unset period); with no TTL to
// derive from either, a one-second default applies.
func heartbeatPeriod(configured, ttl time.Duration) time.Duration {
	period := configured
	if period <= 0 || (ttl > 0 && period >= ttl) {
		period = ttl / 3
	}
	if period <= 0 {
		period = time.Second
	}
	return period
}

// phase runs the crash hook.
func (w *Worker) phase(p Phase, c Cell) error {
	if w.hooks == nil {
		return nil
	}
	if err := w.hooks.Phase(w.cfg.ID, p, c); err != nil {
		return fmt.Errorf("%w: %s at %s", ErrCrashed, w.cfg.ID, p)
	}
	return nil
}

// sleep waits d on the worker's clock.
func (w *Worker) sleep(d time.Duration) { <-w.clock.After(d) }
