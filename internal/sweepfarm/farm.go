package sweepfarm

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// FarmConfig wires a coordinator and a pool of in-process workers.
type FarmConfig struct {
	// Workers is the pool size. Zero means 1.
	Workers int
	// Worker is the per-worker template (ID is assigned per worker).
	Worker WorkerConfig
	// Lease tunes the coordinator's lease state machine.
	Lease LeaseConfig
	// Verify gates every completion; Absorb receives each verified
	// artefact exactly once; Events observes transitions.
	Verify Verify
	Absorb Absorb
	Events func(Event)
	// Hooks injects worker crashes/stalls (nil = fault-free).
	Hooks Hooks
	// WrapTransport wraps the coordinator as seen by workers (nil =
	// direct calls); the fault injector scripts message loss, duplication
	// and delay here.
	WrapTransport func(Transport) Transport
	// WorkerClock supplies worker i's clock (nil = the farm clock); the
	// harness skews individual workers here.
	WorkerClock func(i int) Clock
	// Respawn restarts crashed workers (a supervisor), so scripted
	// crashes cannot strand the sweep. Without it, a farm whose workers
	// all die returns an error with the sweep incomplete.
	Respawn bool
}

// Farm is a wired coordinator plus worker pool.
type Farm struct {
	coord *Coordinator
	cfg   FarmConfig
	cells []Cell
	run   Runner
	store ArtifactStore
	clock Clock
	// crashes counts worker deaths observed by the supervisor.
	crashes atomic.Int64
}

// New builds a farm over the sweep's cells. The coordinator immediately
// recovers any progress already in the store (the restart path); Run then
// executes the remainder.
func New(cells []Cell, run Runner, store ArtifactStore, clock Clock, cfg FarmConfig) (*Farm, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if clock == nil {
		clock = Wall()
	}
	coord, err := NewCoordinator(cells, store, clock, CoordConfig{
		Lease: cfg.Lease, Verify: cfg.Verify, Absorb: cfg.Absorb, Events: cfg.Events})
	if err != nil {
		return nil, err
	}
	return &Farm{coord: coord, cfg: cfg, cells: cells, run: run, store: store, clock: clock}, nil
}

// Coordinator exposes the farm's coordinator (report, inline artefacts,
// done channel).
func (f *Farm) Coordinator() *Coordinator { return f.coord }

// newWorker builds worker i over the (possibly wrapped) transport.
func (f *Farm) newWorker(i int) *Worker {
	wc := f.cfg.Worker
	wc.ID = fmt.Sprintf("w%d", i)
	var t Transport = f.coord
	if f.cfg.WrapTransport != nil {
		t = f.cfg.WrapTransport(t)
	}
	clock := f.clock
	if f.cfg.WorkerClock != nil {
		if c := f.cfg.WorkerClock(i); c != nil {
			clock = c
		}
	}
	return NewWorker(wc, t, f.store, f.run, f.cfg.Verify, clock, f.cfg.Hooks)
}

// Run executes the sweep to completion: every cell done or quarantined.
// Crashed workers are respawned when configured; otherwise, if every worker
// dies with cells still open, Run returns an error alongside the report of
// whatever was salvaged.
func (f *Farm) Run() (Report, error) {
	type exit struct {
		i   int
		err error
	}
	exits := make(chan exit)
	launch := func(i int) {
		w := f.newWorker(i)
		go func() { exits <- exit{i, w.Run()} }()
	}
	live := f.cfg.Workers
	for i := 0; i < f.cfg.Workers; i++ {
		launch(i)
	}
	for live > 0 {
		e := <-exits
		if errors.Is(e.err, ErrCrashed) {
			f.crashes.Add(1)
			if f.cfg.Respawn {
				// The supervisor restarts the worker after an idle beat,
				// as a process manager would.
				go func(i int) {
					<-f.clock.After(f.cfg.Worker.withDefaults().Poll)
					launch(i)
				}(e.i)
				continue
			}
		}
		live--
	}
	rep := f.Report()
	select {
	case <-f.coord.DoneCh():
		return rep, nil
	default:
		return rep, fmt.Errorf("sweepfarm: all workers exited with %d of %d cells still open",
			rep.Cells-rep.Done-len(rep.Quarantined), rep.Cells)
	}
}

// Report reads the coordinator's bookkeeping plus the supervisor's crash
// count.
func (f *Farm) Report() Report {
	rep := f.coord.Report()
	rep.Crashes = int(f.crashes.Load())
	return rep
}
