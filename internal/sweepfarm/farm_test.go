package sweepfarm_test

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"mlorass/internal/runstore"
	"mlorass/internal/sweepfarm"
	"mlorass/internal/sweepfarm/faultinject"
)

// artifactFor is the deterministic toy runner's output for a cell: the same
// bytes on every attempt, on every worker — the property that makes
// at-least-once execution safe. The trailing marker makes any torn prefix
// fail verification.
func artifactFor(c sweepfarm.Cell) []byte {
	return []byte(fmt.Sprintf("{\"cell\":%d,\"label\":%q,\"value\":%d,\"eof\":\"#\"}",
		c.Index, c.Label, (c.Index+1)*41))
}

func verifyCell(c sweepfarm.Cell, data []byte) error {
	if !bytes.Equal(data, artifactFor(c)) {
		return fmt.Errorf("artefact for cell %d is damaged (%d bytes)", c.Index, len(data))
	}
	return nil
}

func newCells(n int) []sweepfarm.Cell {
	cells := make([]sweepfarm.Cell, n)
	for i := range cells {
		label := fmt.Sprintf("cell-%02d", i)
		cells[i] = sweepfarm.Cell{
			Index: i,
			Key:   runstore.Key([]byte("sweepfarm_test:" + label)),
			Label: label,
		}
	}
	return cells
}

// expectedFor is what a fault-free serial sweep produces: the convergence
// target every fault schedule is checked against.
func expectedFor(cells []sweepfarm.Cell) map[int][]byte {
	want := map[int][]byte{}
	for _, c := range cells {
		want[c.Index] = artifactFor(c)
	}
	return want
}

// recorder collects absorbed artefacts and coordinator events, and enforces
// the exactly-once merge: a second absorption of any cell fails the test.
type recorder struct {
	t      *testing.T
	mu     sync.Mutex
	got    map[int][]byte
	counts map[int]int
	events []sweepfarm.Event
}

func newRecorder(t *testing.T) *recorder {
	return &recorder{t: t, got: map[int][]byte{}, counts: map[int]int{}}
}

func (r *recorder) absorb(c sweepfarm.Cell, data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counts[c.Index]++
	if r.counts[c.Index] > 1 {
		r.t.Errorf("cell %d absorbed %d times; merge must be exactly-once", c.Index, r.counts[c.Index])
	}
	r.got[c.Index] = append([]byte(nil), data...)
	return nil
}

func (r *recorder) event(e sweepfarm.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

func (r *recorder) countKind(k sweepfarm.EventKind) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == k {
			n++
		}
	}
	return n
}

func (r *recorder) countExpired() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Expired {
			n++
		}
	}
	return n
}

func (r *recorder) countCached() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Kind == sweepfarm.EventDone && e.Cached {
			n++
		}
	}
	return n
}

// assertConverged checks the run produced exactly the fault-free result.
func (r *recorder) assertConverged(t *testing.T, cells []sweepfarm.Cell) {
	t.Helper()
	r.mu.Lock()
	defer r.mu.Unlock()
	want := expectedFor(cells)
	if len(r.got) != len(want) {
		t.Fatalf("absorbed %d cells, want %d", len(r.got), len(want))
	}
	for idx, w := range want {
		if !bytes.Equal(r.got[idx], w) {
			t.Fatalf("cell %d bytes diverged from the fault-free run:\n got %q\nwant %q", idx, r.got[idx], w)
		}
	}
}

// fast lease/worker configs: real wall clock, small enough that expiry paths
// run in milliseconds.
func fastLease() sweepfarm.LeaseConfig {
	return sweepfarm.LeaseConfig{
		TTL:         60 * time.Millisecond,
		MaxAttempts: 4,
		BackoffBase: 2 * time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		Seed:        7,
	}
}

func fastWorker() sweepfarm.WorkerConfig {
	return sweepfarm.WorkerConfig{
		Poll:        2 * time.Millisecond,
		SendRetries: 3,
		ClaimStale:  250 * time.Millisecond,
	}
}

type farmOpts struct {
	workers     int
	respawn     bool
	inj         *faultinject.Injector
	run         sweepfarm.Runner
	workerClock func(i int) sweepfarm.Clock
	lease       *sweepfarm.LeaseConfig
	worker      *sweepfarm.WorkerConfig
}

// runFarm builds and runs a farm over store with the fast test timings,
// returning the recorder, the final report and Run's error.
func runFarm(t *testing.T, cells []sweepfarm.Cell, store sweepfarm.ArtifactStore, o farmOpts) (*recorder, sweepfarm.Report, error) {
	t.Helper()
	rec := newRecorder(t)
	run := o.run
	if run == nil {
		run = func(c sweepfarm.Cell) ([]byte, error) { return artifactFor(c), nil }
	}
	lease := fastLease()
	if o.lease != nil {
		lease = *o.lease
	}
	worker := fastWorker()
	if o.worker != nil {
		worker = *o.worker
	}
	cfg := sweepfarm.FarmConfig{
		Workers:     o.workers,
		Worker:      worker,
		Lease:       lease,
		Verify:      verifyCell,
		Absorb:      rec.absorb,
		Events:      rec.event,
		Respawn:     o.respawn,
		WorkerClock: o.workerClock,
	}
	if o.inj != nil {
		cfg.Hooks = o.inj.Hooks()
		cfg.WrapTransport = o.inj.WrapTransport
		if store != nil {
			store = o.inj.WrapStore(store)
		}
	}
	farm, err := sweepfarm.New(cells, run, store, nil, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := farm.Run()
	return rec, rep, err
}

func openStore(t *testing.T) *runstore.Store {
	t.Helper()
	s, err := runstore.Open(t.TempDir())
	if err != nil {
		t.Fatalf("runstore.Open: %v", err)
	}
	return s
}

func TestFarmFaultFreeMatchesSerial(t *testing.T) {
	cells := newCells(8)
	// Serial: one worker, no faults.
	serial, repS, err := runFarm(t, cells, openStore(t), farmOpts{workers: 1})
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	serial.assertConverged(t, cells)
	// Parallel: four workers over a fresh store must produce the same bytes.
	par, repP, err := runFarm(t, cells, openStore(t), farmOpts{workers: 4})
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	par.assertConverged(t, cells)
	if repS.Done != len(cells) || repP.Done != len(cells) {
		t.Fatalf("Done = %d / %d, want %d", repS.Done, repP.Done, len(cells))
	}
	if len(repP.Quarantined) != 0 || repP.Crashes != 0 {
		t.Fatalf("fault-free run reported quarantines=%d crashes=%d", len(repP.Quarantined), repP.Crashes)
	}
}

func TestFarmKeylessCellsTravelInline(t *testing.T) {
	cells := make([]sweepfarm.Cell, 4)
	for i := range cells {
		cells[i] = sweepfarm.Cell{Index: i, Label: fmt.Sprintf("inline-%d", i)}
	}
	rec, rep, err := runFarm(t, cells, nil, farmOpts{workers: 2})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rec.assertConverged(t, cells)
	if rep.Done != len(cells) {
		t.Fatalf("Done = %d, want %d", rep.Done, len(cells))
	}
}

// TestFarmCrashAtEachPhase kills a worker at each checkpoint — before
// claiming, mid-compute with the lease held, and after the durable write but
// before the ack — and proves the supervisor + lease expiry recover every
// time with the fault-free result.
func TestFarmCrashAtEachPhase(t *testing.T) {
	for _, phase := range []sweepfarm.Phase{
		sweepfarm.PhasePreClaim, sweepfarm.PhaseMidCompute, sweepfarm.PhasePostWrite,
	} {
		phase := phase
		t.Run(phase.String(), func(t *testing.T) {
			t.Parallel()
			cells := newCells(6)
			inj := faultinject.New(nil).Crash("", phase, 2)
			rec, rep, err := runFarm(t, cells, openStore(t), farmOpts{
				workers: 2, respawn: true, inj: inj})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			rec.assertConverged(t, cells)
			if got := inj.Stats().Crashes; got != 1 {
				t.Fatalf("injected crashes = %d, want 1 (the schedule did not fire)", got)
			}
			if rep.Crashes < 1 {
				t.Fatalf("supervisor observed %d crashes, want >= 1", rep.Crashes)
			}
			if phase == sweepfarm.PhasePostWrite {
				// The artefact was durable before the crash: recovery must
				// find it in the store (a cached completion or a duplicate),
				// never recompute into a divergent result.
				if rec.countCached()+rec.countKind(sweepfarm.EventDuplicate) == 0 {
					t.Fatal("post-write crash recovered without a cached/duplicate completion")
				}
			}
		})
	}
}

// TestFarmDroppedCompleteReply loses the acknowledgement of a completion:
// the worker cannot tell its report was processed, re-sends it, and the
// coordinator dedupes the duplicate.
func TestFarmDroppedCompleteReply(t *testing.T) {
	cells := newCells(6)
	inj := faultinject.New(nil).Message(faultinject.OpComplete, "", 2, faultinject.DropReply, 0)
	rec, rep, err := runFarm(t, cells, openStore(t), farmOpts{workers: 2, inj: inj})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rec.assertConverged(t, cells)
	if inj.Stats().DroppedReplies != 1 {
		t.Fatalf("dropped replies = %d, want 1", inj.Stats().DroppedReplies)
	}
	if rec.countKind(sweepfarm.EventDuplicate) < 1 {
		t.Fatal("re-sent completion was not observed as a duplicate")
	}
	if rep.Done != len(cells) {
		t.Fatalf("Done = %d, want %d", rep.Done, len(cells))
	}
}

// TestFarmDuplicatedComplete delivers one completion twice at the transport
// layer; the merge stays exactly-once.
func TestFarmDuplicatedComplete(t *testing.T) {
	cells := newCells(6)
	inj := faultinject.New(nil).Message(faultinject.OpComplete, "", 1, faultinject.Duplicate, 0)
	rec, _, err := runFarm(t, cells, openStore(t), farmOpts{workers: 2, inj: inj})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rec.assertConverged(t, cells)
	if inj.Stats().Duplicated != 1 {
		t.Fatalf("duplicated messages = %d, want 1", inj.Stats().Duplicated)
	}
	if rec.countKind(sweepfarm.EventDuplicate) < 1 {
		t.Fatal("duplicated completion was not observed as a duplicate")
	}
}

// TestFarmTornWriteRecovered tears an artefact write — a prefix lands and
// the writer is told it succeeded. The coordinator's re-read + re-verify
// catches it, costs the attempt, and the recompute repairs the store.
func TestFarmTornWriteRecovered(t *testing.T) {
	cells := newCells(6)
	store := openStore(t)
	inj := faultinject.New(nil).TearWrite("", 1, 0.5)
	rec, rep, err := runFarm(t, cells, store, farmOpts{workers: 2, inj: inj})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rec.assertConverged(t, cells)
	if inj.Stats().TornWrites != 1 {
		t.Fatalf("torn writes = %d, want 1", inj.Stats().TornWrites)
	}
	if rec.countKind(sweepfarm.EventRetry) < 1 {
		t.Fatal("torn write did not cost a retry")
	}
	if rep.Done != len(cells) {
		t.Fatalf("Done = %d, want %d", rep.Done, len(cells))
	}
	// The store must hold the repaired, whole artefact for every cell.
	for _, c := range cells {
		data, ok, err := store.Get(c.Key)
		if err != nil || !ok {
			t.Fatalf("cell %d missing from store after run (ok=%v err=%v)", c.Index, ok, err)
		}
		if err := verifyCell(c, data); err != nil {
			t.Fatalf("store still torn after run: %v", err)
		}
	}
}

// TestFarmSlowWorkerLeaseExpires stalls a worker mid-compute for longer than
// the lease TTL while every heartbeat is dropped in flight (a live but
// partitioned worker: its keepalives never arrive, so the lease genuinely
// dies). The cell is re-leased and completed elsewhere; the zombie's late
// completion is deduped.
func TestFarmSlowWorkerLeaseExpires(t *testing.T) {
	cells := newCells(6)
	inj := faultinject.New(nil).
		Stall("", sweepfarm.PhaseMidCompute, 2, 150*time.Millisecond).
		Message(faultinject.OpHeartbeat, "", 0, faultinject.DropRequest, 0)
	rec, rep, err := runFarm(t, cells, openStore(t), farmOpts{
		workers: 2, inj: inj})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rec.assertConverged(t, cells)
	if inj.Stats().Stalls != 1 {
		t.Fatalf("stalls = %d, want 1", inj.Stats().Stalls)
	}
	if rec.countExpired() < 1 {
		t.Fatal("no lease expiry observed despite a stall past the TTL")
	}
	if rep.Done != len(cells) {
		t.Fatalf("Done = %d, want %d", rep.Done, len(cells))
	}
}

// TestFarmClockSkewHarmless runs workers whose clocks are hours off the
// coordinator's in both directions. Lease arithmetic only ever uses the
// coordinator's clock, so the sweep must converge normally.
func TestFarmClockSkewHarmless(t *testing.T) {
	cells := newCells(8)
	skews := []time.Duration{-2 * time.Hour, 3 * time.Hour, 0}
	rec, rep, err := runFarm(t, cells, openStore(t), farmOpts{
		workers: 3,
		workerClock: func(i int) sweepfarm.Clock {
			return sweepfarm.Skewed(sweepfarm.Wall(), skews[i%len(skews)])
		},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rec.assertConverged(t, cells)
	if rep.Done != len(cells) || len(rep.Quarantined) != 0 {
		t.Fatalf("Done=%d Quarantined=%d, want %d/0", rep.Done, len(rep.Quarantined), len(cells))
	}
}

// TestFarmQuarantineReportsGap makes one cell fail every attempt: after
// exactly MaxAttempts it is quarantined and the sweep still terminates, with
// the gap reported explicitly — never silently zeroed.
func TestFarmQuarantineReportsGap(t *testing.T) {
	cells := newCells(6)
	const poison = 2
	lease := fastLease()
	lease.MaxAttempts = 3
	run := func(c sweepfarm.Cell) ([]byte, error) {
		if c.Index == poison {
			return nil, fmt.Errorf("injected permanent failure")
		}
		return artifactFor(c), nil
	}
	rec, rep, err := runFarm(t, cells, openStore(t), farmOpts{
		workers: 2, run: run, lease: &lease})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rep.Done != len(cells)-1 {
		t.Fatalf("Done = %d, want %d", rep.Done, len(cells)-1)
	}
	if len(rep.Quarantined) != 1 {
		t.Fatalf("Quarantined = %v, want exactly the poison cell", rep.Quarantined)
	}
	q := rep.Quarantined[0]
	if q.Cell.Index != poison || q.Attempts != lease.MaxAttempts {
		t.Fatalf("quarantine = cell %d after %d attempts, want cell %d after %d",
			q.Cell.Index, q.Attempts, poison, lease.MaxAttempts)
	}
	if !strings.Contains(q.LastErr, "injected permanent failure") {
		t.Fatalf("quarantine lost the failure cause: %q", q.LastErr)
	}
	gaps := rep.Gaps()
	if !strings.Contains(gaps, "MISSING") || !strings.Contains(gaps, cells[poison].Label) {
		t.Fatalf("gap report does not name the missing cell:\n%s", gaps)
	}
	if rec.countKind(sweepfarm.EventQuarantined) != 1 {
		t.Fatalf("quarantine events = %d, want 1", rec.countKind(sweepfarm.EventQuarantined))
	}
	rec.mu.Lock()
	_, gotPoison := rec.got[poison]
	rec.mu.Unlock()
	if gotPoison {
		t.Fatal("poison cell was absorbed despite failing every attempt")
	}
}

// TestFarmCoordinatorRestartFromStore crashes the whole farm mid-sweep (no
// respawn), then builds a fresh coordinator over the same store: it must
// recover every persisted cell — including the one whose completion was
// never acked — from store state alone and finish the sweep.
func TestFarmCoordinatorRestartFromStore(t *testing.T) {
	cells := newCells(6)
	store := openStore(t)
	// The sole worker dies after durably writing its 3rd artefact, before
	// the ack: two cells acked, one orphaned in the store.
	inj := faultinject.New(nil).Crash("w0", sweepfarm.PhasePostWrite, 3)
	rec1, rep1, err := runFarm(t, cells, store, farmOpts{workers: 1, inj: inj})
	if err == nil {
		t.Fatal("first run succeeded; want an all-workers-dead error")
	}
	if !strings.Contains(err.Error(), "still open") {
		t.Fatalf("first run error = %v, want the still-open report", err)
	}
	if rep1.Done != 2 || rep1.Crashes != 1 {
		t.Fatalf("first run: Done=%d Crashes=%d, want 2/1", rep1.Done, rep1.Crashes)
	}
	_ = rec1
	if n, err := store.Len(); err != nil || n != 3 {
		t.Fatalf("store holds %d artefacts after crash (err=%v), want 3", n, err)
	}
	// Restart: a fresh farm over the same store, fault-free.
	rec2, rep2, err := runFarm(t, cells, store, farmOpts{workers: 2})
	if err != nil {
		t.Fatalf("restarted run: %v", err)
	}
	rec2.assertConverged(t, cells)
	if rep2.Done != len(cells) {
		t.Fatalf("restarted run: Done = %d, want %d", rep2.Done, len(cells))
	}
	if rec2.countCached() < 3 {
		t.Fatalf("restart recovered %d cells from the store, want >= 3", rec2.countCached())
	}
}

// TestFarmRandomSchedulesConverge is the convergence property over the seed
// corpus: every seeded random schedule of crashes, message faults and torn
// writes must end with exactly the fault-free bytes, exactly-once absorbed.
func TestFarmRandomSchedulesConverge(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			cells := newCells(10)
			store := openStore(t)
			inj := faultinject.Random(seed, nil, faultinject.RandomConfig{
				Workers:   3,
				Crashes:   2,
				MsgFaults: 3,
				Tears:     1,
				MaxNth:    2,
				Delay:     3 * time.Millisecond,
			})
			lease := fastLease()
			lease.MaxAttempts = 6 // transient faults must never quarantine
			rec, rep, err := runFarm(t, cells, store, farmOpts{
				workers: 3, respawn: true, inj: inj, lease: &lease})
			if err != nil {
				t.Fatalf("run: %v (stats %+v)", err, inj.Stats())
			}
			rec.assertConverged(t, cells)
			if len(rep.Quarantined) != 0 {
				t.Fatalf("transient schedule quarantined cells: %+v (stats %+v)",
					rep.Quarantined, inj.Stats())
			}
			// Whatever the schedule did, the store must end whole.
			for _, c := range cells {
				data, ok, err := store.Get(c.Key)
				if err != nil || !ok {
					t.Fatalf("cell %d missing from store (ok=%v err=%v)", c.Index, ok, err)
				}
				if err := verifyCell(c, data); err != nil {
					t.Fatalf("store damaged after schedule: %v", err)
				}
			}
		})
	}
}
