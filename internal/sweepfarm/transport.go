package sweepfarm

import (
	"errors"
	"time"
)

// ErrLost is what a dropped message looks like from the sender's side: the
// call failed, and the sender cannot know whether the receiver processed it
// (the request may have been lost on the way in, or the reply on the way
// out). Workers treat every transport error this way — retry until the
// coordinator's answer settles the question — which is exactly what makes
// duplicate completions possible and why the coordinator dedupes them.
var ErrLost = errors.New("sweepfarm: message lost")

// ClaimRequest asks the coordinator for a cell lease.
type ClaimRequest struct {
	Worker string
}

// ClaimReply grants a lease, reports nothing claimable right now, or tells
// the worker the sweep is finished.
type ClaimReply struct {
	// OK means Cell/LeaseID/TTL carry a granted lease.
	OK bool
	// Done means every cell is done or quarantined; the worker can exit.
	Done    bool
	Cell    Cell
	LeaseID uint64
	// TTL is the lease's lifetime; the worker heartbeats well inside it.
	TTL time.Duration
}

// HeartbeatRequest extends a lease while its cell computes. SentAt is the
// worker's local clock reading — deliberately carried and deliberately
// ignored by the coordinator, which does all lease arithmetic on its own
// clock (the clock-skew schedules prove the protocol never trusts it).
type HeartbeatRequest struct {
	Worker  string
	LeaseID uint64
	SentAt  time.Time
}

// HeartbeatReply acknowledges a heartbeat; OK=false marks a stale lease
// (expired and re-leased, or the cell already completed elsewhere).
type HeartbeatReply struct {
	OK bool
}

// CompleteRequest reports a cell attempt's outcome. For store-backed cells
// (Cell.Key != "") the artefact travels through the store and the request
// carries only the claim that it is there — the coordinator re-reads and
// re-verifies it, which is what catches torn writes. Keyless cells carry
// the artefact inline. A non-empty Failed reports a compute failure.
type CompleteRequest struct {
	Worker  string
	LeaseID uint64
	Cell    Cell
	// Artifact is the inline payload for keyless cells (nil otherwise).
	Artifact []byte
	// Cached reports the worker found the artefact already in the store
	// instead of computing it.
	Cached bool
	// Failed carries the compute error; empty means success.
	Failed string
}

// CompleteReply acknowledges a completion report. Accepted=false tells the
// worker the artefact did not verify (the attempt was counted as a
// failure); the worker moves on either way.
type CompleteReply struct {
	Accepted bool
}

// Transport is the worker's view of the coordinator. The in-process farm
// hands workers the *Coordinator itself (direct calls); a distributed
// deployment substitutes an RPC client; the fault-injection harness wraps
// either with scripted loss, duplication and delay.
type Transport interface {
	Claim(ClaimRequest) (ClaimReply, error)
	Heartbeat(HeartbeatRequest) (HeartbeatReply, error)
	Complete(CompleteRequest) (CompleteReply, error)
}
