package sweepfarm

import (
	"fmt"
	"testing"
	"time"

	"mlorass/internal/rng"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func testLeaseCfg() LeaseConfig {
	return LeaseConfig{
		TTL:          10 * time.Second,
		MaxAttempts:  3,
		BackoffBase:  time.Second,
		BackoffMax:   8 * time.Second,
		MaxPerWorker: 2,
		Seed:         1,
	}
}

func TestLeaseClaimGrantsInIndexOrder(t *testing.T) {
	tab := newLeaseTable(3, testLeaseCfg())
	for want := 0; want < 3; want++ {
		idx, id, ok := tab.claim(fmt.Sprintf("w%d", want), t0)
		if !ok || idx != want || id == 0 {
			t.Fatalf("claim %d: got idx=%d id=%d ok=%v", want, idx, id, ok)
		}
	}
	if _, _, ok := tab.claim("w9", t0); ok {
		t.Fatal("claim succeeded with every cell leased")
	}
}

func TestLeaseMaxPerWorkerBackpressure(t *testing.T) {
	tab := newLeaseTable(5, testLeaseCfg())
	if _, _, ok := tab.claim("w0", t0); !ok {
		t.Fatal("first claim failed")
	}
	if _, _, ok := tab.claim("w0", t0); !ok {
		t.Fatal("second claim failed")
	}
	if _, _, ok := tab.claim("w0", t0); ok {
		t.Fatal("third claim exceeded MaxPerWorker=2")
	}
	if _, _, ok := tab.claim("w1", t0); !ok {
		t.Fatal("another worker should still claim")
	}
}

func TestLeaseNoStealBeforeExpiry(t *testing.T) {
	cfg := testLeaseCfg()
	tab := newLeaseTable(1, cfg)
	_, id, ok := tab.claim("w0", t0)
	if !ok {
		t.Fatal("claim failed")
	}
	// Heartbeats keep pushing the deadline; the cell must never be
	// re-claimable while the lease is live.
	now := t0
	for i := 0; i < 10; i++ {
		now = now.Add(cfg.TTL / 2)
		if !tab.heartbeat(id, now) {
			t.Fatalf("heartbeat %d rejected on a live lease", i)
		}
		tab.expire(now, nil)
		if _, _, ok := tab.claim("w1", now); ok {
			t.Fatalf("cell stolen at %v while lease live", now.Sub(t0))
		}
	}
	// Stop heartbeating: one TTL later the lease expires and the cell is
	// claimable again (after its backoff gate).
	now = now.Add(cfg.TTL + time.Nanosecond)
	tab.expire(now, nil)
	now = now.Add(2 * cfg.BackoffBase) // past base backoff + jitter < base
	if _, _, ok := tab.claim("w1", now); !ok {
		t.Fatal("expired cell not re-claimable")
	}
	// The zombie's heartbeat must now be rejected.
	if tab.heartbeat(id, now) {
		t.Fatal("heartbeat accepted on a superseded lease")
	}
}

func TestLeaseBackoffGateDelaysRetry(t *testing.T) {
	cfg := testLeaseCfg()
	tab := newLeaseTable(1, cfg)
	_, id, _ := tab.claim("w0", t0)
	counted, q := tab.completeFail(0, id, "boom", t0)
	if !counted || q {
		t.Fatalf("completeFail: counted=%v quarantined=%v", counted, q)
	}
	if _, _, ok := tab.claim("w0", t0); ok {
		t.Fatal("claim succeeded inside the backoff window")
	}
	// Base + jitter < 2·base: past that the cell must be claimable.
	if _, _, ok := tab.claim("w0", t0.Add(2*cfg.BackoffBase)); !ok {
		t.Fatal("claim failed after the backoff window")
	}
}

func TestLeaseQuarantineAfterExactlyK(t *testing.T) {
	cfg := testLeaseCfg() // MaxAttempts = 3
	tab := newLeaseTable(1, cfg)
	now := t0
	for attempt := 1; attempt <= cfg.MaxAttempts; attempt++ {
		idx, id, ok := tab.claim("w0", now)
		if !ok || idx != 0 {
			t.Fatalf("attempt %d: claim failed", attempt)
		}
		_, q := tab.completeFail(0, id, "boom", now)
		wantQ := attempt == cfg.MaxAttempts
		if q != wantQ {
			t.Fatalf("attempt %d: quarantined=%v, want %v", attempt, q, wantQ)
		}
		now = now.Add(time.Minute) // clear any backoff gate
	}
	if !tab.finished() {
		t.Fatal("table not finished after quarantine")
	}
	if _, _, ok := tab.claim("w0", now); ok {
		t.Fatal("quarantined cell was re-claimed")
	}
	if tab.recs[0].attempts != cfg.MaxAttempts {
		t.Fatalf("attempts = %d, want exactly %d", tab.recs[0].attempts, cfg.MaxAttempts)
	}
}

func TestLeaseDuplicateCompleteCountsOnce(t *testing.T) {
	tab := newLeaseTable(1, testLeaseCfg())
	tab.claim("w0", t0)
	if !tab.completeOK(0) {
		t.Fatal("first complete not first")
	}
	for i := 0; i < 3; i++ {
		if tab.completeOK(0) {
			t.Fatal("duplicate complete reported as first")
		}
	}
	if !tab.finished() {
		t.Fatal("not finished")
	}
}

func TestLeaseStaleFailureIgnored(t *testing.T) {
	cfg := testLeaseCfg()
	tab := newLeaseTable(1, cfg)
	_, id, _ := tab.claim("w0", t0)
	// The lease expires; the cell is re-leased to w1.
	now := t0.Add(cfg.TTL + time.Nanosecond)
	tab.expire(now, nil)
	now = now.Add(2 * cfg.BackoffBase)
	_, id2, ok := tab.claim("w1", now)
	if !ok {
		t.Fatal("re-claim failed")
	}
	// The zombie's failure report lands late: it must not count against
	// w1's live attempt.
	counted, _ := tab.completeFail(0, id, "zombie says boom", now)
	if counted {
		t.Fatal("stale failure counted against a live lease")
	}
	if counted, _ := tab.completeFail(0, id2, "real", now); !counted {
		t.Fatal("live failure not counted")
	}
}

// TestLeasePropertyRandomSchedules drives the table through seeded random
// op schedules and checks the three lease-machine invariants after every
// step: (1) no cell is counted done twice, (2) no live lease is ever
// stolen before expiry, (3) a cell quarantines after exactly MaxAttempts
// failed attempts and never runs again.
func TestLeasePropertyRandomSchedules(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			src := rng.New(seed)
			cfg := testLeaseCfg()
			cfg.MaxAttempts = 2 + int(src.Uint64()%3)
			const cells = 8
			tab := newLeaseTable(cells, cfg)
			now := t0

			type liveLease struct {
				id     uint64
				expiry time.Time
			}
			live := map[int]liveLease{} // cell -> lease as granted
			doneCount := make([]int, cells)
			failCount := make([]int, cells)
			quarantinedAt := make([]int, cells) // fail count when quarantined

			for step := 0; step < 400 && !tab.finished(); step++ {
				switch src.Uint64() % 5 {
				case 0: // claim
					w := fmt.Sprintf("w%d", src.Uint64()%3)
					idx, id, ok := tab.claim(w, now)
					if !ok {
						break
					}
					if l, isLive := live[idx]; isLive && l.expiry.After(now) {
						t.Fatalf("step %d: cell %d re-leased while lease %d live until %v (now %v)",
							step, idx, l.id, l.expiry, now)
					}
					live[idx] = liveLease{id: id, expiry: now.Add(cfg.TTL)}
				case 1: // heartbeat a random live lease
					for idx, l := range live {
						if tab.heartbeat(l.id, now) {
							live[idx] = liveLease{id: l.id, expiry: now.Add(cfg.TTL)}
						}
						break
					}
				case 2: // complete a random leased cell, possibly duplicated
					for idx := range live {
						n := 1 + int(src.Uint64()%2)
						for i := 0; i < n; i++ {
							if tab.completeOK(idx) {
								doneCount[idx]++
							}
						}
						delete(live, idx)
						break
					}
				case 3: // fail a random leased cell
					for idx, l := range live {
						counted, q := tab.completeFail(idx, l.id, "boom", now)
						if counted {
							failCount[idx]++
						}
						if q {
							quarantinedAt[idx] = failCount[idx]
						}
						delete(live, idx)
						break
					}
				case 4: // advance time (sometimes past TTL) and expire
					now = now.Add(time.Duration(src.Uint64()%uint64(2*cfg.TTL)) + time.Millisecond)
					tab.expire(now, func(idx int, _ string, q bool) {
						failCount[idx]++
						if q {
							quarantinedAt[idx] = failCount[idx]
						}
						delete(live, idx)
					})
				}
				for i := 0; i < cells; i++ {
					if doneCount[i] > 1 {
						t.Fatalf("step %d: cell %d done %d times", step, i, doneCount[i])
					}
					if quarantinedAt[i] != 0 && quarantinedAt[i] != cfg.MaxAttempts {
						t.Fatalf("step %d: cell %d quarantined after %d attempts, want exactly %d",
							step, i, quarantinedAt[i], cfg.MaxAttempts)
					}
				}
			}
		})
	}
}
