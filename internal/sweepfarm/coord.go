package sweepfarm

import (
	"fmt"
	"sync"
	"time"
)

// EventKind classifies coordinator events.
type EventKind uint8

const (
	// EventLeased: a cell was granted to a worker.
	EventLeased EventKind = iota
	// EventDone: a cell's artefact verified and was absorbed — emitted
	// exactly once per cell, the exactly-once merge signal.
	EventDone
	// EventDuplicate: a completion arrived for an already-done cell and
	// was discarded (lost ack, zombie worker, raced retry).
	EventDuplicate
	// EventRetry: an attempt failed (compute error, corrupt artefact, or
	// expired lease); the cell is backing off for another try.
	EventRetry
	// EventQuarantined: the cell hit its attempt cap and left the pool.
	EventQuarantined
)

// String names the kind for logs and dashboards.
func (k EventKind) String() string {
	switch k {
	case EventLeased:
		return "leased"
	case EventDone:
		return "done"
	case EventDuplicate:
		return "duplicate"
	case EventRetry:
		return "retry"
	case EventQuarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Event is one observable coordinator transition, streamed to the
// CoordConfig.Events observer (the obs layer's feed).
type Event struct {
	Kind   EventKind
	Cell   Cell
	Worker string
	// Attempt counts failed attempts so far (Retry/Quarantined events).
	Attempt int
	// Expired marks a Retry/Quarantined caused by lease expiry rather
	// than an explicit failure report.
	Expired bool
	// Cached marks a Done cell whose artefact came from the store
	// (restart recovery or a worker-side cache hit).
	Cached bool
	// Err carries the failure message (Retry/Quarantined events).
	Err string
	// Done/Total count absorbed cells for progress displays.
	Done, Total int
}

// Verify checks an artefact's integrity before its cell may count as done.
// It must reject truncated, torn or otherwise damaged bytes; the farm
// turns a failed verification into a failed attempt (recompute), never a
// silently absorbed zero.
type Verify func(c Cell, data []byte) error

// Absorb merges a verified artefact into the sweep's result, exactly once
// per cell, called from the coordinator with its lock held (keep it quick;
// decode and slot, don't aggregate the world).
type Absorb func(c Cell, data []byte) error

// CoordConfig configures a Coordinator.
type CoordConfig struct {
	Lease LeaseConfig
	// Verify gates completion; nil accepts any bytes.
	Verify Verify
	// Absorb receives each cell's verified artefact exactly once; nil
	// discards them (the caller reads the store afterwards).
	Absorb Absorb
	// Events observes transitions; nil ignores them. Called synchronously
	// under the coordinator's lock — observers must not call back in.
	Events func(Event)
}

// Coordinator owns the lease table and the sweep's exactly-once merge. It
// implements Transport directly, so in-process workers call it without any
// wire, and every method is safe for concurrent use. All lease arithmetic
// uses the coordinator's clock alone; worker clocks are never consulted.
//
// A coordinator restarted over the same store recovers the sweep's progress
// from store state alone: NewCoordinator probes every keyed cell and
// absorbs the artefacts that already verify.
type Coordinator struct {
	mu     sync.Mutex
	cells  []Cell
	table  *leaseTable
	store  ArtifactStore
	clock  Clock
	cfg    CoordConfig
	inline map[int][]byte // verified inline artefacts of keyless cells
	// absorbedKeys dedupes the merge by store key: a key absorbed once is
	// never merged again, even if it reappears under another completion.
	absorbedKeys map[string]bool
	done         int
	doneCh       chan struct{}
	closed       bool
}

// NewCoordinator builds a coordinator over the sweep's cells and recovers
// any progress already persisted in the store: cells whose stored artefact
// verifies are absorbed immediately (as cached) — the restart path.
func NewCoordinator(cells []Cell, store ArtifactStore, clock Clock, cfg CoordConfig) (*Coordinator, error) {
	if clock == nil {
		clock = Wall()
	}
	c := &Coordinator{
		cells:        cells,
		table:        newLeaseTable(len(cells), cfg.Lease),
		store:        store,
		clock:        clock,
		cfg:          cfg,
		inline:       map[int][]byte{},
		absorbedKeys: map[string]bool{},
		doneCh:       make(chan struct{}),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, cell := range cells {
		if cell.Index != i {
			return nil, fmt.Errorf("sweepfarm: cell %d has index %d; cells must be indexed in order", i, cell.Index)
		}
		if cell.Key == "" || store == nil {
			continue
		}
		data, ok, err := store.Get(cell.Key)
		if err != nil || !ok {
			continue // unreadable store entries are recomputed, not fatal
		}
		if c.cfg.Verify != nil && c.cfg.Verify(cell, data) != nil {
			continue // corrupt artefact: leave pending, a worker repairs it
		}
		if err := c.absorb(cell, data, "", true); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// absorb runs the exactly-once merge for a verified artefact. Caller holds
// the lock.
func (c *Coordinator) absorb(cell Cell, data []byte, worker string, cached bool) error {
	if !c.table.completeOK(cell.Index) {
		c.emit(Event{Kind: EventDuplicate, Cell: cell, Worker: worker, Done: c.done, Total: len(c.cells)})
		return nil
	}
	if cell.Key != "" {
		if c.absorbedKeys[cell.Key] {
			// Same key under a different cell slot: the table transition
			// stands (the cell is done) but the merge already happened.
			c.emit(Event{Kind: EventDuplicate, Cell: cell, Worker: worker, Done: c.done, Total: len(c.cells)})
			return nil
		}
		c.absorbedKeys[cell.Key] = true
	} else {
		c.inline[cell.Index] = data
	}
	if c.cfg.Absorb != nil {
		if err := c.cfg.Absorb(cell, data); err != nil {
			return fmt.Errorf("sweepfarm: absorbing cell %d (%s): %w", cell.Index, cell.Label, err)
		}
	}
	c.done++
	c.emit(Event{Kind: EventDone, Cell: cell, Worker: worker, Cached: cached, Done: c.done, Total: len(c.cells)})
	c.checkFinished()
	return nil
}

// emit streams an event to the observer.
func (c *Coordinator) emit(e Event) {
	if c.cfg.Events != nil {
		c.cfg.Events(e)
	}
}

// checkFinished closes the done channel once. Caller holds the lock.
func (c *Coordinator) checkFinished() {
	if !c.closed && c.table.finished() {
		c.closed = true
		close(c.doneCh)
	}
}

// sweepExpired processes lease expiries at now. Caller holds the lock.
func (c *Coordinator) sweepExpired(now time.Time) {
	c.table.expire(now, func(idx int, worker string, quarantined bool) {
		r := &c.table.recs[idx]
		kind := EventRetry
		if quarantined {
			kind = EventQuarantined
		}
		c.emit(Event{Kind: kind, Cell: c.cells[idx], Worker: worker,
			Attempt: r.attempts, Expired: true, Err: r.lastErr,
			Done: c.done, Total: len(c.cells)})
	})
	c.checkFinished()
}

// Claim implements Transport.
func (c *Coordinator) Claim(req ClaimRequest) (ClaimReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	c.sweepExpired(now)
	if c.table.finished() {
		return ClaimReply{Done: true}, nil
	}
	idx, leaseID, ok := c.table.claim(req.Worker, now)
	if !ok {
		return ClaimReply{}, nil
	}
	c.emit(Event{Kind: EventLeased, Cell: c.cells[idx], Worker: req.Worker,
		Done: c.done, Total: len(c.cells)})
	return ClaimReply{OK: true, Cell: c.cells[idx], LeaseID: leaseID, TTL: c.table.cfg.TTL}, nil
}

// Heartbeat implements Transport. Lease arithmetic uses the coordinator's
// clock; req.SentAt (the worker's possibly-skewed clock) is ignored.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) (HeartbeatReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	c.sweepExpired(now)
	return HeartbeatReply{OK: c.table.heartbeat(req.LeaseID, now)}, nil
}

// Complete implements Transport: verify, then absorb exactly once (success)
// or count a failed attempt (failure, missing or corrupt artefact).
func (c *Coordinator) Complete(req CompleteRequest) (CompleteReply, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.clock.Now()
	c.sweepExpired(now)
	idx := req.Cell.Index
	if idx < 0 || idx >= len(c.cells) {
		return CompleteReply{}, fmt.Errorf("sweepfarm: completion for unknown cell %d", idx)
	}
	cell := c.cells[idx]
	if req.Failed != "" {
		c.fail(idx, req, req.Failed, now)
		return CompleteReply{}, nil
	}
	data := req.Artifact
	if cell.Key != "" {
		// Store-backed cell: trust nothing in the message — re-read the
		// artefact and verify it. A torn or missing write surfaces here
		// and costs the attempt, not the sweep's integrity.
		var ok bool
		var err error
		data, ok, err = c.store.Get(cell.Key)
		if err != nil {
			c.fail(idx, req, fmt.Sprintf("reading artefact: %v", err), now)
			return CompleteReply{}, nil
		}
		if !ok {
			c.fail(idx, req, "completion without artefact (lost write?)", now)
			return CompleteReply{}, nil
		}
	}
	if c.cfg.Verify != nil {
		if err := c.cfg.Verify(cell, data); err != nil {
			c.fail(idx, req, fmt.Sprintf("artefact failed verification: %v", err), now)
			return CompleteReply{}, nil
		}
	}
	if err := c.absorb(cell, data, req.Worker, req.Cached); err != nil {
		return CompleteReply{}, err
	}
	return CompleteReply{Accepted: true}, nil
}

// fail records a failed attempt from a completion report. Caller holds the
// lock.
func (c *Coordinator) fail(idx int, req CompleteRequest, msg string, now time.Time) {
	counted, quarantined := c.table.completeFail(idx, req.LeaseID, msg, now)
	if !counted {
		// Stale lease: the cell moved on (expired and re-leased, or done).
		c.emit(Event{Kind: EventDuplicate, Cell: c.cells[idx], Worker: req.Worker,
			Done: c.done, Total: len(c.cells)})
		return
	}
	kind := EventRetry
	if quarantined {
		kind = EventQuarantined
	}
	c.emit(Event{Kind: kind, Cell: c.cells[idx], Worker: req.Worker,
		Attempt: c.table.recs[idx].attempts, Err: msg,
		Done: c.done, Total: len(c.cells)})
	c.checkFinished()
}

// DoneCh is closed when every cell is done or quarantined.
func (c *Coordinator) DoneCh() <-chan struct{} { return c.doneCh }

// Quarantine describes one gap in a finished sweep.
type Quarantine struct {
	Cell     Cell
	Attempts int
	LastErr  string
}

// Report summarises a sweep's robustness bookkeeping.
type Report struct {
	// Cells is the sweep size, Done the absorbed count (Done + gaps ==
	// Cells once the farm finishes).
	Cells int
	Done  int
	// Quarantined lists the gaps: cells the sweep completed *without*,
	// reported explicitly so they are never mistaken for zeros.
	Quarantined []Quarantine
	// Crashes counts worker deaths the farm supervisor observed (zero
	// for a bare coordinator).
	Crashes int
}

// Gaps renders the quarantine list as an explicit human-readable gap
// report; empty when the sweep is whole.
func (r Report) Gaps() string {
	if len(r.Quarantined) == 0 {
		return ""
	}
	s := fmt.Sprintf("QUARANTINED: %d of %d cells failed every attempt and are MISSING from the tables:\n",
		len(r.Quarantined), r.Cells)
	for _, q := range r.Quarantined {
		s += fmt.Sprintf("  cell %d (%s): %d attempts, last error: %s\n", q.Cell.Index, q.Cell.Label, q.Attempts, q.LastErr)
	}
	return s
}

// Report reads the coordinator's current bookkeeping.
func (c *Coordinator) Report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	rep := Report{Cells: len(c.cells), Done: c.done}
	for i := range c.table.recs {
		r := &c.table.recs[i]
		if r.state == stateQuarantined {
			rep.Quarantined = append(rep.Quarantined, Quarantine{
				Cell: c.cells[i], Attempts: r.attempts, LastErr: r.lastErr})
		}
	}
	return rep
}

// InlineArtifact returns the verified inline artefact of a keyless cell
// (keyed cells live in the store).
func (c *Coordinator) InlineArtifact(idx int) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.inline[idx]
	return d, ok
}
