package mobility

import (
	"fmt"
	"time"

	"mlorass/internal/geo"
	"mlorass/internal/rng"
)

// SensorGridConfig parameterises a static sensor deployment: NumNodes
// sensors on a uniform cell-centred grid over the area, each waking for
// OnWindow out of every Period with a per-sensor phase offset. The scenario
// inverts the paper's assumptions — zero mobility, duty-cycled presence — so
// forwarding gains must come from topology alone, not contact diversity.
type SensorGridConfig struct {
	// Seed draws the per-sensor duty-cycle phase offsets.
	Seed uint64
	// Area is the deployment area.
	Area geo.Rect
	// NumNodes is the sensor count.
	NumNodes int
	// OnWindow is how long each sensor is awake per cycle.
	OnWindow time.Duration
	// Period is the duty cycle length; OnWindow <= Period. OnWindow equal
	// to Period keeps sensors always on.
	Period time.Duration
	// Horizon bounds the service window; sensors cycle on [0, Horizon).
	Horizon time.Duration
}

// Validate reports configuration errors.
func (c SensorGridConfig) Validate() error {
	if c.Area.Area() <= 0 {
		return fmt.Errorf("mobility: sensor grid: empty area")
	}
	if c.NumNodes <= 0 {
		return fmt.Errorf("mobility: sensor grid: NumNodes %d must be positive", c.NumNodes)
	}
	if c.OnWindow <= 0 || c.Period <= 0 || c.OnWindow > c.Period {
		return fmt.Errorf("mobility: sensor grid: window %v / period %v invalid", c.OnWindow, c.Period)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("mobility: sensor grid: Horizon %v must be positive", c.Horizon)
	}
	return nil
}

// sensorNode is one static duty-cycled sensor.
type sensorNode struct {
	id      int
	pos     geo.Point
	phase   time.Duration // offset into the cycle at t=0
	on      time.Duration
	period  time.Duration
	horizon time.Duration
}

// ID implements Model.
func (n *sensorNode) ID() int { return n.id }

// SpeedMPS is zero: sensors never move.
func (n *sensorNode) SpeedMPS() float64 { return 0 }

// Window returns the full-horizon service window; activity flickers inside
// it with the duty cycle.
func (n *sensorNode) Window() (start, end time.Duration) { return 0, n.horizon }

// Active reports whether the sensor is inside an on-window.
func (n *sensorNode) Active(at time.Duration) bool {
	if at < 0 || at >= n.horizon {
		return false
	}
	return (at+n.phase)%n.period < n.on
}

// PositionAt returns the fixed grid position while the sensor is awake.
func (n *sensorNode) PositionAt(at time.Duration) (geo.Point, bool) {
	if !n.Active(at) {
		return geo.Point{}, false
	}
	return n.pos, true
}

// FixedPosition implements StaticModel: the grid position is known even
// while the sensor sleeps, keeping it spatially indexed across off-windows.
func (n *sensorNode) FixedPosition() geo.Point { return n.pos }

// NewSensorGridFleet builds a deterministic duty-cycled sensor grid.
func NewSensorGridFleet(cfg SensorGridConfig) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pts := geo.GridPoints(cfg.Area, cfg.NumNodes)
	r := rng.New(cfg.Seed)
	nodes := make([]Model, len(pts))
	for i, p := range pts {
		nodes[i] = &sensorNode{
			id:      i,
			pos:     p,
			phase:   time.Duration(r.Uniform(0, cfg.Period.Seconds()) * float64(time.Second)),
			on:      cfg.OnWindow,
			period:  cfg.Period,
			horizon: cfg.Horizon,
		}
	}
	return FromModels(nodes)
}
