package mobility

import (
	"fmt"
	"time"

	"mlorass/internal/geo"
	"mlorass/internal/rng"
)

// RandomWaypointConfig parameterises a random-waypoint vehicle fleet: each
// vehicle repeatedly draws a uniform destination in the area, travels to it
// in a straight line at a per-leg speed from the configured band, pauses up
// to PauseMax, and draws again. Unlike the timetabled bus fleet, vehicles
// are in service for the whole horizon, so the scenario stresses the
// forwarding schemes with non-diurnal, non-corridor movement.
type RandomWaypointConfig struct {
	// Seed drives all trajectory randomness.
	Seed uint64
	// Area is the operating area vehicles roam.
	Area geo.Rect
	// NumNodes is the vehicle count.
	NumNodes int
	// SpeedMinMPS and SpeedMaxMPS bound per-leg travel speeds.
	SpeedMinMPS float64
	SpeedMaxMPS float64
	// PauseMax bounds the uniform pause at each waypoint (0 = no pauses).
	PauseMax time.Duration
	// Horizon is the trajectory length to precompute; vehicles are active
	// on [0, Horizon).
	Horizon time.Duration
}

// Validate reports configuration errors.
func (c RandomWaypointConfig) Validate() error {
	if c.Area.Area() <= 0 {
		return fmt.Errorf("mobility: random waypoint: empty area")
	}
	if c.NumNodes <= 0 {
		return fmt.Errorf("mobility: random waypoint: NumNodes %d must be positive", c.NumNodes)
	}
	if c.SpeedMinMPS <= 0 || c.SpeedMaxMPS < c.SpeedMinMPS {
		return fmt.Errorf("mobility: random waypoint: speed bounds [%v, %v] invalid", c.SpeedMinMPS, c.SpeedMaxMPS)
	}
	if c.PauseMax < 0 {
		return fmt.Errorf("mobility: random waypoint: PauseMax %v negative", c.PauseMax)
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("mobility: random waypoint: Horizon %v must be positive", c.Horizon)
	}
	return nil
}

// leg is one straight-line segment (or pause, when from == to) of a
// precomputed trajectory, covering virtual time [start, end).
type leg struct {
	start, end time.Duration
	from, to   geo.Point
}

// waypointNode is one random-waypoint vehicle. Its whole trajectory is
// precomputed at construction so PositionAt is a pure function of time:
// random-access queries in any order stay deterministic.
type waypointNode struct {
	id       int
	legs     []leg
	maxSpeed float64
	horizon  time.Duration
}

// ID implements Model.
func (n *waypointNode) ID() int { return n.id }

// SpeedMPS returns the fastest leg speed: the node's drift bound.
func (n *waypointNode) SpeedMPS() float64 { return n.maxSpeed }

// Window returns the full-horizon service window.
func (n *waypointNode) Window() (start, end time.Duration) { return 0, n.horizon }

// Active reports whether the vehicle is in service (the whole horizon).
func (n *waypointNode) Active(at time.Duration) bool { return at >= 0 && at < n.horizon }

// PositionAt interpolates the precomputed trajectory.
func (n *waypointNode) PositionAt(at time.Duration) (geo.Point, bool) {
	if !n.Active(at) {
		return geo.Point{}, false
	}
	return n.posInLeg(n.legOf(at), at), true
}

// legOf binary-searches the leg containing at: the largest index whose
// start is <= at. Legs tile the horizon contiguously, so that is the
// covering leg.
func (n *waypointNode) legOf(at time.Duration) int {
	lo, hi := 0, len(n.legs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if n.legs[mid].start <= at {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

// posInLeg interpolates within leg i — the shared math behind the stateless
// lookup and the cursor, so the two stay bit-identical by construction.
func (n *waypointNode) posInLeg(i int, at time.Duration) geo.Point {
	l := n.legs[i]
	if l.end <= l.start {
		return l.to
	}
	t := float64(at-l.start) / float64(l.end-l.start)
	if t > 1 {
		t = 1
	}
	return l.from.Lerp(l.to, t)
}

// NewRandomWaypointFleet builds a deterministic random-waypoint fleet. Each
// vehicle's trajectory derives from its own split of the seed, so fleets of
// different sizes share no correlated movement.
func NewRandomWaypointFleet(cfg RandomWaypointConfig) (*Fleet, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	nodes := make([]Model, cfg.NumNodes)
	for i := range nodes {
		nodes[i] = genWaypointNode(root.Split(), cfg, i)
	}
	return FromModels(nodes)
}

// genWaypointNode precomputes one vehicle's legs until they cover the horizon.
func genWaypointNode(r *rng.Source, cfg RandomWaypointConfig, id int) *waypointNode {
	n := &waypointNode{id: id, horizon: cfg.Horizon}
	cur := randPoint(r, cfg.Area)
	now := time.Duration(0)
	for now < cfg.Horizon {
		dest := randPoint(r, cfg.Area)
		speed := r.Uniform(cfg.SpeedMinMPS, cfg.SpeedMaxMPS)
		if speed > n.maxSpeed {
			n.maxSpeed = speed
		}
		travel := time.Duration(cur.Dist(dest) / speed * float64(time.Second))
		if travel <= 0 {
			travel = time.Second // coincident draw: don't stall the walk
		}
		n.legs = append(n.legs, leg{start: now, end: now + travel, from: cur, to: dest})
		now += travel
		cur = dest
		if cfg.PauseMax > 0 {
			pause := time.Duration(r.Uniform(0, cfg.PauseMax.Seconds()) * float64(time.Second))
			if pause > 0 {
				n.legs = append(n.legs, leg{start: now, end: now + pause, from: cur, to: cur})
				now += pause
			}
		}
	}
	return n
}

func randPoint(r *rng.Source, area geo.Rect) geo.Point {
	return geo.Point{
		X: area.Min.X + r.Float64()*area.Width(),
		Y: area.Min.Y + r.Float64()*area.Height(),
	}
}
