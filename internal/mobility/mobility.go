// Package mobility turns a tfl.Dataset timetable into positions over time:
// the reproduction's substitute for the SUMO microscopic traffic simulator.
//
// Each trip becomes a Bus that shuttles along its route polyline at the
// route's average speed (stop dwell folded into the speed — exactly the
// abstraction level the paper's protocols observe) for the length of its
// service shift. Buses are inactive outside their shift window, modelling
// vehicles entering and leaving service across the day — the driver of the
// Fig. 7a active-bus curve and of the long disconnection periods the
// forwarding schemes exploit.
package mobility

import (
	"fmt"
	"math"
	"time"

	"mlorass/internal/geo"
	"mlorass/internal/tfl"
)

// Bus is one vehicle operating one timetabled trip.
type Bus struct {
	trip     tfl.Trip
	route    *geo.Polyline
	speedMPS float64 // effective speed so the trip finishes exactly on time
}

// ID returns the trip/bus identifier (unique within the dataset).
func (b *Bus) ID() int { return b.trip.ID }

// Trip returns the underlying timetable entry.
func (b *Bus) Trip() tfl.Trip { return b.trip }

// SpeedMPS returns the route's average ground speed in metres per second.
func (b *Bus) SpeedMPS() float64 { return b.speedMPS }

// Active reports whether the bus is in service at the given instant.
func (b *Bus) Active(at time.Duration) bool { return b.trip.ActiveAt(at) }

// Position returns the bus position at the given instant; ok is false when
// the bus is out of service.
//
// Within its shift the bus shuttles back and forth along the route: the
// distance travelled maps onto the polyline as a triangle wave, so a vehicle
// whose shift outlasts one end-to-end run turns around and serves the route
// in the opposite direction, exactly like a timetabled bus block.
func (b *Bus) Position(at time.Duration) (geo.Point, bool) {
	if !b.trip.ActiveAt(at) {
		return geo.Point{}, false
	}
	length := b.route.Length()
	progress := b.speedMPS * (at - b.trip.Start).Seconds()
	m := math.Mod(progress, 2*length)
	if m > length {
		m = 2*length - m
	}
	if b.trip.Reverse {
		m = length - m
	}
	return b.route.At(m), true
}

// Fleet is the full set of buses for one simulated day.
type Fleet struct {
	buses []*Bus
}

// NewFleet compiles a dataset into buses. Route polylines are built once and
// shared between the trips that reference them.
func NewFleet(ds *tfl.Dataset) (*Fleet, error) {
	type compiled struct {
		line  *geo.Polyline
		speed float64
	}
	lines := make(map[string]compiled, len(ds.Routes))
	for _, r := range ds.Routes {
		pl, err := r.Polyline()
		if err != nil {
			return nil, fmt.Errorf("mobility: %w", err)
		}
		if r.SpeedMPS <= 0 {
			return nil, fmt.Errorf("mobility: route %s has non-positive speed %v", r.ID, r.SpeedMPS)
		}
		lines[r.ID] = compiled{line: pl, speed: r.SpeedMPS}
	}
	f := &Fleet{buses: make([]*Bus, 0, len(ds.Trips))}
	for _, tr := range ds.Trips {
		c, ok := lines[tr.RouteID]
		if !ok {
			return nil, fmt.Errorf("mobility: trip %d references unknown route %s", tr.ID, tr.RouteID)
		}
		if tr.Duration <= 0 {
			return nil, fmt.Errorf("mobility: trip %d has non-positive duration %v", tr.ID, tr.Duration)
		}
		f.buses = append(f.buses, &Bus{
			trip:     tr,
			route:    c.line,
			speedMPS: c.speed,
		})
	}
	return f, nil
}

// Len returns the number of buses (trips) in the fleet.
func (f *Fleet) Len() int { return len(f.buses) }

// Bus returns bus i in dataset order.
func (f *Fleet) Bus(i int) *Bus { return f.buses[i] }

// Buses returns the underlying slice; callers must not modify it.
func (f *Fleet) Buses() []*Bus { return f.buses }

// ActiveAt returns the indices of buses in service at the given instant, in
// fleet order (deterministic).
func (f *Fleet) ActiveAt(at time.Duration) []int {
	var idx []int
	for i, b := range f.buses {
		if b.Active(at) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Within returns the indices of active buses within radius metres of pos at
// the given instant, excluding the bus with index exclude (pass -1 to keep
// all). Used by the radio layer to find overhearing candidates.
func (f *Fleet) Within(at time.Duration, pos geo.Point, radius float64, exclude int) []int {
	r2 := radius * radius
	var idx []int
	for i, b := range f.buses {
		if i == exclude {
			continue
		}
		p, ok := b.Position(at)
		if !ok {
			continue
		}
		if p.DistSq(pos) <= r2 {
			idx = append(idx, i)
		}
	}
	return idx
}
