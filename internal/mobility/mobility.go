// Package mobility provides movement models: positions of mobile (or static)
// nodes over virtual time, the reproduction's substitute for the SUMO
// microscopic traffic simulator.
//
// The Model interface abstracts one node's trajectory and service schedule;
// a Fleet is an indexed collection of Models sharing one scenario. Three
// implementations ship:
//
//   - Bus (NewFleet): a tfl.Dataset timetable trip shuttling along its route
//     polyline at the route's average speed for the length of its service
//     shift — the paper's London evaluation scenario.
//   - waypointNode (NewRandomWaypointFleet): classic random-waypoint vehicles
//     roaming an area, for non-timetabled movement.
//   - sensorNode (NewSensorGridFleet): static sensors on a uniform grid with
//     duty-cycled activity windows, for infrastructure-style workloads.
//
// Buses are inactive outside their shift window, modelling vehicles entering
// and leaving service across the day — the driver of the Fig. 7a active-bus
// curve and of the long disconnection periods the forwarding schemes exploit.
package mobility

import (
	"fmt"
	"time"

	"mlorass/internal/geo"
	"mlorass/internal/tfl"
)

// Model is one node's trajectory and service schedule over the simulated
// horizon. Implementations must be deterministic: PositionAt is a pure
// function of the instant, so the simulator may query any time in any order.
type Model interface {
	// ID identifies the node uniquely within its Fleet.
	ID() int
	// Active reports whether the node is in service at the given instant.
	// A node may flicker within its window (duty-cycled sensors do), but
	// must never be active outside it.
	Active(at time.Duration) bool
	// PositionAt returns the node position at the given instant; ok is
	// false when the node is out of service.
	PositionAt(at time.Duration) (geo.Point, bool)
	// SpeedMPS returns an upper bound on the node's ground speed in
	// metres per second (0 for static nodes). Spatial indexes use it to
	// bound how far a node can drift between index rebuilds.
	SpeedMPS() float64
	// Window returns the node's service window [start, end): the node is
	// never active before start or at/after end.
	Window() (start, end time.Duration)
}

// Bus is one vehicle operating one timetabled trip.
type Bus struct {
	trip     tfl.Trip
	route    *geo.Polyline
	speedMPS float64 // effective speed so the trip finishes exactly on time

	// Hot-path caches of pure derivations (set by newBus): the route
	// length and the shift end, so position queries avoid re-deriving
	// them millions of times per run.
	length  float64
	tripEnd time.Duration
}

// newBus builds a bus with its hot-path caches populated.
func newBus(trip tfl.Trip, route *geo.Polyline, speedMPS float64) *Bus {
	return &Bus{
		trip:     trip,
		route:    route,
		speedMPS: speedMPS,
		length:   route.Length(),
		tripEnd:  trip.End(),
	}
}

// ID returns the trip/bus identifier (unique within the dataset).
func (b *Bus) ID() int { return b.trip.ID }

// Trip returns the underlying timetable entry.
func (b *Bus) Trip() tfl.Trip { return b.trip }

// SpeedMPS returns the route's average ground speed in metres per second.
func (b *Bus) SpeedMPS() float64 { return b.speedMPS }

// Active reports whether the bus is in service at the given instant.
func (b *Bus) Active(at time.Duration) bool { return b.trip.ActiveAt(at) }

// Window returns the bus's service shift [start, end).
func (b *Bus) Window() (start, end time.Duration) { return b.trip.Start, b.trip.End() }

// PositionAt implements Model; it is Position under the interface's name.
func (b *Bus) PositionAt(at time.Duration) (geo.Point, bool) { return b.Position(at) }

// Position returns the bus position at the given instant; ok is false when
// the bus is out of service.
//
// Within its shift the bus shuttles back and forth along the route: the
// distance travelled maps onto the polyline as a triangle wave, so a vehicle
// whose shift outlasts one end-to-end run turns around and serves the route
// in the opposite direction, exactly like a timetabled bus block.
func (b *Bus) Position(at time.Duration) (geo.Point, bool) {
	m, ok := b.arc(at)
	if !ok {
		return geo.Point{}, false
	}
	return b.route.At(m), true
}

// StaticModel is optionally implemented by models whose position is known
// even while the node is asleep (e.g. duty-cycled sensors). Spatial indexes
// use it to keep flickering nodes indexed across their off-windows, so a
// node waking between index rebuilds is still found as a candidate; exact
// activity is always re-checked against the Model at query time.
type StaticModel interface {
	Model
	// FixedPosition returns the node's permanent position.
	FixedPosition() geo.Point
}

// Fleet is an indexed set of mobility Models sharing one scenario. Node IDs
// equal fleet indices; every constructor must preserve that invariant.
type Fleet struct {
	nodes []Model
}

// FromModels assembles a fleet from pre-built models: the constructor
// contract every mobility scenario funnels through. Fleet identity is the
// slice index (the simulator addresses node i, not Model.ID, which is free
// scenario-level naming such as a timetable trip ID). Nil models are
// rejected.
func FromModels(nodes []Model) (*Fleet, error) {
	for i, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("mobility: node %d is nil", i)
		}
	}
	return &Fleet{nodes: nodes}, nil
}

// NewFleet compiles a dataset into buses. Route polylines are built once and
// shared between the trips that reference them.
func NewFleet(ds *tfl.Dataset) (*Fleet, error) {
	type compiled struct {
		line  *geo.Polyline
		speed float64
	}
	lines := make(map[string]compiled, len(ds.Routes))
	for _, r := range ds.Routes {
		pl, err := r.Polyline()
		if err != nil {
			return nil, fmt.Errorf("mobility: %w", err)
		}
		if r.SpeedMPS <= 0 {
			return nil, fmt.Errorf("mobility: route %s has non-positive speed %v", r.ID, r.SpeedMPS)
		}
		lines[r.ID] = compiled{line: pl, speed: r.SpeedMPS}
	}
	nodes := make([]Model, 0, len(ds.Trips))
	for _, tr := range ds.Trips {
		c, ok := lines[tr.RouteID]
		if !ok {
			return nil, fmt.Errorf("mobility: trip %d references unknown route %s", tr.ID, tr.RouteID)
		}
		if tr.Duration <= 0 {
			return nil, fmt.Errorf("mobility: trip %d has non-positive duration %v", tr.ID, tr.Duration)
		}
		nodes = append(nodes, newBus(tr, c.line, c.speed))
	}
	return FromModels(nodes)
}

// Len returns the number of nodes in the fleet.
func (f *Fleet) Len() int { return len(f.nodes) }

// Node returns node i in fleet order.
func (f *Fleet) Node(i int) Model { return f.nodes[i] }

// Bus returns node i as a *Bus, or nil when the fleet's node i is not a
// timetabled bus. Retained for timetable-specific callers and tests.
func (f *Fleet) Bus(i int) *Bus {
	b, _ := f.nodes[i].(*Bus)
	return b
}

// MaxSpeedMPS returns the fastest node's speed bound (0 for an empty or
// all-static fleet). Spatial indexes use it to size query slack.
func (f *Fleet) MaxSpeedMPS() float64 {
	max := 0.0
	for _, n := range f.nodes {
		if s := n.SpeedMPS(); s > max {
			max = s
		}
	}
	return max
}

// ActiveAt returns the indices of nodes in service at the given instant, in
// fleet order (deterministic).
func (f *Fleet) ActiveAt(at time.Duration) []int {
	var idx []int
	for i, n := range f.nodes {
		if n.Active(at) {
			idx = append(idx, i)
		}
	}
	return idx
}

// Within returns the indices of active nodes within radius metres of pos at
// the given instant, excluding the node with index exclude (pass -1 to keep
// all). Used by the radio layer to find overhearing candidates.
func (f *Fleet) Within(at time.Duration, pos geo.Point, radius float64, exclude int) []int {
	r2 := radius * radius
	var idx []int
	for i, n := range f.nodes {
		if i == exclude {
			continue
		}
		p, ok := n.PositionAt(at)
		if !ok {
			continue
		}
		if p.DistSq(pos) <= r2 {
			idx = append(idx, i)
		}
	}
	return idx
}
