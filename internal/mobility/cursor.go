package mobility

import (
	"math"
	"time"

	"mlorass/internal/geo"
)

// Cursor is a stateful position reader over one Model's trajectory. It
// returns exactly what the Model's stateless PositionAt returns for every
// instant — same floating-point result, bit for bit — but caches the
// trajectory location of the previous query (the polyline segment a bus is
// on, the leg a waypoint vehicle is traversing), so the near-monotonic query
// sequences the simulator issues resume the segment walk instead of
// re-searching the whole trajectory. Time may jump arbitrarily (backwards
// included); big jumps fall back to binary search.
//
// A Cursor is not safe for concurrent use. Each simulated device holds its
// own.
type Cursor interface {
	// Model returns the underlying trajectory model.
	Model() Model
	// PositionAt returns the node position at the given instant; ok is
	// false when the node is out of service. Identical to
	// Model().PositionAt(at) for every at.
	PositionAt(at time.Duration) (geo.Point, bool)
}

// cursorable is implemented by models that carry an optimised cursor.
type cursorable interface {
	newCursor() Cursor
}

// NewCursor builds the cursor for a model. Models without cached-walk
// support (static sensors, external implementations) get a stateless
// adapter, so callers can hold Cursors uniformly for any fleet.
func NewCursor(m Model) Cursor {
	if c, ok := m.(cursorable); ok {
		return c.newCursor()
	}
	return statelessCursor{m: m}
}

// statelessCursor adapts a Model with no resumable state (position lookup
// already O(1), e.g. fixed sensors).
type statelessCursor struct {
	m Model
}

func (c statelessCursor) Model() Model { return c.m }

func (c statelessCursor) PositionAt(at time.Duration) (geo.Point, bool) {
	return c.m.PositionAt(at)
}

// busCursor resumes the route polyline walk from the previously hit
// segment. The shuttle triangle wave moves the arc-length target a few
// metres per event, so the hinted lookup is O(1) along the whole shift.
type busCursor struct {
	b    *Bus
	hint int
}

// newCursor implements cursorable.
func (b *Bus) newCursor() Cursor { return &busCursor{b: b} }

func (c *busCursor) Model() Model { return c.b }

//mlorass:hotpath
func (c *busCursor) PositionAt(at time.Duration) (geo.Point, bool) {
	m, ok := c.b.arc(at)
	if !ok {
		return geo.Point{}, false
	}
	return c.b.route.AtHint(m, &c.hint), true
}

// waypointCursor resumes the precomputed leg walk from the previous leg.
type waypointCursor struct {
	n    *waypointNode
	hint int
}

// newCursor implements cursorable.
func (n *waypointNode) newCursor() Cursor { return &waypointCursor{n: n} }

func (c *waypointCursor) Model() Model { return c.n }

//mlorass:hotpath
func (c *waypointCursor) PositionAt(at time.Duration) (geo.Point, bool) {
	n := c.n
	if !n.Active(at) {
		return geo.Point{}, false
	}
	// walkLimit mirrors geo.Polyline.AtHint: resume linearly while the
	// query stays near the hinted leg, binary-search on real jumps.
	const walkLimit = 8
	legs := n.legs
	i := c.hint
	if i < 0 || i >= len(legs) {
		i = n.legOf(at)
	} else {
		for steps := 0; ; steps++ {
			if steps > walkLimit {
				i = n.legOf(at)
				break
			}
			if legs[i].start > at {
				i--
				continue
			}
			if i+1 < len(legs) && at >= legs[i+1].start {
				i++
				continue
			}
			break
		}
	}
	c.hint = i
	return n.posInLeg(i, at), true
}

// arc maps an instant to the bus's arc-length position along the route: the
// shared triangle-wave math behind both the stateless Position and the
// cursor, so the two stay bit-identical by construction.
//
//mlorass:hotpath
func (b *Bus) arc(at time.Duration) (float64, bool) {
	if at < b.trip.Start || at >= b.tripEnd {
		return 0, false
	}
	length := b.length
	progress := b.speedMPS * (at - b.trip.Start).Seconds()
	m := progress
	if m >= 2*length {
		// math.Mod(x, y) == x for 0 <= x < y, so the reduction is
		// needed — and paid — only from the second round trip on.
		m = math.Mod(progress, 2*length)
	}
	if m > length {
		m = 2*length - m
	}
	if b.trip.Reverse {
		m = length - m
	}
	return m, true
}
