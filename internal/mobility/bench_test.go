package mobility

import (
	"testing"
	"time"

	"mlorass/internal/geo"
	"mlorass/internal/tfl"
)

// benchFleets builds one representative node per mobility model for the
// position-query benchmarks: a timetabled bus on a multi-segment route, a
// random-waypoint vehicle, and a duty-cycled grid sensor.
func benchModels(b *testing.B) map[string]Model {
	b.Helper()
	ds, err := tfl.Generate(tfl.DefaultGenConfig(7, 3, 10*time.Minute))
	if err != nil {
		b.Fatal(err)
	}
	buses, err := NewFleet(ds)
	if err != nil {
		b.Fatal(err)
	}
	// Pick the bus with the longest shift so queries stay in-window.
	bus := buses.Node(0)
	for i := 1; i < buses.Len(); i++ {
		n := buses.Node(i)
		s0, e0 := bus.Window()
		s1, e1 := n.Window()
		if e1-s1 > e0-s0 {
			bus = n
		}
	}
	rw, err := NewRandomWaypointFleet(RandomWaypointConfig{
		Seed: 7, Area: geo.Square(10000), NumNodes: 1,
		SpeedMinMPS: 3, SpeedMaxMPS: 10, PauseMax: time.Minute,
		Horizon: tfl.Day,
	})
	if err != nil {
		b.Fatal(err)
	}
	sg, err := NewSensorGridFleet(SensorGridConfig{
		Seed: 7, Area: geo.Square(10000), NumNodes: 1,
		OnWindow: time.Hour, Period: time.Hour, Horizon: tfl.Day,
	})
	if err != nil {
		b.Fatal(err)
	}
	return map[string]Model{
		"bus":      bus,
		"waypoint": rw.Node(0),
		"sensor":   sg.Node(0),
	}
}

// BenchmarkPositionAt measures position queries advancing monotonically in
// small steps — the simulator's access pattern (one query per event, virtual
// time only moves forward).
func BenchmarkPositionAt(b *testing.B) {
	for _, name := range []string{"bus", "waypoint", "sensor"} {
		m := benchModels(b)[name]
		b.Run(name+"/stateless", func(b *testing.B) {
			start, end := m.Window()
			span := end - start
			at := start
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at += 250 * time.Millisecond
				if at >= end {
					at -= span
				}
				m.PositionAt(at)
			}
		})
		b.Run(name+"/cursor", func(b *testing.B) {
			c := NewCursor(m)
			start, end := m.Window()
			span := end - start
			at := start
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				at += 250 * time.Millisecond
				if at >= end {
					at -= span
				}
				c.PositionAt(at)
			}
		})
	}
}
