package mobility

import (
	"testing"
	"testing/quick"
	"time"

	"mlorass/internal/geo"
	"mlorass/internal/tfl"
)

// straightDataset builds a 10 km straight route at 2.78 m/s with one forward
// and one reverse shift, each starting at 1 h and lasting 1 h — almost
// exactly one end-to-end leg, so positions match the pre-shift semantics.
func straightDataset() *tfl.Dataset {
	return &tfl.Dataset{
		Area: geo.Square(20000),
		Routes: []tfl.Route{{
			ID:       "R000",
			Points:   []geo.Point{{X: 0, Y: 0}, {X: 10000, Y: 0}},
			SpeedMPS: 2.78,
		}},
		Trips: []tfl.Trip{
			{ID: 0, RouteID: "R000", Start: time.Hour, Duration: time.Hour},
			{ID: 1, RouteID: "R000", Start: time.Hour, Duration: time.Hour, Reverse: true},
		},
	}
}

func TestNewFleetValidation(t *testing.T) {
	ds := straightDataset()
	ds.Trips[0].RouteID = "missing"
	if _, err := NewFleet(ds); err == nil {
		t.Fatal("unknown route accepted")
	}
	ds = straightDataset()
	ds.Trips[0].Duration = 0
	if _, err := NewFleet(ds); err == nil {
		t.Fatal("zero duration accepted")
	}
	ds = straightDataset()
	ds.Routes[0].Points = ds.Routes[0].Points[:1]
	if _, err := NewFleet(ds); err == nil {
		t.Fatal("degenerate route accepted")
	}
}

func TestPositionForwardTrip(t *testing.T) {
	f, err := NewFleet(straightDataset())
	if err != nil {
		t.Fatal(err)
	}
	bus := f.Bus(0)

	if _, ok := bus.Position(30 * time.Minute); ok {
		t.Fatal("position available before trip start")
	}
	p, ok := bus.Position(time.Hour)
	if !ok || p != (geo.Point{X: 0, Y: 0}) {
		t.Fatalf("start position = %v ok=%v", p, ok)
	}
	p, ok = bus.Position(90 * time.Minute)
	if !ok {
		t.Fatal("inactive mid-trip")
	}
	if p.X < 4990 || p.X > 5010 || p.Y != 0 {
		t.Fatalf("midpoint = %v, want ~(5000,0)", p)
	}
	if _, ok := bus.Position(2 * time.Hour); ok {
		t.Fatal("position available at trip end instant")
	}
}

func TestPositionReverseTrip(t *testing.T) {
	f, err := NewFleet(straightDataset())
	if err != nil {
		t.Fatal(err)
	}
	bus := f.Bus(1)
	p, ok := bus.Position(time.Hour)
	if !ok || p != (geo.Point{X: 10000, Y: 0}) {
		t.Fatalf("reverse start = %v ok=%v", p, ok)
	}
	p, _ = bus.Position(90 * time.Minute)
	if p.X < 4990 || p.X > 5010 {
		t.Fatalf("reverse midpoint = %v", p)
	}
	// Near the end the reverse bus approaches the route origin.
	p, _ = bus.Position(time.Hour + 59*time.Minute)
	if p.X > 200 {
		t.Fatalf("reverse end position = %v, want near origin", p)
	}
}

func TestSpeedComesFromRoute(t *testing.T) {
	f, err := NewFleet(straightDataset())
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Bus(0).SpeedMPS(); got != 2.78 {
		t.Fatalf("speed = %v, want route speed 2.78", got)
	}
}

func TestPingPongShift(t *testing.T) {
	// A 1 km route at 2.78 m/s takes ~360 s per leg; a 1 h shift covers
	// ~10 legs. After two legs (~719 s) the bus is back near the origin.
	ds := &tfl.Dataset{
		Area: geo.Square(20000),
		Routes: []tfl.Route{{
			ID:       "R000",
			Points:   []geo.Point{{X: 0, Y: 0}, {X: 1000, Y: 0}},
			SpeedMPS: 2.78,
		}},
		Trips: []tfl.Trip{{ID: 0, RouteID: "R000", Start: 0, Duration: time.Hour}},
	}
	f, err := NewFleet(ds)
	if err != nil {
		t.Fatal(err)
	}
	bus := f.Bus(0)
	legSec := 1000.0 / 2.78

	// End of first leg: at the far terminus.
	p, ok := bus.Position(time.Duration(legSec * float64(time.Second)))
	if !ok || p.X < 990 {
		t.Fatalf("end of leg 1: %v ok=%v", p, ok)
	}
	// End of second leg: back at the origin.
	p, ok = bus.Position(time.Duration(2 * legSec * float64(time.Second)))
	if !ok || p.X > 10 {
		t.Fatalf("end of leg 2: %v ok=%v", p, ok)
	}
	// Mid third leg: heading out again.
	p, ok = bus.Position(time.Duration(2.5 * legSec * float64(time.Second)))
	if !ok || p.X < 400 || p.X > 600 {
		t.Fatalf("mid leg 3: %v ok=%v", p, ok)
	}
}

func TestRouteSpeedValidation(t *testing.T) {
	ds := straightDataset()
	ds.Routes[0].SpeedMPS = 0
	if _, err := NewFleet(ds); err == nil {
		t.Fatal("zero route speed accepted")
	}
}

func TestActiveAt(t *testing.T) {
	f, err := NewFleet(straightDataset())
	if err != nil {
		t.Fatal(err)
	}
	if got := f.ActiveAt(30 * time.Minute); len(got) != 0 {
		t.Fatalf("active before start: %v", got)
	}
	if got := f.ActiveAt(90 * time.Minute); len(got) != 2 {
		t.Fatalf("active mid-trip = %v, want both buses", got)
	}
	if got := f.ActiveAt(3 * time.Hour); len(got) != 0 {
		t.Fatalf("active after end: %v", got)
	}
}

func TestWithin(t *testing.T) {
	f, err := NewFleet(straightDataset())
	if err != nil {
		t.Fatal(err)
	}
	// At mid-trip both buses sit at ~(5000, 0): each sees the other.
	at := 90 * time.Minute
	got := f.Within(at, geo.Point{X: 5000, Y: 0}, 100, -1)
	if len(got) != 2 {
		t.Fatalf("Within found %v, want both", got)
	}
	got = f.Within(at, geo.Point{X: 5000, Y: 0}, 100, 0)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("Within with exclusion = %v, want [1]", got)
	}
	got = f.Within(at, geo.Point{X: 0, Y: 0}, 100, -1)
	if len(got) != 0 {
		t.Fatalf("Within far away = %v, want none", got)
	}
}

func TestGeneratedFleetPositionsStayInArea(t *testing.T) {
	ds, err := tfl.Generate(tfl.DefaultGenConfig(21, 8, 30*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(ds)
	if err != nil {
		t.Fatal(err)
	}
	for at := time.Duration(0); at < tfl.Day; at += 47 * time.Minute {
		for _, i := range f.ActiveAt(at) {
			p, ok := f.Bus(i).Position(at)
			if !ok {
				t.Fatalf("ActiveAt/Position disagree for bus %d at %v", i, at)
			}
			if !ds.Area.Contains(p) {
				t.Fatalf("bus %d at %v outside area: %v", i, at, p)
			}
		}
	}
}

// Property: a bus's displacement between consecutive instants never exceeds
// speed × elapsed (continuity — buses cannot teleport).
func TestQuickNoTeleport(t *testing.T) {
	f, err := NewFleet(straightDataset())
	if err != nil {
		t.Fatal(err)
	}
	bus := f.Bus(0)
	fn := func(aSec, bSec uint16) bool {
		ta := time.Hour + time.Duration(aSec%3600)*time.Second
		tb := time.Hour + time.Duration(bSec%3600)*time.Second
		if ta > tb {
			ta, tb = tb, ta
		}
		pa, oka := bus.Position(ta)
		pb, okb := bus.Position(tb)
		if !oka || !okb {
			return true
		}
		maxMove := bus.SpeedMPS()*(tb-ta).Seconds() + 1e-6
		return pa.Dist(pb) <= maxMove
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWithin(b *testing.B) {
	ds, err := tfl.Generate(tfl.DefaultGenConfig(1, 25, 15*time.Minute))
	if err != nil {
		b.Fatal(err)
	}
	f, err := NewFleet(ds)
	if err != nil {
		b.Fatal(err)
	}
	center := ds.Area.Center()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Within(12*time.Hour, center, 1000, -1)
	}
}
