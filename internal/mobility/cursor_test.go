package mobility

import (
	"math/rand"
	"testing"
	"time"

	"mlorass/internal/geo"
	"mlorass/internal/tfl"
)

// cursorTestFleets builds one fleet per mobility model, sized so trajectories
// exercise multi-segment routes, many waypoint legs, and duty-cycled windows.
func cursorTestFleets(t *testing.T) map[string]*Fleet {
	t.Helper()
	ds, err := tfl.Generate(tfl.DefaultGenConfig(11, 4, 20*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	buses, err := NewFleet(ds)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := NewRandomWaypointFleet(RandomWaypointConfig{
		Seed: 11, Area: geo.Square(8000), NumNodes: 8,
		SpeedMinMPS: 2, SpeedMaxMPS: 12, PauseMax: 2 * time.Minute,
		Horizon: tfl.Day,
	})
	if err != nil {
		t.Fatal(err)
	}
	sg, err := NewSensorGridFleet(SensorGridConfig{
		Seed: 11, Area: geo.Square(8000), NumNodes: 9,
		OnWindow: 20 * time.Minute, Period: time.Hour, Horizon: tfl.Day,
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Fleet{"buses": buses, "randomwaypoint": rw, "sensorgrid": sg}
}

// TestCursorMatchesStateless is the cursor-correctness property test: for
// every mobility model, Cursor.PositionAt must equal the stateless
// Model.PositionAt bit for bit under random query sequences — monotonic
// runs of small steps (the simulator's pattern), interleaved with arbitrary
// jumps forwards and backwards (index rebuilds, window edges).
func TestCursorMatchesStateless(t *testing.T) {
	for name, fleet := range cursorTestFleets(t) {
		t.Run(name, func(t *testing.T) {
			rnd := rand.New(rand.NewSource(42))
			limit := 8
			if fleet.Len() < limit {
				limit = fleet.Len()
			}
			for i := 0; i < limit; i++ {
				m := fleet.Node(i)
				c := NewCursor(m)
				if c.Model() != m {
					t.Fatalf("node %d: cursor reports wrong model", i)
				}
				start, end := m.Window()
				span := end - start
				at := start
				for q := 0; q < 5000; q++ {
					switch rnd.Intn(10) {
					case 0: // arbitrary jump anywhere, incl. out of window
						at = start - span/10 + time.Duration(rnd.Int63n(int64(span+span/5)))
					case 1: // jump backwards
						at -= time.Duration(rnd.Int63n(int64(span/4 + 1)))
					default: // small monotonic advance
						at += time.Duration(rnd.Int63n(int64(2 * time.Second)))
					}
					want, wantOK := m.PositionAt(at)
					got, gotOK := c.PositionAt(at)
					if wantOK != gotOK || got != want {
						t.Fatalf("node %d query %d at %v: cursor (%v, %v) != stateless (%v, %v)",
							i, q, at, got, gotOK, want, wantOK)
					}
				}
			}
		})
	}
}

// TestCursorZeroAllocMonotonic locks the cursor zero-allocation invariant on
// the hot path: monotonic small-step queries allocate nothing once the
// cursor is warm.
func TestCursorZeroAllocMonotonic(t *testing.T) {
	for name, fleet := range cursorTestFleets(t) {
		t.Run(name, func(t *testing.T) {
			m := fleet.Node(0)
			c := NewCursor(m)
			start, end := m.Window()
			span := end - start
			at := start
			c.PositionAt(at) // warm the hint
			if n := testing.AllocsPerRun(500, func() {
				at += 250 * time.Millisecond
				if at >= end {
					at -= span
				}
				c.PositionAt(at)
			}); n != 0 {
				t.Fatalf("monotonic cursor query allocates %v per op, want 0", n)
			}
		})
	}
}
