package mobility

import (
	"testing"
	"time"

	"mlorass/internal/geo"
)

// Compile-time interface conformance for every model; sensors additionally
// expose their fixed position for flicker-proof spatial indexing.
var (
	_ Model       = (*Bus)(nil)
	_ Model       = (*waypointNode)(nil)
	_ Model       = (*sensorNode)(nil)
	_ StaticModel = (*sensorNode)(nil)
)

// TestSensorFixedPositionKnownWhileAsleep pins the StaticModel contract: the
// position is available even in an off-window, where PositionAt refuses.
func TestSensorFixedPositionKnownWhileAsleep(t *testing.T) {
	f, err := NewSensorGridFleet(sensorConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < f.Len(); i++ {
		n := f.Node(i)
		sm, ok := n.(StaticModel)
		if !ok {
			t.Fatalf("sensor %d lost StaticModel", i)
		}
		var asleep time.Duration
		found := false
		for at := time.Duration(0); at < 6*time.Hour; at += time.Minute {
			if !n.Active(at) {
				asleep, found = at, true
				break
			}
		}
		if !found {
			continue // pathological phase: always on at minute marks
		}
		if _, ok := n.PositionAt(asleep); ok {
			t.Fatalf("sensor %d positioned while asleep", i)
		}
		p, okAwake := n.PositionAt(0)
		if okAwake && sm.FixedPosition() != p {
			t.Fatalf("sensor %d fixed position %v != live position %v", i, sm.FixedPosition(), p)
		}
	}
}

func rwpConfig() RandomWaypointConfig {
	return RandomWaypointConfig{
		Seed:        7,
		Area:        geo.Square(5000),
		NumNodes:    12,
		SpeedMinMPS: 2,
		SpeedMaxMPS: 10,
		PauseMax:    30 * time.Second,
		Horizon:     2 * time.Hour,
	}
}

func TestRandomWaypointFleet(t *testing.T) {
	f, err := NewRandomWaypointFleet(rwpConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 12 {
		t.Fatalf("fleet size %d", f.Len())
	}
	area := geo.Square(5000)
	for i := 0; i < f.Len(); i++ {
		n := f.Node(i)
		if n.ID() != i {
			t.Fatalf("node %d has ID %d", i, n.ID())
		}
		if s := n.SpeedMPS(); s < 2 || s > 10 {
			t.Fatalf("node %d speed bound %v outside [2, 10]", i, s)
		}
		start, end := n.Window()
		if start != 0 || end != 2*time.Hour {
			t.Fatalf("node %d window [%v, %v)", i, start, end)
		}
		for _, at := range []time.Duration{0, time.Minute, time.Hour, 2*time.Hour - time.Second} {
			p, ok := n.PositionAt(at)
			if !ok {
				t.Fatalf("node %d inactive at %v", i, at)
			}
			if !area.Contains(p) {
				t.Fatalf("node %d at %v left the area: %v", i, at, p)
			}
		}
		if _, ok := n.PositionAt(2 * time.Hour); ok {
			t.Fatalf("node %d active at horizon", i)
		}
	}
}

// TestRandomWaypointSpeedBound verifies trajectories never exceed the node's
// advertised speed bound: the spatial index's correctness depends on it.
func TestRandomWaypointSpeedBound(t *testing.T) {
	f, err := NewRandomWaypointFleet(rwpConfig())
	if err != nil {
		t.Fatal(err)
	}
	const step = 10 * time.Second
	for i := 0; i < f.Len(); i++ {
		n := f.Node(i)
		bound := n.SpeedMPS() * step.Seconds() * 1.0001
		prev, _ := n.PositionAt(0)
		for at := step; at < 2*time.Hour; at += step {
			p, ok := n.PositionAt(at)
			if !ok {
				break
			}
			if d := prev.Dist(p); d > bound {
				t.Fatalf("node %d moved %vm in %v, bound %vm", i, d, step, bound)
			}
			prev = p
		}
	}
}

func TestRandomWaypointDeterminism(t *testing.T) {
	a, err := NewRandomWaypointFleet(rwpConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRandomWaypointFleet(rwpConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.Len(); i++ {
		for _, at := range []time.Duration{0, 13 * time.Minute, 90 * time.Minute} {
			pa, _ := a.Node(i).PositionAt(at)
			pb, _ := b.Node(i).PositionAt(at)
			if pa != pb {
				t.Fatalf("node %d diverged at %v: %v vs %v", i, at, pa, pb)
			}
		}
	}
}

func TestRandomWaypointValidation(t *testing.T) {
	muts := []func(*RandomWaypointConfig){
		func(c *RandomWaypointConfig) { c.NumNodes = 0 },
		func(c *RandomWaypointConfig) { c.SpeedMinMPS = 0 },
		func(c *RandomWaypointConfig) { c.SpeedMaxMPS = 1 },
		func(c *RandomWaypointConfig) { c.Horizon = 0 },
		func(c *RandomWaypointConfig) { c.Area = geo.Rect{} },
		func(c *RandomWaypointConfig) { c.PauseMax = -time.Second },
	}
	for i, mut := range muts {
		cfg := rwpConfig()
		mut(&cfg)
		if _, err := NewRandomWaypointFleet(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func sensorConfig() SensorGridConfig {
	return SensorGridConfig{
		Seed:     3,
		Area:     geo.Square(4000),
		NumNodes: 9,
		OnWindow: 10 * time.Minute,
		Period:   time.Hour,
		Horizon:  6 * time.Hour,
	}
}

func TestSensorGridFleet(t *testing.T) {
	f, err := NewSensorGridFleet(sensorConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 9 {
		t.Fatalf("fleet size %d", f.Len())
	}
	if f.MaxSpeedMPS() != 0 {
		t.Fatalf("static fleet max speed %v", f.MaxSpeedMPS())
	}
	area := geo.Square(4000)
	for i := 0; i < f.Len(); i++ {
		n := f.Node(i)
		if n.SpeedMPS() != 0 {
			t.Fatalf("sensor %d moves", i)
		}
		// Positions are fixed: every active instant reports the same point.
		var fixed geo.Point
		seen := false
		active := 0
		const step = time.Minute
		for at := time.Duration(0); at < 6*time.Hour; at += step {
			p, ok := n.PositionAt(at)
			if !ok {
				continue
			}
			active++
			if !area.Contains(p) {
				t.Fatalf("sensor %d outside area: %v", i, p)
			}
			if seen && p != fixed {
				t.Fatalf("sensor %d moved from %v to %v", i, fixed, p)
			}
			fixed, seen = p, true
		}
		// Duty cycle: ~10 min per hour over 6 h = ~60 of 360 samples.
		if active < 42 || active > 78 {
			t.Fatalf("sensor %d active %d/360 minutes, want ~60 (10 min/h duty)", i, active)
		}
	}
}

func TestSensorGridAlwaysOnWhenWindowEqualsPeriod(t *testing.T) {
	cfg := sensorConfig()
	cfg.OnWindow = cfg.Period
	f, err := NewSensorGridFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for at := time.Duration(0); at < 6*time.Hour; at += 7 * time.Minute {
		if !f.Node(0).Active(at) {
			t.Fatalf("always-on sensor inactive at %v", at)
		}
	}
}

func TestSensorGridValidation(t *testing.T) {
	muts := []func(*SensorGridConfig){
		func(c *SensorGridConfig) { c.NumNodes = 0 },
		func(c *SensorGridConfig) { c.OnWindow = 0 },
		func(c *SensorGridConfig) { c.OnWindow = 2 * c.Period },
		func(c *SensorGridConfig) { c.Horizon = 0 },
		func(c *SensorGridConfig) { c.Area = geo.Rect{} },
	}
	for i, mut := range muts {
		cfg := sensorConfig()
		mut(&cfg)
		if _, err := NewSensorGridFleet(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestFromModelsRejectsNil(t *testing.T) {
	if _, err := FromModels([]Model{nil}); err == nil {
		t.Fatal("nil model accepted")
	}
}

func TestFleetMaxSpeed(t *testing.T) {
	f, err := NewRandomWaypointFleet(rwpConfig())
	if err != nil {
		t.Fatal(err)
	}
	max := f.MaxSpeedMPS()
	if max < 2 || max > 10 {
		t.Fatalf("max speed %v outside configured band", max)
	}
	for i := 0; i < f.Len(); i++ {
		if s := f.Node(i).SpeedMPS(); s > max {
			t.Fatalf("node %d speed %v above fleet max %v", i, s, max)
		}
	}
}
