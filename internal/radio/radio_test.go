package radio

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mlorass/internal/geo"
)

func TestSpreadingFactorValid(t *testing.T) {
	for sf := SF7; sf <= SF12; sf++ {
		if !sf.Valid() {
			t.Errorf("%v reported invalid", sf)
		}
	}
	if SpreadingFactor(6).Valid() || SpreadingFactor(13).Valid() {
		t.Error("out-of-range SF reported valid")
	}
}

func TestSensitivityMonotone(t *testing.T) {
	// Higher SF must be more sensitive (lower dBm threshold).
	prev := SF7.Sensitivity()
	for sf := SF8; sf <= SF12; sf++ {
		s := sf.Sensitivity()
		if s >= prev {
			t.Fatalf("%v sensitivity %v not below %v", sf, s, prev)
		}
		prev = s
	}
}

func TestDefaultPHYValidates(t *testing.T) {
	for sf := SF7; sf <= SF12; sf++ {
		p := DefaultPHY(sf)
		if err := p.Validate(); err != nil {
			t.Errorf("DefaultPHY(%v): %v", sf, err)
		}
		if sf >= SF11 && !p.LowDataRateOptimize {
			t.Errorf("DefaultPHY(%v) should enable LDRO", sf)
		}
	}
}

func TestPHYValidateRejectsBadConfigs(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*PHYParams)
	}{
		{"bad SF", func(p *PHYParams) { p.SF = 3 }},
		{"zero BW", func(p *PHYParams) { p.BandwidthHz = 0 }},
		{"bad CR low", func(p *PHYParams) { p.CodingRate = 0 }},
		{"bad CR high", func(p *PHYParams) { p.CodingRate = 5 }},
		{"neg preamble", func(p *PHYParams) { p.PreambleSymbols = -1 }},
	}
	for _, tt := range tests {
		p := DefaultPHY(SF7)
		tt.mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", tt.name)
		}
	}
}

func TestSymbolTime(t *testing.T) {
	// SF7 @ 125 kHz: 2^7/125000 s = 1.024 ms.
	got := DefaultPHY(SF7).SymbolTime()
	want := 1024 * time.Microsecond
	if d := got - want; d < -time.Microsecond || d > time.Microsecond {
		t.Fatalf("SF7 symbol time = %v, want ~%v", got, want)
	}
}

func TestAirtimeKnownValues(t *testing.T) {
	// Reference values from the Semtech AN1200.13 calculator.
	tests := []struct {
		sf      SpreadingFactor
		payload int
		wantMS  float64
		tolMS   float64
	}{
		{SF7, 20, 56.6, 1.0},   // ~56.58 ms
		{SF7, 51, 102.7, 1.5},  // ~102.66 ms
		{SF12, 20, 1318.9, 20}, // ~1318.91 ms with LDRO
	}
	for _, tt := range tests {
		got := DefaultPHY(tt.sf).Airtime(tt.payload).Seconds() * 1000
		if math.Abs(got-tt.wantMS) > tt.tolMS {
			t.Errorf("%v/%dB airtime = %.2f ms, want %.2f±%.1f", tt.sf, tt.payload, got, tt.wantMS, tt.tolMS)
		}
	}
}

func TestAirtimeMonotonicInPayload(t *testing.T) {
	p := DefaultPHY(SF7)
	prev := time.Duration(0)
	for bytes := 0; bytes <= 255; bytes += 5 {
		at := p.Airtime(bytes)
		if at < prev {
			t.Fatalf("airtime decreased at %d bytes", bytes)
		}
		prev = at
	}
}

func TestAirtimeNegativePayloadClamps(t *testing.T) {
	p := DefaultPHY(SF7)
	if p.Airtime(-10) != p.Airtime(0) {
		t.Fatal("negative payload not clamped to zero")
	}
}

func TestBitRate(t *testing.T) {
	// SF7/125k CR4/5: 7 * 125000/128 * 0.8 = 5468.75 bit/s.
	got := DefaultPHY(SF7).BitRate()
	if math.Abs(got-5468.75) > 0.01 {
		t.Fatalf("SF7 bitrate = %v", got)
	}
	// Duty-cycled SF12 rate lands near the paper's 2.5 bit/s headline:
	// 12 * 125000/4096 * 0.8 * 1% ≈ 2.9 bit/s.
	sf12 := DefaultPHY(SF12).BitRate() * 0.01
	if sf12 < 2 || sf12 > 4 {
		t.Fatalf("SF12 duty-cycled rate = %v, want 2-4 bit/s", sf12)
	}
}

func TestDutyCycleWait(t *testing.T) {
	at := 100 * time.Millisecond
	got := DutyCycleWait(at, 0.01)
	want := 9900 * time.Millisecond
	if d := got - want; d < -time.Millisecond || d > time.Millisecond {
		t.Fatalf("DutyCycleWait = %v, want %v", got, want)
	}
	if DutyCycleWait(at, 0) != 0 || DutyCycleWait(at, 1) != 0 {
		t.Fatal("degenerate duty fractions should yield zero wait")
	}
}

func TestPathLossValidation(t *testing.T) {
	if err := DefaultPathLoss().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := []PathLoss{
		{Exponent: 0, RefDistM: 40},
		{Exponent: 2, RefDistM: 0},
		{Exponent: 2, RefDistM: 40, ShadowSigmaDB: -1},
	}
	for i, pl := range bad {
		if err := pl.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestMeanLossMonotone(t *testing.T) {
	pl := DefaultPathLoss()
	prev := DB(-math.MaxFloat64)
	for _, d := range []Meters{1, 40, 100, 500, 1000, 5000, 20000} {
		loss := pl.MeanLossDB(d)
		if loss < prev {
			t.Fatalf("loss decreased at %v m", d)
		}
		prev = loss
	}
}

func TestMeanLossClampsBelowRefDist(t *testing.T) {
	pl := DefaultPathLoss()
	if pl.MeanLossDB(1) != pl.MeanLossDB(40) {
		t.Fatal("loss below reference distance not clamped")
	}
}

func TestRangeForRoundTrip(t *testing.T) {
	pl := DefaultPathLoss()
	r := pl.RangeFor(14, SF7.Sensitivity())
	// At the computed range, mean RSSI equals sensitivity.
	if got := pl.MeanRSSI(14, r); math.Abs(float64(got.Sub(SF7.Sensitivity()))) > 1e-6 {
		t.Fatalf("RSSI at RangeFor distance = %v, want %v", got, SF7.Sensitivity())
	}
	// The sub-urban model yields a mean SF7 range in the high hundreds of
	// metres (≈833 m at 14 dBm), the same order as the paper's 1 km gate.
	if r < 500 || r > 2000 {
		t.Fatalf("SF7/14 dBm mean range = %v m, expected 0.5-2 km", r)
	}
}

func TestRangeForNoBudget(t *testing.T) {
	pl := DefaultPathLoss()
	if got := pl.RangeFor(-200, -124); got != pl.RefDistM {
		t.Fatalf("RangeFor with no budget = %v, want RefDistM", got)
	}
}

func TestRSSIShadowingZeroSigmaDeterministic(t *testing.T) {
	pl := DefaultPathLoss()
	pl.ShadowSigmaDB = 0
	if pl.RSSI(14, 500, nil) != pl.MeanRSSI(14, 500) {
		t.Fatal("zero-sigma RSSI differs from mean")
	}
}

func newTestMedium(t *testing.T, maxRange Meters) *Medium {
	t.Helper()
	loss := DefaultPathLoss()
	loss.ShadowSigmaDB = 0 // deterministic for tests
	m, err := NewMedium(MediumConfig{
		Loss:           loss,
		SensitivityDBm: SF7.Sensitivity(),
		CaptureDB:      6,
		MaxRangeM:      maxRange,
		Seed:           1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMediumSimpleReception(t *testing.T) {
	m := newTestMedium(t, 1000)
	tx := m.Begin(1, pt(0, 0), 14, 0, 100*time.Millisecond, "frame")
	rec := m.Receive(tx, pt(500, 0))
	if !rec.OK() {
		t.Fatalf("outcome = %v, want received", rec.Outcome)
	}
	if rec.RSSIDBm >= 0 || rec.RSSIDBm < -124 {
		t.Fatalf("implausible RSSI %v", rec.RSSIDBm)
	}
	if s := m.Stats(); s.Transmissions != 1 || s.Receptions != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestMediumRangeGate(t *testing.T) {
	m := newTestMedium(t, 1000)
	tx := m.Begin(1, pt(0, 0), 14, 0, time.Millisecond, nil)
	rec := m.Receive(tx, pt(1001, 0))
	if rec.Outcome != OutcomeOutOfRange {
		t.Fatalf("outcome = %v, want out-of-range", rec.Outcome)
	}
}

func TestMediumNoRangeGate(t *testing.T) {
	m := newTestMedium(t, 0)
	tx := m.Begin(1, pt(0, 0), 14, 0, time.Millisecond, nil)
	// 800 m: inside the SF7 mean range (~833 m), no hard gate configured.
	if rec := m.Receive(tx, pt(800, 0)); !rec.OK() {
		t.Fatalf("outcome = %v at 800 m without gate", rec.Outcome)
	}
}

func TestMediumBelowSensitivity(t *testing.T) {
	m := newTestMedium(t, 0)
	tx := m.Begin(1, pt(0, 0), 14, 0, time.Millisecond, nil)
	rec := m.Receive(tx, pt(100000, 0)) // 100 km
	if rec.Outcome != OutcomeBelowSensitivity {
		t.Fatalf("outcome = %v, want below-sensitivity", rec.Outcome)
	}
}

func TestMediumCollision(t *testing.T) {
	m := newTestMedium(t, 0)
	// Two equidistant overlapping transmitters: neither captures.
	tx1 := m.Begin(1, pt(0, 0), 14, 0, 100*time.Millisecond, nil)
	m.Begin(2, pt(1000, 0), 14, 50*time.Millisecond, 150*time.Millisecond, nil)
	rec := m.Receive(tx1, pt(500, 0))
	if rec.Outcome != OutcomeCollision {
		t.Fatalf("outcome = %v, want collision", rec.Outcome)
	}
}

func TestMediumCaptureEffect(t *testing.T) {
	m := newTestMedium(t, 0)
	// Near transmitter is >6 dB stronger than the far interferer at the
	// receiver: capture succeeds.
	tx1 := m.Begin(1, pt(450, 0), 14, 0, 100*time.Millisecond, nil)
	m.Begin(2, pt(5000, 0), 14, 0, 100*time.Millisecond, nil)
	rec := m.Receive(tx1, pt(500, 0))
	if !rec.OK() {
		t.Fatalf("outcome = %v, want captured reception", rec.Outcome)
	}
}

func TestMediumNonOverlappingNoCollision(t *testing.T) {
	m := newTestMedium(t, 0)
	tx1 := m.Begin(1, pt(0, 0), 14, 0, 100*time.Millisecond, nil)
	// Second transmission starts exactly when the first ends: no overlap.
	m.Begin(2, pt(10, 0), 14, 100*time.Millisecond, 200*time.Millisecond, nil)
	if rec := m.Receive(tx1, pt(500, 0)); !rec.OK() {
		t.Fatalf("outcome = %v, want received", rec.Outcome)
	}
}

func TestMediumSameSourceNoSelfInterference(t *testing.T) {
	m := newTestMedium(t, 0)
	// The same node's other frames (e.g. a mistaken double Begin) do not
	// interfere with themselves.
	tx1 := m.Begin(1, pt(0, 0), 14, 0, 100*time.Millisecond, nil)
	m.Begin(1, pt(0, 0), 14, 0, 100*time.Millisecond, nil)
	if rec := m.Receive(tx1, pt(500, 0)); !rec.OK() {
		t.Fatalf("outcome = %v, want received", rec.Outcome)
	}
}

func TestMediumPrunesOldTransmissions(t *testing.T) {
	m := newTestMedium(t, 0)
	for i := 0; i < 100; i++ {
		start := time.Duration(i) * time.Second
		tx := m.Begin(i, pt(0, 0), 14, start, start+10*time.Millisecond, nil)
		m.Receive(tx, pt(100, 0))
	}
	if n := m.ActiveCount(); n > 2 {
		t.Fatalf("active list grew to %d, pruning broken", n)
	}
}

func TestNewMediumValidation(t *testing.T) {
	if _, err := NewMedium(MediumConfig{Loss: PathLoss{}}); err == nil {
		t.Fatal("invalid path loss accepted")
	}
	if _, err := NewMedium(MediumConfig{Loss: DefaultPathLoss(), CaptureDB: -1}); err == nil {
		t.Fatal("negative capture threshold accepted")
	}
}

// Property: airtime is always positive and under 3 s for LoRaWAN payloads.
func TestQuickAirtimeBounds(t *testing.T) {
	f := func(payload uint8, sfRaw uint8) bool {
		sf := SF7 + SpreadingFactor(sfRaw%6)
		at := DefaultPHY(sf).Airtime(int(payload))
		// SF12 with a full 255-byte payload tops out below 10 s; every
		// LoRaWAN-legal combination is far shorter.
		return at > 0 && at < 10*time.Second
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mean RSSI decreases with distance.
func TestQuickRSSIMonotone(t *testing.T) {
	pl := DefaultPathLoss()
	f := func(a, b uint16) bool {
		da, db := Meters(a)+1, Meters(b)+1
		if da > db {
			da, db = db, da
		}
		return pl.MeanRSSI(14, da) >= pl.MeanRSSI(14, db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAirtime(b *testing.B) {
	p := DefaultPHY(SF7)
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		sink = p.Airtime(i % 255)
	}
	_ = sink
}

func BenchmarkMediumReceive(b *testing.B) {
	loss := DefaultPathLoss()
	m, err := NewMedium(MediumConfig{Loss: loss, SensitivityDBm: SF7.Sensitivity(), CaptureDB: 6, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	tx := m.Begin(1, pt(0, 0), 14, 0, 50*time.Millisecond, nil)
	rx := pt(400, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Receive(tx, rx)
	}
}

func pt(x, y float64) geo.Point { return geo.Point{X: x, Y: y} }
