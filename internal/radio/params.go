// Package radio implements the LoRa physical layer the simulation runs on:
// spreading-factor parameters, the Semtech time-on-air formula, a
// log-distance path-loss model with shadowing (exponent 2.32, the sub-urban
// calibration the paper cites from Petäjäjärvi et al.), RSSI computation, and
// a shared-channel medium with collision and capture-effect modelling.
//
// This package is the reproduction's substitute for the FLoRa framework on
// OMNeT++ (see DESIGN.md §2): it implements exactly the PHY subset the
// paper's evaluation exercises — one channel, a fixed spreading factor, 1 %
// duty cycle enforced above this layer, and range-gated links.
package radio

import (
	"fmt"
	"math"
	"time"
)

// SpreadingFactor is a LoRa spreading factor, SF7 through SF12.
type SpreadingFactor int

// Supported spreading factors. The paper's evaluation fixes SF7 (Sec.
// VII-A5) because adaptive data rate degrades under mobility.
const (
	SF7 SpreadingFactor = iota + 7
	SF8
	SF9
	SF10
	SF11
	SF12
)

// Valid reports whether the spreading factor is in [SF7, SF12].
func (sf SpreadingFactor) Valid() bool { return sf >= SF7 && sf <= SF12 }

// String renders e.g. "SF7".
func (sf SpreadingFactor) String() string { return fmt.Sprintf("SF%d", int(sf)) }

// Sensitivity returns the receiver sensitivity in dBm for this spreading
// factor at 125 kHz bandwidth (SX1276 datasheet values, as used by FLoRa).
func (sf SpreadingFactor) Sensitivity() DBm {
	switch sf {
	case SF7:
		return -124
	case SF8:
		return -127
	case SF9:
		return -130
	case SF10:
		return -133
	case SF11:
		return -135
	case SF12:
		return -137
	default:
		return 0
	}
}

// RequiredSNR returns the minimum demodulation SNR in dB for this spreading
// factor (SX1276 datasheet: -7.5 dB at SF7 down to -20 dB at SF12, 2.5 dB
// per step). It is the floor the ADR margin computation measures against.
func (sf SpreadingFactor) RequiredSNR() DB {
	if !sf.Valid() {
		return 0
	}
	return DB(-7.5 - 2.5*float64(sf-SF7))
}

// NoiseFigureDB is the receiver noise figure assumed by the SNR conversion
// (a typical LoRa gateway front end).
const NoiseFigureDB DB = 6

// NoiseFloorDBm returns the thermal noise floor for the given bandwidth:
// -174 dBm/Hz + 10·log10(BW) + noise figure. For the 125 kHz LoRaWAN
// channel this is ≈ -117 dBm.
func NoiseFloorDBm(bw Hz) DBm {
	if bw <= 0 {
		return 0
	}
	return DBm(-174 + 10*math.Log10(float64(bw)) + float64(NoiseFigureDB))
}

// SNRFromRSSI converts a received signal strength to SNR against the
// bandwidth's noise floor — the quantity the network server's ADR history
// records per uplink.
func SNRFromRSSI(rssi DBm, bw Hz) DB {
	return rssi.Sub(NoiseFloorDBm(bw))
}

// PHYParams describes one LoRa transmission configuration.
type PHYParams struct {
	// SF is the spreading factor.
	SF SpreadingFactor
	// BandwidthHz is the channel bandwidth; LoRaWAN EU868 data channels
	// use 125 kHz.
	BandwidthHz Hz
	// CodingRate is the coding-rate denominator offset: 1 for 4/5 ... 4
	// for 4/8. LoRaWAN uses 4/5.
	CodingRate int
	// PreambleSymbols is the preamble length; LoRaWAN uses 8.
	PreambleSymbols int
	// ExplicitHeader enables the PHY header (LoRaWAN always does).
	ExplicitHeader bool
	// CRC enables the payload CRC (LoRaWAN uplinks always do).
	CRC bool
	// LowDataRateOptimize must be enabled for SF11/SF12 at 125 kHz.
	LowDataRateOptimize bool
}

// DefaultPHY returns the LoRaWAN EU868 configuration the paper evaluates:
// the given spreading factor at 125 kHz, CR 4/5, 8-symbol preamble, explicit
// header and CRC, with low-data-rate optimisation switched on automatically
// for SF11/SF12.
func DefaultPHY(sf SpreadingFactor) PHYParams {
	return PHYParams{
		SF:                  sf,
		BandwidthHz:         125000,
		CodingRate:          1,
		PreambleSymbols:     8,
		ExplicitHeader:      true,
		CRC:                 true,
		LowDataRateOptimize: sf >= SF11,
	}
}

// Validate reports configuration errors.
func (p PHYParams) Validate() error {
	if !p.SF.Valid() {
		return fmt.Errorf("radio: invalid spreading factor %d", int(p.SF))
	}
	if p.BandwidthHz <= 0 {
		return fmt.Errorf("radio: bandwidth %v Hz must be positive", p.BandwidthHz)
	}
	if p.CodingRate < 1 || p.CodingRate > 4 {
		return fmt.Errorf("radio: coding rate offset %d out of [1,4]", p.CodingRate)
	}
	if p.PreambleSymbols < 0 {
		return fmt.Errorf("radio: negative preamble length %d", p.PreambleSymbols)
	}
	return nil
}

// SymbolTime returns the duration of one LoRa symbol: 2^SF / BW.
func (p PHYParams) SymbolTime() time.Duration {
	sec := math.Exp2(float64(p.SF)) / float64(p.BandwidthHz)
	return time.Duration(sec * float64(time.Second))
}

// Airtime returns the on-air duration of a packet with payloadBytes of PHY
// payload, using the Semtech SX1276 formula (AN1200.13). This drives both
// the collision window and the 1 % duty-cycle budget.
func (p PHYParams) Airtime(payloadBytes int) time.Duration {
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	ts := math.Exp2(float64(p.SF)) / float64(p.BandwidthHz) // seconds per symbol
	preamble := (float64(p.PreambleSymbols) + 4.25) * ts

	de := 0.0
	if p.LowDataRateOptimize {
		de = 1
	}
	h := 1.0 // 1 => no explicit header
	if p.ExplicitHeader {
		h = 0
	}
	crc := 0.0
	if p.CRC {
		crc = 1
	}
	num := 8*float64(payloadBytes) - 4*float64(p.SF) + 28 + 16*crc - 20*h
	den := 4 * (float64(p.SF) - 2*de)
	payloadSymb := 8.0
	if num > 0 {
		payloadSymb += math.Ceil(num/den) * float64(p.CodingRate+4)
	}
	total := preamble + payloadSymb*ts
	return time.Duration(total * float64(time.Second))
}

// BitRate returns the nominal PHY bit rate in bits per second:
// SF * BW / 2^SF * CR. For SF7/125 kHz CR4/5 this is about 5.5 kbit/s; the
// paper's headline "2.5 bit/s" figure for SF12 arises after the 1 % duty
// cycle is applied on top (handled by the MAC layer).
func (p PHYParams) BitRate() float64 {
	cr := 4.0 / float64(4+p.CodingRate)
	return float64(p.SF) * float64(p.BandwidthHz) / math.Exp2(float64(p.SF)) * cr
}

// DutyCycleWait returns how long a transmitter must stay silent after a
// transmission of duration airtime to respect the duty-cycle fraction (e.g.
// 0.01 for the 1 % EU868 general data channels): wait = airtime/duty -
// airtime.
func DutyCycleWait(airtime time.Duration, duty float64) time.Duration {
	if duty <= 0 || duty >= 1 {
		return 0
	}
	total := float64(airtime) / duty
	return time.Duration(total) - airtime
}
