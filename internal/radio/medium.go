package radio

import (
	"fmt"
	"time"

	"mlorass/internal/geo"
	"mlorass/internal/rng"
)

// Outcome classifies the result of attempting to receive a transmission.
type Outcome int

// Reception outcomes.
const (
	// OutcomeReceived means the frame was decoded successfully.
	OutcomeReceived Outcome = iota + 1
	// OutcomeOutOfRange means the receiver was beyond the hard
	// connectivity gate (the paper's fixed 0.5/1 km ranges).
	OutcomeOutOfRange
	// OutcomeBelowSensitivity means the RSSI after path loss and
	// shadowing fell below the spreading factor's sensitivity.
	OutcomeBelowSensitivity
	// OutcomeCollision means an overlapping same-channel transmission
	// destroyed the frame (no capture).
	OutcomeCollision
)

// String names the outcome for reports and test failures.
func (o Outcome) String() string {
	switch o {
	case OutcomeReceived:
		return "received"
	case OutcomeOutOfRange:
		return "out-of-range"
	case OutcomeBelowSensitivity:
		return "below-sensitivity"
	case OutcomeCollision:
		return "collision"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Reception is the result of one receive attempt, including the RSSI the
// receiver observed (valid for every outcome except OutcomeOutOfRange).
type Reception struct {
	Outcome Outcome
	RSSIDBm DBm
}

// OK reports whether the frame was decoded.
func (r Reception) OK() bool { return r.Outcome == OutcomeReceived }

// Transmission is one frame on the air. Payload is opaque to the medium; the
// MAC layer stores its frame there.
type Transmission struct {
	ID       uint64
	From     int
	Pos      geo.Point
	PowerDBm DBm
	Start    time.Duration
	End      time.Duration
	Payload  any
}

// MediumConfig parameterises the shared channel.
type MediumConfig struct {
	// Loss is the path-loss model.
	Loss PathLoss
	// SensitivityDBm is the receiver sensitivity (per the configured SF).
	SensitivityDBm DBm
	// CaptureDB is the co-channel rejection: a frame survives overlap if
	// its RSSI exceeds the strongest interferer by at least this margin.
	// FLoRa and most LoRa studies use 6 dB.
	CaptureDB DB
	// MaxRangeM is a hard connectivity gate in metres; 0 disables it.
	// The paper gates device↔gateway links at 1 km and device↔device
	// links at 0.5 km (urban) or 1 km (rural).
	MaxRangeM Meters
	// Seed seeds the shadowing stream.
	Seed uint64
}

// Medium is a single shared LoRa channel: it tracks in-flight transmissions
// and answers receive queries with collision and capture modelling. All
// nodes in the paper's evaluation share one channel and one SF, so one
// Medium instance (per link class) models the whole network. Not safe for
// concurrent use; it lives on the single-threaded simulator.
type Medium struct {
	cfg    MediumConfig
	shadow *rng.Source
	active []*Transmission
	nextID uint64

	// pool recycles Transmission values pruned from the active list, so
	// steady-state Begin calls allocate nothing.
	pool []*Transmission

	// Stats counts outcomes for the overhead/diagnostics reports.
	stats MediumStats
}

// MediumStats aggregates channel-level counters.
type MediumStats struct {
	Transmissions    uint64
	Receptions       uint64
	Collisions       uint64
	BelowSensitivity uint64
	OutOfRange       uint64
}

// NewMedium builds a medium; it panics only on programmer error (invalid
// path-loss model), reported as error instead.
func NewMedium(cfg MediumConfig) (*Medium, error) {
	if err := cfg.Loss.Validate(); err != nil {
		return nil, err
	}
	if cfg.CaptureDB < 0 {
		return nil, fmt.Errorf("radio: capture threshold %v must be non-negative", cfg.CaptureDB)
	}
	return &Medium{cfg: cfg, shadow: rng.New(cfg.Seed)}, nil
}

// Config returns the medium's configuration.
func (m *Medium) Config() MediumConfig { return m.cfg }

// Stats returns a copy of the channel counters.
func (m *Medium) Stats() MediumStats { return m.stats }

// Begin registers a transmission that occupies the channel from start to
// end. The returned Transmission must be passed to Receive by interested
// receivers at its end time; old transmissions are pruned lazily.
//
// The medium owns the returned Transmission: once it has ended and a later
// Receive prunes it, the value is recycled by a subsequent Begin. Callers
// must not retain the pointer past the event that resolves the
// transmission (virtual time reaching End).
//
//mlorass:hotpath
func (m *Medium) Begin(from int, pos geo.Point, power DBm, start, end time.Duration, payload any) *Transmission {
	m.nextID++
	var tx *Transmission
	if n := len(m.pool); n > 0 {
		tx = m.pool[n-1]
		m.pool[n-1] = nil
		m.pool = m.pool[:n-1]
	} else {
		//lint:ignore hotpathlint pool warm-up only: steady state recycles pruned transmissions
		tx = &Transmission{}
	}
	*tx = Transmission{
		ID:       m.nextID,
		From:     from,
		Pos:      pos,
		PowerDBm: power,
		Start:    start,
		End:      end,
		Payload:  payload,
	}
	m.active = append(m.active, tx)
	m.stats.Transmissions++
	return tx
}

// prune recycles transmissions that ended strictly before cutoff, keeping
// the active list short. Called internally from Receive.
//
//mlorass:hotpath
func (m *Medium) prune(cutoff time.Duration) {
	keep := m.active[:0]
	for _, tx := range m.active {
		if tx.End >= cutoff {
			keep = append(keep, tx)
		} else {
			m.pool = append(m.pool, tx)
		}
	}
	// Zero the tail so the active list holds no duplicate references.
	for i := len(keep); i < len(m.active); i++ {
		m.active[i] = nil
	}
	m.active = keep
}

// ActiveCount returns the number of transmissions still tracked (diagnostic).
func (m *Medium) ActiveCount() int { return len(m.active) }

// ImportTx registers a transmission owned by another medium instance (a
// foreign simulation shard) so local receive queries see it as an
// interferer. It does not count toward stats.Transmissions — the owning
// shard's Begin already did — so summed per-shard stats match a single
// shared medium. Local IDs start at 1 and imported copies keep ID 0; the
// capture scan's From-based self-skip covers both.
//
//mlorass:hotpath
func (m *Medium) ImportTx(from int, pos geo.Point, power DBm, start, end time.Duration) {
	var tx *Transmission
	if n := len(m.pool); n > 0 {
		tx = m.pool[n-1]
		m.pool[n-1] = nil
		m.pool = m.pool[:n-1]
	} else {
		//lint:ignore hotpathlint pool warm-up only: steady state recycles pruned transmissions
		tx = &Transmission{}
	}
	*tx = Transmission{
		From:     from,
		Pos:      pos,
		PowerDBm: power,
		Start:    start,
		End:      end,
	}
	m.active = append(m.active, tx)
}

// Receive evaluates whether a receiver at rxPos decodes tx. Call it at the
// transmission's end time so all overlapping interferers are registered.
// Each call makes one shadowing draw, so runs remain deterministic given
// deterministic event order.
//
//mlorass:hotpath
func (m *Medium) Receive(tx *Transmission, rxPos geo.Point) Reception {
	return m.receive(tx, rxPos, m.shadow, tx.Start)
}

// ReceiveKeyed is Receive with the shadowing draw taken from a stream
// derived from key instead of the medium's sequential shadow stream. Keys
// mixed from intrinsic identities (seed, sender, frame sequence, receiver)
// make the draw independent of global draw order, which is what lets
// sharded runs produce shard-count-invariant results.
//
// keepSince replaces Receive's tx.Start prune cutoff: only transmissions
// ending before it are evicted before the capture scan. Receive's cutoff is
// execution-order dependent — a short frame that starts late but resolves
// early evicts interferers that still overlap a longer, later-resolving
// frame — which is fine for one shared pool but partition-dependent when
// each shard prunes its own. Callers pass an epoch all shards share (the
// sharded engine's window start), making the interferer set a pure function
// of the global transmission history.
//
//mlorass:hotpath
func (m *Medium) ReceiveKeyed(tx *Transmission, rxPos geo.Point, key uint64, keepSince time.Duration) Reception {
	src := rng.Seeded(key)
	return m.receive(tx, rxPos, &src, keepSince)
}

//mlorass:hotpath
func (m *Medium) receive(tx *Transmission, rxPos geo.Point, shadow *rng.Source, pruneCutoff time.Duration) Reception {
	m.prune(pruneCutoff)

	dist := Meters(tx.Pos.Dist(rxPos))
	if m.cfg.MaxRangeM > 0 && dist > m.cfg.MaxRangeM {
		m.stats.OutOfRange++
		return Reception{Outcome: OutcomeOutOfRange}
	}

	rssi := m.cfg.Loss.RSSI(tx.PowerDBm, dist, shadow)
	if rssi < m.cfg.SensitivityDBm {
		m.stats.BelowSensitivity++
		return Reception{Outcome: OutcomeBelowSensitivity, RSSIDBm: rssi}
	}

	// Capture check against the strongest overlapping interferer. Mean
	// RSSI (no extra shadowing draw) keeps interference deterministic and
	// symmetric across receivers.
	strongest := DBm(-1e9)
	for _, other := range m.active {
		if other.ID == tx.ID || other.From == tx.From {
			continue
		}
		if other.End <= tx.Start || other.Start >= tx.End {
			continue
		}
		ir := m.cfg.Loss.MeanRSSI(other.PowerDBm, Meters(other.Pos.Dist(rxPos)))
		if ir > strongest {
			strongest = ir
		}
	}
	if strongest > -1e9 && rssi.Sub(strongest) < m.cfg.CaptureDB {
		m.stats.Collisions++
		return Reception{Outcome: OutcomeCollision, RSSIDBm: rssi}
	}

	m.stats.Receptions++
	return Reception{Outcome: OutcomeReceived, RSSIDBm: rssi}
}
