package radio

import (
	"testing"
	"time"

	"mlorass/internal/geo"
	"mlorass/internal/rng"
)

func shardTestMedium(t *testing.T, seed uint64) *Medium {
	t.Helper()
	m, err := NewMedium(MediumConfig{
		Loss:           DefaultPathLoss(),
		SensitivityDBm: -1e9,
		CaptureDB:      6,
		Seed:           seed,
	})
	if err != nil {
		t.Fatalf("NewMedium: %v", err)
	}
	return m
}

// TestReceiveKeyedMatchesSequentialDraw pins ReceiveKeyed to the same
// decode logic as Receive: with an identical shadowing stream the two paths
// must agree bit for bit. rng.Seeded(k) equals *rng.New(k), so a medium
// whose sequential stream starts at k sees the same draw ReceiveKeyed(k)
// makes.
func TestReceiveKeyedMatchesSequentialDraw(t *testing.T) {
	const key = uint64(0xfeedface)
	a := shardTestMedium(t, key) // sequential stream seeded at key
	b := shardTestMedium(t, 999) // unrelated sequential stream

	gw := geo.Point{X: 400, Y: 250}
	txA := a.Begin(3, geo.Point{X: 0, Y: 0}, 14, 0, time.Second, nil)
	txB := b.Begin(3, geo.Point{X: 0, Y: 0}, 14, 0, time.Second, nil)

	ra := a.Receive(txA, gw)
	rb := b.ReceiveKeyed(txB, gw, key, txB.Start)
	if ra != rb {
		t.Fatalf("Receive (fresh stream %#x) = %+v, ReceiveKeyed(key %#x) = %+v", key, ra, key, rb)
	}
}

// TestReceiveKeyedOrderIndependent pins the property the sharded engine
// relies on: a keyed receive's outcome does not depend on how many other
// draws the medium made before it.
func TestReceiveKeyedOrderIndependent(t *testing.T) {
	gw := geo.Point{X: 123, Y: 456}

	run := func(extraDraws int) Reception {
		m := shardTestMedium(t, 77)
		for i := 0; i < extraDraws; i++ {
			tx := m.Begin(100+i, geo.Point{X: 5000, Y: 5000}, 14,
				time.Duration(i)*time.Hour, time.Duration(i)*time.Hour+time.Millisecond, nil)
			m.Receive(tx, gw) // burn sequential shadow draws
		}
		tx := m.Begin(1, geo.Point{X: 0, Y: 0}, 14, 100*time.Hour, 100*time.Hour+time.Second, nil)
		return m.ReceiveKeyed(tx, gw, rng.Key3(77, 1, 42, 9), tx.Start)
	}

	base := run(0)
	for _, extra := range []int{1, 7, 31} {
		if got := run(extra); got != base {
			t.Fatalf("after %d extra draws: %+v, want %+v", extra, got, base)
		}
	}
}

// TestImportTxInterferesWithoutCounting checks an imported foreign
// transmission collides local receptions exactly like a local Begin, while
// leaving stats.Transmissions untouched so per-shard stats sum to the
// single-medium count.
func TestImportTxInterferesWithoutCounting(t *testing.T) {
	gw := geo.Point{X: 100, Y: 0}

	// Reference: two local overlapping transmissions at equal distance.
	ref := shardTestMedium(t, 5)
	refTx := ref.Begin(1, geo.Point{X: 0, Y: 0}, 14, 0, time.Second, nil)
	ref.Begin(2, geo.Point{X: 200, Y: 0}, 14, 0, time.Second, nil)
	want := ref.Receive(refTx, gw)

	// Same scene with the interferer imported from a foreign shard.
	m := shardTestMedium(t, 5)
	tx := m.Begin(1, geo.Point{X: 0, Y: 0}, 14, 0, time.Second, nil)
	m.ImportTx(2, geo.Point{X: 200, Y: 0}, 14, 0, time.Second)
	got := m.Receive(tx, gw)

	if got.Outcome != want.Outcome {
		t.Fatalf("imported interferer outcome %v, local interferer outcome %v", got.Outcome, want.Outcome)
	}
	if n := m.Stats().Transmissions; n != 1 {
		t.Fatalf("ImportTx counted toward Transmissions: got %d, want 1", n)
	}
	if ref.Stats().Transmissions != 2 {
		t.Fatalf("reference medium transmissions = %d, want 2", ref.Stats().Transmissions)
	}
}

// TestImportTxSelfCopySkipped: a shard importing the sender's own
// transmission back (full-replication merge does this for simplicity) must
// not make the sender collide with itself — the From-based self-skip covers
// imported copies, which carry ID 0 while local IDs start at 1.
func TestImportTxSelfCopySkipped(t *testing.T) {
	gw := geo.Point{X: 100, Y: 0}

	solo := shardTestMedium(t, 11)
	soloTx := solo.Begin(1, geo.Point{X: 0, Y: 0}, 14, 0, time.Second, nil)
	want := solo.Receive(soloTx, gw)

	m := shardTestMedium(t, 11)
	tx := m.Begin(1, geo.Point{X: 0, Y: 0}, 14, 0, time.Second, nil)
	m.ImportTx(1, geo.Point{X: 0, Y: 0}, 14, 0, time.Second) // own copy echoed back
	got := m.Receive(tx, gw)

	if got != want {
		t.Fatalf("own imported copy changed reception: got %+v, want %+v", got, want)
	}
}

// TestReceiveKeyedPruneEpoch pins the keepSince contract: an interferer that
// overlaps a long frame must survive an interleaved receive of a short frame
// that starts after the interferer ends. Receive's per-frame cutoff evicts
// it (acceptable for one shared pool, where the interleaving is fixed);
// ReceiveKeyed with a shared epoch must not, or the interferer set would
// depend on which frames share a shard's pool — the divergence that broke
// shard-count invariance at full-day scale.
func TestReceiveKeyedPruneEpoch(t *testing.T) {
	gw := geo.Point{X: 100, Y: 0}
	const epoch = 0 * time.Second // window start shared by every receive

	build := func() (*Medium, *Transmission, *Transmission) {
		m := shardTestMedium(t, 7)
		// Interferer: on air [0, 300ms), strong (close to the receiver).
		m.ImportTx(9, geo.Point{X: 120, Y: 0}, 14, 0, 300*time.Millisecond)
		// Long frame overlapping the interferer: [100ms, 1s).
		long := m.Begin(1, geo.Point{X: 0, Y: 0}, 14, 100*time.Millisecond, time.Second, nil)
		// Short frame starting after the interferer ended: [400ms, 500ms).
		short := m.Begin(2, geo.Point{X: 0, Y: 50}, 14, 400*time.Millisecond, 500*time.Millisecond, nil)
		return m, long, short
	}

	// Direct: the long frame collides with the interferer.
	m, long, _ := build()
	want := m.ReceiveKeyed(long, gw, rng.Key3(7, 1, 0, 1), epoch)
	if want.Outcome != OutcomeCollision {
		t.Fatalf("long frame without interleaving = %v, want collision", want.Outcome)
	}

	// Interleaved: the short frame resolves first (end-time order). With the
	// shared epoch its receive must not evict the still-overlapping
	// interferer out from under the long frame.
	m2, long2, short := build()
	m2.ReceiveKeyed(short, gw, rng.Key3(7, 2, 0, 1), epoch)
	if got := m2.ReceiveKeyed(long2, gw, rng.Key3(7, 1, 0, 1), epoch); got != want {
		t.Fatalf("interleaved short receive changed the long frame's reception: got %+v, want %+v", got, want)
	}
}

// TestImportTxRecycled pins that imported transmissions flow through the
// same prune/pool recycling as local ones (no leak across windows).
func TestImportTxRecycled(t *testing.T) {
	m := shardTestMedium(t, 1)
	for w := 0; w < 100; w++ {
		at := time.Duration(w) * time.Minute
		m.ImportTx(9, geo.Point{X: 1, Y: 1}, 14, at, at+time.Millisecond)
		tx := m.Begin(1, geo.Point{X: 0, Y: 0}, 14, at+time.Second, at+2*time.Second, nil)
		m.Receive(tx, geo.Point{X: 50, Y: 0})
	}
	if n := m.ActiveCount(); n > 4 {
		t.Fatalf("active list grew to %d entries; imported transmissions not pruned", n)
	}
}
