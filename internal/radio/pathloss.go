package radio

import (
	"fmt"
	"math"

	"mlorass/internal/rng"
)

// PathLoss is a log-distance path-loss model with log-normal shadowing:
//
//	PL(d) = RefLossDB + 10 · Exponent · log10(d / RefDistM) + X
//
// where X ~ N(0, ShadowSigmaDB²). The defaults reproduce the sub-urban LoRa
// calibration the paper uses (path-loss exponent 2.32, Petäjäjärvi et al.,
// ITST 2015).
type PathLoss struct {
	// Exponent is the path-loss exponent n (dimensionless).
	Exponent float64
	// RefDistM is the reference distance d0 in metres.
	RefDistM Meters
	// RefLossDB is the measured loss at the reference distance.
	RefLossDB DB
	// ShadowSigmaDB is the shadowing standard deviation; 0 disables
	// shadowing.
	ShadowSigmaDB DB
}

// DefaultPathLoss returns the paper's sub-urban model: n = 2.32, d0 = 40 m,
// PL(d0) = 107.41 dB, σ = 7.8 dB.
func DefaultPathLoss() PathLoss {
	return PathLoss{Exponent: 2.32, RefDistM: 40, RefLossDB: 107.41, ShadowSigmaDB: 7.8}
}

// Validate reports configuration errors.
func (pl PathLoss) Validate() error {
	if pl.Exponent <= 0 {
		return fmt.Errorf("radio: path-loss exponent %v must be positive", pl.Exponent)
	}
	if pl.RefDistM <= 0 {
		return fmt.Errorf("radio: reference distance %v must be positive", pl.RefDistM)
	}
	if pl.ShadowSigmaDB < 0 {
		return fmt.Errorf("radio: shadow sigma %v must be non-negative", pl.ShadowSigmaDB)
	}
	return nil
}

// MeanLossDB returns the deterministic (shadowing-free) path loss in dB at
// distance d metres. Distances below the reference distance clamp to it, so
// co-located nodes see the reference loss rather than a negative loss.
func (pl PathLoss) MeanLossDB(d Meters) DB {
	if d < pl.RefDistM {
		d = pl.RefDistM
	}
	return pl.RefLossDB + DB(10*pl.Exponent*math.Log10(float64(d)/float64(pl.RefDistM)))
}

// LossDB returns the path loss at distance d with one shadowing draw from r.
// A nil r yields the mean loss.
func (pl PathLoss) LossDB(d Meters, r *rng.Source) DB {
	loss := pl.MeanLossDB(d)
	if r != nil && pl.ShadowSigmaDB > 0 {
		loss += DB(r.Norm(0, float64(pl.ShadowSigmaDB)))
	}
	return loss
}

// RSSI returns the received signal strength in dBm for a transmit power of
// tx at distance d, with one shadowing draw from r (nil r => mean).
func (pl PathLoss) RSSI(tx DBm, d Meters, r *rng.Source) DBm {
	return tx.Minus(pl.LossDB(d, r))
}

// MeanRSSI returns the shadowing-free RSSI.
func (pl PathLoss) MeanRSSI(tx DBm, d Meters) DBm {
	return tx.Minus(pl.MeanLossDB(d))
}

// RangeFor returns the distance in metres at which the mean RSSI drops to the
// given sensitivity for the given transmit power: the mean communication
// range. With the default model and 14 dBm / SF7 this is on the order of the
// 1 km gateway range the paper assumes.
func (pl PathLoss) RangeFor(tx, sensitivity DBm) Meters {
	budget := tx.Sub(sensitivity) - pl.RefLossDB
	if budget <= 0 {
		return pl.RefDistM
	}
	return Meters(float64(pl.RefDistM) * math.Pow(10, float64(budget)/(10*pl.Exponent)))
}
