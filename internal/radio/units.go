package radio

// This file defines the named unit types the radio-math packages (radio,
// lorawan, mac, core) use for link-budget arithmetic. All four are plain
// float64 underneath — adopting them changes no emitted number anywhere —
// but they let the compiler and the unitlint analyzer (internal/analysis)
// reject dimensionally meaningless expressions at review time: adding two
// absolute power levels, mixing a dB margin into a metre distance, or
// casting an RSSI straight into an SNR without going through the noise
// floor.
//
// The unit algebra unitlint enforces:
//
//	DBm  + DB   = DBm   (offset an absolute level by a gain/loss: DBm.Plus)
//	DBm  - DB   = DBm   (apply a loss: DBm.Minus)
//	DBm  - DBm  = DB    (difference of two levels: DBm.Sub)
//	DBm  + DBm  —       meaningless, flagged
//	DB   ± DB   = DB    (plain Go arithmetic)
//	T1(x) where x is a different unit type — flagged; convert through
//	float64 only at package boundaries, with a comment saying why.

// DBm is an absolute power level in decibel-milliwatts: transmit powers,
// RSSI values, sensitivities, noise floors.
type DBm float64

// DB is a relative level in decibels: gains, losses, margins, SNRs.
type DB float64

// Meters is a distance in metres.
type Meters float64

// Hz is a frequency or bandwidth in hertz.
type Hz float64

// Plus offsets an absolute level by a relative gain (negative gains are
// losses): the only sanctioned way to add a dB quantity to a dBm one.
func (x DBm) Plus(g DB) DBm { return DBm(float64(x) + float64(g)) }

// Minus applies a relative loss to an absolute level: tx power minus path
// loss yields RSSI.
func (x DBm) Minus(l DB) DBm { return DBm(float64(x) - float64(l)) }

// Sub returns the relative difference between two absolute levels: RSSI
// minus noise floor yields SNR, RSSI minus interferer RSSI yields the
// capture margin.
func (x DBm) Sub(y DBm) DB { return DB(float64(x) - float64(y)) }
