// Package routing defines the forwarding schemes the paper evaluates as
// pluggable policies over the core metrics:
//
//   - NoRouting: the modified-LoRaWAN baseline — hold everything until the
//     next gateway contact (Sec. VII-A7).
//   - RCA-ETX: greedy forwarding by the Eq. (1) comparison.
//   - ROBC: backpressure forwarding by φ-corrected queue differentials
//     (Eq. 10) transferring δ messages (Sec. V-B2).
//
// A policy sees one overheard broadcast at a time — the only neighbour
// discovery LoRaWAN's duty-cycle regime permits — and answers whether the
// listener should hand data to the broadcaster, and how much.
package routing

import (
	"fmt"

	"mlorass/internal/core"
	"mlorass/internal/lorawan"
)

// Scheme enumerates the evaluated forwarding schemes.
type Scheme int

// Schemes under evaluation (Sec. VII-A7).
const (
	SchemeNoRouting Scheme = iota + 1
	SchemeRCAETX
	SchemeROBC
)

// String names the scheme as the paper's figures label it.
func (s Scheme) String() string {
	switch s {
	case SchemeNoRouting:
		return "NoRouting"
	case SchemeRCAETX:
		return "RCA-ETX"
	case SchemeROBC:
		return "ROBC"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Valid reports whether s is a known scheme.
func (s Scheme) Valid() bool { return s >= SchemeNoRouting && s <= SchemeROBC }

// LocalState is the listener's routing state at decision time.
type LocalState struct {
	// RCAETX is the listener's own RCA-ETX(x, S) in seconds.
	RCAETX float64
	// Phi is the listener's clamped Real-time Gateway Quality.
	Phi float64
	// QueueLen is the listener's total backlog (queued + in-flight).
	QueueLen int
}

// Decision is a policy's verdict on one overheard broadcast.
type Decision struct {
	// Forward reports whether to hand data to the broadcaster.
	Forward bool
	// Count is how many messages to hand over; the device layer caps it
	// at the bundle limit and the available queue.
	Count int
}

// Policy decides, for one overheard broadcast, whether the listener forwards
// part of its queue to the broadcaster.
type Policy interface {
	// Scheme identifies the policy.
	Scheme() Scheme
	// OnOverhear receives the listener's state, the overheard frame
	// (carrying the broadcaster's advertised RCA-ETX and queue length),
	// and the listener→broadcaster link metric RCA-ETX(x, y) from
	// Eq. (6). phiBounds carry the ROBC stability clamps.
	OnOverhear(local LocalState, frame lorawan.Frame, linkETX float64, phiMin, phiMax float64) Decision
}

// New returns the policy implementing the given scheme.
func New(s Scheme) (Policy, error) {
	switch s {
	case SchemeNoRouting:
		return noRouting{}, nil
	case SchemeRCAETX:
		return rcaETX{}, nil
	case SchemeROBC:
		return robc{}, nil
	default:
		return nil, fmt.Errorf("routing: unknown scheme %d", int(s))
	}
}

type noRouting struct{}

var _ Policy = noRouting{}

func (noRouting) Scheme() Scheme { return SchemeNoRouting }

// OnOverhear never forwards: NoRouting devices hold their queue until a
// gateway contact.
func (noRouting) OnOverhear(LocalState, lorawan.Frame, float64, float64, float64) Decision {
	return Decision{}
}

type rcaETX struct{}

var _ Policy = rcaETX{}

func (rcaETX) Scheme() Scheme { return SchemeRCAETX }

// OnOverhear applies Eq. (1): forward everything transferable when the
// broadcaster's total cost undercuts the listener's own.
func (rcaETX) OnOverhear(local LocalState, frame lorawan.Frame, linkETX float64, _, _ float64) Decision {
	if local.QueueLen == 0 {
		return Decision{}
	}
	if !core.ShouldForwardGreedy(local.RCAETX, frame.AdvertisedRCAETX, linkETX) {
		return Decision{}
	}
	return Decision{Forward: true, Count: local.QueueLen}
}

type robc struct{}

var _ Policy = robc{}

func (robc) Scheme() Scheme { return SchemeROBC }

// OnOverhear applies Eq. (10): forward δ messages when the listener's
// φ-corrected backlog exceeds the broadcaster's. The broadcaster's φ is
// recovered from its advertised RCA-ETX with the same clamps the listener
// uses, so both sides of the weight are commensurate.
func (robc) OnOverhear(local LocalState, frame lorawan.Frame, linkETX float64, phiMin, phiMax float64) Decision {
	if local.QueueLen == 0 {
		return Decision{}
	}
	// A dead link cannot carry data regardless of queue pressure.
	if linkETX <= 0 || linkETX != linkETX || linkETX > 1e18 {
		return Decision{}
	}
	phiY := core.ClampPhi(1/frame.AdvertisedRCAETX, phiMin, phiMax)
	if !core.ShouldForwardROBC(local.QueueLen, frame.AdvertisedQueueLen, local.Phi, phiY) {
		return Decision{}
	}
	n := core.ROBCTransfer(local.QueueLen, frame.AdvertisedQueueLen, local.Phi, phiY)
	if n == 0 {
		return Decision{}
	}
	return Decision{Forward: true, Count: n}
}
