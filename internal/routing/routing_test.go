package routing

import (
	"math"
	"testing"
	"testing/quick"

	"mlorass/internal/lorawan"
)

const (
	testPhiMin = 1e-4
	testPhiMax = 1.0
)

func mustPolicy(t *testing.T, s Scheme) Policy {
	t.Helper()
	p, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRejectsUnknownScheme(t *testing.T) {
	if _, err := New(Scheme(42)); err == nil {
		t.Fatal("unknown scheme accepted")
	}
}

func TestSchemeNamesMatchPaper(t *testing.T) {
	want := map[Scheme]string{
		SchemeNoRouting: "NoRouting",
		SchemeRCAETX:    "RCA-ETX",
		SchemeROBC:      "ROBC",
	}
	for s, name := range want {
		if s.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), name)
		}
		if !s.Valid() {
			t.Errorf("%v invalid", s)
		}
		p := mustPolicy(t, s)
		if p.Scheme() != s {
			t.Errorf("policy scheme mismatch for %v", s)
		}
	}
	if Scheme(0).Valid() {
		t.Error("zero scheme valid")
	}
}

func TestNoRoutingNeverForwards(t *testing.T) {
	p := mustPolicy(t, SchemeNoRouting)
	local := LocalState{RCAETX: 1e9, Phi: testPhiMin, QueueLen: 500}
	frame := lorawan.Frame{AdvertisedRCAETX: 1, AdvertisedQueueLen: 0}
	if d := p.OnOverhear(local, frame, 1, testPhiMin, testPhiMax); d.Forward {
		t.Fatal("NoRouting forwarded")
	}
}

func TestRCAETXForwardsOnEq1(t *testing.T) {
	p := mustPolicy(t, SchemeRCAETX)
	local := LocalState{RCAETX: 1000, QueueLen: 30}
	frame := lorawan.Frame{AdvertisedRCAETX: 100}
	d := p.OnOverhear(local, frame, 50, testPhiMin, testPhiMax)
	if !d.Forward {
		t.Fatal("Eq.1 satisfied but no forward")
	}
	if d.Count != 30 {
		t.Fatalf("greedy Count = %d, want whole queue", d.Count)
	}
}

func TestRCAETXKeepsWhenNeighbourWorse(t *testing.T) {
	p := mustPolicy(t, SchemeRCAETX)
	local := LocalState{RCAETX: 100, QueueLen: 30}
	frame := lorawan.Frame{AdvertisedRCAETX: 90}
	if d := p.OnOverhear(local, frame, 20, testPhiMin, testPhiMax); d.Forward {
		t.Fatal("forwarded although 90+20 > 100")
	}
}

func TestRCAETXEmptyQueue(t *testing.T) {
	p := mustPolicy(t, SchemeRCAETX)
	local := LocalState{RCAETX: 1000, QueueLen: 0}
	frame := lorawan.Frame{AdvertisedRCAETX: 1}
	if d := p.OnOverhear(local, frame, 1, testPhiMin, testPhiMax); d.Forward {
		t.Fatal("forwarded with empty queue")
	}
}

func TestRCAETXDeadLink(t *testing.T) {
	p := mustPolicy(t, SchemeRCAETX)
	local := LocalState{RCAETX: 1000, QueueLen: 5}
	frame := lorawan.Frame{AdvertisedRCAETX: 1}
	if d := p.OnOverhear(local, frame, math.Inf(1), testPhiMin, testPhiMax); d.Forward {
		t.Fatal("forwarded over dead link")
	}
}

func TestROBCForwardsDelta(t *testing.T) {
	p := mustPolicy(t, SchemeROBC)
	// Listener: 20 messages, φ = 0.5. Broadcaster advertises RCAETX 2 s
	// (φ = 0.5 clamped) and queue 10 → ω = 40 − 20 > 0, δ = 20 − 10 = 10.
	local := LocalState{RCAETX: 2, Phi: 0.5, QueueLen: 20}
	frame := lorawan.Frame{AdvertisedRCAETX: 2, AdvertisedQueueLen: 10}
	d := p.OnOverhear(local, frame, 1, testPhiMin, testPhiMax)
	if !d.Forward || d.Count != 10 {
		t.Fatalf("decision = %+v, want forward 10", d)
	}
}

func TestROBCKeepsOnNonPositiveWeight(t *testing.T) {
	p := mustPolicy(t, SchemeROBC)
	local := LocalState{RCAETX: 2, Phi: 0.5, QueueLen: 10}
	frame := lorawan.Frame{AdvertisedRCAETX: 2, AdvertisedQueueLen: 10}
	if d := p.OnOverhear(local, frame, 1, testPhiMin, testPhiMax); d.Forward {
		t.Fatal("equal ω forwarded (must beat ω(x,x)=0)")
	}
}

func TestROBCQualityCorrection(t *testing.T) {
	// Equal queues, but the broadcaster has far better gateway quality:
	// its φ-corrected backlog is smaller, so data should flow to it.
	p := mustPolicy(t, SchemeROBC)
	local := LocalState{RCAETX: 1000, Phi: 0.001, QueueLen: 10}
	frame := lorawan.Frame{AdvertisedRCAETX: 2, AdvertisedQueueLen: 10}
	d := p.OnOverhear(local, frame, 1, testPhiMin, testPhiMax)
	if !d.Forward {
		t.Fatal("did not forward toward much better gateway quality")
	}
}

func TestROBCDeadLink(t *testing.T) {
	p := mustPolicy(t, SchemeROBC)
	local := LocalState{RCAETX: 2, Phi: 0.5, QueueLen: 20}
	frame := lorawan.Frame{AdvertisedRCAETX: 2, AdvertisedQueueLen: 0}
	if d := p.OnOverhear(local, frame, math.Inf(1), testPhiMin, testPhiMax); d.Forward {
		t.Fatal("ROBC forwarded over dead link")
	}
	if d := p.OnOverhear(local, frame, math.NaN(), testPhiMin, testPhiMax); d.Forward {
		t.Fatal("ROBC forwarded over NaN link")
	}
}

func TestROBCEmptyQueue(t *testing.T) {
	p := mustPolicy(t, SchemeROBC)
	local := LocalState{RCAETX: 1000, Phi: 0.001, QueueLen: 0}
	frame := lorawan.Frame{AdvertisedRCAETX: 1, AdvertisedQueueLen: 0}
	if d := p.OnOverhear(local, frame, 1, testPhiMin, testPhiMax); d.Forward {
		t.Fatal("forwarded with empty queue")
	}
}

func TestROBCInfiniteAdvertisedETX(t *testing.T) {
	// A broadcaster that has never seen a gateway advertises +Inf; its φ
	// clamps to φmin. Forward only if the weight still favours it.
	p := mustPolicy(t, SchemeROBC)
	local := LocalState{RCAETX: 10, Phi: 0.1, QueueLen: 5}
	frame := lorawan.Frame{AdvertisedRCAETX: math.Inf(1), AdvertisedQueueLen: 0}
	d := p.OnOverhear(local, frame, 1, testPhiMin, testPhiMax)
	// ω = 5/0.1 − 0/φmin = 50 > 0 — ROBC would still push toward an
	// empty queue. δ = 5 − 0 = 5.
	if !d.Forward || d.Count != 5 {
		t.Fatalf("decision = %+v", d)
	}
}

// Property: no policy ever forwards more than the listener holds, and
// NoRouting never forwards at all.
func TestQuickPolicyBounds(t *testing.T) {
	policies := []Policy{mustPolicy(t, SchemeNoRouting), mustPolicy(t, SchemeRCAETX), mustPolicy(t, SchemeROBC)}
	f := func(qx, qy uint16, ownETX, advETX, link float64) bool {
		local := LocalState{
			RCAETX:   math.Abs(ownETX),
			Phi:      0.1,
			QueueLen: int(qx % 2000),
		}
		frame := lorawan.Frame{
			AdvertisedRCAETX:   math.Abs(advETX),
			AdvertisedQueueLen: int(qy % 2000),
		}
		for _, p := range policies {
			d := p.OnOverhear(local, frame, math.Abs(link), testPhiMin, testPhiMax)
			if p.Scheme() == SchemeNoRouting && d.Forward {
				return false
			}
			if d.Forward && (d.Count <= 0 || d.Count > local.QueueLen) {
				return false
			}
			if !d.Forward && d.Count != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
