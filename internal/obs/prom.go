package obs

import (
	"fmt"
	"io"
	"strconv"

	"mlorass/internal/telemetry"
)

// This file is a dependency-free encoder for the Prometheus text exposition
// format (version 0.0.4): HELP/TYPE headers, counters, gauges, and native
// histograms with cumulative le-labeled buckets. The histogram buckets are
// the telemetry layout's power-of-two octave edges — exact bucket
// boundaries of the in-process log-linear histograms, so the exposition
// re-bins nothing and merges exactly across scrapes. Metric names and
// label sets are locked by a golden test; changing them is a wire-format
// break for any deployed scrape config.

// promWriter accumulates the first write error so encoding stays linear.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// fnum formats a float the way Prometheus expects: shortest round-trip
// representation, "+Inf" for the unbounded bucket.
func fnum(v float64) string {
	if v > 1e308 {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func (p *promWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) counter(name, help string, v uint64) {
	p.header(name, help, "counter")
	p.printf("%s %d\n", name, v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.printf("%s %s\n", name, fnum(v))
}

func (p *promWriter) histogram(name, help string, h *telemetry.Histogram) {
	p.header(name, help, "histogram")
	var total uint64
	h.ForEachOctaveCum(func(le float64, cum uint64) {
		p.printf("%s_bucket{le=\"%s\"} %d\n", name, fnum(le), cum)
		total = cum
	})
	p.printf("%s_sum %s\n", name, fnum(h.Sum()))
	p.printf("%s_count %d\n", name, total)
}

// WriteSnapshot writes snap as a Prometheus text exposition. The family
// set is fixed: every metric is always present (zero-valued when unused),
// so scrape series never appear or vanish mid-run.
func WriteSnapshot(w io.Writer, snap telemetry.Snapshot) error {
	p := &promWriter{w: w}
	c := snap.Counters
	p.counter("mlorass_messages_generated_total", "Application messages created by devices.", c.Generated)
	p.counter("mlorass_frames_on_air_total", "LoRa frames transmitted (uplinks and handovers).", c.FramesOnAir)
	p.counter("mlorass_uplink_deliveries_total", "Frames decoded by a gateway.", c.UplinkDeliveries)
	p.counter("mlorass_server_fresh_total", "Messages accepted by the network server as new.", c.ServerFresh)
	p.counter("mlorass_server_duplicates_total", "Message copies the server deduplicated.", c.ServerDuplicates)
	p.counter("mlorass_relay_hops_total", "Successful device-to-device message transfers.", c.RelayHops)
	p.counter("mlorass_queue_drops_total", "Messages dropped by full device queues.", c.QueueDrops)
	p.counter("mlorass_kernel_events_total", "Discrete events executed by the simulation kernel (populated while tracing).", c.KernelEvents)
	p.counter("mlorass_trace_events_total", "Trace records emitted to the sink.", c.TraceEvents)
	p.counter("mlorass_downlinks_total", "Gateway downlink frames put on the air.", c.Downlinks)
	p.counter("mlorass_downlink_deliveries_total", "Downlinks decoded by their device.", c.DownlinkDeliveries)
	p.counter("mlorass_downlink_drops_total", "Downlinks the per-gateway duty budget could not place.", c.DownlinkDrops)
	p.counter("mlorass_ack_timeouts_total", "Confirmed uplinks whose ack window closed unacked.", c.AckTimeouts)
	p.counter("mlorass_retransmissions_total", "Confirmed-uplink retransmissions after an ack timeout.", c.Retransmissions)
	p.counter("mlorass_adr_commands_total", "LinkADRReq commands the network server issued.", c.ADRCommands)
	p.counter("mlorass_adr_applied_total", "LinkADRReq commands devices received and applied.", c.ADRApplied)

	p.header("mlorass_uplink_sf_frames_total", "Uplink frames per spreading factor.", "counter")
	for i, n := range snap.SF {
		p.printf("mlorass_uplink_sf_frames_total{sf=\"%d\"} %d\n", i+7, n)
	}

	p.histogram("mlorass_delay_seconds", "End-to-end delay of delivered messages.", &snap.Delay)
	p.histogram("mlorass_airtime_seconds", "Time-on-air of transmitted frames.", &snap.Airtime)
	return p.err
}

// writeRuntime appends the server-side families — live run count, sweep
// progress, and per-phase span totals — to an exposition already carrying
// the telemetry snapshot. Families are stable; phase label pairs appear as
// phases first run.
func writeRuntime(w io.Writer, reg *Registry, flight *FlightRecorder, sweep *SweepTracker) error {
	p := &promWriter{w: w}
	p.gauge("mlorass_live_runs", "Simulation runs currently attached for live scraping.", float64(reg.LiveRuns()))

	st := sweep.Status()
	p.gauge("mlorass_sweep_cells_total", "Cells in the active sweep (0 when no sweep is running).", float64(st.Total))
	p.gauge("mlorass_sweep_cells_done", "Sweep cells completed so far.", float64(st.Done))
	p.gauge("mlorass_sweep_cells_cached", "Completed sweep cells served from the run store.", float64(st.Cached))
	p.gauge("mlorass_sweep_cells_running", "Sweep cells currently executing.", float64(st.Running))
	p.gauge("mlorass_farm_retries_total", "Sweep-farm cell attempts that failed and were scheduled for retry.", float64(st.Farm.Retries))
	p.gauge("mlorass_farm_lease_expiries_total", "Sweep-farm retries caused by lease expiry (lost workers).", float64(st.Farm.Expired))
	p.gauge("mlorass_farm_quarantined_cells", "Sweep-farm cells quarantined as explicit gaps.", float64(st.Farm.Quarantined))
	p.gauge("mlorass_farm_duplicate_completions_total", "Sweep-farm duplicate completions discarded by the exactly-once merge.", float64(st.Farm.Duplicates))
	p.gauge("mlorass_farm_worker_crashes_total", "Sweep-farm worker deaths observed by the supervisor.", float64(st.Farm.Crashes))
	p.header("mlorass_farm_worker_leases", "Live leases held per sweep-farm worker.", "gauge")
	for _, w := range st.Farm.Workers {
		p.printf("mlorass_farm_worker_leases{worker=%q} %d\n", w.Worker, w.Leases)
	}

	if flight != nil {
		p.counter("mlorass_spans_recorded_total", "Phase spans recorded by the flight recorder.", flight.Recorded())
		p.counter("mlorass_spans_evicted_total", "Phase spans evicted from the bounded ring.", flight.Dropped())
		totals := flight.PhaseTotals()
		p.header("mlorass_phase_spans_total", "Phase spans recorded per engine phase and shard.", "counter")
		for _, t := range totals {
			p.printf("mlorass_phase_spans_total{phase=%q,shard=\"%d\"} %d\n", t.Name, t.Shard, t.Count)
		}
		p.header("mlorass_phase_seconds_total", "Wall-clock seconds spent per engine phase and shard.", "counter")
		for _, t := range totals {
			p.printf("mlorass_phase_seconds_total{phase=%q,shard=\"%d\"} %s\n", t.Name, t.Shard, fnum(t.Total.Seconds()))
		}
	}
	return p.err
}
