package obs

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mlorass/internal/telemetry"
)

// The exposition golden locks the wire format: metric names, label sets,
// and the histogram bucket edges (the telemetry layout's exact power-of-two
// boundaries). Any drift breaks deployed scrape configs, so it must be
// deliberate: regenerate with `go test ./internal/obs -run Exposition -update`.
var updateGolden = flag.Bool("update", false, "rewrite golden files")

// testSnapshot builds a deterministic snapshot touching every family.
func testSnapshot() telemetry.Snapshot {
	r := telemetry.NewRecorder()
	for i := 0; i < 5; i++ {
		r.AddGenerated()
	}
	r.AddFrame()
	r.AddFrame()
	r.AddUplinkDelivery()
	r.AddServerFresh(3)
	r.AddServerDuplicate()
	r.AddRelayHops(4)
	r.AddQueueDrop()
	r.AddKernelEvent()
	r.AddTraceEvent()
	r.AddDownlink()
	r.AddDownlinkDelivery()
	r.AddAckTimeout()
	r.AddRetransmission()
	r.AddADRApplied()
	for sf := 7; sf <= 12; sf++ {
		r.AddUplinkSF(sf)
		r.AddUplinkSF(sf)
	}
	// Delay observations chosen to land in underflow (0.0001), the bottom
	// octave (0.001), mid-layout (0.8, 300), and overflow (5e6).
	for _, v := range []float64{0.0001, 0.001, 0.8, 300, 5e6} {
		r.ObserveDelay(v)
	}
	r.ObserveAirtime(0.057)
	r.ObserveAirtime(1.32)
	s := r.Snapshot()
	// The two post-hoc counters recorders never set.
	s.Counters.DownlinkDrops = 2
	s.Counters.ADRCommands = 6
	return s
}

func TestExpositionGolden(t *testing.T) {
	var b strings.Builder
	if err := WriteSnapshot(&b, testSnapshot()); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	path := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestExpositionFormat checks structural invariants independent of the
// golden bytes: family completeness, fixed SF label set, histogram shape.
func TestExpositionFormat(t *testing.T) {
	var b strings.Builder
	if err := WriteSnapshot(&b, telemetry.Snapshot{}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, family := range []string{
		"mlorass_messages_generated_total",
		"mlorass_frames_on_air_total",
		"mlorass_uplink_deliveries_total",
		"mlorass_server_fresh_total",
		"mlorass_server_duplicates_total",
		"mlorass_relay_hops_total",
		"mlorass_queue_drops_total",
		"mlorass_kernel_events_total",
		"mlorass_trace_events_total",
		"mlorass_downlinks_total",
		"mlorass_downlink_deliveries_total",
		"mlorass_downlink_drops_total",
		"mlorass_ack_timeouts_total",
		"mlorass_retransmissions_total",
		"mlorass_adr_commands_total",
		"mlorass_adr_applied_total",
		"mlorass_uplink_sf_frames_total",
		"mlorass_delay_seconds",
		"mlorass_airtime_seconds",
	} {
		if !strings.Contains(out, "# TYPE "+family+" ") {
			t.Errorf("zero-valued exposition missing family %s", family)
		}
	}
	// Fixed SF label set: all six series present even when empty.
	for sf := 7; sf <= 12; sf++ {
		if !strings.Contains(out, fmt.Sprintf(`mlorass_uplink_sf_frames_total{sf="%d"} 0`, sf)) {
			t.Errorf("missing sf=%d series", sf)
		}
	}
	// The histogram's first bucket edge is the exact layout bottom (2^-10)
	// and the last is +Inf; 33 bounded edges in between (31 octaves + top).
	if !strings.Contains(out, `mlorass_delay_seconds_bucket{le="0.0009765625"} 0`) {
		t.Error("first delay bucket edge is not 2^-10")
	}
	if !strings.Contains(out, `mlorass_delay_seconds_bucket{le="2.097152e+06"} 0`) {
		t.Error("top delay bucket edge is not 2^21")
	}
	if !strings.Contains(out, `mlorass_delay_seconds_bucket{le="+Inf"} 0`) {
		t.Error("missing +Inf bucket")
	}
	if n := strings.Count(out, "mlorass_delay_seconds_bucket{"); n != 33 {
		t.Errorf("delay histogram has %d buckets, want 33 (32 octave edges + +Inf)", n)
	}
}

// TestExpositionCumulative checks the bucket series against the snapshot's
// own quantile machinery: cumulative counts must be monotone and count/sum
// must match the histogram exactly.
func TestExpositionCumulative(t *testing.T) {
	snap := testSnapshot()
	var b strings.Builder
	if err := WriteSnapshot(&b, snap); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if want := fmt.Sprintf("mlorass_delay_seconds_count %d", snap.Delay.N()); !strings.Contains(out, want) {
		t.Errorf("missing %q", want)
	}
	var last uint64
	var buckets int
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "mlorass_delay_seconds_bucket{") {
			continue
		}
		buckets++
		var cum uint64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &cum); err != nil {
			t.Fatalf("unparsable bucket line %q: %v", line, err)
		}
		if cum < last {
			t.Fatalf("cumulative bucket counts regressed at %q", line)
		}
		last = cum
	}
	if buckets == 0 || last != snap.Delay.N() {
		t.Errorf("+Inf cumulative = %d over %d buckets, want %d", last, buckets, snap.Delay.N())
	}
}
