// Package obs is the runtime observability layer: it turns the simulator's
// in-process telemetry into things an operator can watch while a run or
// sweep is still going — a Prometheus text-format /metrics exposition, a
// bounded flight recorder of engine phase spans dumpable as JSONL, a live
// sweep progress tracker, and an HTTP server with a self-refreshing HTML
// dashboard plus pprof.
//
// obs sits strictly outside the deterministic simulation: it is the only
// package on the instrumentation path allowed to read the wall clock (the
// engine packages are determinism-linted), and every hook it implements is
// declared in internal/telemetry so the engines never import it. All of it
// is off by default — a zero-valued experiment.Config records nothing,
// allocates nothing on the hot path, and produces byte-identical results.
package obs

import (
	"sync"

	"mlorass/internal/telemetry"
)

// Registry aggregates live telemetry across runs for scraping. Runs attach
// their Recorder for the duration of the run (Registry implements
// telemetry.LiveAttacher); Snapshot merges every completed run's final
// telemetry with a live read of every attached recorder, so a scrape series
// is monotonic across a whole sweep — cells starting and finishing never
// make a counter regress.
type Registry struct {
	mu   sync.Mutex
	base telemetry.Snapshot
	live []*telemetry.Recorder
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Attach implements telemetry.LiveAttacher: r's metrics become visible to
// Snapshot until the returned detach runs, at which point r's final state is
// folded into the cumulative base. Detach is idempotent.
func (g *Registry) Attach(r *telemetry.Recorder) (detach func()) {
	if g == nil || r == nil {
		return func() {}
	}
	g.mu.Lock()
	g.live = append(g.live, r)
	g.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			g.mu.Lock()
			defer g.mu.Unlock()
			for i, x := range g.live {
				if x == r {
					g.live = append(g.live[:i], g.live[i+1:]...)
					break
				}
			}
			g.base.Merge(r.Snapshot())
		})
	}
}

// Snapshot returns the registry's merged telemetry: every detached run's
// final snapshot plus a live read of each attached recorder. Safe to call
// at any time from any goroutine.
func (g *Registry) Snapshot() telemetry.Snapshot {
	if g == nil {
		return telemetry.Snapshot{}
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	s := g.base
	for _, r := range g.live {
		s.Merge(r.Snapshot())
	}
	return s
}

// LiveRuns reports how many recorders are currently attached.
func (g *Registry) LiveRuns() int {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.live)
}
