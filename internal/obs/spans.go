package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"mlorass/internal/telemetry"
)

// SpanRecord is one completed phase span as stored in the flight recorder
// and emitted on /spans. Times are nanoseconds relative to the recorder's
// creation, so dumps from one process share a clock.
type SpanRecord struct {
	// WallNS is the span's start on the recorder's monotonic clock.
	WallNS int64 `json:"wall_ns"`
	// DurNS is the span's wall-clock duration.
	DurNS int64 `json:"dur_ns"`
	// Name is the phase: "kernel", "resolve", "deliver", "merge", "cell".
	Name string `json:"name"`
	// Shard is the engine shard (-1 for coordinator spans, worker index for
	// sweep cells).
	Shard int `json:"shard"`
	// SimNS is the simulation clock at span end.
	SimNS int64 `json:"sim_ns"`
	// Attr is the phase-specific magnitude (see telemetry.SpanEnd.Attr).
	Attr int64 `json:"attr"`
	// Label identifies the work item for sweep cells, empty otherwise.
	Label string `json:"label,omitempty"`
}

// PhaseTotal is the aggregate of every span recorded under one (name,
// shard) pair — these survive ring eviction, so the dashboard's phase
// breakdown covers the whole run even after the ring wraps.
type PhaseTotal struct {
	Name  string
	Shard int
	Count uint64
	Total time.Duration
	Max   time.Duration
}

type phaseKey struct {
	name  string
	shard int
}

type phaseAgg struct {
	count uint64
	total time.Duration
	max   time.Duration
}

// DefaultRingSize is the flight recorder's span capacity when none is given.
const DefaultRingSize = 4096

// FlightRecorder implements telemetry.SpanSink: a bounded in-memory ring of
// recent spans plus per-phase running totals. Recording a span on the
// steady state takes one mutex round and no allocation (the ring is
// pre-sized; totals allocate only on first sight of a (name, shard) pair).
// A nil *FlightRecorder is a valid no-op sink.
type FlightRecorder struct {
	t0 time.Time

	mu     sync.Mutex
	ring   []SpanRecord
	seq    uint64 // spans ever recorded; ring slot = seq % len(ring)
	totals map[phaseKey]*phaseAgg
}

// NewFlightRecorder returns a recorder keeping the last size spans
// (DefaultRingSize when size <= 0).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &FlightRecorder{
		t0:     time.Now(),
		ring:   make([]SpanRecord, size),
		totals: make(map[phaseKey]*phaseAgg),
	}
}

// StartSpan implements telemetry.SpanSink: the token is the monotonic
// offset since the recorder's creation.
func (f *FlightRecorder) StartSpan() telemetry.SpanToken {
	if f == nil {
		return 0
	}
	return telemetry.SpanToken(time.Since(f.t0))
}

// EndSpan implements telemetry.SpanSink.
func (f *FlightRecorder) EndSpan(e telemetry.SpanEnd) {
	if f == nil {
		return
	}
	now := time.Since(f.t0)
	dur := now - time.Duration(e.Token)
	if dur < 0 {
		dur = 0
	}
	f.mu.Lock()
	f.ring[f.seq%uint64(len(f.ring))] = SpanRecord{
		WallNS: int64(e.Token),
		DurNS:  int64(dur),
		Name:   e.Name,
		Shard:  e.Shard,
		SimNS:  e.At.Nanoseconds(),
		Attr:   e.Attr,
		Label:  e.Label,
	}
	f.seq++
	k := phaseKey{e.Name, e.Shard}
	a := f.totals[k]
	if a == nil {
		a = &phaseAgg{}
		f.totals[k] = a
	}
	a.count++
	a.total += dur
	if dur > a.max {
		a.max = dur
	}
	f.mu.Unlock()
}

// Recorded reports how many spans have ever been recorded.
func (f *FlightRecorder) Recorded() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seq
}

// Dropped reports how many spans the ring has evicted.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seq <= uint64(len(f.ring)) {
		return 0
	}
	return f.seq - uint64(len(f.ring))
}

// Spans returns up to max retained spans, oldest first (all of them when
// max <= 0).
func (f *FlightRecorder) Spans(max int) []SpanRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.seq
	if n > uint64(len(f.ring)) {
		n = uint64(len(f.ring))
	}
	if max > 0 && uint64(max) < n {
		n = uint64(max)
	}
	out := make([]SpanRecord, 0, n)
	for i := f.seq - n; i < f.seq; i++ {
		out = append(out, f.ring[i%uint64(len(f.ring))])
	}
	return out
}

// PhaseTotals returns the per-(name, shard) aggregates, sorted by name then
// shard. Unlike the ring these cover every span ever recorded.
func (f *FlightRecorder) PhaseTotals() []PhaseTotal {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	out := make([]PhaseTotal, 0, len(f.totals))
	for k, a := range f.totals {
		out = append(out, PhaseTotal{Name: k.name, Shard: k.shard, Count: a.count, Total: a.total, Max: a.max})
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}

// WriteJSONL dumps the retained spans, oldest first, one JSON object per
// line — the /spans wire format and the -spans file format.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range f.Spans(0) {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpOnPanic re-raises an in-flight panic after writing the span ring to
// stderr, so a crashed instrumented run leaves its last moments behind.
// Use: defer flight.DumpOnPanic().
func (f *FlightRecorder) DumpOnPanic() {
	if f == nil {
		return
	}
	if r := recover(); r != nil {
		fmt.Fprintf(os.Stderr, "panic: %v — dumping %d retained spans:\n", r, len(f.Spans(0)))
		_ = f.WriteJSONL(os.Stderr)
		panic(r)
	}
}
