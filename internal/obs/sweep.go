package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"mlorass/internal/telemetry"
)

// SweepTracker follows one figure sweep as its cells land: counts, the
// exactly-pooled delay histogram of every completed cell, and wall-clock
// pacing. The CLI feeds it from experiment.ParallelSweep progress updates;
// the dashboard and /metrics read it. A nil *SweepTracker reads as an
// empty, inactive sweep.
type SweepTracker struct {
	mu      sync.Mutex
	label   string
	workers int
	total   int
	done    int
	cached  int
	delay   telemetry.Histogram
	started time.Time
	active  bool
	// Farm bookkeeping (sweepd): lease churn per worker plus the
	// robustness counters. Zero-valued when the sweep runs in-process.
	farm       bool
	leases     map[string]int // worker -> live leases
	retries    int
	expired    int
	quarantine int
	duplicates int
	crashes    int
}

// NewSweepTracker returns an idle tracker.
func NewSweepTracker() *SweepTracker { return &SweepTracker{} }

// Begin starts tracking a sweep of labelled work executed by the given
// worker count. Counters reset; the pooled delay histogram carries over so
// percentiles stay populated across a multi-environment sweep.
func (t *SweepTracker) Begin(label string, workers int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.label = label
	t.workers = workers
	t.total, t.done, t.cached = 0, 0, 0
	t.retries, t.expired, t.quarantine, t.duplicates, t.crashes = 0, 0, 0, 0, 0
	t.leases = nil
	t.farm = false
	t.started = time.Now()
	t.active = true
}

// CellDone records one completed cell and pools its delay histogram.
func (t *SweepTracker) CellDone(completed, total int, cached bool, snap telemetry.Snapshot) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done, t.total = completed, total
	if cached {
		t.cached++
	}
	t.delay.Merge(&snap.Delay)
}

// FarmLeased records a cell granted to worker (the farm's live-lease gauge
// rises). Any Farm* call marks the sweep as farm-executed, which adds the
// lease/retry/quarantine block to Status and the dashboard.
func (t *SweepTracker) FarmLeased(worker string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.farmOn()
	t.leases[worker]++
}

// FarmSettled records worker's lease resolving — completed, failed, or
// expired — so its live-lease gauge falls.
func (t *SweepTracker) FarmSettled(worker string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.farmOn()
	if t.leases[worker] > 0 {
		t.leases[worker]--
	}
}

// FarmRetry counts a failed attempt scheduled for retry; expired marks a
// lease-expiry failure (a lost worker) rather than an explicit one.
func (t *SweepTracker) FarmRetry(expired bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.farmOn()
	t.retries++
	if expired {
		t.expired++
	}
}

// FarmQuarantined counts a cell leaving the pool as a gap.
func (t *SweepTracker) FarmQuarantined() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.farmOn()
	t.quarantine++
}

// FarmDuplicate counts a discarded duplicate completion.
func (t *SweepTracker) FarmDuplicate() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.farmOn()
	t.duplicates++
}

// FarmCrash counts a worker death observed by the farm supervisor.
func (t *SweepTracker) FarmCrash() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.farmOn()
	t.crashes++
}

// farmOn flips the tracker into farm mode. Caller holds the lock.
func (t *SweepTracker) farmOn() {
	t.farm = true
	if t.leases == nil {
		t.leases = map[string]int{}
	}
}

// Finish marks the sweep inactive (running count drops to zero).
func (t *SweepTracker) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.active = false
}

// SweepStatus is one consistent reading of a tracker.
type SweepStatus struct {
	Label   string
	Active  bool
	Total   int
	Done    int
	Cached  int
	Running int
	// P50, P95, P99 are pooled delay percentiles in seconds over every
	// completed cell so far.
	P50, P95, P99 float64
	// DelayN is the pooled observation count behind the percentiles.
	DelayN  uint64
	Elapsed time.Duration
	// Farm is the sweep-farm robustness block; Farm.Active is false for
	// in-process sweeps.
	Farm FarmStatus
}

// WorkerLeases is one worker's live-lease gauge.
type WorkerLeases struct {
	Worker string
	Leases int
}

// FarmStatus is the lease/retry/quarantine view of a farm-executed sweep.
type FarmStatus struct {
	// Active reports that the sweep runs under the farm protocol.
	Active bool
	// Retries counts failed attempts scheduled for another try; Expired is
	// the subset caused by lease expiry (lost workers).
	Retries int
	Expired int
	// Quarantined counts cells that left the pool as explicit gaps.
	Quarantined int
	// Duplicates counts discarded duplicate completions.
	Duplicates int
	// Crashes counts worker deaths the supervisor observed.
	Crashes int
	// Workers lists per-worker live leases, sorted by worker name.
	Workers []WorkerLeases
}

// Status returns a consistent snapshot of the sweep.
func (t *SweepTracker) Status() SweepStatus {
	if t == nil {
		return SweepStatus{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := SweepStatus{
		Label:  t.label,
		Active: t.active,
		Total:  t.total,
		Done:   t.done,
		Cached: t.cached,
		DelayN: t.delay.N(),
		P50:    t.delay.Percentile(50),
		P95:    t.delay.Percentile(95),
		P99:    t.delay.Percentile(99),
	}
	if t.active {
		st.Elapsed = time.Since(t.started)
		if rem := t.total - t.done; t.total > 0 && rem > 0 {
			st.Running = t.workers
			if rem < st.Running {
				st.Running = rem
			}
		}
	}
	if t.farm {
		st.Farm = FarmStatus{
			Active:      true,
			Retries:     t.retries,
			Expired:     t.expired,
			Quarantined: t.quarantine,
			Duplicates:  t.duplicates,
			Crashes:     t.crashes,
		}
		for w, n := range t.leases {
			st.Farm.Workers = append(st.Farm.Workers, WorkerLeases{Worker: w, Leases: n})
		}
		sort.Slice(st.Farm.Workers, func(i, j int) bool {
			return st.Farm.Workers[i].Worker < st.Farm.Workers[j].Worker
		})
		if t.active {
			live := 0
			for _, n := range t.leases {
				live += n
			}
			// Under the farm, "running" is the live-lease count, not the
			// worker-pool heuristic.
			st.Running = live
		}
	}
	return st
}

// Line renders the status as a one-line terminal progress report (the
// expsweep -progress output).
func (s SweepStatus) Line() string {
	if s.Total == 0 {
		return fmt.Sprintf("%s: starting", s.Label)
	}
	line := fmt.Sprintf("%s: %d/%d cells (%d cached, %d running) delay p50/p95/p99 %.3g/%.3g/%.3g s [%s]",
		s.Label, s.Done, s.Total, s.Cached, s.Running,
		s.P50, s.P95, s.P99, s.Elapsed.Round(time.Second))
	if s.Farm.Active {
		line += fmt.Sprintf(" farm: %d retries (%d expired), %d quarantined, %d crashes",
			s.Farm.Retries, s.Farm.Expired, s.Farm.Quarantined, s.Farm.Crashes)
	}
	return line
}
