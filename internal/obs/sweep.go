package obs

import (
	"fmt"
	"sync"
	"time"

	"mlorass/internal/telemetry"
)

// SweepTracker follows one figure sweep as its cells land: counts, the
// exactly-pooled delay histogram of every completed cell, and wall-clock
// pacing. The CLI feeds it from experiment.ParallelSweep progress updates;
// the dashboard and /metrics read it. A nil *SweepTracker reads as an
// empty, inactive sweep.
type SweepTracker struct {
	mu      sync.Mutex
	label   string
	workers int
	total   int
	done    int
	cached  int
	delay   telemetry.Histogram
	started time.Time
	active  bool
}

// NewSweepTracker returns an idle tracker.
func NewSweepTracker() *SweepTracker { return &SweepTracker{} }

// Begin starts tracking a sweep of labelled work executed by the given
// worker count. Counters reset; the pooled delay histogram carries over so
// percentiles stay populated across a multi-environment sweep.
func (t *SweepTracker) Begin(label string, workers int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.label = label
	t.workers = workers
	t.total, t.done, t.cached = 0, 0, 0
	t.started = time.Now()
	t.active = true
}

// CellDone records one completed cell and pools its delay histogram.
func (t *SweepTracker) CellDone(completed, total int, cached bool, snap telemetry.Snapshot) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done, t.total = completed, total
	if cached {
		t.cached++
	}
	t.delay.Merge(&snap.Delay)
}

// Finish marks the sweep inactive (running count drops to zero).
func (t *SweepTracker) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.active = false
}

// SweepStatus is one consistent reading of a tracker.
type SweepStatus struct {
	Label   string
	Active  bool
	Total   int
	Done    int
	Cached  int
	Running int
	// P50, P95, P99 are pooled delay percentiles in seconds over every
	// completed cell so far.
	P50, P95, P99 float64
	// DelayN is the pooled observation count behind the percentiles.
	DelayN  uint64
	Elapsed time.Duration
}

// Status returns a consistent snapshot of the sweep.
func (t *SweepTracker) Status() SweepStatus {
	if t == nil {
		return SweepStatus{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	st := SweepStatus{
		Label:  t.label,
		Active: t.active,
		Total:  t.total,
		Done:   t.done,
		Cached: t.cached,
		DelayN: t.delay.N(),
		P50:    t.delay.Percentile(50),
		P95:    t.delay.Percentile(95),
		P99:    t.delay.Percentile(99),
	}
	if t.active {
		st.Elapsed = time.Since(t.started)
		if rem := t.total - t.done; t.total > 0 && rem > 0 {
			st.Running = t.workers
			if rem < st.Running {
				st.Running = rem
			}
		}
	}
	return st
}

// Line renders the status as a one-line terminal progress report (the
// expsweep -progress output).
func (s SweepStatus) Line() string {
	if s.Total == 0 {
		return fmt.Sprintf("%s: starting", s.Label)
	}
	return fmt.Sprintf("%s: %d/%d cells (%d cached, %d running) delay p50/p95/p99 %.3g/%.3g/%.3g s [%s]",
		s.Label, s.Done, s.Total, s.Cached, s.Running,
		s.P50, s.P95, s.P99, s.Elapsed.Round(time.Second))
}
