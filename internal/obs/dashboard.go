package obs

import (
	"fmt"
	"html/template"
	"net/http"
	"time"
)

// The dashboard is one server-rendered page, refreshed by the browser every
// two seconds — html/template over live state, no scripts, no external
// assets. Forms follow the data's job: stat tiles for the headline numbers,
// a meter for sweep progress, per-shard stacked bars (three fixed
// categorical hues, one per engine phase) with every value also printed in
// the adjacent table so color never carries alone, and single-hue bars for
// the SF distribution. Light and dark are both explicit palettes selected
// by prefers-color-scheme, validated against their surfaces.

type dashKV struct {
	Name  string
	Value uint64
}

type dashSF struct {
	SF    int
	Count uint64
	Pct   float64 // bar width, % of the largest SF count
}

type dashShard struct {
	Shard                    int
	Kernel, Resolve, Deliver string
	KPct, RPct, DPct         float64 // stacked widths, % of row total
}

type dashPhase struct {
	Name             string
	Shard            int
	Count            uint64
	Total, Mean, Max string
}

type dashSpan struct {
	Name  string
	Shard int
	Dur   string
	Sim   string
	Attr  int64
	Label string
}

type dashData struct {
	Title         string
	Live          int
	Sweep         SweepStatus
	HasSweep      bool
	PctDone       float64
	P50, P95, P99 string
	Elapsed       string
	Counters      []dashKV
	SF            []dashSF
	HasSF         bool
	Shards        []dashShard
	Phases        []dashPhase
	Recent        []dashSpan
	Evicted       uint64
}

// fmtSeconds renders a duration-in-seconds with a unit that keeps 3
// significant figures readable (the axis-label rule: no 0.00012 s).
func fmtSeconds(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 1e-3:
		return fmt.Sprintf("%.3g µs", v*1e6)
	case v < 1:
		return fmt.Sprintf("%.3g ms", v*1e3)
	case v < 120:
		return fmt.Sprintf("%.3g s", v)
	default:
		return time.Duration(v * float64(time.Second)).Round(time.Second).String()
	}
}

func (s *Server) dashData() dashData {
	snap := s.Registry.Snapshot()
	st := s.Sweep.Status()
	d := dashData{
		Title:    s.Title,
		Live:     s.Registry.LiveRuns(),
		Sweep:    st,
		HasSweep: st.Total > 0 || st.Active,
		P50:      fmtSeconds(st.P50),
		P95:      fmtSeconds(st.P95),
		P99:      fmtSeconds(st.P99),
		Elapsed:  st.Elapsed.Round(time.Second).String(),
		Evicted:  s.Flight.Dropped(),
	}
	if d.Title == "" {
		d.Title = "mlorass"
	}
	if st.Total > 0 {
		d.PctDone = 100 * float64(st.Done) / float64(st.Total)
	}

	c := snap.Counters
	d.Counters = []dashKV{
		{"messages generated", c.Generated},
		{"frames on air", c.FramesOnAir},
		{"uplink deliveries", c.UplinkDeliveries},
		{"server fresh", c.ServerFresh},
		{"server duplicates", c.ServerDuplicates},
		{"relay hops", c.RelayHops},
		{"queue drops", c.QueueDrops},
		{"downlinks", c.Downlinks},
		{"downlink deliveries", c.DownlinkDeliveries},
		{"ack timeouts", c.AckTimeouts},
		{"retransmissions", c.Retransmissions},
		{"ADR applied", c.ADRApplied},
	}
	var sfMax uint64
	for _, n := range snap.SF {
		if n > sfMax {
			sfMax = n
		}
	}
	for i, n := range snap.SF {
		row := dashSF{SF: i + 7, Count: n}
		if sfMax > 0 {
			row.Pct = 100 * float64(n) / float64(sfMax)
		}
		d.SF = append(d.SF, row)
	}
	d.HasSF = sfMax > 0

	totals := s.Flight.PhaseTotals()
	perShard := map[int]*dashShard{}
	var shardOrder []int
	for _, t := range totals {
		mean := time.Duration(0)
		if t.Count > 0 {
			mean = t.Total / time.Duration(t.Count)
		}
		d.Phases = append(d.Phases, dashPhase{
			Name: t.Name, Shard: t.Shard, Count: t.Count,
			Total: fmtSeconds(t.Total.Seconds()),
			Mean:  fmtSeconds(mean.Seconds()),
			Max:   fmtSeconds(t.Max.Seconds()),
		})
		if t.Name == "kernel" || t.Name == "resolve" || t.Name == "deliver" {
			row := perShard[t.Shard]
			if row == nil {
				row = &dashShard{Shard: t.Shard}
				perShard[t.Shard] = row
				shardOrder = append(shardOrder, t.Shard)
			}
			switch t.Name {
			case "kernel":
				row.Kernel = fmtSeconds(t.Total.Seconds())
				row.KPct = t.Total.Seconds()
			case "resolve":
				row.Resolve = fmtSeconds(t.Total.Seconds())
				row.RPct = t.Total.Seconds()
			case "deliver":
				row.Deliver = fmtSeconds(t.Total.Seconds())
				row.DPct = t.Total.Seconds()
			}
		}
	}
	for _, si := range shardOrder {
		row := perShard[si]
		if sum := row.KPct + row.RPct + row.DPct; sum > 0 {
			row.KPct, row.RPct, row.DPct = 100*row.KPct/sum, 100*row.RPct/sum, 100*row.DPct/sum
		}
		d.Shards = append(d.Shards, *row)
	}

	spans := s.Flight.Spans(0)
	for i := len(spans) - 1; i >= 0 && len(d.Recent) < 12; i-- {
		sp := spans[i]
		d.Recent = append(d.Recent, dashSpan{
			Name:  sp.Name,
			Shard: sp.Shard,
			Dur:   fmtSeconds(float64(sp.DurNS) / 1e9),
			Sim:   time.Duration(sp.SimNS).Round(time.Millisecond).String(),
			Attr:  sp.Attr,
			Label: sp.Label,
		})
	}
	return d
}

func (s *Server) dashboard(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = dashTmpl.Execute(w, s.dashData())
}

var dashTmpl = template.Must(template.New("dash").Parse(`<!DOCTYPE html>
<html lang="en"><head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{{.Title}} · mlorass observability</title>
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --kernel: #2a78d6; --resolve: #eb6834; --deliver: #1baf7a;
  --seq: #2a78d6;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-muted: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --kernel: #3987e5; --resolve: #d95926; --deliver: #199e70;
    --seq: #3987e5;
  }
}
* { box-sizing: border-box; }
body { margin: 0; padding: 20px; background: var(--page); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif; }
h1 { font-size: 17px; margin: 0 0 2px; }
.sub { color: var(--ink-2); font-size: 12px; margin-bottom: 16px; }
.card { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 14px 16px; margin-bottom: 14px; }
.card h2 { font-size: 12px; font-weight: 600; letter-spacing: .04em;
  text-transform: uppercase; color: var(--ink-2); margin: 0 0 10px; }
.tiles { display: flex; flex-wrap: wrap; gap: 24px; }
.tile .v { font-size: 26px; font-weight: 600; }
.tile .l { font-size: 12px; color: var(--ink-2); }
.meter { height: 8px; background: var(--grid); border-radius: 4px;
  overflow: hidden; margin-top: 12px; }
.meter > span { display: block; height: 100%; background: var(--seq);
  border-radius: 4px; }
table { border-collapse: collapse; width: 100%;
  font-variant-numeric: tabular-nums; }
th { text-align: left; font-weight: 500; color: var(--ink-muted);
  font-size: 12px; border-bottom: 1px solid var(--baseline); padding: 3px 12px 3px 0; }
td { padding: 3px 12px 3px 0; border-bottom: 1px solid var(--grid); }
td.n, th.n { text-align: right; }
.stack { display: flex; gap: 2px; height: 12px; min-width: 160px; }
.stack > span { border-radius: 3px; }
.legend { display: flex; gap: 16px; font-size: 12px; color: var(--ink-2);
  margin-bottom: 8px; }
.legend i { display: inline-block; width: 10px; height: 10px;
  border-radius: 3px; margin-right: 5px; vertical-align: -1px; }
.bar { display: inline-block; height: 10px; background: var(--seq);
  border-radius: 3px; vertical-align: middle; }
.muted { color: var(--ink-muted); }
a { color: var(--ink-2); }
</style></head>
<body>
<h1>{{.Title}}</h1>
<div class="sub">live observability · {{.Live}} run(s) attached · refreshes every 2 s ·
<a href="/metrics">metrics</a> · <a href="/spans">spans</a> · <a href="/debug/pprof/">pprof</a></div>

{{if .HasSweep}}
<div class="card">
<h2>Sweep {{.Sweep.Label}}{{if not .Sweep.Active}} (finished){{end}}</h2>
<div class="tiles">
  <div class="tile"><div class="v">{{.Sweep.Done}} / {{.Sweep.Total}}</div><div class="l">cells done</div></div>
  <div class="tile"><div class="v">{{.Sweep.Cached}}</div><div class="l">cached</div></div>
  <div class="tile"><div class="v">{{.Sweep.Running}}</div><div class="l">running</div></div>
  <div class="tile"><div class="v">{{.Elapsed}}</div><div class="l">elapsed</div></div>
  <div class="tile"><div class="v">{{.P50}}</div><div class="l">delay p50</div></div>
  <div class="tile"><div class="v">{{.P95}}</div><div class="l">delay p95</div></div>
  <div class="tile"><div class="v">{{.P99}}</div><div class="l">delay p99</div></div>
</div>
{{if .Sweep.Farm.Active}}
<div class="tiles">
  <div class="tile"><div class="v">{{.Sweep.Farm.Retries}}</div><div class="l">retries</div></div>
  <div class="tile"><div class="v">{{.Sweep.Farm.Expired}}</div><div class="l">lease expiries</div></div>
  <div class="tile"><div class="v">{{.Sweep.Farm.Quarantined}}</div><div class="l">quarantined</div></div>
  <div class="tile"><div class="v">{{.Sweep.Farm.Duplicates}}</div><div class="l">dup completions</div></div>
  <div class="tile"><div class="v">{{.Sweep.Farm.Crashes}}</div><div class="l">worker crashes</div></div>
  {{range .Sweep.Farm.Workers}}<div class="tile"><div class="v">{{.Leases}}</div><div class="l">leases {{.Worker}}</div></div>
  {{end}}
</div>
{{end}}
<div class="meter"><span style="width: {{printf "%.1f" .PctDone}}%"></span></div>
</div>
{{end}}

{{if .Shards}}
<div class="card">
<h2>Engine phase breakdown</h2>
<div class="legend">
  <span><i style="background: var(--kernel)"></i>kernel</span>
  <span><i style="background: var(--resolve)"></i>resolve</span>
  <span><i style="background: var(--deliver)"></i>deliver</span>
</div>
<table>
<tr><th>shard</th><th>share of phase time</th><th class="n">kernel</th><th class="n">resolve</th><th class="n">deliver</th></tr>
{{range .Shards}}
<tr><td>{{.Shard}}</td>
<td><div class="stack">
  <span style="background: var(--kernel); width: {{printf "%.1f" .KPct}}%"></span>
  <span style="background: var(--resolve); width: {{printf "%.1f" .RPct}}%"></span>
  <span style="background: var(--deliver); width: {{printf "%.1f" .DPct}}%"></span>
</div></td>
<td class="n">{{.Kernel}}</td><td class="n">{{.Resolve}}</td><td class="n">{{.Deliver}}</td></tr>
{{end}}
</table>
</div>
{{end}}

{{if .Phases}}
<div class="card">
<h2>Phase totals{{if .Evicted}} <span class="muted">({{.Evicted}} spans evicted from ring)</span>{{end}}</h2>
<table>
<tr><th>phase</th><th class="n">shard</th><th class="n">spans</th><th class="n">total</th><th class="n">mean</th><th class="n">max</th></tr>
{{range .Phases}}
<tr><td>{{.Name}}</td><td class="n">{{.Shard}}</td><td class="n">{{.Count}}</td>
<td class="n">{{.Total}}</td><td class="n">{{.Mean}}</td><td class="n">{{.Max}}</td></tr>
{{end}}
</table>
</div>
{{end}}

<div class="card">
<h2>Telemetry counters</h2>
<table>
{{range .Counters}}<tr><td>{{.Name}}</td><td class="n">{{.Value}}</td></tr>
{{end}}
</table>
</div>

{{if .HasSF}}
<div class="card">
<h2>Uplink spreading factors</h2>
<table>
{{range .SF}}<tr><td>SF{{.SF}}</td>
<td><span class="bar" style="width: {{printf "%.1f" .Pct}}%; max-width: 240px; min-width: {{if .Count}}2px{{else}}0{{end}}"></span></td>
<td class="n">{{.Count}}</td></tr>
{{end}}
</table>
</div>
{{end}}

{{if .Recent}}
<div class="card">
<h2>Recent spans <span class="muted">(newest first)</span></h2>
<table>
<tr><th>phase</th><th class="n">shard</th><th class="n">wall</th><th class="n">sim clock</th><th class="n">attr</th><th>label</th></tr>
{{range .Recent}}
<tr><td>{{.Name}}</td><td class="n">{{.Shard}}</td><td class="n">{{.Dur}}</td>
<td class="n">{{.Sim}}</td><td class="n">{{.Attr}}</td><td>{{.Label}}</td></tr>
{{end}}
</table>
</div>
{{end}}
</body></html>
`))
