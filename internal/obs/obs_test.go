package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mlorass/internal/telemetry"
)

func TestRegistryAttachDetachMerge(t *testing.T) {
	g := NewRegistry()
	r1, r2 := telemetry.NewRecorder(), telemetry.NewRecorder()
	d1 := g.Attach(r1)
	d2 := g.Attach(r2)
	if g.LiveRuns() != 2 {
		t.Fatalf("LiveRuns = %d, want 2", g.LiveRuns())
	}
	r1.AddGenerated()
	r1.ObserveDelay(1.5)
	r2.AddGenerated()
	r2.AddGenerated()

	s := g.Snapshot()
	if s.Counters.Generated != 3 {
		t.Errorf("live Generated = %d, want 3", s.Counters.Generated)
	}
	d1()
	d1() // idempotent
	if g.LiveRuns() != 1 {
		t.Fatalf("LiveRuns after detach = %d, want 1", g.LiveRuns())
	}
	// r1's final state is folded into the base: totals must not regress.
	s = g.Snapshot()
	if s.Counters.Generated != 3 || s.Delay.N() != 1 {
		t.Errorf("post-detach snapshot = %d generated / %d delays, want 3 / 1",
			s.Counters.Generated, s.Delay.N())
	}
	d2()
	if got := g.Snapshot().Counters.Generated; got != 3 {
		t.Errorf("final Generated = %d, want 3", got)
	}
	// Nil recorder attach is a no-op with a safe detach.
	g.Attach(nil)()
}

// TestRegistryConcurrent scrapes while runs attach, record, and detach —
// the sweep steady state under -race.
func TestRegistryConcurrent(t *testing.T) {
	g := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := g.Snapshot()
			if s.Counters.Generated < last {
				t.Errorf("registry Generated regressed %d -> %d", last, s.Counters.Generated)
				return
			}
			last = s.Counters.Generated
		}
	}()
	const runs, per = 8, 500
	for i := 0; i < runs; i++ {
		r := telemetry.NewRecorder()
		detach := g.Attach(r)
		for j := 0; j < per; j++ {
			r.AddGenerated()
			r.ObserveDelay(0.25)
		}
		detach()
	}
	close(stop)
	wg.Wait()
	if got := g.Snapshot().Counters.Generated; got != runs*per {
		t.Errorf("final Generated = %d, want %d", got, runs*per)
	}
}

func endSpan(f *FlightRecorder, name string, shard int, attr int64, label string) {
	tok := f.StartSpan()
	f.EndSpan(telemetry.SpanEnd{Token: tok, Name: name, Shard: shard, At: time.Second, Attr: attr, Label: label})
}

func TestFlightRecorderRingAndTotals(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		endSpan(f, "kernel", i%2, int64(i), "")
	}
	if f.Recorded() != 10 {
		t.Errorf("Recorded = %d, want 10", f.Recorded())
	}
	if f.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", f.Dropped())
	}
	spans := f.Spans(0)
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	// Oldest-first: the ring keeps the last four attrs 6,7,8,9.
	for i, s := range spans {
		if s.Attr != int64(6+i) {
			t.Errorf("span %d attr = %d, want %d", i, s.Attr, 6+i)
		}
	}
	if got := f.Spans(2); len(got) != 2 || got[1].Attr != 9 {
		t.Errorf("Spans(2) = %+v, want the newest two", got)
	}
	totals := f.PhaseTotals()
	if len(totals) != 2 {
		t.Fatalf("got %d phase totals, want 2 (kernel shard 0/1)", len(totals))
	}
	// Totals survive eviction: 5 spans per shard despite a 4-slot ring.
	for _, pt := range totals {
		if pt.Name != "kernel" || pt.Count != 5 {
			t.Errorf("total %+v, want kernel count 5", pt)
		}
		if pt.Max < pt.Total/5 {
			t.Errorf("max %v below mean %v", pt.Max, pt.Total/5)
		}
	}
	// Nil recorder: every method is a no-op.
	var nilF *FlightRecorder
	endSpan(nilF, "x", 0, 0, "")
	if nilF.Spans(0) != nil || nilF.PhaseTotals() != nil || nilF.Recorded() != 0 {
		t.Error("nil FlightRecorder is not a no-op")
	}
}

func TestFlightRecorderJSONL(t *testing.T) {
	f := NewFlightRecorder(8)
	endSpan(f, "cell", 3, 1, "urban/robc/gw=4/rep=0")
	endSpan(f, "merge", -1, 17, "")
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var got []SpanRecord
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var s SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		got = append(got, s)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d spans, want 2", len(got))
	}
	if got[0].Label != "urban/robc/gw=4/rep=0" || got[0].Shard != 3 || got[0].Attr != 1 {
		t.Errorf("cell span round-trip mismatch: %+v", got[0])
	}
	if got[1].Name != "merge" || got[1].Shard != -1 || got[1].SimNS != int64(time.Second) {
		t.Errorf("merge span round-trip mismatch: %+v", got[1])
	}
}

func TestSweepTrackerStatus(t *testing.T) {
	tr := NewSweepTracker()
	if st := tr.Status(); st.Active || st.Total != 0 {
		t.Errorf("idle tracker status = %+v", st)
	}
	tr.Begin("fig 8 urban", 4)
	snap := telemetry.Snapshot{}
	snap.Delay.Add(2.0)
	tr.CellDone(1, 10, false, snap)
	tr.CellDone(2, 10, true, snap)
	st := tr.Status()
	if !st.Active || st.Done != 2 || st.Total != 10 || st.Cached != 1 {
		t.Errorf("status = %+v, want active 2/10 with 1 cached", st)
	}
	if st.Running != 4 {
		t.Errorf("Running = %d, want worker count 4", st.Running)
	}
	if st.DelayN != 2 || st.P50 <= 0 {
		t.Errorf("pooled delay N=%d p50=%g, want 2 observations", st.DelayN, st.P50)
	}
	// Running clamps to remaining cells.
	tr.CellDone(8, 10, false, telemetry.Snapshot{})
	if st := tr.Status(); st.Running != 2 {
		t.Errorf("Running = %d, want 2 (remaining)", st.Running)
	}
	tr.Finish()
	st = tr.Status()
	if st.Active || st.Running != 0 {
		t.Errorf("finished status = %+v", st)
	}
	line := st.Line()
	for _, want := range []string{"fig 8 urban", "8/10", "cached"} {
		if !strings.Contains(line, want) {
			t.Errorf("status line %q missing %q", line, want)
		}
	}
	// Nil tracker: no-ops and a zero status.
	var nilT *SweepTracker
	nilT.Begin("x", 1)
	nilT.CellDone(1, 1, false, telemetry.Snapshot{})
	nilT.Finish()
	if st := nilT.Status(); st.Total != 0 {
		t.Errorf("nil tracker status = %+v", st)
	}
}

// TestSweepTrackerFarm pins the farm block: any Farm* call flips the
// tracker into farm mode, Running becomes the live-lease sum, per-worker
// gauges sort by name, and Begin resets everything.
func TestSweepTrackerFarm(t *testing.T) {
	tr := NewSweepTracker()
	tr.Begin("fig 8 urban", 4)
	if st := tr.Status(); st.Farm.Active {
		t.Errorf("farm active before any Farm* call: %+v", st.Farm)
	}
	tr.FarmLeased("w1")
	tr.FarmLeased("w1")
	tr.FarmLeased("w0")
	tr.FarmRetry(false)
	tr.FarmRetry(true)
	tr.FarmSettled("w1")
	tr.FarmQuarantined()
	tr.FarmDuplicate()
	tr.FarmCrash()
	tr.CellDone(1, 10, false, telemetry.Snapshot{})
	st := tr.Status()
	if !st.Farm.Active {
		t.Fatal("farm block inactive after Farm* calls")
	}
	if st.Farm.Retries != 2 || st.Farm.Expired != 1 || st.Farm.Quarantined != 1 ||
		st.Farm.Duplicates != 1 || st.Farm.Crashes != 1 {
		t.Errorf("farm counters = %+v", st.Farm)
	}
	// Live leases: w0 holds 1, w1 holds 1 (2 granted, 1 settled) → Running
	// is the lease sum, not the worker-pool heuristic.
	if st.Running != 2 {
		t.Errorf("Running = %d, want live-lease sum 2", st.Running)
	}
	if len(st.Farm.Workers) != 2 || st.Farm.Workers[0].Worker != "w0" || st.Farm.Workers[1].Leases != 1 {
		t.Errorf("per-worker leases = %+v, want sorted [w0:1 w1:1]", st.Farm.Workers)
	}
	// Settling a worker with no lease is clamped, not driven negative.
	tr.FarmSettled("w9")
	for _, w := range tr.Status().Farm.Workers {
		if w.Leases < 0 {
			t.Errorf("worker %s lease gauge negative: %+v", w.Worker, tr.Status().Farm.Workers)
		}
	}
	line := tr.Status().Line()
	for _, want := range []string{"farm:", "2 retries", "(1 expired)", "1 quarantined", "1 crashes"} {
		if !strings.Contains(line, want) {
			t.Errorf("farm status line %q missing %q", line, want)
		}
	}
	// Begin resets the farm block entirely.
	tr.Begin("fig 8 rural", 4)
	if st := tr.Status(); st.Farm.Active || st.Farm.Retries != 0 || len(st.Farm.Workers) != 0 {
		t.Errorf("Begin did not reset farm block: %+v", st.Farm)
	}
	// Nil tracker: all Farm* calls are no-ops.
	var nilT *SweepTracker
	nilT.FarmLeased("w0")
	nilT.FarmSettled("w0")
	nilT.FarmRetry(true)
	nilT.FarmQuarantined()
	nilT.FarmDuplicate()
	nilT.FarmCrash()
	if st := nilT.Status(); st.Farm.Active {
		t.Errorf("nil tracker farm active: %+v", st)
	}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	reg := NewRegistry()
	r := telemetry.NewRecorder()
	detach := reg.Attach(r)
	r.AddGenerated()
	r.ObserveDelay(1.25)
	detach()
	flight := NewFlightRecorder(16)
	endSpan(flight, "kernel", 0, 3, "")
	endSpan(flight, "resolve", 0, 1, "")
	endSpan(flight, "deliver", 0, 2, "")
	endSpan(flight, "merge", -1, 5, "")
	sweep := NewSweepTracker()
	sweep.Begin("fig 8 urban", 2)
	snap := telemetry.Snapshot{}
	snap.Delay.Add(1.25)
	sweep.CellDone(1, 6, true, snap)
	srv := &Server{Registry: reg, Flight: flight, Sweep: sweep, Title: "expsweep -fig 8"}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestServerEndpoints(t *testing.T) {
	_, ts := newTestServer(t)

	metrics := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"mlorass_messages_generated_total 1",
		`mlorass_delay_seconds_bucket{le="+Inf"} 1`,
		"mlorass_sweep_cells_total 6",
		"mlorass_sweep_cells_done 1",
		"mlorass_sweep_cells_cached 1",
		`mlorass_phase_spans_total{phase="kernel",shard="0"} 1`,
		`mlorass_phase_seconds_total{phase="merge",shard="-1"}`,
		"mlorass_spans_recorded_total 4",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	spans := get(t, ts.URL+"/spans")
	if n := strings.Count(strings.TrimSpace(spans), "\n") + 1; n != 4 {
		t.Errorf("/spans has %d lines, want 4", n)
	}
	if !strings.Contains(spans, `"name":"merge"`) {
		t.Error("/spans missing merge span")
	}

	dash := get(t, ts.URL+"/")
	for _, want := range []string{
		"expsweep -fig 8",
		"fig 8 urban",
		"1 / 6",     // cells done tile
		"delay p50", // percentile tiles
		"kernel",    // phase legend + totals
		"messages generated",
		"prefers-color-scheme: dark",
	} {
		if !strings.Contains(dash, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
	if strings.Contains(dash, "<script") {
		t.Error("dashboard must not ship scripts")
	}
	if !strings.Contains(dash, `http-equiv="refresh"`) {
		t.Error("dashboard is not self-refreshing")
	}

	if body := get(t, ts.URL+"/debug/pprof/cmdline"); body == "" {
		t.Error("pprof cmdline is empty")
	}

	resp, err := http.Get(ts.URL + "/nosuch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nosuch = %s, want 404", resp.Status)
	}
}

func TestServerStartPortInUse(t *testing.T) {
	s := &Server{Registry: NewRegistry()}
	url, stop, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	if !strings.HasPrefix(url, "http://127.0.0.1:") {
		t.Fatalf("url = %q", url)
	}
	// Second bind of the same port must fail synchronously.
	addr := strings.TrimPrefix(url, "http://")
	if _, _, err := (&Server{Registry: NewRegistry()}).Start(addr); err == nil {
		t.Fatal("Start on a busy port succeeded")
	}
	// The served mux answers over the real listener too.
	if body := get(t, url+"/metrics"); !strings.Contains(body, "mlorass_live_runs") {
		t.Error("live server /metrics missing runtime families")
	}
}
