package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Server wires the observability surfaces onto one HTTP mux:
//
//	/         self-refreshing HTML dashboard (no external assets)
//	/metrics  Prometheus text exposition (telemetry + sweep + phase totals)
//	/spans    flight-recorder ring dump as JSONL
//	/debug/pprof/*  the standard Go profiling endpoints
//
// Any of the three components may be nil; the corresponding sections are
// simply empty.
type Server struct {
	Registry *Registry
	Flight   *FlightRecorder
	Sweep    *SweepTracker
	// Title heads the dashboard (e.g. "expsweep -fig 8").
	Title string
}

// Handler returns the mux serving every endpoint.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.dashboard)
	mux.HandleFunc("/metrics", s.metrics)
	mux.HandleFunc("/spans", s.spans)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds addr and serves in the background. The listen happens
// synchronously so address errors (bad syntax, port in use) surface
// immediately; the returned stop closes the server and waits for the serve
// loop to exit. url is the reachable base ("http://host:port").
func (s *Server) Start(addr string) (url string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("observability server: %w", err)
	}
	hs := &http.Server{Handler: s.Handler()}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = hs.Serve(ln)
	}()
	stop = func() {
		_ = hs.Close()
		<-done
	}
	return "http://" + ln.Addr().String(), stop, nil
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := WriteSnapshot(w, s.Registry.Snapshot()); err != nil {
		return
	}
	_ = writeRuntime(w, s.Registry, s.Flight, s.Sweep)
}

func (s *Server) spans(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	if s.Flight == nil {
		return
	}
	_ = s.Flight.WriteJSONL(w)
}
