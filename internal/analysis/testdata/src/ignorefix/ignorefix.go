// Package mobility is a suppression fixture (named into detlint's scope):
// it proves lint:ignore cancels findings on the same line and the line
// above, that a reason is mandatory, and that a directive cancelling
// nothing is reported as stale. The expected diagnostics are asserted
// line-by-line in ignore_test.go, not with want comments — a want comment
// after an analyzer list would itself parse as the directive's reason.
package mobility

import (
	"math/rand"
	"time"
)

// SuppressedAbove cancels the finding from the preceding line.
func SuppressedAbove() time.Time {
	//lint:ignore detlint fixture: wall clock deliberately read here
	return time.Now()
}

// SuppressedTrailing cancels the finding from the same line.
func SuppressedTrailing() float64 {
	return rand.Float64() //lint:ignore detlint fixture: global stream deliberately used here
}

// MissingReason gives no justification: the finding survives (line 28) and
// the directive itself is reported (line 27).
func MissingReason() time.Time {
	//lint:ignore detlint
	return time.Now()
}

// Stale excuses a line that is clean: the directive is reported (line 34).
func Stale() int {
	//lint:ignore detlint nothing here allocates or reads clocks
	return 42
}

// WrongAnalyzer suppresses the wrong analyzer: the finding survives (line
// 41) and the directive is stale (line 40).
func WrongAnalyzer() time.Time {
	//lint:ignore hotpathlint wrong analyzer named
	return time.Now()
}
