// Package tooling sits outside detlint's simulation scope: the same
// constructs that are findings in a simulation package are legal here
// (command-line tools may read clocks and draw from the global stream).
package tooling

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock — fine outside the simulation.
func Stamp() time.Time { return time.Now() }

// Jitter draws from the global stream — fine outside the simulation.
func Jitter() float64 { return rand.Float64() }

// Collect bakes in map order — a tool may not care.
func Collect(m map[int]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
