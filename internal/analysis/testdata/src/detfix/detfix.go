// Package eventsim is a detlint fixture: its name puts it in the analyzer's
// simulation scope, and each seeded violation carries a want annotation the
// golden test matches diagnostics against.
package eventsim

import (
	"math/rand"
	"sort"
	"time"
)

// Stamp reads the wall clock inside a simulation package.
func Stamp() time.Duration {
	t := time.Now()      // want "time.Now reads the wall clock"
	return time.Since(t) // want "time.Since reads the wall clock"
}

// Jitter draws from the global math/rand stream.
func Jitter() float64 {
	return rand.Float64() // want "math/rand is not seed-reproducible"
}

// CollectBad bakes map iteration order into its result slice.
func CollectBad(m map[int]float64) []float64 {
	var out []float64
	for _, v := range m {
		out = append(out, v) // want "append inside range over map"
	}
	return out
}

// CollectGood collects keys and sorts them before use — the canonical idiom
// detlint recognises as deterministic.
func CollectGood(m map[int]float64) []float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]float64, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Fold aggregates order-insensitively; no slice outlives the loop.
func Fold(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Race selects across two channels.
func Race(a, b <-chan int) int {
	select { // want "select over multiple channels"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// WaitOne blocks on a single channel: deterministic, unflagged.
func WaitOne(a <-chan int) int {
	select {
	case v := <-a:
		return v
	}
}
