// Package hotfix is a hotpathlint fixture: Bad seeds one violation per rule,
// Good exercises every allocation-free idiom the analyzer must keep legal,
// and Cold shows that unannotated functions are out of scope.
package hotfix

import (
	"errors"
	"fmt"
)

// Ring is a preallocated buffer a hot path may grow.
type Ring struct {
	buf  []int
	tags map[int]string
}

// Stringer boxes values passed to it.
type Stringer interface{ String() string }

// ID is a concrete value a bad hot path boxes into an interface.
type ID int

func (i ID) String() string { return "id" }

// Bad violates every hotpathlint rule once.
//
//mlorass:hotpath
func (r *Ring) Bad(n int) (int, error) {
	scratch := make([]int, n) // want "make allocates"
	p := new(int)             // want "new allocates"
	m := map[int]int{n: n}    // want "map literal allocates"
	q := &Ring{}              // want "escapes to the heap"
	var out []int
	out = append(out, n)               // want "append only to parameters or receiver fields"
	f := func() int { return n }       // want "closure allocates"
	s := fmt.Sprintf("%d", n)          // want "boxes its operands and allocates"
	err := errors.New(s)               // want "errors.New allocates"
	var box Stringer = Stringer(ID(n)) // want "boxes the value"
	_ = box
	return len(scratch) + *p + m[n] + len(q.buf) + out[0] + f(), err
}

// Good uses only the allocation-free idioms: appends rooted at the receiver
// or parameters, locals re-sliced from receiver storage, and plain struct
// values.
//
//mlorass:hotpath
func (r *Ring) Good(extra []int, v int) int {
	r.buf = append(r.buf, v)
	extra = append(extra, v)
	kept := r.buf[:0]
	for _, x := range r.buf {
		if x != v {
			kept = append(kept, x)
		}
	}
	r.buf = kept
	sum := entry{k: v}
	return sum.k + len(extra)
}

// entry is a plain value type; its composite literal does not escape.
type entry struct{ k int }

// Cold is unannotated: hotpathlint never looks inside.
func (r *Ring) Cold(n int) []int {
	return make([]int, n)
}

// Excused carries a justified suppression; the directive must cancel the
// finding without surfacing as stale.
//
//mlorass:hotpath
func (r *Ring) Excused(n int) []int {
	if cap(r.buf) < n {
		//lint:ignore hotpathlint amortized warm-up growth for the fixture
		r.buf = make([]int, n)
	}
	return r.buf[:n]
}
