// Package sweepfarm (fixture) exercises the clock-confinement scope: wall
// time and timers must flow through the package's injected Clock, while the
// concurrency idioms the simulation scope forbids — multi-way selects,
// map-ordered bookkeeping — stay legal here.
package sweepfarm

import (
	"math/rand"
	"time"
)

// Deadline reads the wall clock directly instead of a Clock.
func Deadline(ttl time.Duration) time.Time {
	return time.Now().Add(ttl) // want "time.Now bypasses the injected Clock"
}

// Age measures elapsed wall time directly.
func Age(t time.Time) time.Duration {
	return time.Since(t) // want "time.Since bypasses the injected Clock"
}

// Wait sleeps on the runtime timer wheel instead of Clock.After.
func Wait(d time.Duration) {
	time.Sleep(d) // want "time.Sleep bypasses the injected Clock"
}

// Tick builds a timer channel the fake clock cannot drive.
func Tick(d time.Duration) <-chan time.Time {
	return time.After(d) // want "time.After bypasses the injected Clock"
}

// Jitter draws from the global stream instead of internal/rng.
func Jitter() float64 {
	return rand.Float64() // want "math/rand is not seed-reproducible"
}

// wallNow is the one legitimate wall-clock touchpoint: the production Clock
// implementation, suppressed with a reasoned directive the analyzer keeps
// honest (a stale directive is itself a finding).
func wallNow() time.Time {
	//lint:ignore detlint the wall-clock implementation behind the Clock interface
	return time.Now()
}

// Pump is a two-way select: runtime-ordered, and fine — worker loops
// multiplex cancellation against work by design.
func Pump(work <-chan int, stop <-chan struct{}) int {
	select {
	case v := <-work:
		return v
	case <-stop:
		return 0
	}
}

// Collect ranges a map into a slice: order-dependent, and fine — farm
// bookkeeping is not a simulation result.
func Collect(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
