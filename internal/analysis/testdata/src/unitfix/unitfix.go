// Package radio is a unitlint fixture: it declares local copies of the unit
// types (recognition is by name + float64 underlying) and seeds one violation
// per rule, next to the legal forms the analyzer must leave alone.
package radio

// DBm is an absolute power level.
type DBm float64

// DB is a relative gain, loss or margin.
type DB float64

// Meters is a distance.
type Meters float64

// Hz is a frequency.
type Hz float64

// Sub is the blessed DBm difference; the float64 conversions inside the
// method are the sanctioned escape hatch.
func (x DBm) Sub(y DBm) DB { return DB(float64(x) - float64(y)) }

// BadAdd adds two absolute powers.
func BadAdd(a, b DBm) DBm {
	return a + b // want "adding two DBm values is dimensionally wrong"
}

// BadSub takes a raw DBm difference, mislabelling the DB result as DBm.
func BadSub(a, b DBm) DBm {
	return a - b // want "DBm minus DBm is a DB difference"
}

// BadConv relabels an absolute power as a margin without touching float64.
func BadConv(rssi DBm) DB {
	return DB(rssi) // want "direct DB\(DBm\) conversion relabels the unit"
}

// GoodConv converts through float64, making the unit change explicit.
func GoodConv(rssi DBm) DB {
	return DB(float64(rssi))
}

// GoodAlgebra exercises the legal operations: DB accumulates, constants
// offset absolute powers, and Sub produces the difference.
func GoodAlgebra(tx DBm, loss, fade DB) DB {
	total := loss + fade
	threshold := tx - 3
	return threshold.Sub(tx) + total
}

// BadTable is a link-budget table keyed by raw floats with unit-suffixed
// names; in the radio stack these must use the named types.
type BadTable struct {
	SensitivityDBm float64 // want "declare it as radio.DBm"
	MarginDB       float64 // want "declare it as radio.DB"
	BandwidthHz    float64 // want "declare it as radio.Hz"
	RangeM         float64 // want "declare it as radio.Meters"
	Exponent       float64
}

// BadSignature smuggles units through raw float64 parameters and results.
func BadSignature(rssiDBm float64) (snrDB float64) { // want "declare it as radio.DBm" "declare it as radio.DB"
	return rssiDBm
}

// GoodTable carries its units in the type system.
type GoodTable struct {
	Sensitivity DBm
	Margin      DB
	Bandwidth   Hz
	Range       Meters
}
