// Package analysis is mlorass's in-tree static-analysis framework: a small,
// stdlib-only (go/parser + go/types) analogue of golang.org/x/tools/go/analysis
// that powers cmd/mlorasslint. Three repo-specific analyzers run over every
// package of the module:
//
//   - detlint      — determinism: no wall clock, no global math/rand, no
//     map-iteration-ordered results, no multi-way selects in simulation
//     packages (the event kernel must replay byte-identically from a seed).
//   - hotpathlint  — zero-alloc hot paths: functions annotated with a
//     //mlorass:hotpath directive must not introduce allocation constructs
//     (the PR 4 steady-state-zero-allocation contract, enforced at the
//     source level instead of only by runtime alloc-invariant tests).
//   - unitlint     — radio-unit safety: dBm/dB/metre/hertz quantities use
//     the named types in internal/radio and never mix through raw float64
//     arithmetic or direct unit-to-unit conversions.
//
// A finding is suppressed with an in-source directive on the same line or the
// line directly above:
//
//	//lint:ignore detlint,hotpathlint <reason>
//
// The reason is mandatory; a reasonless directive is itself reported. The
// framework deliberately avoids x/tools so the linter builds and runs offline
// with nothing beyond the Go toolchain already in the module's build
// environment.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in output and in lint:ignore directives.
	Name string
	// Doc is the one-line description shown by the driver's usage text.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Fset maps token positions to file/line/column.
	Fset *token.FileSet
	// Files are the package's parsed source files, in deterministic
	// (sorted filename) order.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds expression types, object definitions and uses.
	TypesInfo *types.Info

	analyzer string
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.analyzer,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a concrete source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	analyzers map[string]bool
	hasReason bool
	pos       token.Position
	used      bool
}

// RunAnalyzers executes every analyzer over pkg and returns the surviving
// diagnostics: findings cancelled by a lint:ignore directive (same line or
// the line above) are dropped, reasonless or unused directives are reported
// under the "mlorasslint" pseudo-analyzer, and the result is sorted by
// position for stable output.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			analyzer:  a.Name,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	diags = applyIgnores(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// applyIgnores filters diags through the package's lint:ignore directives.
// A directive at line L cancels matching findings at L (trailing comment) and
// L+1 (comment above the flagged line).
func applyIgnores(pkg *Package, diags []Diagnostic) []Diagnostic {
	// file -> line -> directives at that line.
	dirs := map[string]map[int][]*ignoreDirective{}
	var all []*ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				d.pos = pkg.Fset.Position(c.Pos())
				byLine := dirs[d.pos.Filename]
				if byLine == nil {
					byLine = map[int][]*ignoreDirective{}
					dirs[d.pos.Filename] = byLine
				}
				byLine[d.pos.Line] = append(byLine[d.pos.Line], d)
				all = append(all, d)
			}
		}
	}
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, line := range [2]int{d.Pos.Line, d.Pos.Line - 1} {
			for _, dir := range dirs[d.Pos.Filename][line] {
				if dir.analyzers[d.Analyzer] && dir.hasReason {
					dir.used = true
					suppressed = true
				}
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range all {
		switch {
		case !dir.hasReason:
			kept = append(kept, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "mlorasslint",
				Message:  "lint:ignore directive is missing a reason",
			})
		case !dir.used:
			// An ignore that cancels nothing is stale: the code it excused
			// was fixed, or the analyzer list is misspelt.
			kept = append(kept, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "mlorasslint",
				Message:  "lint:ignore directive matches no finding; remove it",
			})
		}
	}
	return kept
}

// parseIgnore recognises "//lint:ignore <a1,a2> <reason>".
func parseIgnore(text string) (*ignoreDirective, bool) {
	const prefix = "//lint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	name, reason, _ := strings.Cut(rest, " ")
	d := &ignoreDirective{analyzers: map[string]bool{}, hasReason: strings.TrimSpace(reason) != ""}
	for _, a := range strings.Split(name, ",") {
		if a = strings.TrimSpace(a); a != "" {
			d.analyzers[a] = true
		}
	}
	return d, len(d.analyzers) > 0
}

// pkgNameOf resolves the package an identifier refers to when it names an
// import, e.g. the "time" in time.Now. It returns nil for non-package idents.
func pkgNameOf(info *types.Info, id *ast.Ident) *types.PkgName {
	if obj, ok := info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn
		}
	}
	return nil
}

// selectorPkgPath returns the import path of the package qualifying a
// selector expression (e.g. "time" for time.Now), or "" when the selector is
// not package-qualified.
func selectorPkgPath(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn := pkgNameOf(info, id); pn != nil {
		return pn.Imported().Path()
	}
	return ""
}
