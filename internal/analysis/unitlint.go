package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// unitTypeNames are the radio-unit types (internal/radio): named types with a
// float64 underlying. Recognition is by name + underlying so the fixture
// corpus can declare its own copies.
var unitTypeNames = map[string]bool{
	"DBm":    true, // absolute power, dB-milliwatts
	"DB":     true, // relative gain/loss/margin
	"Meters": true,
	"Hz":     true,
}

// unitScopedPackages are the packages whose float64 declarations must use the
// named unit types when their names carry a unit suffix. The experiment
// config surface deliberately stays float64 (it is the user-facing JSON
// boundary); conversion to units happens once, at simulator assembly.
var unitScopedPackages = map[string]bool{
	"radio":   true,
	"lorawan": true,
	"mac":     true,
	"core":    true,
}

// UnitLint enforces the radio-unit algebra: absolute dBm values never add,
// dBm−dBm differences are taken through DBm.Sub (they are a DB, not a DBm),
// unit types never convert directly into one another (float64() is the
// explicit escape hatch), and unit-suffixed float64 declarations in the radio
// stack use the named types instead.
var UnitLint = &Analyzer{
	Name: "unitlint",
	Doc:  "forbid raw-float unit mixing and dimensionally wrong dBm arithmetic",
	Run:  runUnitLint,
}

func runUnitLint(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkDBmArith(p, n)
			case *ast.CallExpr:
				checkUnitConv(p, n)
			case *ast.FuncDecl:
				if unitScopedPackages[p.Pkg.Name()] {
					checkFieldNames(p, n.Type.Params)
					checkFieldNames(p, n.Type.Results)
				}
			case *ast.StructType:
				if unitScopedPackages[p.Pkg.Name()] {
					checkFieldNames(p, n.Fields)
				}
			}
			return true
		})
	}
	return nil
}

// unitTypeName returns the unit-type name of t ("DBm", "DB", ...) or "".
func unitTypeName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.Float64 {
		return ""
	}
	if name := named.Obj().Name(); unitTypeNames[name] {
		return name
	}
	return ""
}

// checkDBmArith flags dimensionally wrong arithmetic on absolute powers:
// DBm+DBm has no physical meaning (absolute powers do not add on a log
// scale), and DBm−DBm is a DB difference, so raw subtraction — which yields
// DBm — must go through DBm.Sub.
func checkDBmArith(p *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.ADD && bin.Op != token.SUB {
		return
	}
	xt, yt := p.TypesInfo.TypeOf(bin.X), p.TypesInfo.TypeOf(bin.Y)
	if xt == nil || yt == nil {
		return
	}
	if unitTypeName(xt) != "DBm" || unitTypeName(yt) != "DBm" {
		return
	}
	// Untyped constants take on DBm only by context; offsetting an absolute
	// power by a literal (sensitivity - 1) is fine and stays unflagged.
	if isUntypedConst(p.TypesInfo, bin.X) || isUntypedConst(p.TypesInfo, bin.Y) {
		return
	}
	if bin.Op == token.ADD {
		p.Reportf(bin.OpPos, "adding two DBm values is dimensionally wrong; offset an absolute power with DBm.Plus(DB)")
	} else {
		p.Reportf(bin.OpPos, "DBm minus DBm is a DB difference; use DBm.Sub, or DBm.Minus(DB) to apply a loss")
	}
}

// checkUnitConv flags direct conversions between distinct unit types, e.g.
// DB(rssi) where rssi is a DBm: silently relabelling a quantity's dimension
// is exactly the bug class the types exist to stop. Converting through
// float64() signals intent and stays legal.
func checkUnitConv(p *Pass, call *ast.CallExpr) {
	tv, ok := p.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst := unitTypeName(tv.Type)
	if dst == "" {
		return
	}
	src := unitTypeName(p.TypesInfo.TypeOf(call.Args[0]))
	if src == "" || src == dst {
		return
	}
	p.Reportf(call.Pos(), "direct %s(%s) conversion relabels the unit; convert explicitly through float64()", dst, src)
}

// unitSuffixes maps declaration-name suffixes to the unit type they should
// carry. Longer suffixes are tried first so "...DBm" is not caught by "DB".
var unitSuffixes = []struct{ suffix, unit string }{
	{"DBm", "radio.DBm"},
	{"DB", "radio.DB"},
	{"Hz", "radio.Hz"},
}

// checkFieldNames flags float64 parameters, results and struct fields whose
// names announce a unit (…DBm, …DB, …Hz, Range/Dist…M) in the unit-scoped
// packages.
func checkFieldNames(p *Pass, fields *ast.FieldList) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		t := p.TypesInfo.TypeOf(f.Type)
		if t == nil {
			continue
		}
		basic, ok := t.(*types.Basic)
		if !ok || basic.Kind() != types.Float64 {
			continue
		}
		for _, name := range f.Names {
			if unit := suggestedUnit(name.Name); unit != "" {
				p.Reportf(name.Pos(), "%s is a float64 with a unit-suffixed name; declare it as %s", name.Name, unit)
			}
		}
	}
}

// suggestedUnit returns the unit type a declaration name implies, or "".
func suggestedUnit(name string) string {
	for _, s := range unitSuffixes {
		if strings.HasSuffix(name, s.suffix) {
			return s.unit
		}
	}
	if strings.HasSuffix(name, "M") &&
		(strings.Contains(name, "Range") || strings.Contains(name, "Dist") || strings.Contains(name, "Radius")) {
		return "radio.Meters"
	}
	return ""
}

// isUntypedConst reports whether expr is an untyped constant expression.
func isUntypedConst(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.Value != nil
}
