package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package, ready for analysis.
type Package struct {
	// Path is the import path ("mlorass/internal/radio").
	Path string
	// Dir is the package's source directory.
	Dir string
	// Fset, Files, Types and Info are the parse and type-check results.
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader type-checks module packages offline using nothing but the standard
// library: module-local imports are resolved recursively from source under
// the module root, everything else (the standard library) through the source
// importer reading GOROOT/src. This trades some speed against x/tools for a
// linter with zero dependencies beyond the toolchain itself.
type Loader struct {
	fset    *token.FileSet
	module  string
	root    string
	pkgs    map[string]*Package
	std     types.ImporterFrom
	loading map[string]bool
}

// NewLoader returns a loader for the module named module rooted at root.
func NewLoader(module, root string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset:    fset,
		module:  module,
		root:    root,
		pkgs:    map[string]*Package{},
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		loading: map[string]bool{},
	}
}

// ModuleInfo locates the enclosing module of dir: it walks up to the nearest
// go.mod and returns the module path declared there and the module root.
func ModuleInfo(dir string) (module, root string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return strings.TrimSpace(rest), dir, nil
				}
			}
			return "", "", fmt.Errorf("no module directive in %s", filepath.Join(dir, "go.mod"))
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom routes module-local import paths to the source loader and
// everything else to the standard-library importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Load parses and type-checks the module package with the given import path
// (non-test files only), resolving its imports recursively. Results are
// memoised, so loading every package of the module type-checks each one once.
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.module), "/")
	dir := filepath.Join(l.root, filepath.FromSlash(rel))
	files, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}
	p, err := check(l.fset, path, dir, files, l)
	if err != nil {
		return nil, err
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadAll loads every package under the module root, in sorted import-path
// order. Directories named testdata, hidden directories and directories
// without non-test Go files are skipped.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if !has {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		ip := l.module
		if rel != "." {
			ip = l.module + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadDir parses and type-checks a standalone directory outside any module —
// the test-fixture loader. Fixture packages may import only the standard
// library.
func LoadDir(dir string) (*Package, error) {
	fset := token.NewFileSet()
	files, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	std := importer.ForCompiler(fset, "source", nil)
	return check(fset, filepath.Base(dir), dir, files, std)
}

// parseDir parses the non-test Go files of dir in sorted filename order.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks files as package path, recording the type information the
// analyzers need.
func check(fset *token.FileSet, path, dir string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := &types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test Go
// file.
func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
