package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// writeModule materialises a synthetic two-package module for loader tests:
// a root package importing a subpackage, a testdata dir that must be
// skipped, and an empty dir that yields no package.
func writeModule(t *testing.T) (root string) {
	t.Helper()
	root = t.TempDir()
	files := map[string]string{
		"go.mod":              "module synth\n\ngo 1.24\n",
		"synth.go":            "package synth\n\nimport \"synth/inner\"\n\n// Answer returns the inner constant.\nfunc Answer() int { return inner.N }\n",
		"inner/inner.go":      "package inner\n\n// N is the answer.\nconst N = 42\n",
		"testdata/ignored.go": "package broken_on_purpose\n\nfunc bad() { undefined() }\n",
		"empty/README":        "no Go files here\n",
	}
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func TestLoaderLoadsModulePackages(t *testing.T) {
	root := writeModule(t)
	l := NewLoader("synth", root)
	pkg, err := l.Load("synth")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Name() != "synth" {
		t.Fatalf("package name = %q", pkg.Types.Name())
	}
	// The root import pulled in synth/inner through ImportFrom; loading it
	// again must hit the memo, not re-check.
	inner1, err := l.Load("synth/inner")
	if err != nil {
		t.Fatal(err)
	}
	inner2, err := l.Load("synth/inner")
	if err != nil {
		t.Fatal(err)
	}
	if inner1 != inner2 {
		t.Fatal("Load is not memoised")
	}
}

func TestLoaderLoadAllSkipsTestdataAndEmptyDirs(t *testing.T) {
	root := writeModule(t)
	pkgs, err := NewLoader("synth", root).LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	if len(paths) != 2 || paths[0] != "synth" || paths[1] != "synth/inner" {
		t.Fatalf("LoadAll = %v, want [synth synth/inner]", paths)
	}
}

func TestLoaderRejectsUnknownPackage(t *testing.T) {
	root := writeModule(t)
	if _, err := NewLoader("synth", root).Load("synth/missing"); err == nil {
		t.Fatal("loading a nonexistent package succeeded")
	}
}

func TestModuleInfoErrorsOutsideModules(t *testing.T) {
	// A temp dir has no go.mod anywhere above it (t.TempDir lives under
	// the system temp root).
	if _, _, err := ModuleInfo(t.TempDir()); err == nil {
		t.Skip("a go.mod exists above the temp root on this machine")
	}
}
