package analysis

import (
	"go/ast"
	"go/types"
)

// simPackages names the packages whose code runs inside a simulation: here a
// run must replay byte-identically from its seed, so wall-clock reads, the
// global math/rand stream, map-iteration-ordered results and multi-way channel
// selects are all forbidden. Scoping is by package name (not import path) so
// the fixture corpus can exercise the analyzer with self-contained packages.
var simPackages = map[string]bool{
	"eventsim":   true,
	"experiment": true,
	"mobility":   true,
	"radio":      true,
	"mac":        true,
	"netserver":  true,
	"disruption": true,
	"telemetry":  true,
}

// clockPackages names the packages under clock confinement: code here is
// concurrent by design (multi-way selects and map-ordered bookkeeping are
// fine) but must reach wall time only through its injected Clock interface,
// or the fault-injection harness's fake clocks stop covering the real code
// paths. The one wallClock implementation behind the interface carries a
// lint:ignore directive — which these rules keep honest, because a stale
// directive is itself a finding.
var clockPackages = map[string]bool{
	"sweepfarm":   true,
	"faultinject": true,
}

// clockFuncs are the time-package calls that touch the wall clock or the
// runtime timer wheel — everything a Clock implementation must wrap.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true, "Tick": true,
}

// DetLint flags nondeterminism sources in simulation packages.
var DetLint = &Analyzer{
	Name: "detlint",
	Doc:  "forbid wall-clock, global math/rand, map-ordered results and multi-way selects in simulation packages; confine farm packages to their injected Clock",
	Run:  runDetLint,
}

func runDetLint(p *Pass) error {
	sim, clocked := simPackages[p.Pkg.Name()], clockPackages[p.Pkg.Name()]
	if !sim && !clocked {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				switch selectorPkgPath(p.TypesInfo, n) {
				case "time":
					switch {
					case sim && (n.Sel.Name == "Now" || n.Sel.Name == "Since" || n.Sel.Name == "Until"):
						p.Reportf(n.Pos(), "time.%s reads the wall clock; simulation time is the event queue's clock", n.Sel.Name)
					case clocked && clockFuncs[n.Sel.Name]:
						p.Reportf(n.Pos(), "time.%s bypasses the injected Clock; the fault harness cannot script it", n.Sel.Name)
					}
				case "math/rand", "math/rand/v2":
					p.Reportf(n.Pos(), "math/rand is not seed-reproducible across runs; use internal/rng")
				}
			case *ast.RangeStmt:
				if sim {
					checkMapRange(p, f, n)
				}
			case *ast.SelectStmt:
				if sim && commCases(n) > 1 {
					p.Reportf(n.Pos(), "select over multiple channels resolves in runtime-chosen order; simulation control flow must be single-channel")
				}
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags loops that iterate a map and append into a slice
// declared outside the loop: the slice then carries the runtime's random
// iteration order into simulation results. Reading a map by key, ranging to
// fold into an order-insensitive aggregate, or sorting the collected slice
// afterwards (the canonical sorted-keys idiom) is fine.
func checkMapRange(p *Pass, file *ast.File, loop *ast.RangeStmt) {
	t := p.TypesInfo.TypeOf(loop.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(loop.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltin(p.TypesInfo, call.Fun, "append") {
				continue
			}
			if i >= len(asg.Lhs) {
				continue
			}
			id, ok := asg.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := p.TypesInfo.ObjectOf(id)
			// Appending to a slice that outlives the loop bakes in map order;
			// a slice (re)declared inside the body does not escape it, and a
			// slice sorted after the loop sheds the order again.
			if obj != nil && obj.Pos() < loop.Pos() && !sortedAfter(p, file, loop, obj) {
				p.Reportf(asg.Pos(), "append inside range over map records the map's random iteration order in %q; sort it or iterate sorted keys", id.Name)
			}
		}
		return true
	})
}

// sortedAfter reports whether obj is passed to a sort or slices call after
// the loop ends — the collect-then-sort idiom that launders map order back
// into a deterministic sequence.
func sortedAfter(p *Pass, file *ast.File, loop *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(file, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= loop.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch selectorPkgPath(p.TypesInfo, sel) {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && p.TypesInfo.ObjectOf(id) == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}

// commCases counts a select statement's non-default communication clauses.
func commCases(sel *ast.SelectStmt) int {
	n := 0
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
			n++
		}
	}
	return n
}

// isBuiltin reports whether fun denotes the named builtin.
func isBuiltin(info *types.Info, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.ObjectOf(id).(*types.Builtin)
	return ok
}
