package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the quoted regular expressions of one "// want" comment.
var wantRe = regexp.MustCompile(`// want (.*)$`)

// patRe extracts the individual quoted patterns from a want comment's tail.
var patRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one unmatched want annotation.
type expectation struct {
	line int
	re   *regexp.Regexp
	raw  string
}

// loadExpectations parses the // want annotations of every fixture file.
func loadExpectations(t *testing.T, dir string) []*expectation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var exps []*expectation
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			for _, pm := range patRe.FindAllStringSubmatch(m[1], -1) {
				re, err := regexp.Compile(pm[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, pm[1], err)
				}
				exps = append(exps, &expectation{line: i + 1, re: re, raw: pm[1]})
			}
		}
	}
	if len(exps) == 0 {
		t.Fatalf("fixture %s has no want annotations", dir)
	}
	return exps
}

// runFixture loads testdata/src/<name>, runs the analyzers, and matches the
// diagnostics against the fixture's want annotations: every diagnostic must
// be wanted and every want must fire.
func runFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	exps := loadExpectations(t, dir)
	for _, d := range diags {
		matched := false
		for _, e := range exps {
			if e.re == nil || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.re = nil // consumed
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, e := range exps {
		if e.re != nil {
			t.Errorf("line %d: wanted %q, no diagnostic fired", e.line, e.raw)
		}
	}
}

func TestDetLintFixture(t *testing.T) {
	runFixture(t, "detfix", []*Analyzer{DetLint})
}

// TestDetLintClockFixture pins the clock-confinement scope: in a farm
// package, wall-clock and timer calls outside the injected Clock are
// findings, while multi-way selects and map-ordered bookkeeping — forbidden
// in simulation packages — produce none.
func TestDetLintClockFixture(t *testing.T) {
	runFixture(t, "clockfix", []*Analyzer{DetLint})
}

func TestHotPathLintFixture(t *testing.T) {
	runFixture(t, "hotfix", []*Analyzer{HotPathLint})
}

func TestUnitLintFixture(t *testing.T) {
	runFixture(t, "unitfix", []*Analyzer{UnitLint})
}

// TestDetLintScopedByPackage proves the determinism rules stay out of
// non-simulation packages: the same violations in a package named outside
// the simulation set produce no findings.
func TestDetLintScopedByPackage(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "scopedfix"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{DetLint})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("finding outside simulation scope: %s", d)
	}
}

// TestIgnoreDirectives pins the suppression semantics on the ignorefix
// fixture: same-line and line-above directives cancel, a reasonless
// directive is reported and cancels nothing, and a directive matching no
// finding is reported as stale.
func TestIgnoreDirectives(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("testdata", "src", "ignorefix"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{DetLint})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		line     int
		analyzer string
		msg      string
	}{
		{28, "mlorasslint", "missing a reason"},
		{29, "detlint", "time.Now reads the wall clock"},
		{34, "mlorasslint", "matches no finding"},
		{41, "mlorasslint", "matches no finding"},
		{42, "detlint", "time.Now reads the wall clock"},
	}
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d %s %s", d.Pos.Line, d.Analyzer, d.Message))
	}
	if len(diags) != len(want) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), len(want), strings.Join(got, "\n"))
	}
	for i, w := range want {
		d := diags[i]
		if d.Pos.Line != w.line || d.Analyzer != w.analyzer || !strings.Contains(d.Message, w.msg) {
			t.Errorf("diagnostic %d = %s, want line %d %s %q", i, got[i], w.line, w.analyzer, w.msg)
		}
	}
}

// TestParseIgnore pins the directive grammar.
func TestParseIgnore(t *testing.T) {
	tests := []struct {
		text      string
		ok        bool
		analyzers []string
		hasReason bool
	}{
		{"//lint:ignore detlint the reason", true, []string{"detlint"}, true},
		{"//lint:ignore detlint,unitlint shared reason", true, []string{"detlint", "unitlint"}, true},
		{"//lint:ignore detlint", true, []string{"detlint"}, false},
		{"// just a comment", false, nil, false},
		{"//lint:ignorenope x", false, nil, false},
	}
	for _, tt := range tests {
		d, ok := parseIgnore(tt.text)
		if ok != tt.ok {
			t.Errorf("parseIgnore(%q) ok = %v, want %v", tt.text, ok, tt.ok)
			continue
		}
		if !ok {
			continue
		}
		if d.hasReason != tt.hasReason {
			t.Errorf("parseIgnore(%q) hasReason = %v, want %v", tt.text, d.hasReason, tt.hasReason)
		}
		for _, a := range tt.analyzers {
			if !d.analyzers[a] {
				t.Errorf("parseIgnore(%q) misses analyzer %q", tt.text, a)
			}
		}
	}
}

// TestRepoIsLintClean runs the full suite over the whole module: the tree
// must stay clean, and every committed lint:ignore must still be load-
// bearing (a stale one is itself a finding). This is the test-suite twin of
// the CI lint job.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	module, root, err := ModuleInfo(".")
	if err != nil {
		t.Fatal(err)
	}
	loader := NewLoader(module, root)
	pkgs, err := loader.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("LoadAll found only %d packages; the walk is broken", len(pkgs))
	}
	all := []*Analyzer{DetLint, HotPathLint, UnitLint}
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, all)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestLoadAllSkipsFixtures makes sure the module walk never descends into
// testdata: the seeded-violation corpus must not contaminate repo-wide runs.
func TestLoadAllSkipsFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	module, root, err := ModuleInfo(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(module, root).LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("LoadAll descended into %s", p.Dir)
		}
	}
}

// TestModuleInfo resolves this repo's module from a subdirectory.
func TestModuleInfo(t *testing.T) {
	module, root, err := ModuleInfo(".")
	if err != nil {
		t.Fatal(err)
	}
	if module != "mlorass" {
		t.Fatalf("module = %q, want mlorass", module)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("root %s has no go.mod: %v", root, err)
	}
}
