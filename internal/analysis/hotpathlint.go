package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// HotPathMarker is the directive comment that puts a function under
// hotpathlint's zero-allocation contract. It rides in the function's doc
// comment:
//
//	//mlorass:hotpath
//	func (s *Sim) tick(now time.Duration) { ... }
const HotPathMarker = "//mlorass:hotpath"

// HotPathLint enforces the steady-state zero-allocation contract on functions
// carrying the //mlorass:hotpath directive: no make/new, no map literals, no
// escaping (address-taken) composite literals, no appends that grow anything
// but caller-owned or receiver-owned storage, no closures, no fmt or
// errors.New calls, no conversions to interface types. Amortised or cold-path
// allocations inside a hot function are excused case by case with a
// lint:ignore directive carrying the reason.
var HotPathLint = &Analyzer{
	Name: "hotpathlint",
	Doc:  "forbid allocation constructs in functions annotated //mlorass:hotpath",
	Run:  runHotPathLint,
}

func runHotPathLint(p *Pass) error {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotPath(fn) {
				continue
			}
			checkHotFunc(p, fn)
		}
	}
	return nil
}

// isHotPath reports whether the function's doc comment carries the marker.
func isHotPath(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == HotPathMarker {
			return true
		}
	}
	return false
}

// checkHotFunc walks one annotated function. Allocation-free idioms the hot
// paths rely on stay legal: struct values (no address taken), appends rooted
// at parameters or receiver fields (the caller or the object owns the
// backing array), and locals re-sliced from those roots (kept := s.heap[:0]).
func checkHotFunc(p *Pass, fn *ast.FuncDecl) {
	roots := map[types.Object]bool{}
	if fn.Recv != nil {
		for _, f := range fn.Recv.List {
			for _, n := range f.Names {
				roots[p.TypesInfo.ObjectOf(n)] = true
			}
		}
	}
	for _, f := range fn.Type.Params.List {
		for _, n := range f.Names {
			roots[p.TypesInfo.ObjectOf(n)] = true
		}
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// Track locals that alias caller/receiver storage before the
			// RHS is inspected, so `kept = append(kept, x)` after
			// `kept := s.heap[:0]` is recognised as rooted.
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if rootedExpr(p.TypesInfo, roots, n.Rhs[i]) {
					roots[p.TypesInfo.ObjectOf(id)] = true
				}
			}
		case *ast.CallExpr:
			checkHotCall(p, roots, n)
		case *ast.CompositeLit:
			if _, ok := p.TypesInfo.TypeOf(n).Underlying().(*types.Map); ok {
				p.Reportf(n.Pos(), "map literal allocates; hot paths use preallocated tables")
			}
		case *ast.UnaryExpr:
			if cl, ok := n.X.(*ast.CompositeLit); ok && n.Op.String() == "&" {
				p.Reportf(cl.Pos(), "&composite literal escapes to the heap; reuse pooled or preallocated objects")
			}
		case *ast.FuncLit:
			p.Reportf(n.Pos(), "closure allocates at call time; hoist it to a method or package function")
			return false // the closure body is not the hot path's own code
		}
		return true
	}
	ast.Inspect(fn.Body, walk)
}

// checkHotCall flags allocating calls: make, new, append off non-owned
// storage, fmt helpers and errors.New.
func checkHotCall(p *Pass, roots map[types.Object]bool, call *ast.CallExpr) {
	switch {
	case isBuiltin(p.TypesInfo, call.Fun, "make"):
		p.Reportf(call.Pos(), "make allocates; hot paths reuse buffers sized at setup")
	case isBuiltin(p.TypesInfo, call.Fun, "new"):
		p.Reportf(call.Pos(), "new allocates; hot paths reuse pooled objects")
	case isBuiltin(p.TypesInfo, call.Fun, "append"):
		if len(call.Args) > 0 && !rootedExpr(p.TypesInfo, roots, call.Args[0]) {
			p.Reportf(call.Pos(), "append may grow storage the caller does not own; append only to parameters or receiver fields")
		}
	default:
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			switch pkg := selectorPkgPath(p.TypesInfo, sel); {
			case pkg == "fmt":
				p.Reportf(call.Pos(), "fmt.%s boxes its operands and allocates; format off the hot path", sel.Sel.Name)
			case pkg == "errors" && sel.Sel.Name == "New":
				p.Reportf(call.Pos(), "errors.New allocates; predeclare sentinel errors")
			}
		}
		checkInterfaceConv(p, call)
	}
}

// checkInterfaceConv flags explicit conversions of concrete values to
// interface types — the boxing allocation hiding in plain sight. Implicit
// boxing through fmt's variadics is already covered by the fmt rule.
func checkInterfaceConv(p *Pass, call *ast.CallExpr) {
	tv, ok := p.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	if !types.IsInterface(tv.Type) {
		return
	}
	argT := p.TypesInfo.TypeOf(call.Args[0])
	if argT == nil || types.IsInterface(argT) {
		return
	}
	p.Reportf(call.Pos(), "conversion to interface type %s boxes the value; keep hot-path data concrete", tv.Type)
}

// rootedExpr reports whether expr ultimately derives from a root object
// (parameter, receiver, or a local already proven rooted): selections,
// indexing and re-slicing preserve rootedness, anything else does not.
func rootedExpr(info *types.Info, roots map[types.Object]bool, expr ast.Expr) bool {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return roots[info.ObjectOf(e)]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return false
		}
	}
}
