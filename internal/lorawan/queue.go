package lorawan

import "fmt"

// Queue is the device's FIFO data buffer (Sec. VII-A4). Messages wait here
// until acknowledged by a gateway or handed over to a neighbour. The zero
// value is not usable; construct with NewQueue.
type Queue struct {
	items   []Message
	head    int // index of the front element within items
	max     int
	dropped uint64
}

// NewQueue builds a queue holding at most max messages. max <= 0 means
// unbounded.
func NewQueue(max int) *Queue {
	return &Queue{max: max}
}

// Len returns the number of queued messages.
func (q *Queue) Len() int { return len(q.items) - q.head }

// Max returns the configured capacity (0 = unbounded).
func (q *Queue) Max() int { return q.max }

// Dropped returns how many messages were discarded because the queue was
// full — queue losses show up as throughput loss, as in the paper.
func (q *Queue) Dropped() uint64 { return q.dropped }

// Push appends a message to the tail. It reports false (and counts a drop)
// when the queue is full.
func (q *Queue) Push(m Message) bool {
	if q.max > 0 && q.Len() >= q.max {
		q.dropped++
		return false
	}
	q.items = append(q.items, m)
	return true
}

// PushFront returns messages to the head of the queue, preserving their
// relative order — used to requeue an unacknowledged bundle so FIFO order
// survives retransmission. Overflow drops from the back of the restored
// block (newest first), counting drops. The queue's backing array is reused
// (growing only when capacity runs out), so steady-state requeues allocate
// nothing.
func (q *Queue) PushFront(ms []Message) {
	if len(ms) == 0 {
		return
	}
	keep := ms
	if q.max > 0 {
		room := q.max - q.Len()
		if room < 0 {
			room = 0
		}
		if len(keep) > room {
			q.dropped += uint64(len(keep) - room)
			keep = keep[:room]
		}
	}
	k := len(keep)
	if k == 0 {
		return
	}
	if q.head >= k {
		// Consumed front room absorbs the block in place.
		copy(q.items[q.head-k:q.head], keep)
		q.head -= k
		return
	}
	n := q.Len()
	if cap(q.items) < n+k {
		grown := make([]Message, n+k, max(2*cap(q.items), n+k))
		copy(grown[k:], q.items[q.head:])
		copy(grown[:k], keep)
		q.items = grown
		q.head = 0
		return
	}
	q.items = q.items[:n+k]
	copy(q.items[k:], q.items[q.head:q.head+n]) // overlapping shift right
	copy(q.items[:k], keep)
	q.head = 0
}

// PopN removes and returns up to n messages from the front. The returned
// slice is freshly allocated; hot paths use PopNInto.
func (q *Queue) PopN(n int) []Message {
	if n <= 0 || q.Len() == 0 {
		return nil
	}
	if n > q.Len() {
		n = q.Len()
	}
	return q.PopNInto(n, make([]Message, 0, n))
}

// PopNInto removes up to n messages from the front, appending them to dst
// (normally a caller-owned scratch slice sliced to length zero) and
// returning it. It allocates only if dst lacks capacity.
func (q *Queue) PopNInto(n int, dst []Message) []Message {
	if n <= 0 || q.Len() == 0 {
		return dst
	}
	if n > q.Len() {
		n = q.Len()
	}
	dst = append(dst, q.items[q.head:q.head+n]...)
	q.head += n
	q.compact()
	return dst
}

// PopEligible removes and returns up to n messages from the front for which
// eligible reports true, preserving the relative order of the messages left
// behind. It is used by the forwarding schemes to skip messages that must
// not travel to a particular neighbour (the no-send-back rule) while still
// draining the rest of the FIFO.
func (q *Queue) PopEligible(n int, eligible func(Message) bool) []Message {
	if n <= 0 || q.Len() == 0 {
		return nil
	}
	var out []Message
	kept := q.items[q.head:q.head] // reuse storage, preserving order
	for i := q.head; i < len(q.items); i++ {
		m := q.items[i]
		if len(out) < n && eligible(m) {
			out = append(out, m)
			continue
		}
		kept = append(kept, m)
	}
	newLen := q.head + len(kept)
	for i := newLen; i < len(q.items); i++ {
		q.items[i] = Message{}
	}
	q.items = q.items[:newLen]
	q.compact()
	return out
}

// PopNotViaInto is PopEligible specialised to the no-send-back rule —
// eligible(m) = m.Via != via — appending the popped messages to dst and
// returning it. The allocation-free form the transmit hot path uses: no
// predicate closure, and dst is a caller-owned scratch slice.
func (q *Queue) PopNotViaInto(n, via int, dst []Message) []Message {
	if n <= 0 || q.Len() == 0 {
		return dst
	}
	taken := 0
	kept := q.items[q.head:q.head] // reuse storage, preserving order
	for i := q.head; i < len(q.items); i++ {
		m := q.items[i]
		if taken < n && m.Via != via {
			dst = append(dst, m)
			taken++
			continue
		}
		kept = append(kept, m)
	}
	newLen := q.head + len(kept)
	for i := newLen; i < len(q.items); i++ {
		q.items[i] = Message{}
	}
	q.items = q.items[:newLen]
	q.compact()
	return dst
}

// PeekN returns up to n messages from the front without removing them. The
// returned slice must not be modified.
func (q *Queue) PeekN(n int) []Message {
	if n <= 0 || q.Len() == 0 {
		return nil
	}
	if n > q.Len() {
		n = q.Len()
	}
	return q.items[q.head : q.head+n]
}

// compact reclaims the consumed prefix once it dominates the backing array.
func (q *Queue) compact() {
	if q.head == 0 {
		return
	}
	if q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		// Zero the tail so popped messages can be collected.
		for i := n; i < len(q.items); i++ {
			q.items[i] = Message{}
		}
		q.items = q.items[:n]
		q.head = 0
	}
}

// String summarises the queue for diagnostics.
func (q *Queue) String() string {
	return fmt.Sprintf("queue{len=%d max=%d dropped=%d}", q.Len(), q.max, q.dropped)
}
