package lorawan

import (
	"testing"
	"testing/quick"
	"time"
)

func TestFramePayloadBytes(t *testing.T) {
	f := Frame{Messages: make([]Message, 12)}
	want := FrameOverheadBytes + 12*MessageBytes // 21 + 240 = 261… check ≤255?
	if got := f.PayloadBytes(); got != want {
		t.Fatalf("PayloadBytes = %d, want %d", got, want)
	}
	empty := Frame{}
	if got := empty.PayloadBytes(); got != FrameOverheadBytes {
		t.Fatalf("empty frame payload = %d", got)
	}
}

func TestFrameValidate(t *testing.T) {
	ok := Frame{Messages: make([]Message, MaxBundle)}
	if err := ok.Validate(); err != nil {
		t.Fatalf("full bundle rejected: %v", err)
	}
	bad := Frame{Messages: make([]Message, MaxBundle+1)}
	if err := bad.Validate(); err == nil {
		t.Fatal("oversized bundle accepted")
	}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(0)
	for i := uint64(1); i <= 5; i++ {
		if !q.Push(Message{ID: i}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Len() != 5 {
		t.Fatalf("Len = %d", q.Len())
	}
	got := q.PopN(3)
	if len(got) != 3 || got[0].ID != 1 || got[2].ID != 3 {
		t.Fatalf("PopN(3) = %v", got)
	}
	got = q.PopN(10)
	if len(got) != 2 || got[0].ID != 4 || got[1].ID != 5 {
		t.Fatalf("drain = %v", got)
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

func TestQueuePopPeekEmpty(t *testing.T) {
	q := NewQueue(0)
	if got := q.PopN(3); got != nil {
		t.Fatalf("PopN on empty = %v", got)
	}
	if got := q.PeekN(3); got != nil {
		t.Fatalf("PeekN on empty = %v", got)
	}
	if got := q.PopN(0); got != nil {
		t.Fatalf("PopN(0) = %v", got)
	}
}

func TestQueuePeekDoesNotConsume(t *testing.T) {
	q := NewQueue(0)
	q.Push(Message{ID: 1})
	q.Push(Message{ID: 2})
	p := q.PeekN(2)
	if len(p) != 2 || p[0].ID != 1 {
		t.Fatalf("PeekN = %v", p)
	}
	if q.Len() != 2 {
		t.Fatalf("Peek consumed: Len = %d", q.Len())
	}
}

func TestQueueCapacityAndDrops(t *testing.T) {
	q := NewQueue(2)
	if !q.Push(Message{ID: 1}) || !q.Push(Message{ID: 2}) {
		t.Fatal("pushes within capacity failed")
	}
	if q.Push(Message{ID: 3}) {
		t.Fatal("push over capacity succeeded")
	}
	if q.Dropped() != 1 {
		t.Fatalf("Dropped = %d", q.Dropped())
	}
}

func TestQueuePushFrontPreservesOrder(t *testing.T) {
	q := NewQueue(0)
	q.Push(Message{ID: 10})
	popped := []Message{{ID: 1}, {ID: 2}}
	q.PushFront(popped)
	got := q.PopN(3)
	if len(got) != 3 || got[0].ID != 1 || got[1].ID != 2 || got[2].ID != 10 {
		t.Fatalf("order after PushFront = %v", got)
	}
}

func TestQueuePushFrontOverflow(t *testing.T) {
	q := NewQueue(2)
	q.Push(Message{ID: 9})
	q.PushFront([]Message{{ID: 1}, {ID: 2}, {ID: 3}})
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	if q.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", q.Dropped())
	}
	got := q.PopN(2)
	if got[0].ID != 1 {
		t.Fatalf("front after overflow = %v", got)
	}
}

func TestQueuePushFrontEmpty(t *testing.T) {
	q := NewQueue(0)
	q.Push(Message{ID: 1})
	q.PushFront(nil)
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestQueueCompaction(t *testing.T) {
	q := NewQueue(0)
	for i := 0; i < 1000; i++ {
		q.Push(Message{ID: uint64(i)})
		q.PopN(1)
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
	// The backing array must not retain all 1000 messages.
	if cap(q.items) > 128 {
		t.Fatalf("backing array grew to %d despite compaction", cap(q.items))
	}
}

func TestDeviceClassStringsAndValidity(t *testing.T) {
	for c := ClassA; c <= ClassQueueA; c++ {
		if !c.Valid() {
			t.Errorf("%v invalid", c)
		}
		if c.String() == "" {
			t.Errorf("class %d has empty name", int(c))
		}
	}
	if DeviceClass(0).Valid() || DeviceClass(99).Valid() {
		t.Error("invalid class reported valid")
	}
}

func TestCanOverhear(t *testing.T) {
	if ClassA.CanOverhear() || ClassB.CanOverhear() || ClassC.CanOverhear() {
		t.Fatal("legacy classes claim overhearing")
	}
	if !ClassModifiedC.CanOverhear() || !ClassQueueA.CanOverhear() {
		t.Fatal("paper classes cannot overhear")
	}
}

func TestQueueAListenFraction(t *testing.T) {
	tests := []struct {
		name       string
		phi, phiMx float64
		qlen, qmax int
		want       float64
	}{
		{"empty queue", 1, 2, 0, 100, 0},
		{"full queue high phi", 2, 2, 100, 100, 1},
		{"half queue", 2, 2, 50, 100, 0.5},
		{"low phi lengthens window", 0.5, 2, 25, 100, 1},
		{"clamps to 1", 0.1, 2, 100, 100, 1},
		{"no qmax fallback", 1, 2, 5, 0, 1},
		{"no phi fallback", 0, 2, 5, 100, 1},
		{"negative qlen", 1, 2, -5, 100, 0},
	}
	for _, tt := range tests {
		got := QueueAListenFraction(tt.phi, tt.phiMx, tt.qlen, tt.qmax)
		if got != tt.want {
			t.Errorf("%s: γ = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestDutyGovernor(t *testing.T) {
	g := NewDutyGovernor(0.01)
	if !g.CanSend(0) {
		t.Fatal("fresh governor blocks")
	}
	g.Record(0, 100*time.Millisecond)
	// 100 ms at 1 % occupies 10 s total.
	if g.CanSend(9 * time.Second) {
		t.Fatal("governor allowed send inside silent period")
	}
	if !g.CanSend(10 * time.Second) {
		t.Fatal("governor still blocking after silent period")
	}
	if g.NextFree() != 10*time.Second {
		t.Fatalf("NextFree = %v", g.NextFree())
	}
}

func TestDutyGovernorDisabled(t *testing.T) {
	g := NewDutyGovernor(0)
	g.Record(0, time.Second)
	if !g.CanSend(time.Second) {
		t.Fatal("disabled governor enforced a silent period beyond airtime")
	}
}

func TestRetryPolicy(t *testing.T) {
	p := DefaultRetryPolicy()
	if p.Max != 8 {
		t.Fatalf("default Max = %d", p.Max)
	}
	if p.Exhausted(7) {
		t.Fatal("exhausted at 7 of 8")
	}
	if !p.Exhausted(8) {
		t.Fatal("not exhausted at 8")
	}
	unlimited := RetryPolicy{}
	if unlimited.Exhausted(1000) {
		t.Fatal("unlimited policy exhausted")
	}
}

func TestEnergyMeter(t *testing.T) {
	var m EnergyMeter
	m.RecordTx(100 * time.Millisecond)
	m.RecordTx(50 * time.Millisecond)
	m.RecordRx(2 * time.Second)
	if m.TxFrames != 2 {
		t.Fatalf("TxFrames = %d", m.TxFrames)
	}
	if m.RadioOnTime() != 2150*time.Millisecond {
		t.Fatalf("RadioOnTime = %v", m.RadioOnTime())
	}
}

// Property: the queue never exceeds capacity and never loses FIFO order
// under arbitrary push/pop interleavings.
func TestQuickQueueInvariants(t *testing.T) {
	f := func(ops []uint8) bool {
		q := NewQueue(16)
		var next uint64
		lastPopped := uint64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0, 1: // push twice as often as pop
				next++
				q.Push(Message{ID: next})
			case 2:
				for _, m := range q.PopN(int(op%5) + 1) {
					if m.ID <= lastPopped {
						return false // FIFO violated
					}
					lastPopped = m.ID
				}
			}
			if q.Len() > 16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: γ stays in [0, 1] for arbitrary inputs.
func TestQuickListenFractionBounds(t *testing.T) {
	f := func(phi, phiMax float64, qlen, qmax int16) bool {
		g := QueueAListenFraction(phi, phiMax, int(qlen), int(qmax))
		return g >= 0 && g <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkQueuePushPop(b *testing.B) {
	q := NewQueue(0)
	for i := 0; i < b.N; i++ {
		q.Push(Message{ID: uint64(i)})
		if i%12 == 11 {
			q.PopN(12)
		}
	}
}

func TestPopEligibleFiltersAndPreservesOrder(t *testing.T) {
	q := NewQueue(0)
	for i := 1; i <= 6; i++ {
		via := -1
		if i%2 == 0 {
			via = 7 // received from device 7
		}
		q.Push(Message{ID: uint64(i), Via: via})
	}
	// Pop up to 10 messages not received from device 7.
	got := q.PopEligible(10, func(m Message) bool { return m.Via != 7 })
	if len(got) != 3 || got[0].ID != 1 || got[1].ID != 3 || got[2].ID != 5 {
		t.Fatalf("PopEligible = %v", got)
	}
	// The ineligible messages remain in order.
	rest := q.PopN(10)
	if len(rest) != 3 || rest[0].ID != 2 || rest[1].ID != 4 || rest[2].ID != 6 {
		t.Fatalf("remainder = %v", rest)
	}
}

func TestPopEligibleRespectsLimit(t *testing.T) {
	q := NewQueue(0)
	for i := 1; i <= 5; i++ {
		q.Push(Message{ID: uint64(i)})
	}
	got := q.PopEligible(2, func(Message) bool { return true })
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("PopEligible = %v", got)
	}
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestPopEligibleEmptyAndZero(t *testing.T) {
	q := NewQueue(0)
	if got := q.PopEligible(3, func(Message) bool { return true }); got != nil {
		t.Fatalf("PopEligible on empty = %v", got)
	}
	q.Push(Message{ID: 1})
	if got := q.PopEligible(0, func(Message) bool { return true }); got != nil {
		t.Fatalf("PopEligible(0) = %v", got)
	}
}

func TestPopEligibleNoneMatch(t *testing.T) {
	q := NewQueue(0)
	q.Push(Message{ID: 1, Via: 3})
	q.Push(Message{ID: 2, Via: 3})
	if got := q.PopEligible(5, func(m Message) bool { return m.Via != 3 }); len(got) != 0 {
		t.Fatalf("PopEligible = %v", got)
	}
	if q.Len() != 2 {
		t.Fatalf("queue lost messages: Len = %d", q.Len())
	}
}
