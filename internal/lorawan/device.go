package lorawan

import (
	"fmt"
	"math"
	"time"
)

// DeviceClass enumerates the LoRaWAN device classes, including the two new
// classes the paper proposes (Sec. VI).
type DeviceClass int

// Device classes. All classes remain Class-A compatible: Class A's two
// post-uplink receive windows always exist.
const (
	// ClassA opens two receive windows after each uplink (baseline).
	ClassA DeviceClass = iota + 1
	// ClassB adds periodic, beacon-scheduled receive slots.
	ClassB
	// ClassC keeps the downlink receive window open whenever the device
	// is not transmitting.
	ClassC
	// ClassModifiedC is the paper's first proposal: like Class C the
	// radio always listens, but on the *uplink data channel* (Rx1), so
	// the device overhears neighbouring devices' transmissions instead
	// of gateway downlinks.
	ClassModifiedC
	// ClassQueueA is the paper's second proposal: a Class-A device whose
	// receive-window length adapts to its queue backlog (Eq. 11), saving
	// energy when the queue is short.
	ClassQueueA
)

// String names the class.
func (c DeviceClass) String() string {
	switch c {
	case ClassA:
		return "Class-A"
	case ClassB:
		return "Class-B"
	case ClassC:
		return "Class-C"
	case ClassModifiedC:
		return "Modified-Class-C"
	case ClassQueueA:
		return "Queue-based-Class-A"
	default:
		return fmt.Sprintf("DeviceClass(%d)", int(c))
	}
}

// Valid reports whether c is a known class.
func (c DeviceClass) Valid() bool { return c >= ClassA && c <= ClassQueueA }

// CanOverhear reports whether a device of this class can receive
// device-to-device broadcasts outside its Class-A windows. Modified Class-C
// always can; Queue-based Class-A can during its adaptive windows (the
// caller decides using QueueAListenFraction).
func (c DeviceClass) CanOverhear() bool {
	return c == ClassModifiedC || c == ClassQueueA
}

// QueueAListenFraction computes γx(t) from Eq. (11): the fraction of the
// inter-uplink interval a Queue-based Class-A device keeps its receive
// window open,
//
//	γx(t) = φmax · Qx(t) / (φx(t) · Qmax),  clamped to [0, 1].
//
// Longer queues and worse gateway quality (higher RCA-ETX ⇒ lower φ) demand
// longer listening so forwarding opportunities are not missed. qmax <= 0 or
// phi <= 0 yield a fully-open window (conservative fallback).
func QueueAListenFraction(phi, phiMax float64, qlen, qmax int) float64 {
	if qmax <= 0 || phi <= 0 || phiMax <= 0 {
		return 1
	}
	if qlen < 0 {
		qlen = 0
	}
	// Divide before multiplying so extreme φ values cannot overflow to
	// Inf/Inf = NaN.
	g := (phiMax / phi) * (float64(qlen) / float64(qmax))
	if math.IsNaN(g) {
		return 1
	}
	if g > 1 {
		return 1
	}
	if g < 0 {
		return 0
	}
	return g
}

// DutyGovernor enforces the EU868 transmission duty cycle (Sec. III-B,
// VII-A5: 1 % on the shared data channel; after a transmission of airtime T
// the radio stays silent for T/duty − T).
type DutyGovernor struct {
	duty     float64
	nextFree time.Duration
}

// NewDutyGovernor builds a governor for the given duty fraction, e.g. 0.01.
// Fractions outside (0, 1) disable the constraint.
func NewDutyGovernor(duty float64) *DutyGovernor {
	return &DutyGovernor{duty: duty}
}

// CanSend reports whether a transmission may start at now.
func (g *DutyGovernor) CanSend(now time.Duration) bool { return now >= g.nextFree }

// NextFree returns the earliest instant a transmission may start.
func (g *DutyGovernor) NextFree() time.Duration { return g.nextFree }

// Record registers a transmission starting at now with the given airtime and
// advances the silent period.
func (g *DutyGovernor) Record(now, airtime time.Duration) {
	if g.duty <= 0 || g.duty >= 1 {
		g.nextFree = now + airtime
		return
	}
	total := time.Duration(float64(airtime) / g.duty)
	g.nextFree = now + total
}

// RetryPolicy is the paper's retransmission rule (Sec. VII-A5): every frame
// is attempted up to Max times, and the counter resets when a new frame is
// generated.
type RetryPolicy struct {
	// Max is the maximum number of attempts per frame (the paper uses 8).
	Max int
}

// DefaultRetryPolicy returns the paper's 8-attempt policy.
func DefaultRetryPolicy() RetryPolicy { return RetryPolicy{Max: 8} }

// Exhausted reports whether attempt (1-based count of attempts already made)
// has reached the limit.
func (p RetryPolicy) Exhausted(attempts int) bool {
	return p.Max > 0 && attempts >= p.Max
}

// EnergyMeter accumulates the coarse energy proxies the paper reports:
// frames transmitted (Fig. 13 counts messages sent as the energy overhead)
// and radio-on durations for the Queue-based Class-A comparison.
type EnergyMeter struct {
	// TxFrames counts transmitted frames.
	TxFrames uint64
	// TxTime is cumulative transmit airtime.
	TxTime time.Duration
	// RxTime is cumulative receive/listen time.
	RxTime time.Duration
}

// RecordTx adds one transmission.
func (m *EnergyMeter) RecordTx(airtime time.Duration) {
	m.TxFrames++
	m.TxTime += airtime
}

// RecordRx adds listening time.
func (m *EnergyMeter) RecordRx(d time.Duration) { m.RxTime += d }

// RadioOnTime returns total radio-active time (transmit + listen): the
// quantity the Queue-based Class-A ablation compares.
func (m *EnergyMeter) RadioOnTime() time.Duration { return m.TxTime + m.RxTime }
