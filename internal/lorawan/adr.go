package lorawan

import (
	"fmt"
	"time"

	"mlorass/internal/radio"
)

// DataRate is a LoRaWAN EU868 uplink data-rate index. Higher indices are
// faster: DR0 is SF12/125 kHz (slowest, longest range) through DR5, SF7/125
// kHz (fastest). The FSK rate DR6+ and the 250 kHz DR are outside the
// paper's single-channel 125 kHz setting and are not modelled.
type DataRate int

// EU868 LoRa data rates at 125 kHz bandwidth.
const (
	DR0 DataRate = iota // SF12
	DR1                 // SF11
	DR2                 // SF10
	DR3                 // SF9
	DR4                 // SF8
	DR5                 // SF7
	// MaxDataRate is the fastest LoRa data rate ADR may assign.
	MaxDataRate = DR5
	// NumDataRates sizes per-DR lookup tables.
	NumDataRates = int(MaxDataRate) + 1
)

// Valid reports whether dr is in [DR0, DR5].
func (dr DataRate) Valid() bool { return dr >= DR0 && dr <= MaxDataRate }

// String renders e.g. "DR5(SF7)".
func (dr DataRate) String() string {
	if !dr.Valid() {
		return fmt.Sprintf("DataRate(%d)", int(dr))
	}
	return fmt.Sprintf("DR%d(SF%d)", int(dr), int(dr.SF()))
}

// SF returns the spreading factor of this data rate: DR0 → SF12 ... DR5 →
// SF7.
func (dr DataRate) SF() radio.SpreadingFactor {
	return radio.SF12 - radio.SpreadingFactor(dr)
}

// DataRateForSF maps a spreading factor to its EU868 125 kHz data rate:
// SF12 → DR0 ... SF7 → DR5. Invalid spreading factors report ok=false.
func DataRateForSF(sf radio.SpreadingFactor) (DataRate, bool) {
	if !sf.Valid() {
		return 0, false
	}
	return DataRate(radio.SF12 - sf), true
}

// MaxTxPowerIndex is the highest TXPower index of the modelled EU868 ladder.
// Index 0 is the device's configured operating power (the paper's 14 dBm);
// each step drops 2 dB. (The regional-parameters ladder is anchored at
// MaxEIRP; the reproduction anchors at the configured power so index 0
// always reproduces the fixed-power baseline exactly.)
const MaxTxPowerIndex = 5

// TxPowerStepDB is the power reduction per TXPower index step.
const TxPowerStepDB radio.DB = 2

// TxPowerDBm returns the transmit power of a TXPower index on a ladder
// anchored at the given index-0 power (the device's configured operating
// power), clamping out-of-range indices into the ladder.
func TxPowerDBm(anchor radio.DBm, index int) radio.DBm {
	if index < 0 {
		index = 0
	}
	if index > MaxTxPowerIndex {
		index = MaxTxPowerIndex
	}
	return anchor.Minus(TxPowerStepDB * radio.DB(index))
}

// LinkADRReq is the network server's adaptive-data-rate MAC command: it asks
// a device to switch to the given data rate and TXPower index, transmitting
// each confirmed uplink up to NbTrans times. Channel-mask fields are omitted
// — the paper's network is single-channel.
type LinkADRReq struct {
	// DataRate is the requested uplink data rate.
	DataRate DataRate
	// TxPowerIndex is the requested TXPower ladder index (see TxPowerDBm).
	TxPowerIndex int
	// NbTrans is the requested transmission count per uplink (0 keeps the
	// device's current setting).
	NbTrans int
}

// Validate reports malformed commands.
func (r LinkADRReq) Validate() error {
	if !r.DataRate.Valid() {
		return fmt.Errorf("lorawan: LinkADRReq data rate %d out of [DR0, DR%d]", int(r.DataRate), int(MaxDataRate))
	}
	if r.TxPowerIndex < 0 || r.TxPowerIndex > MaxTxPowerIndex {
		return fmt.Errorf("lorawan: LinkADRReq TXPower index %d out of [0, %d]", r.TxPowerIndex, MaxTxPowerIndex)
	}
	if r.NbTrans < 0 {
		return fmt.Errorf("lorawan: LinkADRReq NbTrans %d negative", r.NbTrans)
	}
	return nil
}

// LinkADRAns is the device's acknowledgement of a LinkADRReq. A device
// rejects a component it cannot satisfy and then applies none of the command
// (LoRaWAN 1.0.x semantics).
type LinkADRAns struct {
	// DataRateACK reports the requested data rate was acceptable.
	DataRateACK bool
	// PowerACK reports the requested TXPower index was acceptable.
	PowerACK bool
}

// Accepted reports whether the device applied the command.
func (a LinkADRAns) Accepted() bool { return a.DataRateACK && a.PowerACK }

// Apply answers a LinkADRReq for a device currently at the given settings:
// an in-range command is accepted (and the caller installs req's settings),
// an out-of-range one is rejected wholesale.
func (r LinkADRReq) Apply() LinkADRAns {
	return LinkADRAns{
		DataRateACK: r.DataRate.Valid(),
		PowerACK:    r.TxPowerIndex >= 0 && r.TxPowerIndex <= MaxTxPowerIndex,
	}
}

// DownlinkOverheadBytes is the PHY payload of an empty downlink frame: MHDR
// (1), FHDR (7), MIC (4). Acks are carried in the FHDR's ACK bit, so a plain
// ack downlink is exactly this size.
const DownlinkOverheadBytes = 12

// LinkADRReqBytes is the FOpts cost of one LinkADRReq: CID (1) + DataRate/
// TXPower (1) + ChMask (2) + Redundancy (1).
const LinkADRReqBytes = 5

// DownlinkBytes returns the PHY payload size of an ack/command downlink.
func DownlinkBytes(withADR bool) int {
	if withADR {
		return DownlinkOverheadBytes + LinkADRReqBytes
	}
	return DownlinkOverheadBytes
}

// Receive-window timing (LoRaWAN 1.0.x EU868 defaults): RX1 opens
// RECEIVE_DELAY1 after the uplink ends on the uplink channel and data rate;
// RX2 opens one second later on the fixed RX2 channel parameters.
const (
	// DefaultRX1Delay is RECEIVE_DELAY1.
	DefaultRX1Delay = 1 * time.Second
	// DefaultRX2Delay is RECEIVE_DELAY2 = RECEIVE_DELAY1 + 1 s.
	DefaultRX2Delay = 2 * time.Second
)

// DefaultRX2DataRate is the EU868 RX2 data rate (DR0, SF12): the slow,
// long-range fallback window.
const DefaultRX2DataRate = DR0
