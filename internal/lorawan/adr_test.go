package lorawan

import (
	"testing"

	"mlorass/internal/radio"
)

func TestDataRateValidityAndNaming(t *testing.T) {
	if !DR0.Valid() || !DR5.Valid() || DataRate(-1).Valid() || DataRate(6).Valid() {
		t.Fatal("DataRate validity range wrong")
	}
	if got := DR5.String(); got != "DR5(SF7)" {
		t.Fatalf("DR5 renders %q", got)
	}
	if got := DataRate(9).String(); got != "DataRate(9)" {
		t.Fatalf("invalid rate renders %q", got)
	}
	if NumDataRates != 6 {
		t.Fatalf("NumDataRates = %d", NumDataRates)
	}
}

func TestTxPowerLadder(t *testing.T) {
	// The ladder is anchored at the configured operating power: index 0
	// reproduces the fixed-power baseline for any anchor, not just the
	// paper's 14 dBm.
	for _, anchor := range []radio.DBm{14, 10, 0} {
		if got := TxPowerDBm(anchor, 0); got != anchor {
			t.Fatalf("index 0 = %v dBm, want the anchor %v", got, anchor)
		}
		for i := 1; i <= MaxTxPowerIndex; i++ {
			if got, want := TxPowerDBm(anchor, i), TxPowerDBm(anchor, i-1).Minus(TxPowerStepDB); got != want {
				t.Fatalf("anchor %v index %d = %v dBm, want %v", anchor, i, got, want)
			}
		}
		// Out-of-range indices clamp instead of extrapolating.
		if TxPowerDBm(anchor, -3) != TxPowerDBm(anchor, 0) || TxPowerDBm(anchor, 99) != TxPowerDBm(anchor, MaxTxPowerIndex) {
			t.Fatal("ladder does not clamp")
		}
	}
}

func TestLinkADRReqValidateAndApply(t *testing.T) {
	good := LinkADRReq{DataRate: DR3, TxPowerIndex: 2, NbTrans: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if ans := good.Apply(); !ans.Accepted() {
		t.Fatalf("valid command rejected: %+v", ans)
	}
	bad := []LinkADRReq{
		{DataRate: DataRate(7)},
		{DataRate: DR1, TxPowerIndex: -1},
		{DataRate: DR1, TxPowerIndex: MaxTxPowerIndex + 1},
		{DataRate: DR1, NbTrans: -2},
	}
	for i, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("bad command %d validated", i)
		}
	}
	// LoRaWAN 1.0.x semantics: a rejected component rejects the command.
	if ans := (LinkADRReq{DataRate: DataRate(9), TxPowerIndex: 0}).Apply(); ans.Accepted() || ans.PowerACK != true || ans.DataRateACK {
		t.Fatalf("out-of-range data rate answered %+v", ans)
	}
}

func TestDownlinkBytes(t *testing.T) {
	if DownlinkBytes(false) != DownlinkOverheadBytes {
		t.Fatal("plain ack size wrong")
	}
	if DownlinkBytes(true) != DownlinkOverheadBytes+LinkADRReqBytes {
		t.Fatal("command downlink size wrong")
	}
	// A command downlink at any data rate has a computable airtime.
	for dr := DR0; dr <= MaxDataRate; dr++ {
		phy := radio.DefaultPHY(dr.SF())
		if phy.Airtime(DownlinkBytes(true)) <= 0 {
			t.Fatalf("non-positive downlink airtime at %v", dr)
		}
	}
	// RX2 (DR0/SF12) is the slowest window: longest airtime.
	slow := radio.DefaultPHY(DefaultRX2DataRate.SF()).Airtime(DownlinkBytes(false))
	fast := radio.DefaultPHY(DR5.SF()).Airtime(DownlinkBytes(false))
	if slow <= fast {
		t.Fatalf("RX2 airtime %v not slower than DR5's %v", slow, fast)
	}
}

func TestRequiredSNRLadder(t *testing.T) {
	if radio.SF7.RequiredSNR() != -7.5 || radio.SF12.RequiredSNR() != -20 {
		t.Fatalf("demod floors: SF7=%v SF12=%v", radio.SF7.RequiredSNR(), radio.SF12.RequiredSNR())
	}
	for sf := radio.SF8; sf <= radio.SF12; sf++ {
		if sf.RequiredSNR() >= (sf - 1).RequiredSNR() {
			t.Fatalf("SF%d floor not below SF%d's", int(sf), int(sf-1))
		}
	}
	if radio.SpreadingFactor(0).RequiredSNR() != 0 {
		t.Fatal("invalid SF floor not zero")
	}
	// SNR conversion round-trips the noise floor.
	nf := radio.NoiseFloorDBm(125000)
	if nf > -116 || nf < -119 {
		t.Fatalf("125 kHz noise floor %v dBm implausible", nf)
	}
	if got := radio.SNRFromRSSI(nf+10, 125000); got != 10 {
		t.Fatalf("SNRFromRSSI = %v, want 10", got)
	}
}
