// Package lorawan provides the MAC-layer substrate of the reproduction:
// application messages, the FIFO data queue with ≤12-message bundling, data
// frames carrying the RCA-ETX/queue-length advertisement, the 1 % duty-cycle
// governor, the retransmission policy, the device classes (including the
// paper's Modified Class-C and Queue-based Class-A), and energy accounting.
//
// The package deliberately contains no scheduling logic: forwarding decisions
// belong to internal/routing, and the device state machine that ties the
// pieces together lives in internal/experiment.
package lorawan

import (
	"fmt"
	"time"
)

// MessageBytes is the application payload size the paper's devices generate
// (Sec. VII-A4: "a 20-byte message every 3 minutes").
const MessageBytes = 20

// MaxBundle is the maximum number of messages packed into one data frame
// (Sec. VII-A5: "devices select up to 12 messages from the queue").
const MaxBundle = 12

// FrameOverheadBytes approximates the LoRaWAN MACPayload overhead: the MHDR
// (1), FHDR (7+), MIC (4), plus the appended RCA-ETX value and queue length
// (Sec. VII-A5: devices "append their RCA-ETX value and data queue size").
const FrameOverheadBytes = 13 + 8

// Message is one application-layer telemetry message.
type Message struct {
	// ID is unique across the simulation.
	ID uint64
	// Origin is the device index that generated the message.
	Origin int
	// Created is the generation time (virtual).
	Created time.Duration
	// Hops counts device-to-device handovers so far; delivery through
	// the origin's own uplink therefore records Hops+1 = 1 total hops,
	// matching Fig. 12's "all LoRaWAN messages have a hop count of 1".
	Hops int
	// Via is the device index this copy was last received from, or -1
	// when held by its originator. It implements the paper's no-send-back
	// rule (Sec. V-B2): a device never returns data to the device it
	// received it from before its own next sink opportunity.
	Via int
}

// Frame is one PHY packet: a bundle of messages plus the sender's advertised
// routing state, which neighbours overhear.
type Frame struct {
	// From is the transmitting device index.
	From int
	// Seq is the sender's frame sequence number.
	Seq uint32
	// Messages is the bundled payload, at most MaxBundle entries.
	Messages []Message
	// AdvertisedRCAETX is the sender's current RCA-ETX to the sinks, in
	// seconds (time units); neighbours feed it into Eq. (1)/(10).
	AdvertisedRCAETX float64
	// AdvertisedQueueLen is the sender's queue length for ROBC (Eq. 10).
	AdvertisedQueueLen int
}

// PayloadBytes returns the frame's PHY payload size in bytes.
func (f Frame) PayloadBytes() int {
	return FrameOverheadBytes + MessageBytes*len(f.Messages)
}

// Validate reports structural errors (over-stuffed bundle).
func (f Frame) Validate() error {
	if len(f.Messages) > MaxBundle {
		return fmt.Errorf("lorawan: frame bundles %d messages, max %d", len(f.Messages), MaxBundle)
	}
	return nil
}
