package netserver

import (
	"time"

	"mlorass/internal/lorawan"
	"mlorass/internal/mac"
	"mlorass/internal/radio"
)

// RxTiming carries the receive-window timing and airtimes the downlink
// scheduler chooses between: RX1 reuses the uplink data rate, RX2 the fixed
// fallback rate, so their airtimes differ.
type RxTiming struct {
	// RX1Delay and RX2Delay are the window offsets from the uplink's end.
	RX1Delay, RX2Delay time.Duration
	// RX1Air and RX2Air are the downlink frame airtimes at each window's
	// data rate.
	RX1Air, RX2Air time.Duration
}

// DownlinkPlan is one scheduled gateway downlink: the ack and/or LinkADRReq
// answering a decoded uplink, committed to a gateway transmit slot. The
// simulator places the corresponding transmission on the shared medium.
type DownlinkPlan struct {
	// Device and Gateway identify the addressee and the transmitter.
	Device, Gateway int
	// Start is the transmission start instant; Window names the receive
	// window it lands in; AirTime is the frame's on-air duration.
	Start   time.Duration
	Window  mac.Window
	AirTime time.Duration
	// Ack is set for confirmed-uplink acknowledgements.
	Ack bool
	// Cmd is the piggybacked ADR command, valid when HasCmd is set.
	Cmd    lorawan.LinkADRReq
	HasCmd bool
}

// MAC is the network server's MAC-layer control plane: the ADR controller
// fed by uplink SNR observations and the per-gateway downlink scheduler that
// answers confirmed uplinks (and pending ADR commands) through the RX1/RX2
// receive windows. One MAC serves one simulation run, alongside the
// deduplicating ledger in Server.
type MAC struct {
	// ADR is the SNR-margin controller (nil disables rate adaptation:
	// downlinks then carry acks only).
	ADR *mac.Controller
	// Sched is the per-gateway downlink scheduler.
	Sched *mac.Scheduler

	// Commands counts LinkADRReq commands issued (scheduled on a
	// downlink); a command lost on air is reissued after later uplinks, so
	// Commands can exceed the number of distinct setting changes.
	Commands uint64
}

// OnUplink runs the network-server MAC reaction to one decoded uplink from
// dev via gateway gw: record the SNR observation, decide whether an ADR
// command is due, and — when the uplink was confirmed or a command is
// pending — schedule the answering downlink on the gateway. It returns the
// committed plan, or ok=false when no downlink is needed or the gateway's
// duty budget had no open window (the scheduler counts the drop).
func (m *MAC) OnUplink(dev, gw int, snr radio.DB, cur lorawan.DataRate, curPow int, confirmed bool, uplinkEnd time.Duration, t RxTiming) (DownlinkPlan, bool) {
	var (
		cmd    lorawan.LinkADRReq
		hasCmd bool
	)
	if m.ADR != nil {
		m.ADR.Observe(dev, snr)
		cmd, hasCmd = m.ADR.Decide(dev, cur, curPow)
	}
	if !confirmed && !hasCmd {
		return DownlinkPlan{}, false
	}
	rx1Air, rx2Air := t.RX1Air, t.RX2Air
	start, w, ok := m.Sched.Schedule(gw, uplinkEnd, t.RX1Delay, t.RX2Delay, rx1Air, rx2Air)
	if !ok {
		return DownlinkPlan{}, false
	}
	if hasCmd {
		m.Commands++
	}
	air := rx1Air
	if w == mac.WindowRX2 {
		air = rx2Air
	}
	return DownlinkPlan{
		Device:  dev,
		Gateway: gw,
		Start:   start,
		Window:  w,
		AirTime: air,
		Ack:     confirmed,
		Cmd:     cmd,
		HasCmd:  hasCmd,
	}, true
}

// AttachMAC installs the MAC control plane on the server (nil detaches it).
func (s *Server) AttachMAC(m *MAC) { s.mac = m }

// MAC returns the attached control plane (nil when the run models the
// paper's plain uplink-only traffic).
func (s *Server) MAC() *MAC { return s.mac }
