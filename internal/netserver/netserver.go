// Package netserver implements the LoRaWAN network server: the single
// backend all gateways feed into over their (instant, reliable) Ethernet
// backhaul (Sec. VII-A4).
//
// The server deduplicates messages received through multiple gateways,
// issues acknowledgements (assumed instantaneous and always successful, as
// in the paper), and keeps the delivery ledger the evaluation metrics read:
// per-message end-to-end delay, hop counts, and arrival times for the
// throughput time series.
package netserver

import (
	"time"

	"mlorass/internal/lorawan"
)

// Delivery records one message's first arrival at the server.
type Delivery struct {
	// MessageID identifies the application message.
	MessageID uint64
	// Origin is the device that generated the message.
	Origin int
	// Created is the message generation time.
	Created time.Duration
	// Arrived is the first server reception time.
	Arrived time.Duration
	// Hops is the total number of wireless hops the winning copy took:
	// device-to-device handovers plus the final device-to-gateway uplink
	// (so a direct uplink counts 1, matching Fig. 12).
	Hops int
	// Gateway is the index of the gateway that delivered the first copy.
	Gateway int
}

// Delay returns the end-to-end delay δt = t_g − t_d (Sec. VII-B).
func (d Delivery) Delay() time.Duration { return d.Arrived - d.Created }

// Server is the network server. Not safe for concurrent use (it lives on
// the single-threaded simulator).
type Server struct {
	seen       map[uint64]struct{}
	deliveries []Delivery
	duplicates uint64
}

// New returns an empty server.
func New() *Server {
	return &Server{seen: make(map[uint64]struct{})}
}

// Ingest processes a bundle of messages received by gateway gw at time now.
// It returns how many of them were new (non-duplicate). Duplicates — copies
// already delivered via another gateway or an earlier uplink — are counted
// but not re-recorded.
func (s *Server) Ingest(now time.Duration, gw int, msgs []lorawan.Message) int {
	fresh := 0
	for _, m := range msgs {
		if _, dup := s.seen[m.ID]; dup {
			s.duplicates++
			continue
		}
		s.seen[m.ID] = struct{}{}
		s.deliveries = append(s.deliveries, Delivery{
			MessageID: m.ID,
			Origin:    m.Origin,
			Created:   m.Created,
			Arrived:   now,
			Hops:      m.Hops + 1,
			Gateway:   gw,
		})
		fresh++
	}
	return fresh
}

// Delivered reports whether a message has reached the server.
func (s *Server) Delivered(messageID uint64) bool {
	_, ok := s.seen[messageID]
	return ok
}

// Deliveries returns the delivery ledger in arrival order. Callers must not
// modify the returned slice.
func (s *Server) Deliveries() []Delivery { return s.deliveries }

// Count returns the number of distinct delivered messages.
func (s *Server) Count() int { return len(s.deliveries) }

// Duplicates returns the number of duplicate copies discarded.
func (s *Server) Duplicates() uint64 { return s.duplicates }
