// Package netserver implements the LoRaWAN network server: the single
// backend all gateways feed into over their (instant, reliable) Ethernet
// backhaul (Sec. VII-A4).
//
// The server deduplicates messages received through multiple gateways,
// issues acknowledgements (assumed instantaneous and always successful, as
// in the paper), and keeps the delivery ledger the evaluation metrics read:
// per-message end-to-end delay, hop counts, and arrival times for the
// throughput time series. An optional Observer watches the ledger as it
// grows, which is how the telemetry layer streams delay histograms and
// per-packet deliver/dedup trace records without a post-run pass.
package netserver

import (
	"time"

	"mlorass/internal/lorawan"
)

// Delivery records one message's first arrival at the server.
type Delivery struct {
	// MessageID identifies the application message.
	MessageID uint64
	// Origin is the device that generated the message.
	Origin int
	// Created is the message generation time.
	Created time.Duration
	// Arrived is the first server reception time.
	Arrived time.Duration
	// Hops is the total number of wireless hops the winning copy took:
	// device-to-device handovers plus the final device-to-gateway uplink
	// (so a direct uplink counts 1, matching Fig. 12).
	Hops int
	// Gateway is the index of the gateway that delivered the first copy.
	Gateway int
}

// Delay returns the end-to-end delay δt = t_g − t_d (Sec. VII-B).
func (d Delivery) Delay() time.Duration { return d.Arrived - d.Created }

// Observer watches the ledger in arrival order. Implementations must not
// call back into the server.
//
// Callbacks are an event log, not the final ledger: Delivered fires with
// the first copy's Hops/Gateway, and a later same-instant copy that wins
// the hop tie-break (see Ingest) surfaces only as a Duplicate callback
// while the ledger entry is amended in place. Consumers needing the
// settled hop counts read Deliveries() after the run; the streamed delay
// is unaffected (both copies share the arrival instant).
type Observer interface {
	// Delivered fires when a message's first copy is accepted.
	Delivered(d Delivery)
	// Duplicate fires when a redundant copy is discarded (or merely
	// improves an existing entry's hop count on a same-instant tie).
	Duplicate(now time.Duration, gw int, m lorawan.Message)
}

// Server is the network server. Not safe for concurrent use (it lives on
// the single-threaded simulator).
type Server struct {
	// seen maps a delivered message ID to its ledger index.
	seen       map[uint64]int
	deliveries []Delivery
	duplicates uint64
	obs        Observer
	// mac is the optional MAC control plane (ADR + downlink scheduling);
	// nil for the paper's uplink-only traffic model.
	mac *MAC
}

// New returns an empty server.
func New() *Server {
	return &Server{seen: make(map[uint64]int)}
}

// SetObserver installs (or, with nil, removes) the ledger observer.
func (s *Server) SetObserver(obs Observer) { s.obs = obs }

// Ingest processes a bundle of messages received by gateway gw at time now.
// It returns how many of them were new (non-duplicate). Duplicates — copies
// already delivered via another gateway or an earlier uplink — are counted
// but not re-recorded, with one refinement: when the duplicate arrives at
// the exact same instant as the recorded first copy (the same-tick
// multi-gateway race, where physical arrival order is undefined and only
// event-queue order decided the winner), the ledger keeps the copy with the
// fewer wireless hops, breaking remaining ties in favour of the earlier
// ingest. This makes Fig. 12's hop statistics independent of gateway
// enumeration order.
func (s *Server) Ingest(now time.Duration, gw int, msgs []lorawan.Message) int {
	fresh := 0
	for _, m := range msgs {
		if idx, dup := s.seen[m.ID]; dup {
			s.duplicates++
			// Same-instant hop-count tie-break (see above). Late
			// duplicates — now after the recorded arrival — never
			// rewrite history: the ack already committed that entry.
			if d := &s.deliveries[idx]; now == d.Arrived && m.Hops+1 < d.Hops {
				d.Hops = m.Hops + 1
				d.Gateway = gw
			}
			if s.obs != nil {
				s.obs.Duplicate(now, gw, m)
			}
			continue
		}
		s.seen[m.ID] = len(s.deliveries)
		d := Delivery{
			MessageID: m.ID,
			Origin:    m.Origin,
			Created:   m.Created,
			Arrived:   now,
			Hops:      m.Hops + 1,
			Gateway:   gw,
		}
		s.deliveries = append(s.deliveries, d)
		if s.obs != nil {
			s.obs.Delivered(d)
		}
		fresh++
	}
	return fresh
}

// Delivered reports whether a message has reached the server.
func (s *Server) Delivered(messageID uint64) bool {
	_, ok := s.seen[messageID]
	return ok
}

// Deliveries returns the delivery ledger in arrival order. Callers must not
// modify the returned slice.
func (s *Server) Deliveries() []Delivery { return s.deliveries }

// Count returns the number of distinct delivered messages.
func (s *Server) Count() int { return len(s.deliveries) }

// Duplicates returns the number of duplicate copies discarded.
func (s *Server) Duplicates() uint64 { return s.duplicates }
