package netserver

import (
	"testing"
	"time"

	"mlorass/internal/lorawan"
)

func TestIngestRecordsDelivery(t *testing.T) {
	s := New()
	msgs := []lorawan.Message{{ID: 1, Origin: 4, Created: time.Minute, Hops: 2}}
	if fresh := s.Ingest(10*time.Minute, 3, msgs); fresh != 1 {
		t.Fatalf("fresh = %d", fresh)
	}
	if s.Count() != 1 || !s.Delivered(1) {
		t.Fatal("delivery not recorded")
	}
	d := s.Deliveries()[0]
	if d.Origin != 4 || d.Gateway != 3 {
		t.Fatalf("delivery = %+v", d)
	}
	if d.Hops != 3 { // 2 handovers + final uplink
		t.Fatalf("Hops = %d, want 3", d.Hops)
	}
	if d.Delay() != 9*time.Minute {
		t.Fatalf("Delay = %v", d.Delay())
	}
}

func TestIngestDeduplicates(t *testing.T) {
	s := New()
	m := lorawan.Message{ID: 7}
	s.Ingest(time.Minute, 0, []lorawan.Message{m})
	if fresh := s.Ingest(2*time.Minute, 1, []lorawan.Message{m}); fresh != 0 {
		t.Fatalf("duplicate counted as fresh: %d", fresh)
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Duplicates() != 1 {
		t.Fatalf("Duplicates = %d", s.Duplicates())
	}
	// First arrival wins: delay measured from the first copy.
	if got := s.Deliveries()[0].Arrived; got != time.Minute {
		t.Fatalf("Arrived = %v", got)
	}
}

func TestIngestMixedBundle(t *testing.T) {
	s := New()
	s.Ingest(0, 0, []lorawan.Message{{ID: 1}, {ID: 2}})
	fresh := s.Ingest(time.Second, 1, []lorawan.Message{{ID: 2}, {ID: 3}, {ID: 4}})
	if fresh != 2 {
		t.Fatalf("fresh = %d, want 2", fresh)
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
}

func TestDirectUplinkHopCount(t *testing.T) {
	// Fig. 12: "all LoRaWAN messages have a hop count of 1" — a message
	// that never hopped device-to-device arrives with Hops 1.
	s := New()
	s.Ingest(0, 0, []lorawan.Message{{ID: 1, Hops: 0}})
	if got := s.Deliveries()[0].Hops; got != 1 {
		t.Fatalf("direct uplink Hops = %d, want 1", got)
	}
}

func TestDeliveredUnknown(t *testing.T) {
	s := New()
	if s.Delivered(99) {
		t.Fatal("unknown message reported delivered")
	}
}

func TestIngestEmpty(t *testing.T) {
	s := New()
	if fresh := s.Ingest(0, 0, nil); fresh != 0 {
		t.Fatalf("fresh = %d", fresh)
	}
	if s.Count() != 0 {
		t.Fatal("empty ingest recorded deliveries")
	}
}
