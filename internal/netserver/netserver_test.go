package netserver

import (
	"testing"
	"time"

	"mlorass/internal/lorawan"
)

func TestIngestRecordsDelivery(t *testing.T) {
	s := New()
	msgs := []lorawan.Message{{ID: 1, Origin: 4, Created: time.Minute, Hops: 2}}
	if fresh := s.Ingest(10*time.Minute, 3, msgs); fresh != 1 {
		t.Fatalf("fresh = %d", fresh)
	}
	if s.Count() != 1 || !s.Delivered(1) {
		t.Fatal("delivery not recorded")
	}
	d := s.Deliveries()[0]
	if d.Origin != 4 || d.Gateway != 3 {
		t.Fatalf("delivery = %+v", d)
	}
	if d.Hops != 3 { // 2 handovers + final uplink
		t.Fatalf("Hops = %d, want 3", d.Hops)
	}
	if d.Delay() != 9*time.Minute {
		t.Fatalf("Delay = %v", d.Delay())
	}
}

func TestIngestDeduplicates(t *testing.T) {
	s := New()
	m := lorawan.Message{ID: 7}
	s.Ingest(time.Minute, 0, []lorawan.Message{m})
	if fresh := s.Ingest(2*time.Minute, 1, []lorawan.Message{m}); fresh != 0 {
		t.Fatalf("duplicate counted as fresh: %d", fresh)
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d", s.Count())
	}
	if s.Duplicates() != 1 {
		t.Fatalf("Duplicates = %d", s.Duplicates())
	}
	// First arrival wins: delay measured from the first copy.
	if got := s.Deliveries()[0].Arrived; got != time.Minute {
		t.Fatalf("Arrived = %v", got)
	}
}

func TestIngestMixedBundle(t *testing.T) {
	s := New()
	s.Ingest(0, 0, []lorawan.Message{{ID: 1}, {ID: 2}})
	fresh := s.Ingest(time.Second, 1, []lorawan.Message{{ID: 2}, {ID: 3}, {ID: 4}})
	if fresh != 2 {
		t.Fatalf("fresh = %d, want 2", fresh)
	}
	if s.Count() != 4 {
		t.Fatalf("Count = %d, want 4", s.Count())
	}
}

func TestDirectUplinkHopCount(t *testing.T) {
	// Fig. 12: "all LoRaWAN messages have a hop count of 1" — a message
	// that never hopped device-to-device arrives with Hops 1.
	s := New()
	s.Ingest(0, 0, []lorawan.Message{{ID: 1, Hops: 0}})
	if got := s.Deliveries()[0].Hops; got != 1 {
		t.Fatalf("direct uplink Hops = %d, want 1", got)
	}
}

func TestDeliveredUnknown(t *testing.T) {
	s := New()
	if s.Delivered(99) {
		t.Fatal("unknown message reported delivered")
	}
}

func TestIngestEmpty(t *testing.T) {
	s := New()
	if fresh := s.Ingest(0, 0, nil); fresh != 0 {
		t.Fatalf("fresh = %d", fresh)
	}
	if s.Count() != 0 {
		t.Fatal("empty ingest recorded deliveries")
	}
}

// TestSameTickMultiGateway covers the fan-in race: the same message arriving
// via N gateways at the same instant records exactly one delivery, counts
// N-1 duplicates, and the ledger's gateway is the first ingested (event-queue
// order) when hop counts tie.
func TestSameTickMultiGateway(t *testing.T) {
	s := New()
	m := lorawan.Message{ID: 5, Origin: 2, Created: time.Minute, Hops: 0}
	at := 4 * time.Minute
	for gw := 0; gw < 4; gw++ {
		fresh := s.Ingest(at, gw, []lorawan.Message{m})
		if want := btoi(gw == 0); fresh != want {
			t.Fatalf("gw %d: fresh = %d, want %d", gw, fresh, want)
		}
	}
	if s.Count() != 1 || s.Duplicates() != 3 {
		t.Fatalf("count=%d dups=%d, want 1/3", s.Count(), s.Duplicates())
	}
	d := s.Deliveries()[0]
	if d.Gateway != 0 || d.Hops != 1 || d.Arrived != at {
		t.Fatalf("delivery = %+v", d)
	}
}

// TestSameTickHopCountTieBreak covers the hop tie-break: when copies of one
// message arrive at the same instant with different hop counts, the ledger
// keeps the fewer-hop path regardless of ingest order, so Fig. 12 statistics
// do not depend on gateway enumeration order.
func TestSameTickHopCountTieBreak(t *testing.T) {
	at := 10 * time.Minute

	// Relayed copy (3 hops) ingested first, direct copy (1 hop) second.
	s := New()
	s.Ingest(at, 1, []lorawan.Message{{ID: 8, Hops: 2}})
	s.Ingest(at, 2, []lorawan.Message{{ID: 8, Hops: 0}})
	d := s.Deliveries()[0]
	if d.Hops != 1 || d.Gateway != 2 {
		t.Fatalf("tie-break kept %d hops via gw %d, want 1 via 2", d.Hops, d.Gateway)
	}
	if s.Count() != 1 || s.Duplicates() != 1 {
		t.Fatalf("count=%d dups=%d", s.Count(), s.Duplicates())
	}

	// Direct copy first: the later relayed copy must not displace it.
	s = New()
	s.Ingest(at, 1, []lorawan.Message{{ID: 8, Hops: 0}})
	s.Ingest(at, 2, []lorawan.Message{{ID: 8, Hops: 2}})
	d = s.Deliveries()[0]
	if d.Hops != 1 || d.Gateway != 1 {
		t.Fatalf("worse copy displaced winner: %+v", d)
	}

	// Equal hops: earlier ingest wins (deterministic).
	s = New()
	s.Ingest(at, 3, []lorawan.Message{{ID: 8, Hops: 1}})
	s.Ingest(at, 4, []lorawan.Message{{ID: 8, Hops: 1}})
	if d = s.Deliveries()[0]; d.Gateway != 3 {
		t.Fatalf("equal-hop tie broke to gw %d, want first ingest 3", d.Gateway)
	}
}

// TestLateDuplicateAfterAck covers the slow-copy case: a duplicate arriving
// after the recorded (acked) delivery is counted but never rewrites the
// ledger, even when it took fewer hops — the ack already committed the entry.
func TestLateDuplicateAfterAck(t *testing.T) {
	s := New()
	s.Ingest(5*time.Minute, 0, []lorawan.Message{{ID: 3, Created: time.Minute, Hops: 4}})
	before := s.Deliveries()[0]
	if fresh := s.Ingest(9*time.Minute, 1, []lorawan.Message{{ID: 3, Created: time.Minute, Hops: 0}}); fresh != 0 {
		t.Fatalf("late duplicate counted as fresh: %d", fresh)
	}
	after := s.Deliveries()[0]
	if after != before {
		t.Fatalf("late duplicate rewrote ledger: %+v -> %+v", before, after)
	}
	if s.Duplicates() != 1 || s.Count() != 1 {
		t.Fatalf("count=%d dups=%d", s.Count(), s.Duplicates())
	}
}

// ledgerObserver records Observer callbacks for assertions.
type ledgerObserver struct {
	delivered  []Delivery
	duplicates int
}

func (o *ledgerObserver) Delivered(d Delivery) { o.delivered = append(o.delivered, d) }
func (o *ledgerObserver) Duplicate(now time.Duration, gw int, m lorawan.Message) {
	o.duplicates++
}

// TestObserverStreamsLedger checks the telemetry hook: the observer sees one
// Delivered per fresh message (with final delay fields) and one Duplicate per
// discarded copy, in arrival order.
func TestObserverStreamsLedger(t *testing.T) {
	s := New()
	obs := &ledgerObserver{}
	s.SetObserver(obs)
	s.Ingest(2*time.Minute, 0, []lorawan.Message{{ID: 1, Created: time.Minute}, {ID: 2, Created: time.Minute}})
	s.Ingest(3*time.Minute, 1, []lorawan.Message{{ID: 1}})
	if len(obs.delivered) != 2 || obs.duplicates != 1 {
		t.Fatalf("observer saw %d deliveries, %d dups", len(obs.delivered), obs.duplicates)
	}
	if obs.delivered[0].MessageID != 1 || obs.delivered[0].Delay() != time.Minute {
		t.Fatalf("delivered[0] = %+v", obs.delivered[0])
	}
	// Removing the observer silences it.
	s.SetObserver(nil)
	s.Ingest(4*time.Minute, 0, []lorawan.Message{{ID: 9}})
	if len(obs.delivered) != 2 {
		t.Fatal("observer saw events after removal")
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
