package netserver

import (
	"testing"
	"time"

	"mlorass/internal/lorawan"
	"mlorass/internal/mac"
)

func testMAC(t *testing.T, withADR bool) *MAC {
	t.Helper()
	var ctrl *mac.Controller
	if withADR {
		var err error
		ctrl, err = mac.NewController(mac.DefaultADRConfig(), 4)
		if err != nil {
			t.Fatal(err)
		}
	}
	sched, err := mac.NewScheduler(2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return &MAC{ADR: ctrl, Sched: sched}
}

func testTiming() RxTiming {
	return RxTiming{
		RX1Delay: time.Second,
		RX2Delay: 2 * time.Second,
		RX1Air:   50 * time.Millisecond,
		RX2Air:   1500 * time.Millisecond,
	}
}

func TestMACOnUplinkConfirmedAlwaysAnswers(t *testing.T) {
	m := testMAC(t, false)
	plan, ok := m.OnUplink(0, 1, 5, lorawan.DR5, 0, true, 10*time.Second, testTiming())
	if !ok {
		t.Fatal("confirmed uplink got no downlink despite an open budget")
	}
	if !plan.Ack || plan.HasCmd {
		t.Fatalf("plan = %+v, want plain ack", plan)
	}
	if plan.Gateway != 1 || plan.Device != 0 {
		t.Fatalf("plan addressed %d via %d", plan.Device, plan.Gateway)
	}
	if plan.Window != mac.WindowRX1 || plan.Start != 11*time.Second || plan.AirTime != 50*time.Millisecond {
		t.Fatalf("plan window/start/air = %v/%v/%v", plan.Window, plan.Start, plan.AirTime)
	}
}

func TestMACOnUplinkUnconfirmedOnlyOnCommand(t *testing.T) {
	m := testMAC(t, true)
	// Below MinHistory: no command, no downlink.
	for i := 0; i < 3; i++ {
		if _, ok := m.OnUplink(0, 0, 30, lorawan.DR0, 0, false, 0, testTiming()); ok {
			t.Fatal("downlink scheduled before ADR had enough history")
		}
	}
	// Fourth strong uplink: command due, downlink scheduled.
	plan, ok := m.OnUplink(0, 0, 30, lorawan.DR0, 0, false, time.Minute, testTiming())
	if !ok || !plan.HasCmd || plan.Ack {
		t.Fatalf("plan = %+v ok=%v, want command-only downlink", plan, ok)
	}
	if plan.Cmd.DataRate <= lorawan.DR0 {
		t.Fatalf("strong link commanded %v", plan.Cmd.DataRate)
	}
	if m.Commands != 1 {
		t.Fatalf("Commands = %d, want 1", m.Commands)
	}
}

func TestMACOnUplinkBudgetExhaustion(t *testing.T) {
	m := testMAC(t, false)
	tm := testTiming()
	// First ack on gateway 0 charges 50ms/0.1 = 500ms from RX1: busy until
	// 1.5s past the uplink end.
	if _, ok := m.OnUplink(0, 0, 5, lorawan.DR5, 0, true, 0, tm); !ok {
		t.Fatal("first ack rejected")
	}
	// A second uplink ending 100ms later: RX1 at 1.1s is blocked, RX2 at
	// 2.1s is open — charged 1.5s/0.1 = 15s.
	plan, ok := m.OnUplink(1, 0, 5, lorawan.DR5, 0, true, 100*time.Millisecond, tm)
	if !ok || plan.Window != mac.WindowRX2 {
		t.Fatalf("second ack plan %+v ok=%v, want RX2", plan, ok)
	}
	// A third within the silent period: dropped, counted by the scheduler.
	if _, ok := m.OnUplink(2, 0, 5, lorawan.DR5, 0, true, 200*time.Millisecond, tm); ok {
		t.Fatal("third ack fit a fully blocked gateway")
	}
	if st := m.Sched.Stats(); st.Dropped != 1 || st.RX1 != 1 || st.RX2 != 1 {
		t.Fatalf("scheduler stats %+v", st)
	}
	// The other gateway's budget is independent.
	if _, ok := m.OnUplink(3, 1, 5, lorawan.DR5, 0, true, 200*time.Millisecond, tm); !ok {
		t.Fatal("gateway budgets not independent")
	}
}

func TestServerAttachMAC(t *testing.T) {
	s := New()
	if s.MAC() != nil {
		t.Fatal("fresh server has a MAC")
	}
	m := testMAC(t, true)
	s.AttachMAC(m)
	if s.MAC() != m {
		t.Fatal("AttachMAC did not install")
	}
	s.AttachMAC(nil)
	if s.MAC() != nil {
		t.Fatal("detach failed")
	}
}
