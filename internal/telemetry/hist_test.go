package telemetry

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.N() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram not all-zero: %v", h.String())
	}
}

func TestHistogramExactMoments(t *testing.T) {
	var h Histogram
	vals := []float64{0.001, 0.5, 1, 2.5, 300, 86400}
	sum := 0.0
	for _, v := range vals {
		h.Add(v)
		sum += v
	}
	if h.N() != uint64(len(vals)) {
		t.Fatalf("N = %d, want %d", h.N(), len(vals))
	}
	if h.Sum() != sum {
		t.Fatalf("Sum = %v, want %v (must be exact)", h.Sum(), sum)
	}
	if h.Min() != 0.001 || h.Max() != 86400 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

// TestHistogramQuantileAccuracy checks the log-linear layout's promised
// relative error (≤ 1/subBuckets plus interpolation slack) against exact
// sample percentiles over a wide dynamic range.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	var h Histogram
	n := 20000
	vals := make([]float64, n)
	for i := range vals {
		// Log-uniform over [10 ms, 10^5 s]: seven decades.
		v := math.Pow(10, rnd.Float64()*7-2)
		vals[i] = v
		h.Add(v)
	}
	sort.Float64s(vals)
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 95, 99, 99.9} {
		got := h.Percentile(p)
		exact := vals[int(math.Ceil(p/100*float64(n)))-1]
		rel := math.Abs(got-exact) / exact
		if rel > 2.0/histSubBuckets {
			t.Errorf("p%v: got %v, exact %v, rel err %.4f > %.4f", p, got, exact, rel, 2.0/histSubBuckets)
		}
	}
}

func TestHistogramEdgeBuckets(t *testing.T) {
	var h Histogram
	h.Add(-3)         // clamped to 0, underflow
	h.Add(1e-9)       // underflow
	h.Add(1e9)        // overflow (beyond 2^21 s)
	h.Add(math.NaN()) // clamped to 0
	if h.N() != 4 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.Percentile(10); got != 0 {
		t.Errorf("underflow percentile = %v, want 0", got)
	}
	if got := h.Percentile(100); got != 1e9 {
		t.Errorf("max percentile = %v, want observed max 1e9", got)
	}
}

// TestHistogramMergeExact is the subsystem's core guarantee: merging
// per-replication histograms equals recording every observation into one
// histogram, bit for bit — no re-binning, no lossy aggregation.
func TestHistogramMergeExact(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	var whole Histogram
	parts := make([]Histogram, 5)
	for i := 0; i < 50000; i++ {
		v := math.Abs(rnd.NormFloat64()) * 100
		whole.Add(v)
		parts[i%len(parts)].Add(v)
	}
	var merged Histogram
	for i := range parts {
		merged.Merge(&parts[i])
	}
	// Bucket counts, n, and min/max must match exactly; the carried sum may
	// differ in the last bits (float addition is not associative).
	if merged.counts != whole.counts || merged.n != whole.n ||
		merged.min != whole.min || merged.max != whole.max {
		t.Fatal("merged histogram differs from whole-population histogram")
	}
	if rel := math.Abs(merged.sum-whole.sum) / whole.sum; rel > 1e-12 {
		t.Fatalf("merged sum off by %v", rel)
	}
	for _, p := range []float64{50, 95, 99} {
		if merged.Percentile(p) != whole.Percentile(p) {
			t.Fatalf("p%v differs after merge", p)
		}
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var a, b Histogram
	a.Add(2)
	a.Merge(&b) // empty other: no-op
	if a.N() != 1 || a.Min() != 2 {
		t.Fatalf("merge with empty changed state: %v", a.String())
	}
	b.Merge(&a) // empty receiver adopts other's min/max
	if b.N() != 1 || b.Min() != 2 || b.Max() != 2 {
		t.Fatalf("empty receiver merge: %v", b.String())
	}
	a.Merge(nil)
	if a.N() != 1 {
		t.Fatal("nil merge changed state")
	}
}

func TestHistogramJSONRoundTrip(t *testing.T) {
	var h Histogram
	for _, v := range []float64{0.004, 0.25, 17, 300.5, 86000} {
		h.Add(v)
	}
	data, err := json.Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatal("JSON round trip lost state")
	}
}

func TestHistogramJSONRejectsForeignLayout(t *testing.T) {
	var back Histogram
	err := json.Unmarshal([]byte(`{"n":1,"sum":1,"min":1,"max":1,"layout":[-5,10,16]}`), &back)
	if err == nil {
		t.Fatal("foreign layout accepted")
	}
}

// TestHistogramAddAllocationFree locks the hot-path contract.
func TestHistogramAddAllocationFree(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Add(12.5)
	})
	if allocs != 0 {
		t.Fatalf("Histogram.Add allocates %v per op, want 0", allocs)
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Add(float64(i%100000) * 0.01)
	}
}

func BenchmarkHistogramQuantile(b *testing.B) {
	var h Histogram
	for i := 0; i < 100000; i++ {
		h.Add(float64(i) * 0.01)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Percentile(95)
	}
}
