package telemetry

import (
	"sync"
	"testing"
)

// TestSnapshotConcurrentWithRecording hammers every recording method from
// the single writer goroutine while several readers scrape Snapshot — the
// live /metrics path. Run under -race this locks the Recorder's concurrency
// contract; the final quiesced snapshot must also be exact.
func TestSnapshotConcurrentWithRecording(t *testing.T) {
	r := NewRecorder()
	const iters = 20000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for reader := 0; reader < 3; reader++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastGen, lastDelayN uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Snapshot()
				// Counters and histogram totals are monotonic under a
				// single writer; a torn read would show them regress.
				if s.Counters.Generated < lastGen {
					t.Errorf("Generated regressed: %d -> %d", lastGen, s.Counters.Generated)
					return
				}
				if s.Delay.N() < lastDelayN {
					t.Errorf("Delay.N regressed: %d -> %d", lastDelayN, s.Delay.N())
					return
				}
				if n := s.Delay.N(); n > 0 {
					if min, max := s.Delay.Min(), s.Delay.Max(); min > max {
						t.Errorf("Delay min %g > max %g at n=%d", min, max, n)
						return
					}
				}
				lastGen, lastDelayN = s.Counters.Generated, s.Delay.N()
			}
		}()
	}

	for i := 0; i < iters; i++ {
		r.AddGenerated()
		r.AddFrame()
		r.AddUplinkDelivery()
		r.AddServerFresh(2)
		r.AddServerDuplicate()
		r.AddRelayHops(3)
		r.AddQueueDrop()
		r.AddKernelEvent()
		r.AddTraceEvent()
		r.AddDownlink()
		r.AddDownlinkDelivery()
		r.AddAckTimeout()
		r.AddRetransmission()
		r.AddADRApplied()
		r.AddUplinkSF(7 + i%6)
		r.ObserveDelay(float64(i%1000) * 0.01)
		r.ObserveAirtime(0.057)
	}
	close(stop)
	wg.Wait()

	s := r.Snapshot()
	if s.Counters.Generated != iters {
		t.Errorf("Generated = %d, want %d", s.Counters.Generated, iters)
	}
	if s.Counters.ServerFresh != 2*iters {
		t.Errorf("ServerFresh = %d, want %d", s.Counters.ServerFresh, 2*iters)
	}
	if s.Counters.RelayHops != 3*iters {
		t.Errorf("RelayHops = %d, want %d", s.Counters.RelayHops, 3*iters)
	}
	if s.Delay.N() != iters || s.Airtime.N() != iters {
		t.Errorf("hist n = %d/%d, want %d", s.Delay.N(), s.Airtime.N(), iters)
	}
	if got := s.SF.Total(); got != iters {
		t.Errorf("SF total = %d, want %d", got, iters)
	}
}

// TestLiveSnapshotMatchesSerialAdd locks the quiesced-snapshot exactness:
// recording a value stream through the atomic Recorder must produce the
// bit-identical Histogram a plain Add loop produces.
func TestLiveSnapshotMatchesSerialAdd(t *testing.T) {
	r := NewRecorder()
	var want Histogram
	vals := []float64{0, 0.0001, 0.001, 0.5, 1.0 / 3, 2, 300, 1e6, 5e6, -1}
	for i := 0; i < 997; i++ {
		v := vals[i%len(vals)] * (1 + float64(i)/1000)
		r.ObserveDelay(v)
		want.Add(v)
	}
	got := r.Snapshot().Delay
	if got != want {
		t.Fatalf("live histogram diverged from serial Add:\n got %v\nwant %v", got.String(), want.String())
	}
}

// TestForEachOctaveCum checks the Prometheus projection: cumulative counts
// at octave edges must be consistent, monotone, and end at the total.
func TestForEachOctaveCum(t *testing.T) {
	var h Histogram
	vals := []float64{0, 0.0005, 0.002, 0.01, 1, 1.5, 100, 3e6}
	for _, v := range vals {
		h.Add(v)
	}
	var edges []float64
	var cums []uint64
	h.ForEachOctaveCum(func(le float64, cum uint64) {
		edges = append(edges, le)
		cums = append(cums, cum)
	})
	if len(edges) != histOctaves+2 {
		t.Fatalf("got %d edges, want %d", len(edges), histOctaves+2)
	}
	if edges[0] != 0.0009765625 { // 2^-10: the exact bottom of the layout
		t.Errorf("first edge = %v, want 2^-10", edges[0])
	}
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			t.Fatalf("cumulative counts not monotone at %d: %v", i, cums)
		}
	}
	if cums[0] != 2 { // 0 and 0.0005 are below 2^-10
		t.Errorf("underflow cum = %d, want 2", cums[0])
	}
	if last := cums[len(cums)-1]; last != uint64(len(vals)) {
		t.Errorf("+Inf cum = %d, want %d", last, len(vals))
	}
	if got := cums[len(cums)-2]; got != uint64(len(vals))-1 {
		t.Errorf("top-edge cum = %d, want %d (3e6 overflows 2^21)", got, len(vals)-1)
	}
}
