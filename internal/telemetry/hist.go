package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
)

// The histogram layout is log-linear and fixed at compile time: every
// Histogram in the program buckets identically, so merging two histograms is
// exact (bucket-wise count addition, no re-binning error). Values are
// non-negative float64 seconds. Each power-of-two octave between 2^histMinExp
// and 2^histMaxExp is split into histSubBuckets linear sub-buckets, giving a
// worst-case relative quantisation error of 1/histSubBuckets ≈ 3% — tighter
// than the run-to-run noise of any simulated percentile. Values below the
// bottom octave land in a dedicated underflow bucket (they are reported as 0
// for percentile purposes), values above the top octave in an overflow
// bucket reported as the top boundary.
const (
	histMinExp     = -10 // 2^-10 s ≈ 1 ms: finer delays are sub-symbol noise
	histMaxExp     = 21  // 2^21 s ≈ 24 days: beyond any simulated horizon
	histSubBuckets = 32
	histOctaves    = histMaxExp - histMinExp
	histBuckets    = histOctaves*histSubBuckets + 2 // + underflow + overflow
	histUnderflow  = 0
	histOverflow   = histBuckets - 1
)

// Histogram is a fixed-layout log-linear histogram of non-negative values
// (seconds). The zero value is empty and ready to use; Add never allocates,
// and two histograms merge exactly because they share one global layout.
type Histogram struct {
	counts [histBuckets]uint64
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// bucketIndex maps a value to its bucket.
func bucketIndex(v float64) int {
	if v < math.Ldexp(1, histMinExp) {
		return histUnderflow
	}
	if v >= math.Ldexp(1, histMaxExp) {
		return histOverflow
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	octave := exp - 1 - histMinExp
	sub := int((frac - 0.5) * 2 * histSubBuckets)
	if sub >= histSubBuckets {
		sub = histSubBuckets - 1
	}
	return 1 + octave*histSubBuckets + sub
}

// bucketLow returns the lower boundary of bucket i (1..histBuckets-2).
func bucketLow(i int) float64 {
	i--
	octave := i / histSubBuckets
	sub := i % histSubBuckets
	base := math.Ldexp(1, histMinExp+octave)
	return base * (1 + float64(sub)/histSubBuckets)
}

// bucketHigh returns the upper boundary of bucket i (1..histBuckets-2).
func bucketHigh(i int) float64 {
	if i == histBuckets-2 {
		return math.Ldexp(1, histMaxExp)
	}
	return bucketLow(i + 1)
}

// Add records one observation. Negative values are clamped to 0 (underflow).
func (h *Histogram) Add(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	if h.n == 0 {
		h.min, h.max = v, v
	} else {
		if v < h.min {
			h.min = v
		}
		if v > h.max {
			h.max = v
		}
	}
	h.counts[bucketIndex(v)]++
	h.n++
	h.sum += v
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// Sum returns the exact sum of observations.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact mean (0 when empty): the sum is carried alongside
// the buckets, so the mean has no quantisation error.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() float64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Merge folds other into h. Because every Histogram shares one layout the
// merge is exact: merging per-replication histograms yields bit-identical
// percentiles to recording every observation into one histogram.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.n == 0 {
		return
	}
	if h.n == 0 {
		h.min, h.max = other.min, other.max
	} else {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
}

// Quantile returns an estimate of the q-th quantile (0 ≤ q ≤ 1): the lower
// boundary of the bucket holding the rank-⌈q·n⌉ observation, interpolated
// linearly within the bucket, clamped to the observed min/max. It returns 0
// when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen < rank {
			continue
		}
		var lo, hi float64
		switch i {
		case histUnderflow:
			// Sub-millisecond values: interpolation is meaningless at
			// this resolution, report the observed minimum.
			return h.min
		case histOverflow:
			lo, hi = math.Ldexp(1, histMaxExp), h.max
		default:
			lo, hi = bucketLow(i), bucketHigh(i)
		}
		// Interpolate the rank within this bucket's span.
		pos := float64(rank-(seen-c)) / float64(c)
		v := lo + pos*(hi-lo)
		if v < h.min {
			v = h.min
		}
		if v > h.max {
			v = h.max
		}
		return v
	}
	return h.max
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100).
func (h *Histogram) Percentile(p float64) float64 { return h.Quantile(p / 100) }

// ForEachOctaveCum walks the histogram as cumulative counts at the layout's
// power-of-two octave edges: fn is called once per edge from 2^histMinExp up
// to 2^histMaxExp (histOctaves+1 calls) with the exact number of
// observations ≤ that edge, then a final time with le = +Inf and the total.
// This is the natural Prometheus-histogram projection of the fixed layout —
// the edges are exact bucket boundaries, so no observation is re-binned.
func (h *Histogram) ForEachOctaveCum(fn func(le float64, cum uint64)) {
	cum := h.counts[histUnderflow]
	fn(math.Ldexp(1, histMinExp), cum)
	for o := 0; o < histOctaves; o++ {
		for s := 0; s < histSubBuckets; s++ {
			cum += h.counts[1+o*histSubBuckets+s]
		}
		fn(math.Ldexp(1, histMinExp+o+1), cum)
	}
	cum += h.counts[histOverflow]
	fn(math.Inf(1), cum)
}

// histogramJSON is the wire form of a Histogram: sparse (index, count) pairs
// plus the exact moments, so stored artefacts survive layout-preserving code
// changes and stay compact.
type histogramJSON struct {
	N      uint64   `json:"n"`
	Sum    float64  `json:"sum"`
	Min    float64  `json:"min"`
	Max    float64  `json:"max"`
	Bucket []int    `json:"bucket,omitempty"`
	Count  []uint64 `json:"count,omitempty"`
	Layout [3]int   `json:"layout"` // minExp, maxExp, subBuckets
}

// MarshalJSON encodes the histogram sparsely. The receiver is a value so
// that Histogram-typed struct fields (Snapshot) marshal correctly even when
// not addressable.
func (h Histogram) MarshalJSON() ([]byte, error) {
	w := histogramJSON{
		N: h.n, Sum: h.sum, Min: h.min, Max: h.max,
		Layout: [3]int{histMinExp, histMaxExp, histSubBuckets},
	}
	for i, c := range h.counts {
		if c != 0 {
			w.Bucket = append(w.Bucket, i)
			w.Count = append(w.Count, c)
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a histogram, rejecting artefacts written under a
// different bucket layout (they cannot merge exactly).
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Layout != [3]int{histMinExp, histMaxExp, histSubBuckets} {
		return fmt.Errorf("telemetry: histogram layout %v incompatible with %v",
			w.Layout, [3]int{histMinExp, histMaxExp, histSubBuckets})
	}
	if len(w.Bucket) != len(w.Count) {
		return fmt.Errorf("telemetry: histogram bucket/count length mismatch %d != %d",
			len(w.Bucket), len(w.Count))
	}
	*h = Histogram{n: w.N, sum: w.Sum, min: w.Min, max: w.Max}
	for j, i := range w.Bucket {
		if i < 0 || i >= histBuckets {
			return fmt.Errorf("telemetry: histogram bucket index %d out of range", i)
		}
		h.counts[i] = w.Count[j]
	}
	return nil
}

// String summarises the histogram for diagnostics.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist{n=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g}",
		h.n, h.Mean(), h.Percentile(50), h.Percentile(95), h.Percentile(99), h.Max())
}
