package telemetry

import (
	"bytes"
	"math"
	"testing"

	"mlorass/internal/rng"
)

// histState canonicalises the order-independent part of a histogram for
// exact equality checks: the JSON encoding minus the carried sum. Bucket
// counts, n, min, and max merge exactly in any order — they are what the
// quantiles read — while the float sum is deterministic for a fixed merge
// order but may differ in its last ulp across orders (float addition is not
// associative), so sameSum checks it to relative tolerance instead.
func histState(t *testing.T, h *Histogram) []byte {
	t.Helper()
	c := *h
	c.sum = 0
	b, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// sameSum compares carried sums to floating-point reassociation tolerance.
func sameSum(a, b *Histogram) bool {
	d := math.Abs(a.sum - b.sum)
	scale := math.Max(math.Abs(a.sum), math.Abs(b.sum))
	return d <= 1e-9*math.Max(scale, 1)
}

// randomHist draws n observations from a mixture of scales so samples cover
// underflow, every octave band, and overflow buckets.
func randomHist(r *rng.Source, n int) *Histogram {
	h := &Histogram{}
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			h.Add(r.Uniform(0, 1e-3)) // underflow band
		case 1:
			h.Add(r.Uniform(0, 10))
		case 2:
			h.Add(math.Exp(r.Uniform(0, 14))) // log-spread across octaves
		default:
			h.Add(r.Uniform(1e6, 5e6)) // near/beyond the top octave
		}
	}
	return h
}

// TestHistogramMergeCommutative: a ⊕ b == b ⊕ a, over random histograms
// including empty ones.
func TestHistogramMergeCommutative(t *testing.T) {
	r := rng.New(0xc0441)
	for trial := 0; trial < 200; trial++ {
		a := randomHist(r, r.Intn(200))
		b := randomHist(r, r.Intn(200))
		ab, ba := *a, *b
		ab.Merge(b)
		ba.Merge(a)
		if !bytes.Equal(histState(t, &ab), histState(t, &ba)) || !sameSum(&ab, &ba) {
			t.Fatalf("trial %d: a⊕b != b⊕a\n a⊕b %s\n b⊕a %s", trial, ab.String(), ba.String())
		}
	}
}

// TestHistogramMergeAssociative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
func TestHistogramMergeAssociative(t *testing.T) {
	r := rng.New(0xa550c)
	for trial := 0; trial < 200; trial++ {
		a := randomHist(r, r.Intn(150))
		b := randomHist(r, r.Intn(150))
		c := randomHist(r, r.Intn(150))

		left := *a
		left.Merge(b)
		left.Merge(c)

		bc := *b
		bc.Merge(c)
		right := *a
		right.Merge(&bc)

		if !bytes.Equal(histState(t, &left), histState(t, &right)) || !sameSum(&left, &right) {
			t.Fatalf("trial %d: (a⊕b)⊕c != a⊕(b⊕c)\n left %s\n right %s", trial, left.String(), right.String())
		}
	}
}

// TestHistogramMergeIdentity: merging an empty histogram (either side) is a
// no-op; min/max survive the empty-side special cases.
func TestHistogramMergeIdentity(t *testing.T) {
	r := rng.New(0x1d)
	for trial := 0; trial < 50; trial++ {
		a := randomHist(r, 1+r.Intn(100))
		var empty Histogram

		withEmpty := *a
		withEmpty.Merge(&empty)
		if !bytes.Equal(histState(t, a), histState(t, &withEmpty)) {
			t.Fatal("a ⊕ 0 != a")
		}
		ontoEmpty := Histogram{}
		ontoEmpty.Merge(a)
		if !bytes.Equal(histState(t, a), histState(t, &ontoEmpty)) {
			t.Fatal("0 ⊕ a != a")
		}
		ontoNil := *a
		ontoNil.Merge(nil)
		if !bytes.Equal(histState(t, a), histState(t, &ontoNil)) {
			t.Fatal("a ⊕ nil != a")
		}
	}
}

// TestHistogramMergeThenQuantileEqualsPooled is the replication-exactness
// property the telemetry layer's percentile tables rest on: recording a
// population shard-by-shard and merging the shards yields bit-identical
// quantiles (and moments) to recording every observation into one histogram.
func TestHistogramMergeThenQuantileEqualsPooled(t *testing.T) {
	r := rng.New(0x900fed)
	quantiles := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}
	for trial := 0; trial < 100; trial++ {
		shards := 2 + r.Intn(6)
		var merged Histogram
		var pooled Histogram
		parts := make([]*Histogram, shards)
		for i := range parts {
			parts[i] = &Histogram{}
		}
		n := 50 + r.Intn(500)
		for i := 0; i < n; i++ {
			var v float64
			switch r.Intn(3) {
			case 0:
				v = r.Uniform(0, 1e-3)
			case 1:
				v = math.Exp(r.Uniform(-5, 16))
			default:
				v = r.Uniform(0, 5e6)
			}
			pooled.Add(v)
			parts[r.Intn(shards)].Add(v)
		}
		for _, p := range parts {
			merged.Merge(p)
		}
		if !bytes.Equal(histState(t, &merged), histState(t, &pooled)) || !sameSum(&merged, &pooled) {
			t.Fatalf("trial %d: merged state differs from pooled state", trial)
		}
		for _, q := range quantiles {
			mq, pq := merged.Quantile(q), pooled.Quantile(q)
			if mq != pq || math.IsNaN(mq) {
				t.Fatalf("trial %d: q=%v merged %v != pooled %v", trial, q, mq, pq)
			}
		}
		if merged.N() != pooled.N() ||
			merged.Min() != pooled.Min() || merged.Max() != pooled.Max() {
			t.Fatalf("trial %d: merged moments differ from pooled", trial)
		}
	}
}

func TestSFCounts(t *testing.T) {
	var a, b SFCounts
	a.Add(7)
	a.Add(7)
	a.Add(12)
	b.Add(9)
	b.Add(13) // ignored
	b.Add(6)  // ignored
	if a.Total() != 3 || b.Total() != 1 {
		t.Fatalf("totals %d/%d, want 3/1", a.Total(), b.Total())
	}
	a.Merge(b)
	if a.Total() != 4 || a[0] != 2 || a[2] != 1 || a[5] != 1 {
		t.Fatalf("merged counts %v", a)
	}
	want := (7.0 + 7 + 12 + 9) / 4
	if got := a.MeanSF(); got != want {
		t.Fatalf("MeanSF = %v, want %v", got, want)
	}
	var empty SFCounts
	if empty.MeanSF() != 0 {
		t.Fatal("empty MeanSF must be 0")
	}
}
