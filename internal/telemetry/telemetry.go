// Package telemetry is the simulator's streaming observability layer: it
// provides allocation-free metric recorders for the simulation hot path
// (counters and log-linear histograms that merge exactly across replicated
// runs, yielding true cross-replication percentiles instead of mean ± CI
// only) and an optional sampled per-packet event trace behind pluggable
// sinks (JSONL, CSV, in-memory).
//
// Each simulation run owns one Recorder — recorders are per-worker, so
// parallel sweeps never contend — and publishes an immutable Snapshot into
// its Result. Snapshots merge pairwise, which is what turns N replications'
// histograms into one exact population histogram for p50/p95/p99 columns.
package telemetry

import (
	"math"
	"sync/atomic"
	"time"
)

// Counters are the hot-path event tallies of one simulation run. Fields are
// plain uint64s incremented by a single goroutine (each run owns its
// Recorder), so recording costs one add and no allocation.
type Counters struct {
	// Generated counts application messages created by devices.
	Generated uint64
	// FramesOnAir counts LoRa frames transmitted (uplinks + handovers).
	FramesOnAir uint64
	// UplinkDeliveries counts frames decoded by a gateway.
	UplinkDeliveries uint64
	// ServerFresh counts messages accepted by the network server as new.
	ServerFresh uint64
	// ServerDuplicates counts message copies the server deduplicated.
	ServerDuplicates uint64
	// RelayHops counts successful device-to-device message transfers.
	RelayHops uint64
	// QueueDrops counts messages dropped by full device queues.
	QueueDrops uint64
	// KernelEvents counts discrete events executed by the simulation
	// kernel (populated only while tracing, via the eventsim probe).
	KernelEvents uint64
	// TraceEvents counts trace records emitted to the sink.
	TraceEvents uint64

	// MAC-subsystem tallies (all zero when Config.MAC is zero-valued).

	// Downlinks counts gateway downlink frames put on the air.
	Downlinks uint64
	// DownlinkDeliveries counts downlinks decoded by their device.
	DownlinkDeliveries uint64
	// DownlinkDrops counts downlinks the per-gateway duty budget could not
	// place in either receive window.
	DownlinkDrops uint64
	// AckTimeouts counts confirmed uplinks whose ack window closed unacked.
	AckTimeouts uint64
	// Retransmissions counts confirmed-uplink retransmissions after an ack
	// timeout.
	Retransmissions uint64
	// ADRCommands counts LinkADRReq commands the network server issued.
	ADRCommands uint64
	// ADRApplied counts LinkADRReq commands devices received and applied.
	ADRApplied uint64
}

// Merge adds other's tallies into c.
func (c *Counters) Merge(other Counters) {
	c.Generated += other.Generated
	c.FramesOnAir += other.FramesOnAir
	c.UplinkDeliveries += other.UplinkDeliveries
	c.ServerFresh += other.ServerFresh
	c.ServerDuplicates += other.ServerDuplicates
	c.RelayHops += other.RelayHops
	c.QueueDrops += other.QueueDrops
	c.KernelEvents += other.KernelEvents
	c.TraceEvents += other.TraceEvents
	c.Downlinks += other.Downlinks
	c.DownlinkDeliveries += other.DownlinkDeliveries
	c.DownlinkDrops += other.DownlinkDrops
	c.AckTimeouts += other.AckTimeouts
	c.Retransmissions += other.Retransmissions
	c.ADRCommands += other.ADRCommands
	c.ADRApplied += other.ADRApplied
}

// SFCounts tallies uplink frames per spreading factor: index 0 is SF7, index
// 5 is SF12. It is the coarse "where did ADR move the network" histogram —
// exact under merge like every fixed-layout counter.
type SFCounts [6]uint64

// Add counts one uplink frame at the given spreading factor (7..12);
// out-of-range values are ignored.
func (s *SFCounts) Add(sf int) {
	if sf < 7 || sf > 12 {
		return
	}
	s[sf-7]++
}

// Merge folds other into s.
func (s *SFCounts) Merge(other SFCounts) {
	for i, c := range other {
		s[i] += c
	}
}

// Total returns the number of counted frames.
func (s SFCounts) Total() uint64 {
	var t uint64
	for _, c := range s {
		t += c
	}
	return t
}

// MeanSF returns the frame-weighted mean spreading factor (0 when empty).
func (s SFCounts) MeanSF() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	var sum uint64
	for i, c := range s {
		sum += uint64(i+7) * c
	}
	return float64(sum) / float64(t)
}

// Recorder accumulates one run's metrics. A nil *Recorder is a valid no-op
// recorder: every method checks the receiver, so instrumented call sites stay
// branch-cheap when telemetry is disabled.
//
// Concurrency contract: exactly one goroutine (the simulation that owns the
// recorder) may record; any number of goroutines may call Snapshot at any
// time — a live /metrics scrape never tears a counter. Internally every word
// is atomic, and the single-writer discipline means recording needs no
// read-modify-write loops. A Snapshot taken mid-run may straddle an
// in-flight observation (histogram bucket sums can briefly lead the moment
// fields); a Snapshot taken after the run quiesces is exact, which is what
// keeps golden results bit-identical.
type Recorder struct {
	c atomicCounters
	// delay buckets end-to-end delays of delivered messages in seconds.
	delay liveHist
	// airtime buckets transmitted frames' time-on-air in seconds.
	airtime liveHist
	// sf tallies uplink frames per spreading factor.
	sf [6]atomic.Uint64
}

// atomicCounters mirrors Counters field-for-field with atomic words, so one
// writer can keep counting while scrapers read. DownlinkDrops and ADRCommands
// have no Add method (they are folded in from subsystem totals after the
// run), matching the plain Counters behaviour.
type atomicCounters struct {
	generated          atomic.Uint64
	framesOnAir        atomic.Uint64
	uplinkDeliveries   atomic.Uint64
	serverFresh        atomic.Uint64
	serverDuplicates   atomic.Uint64
	relayHops          atomic.Uint64
	queueDrops         atomic.Uint64
	kernelEvents       atomic.Uint64
	traceEvents        atomic.Uint64
	downlinks          atomic.Uint64
	downlinkDeliveries atomic.Uint64
	ackTimeouts        atomic.Uint64
	retransmissions    atomic.Uint64
	adrApplied         atomic.Uint64
}

func (a *atomicCounters) snapshot() Counters {
	return Counters{
		Generated:          a.generated.Load(),
		FramesOnAir:        a.framesOnAir.Load(),
		UplinkDeliveries:   a.uplinkDeliveries.Load(),
		ServerFresh:        a.serverFresh.Load(),
		ServerDuplicates:   a.serverDuplicates.Load(),
		RelayHops:          a.relayHops.Load(),
		QueueDrops:         a.queueDrops.Load(),
		KernelEvents:       a.kernelEvents.Load(),
		TraceEvents:        a.traceEvents.Load(),
		Downlinks:          a.downlinks.Load(),
		DownlinkDeliveries: a.downlinkDeliveries.Load(),
		AckTimeouts:        a.ackTimeouts.Load(),
		Retransmissions:    a.retransmissions.Load(),
		ADRApplied:         a.adrApplied.Load(),
	}
}

// liveHist is the Recorder-internal writer side of a Histogram: the same
// fixed layout with every word atomic. The single writer stores the moment
// fields with plain load/op/store (no CAS needed) and publishes n last, so a
// reader that observes n > 0 always sees initialised min/max. Bucket counts
// use atomic adds; a mid-run snapshot may count an in-flight observation in
// a bucket before it reaches sum — self-consistent and strictly monotonic,
// and exact once the writer quiesces.
type liveHist struct {
	counts  [histBuckets]atomic.Uint64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
	n       atomic.Uint64
}

func (h *liveHist) add(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	n := h.n.Load()
	if n == 0 {
		h.minBits.Store(math.Float64bits(v))
		h.maxBits.Store(math.Float64bits(v))
	} else {
		if v < math.Float64frombits(h.minBits.Load()) {
			h.minBits.Store(math.Float64bits(v))
		}
		if v > math.Float64frombits(h.maxBits.Load()) {
			h.maxBits.Store(math.Float64bits(v))
		}
	}
	h.counts[bucketIndex(v)].Add(1)
	h.sumBits.Store(math.Float64bits(math.Float64frombits(h.sumBits.Load()) + v))
	h.n.Store(n + 1)
}

// snapshot converts the live state to a plain Histogram. The count total is
// summed from the buckets (not the published n) so the snapshot's buckets
// always account for every counted observation.
func (h *liveHist) snapshot() Histogram {
	var out Histogram
	if h.n.Load() == 0 {
		return out
	}
	out.min = math.Float64frombits(h.minBits.Load())
	out.max = math.Float64frombits(h.maxBits.Load())
	out.sum = math.Float64frombits(h.sumBits.Load())
	for i := range h.counts {
		c := h.counts[i].Load()
		out.counts[i] = c
		out.n += c
	}
	return out
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// AddGenerated counts one generated application message.
func (r *Recorder) AddGenerated() {
	if r != nil {
		r.c.generated.Add(1)
	}
}

// AddFrame counts one transmitted frame.
func (r *Recorder) AddFrame() {
	if r != nil {
		r.c.framesOnAir.Add(1)
	}
}

// AddUplinkDelivery counts one frame decoded by a gateway.
func (r *Recorder) AddUplinkDelivery() {
	if r != nil {
		r.c.uplinkDeliveries.Add(1)
	}
}

// AddServerFresh counts n messages newly accepted by the server.
func (r *Recorder) AddServerFresh(n int) {
	if r != nil {
		r.c.serverFresh.Add(uint64(n))
	}
}

// AddServerDuplicate counts one deduplicated copy.
func (r *Recorder) AddServerDuplicate() {
	if r != nil {
		r.c.serverDuplicates.Add(1)
	}
}

// AddRelayHops counts n messages moved by a successful handover.
func (r *Recorder) AddRelayHops(n int) {
	if r != nil {
		r.c.relayHops.Add(uint64(n))
	}
}

// AddQueueDrop counts one message dropped by a full queue.
func (r *Recorder) AddQueueDrop() {
	if r != nil {
		r.c.queueDrops.Add(1)
	}
}

// AddKernelEvent counts one executed kernel event (eventsim probe).
func (r *Recorder) AddKernelEvent() {
	if r != nil {
		r.c.kernelEvents.Add(1)
	}
}

// OnEvent implements the eventsim Probe shape: one clock-stamped callback
// per executed kernel event.
func (r *Recorder) OnEvent(time.Duration) { r.AddKernelEvent() }

// AddTraceEvent counts one emitted trace record.
func (r *Recorder) AddTraceEvent() {
	if r != nil {
		r.c.traceEvents.Add(1)
	}
}

// AddDownlink counts one gateway downlink frame transmitted.
func (r *Recorder) AddDownlink() {
	if r != nil {
		r.c.downlinks.Add(1)
	}
}

// AddDownlinkDelivery counts one downlink decoded by its device.
func (r *Recorder) AddDownlinkDelivery() {
	if r != nil {
		r.c.downlinkDeliveries.Add(1)
	}
}

// AddAckTimeout counts one confirmed uplink whose ack never arrived.
func (r *Recorder) AddAckTimeout() {
	if r != nil {
		r.c.ackTimeouts.Add(1)
	}
}

// AddRetransmission counts one confirmed-uplink retransmission.
func (r *Recorder) AddRetransmission() {
	if r != nil {
		r.c.retransmissions.Add(1)
	}
}

// AddADRApplied counts one LinkADRReq received and applied by a device.
func (r *Recorder) AddADRApplied() {
	if r != nil {
		r.c.adrApplied.Add(1)
	}
}

// AddUplinkSF counts one uplink frame transmitted at the given spreading
// factor (7..12); out-of-range values are ignored.
func (r *Recorder) AddUplinkSF(sf int) {
	if r != nil && sf >= 7 && sf <= 12 {
		r.sf[sf-7].Add(1)
	}
}

// ObserveDelay records one delivered message's end-to-end delay in seconds.
func (r *Recorder) ObserveDelay(seconds float64) {
	if r == nil {
		return
	}
	r.delay.add(seconds)
}

// ObserveAirtime records one transmitted frame's time-on-air in seconds.
func (r *Recorder) ObserveAirtime(seconds float64) {
	if r == nil {
		return
	}
	r.airtime.add(seconds)
}

// Snapshot returns a copy of the recorder's state (zero Snapshot when nil).
// Safe to call from any goroutine while the owning simulation is still
// recording; see the Recorder concurrency contract.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Counters: r.c.snapshot(),
		Delay:    r.delay.snapshot(),
		Airtime:  r.airtime.snapshot(),
	}
	for i := range r.sf {
		s.SF[i] = r.sf[i].Load()
	}
	return s
}

// Snapshot is one run's immutable telemetry: counters plus the delay and
// airtime histograms and the uplink SF distribution. Snapshots from
// replicated runs merge exactly.
type Snapshot struct {
	Counters Counters  `json:"counters"`
	Delay    Histogram `json:"delay"`
	Airtime  Histogram `json:"airtime"`
	// SF is the uplink spreading-factor distribution (all frames land on
	// the configured SF when ADR is off).
	SF SFCounts `json:"sf_uplinks"`
}

// Merge folds other into s (exact: see Histogram.Merge).
func (s *Snapshot) Merge(other Snapshot) {
	s.Counters.Merge(other.Counters)
	s.Delay.Merge(&other.Delay)
	s.Airtime.Merge(&other.Airtime)
	s.SF.Merge(other.SF)
}
