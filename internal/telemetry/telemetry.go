// Package telemetry is the simulator's streaming observability layer: it
// provides allocation-free metric recorders for the simulation hot path
// (counters and log-linear histograms that merge exactly across replicated
// runs, yielding true cross-replication percentiles instead of mean ± CI
// only) and an optional sampled per-packet event trace behind pluggable
// sinks (JSONL, CSV, in-memory).
//
// Each simulation run owns one Recorder — recorders are per-worker, so
// parallel sweeps never contend — and publishes an immutable Snapshot into
// its Result. Snapshots merge pairwise, which is what turns N replications'
// histograms into one exact population histogram for p50/p95/p99 columns.
package telemetry

import "time"

// Counters are the hot-path event tallies of one simulation run. Fields are
// plain uint64s incremented by a single goroutine (each run owns its
// Recorder), so recording costs one add and no allocation.
type Counters struct {
	// Generated counts application messages created by devices.
	Generated uint64
	// FramesOnAir counts LoRa frames transmitted (uplinks + handovers).
	FramesOnAir uint64
	// UplinkDeliveries counts frames decoded by a gateway.
	UplinkDeliveries uint64
	// ServerFresh counts messages accepted by the network server as new.
	ServerFresh uint64
	// ServerDuplicates counts message copies the server deduplicated.
	ServerDuplicates uint64
	// RelayHops counts successful device-to-device message transfers.
	RelayHops uint64
	// QueueDrops counts messages dropped by full device queues.
	QueueDrops uint64
	// KernelEvents counts discrete events executed by the simulation
	// kernel (populated only while tracing, via the eventsim probe).
	KernelEvents uint64
	// TraceEvents counts trace records emitted to the sink.
	TraceEvents uint64

	// MAC-subsystem tallies (all zero when Config.MAC is zero-valued).

	// Downlinks counts gateway downlink frames put on the air.
	Downlinks uint64
	// DownlinkDeliveries counts downlinks decoded by their device.
	DownlinkDeliveries uint64
	// DownlinkDrops counts downlinks the per-gateway duty budget could not
	// place in either receive window.
	DownlinkDrops uint64
	// AckTimeouts counts confirmed uplinks whose ack window closed unacked.
	AckTimeouts uint64
	// Retransmissions counts confirmed-uplink retransmissions after an ack
	// timeout.
	Retransmissions uint64
	// ADRCommands counts LinkADRReq commands the network server issued.
	ADRCommands uint64
	// ADRApplied counts LinkADRReq commands devices received and applied.
	ADRApplied uint64
}

// Merge adds other's tallies into c.
func (c *Counters) Merge(other Counters) {
	c.Generated += other.Generated
	c.FramesOnAir += other.FramesOnAir
	c.UplinkDeliveries += other.UplinkDeliveries
	c.ServerFresh += other.ServerFresh
	c.ServerDuplicates += other.ServerDuplicates
	c.RelayHops += other.RelayHops
	c.QueueDrops += other.QueueDrops
	c.KernelEvents += other.KernelEvents
	c.TraceEvents += other.TraceEvents
	c.Downlinks += other.Downlinks
	c.DownlinkDeliveries += other.DownlinkDeliveries
	c.DownlinkDrops += other.DownlinkDrops
	c.AckTimeouts += other.AckTimeouts
	c.Retransmissions += other.Retransmissions
	c.ADRCommands += other.ADRCommands
	c.ADRApplied += other.ADRApplied
}

// SFCounts tallies uplink frames per spreading factor: index 0 is SF7, index
// 5 is SF12. It is the coarse "where did ADR move the network" histogram —
// exact under merge like every fixed-layout counter.
type SFCounts [6]uint64

// Add counts one uplink frame at the given spreading factor (7..12);
// out-of-range values are ignored.
func (s *SFCounts) Add(sf int) {
	if sf < 7 || sf > 12 {
		return
	}
	s[sf-7]++
}

// Merge folds other into s.
func (s *SFCounts) Merge(other SFCounts) {
	for i, c := range other {
		s[i] += c
	}
}

// Total returns the number of counted frames.
func (s SFCounts) Total() uint64 {
	var t uint64
	for _, c := range s {
		t += c
	}
	return t
}

// MeanSF returns the frame-weighted mean spreading factor (0 when empty).
func (s SFCounts) MeanSF() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	var sum uint64
	for i, c := range s {
		sum += uint64(i+7) * c
	}
	return float64(sum) / float64(t)
}

// Recorder accumulates one run's metrics. A nil *Recorder is a valid no-op
// recorder: every method checks the receiver, so instrumented call sites stay
// branch-cheap when telemetry is disabled. Not safe for concurrent use; each
// simulation (worker) owns its own.
type Recorder struct {
	counters Counters
	// delay buckets end-to-end delays of delivered messages in seconds.
	delay Histogram
	// airtime buckets transmitted frames' time-on-air in seconds.
	airtime Histogram
	// sf tallies uplink frames per spreading factor.
	sf SFCounts
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// AddGenerated counts one generated application message.
func (r *Recorder) AddGenerated() {
	if r != nil {
		r.counters.Generated++
	}
}

// AddFrame counts one transmitted frame.
func (r *Recorder) AddFrame() {
	if r != nil {
		r.counters.FramesOnAir++
	}
}

// AddUplinkDelivery counts one frame decoded by a gateway.
func (r *Recorder) AddUplinkDelivery() {
	if r != nil {
		r.counters.UplinkDeliveries++
	}
}

// AddServerFresh counts n messages newly accepted by the server.
func (r *Recorder) AddServerFresh(n int) {
	if r != nil {
		r.counters.ServerFresh += uint64(n)
	}
}

// AddServerDuplicate counts one deduplicated copy.
func (r *Recorder) AddServerDuplicate() {
	if r != nil {
		r.counters.ServerDuplicates++
	}
}

// AddRelayHops counts n messages moved by a successful handover.
func (r *Recorder) AddRelayHops(n int) {
	if r != nil {
		r.counters.RelayHops += uint64(n)
	}
}

// AddQueueDrop counts one message dropped by a full queue.
func (r *Recorder) AddQueueDrop() {
	if r != nil {
		r.counters.QueueDrops++
	}
}

// AddKernelEvent counts one executed kernel event (eventsim probe).
func (r *Recorder) AddKernelEvent() {
	if r != nil {
		r.counters.KernelEvents++
	}
}

// OnEvent implements the eventsim Probe shape: one clock-stamped callback
// per executed kernel event.
func (r *Recorder) OnEvent(time.Duration) { r.AddKernelEvent() }

// AddTraceEvent counts one emitted trace record.
func (r *Recorder) AddTraceEvent() {
	if r != nil {
		r.counters.TraceEvents++
	}
}

// AddDownlink counts one gateway downlink frame transmitted.
func (r *Recorder) AddDownlink() {
	if r != nil {
		r.counters.Downlinks++
	}
}

// AddDownlinkDelivery counts one downlink decoded by its device.
func (r *Recorder) AddDownlinkDelivery() {
	if r != nil {
		r.counters.DownlinkDeliveries++
	}
}

// AddAckTimeout counts one confirmed uplink whose ack never arrived.
func (r *Recorder) AddAckTimeout() {
	if r != nil {
		r.counters.AckTimeouts++
	}
}

// AddRetransmission counts one confirmed-uplink retransmission.
func (r *Recorder) AddRetransmission() {
	if r != nil {
		r.counters.Retransmissions++
	}
}

// AddADRApplied counts one LinkADRReq received and applied by a device.
func (r *Recorder) AddADRApplied() {
	if r != nil {
		r.counters.ADRApplied++
	}
}

// AddUplinkSF counts one uplink frame transmitted at the given spreading
// factor (7..12).
func (r *Recorder) AddUplinkSF(sf int) {
	if r != nil {
		r.sf.Add(sf)
	}
}

// ObserveDelay records one delivered message's end-to-end delay in seconds.
func (r *Recorder) ObserveDelay(seconds float64) {
	if r == nil {
		return
	}
	r.delay.Add(seconds)
}

// ObserveAirtime records one transmitted frame's time-on-air in seconds.
func (r *Recorder) ObserveAirtime(seconds float64) {
	if r == nil {
		return
	}
	r.airtime.Add(seconds)
}

// Snapshot returns a copy of the recorder's state (zero Snapshot when nil).
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	return Snapshot{Counters: r.counters, Delay: r.delay, Airtime: r.airtime, SF: r.sf}
}

// Snapshot is one run's immutable telemetry: counters plus the delay and
// airtime histograms and the uplink SF distribution. Snapshots from
// replicated runs merge exactly.
type Snapshot struct {
	Counters Counters  `json:"counters"`
	Delay    Histogram `json:"delay"`
	Airtime  Histogram `json:"airtime"`
	// SF is the uplink spreading-factor distribution (all frames land on
	// the configured SF when ADR is off).
	SF SFCounts `json:"sf_uplinks"`
}

// Merge folds other into s (exact: see Histogram.Merge).
func (s *Snapshot) Merge(other Snapshot) {
	s.Counters.Merge(other.Counters)
	s.Delay.Merge(&other.Delay)
	s.Airtime.Merge(&other.Airtime)
	s.SF.Merge(other.SF)
}
