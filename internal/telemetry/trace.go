package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// EventKind classifies a trace record. The kinds follow one message's life:
// generate → relay hops → gateway uplink → server dedup/delivery, plus queue
// drops for losses.
type EventKind string

// Trace event kinds (the `kind` field of a JSONL line).
const (
	// KindGenerate is a message created at its origin device.
	KindGenerate EventKind = "gen"
	// KindRelay is a successful device-to-device handover of the message.
	KindRelay EventKind = "relay"
	// KindUplink is a frame carrying the message decoded by a gateway.
	KindUplink EventKind = "uplink"
	// KindDeliver is the server accepting the message's first copy.
	KindDeliver EventKind = "deliver"
	// KindDuplicate is the server discarding a redundant copy.
	KindDuplicate EventKind = "dup"
	// KindDrop is the message discarded by a full device queue.
	KindDrop EventKind = "drop"
)

// Event is one trace record. Index fields (Dev, Peer, Gw) use -1 when the
// field is not meaningful for the kind.
type Event struct {
	// T is the virtual timestamp.
	T time.Duration `json:"-"`
	// TS is T in seconds (the serialised form).
	TS float64 `json:"t"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Run labels the simulation run (environment/scheme/gateways/seed).
	Run string `json:"run,omitempty"`
	// Msg is the application message ID.
	Msg uint64 `json:"msg"`
	// Dev is the acting device (origin, sender, or dropper), -1 if none.
	// 0 is a valid index, so these fields are always serialised.
	Dev int `json:"dev"`
	// Peer is the handover target device, -1 if none.
	Peer int `json:"peer"`
	// Gw is the receiving gateway, -1 if none.
	Gw int `json:"gw"`
	// Hops is the message's wireless hop count at this event.
	Hops int `json:"hops"`
	// DelayS is the end-to-end delay in seconds (deliver events only).
	DelayS float64 `json:"delay_s,omitempty"`
}

// Sink consumes trace events. Implementations must be safe for concurrent
// Emit calls: parallel sweep workers share one sink.
type Sink interface {
	// Emit writes one event.
	Emit(Event) error
	// Close flushes and releases the sink.
	Close() error
}

// JSONLSink writes one JSON object per line. Safe for concurrent use.
type JSONLSink struct {
	mu  sync.Mutex
	w   *bufio.Writer
	c   io.Closer
	err error
}

// NewJSONLSink wraps w; if w is also an io.Closer, Close closes it.
func NewJSONLSink(w io.Writer) *JSONLSink {
	s := &JSONLSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes the event as one JSON line.
func (s *JSONLSink) Emit(e Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	e.TS = e.T.Seconds()
	b, err := json.Marshal(e)
	if err == nil {
		_, err = s.w.Write(b)
	}
	if err == nil {
		err = s.w.WriteByte('\n')
	}
	s.err = err
	return err
}

// Close flushes buffered lines and closes the underlying writer if owned.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.w.Flush()
	if s.err != nil {
		err = s.err
	}
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// CSVSink writes events as comma-separated rows with a header:
// t,kind,run,msg,dev,peer,gw,hops,delay_s. Safe for concurrent use.
type CSVSink struct {
	mu     sync.Mutex
	w      *bufio.Writer
	c      io.Closer
	err    error
	header bool
}

// NewCSVSink wraps w; if w is also an io.Closer, Close closes it.
func NewCSVSink(w io.Writer) *CSVSink {
	s := &CSVSink{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		s.c = c
	}
	return s
}

// Emit writes the event as one CSV row.
func (s *CSVSink) Emit(e Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if !s.header {
		s.header = true
		if _, err := s.w.WriteString("t,kind,run,msg,dev,peer,gw,hops,delay_s\n"); err != nil {
			s.err = err
			return err
		}
	}
	_, err := fmt.Fprintf(s.w, "%s,%s,%q,%d,%d,%d,%d,%d,%s\n",
		strconv.FormatFloat(e.T.Seconds(), 'g', -1, 64),
		e.Kind, e.Run, e.Msg, e.Dev, e.Peer, e.Gw, e.Hops,
		strconv.FormatFloat(e.DelayS, 'g', -1, 64))
	s.err = err
	return err
}

// Close flushes buffered rows and closes the underlying writer if owned.
func (s *CSVSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	err := s.w.Flush()
	if s.err != nil {
		err = s.err
	}
	if s.c != nil {
		if cerr := s.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// MemSink buffers events in memory, for tests. Safe for concurrent use.
type MemSink struct {
	mu     sync.Mutex
	events []Event
}

// Emit appends the event.
func (s *MemSink) Emit(e Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e.TS = e.T.Seconds()
	s.events = append(s.events, e)
	return nil
}

// Close is a no-op.
func (s *MemSink) Close() error { return nil }

// Events returns a copy of the captured events.
func (s *MemSink) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, len(s.events))
	copy(out, s.events)
	return out
}

// Tracer samples and routes per-packet events to a Sink. A nil *Tracer is a
// valid disabled tracer: Sampled reports false and Emit is a no-op, so the
// hot path pays one nil check when tracing is off.
//
// Sampling is deterministic per message ID — every event of a sampled
// message is emitted, so each traced packet's record is complete — and
// independent of worker interleaving, so the same configuration always
// traces the same packets.
type Tracer struct {
	sink  Sink
	every uint64
}

// NewTracer traces one in every messages through sink (every < 1 means 1:
// trace everything). A nil sink returns a nil (disabled) tracer.
func NewTracer(sink Sink, every int) *Tracer {
	if sink == nil {
		return nil
	}
	if every < 1 {
		every = 1
	}
	return &Tracer{sink: sink, every: uint64(every)}
}

// Sampled reports whether the message is traced. The decision mixes the ID
// through a SplitMix64 finaliser so sampling is unbiased even for the
// sequential IDs the simulator assigns.
func (t *Tracer) Sampled(msgID uint64) bool {
	if t == nil {
		return false
	}
	if t.every == 1 {
		return true
	}
	z := msgID + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return (z^(z>>31))%t.every == 0
}

// Emit forwards one event of an already-Sampled message to the sink. Sink
// errors are sticky in the sink; Emit drops them here to keep the simulation
// path infallible.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	_ = t.sink.Emit(e)
}

// Close closes the underlying sink.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	return t.sink.Close()
}
