package telemetry

import "time"

// This file declares the observability hook shapes the simulation engines
// call into. The implementations live in internal/obs — telemetry only owns
// the contract, so the engine packages (which the determinism lint bans from
// reading the wall clock) never import a clock-bearing package. All hooks
// are optional: a nil sink/attacher disables instrumentation with a single
// branch and zero allocations on the engine side.

// SpanToken is an opaque start mark handed back by SpanSink.StartSpan and
// returned in the matching SpanEnd. Engines treat it as a black box; the
// flight recorder encodes its monotonic start time in it.
type SpanToken int64

// SpanEnd closes one timed phase. Engines fill the identifying fields; the
// sink supplies the wall-clock duration from the token.
type SpanEnd struct {
	// Token is the value StartSpan returned for this span.
	Token SpanToken
	// Name identifies the phase ("kernel", "resolve", "deliver", "merge",
	// "cell"). Call sites pass compile-time constants so ending a span
	// never allocates.
	Name string
	// Shard is the engine shard index, -1 for coordinator-level spans, or a
	// worker index for sweep cells.
	Shard int
	// At is the simulation clock at span end (window start for engine
	// phases, configured duration for sweep cells).
	At time.Duration
	// Attr is one phase-specific magnitude: kernel queue depth for
	// "kernel", cross-tile import fan-out for "resolve", broadcast count
	// for "deliver", merged-fresh count for "merge", cached flag (0/1) for
	// "cell".
	Attr int64
	// Label optionally identifies the work item (sweep cells use
	// "env/scheme/gw=N/rep=N"); empty for engine phases.
	Label string
}

// SpanSink receives phase spans. Implementations must be safe for
// concurrent use: sharded engines end spans from pool goroutines.
type SpanSink interface {
	StartSpan() SpanToken
	EndSpan(SpanEnd)
}

// LiveAttacher is given every run's Recorder for its lifetime, so an
// external scraper can snapshot metrics mid-run (Recorder snapshots are
// concurrency-safe). Attach returns a detach func the engine calls once the
// run quiesces; implementations typically fold the recorder's final
// snapshot into a cumulative base at that point. Attach and detach must be
// safe for concurrent use — sharded engines attach one recorder per shard.
type LiveAttacher interface {
	Attach(r *Recorder) (detach func())
}
