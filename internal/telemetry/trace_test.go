package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestJSONLSinkSchema(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	events := []Event{
		{T: 90 * time.Second, Kind: KindGenerate, Run: "urban/ROBC/gw=15/seed=1", Msg: 7, Dev: 0, Peer: -1, Gw: -1},
		{T: 95 * time.Second, Kind: KindRelay, Msg: 7, Dev: 0, Peer: 3, Gw: -1, Hops: 1},
		{T: 180 * time.Second, Kind: KindUplink, Msg: 7, Dev: 3, Peer: -1, Gw: 2, Hops: 2},
		{T: 180 * time.Second, Kind: KindDeliver, Msg: 7, Dev: -1, Peer: -1, Gw: 2, Hops: 2, DelayS: 90},
	}
	for _, e := range events {
		if err := sink.Emit(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(events) {
		t.Fatalf("got %d lines, want %d", len(lines), len(events))
	}
	// One JSON object per line; field check on the generate line.
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if first["kind"] != "gen" || first["t"] != 90.0 || first["msg"] != 7.0 || first["dev"] != 0.0 {
		t.Fatalf("generate line fields wrong: %v", first)
	}
	if first["run"] != "urban/ROBC/gw=15/seed=1" {
		t.Fatalf("run label missing: %v", first)
	}
	var deliver map[string]any
	if err := json.Unmarshal([]byte(lines[3]), &deliver); err != nil {
		t.Fatal(err)
	}
	if deliver["delay_s"] != 90.0 || deliver["gw"] != 2.0 {
		t.Fatalf("deliver line fields wrong: %v", deliver)
	}
}

func TestCSVSinkHeaderAndRows(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSVSink(&buf)
	if err := sink.Emit(Event{T: time.Second, Kind: KindDrop, Msg: 9, Dev: 4, Peer: -1, Gw: -1}); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want header + 1 row", len(lines))
	}
	if lines[0] != "t,kind,run,msg,dev,peer,gw,hops,delay_s" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != `1,drop,"",9,4,-1,-1,0,0` {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestSinkConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = sink.Emit(Event{Kind: KindGenerate, Msg: uint64(w*1000 + i), Dev: w, Peer: -1, Gw: -1})
			}
		}(w)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 800 {
		t.Fatalf("got %d lines, want 800", len(lines))
	}
	for i, ln := range lines {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("line %d interleaved/corrupt: %q", i, ln)
		}
	}
}

func TestTracerNilIsDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Sampled(1) {
		t.Fatal("nil tracer sampled a message")
	}
	tr.Emit(Event{}) // must not panic
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if NewTracer(nil, 1) != nil {
		t.Fatal("NewTracer(nil sink) should be nil")
	}
}

func TestTracerSamplingDeterministicAndUnbiased(t *testing.T) {
	sink := &MemSink{}
	tr := NewTracer(sink, 10)
	n := 100000
	hits := 0
	for i := 0; i < n; i++ {
		if tr.Sampled(uint64(i)) {
			hits++
		}
	}
	// Deterministic: same IDs, same answer.
	tr2 := NewTracer(&MemSink{}, 10)
	for i := 0; i < 1000; i++ {
		if tr.Sampled(uint64(i)) != tr2.Sampled(uint64(i)) {
			t.Fatal("sampling not deterministic across tracers")
		}
	}
	// Unbiased: ~1 in 10 of sequential IDs.
	got := float64(hits) / float64(n)
	if got < 0.08 || got > 0.12 {
		t.Fatalf("sample rate %.4f, want ~0.1", got)
	}
	// every=1 traces everything.
	all := NewTracer(sink, 1)
	for i := 0; i < 100; i++ {
		if !all.Sampled(uint64(i)) {
			t.Fatal("every=1 skipped a message")
		}
	}
}

func TestMemSinkCapture(t *testing.T) {
	sink := &MemSink{}
	tr := NewTracer(sink, 1)
	tr.Emit(Event{T: 3 * time.Second, Kind: KindUplink, Msg: 1, Dev: 2, Peer: -1, Gw: 0})
	evs := sink.Events()
	if len(evs) != 1 || evs[0].Kind != KindUplink || evs[0].TS != 3 {
		t.Fatalf("captured %v", evs)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.AddGenerated()
	r.AddFrame()
	r.AddUplinkDelivery()
	r.AddServerFresh(3)
	r.AddServerDuplicate()
	r.AddRelayHops(2)
	r.AddQueueDrop()
	r.AddKernelEvent()
	r.AddTraceEvent()
	r.ObserveDelay(1)
	r.ObserveAirtime(1)
	if s := r.Snapshot(); s.Counters != (Counters{}) || s.Delay.N() != 0 {
		t.Fatalf("nil recorder produced non-zero snapshot: %+v", s)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := NewRecorder()
	a.AddGenerated()
	a.AddServerFresh(2)
	a.ObserveDelay(10)
	b := NewRecorder()
	b.AddGenerated()
	b.AddServerDuplicate()
	b.ObserveDelay(30)

	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Counters.Generated != 2 || s.Counters.ServerFresh != 2 || s.Counters.ServerDuplicates != 1 {
		t.Fatalf("counters merge wrong: %+v", s.Counters)
	}
	if s.Delay.N() != 2 || s.Delay.Sum() != 40 {
		t.Fatalf("delay merge wrong: %v", s.Delay.String())
	}
}

// TestRecorderAllocationFree locks the per-worker hot-path contract: one
// counter increment or histogram observation allocates nothing.
func TestRecorderAllocationFree(t *testing.T) {
	r := NewRecorder()
	allocs := testing.AllocsPerRun(1000, func() {
		r.AddGenerated()
		r.AddFrame()
		r.ObserveDelay(300)
		r.ObserveAirtime(0.06)
	})
	if allocs != 0 {
		t.Fatalf("recorder hot path allocates %v per op, want 0", allocs)
	}
}

func BenchmarkRecorderHotPath(b *testing.B) {
	r := NewRecorder()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.AddFrame()
		r.ObserveAirtime(0.0616)
	}
}

func BenchmarkTracerDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Sampled(uint64(i)) {
			tr.Emit(Event{})
		}
	}
}
