package stats

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary not all zeros")
	}
}

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
	// Sample variance of this classic set is 32/7.
	if got := s.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min(), s.Max())
	}
	wantSE := math.Sqrt(32.0/7) / math.Sqrt(8)
	if got := s.StdErr(); math.Abs(got-wantSE) > 1e-12 {
		t.Fatalf("StdErr = %v, want %v", got, wantSE)
	}
}

func TestSummaryAddDuration(t *testing.T) {
	var s Summary
	s.AddDuration(90 * time.Second)
	if got := s.Mean(); got != 90 {
		t.Fatalf("Mean = %v, want seconds", got)
	}
}

func TestSummarySingleSample(t *testing.T) {
	var s Summary
	s.Add(42)
	if s.Variance() != 0 || s.Stddev() != 0 {
		t.Fatal("single-sample variance nonzero")
	}
	if s.Min() != 42 || s.Max() != 42 {
		t.Fatal("single-sample min/max wrong")
	}
}

func TestTimeSeries(t *testing.T) {
	ts, err := NewTimeSeries(10*time.Minute, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ts.Counts()); got != 144 {
		t.Fatalf("bucket count = %d, want 144", got)
	}
	ts.Record(0, 1)
	ts.Record(9*time.Minute+59*time.Second, 2)
	ts.Record(10*time.Minute, 5)
	counts := ts.Counts()
	if counts[0] != 3 || counts[1] != 5 {
		t.Fatalf("counts = %v %v", counts[0], counts[1])
	}
	if ts.Total() != 8 {
		t.Fatalf("Total = %d", ts.Total())
	}
}

func TestTimeSeriesClamping(t *testing.T) {
	ts, err := NewTimeSeries(time.Hour, 2*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts.Record(-time.Hour, 1)
	ts.Record(100*time.Hour, 1)
	counts := ts.Counts()
	if counts[0] != 1 || counts[len(counts)-1] != 1 {
		t.Fatalf("edge clamping failed: %v", counts)
	}
}

func TestTimeSeriesWindowSum(t *testing.T) {
	ts, err := NewTimeSeries(time.Hour, 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0; h < 4; h++ {
		ts.Record(time.Duration(h)*time.Hour, h+1) // 1,2,3,4
	}
	if got := ts.WindowSum(time.Hour, 3*time.Hour); got != 5 {
		t.Fatalf("WindowSum = %d, want 5", got)
	}
	if got := ts.WindowSum(0, 100*time.Hour); got != 10 {
		t.Fatalf("full WindowSum = %d, want 10", got)
	}
}

func TestTimeSeriesValidation(t *testing.T) {
	if _, err := NewTimeSeries(0, time.Hour); err == nil {
		t.Fatal("zero bin accepted")
	}
	if _, err := NewTimeSeries(time.Hour, 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{0, 1.9, 2, 5, 9.9, -3, 42} {
		h.Add(x)
	}
	counts := h.Counts()
	if counts[0] != 3 { // 0, 1.9, and clamped -3
		t.Fatalf("bin 0 = %d", counts[0])
	}
	if counts[4] != 2 { // 9.9 and clamped 42
		t.Fatalf("bin 4 = %d", counts[4])
	}
	if h.N() != 7 {
		t.Fatalf("N = %d", h.N())
	}
	if got := h.BinCenter(0); got != 1 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Fatal("empty range accepted")
	}
}

func TestPercentile(t *testing.T) {
	sample := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {110, 5},
	}
	for _, tt := range tests {
		if got := Percentile(sample, tt.p); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	sample := []float64{3, 1, 2}
	Percentile(sample, 50)
	if sample[0] != 3 || sample[1] != 1 || sample[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

// Property: Welford mean matches the naive mean for arbitrary samples.
func TestQuickSummaryMeanMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var s Summary
		sum := 0.0
		count := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				continue
			}
			s.Add(x)
			sum += x
			count++
		}
		if count == 0 {
			return s.N() == 0
		}
		naive := sum / float64(count)
		return math.Abs(s.Mean()-naive) <= 1e-6*math.Max(1, math.Abs(naive))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram never loses observations.
func TestQuickHistogramConservation(t *testing.T) {
	f := func(xs []float64) bool {
		h, err := NewHistogram(-100, 100, 13)
		if err != nil {
			return false
		}
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
		}
		total := 0
		for _, c := range h.Counts() {
			total += c
		}
		return uint64(total) == h.N()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTCritical95(t *testing.T) {
	cases := []struct {
		df   int
		want float64
	}{
		{-1, 0}, {0, 0}, {1, 12.706}, {2, 4.303}, {9, 2.262}, {30, 2.042}, {31, 1.960}, {1000, 1.960},
	}
	for _, c := range cases {
		if got := TCritical95(c.df); got != c.want {
			t.Errorf("TCritical95(%d) = %v, want %v", c.df, got, c.want)
		}
	}
	// The table must shrink monotonically toward the normal limit.
	prev := math.Inf(1)
	for df := 1; df <= 40; df++ {
		v := TCritical95(df)
		if v > prev || v < 1.96 {
			t.Fatalf("TCritical95(%d) = %v breaks monotone decay to 1.96", df, v)
		}
		prev = v
	}
}

func TestSummaryCI95(t *testing.T) {
	var s Summary
	if s.CI95() != 0 {
		t.Fatal("empty summary CI not 0")
	}
	s.Add(5)
	if s.CI95() != 0 {
		t.Fatal("single-sample CI not 0")
	}
	s.Add(7)
	// n=2: CI = t(1) * stderr = 12.706 * (sqrt(2)/sqrt(2)) = 12.706.
	if got := s.CI95(); math.Abs(got-12.706) > 1e-9 {
		t.Fatalf("two-sample CI = %v, want 12.706", got)
	}
	// Many identical samples: zero spread, zero CI.
	var z Summary
	for i := 0; i < 100; i++ {
		z.Add(3)
	}
	if z.CI95() != 0 {
		t.Fatalf("zero-variance CI = %v, want 0", z.CI95())
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	var s Summary
	for _, v := range []float64{1.5, -2.25, 1e9, 0.001, 7} {
		s.Add(v)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip changed state: %+v != %+v", back, s)
	}
	// The restored accumulator keeps accumulating identically.
	s.Add(42)
	back.Add(42)
	if back != s {
		t.Fatal("post-decode accumulation diverged")
	}
}

func TestTimeSeriesJSONRoundTrip(t *testing.T) {
	ts, err := NewTimeSeries(10*time.Minute, 4*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ts.Record(5*time.Minute, 3)
	ts.Record(3*time.Hour, 7)
	data, err := json.Marshal(ts)
	if err != nil {
		t.Fatal(err)
	}
	var back TimeSeries
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Bin() != ts.Bin() || back.Total() != ts.Total() {
		t.Fatalf("round trip changed series: %v/%d", back.Bin(), back.Total())
	}
	got, want := back.Counts(), ts.Counts()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestTimeSeriesJSONRejectsMalformed(t *testing.T) {
	var back TimeSeries
	if err := json.Unmarshal([]byte(`{"bin":0,"horizon":100,"counts":[]}`), &back); err == nil {
		t.Fatal("accepted zero bin")
	}
	if err := json.Unmarshal([]byte(`{"bin":1,"horizon":100,"counts":[1,2]}`), &back); err == nil {
		t.Fatal("accepted bucket-count mismatch")
	}
}
