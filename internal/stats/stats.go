// Package stats provides the measurement utilities behind the paper's
// evaluation artefacts: summary statistics (Fig. 8's mean delay with error
// bars), time-bucketed counters (Figs. 9–11 throughput), histograms
// (Figs. 7b, 12), and per-node counters (Fig. 13).
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary accumulates streaming summary statistics via Welford's algorithm.
// The zero value is ready to use.
type Summary struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddDuration records a duration observation in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// N returns the number of observations.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 with < 2 samples).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean (the paper's Fig. 8 error
// bars).
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Stddev() / math.Sqrt(float64(s.n))
}

// tCrit95 holds two-sided Student-t critical values at 95% confidence for
// 1–30 degrees of freedom; beyond that the normal 1.96 is close enough.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided Student-t critical value at 95%
// confidence for df degrees of freedom (0 for df < 1).
func TCritical95(df int) float64 {
	if df < 1 {
		return 0
	}
	if df <= len(tCrit95) {
		return tCrit95[df-1]
	}
	return 1.960
}

// CI95 returns the half-width of the 95% confidence interval of the mean,
// using the Student-t distribution so small replication counts widen the
// interval honestly. It is 0 with fewer than two observations.
func (s *Summary) CI95() float64 {
	if s.n < 2 {
		return 0
	}
	return TCritical95(int(s.n-1)) * s.StdErr()
}

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// String renders "mean ± stderr (n=...)" for reports.
func (s *Summary) String() string {
	return fmt.Sprintf("%.2f ± %.2f (n=%d)", s.Mean(), s.StdErr(), s.n)
}

// TimeSeries counts events in fixed-width time buckets over a horizon: the
// structure behind the msgs-per-10-minutes plots (Figs. 10–11).
type TimeSeries struct {
	bin     time.Duration
	horizon time.Duration
	counts  []int
}

// NewTimeSeries builds a series of horizon/bin buckets. It returns an error
// when bin or horizon are non-positive.
func NewTimeSeries(bin, horizon time.Duration) (*TimeSeries, error) {
	if bin <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("stats: bin %v and horizon %v must be positive", bin, horizon)
	}
	n := int((horizon + bin - 1) / bin)
	return &TimeSeries{bin: bin, horizon: horizon, counts: make([]int, n)}, nil
}

// Record adds count events at the given instant; instants outside the
// horizon are clamped into the edge buckets.
func (ts *TimeSeries) Record(at time.Duration, count int) {
	i := int(at / ts.bin)
	if i < 0 {
		i = 0
	}
	if i >= len(ts.counts) {
		i = len(ts.counts) - 1
	}
	ts.counts[i] += count
}

// Bin returns the bucket width.
func (ts *TimeSeries) Bin() time.Duration { return ts.bin }

// Counts returns a copy of the per-bucket counts.
func (ts *TimeSeries) Counts() []int {
	out := make([]int, len(ts.counts))
	copy(out, ts.counts)
	return out
}

// Total returns the sum over all buckets.
func (ts *TimeSeries) Total() int {
	sum := 0
	for _, c := range ts.counts {
		sum += c
	}
	return sum
}

// WindowSum returns the total over buckets covering [from, to).
func (ts *TimeSeries) WindowSum(from, to time.Duration) int {
	lo := int(from / ts.bin)
	hi := int((to + ts.bin - 1) / ts.bin)
	if lo < 0 {
		lo = 0
	}
	if hi > len(ts.counts) {
		hi = len(ts.counts)
	}
	sum := 0
	for i := lo; i < hi; i++ {
		sum += ts.counts[i]
	}
	return sum
}

// Histogram buckets float64 observations into fixed-width bins over
// [min, max); out-of-range observations land in the edge bins.
type Histogram struct {
	min, width float64
	counts     []int
	n          uint64
}

// NewHistogram builds a histogram with the given number of bins. It returns
// an error for non-positive bin counts or an empty range.
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("stats: bins %d must be positive", bins)
	}
	if max <= min {
		return nil, fmt.Errorf("stats: histogram range [%v, %v) empty", min, max)
	}
	return &Histogram{min: min, width: (max - min) / float64(bins), counts: make([]int, bins)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.min) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	h.counts[i]++
	h.n++
}

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int {
	out := make([]int, len(h.counts))
	copy(out, h.counts)
	return out
}

// N returns the number of observations.
func (h *Histogram) N() uint64 { return h.n }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.min + (float64(i)+0.5)*h.width
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of a sample using
// linear interpolation; it returns 0 for an empty sample. The input slice is
// not modified.
func Percentile(sample []float64, p float64) float64 {
	if len(sample) == 0 {
		return 0
	}
	sorted := make([]float64, len(sample))
	copy(sorted, sample)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// summaryJSON is Summary's wire form: the full Welford state, so a decoded
// summary continues accumulating (and reports Mean/CI95) exactly as the
// original would. JSON float64 encoding round-trips bit for bit.
type summaryJSON struct {
	N    uint64  `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON encodes the summary's accumulator state.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max})
}

// UnmarshalJSON restores the accumulator state.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var w summaryJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*s = Summary{n: w.N, mean: w.Mean, m2: w.M2, min: w.Min, max: w.Max}
	return nil
}

// timeSeriesJSON is TimeSeries' wire form.
type timeSeriesJSON struct {
	Bin     time.Duration `json:"bin"`
	Horizon time.Duration `json:"horizon"`
	Counts  []int         `json:"counts"`
}

// MarshalJSON encodes the series.
func (ts *TimeSeries) MarshalJSON() ([]byte, error) {
	return json.Marshal(timeSeriesJSON{Bin: ts.bin, Horizon: ts.horizon, Counts: ts.counts})
}

// UnmarshalJSON restores the series, validating its shape.
func (ts *TimeSeries) UnmarshalJSON(data []byte) error {
	var w timeSeriesJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Bin <= 0 || w.Horizon <= 0 {
		return fmt.Errorf("stats: decoded series bin %v / horizon %v must be positive", w.Bin, w.Horizon)
	}
	if want := int((w.Horizon + w.Bin - 1) / w.Bin); len(w.Counts) != want {
		return fmt.Errorf("stats: decoded series has %d buckets, want %d", len(w.Counts), want)
	}
	*ts = TimeSeries{bin: w.Bin, horizon: w.Horizon, counts: w.Counts}
	return nil
}
