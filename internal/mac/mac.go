// Package mac implements the LoRaWAN MAC-layer control plane the paper's
// evaluation deliberately switches off (Sec. VII-A5 fixes SF7 because "ADR
// degrades under mobility") and which this reproduction adds as a scenario
// axis: a network-server Adaptive Data Rate controller driven by per-device
// uplink SNR history, and a per-gateway downlink scheduler that places
// ack/command downlinks into the Class-A RX1/RX2 receive windows under a
// transmit duty-cycle budget.
//
// The package is pure decision logic — no virtual time, no radio state. The
// simulator (internal/experiment) owns the event timeline and the shared
// medium; internal/netserver composes this package's Controller and
// Scheduler into the network-server side of the MAC loop.
package mac

import (
	"fmt"
	"time"

	"mlorass/internal/lorawan"
	"mlorass/internal/radio"
	"mlorass/internal/rng"
)

// ADRConfig parameterises the SNR-margin ADR algorithm.
type ADRConfig struct {
	// MarginDB is the installation margin subtracted from the measured
	// link headroom before converting it to data-rate steps (LoRaWAN ADR
	// default: 10 dB — slack for fading the history did not sample).
	MarginDB radio.DB
	// HistoryLen is the per-device uplink SNR window the decision reads
	// (LoRaWAN ADR default: the last 20 uplinks).
	HistoryLen int
	// StepDB is the SNR headroom one data-rate step consumes (2.5 dB per
	// SF step on the SX1276 demodulation-floor ladder; the LoRaWAN
	// reference algorithm rounds it to 3 dB, which this default follows).
	StepDB radio.DB
	// MinHistory is the number of observed uplinks required before the
	// controller issues its first command to a device (a decision from one
	// lucky frame would whipsaw a mobile device's data rate).
	MinHistory int
}

// DefaultADRConfig returns the LoRaWAN reference parameters.
func DefaultADRConfig() ADRConfig {
	return ADRConfig{MarginDB: 10, HistoryLen: 20, StepDB: 3, MinHistory: 4}
}

// Validate reports configuration errors.
func (c ADRConfig) Validate() error {
	if c.HistoryLen <= 0 {
		return fmt.Errorf("mac: ADR history length %d must be positive", c.HistoryLen)
	}
	if c.StepDB <= 0 {
		return fmt.Errorf("mac: ADR step %v dB must be positive", c.StepDB)
	}
	if c.MinHistory <= 0 || c.MinHistory > c.HistoryLen {
		return fmt.Errorf("mac: ADR min history %d outside [1, %d]", c.MinHistory, c.HistoryLen)
	}
	return nil
}

// devHistory is one device's rolling uplink SNR window.
type devHistory struct {
	snr  []radio.DB // ring buffer, cfg.HistoryLen capacity
	next int        // ring write position
	n    int        // observations stored (≤ len(snr))
}

// Controller is the network-server ADR decision engine: it records each
// decoded uplink's SNR per device and, when asked, emits the LinkADRReq that
// moves the device to the fastest data rate (then lowest transmit power) the
// measured headroom supports. Not safe for concurrent use; it lives on the
// single-threaded simulator.
type Controller struct {
	cfg  ADRConfig
	devs []devHistory
}

// NewController builds a controller for numDevices devices.
func NewController(cfg ADRConfig, numDevices int) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numDevices < 0 {
		return nil, fmt.Errorf("mac: negative device count %d", numDevices)
	}
	return &Controller{cfg: cfg, devs: make([]devHistory, numDevices)}, nil
}

// Observe records one decoded uplink's SNR for a device. Out-of-range device
// indices are ignored (defensive: churned devices cannot corrupt state).
func (c *Controller) Observe(dev int, snr radio.DB) {
	if dev < 0 || dev >= len(c.devs) {
		return
	}
	h := &c.devs[dev]
	if h.snr == nil {
		h.snr = make([]radio.DB, c.cfg.HistoryLen)
	}
	h.snr[h.next] = snr
	h.next = (h.next + 1) % len(h.snr)
	if h.n < len(h.snr) {
		h.n++
	}
}

// MaxSNR returns the maximum SNR in the device's history window and how many
// uplinks it spans (0, 0 when nothing was observed).
func (c *Controller) MaxSNR(dev int) (snr radio.DB, n int) {
	if dev < 0 || dev >= len(c.devs) {
		return 0, 0
	}
	h := &c.devs[dev]
	if h.n == 0 {
		return 0, 0
	}
	m := h.snr[0]
	for _, v := range h.snr[1:h.n] {
		if v > m {
			m = v
		}
	}
	return m, h.n
}

// TargetLink computes the (data rate, TXPower index) the SNR-margin
// algorithm assigns given the best SNR observed at the current data rate:
//
//	steps = floor((maxSNR − RequiredSNR(cur) − margin) / step)
//
// Positive steps first raise the data rate toward DR5, then lower transmit
// power down the ladder; negative steps raise transmit power back toward
// index 0. The data rate is never lowered — LoRaWAN leaves downward
// adaptation to the device's own ADR backoff, which the simulator models as
// retransmission failure, not here.
func TargetLink(maxSNR radio.DB, cur lorawan.DataRate, curPow int, margin, step radio.DB) (lorawan.DataRate, int) {
	if !cur.Valid() {
		cur = lorawan.DR0
	}
	if curPow < 0 {
		curPow = 0
	}
	if curPow > lorawan.MaxTxPowerIndex {
		curPow = lorawan.MaxTxPowerIndex
	}
	headroom := maxSNR - cur.SF().RequiredSNR() - margin
	steps := int(headroom / step)
	if headroom < 0 && radio.DB(steps)*step != headroom {
		steps-- // floor toward -inf for negative headroom
	}
	dr, pow := cur, curPow
	for steps > 0 && dr < lorawan.MaxDataRate {
		dr++
		steps--
	}
	for steps > 0 && pow < lorawan.MaxTxPowerIndex {
		pow++
		steps--
	}
	for steps < 0 && pow > 0 {
		pow--
		steps++
	}
	return dr, pow
}

// Decide returns the LinkADRReq moving the device from its current settings
// to the algorithm's target, and whether a command is warranted at all: the
// history must span MinHistory uplinks and the target must differ from the
// current settings.
func (c *Controller) Decide(dev int, cur lorawan.DataRate, curPow int) (lorawan.LinkADRReq, bool) {
	maxSNR, n := c.MaxSNR(dev)
	if n < c.cfg.MinHistory {
		return lorawan.LinkADRReq{}, false
	}
	dr, pow := TargetLink(maxSNR, cur, curPow, c.cfg.MarginDB, c.cfg.StepDB)
	if dr == cur && pow == curPow {
		return lorawan.LinkADRReq{}, false
	}
	return lorawan.LinkADRReq{DataRate: dr, TxPowerIndex: pow}, true
}

// Reset clears a device's history — called when the device's data rate
// changes, so stale SNR samples measured at the old rate do not drive the
// next decision.
func (c *Controller) Reset(dev int) {
	if dev < 0 || dev >= len(c.devs) {
		return
	}
	h := &c.devs[dev]
	h.n, h.next = 0, 0
}

// AckBackoff returns the confirmed-uplink retransmission backoff before
// attempt number attempt (1-based count of timeouts so far): the LoRaWAN
// ACK_TIMEOUT jitter of 1–3 s doubled per retry, capped at 64 s. The duty
// governor's silent period is enforced on top by the device state machine.
// rnd may be nil for the deterministic midpoint.
func AckBackoff(attempt int, rnd *rng.Source) time.Duration {
	base := 2 * time.Second
	if rnd != nil {
		base = time.Duration(rnd.Uniform(1, 3) * float64(time.Second))
	}
	if attempt < 1 {
		attempt = 1
	}
	shift := attempt - 1
	if shift > 5 {
		shift = 5 // 2^5 · 2s = 64 s cap
	}
	d := base << shift
	if d > 64*time.Second {
		d = 64 * time.Second
	}
	return d
}
