package mac

import (
	"fmt"
	"time"
)

// Window identifies which Class-A receive window a downlink lands in.
type Window int

// Receive windows.
const (
	// WindowNone marks a downlink that could not be scheduled.
	WindowNone Window = 0
	// WindowRX1 is the first receive window (uplink channel and data rate).
	WindowRX1 Window = 1
	// WindowRX2 is the second receive window (fixed fallback data rate).
	WindowRX2 Window = 2
)

// String names the window.
func (w Window) String() string {
	switch w {
	case WindowRX1:
		return "RX1"
	case WindowRX2:
		return "RX2"
	default:
		return "none"
	}
}

// SchedulerStats counts a scheduler's downlink traffic.
type SchedulerStats struct {
	// RX1 and RX2 count downlinks placed in each window.
	RX1, RX2 uint64
	// Dropped counts downlinks abandoned because the gateway's duty-cycle
	// budget (or an already-committed transmission) covered both windows.
	Dropped uint64
}

// Scheduler places downlinks into per-gateway transmit schedules under a
// duty-cycle budget. Gateways transmit on the shared data channel, so the
// same EU868 duty rules that govern devices govern them: after a downlink of
// airtime T the gateway stays silent for T/duty − T. A downlink fits RX1 if
// the gateway is free at the RX1 instant, falls back to RX2 otherwise, and
// is dropped when neither window is open — the device's retransmission
// backoff recovers the loss. Not safe for concurrent use.
type Scheduler struct {
	duty float64
	// nextFree[gw] is the earliest instant gateway gw may transmit again.
	nextFree []time.Duration
	stats    SchedulerStats
}

// NewScheduler builds a scheduler for numGateways gateways with the given
// per-gateway transmit duty fraction (e.g. 0.1 for the EU868 10 % downlink
// sub-band). Fractions outside (0, 1) disable the budget (back-to-back
// transmissions only serialise).
func NewScheduler(numGateways int, duty float64) (*Scheduler, error) {
	if numGateways <= 0 {
		return nil, fmt.Errorf("mac: scheduler needs a positive gateway count, got %d", numGateways)
	}
	return &Scheduler{duty: duty, nextFree: make([]time.Duration, numGateways)}, nil
}

// Stats returns the traffic counters so far.
func (s *Scheduler) Stats() SchedulerStats { return s.stats }

// NextFree returns when gateway gw may transmit again (diagnostic).
func (s *Scheduler) NextFree(gw int) time.Duration {
	if gw < 0 || gw >= len(s.nextFree) {
		return 0
	}
	return s.nextFree[gw]
}

// Schedule commits gateway gw to one downlink for an uplink ending at
// uplinkEnd: RX1 (opening rx1Delay after the uplink, airtime rx1Air) if the
// gateway is free then, else RX2 (rx2Delay, rx2Air), else nothing. On
// success the gateway's duty budget is charged and the chosen window's start
// instant is returned.
func (s *Scheduler) Schedule(gw int, uplinkEnd, rx1Delay, rx2Delay, rx1Air, rx2Air time.Duration) (start time.Duration, w Window, ok bool) {
	if gw < 0 || gw >= len(s.nextFree) {
		return 0, WindowNone, false
	}
	if rx1Start := uplinkEnd + rx1Delay; s.nextFree[gw] <= rx1Start {
		s.charge(gw, rx1Start, rx1Air)
		s.stats.RX1++
		return rx1Start, WindowRX1, true
	}
	if rx2Start := uplinkEnd + rx2Delay; s.nextFree[gw] <= rx2Start {
		s.charge(gw, rx2Start, rx2Air)
		s.stats.RX2++
		return rx2Start, WindowRX2, true
	}
	s.stats.Dropped++
	return 0, WindowNone, false
}

// charge advances the gateway's silent period past a transmission starting
// at start with the given airtime.
func (s *Scheduler) charge(gw int, start, airtime time.Duration) {
	if s.duty > 0 && s.duty < 1 {
		s.nextFree[gw] = start + time.Duration(float64(airtime)/s.duty)
		return
	}
	s.nextFree[gw] = start + airtime
}
