package mac

import (
	"testing"
	"time"

	"mlorass/internal/lorawan"
	"mlorass/internal/radio"
	"mlorass/internal/rng"
)

func TestADRConfigValidate(t *testing.T) {
	if err := DefaultADRConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []ADRConfig{
		{MarginDB: 10, HistoryLen: 0, StepDB: 3, MinHistory: 1},
		{MarginDB: 10, HistoryLen: 20, StepDB: 0, MinHistory: 1},
		{MarginDB: 10, HistoryLen: 20, StepDB: 3, MinHistory: 0},
		{MarginDB: 10, HistoryLen: 20, StepDB: 3, MinHistory: 21},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestControllerHistoryWindow(t *testing.T) {
	ctrl, err := NewController(ADRConfig{MarginDB: 10, HistoryLen: 3, StepDB: 3, MinHistory: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, n := ctrl.MaxSNR(0); n != 0 {
		t.Fatalf("fresh device reports %d observations", n)
	}
	for _, snr := range []radio.DB{5, 1, 3} {
		ctrl.Observe(0, snr)
	}
	if m, n := ctrl.MaxSNR(0); m != 5 || n != 3 {
		t.Fatalf("MaxSNR = %v over %d, want 5 over 3", m, n)
	}
	// A fourth observation evicts the oldest (the 5 dB maximum).
	ctrl.Observe(0, 2)
	if m, n := ctrl.MaxSNR(0); m != 3 || n != 3 {
		t.Fatalf("after eviction MaxSNR = %v over %d, want 3 over 3", m, n)
	}
	// Device 1 is untouched; out-of-range devices are ignored.
	if _, n := ctrl.MaxSNR(1); n != 0 {
		t.Fatal("cross-device contamination")
	}
	ctrl.Observe(99, 1)
	ctrl.Observe(-1, 1)
	ctrl.Reset(0)
	if _, n := ctrl.MaxSNR(0); n != 0 {
		t.Fatal("Reset left history behind")
	}
}

func TestTargetLinkClimbsAndBacksOff(t *testing.T) {
	// SF12 (DR0) needs -20 dB SNR. A device at DR0 with 0 dB max SNR has
	// 0 - (-20) - 10 = 10 dB headroom = 3 steps: DR0 → DR3.
	dr, pow := TargetLink(0, lorawan.DR0, 0, 10, 3)
	if dr != lorawan.DR3 || pow != 0 {
		t.Fatalf("got %v/%d, want DR3/0", dr, pow)
	}
	// Huge headroom saturates at DR5 and spends the rest on power steps.
	dr, pow = TargetLink(40, lorawan.DR0, 0, 10, 3)
	if dr != lorawan.DR5 {
		t.Fatalf("got %v, want DR5", dr)
	}
	if pow == 0 {
		t.Fatal("excess headroom did not lower transmit power")
	}
	// Negative headroom at lowered power climbs the power back up but
	// never lowers the data rate.
	dr, pow = TargetLink(-30, lorawan.DR5, 3, 10, 3)
	if dr != lorawan.DR5 {
		t.Fatalf("data rate lowered to %v; ADR must not slow devices down", dr)
	}
	if pow >= 3 {
		t.Fatalf("power index %d did not climb toward full power", pow)
	}
	// Exactly zero headroom changes nothing.
	cur := lorawan.DR2
	dr, pow = TargetLink(lorawan.DR2.SF().RequiredSNR()+10, cur, 2, 10, 3)
	if dr != cur || pow != 2 {
		t.Fatalf("zero headroom moved the link to %v/%d", dr, pow)
	}
}

// TestADRMonotonicityProperty is the satellite property test: across a random
// sample of (current link, margin) states, a higher observed SNR margin never
// yields a slower data rate, and at fixed SNR a faster current rate is never
// demoted. This is the invariant that makes the ADR loop stable: improving
// radio conditions can only speed a device up.
func TestADRMonotonicityProperty(t *testing.T) {
	r := rng.New(0xada)
	for trial := 0; trial < 20000; trial++ {
		cur := lorawan.DataRate(r.Intn(lorawan.NumDataRates))
		pow := r.Intn(lorawan.MaxTxPowerIndex + 1)
		margin := radio.DB(r.Uniform(0, 15))
		step := radio.DB(3)
		snr := radio.DB(r.Uniform(-40, 40))
		delta := radio.DB(r.Uniform(0, 30))

		dr1, _ := TargetLink(snr, cur, pow, margin, step)
		dr2, _ := TargetLink(snr+delta, cur, pow, margin, step)
		if dr2 < dr1 {
			t.Fatalf("trial %d: SNR %v→%v (cur=%v pow=%d margin=%v) lowered target %v→%v",
				trial, snr, snr+delta, cur, pow, margin, dr1, dr2)
		}
		if dr1 < cur {
			t.Fatalf("trial %d: target %v below current %v — ADR demoted a data rate", trial, dr1, cur)
		}
		if !dr1.Valid() || !dr2.Valid() {
			t.Fatalf("trial %d: invalid target %v/%v", trial, dr1, dr2)
		}
	}
}

// TestControllerDecideMonotonicity drives the property through the stateful
// controller: two controllers fed identical histories except one device's
// uniformly higher SNR must not decide a slower rate for it.
func TestControllerDecideMonotonicity(t *testing.T) {
	r := rng.New(0xdec1de)
	for trial := 0; trial < 500; trial++ {
		lo, err := NewController(DefaultADRConfig(), 1)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := NewController(DefaultADRConfig(), 1)
		if err != nil {
			t.Fatal(err)
		}
		n := 4 + r.Intn(30)
		boost := radio.DB(r.Uniform(0, 20))
		for i := 0; i < n; i++ {
			snr := radio.DB(r.Uniform(-35, 10))
			lo.Observe(0, snr)
			hi.Observe(0, snr+boost)
		}
		cur := lorawan.DataRate(r.Intn(lorawan.NumDataRates))
		reqLo, okLo := lo.Decide(0, cur, 0)
		reqHi, okHi := hi.Decide(0, cur, 0)
		drLo, drHi := cur, cur
		if okLo {
			drLo = reqLo.DataRate
		}
		if okHi {
			drHi = reqHi.DataRate
		}
		if drHi < drLo {
			t.Fatalf("trial %d: +%.1f dB history decided %v but baseline decided %v (cur %v)",
				trial, boost, drHi, drLo, cur)
		}
	}
}

func TestDecideRequiresMinHistory(t *testing.T) {
	cfg := DefaultADRConfig()
	ctrl, err := NewController(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.MinHistory-1; i++ {
		ctrl.Observe(0, 30)
		if _, ok := ctrl.Decide(0, lorawan.DR0, 0); ok {
			t.Fatalf("decision issued after %d observations (min %d)", i+1, cfg.MinHistory)
		}
	}
	ctrl.Observe(0, 30)
	req, ok := ctrl.Decide(0, lorawan.DR0, 0)
	if !ok || req.DataRate <= lorawan.DR0 {
		t.Fatalf("strong link decided %+v ok=%v, want a faster rate", req, ok)
	}
	if err := req.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerWindowsAndBudget(t *testing.T) {
	s, err := NewScheduler(2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	rx1d, rx2d := time.Second, 2*time.Second
	air := 100 * time.Millisecond

	start, w, ok := s.Schedule(0, 0, rx1d, rx2d, air, air)
	if !ok || w != WindowRX1 || start != rx1d {
		t.Fatalf("first downlink: start=%v w=%v ok=%v", start, w, ok)
	}
	// The gateway is busy until 1s + 100ms/0.5 = 1.2s: an uplink ending at
	// 50ms (RX1 at 1.05s) must fall back to RX2 (2.05s).
	start, w, ok = s.Schedule(0, 50*time.Millisecond, rx1d, rx2d, air, air)
	if !ok || w != WindowRX2 || start != 50*time.Millisecond+rx2d {
		t.Fatalf("second downlink: start=%v w=%v ok=%v", start, w, ok)
	}
	// Now busy until 2.05s + 200ms = 2.25s; an uplink ending at 100ms has
	// both windows (1.1s, 2.1s) blocked: dropped.
	if _, _, ok := s.Schedule(0, 100*time.Millisecond, rx1d, rx2d, air, air); ok {
		t.Fatal("third downlink fit a fully blocked gateway")
	}
	// Gateway 1 has its own budget.
	if _, w, ok := s.Schedule(1, 0, rx1d, rx2d, air, air); !ok || w != WindowRX1 {
		t.Fatal("independent gateway budget shared")
	}
	st := s.Stats()
	if st.RX1 != 2 || st.RX2 != 1 || st.Dropped != 1 {
		t.Fatalf("stats = %+v, want RX1=2 RX2=1 Dropped=1", st)
	}
	if _, _, ok := s.Schedule(5, 0, rx1d, rx2d, air, air); ok {
		t.Fatal("out-of-range gateway scheduled")
	}
}

func TestSchedulerSerialisesWithoutDuty(t *testing.T) {
	s, err := NewScheduler(1, 0) // no duty budget: back-to-back only
	if err != nil {
		t.Fatal(err)
	}
	air := time.Second
	if _, w, ok := s.Schedule(0, 0, time.Second, 2*time.Second, air, air); !ok || w != WindowRX1 {
		t.Fatal("first downlink rejected")
	}
	// Busy until 2s: RX1 at 1.5s blocked, RX2 at 2.5s open.
	if _, w, ok := s.Schedule(0, 500*time.Millisecond, time.Second, 2*time.Second, air, air); !ok || w != WindowRX2 {
		t.Fatalf("got window %v, want RX2", w)
	}
}

func TestAckBackoff(t *testing.T) {
	r := rng.New(7)
	prev := time.Duration(0)
	for attempt := 1; attempt <= 8; attempt++ {
		d := AckBackoff(attempt, r)
		if d < time.Second || d > 64*time.Second {
			t.Fatalf("attempt %d backoff %v outside [1s, 64s]", attempt, d)
		}
		_ = prev
	}
	// Deterministic midpoint without a source; doubling then capping.
	if d := AckBackoff(1, nil); d != 2*time.Second {
		t.Fatalf("nil-source base backoff %v, want 2s", d)
	}
	if d := AckBackoff(3, nil); d != 8*time.Second {
		t.Fatalf("attempt-3 backoff %v, want 8s", d)
	}
	if d := AckBackoff(100, nil); d != 64*time.Second {
		t.Fatalf("capped backoff %v, want 64s", d)
	}
}

func TestDataRateTables(t *testing.T) {
	if got := lorawan.DR0.SF(); got != radio.SF12 {
		t.Fatalf("DR0 → %v, want SF12", got)
	}
	if got := lorawan.DR5.SF(); got != radio.SF7 {
		t.Fatalf("DR5 → %v, want SF7", got)
	}
	for sf := radio.SF7; sf <= radio.SF12; sf++ {
		dr, ok := lorawan.DataRateForSF(sf)
		if !ok || dr.SF() != sf {
			t.Fatalf("SF%d round-trips to %v", int(sf), dr)
		}
	}
	if _, ok := lorawan.DataRateForSF(0); ok {
		t.Fatal("invalid SF mapped to a data rate")
	}
}
