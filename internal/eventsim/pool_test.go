package eventsim

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestShardPoolRunsAllShards checks every shard sees every phase exactly
// once per Run, for both the inline single-shard path and real goroutines.
func TestShardPoolRunsAllShards(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		var counts [8]atomic.Int64
		p := NewPool(k, func(phase, shard int) {
			counts[shard].Add(int64(phase))
		})
		for phase := 1; phase <= 3; phase++ {
			p.Run(phase)
		}
		p.Close()
		for s := 0; s < k; s++ {
			if got := counts[s].Load(); got != 6 {
				t.Fatalf("k=%d shard %d phase sum = %d, want 6", k, s, got)
			}
		}
		for s := k; s < len(counts); s++ {
			if counts[s].Load() != 0 {
				t.Fatalf("k=%d shard %d ran but should not exist", k, s)
			}
		}
	}
}

// TestShardPoolBarrier proves Run is a full barrier: work done by shards in
// phase n is visible to all shards in phase n+1 without extra locking.
func TestShardPoolBarrier(t *testing.T) {
	const k = 4
	const rounds = 200
	buf := make([]int, k)
	var mismatch atomic.Int64
	p := NewPool(k, func(phase, shard int) {
		if phase%2 == 0 {
			buf[shard] = phase // each shard writes its own slot
			return
		}
		// Odd phases read every slot written in the previous phase.
		for s := 0; s < k; s++ {
			if buf[s] != phase-1 {
				mismatch.Add(1)
			}
		}
	})
	defer p.Close()
	for phase := 0; phase < rounds; phase++ {
		p.Run(phase)
	}
	if n := mismatch.Load(); n != 0 {
		t.Fatalf("%d stale reads across the barrier", n)
	}
}

// TestShardPoolRunAllocs pins the steady-state barrier cost at zero heap
// allocations per Run for both the inline and goroutine-backed paths.
func TestShardPoolRunAllocs(t *testing.T) {
	for _, k := range []int{1, 4} {
		var sink atomic.Int64
		p := NewPool(k, func(phase, shard int) { sink.Add(1) })
		p.Run(0) // warm up
		allocs := testing.AllocsPerRun(100, func() { p.Run(1) })
		p.Close()
		if allocs != 0 {
			t.Fatalf("k=%d: Run allocates %.1f per barrier, want 0", k, allocs)
		}
	}
}

// TestShardPoolGOMAXPROCS exercises the barrier under different scheduler
// widths: with a single OS thread workers must still make progress (channel
// sends park the coordinator), and with many threads the barrier must not
// admit phase overlap.
func TestShardPoolGOMAXPROCS(t *testing.T) {
	for _, procs := range []int{1, 2, 8} {
		prev := runtime.GOMAXPROCS(procs)
		func() {
			defer runtime.GOMAXPROCS(prev)
			var inPhase atomic.Int64
			var overlap atomic.Int64
			p := NewPool(8, func(phase, shard int) {
				if v := inPhase.Add(1); v > 8 {
					overlap.Add(1)
				}
				inPhase.Add(-1)
			})
			defer p.Close()
			for phase := 0; phase < 100; phase++ {
				p.Run(phase)
				if inPhase.Load() != 0 {
					t.Fatalf("procs=%d: Run returned with %d shards still active", procs, inPhase.Load())
				}
			}
			if overlap.Load() != 0 {
				t.Fatalf("procs=%d: phases overlapped", procs)
			}
		}()
	}
}

// TestShardPoolCloseIdempotent double-Close must not panic.
func TestShardPoolCloseIdempotent(t *testing.T) {
	p := NewPool(3, func(phase, shard int) {})
	p.Run(0)
	p.Close()
	p.Close()

	q := NewPool(1, func(phase, shard int) {})
	q.Close() // inline pool: nothing to close
	if q.Shards() != 1 {
		t.Fatalf("Shards() = %d, want 1", q.Shards())
	}
	if p.Shards() != 3 {
		t.Fatalf("Shards() = %d, want 3", p.Shards())
	}
}
