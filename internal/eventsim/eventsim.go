// Package eventsim implements the discrete-event simulation kernel that
// replaces OMNeT++ in this reproduction.
//
// The kernel maintains virtual time as a time.Duration offset from the start
// of the simulation, an event priority queue ordered by (time, sequence), and
// deterministic FIFO tie-breaking for events scheduled at the same instant.
// All higher layers (radio medium, LoRaWAN MAC, routing schemes, experiment
// harness) run on top of a single Simulator and therefore share one totally
// ordered virtual timeline, which keeps full experiment runs bit-for-bit
// reproducible for a given seed.
//
// The queue is an index-based 4-ary heap over a slab of item values with a
// free-list: Schedule, Cancel, and pop move int32 slot indices instead of
// pointers and allocate nothing in steady state (the slab and heap arrays
// grow amortised, then are reused for the rest of the run). Handles carry
// (slot, sequence), so cancellation is an O(1) slab lookup with the sequence
// number guarding against slot reuse — no side map. Cancelled events are
// marked in place and compacted out of the heap once they exceed half of it,
// so Cancel-heavy workloads keep the queue bounded by the pending count.
package eventsim

import (
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run variants when the simulation was halted by
// Stop before reaching its scheduled horizon.
var ErrStopped = errors.New("eventsim: simulation stopped")

// errNilEvent is predeclared so the hot scheduling path allocates nothing
// even when rejecting a bad call.
var errNilEvent = errors.New("eventsim: nil event")

// Event is a callback scheduled to execute at a virtual time instant.
type Event func(now time.Duration)

// Handle identifies a scheduled event so it can be cancelled. The zero Handle
// is invalid. Handles stay cheap to copy: a slab slot plus the scheduling
// sequence number that guards against the slot having been reused.
type Handle struct {
	slot int32
	seq  uint64
}

// Valid reports whether h refers to a scheduled (possibly executed) event.
func (h Handle) Valid() bool { return h.seq != 0 }

// item is one slab entry. Entries are recycled through the free-list once
// their event has executed, been cancelled, or been compacted away.
type item struct {
	at       time.Duration
	seq      uint64
	fn       Event
	canceled bool
}

// Probe observes kernel activity: OnEvent is invoked after every executed
// event with the event's clock-stamped virtual time. Probes feed the
// telemetry layer (kernel event rates, trace timestamps) without the kernel
// importing it; a nil probe costs the run loop a single branch per event.
type Probe interface {
	OnEvent(now time.Duration)
}

// compactMinHeap is the heap size below which cancellation never triggers
// compaction: rebuilding a tiny heap saves nothing.
const compactMinHeap = 64

// Simulator is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; simulations that need parallelism should run multiple
// independent Simulators.
type Simulator struct {
	now      time.Duration
	heap     []heapEnt // 4-ary min-heap ordered by (at, seq)
	items    []item    // slab backing every scheduled event
	free     []int32   // recycled slab slots
	canceled int       // cancelled entries still occupying heap positions
	nextSeq  uint64
	stopped  bool
	executed uint64
	probe    Probe
}

// heapEnt is one heap position. The ordering key (at, seq) is carried
// inline so sift comparisons stay within the contiguous heap array instead
// of dereferencing the slab.
type heapEnt struct {
	at   time.Duration
	seq  uint64
	slot int32
}

// before orders heap entries by (time, sequence).
func (e heapEnt) before(o heapEnt) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// New returns an empty simulator positioned at virtual time zero.
func New() *Simulator {
	return &Simulator{}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Pending returns the number of events still queued (excluding cancelled
// events not yet compacted out of the heap).
func (s *Simulator) Pending() int { return len(s.heap) - s.canceled }

// QueueLen returns the number of heap entries physically present, including
// cancelled events awaiting compaction — a diagnostic for queue-bound tests.
func (s *Simulator) QueueLen() int { return len(s.heap) }

// Executed returns how many events have run so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// SetProbe installs (or, with nil, removes) the kernel activity probe.
func (s *Simulator) SetProbe(p Probe) { s.probe = p }

// siftUp restores the heap property from position i towards the root.
// FIFO among same-instant events: sequence numbers are unique, so (at, seq)
// is a total order and the pop sequence is independent of the heap's
// internal arrangement.
//
//mlorass:hotpath
func (s *Simulator) siftUp(i int) {
	e := s.heap[i]
	for i > 0 {
		parent := (i - 1) >> 2
		if !e.before(s.heap[parent]) {
			break
		}
		s.heap[i] = s.heap[parent]
		i = parent
	}
	s.heap[i] = e
}

// siftDown restores the heap property from position i towards the leaves.
//
//mlorass:hotpath
func (s *Simulator) siftDown(i int) {
	n := len(s.heap)
	e := s.heap[i]
	for {
		first := i<<2 + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		min := first
		for c := first + 1; c < last; c++ {
			if s.heap[c].before(s.heap[min]) {
				min = c
			}
		}
		if !s.heap[min].before(e) {
			break
		}
		s.heap[i] = s.heap[min]
		i = min
	}
	s.heap[i] = e
}

// alloc takes a slab slot from the free-list, growing the slab only when it
// is exhausted.
//
//mlorass:hotpath
func (s *Simulator) alloc() int32 {
	if n := len(s.free); n > 0 {
		slot := s.free[n-1]
		s.free = s.free[:n-1]
		return slot
	}
	s.items = append(s.items, item{})
	return int32(len(s.items) - 1)
}

// release returns a slab slot to the free-list, dropping the callback
// reference so the closure can be collected.
//
//mlorass:hotpath
func (s *Simulator) release(slot int32) {
	it := &s.items[slot]
	it.fn = nil
	it.canceled = false
	s.free = append(s.free, slot)
}

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// returns an error: the kernel never rewinds the clock.
//
//mlorass:hotpath
func (s *Simulator) At(at time.Duration, fn Event) (Handle, error) {
	if fn == nil {
		return Handle{}, errNilEvent
	}
	if at < s.now {
		//lint:ignore hotpathlint cold rejection path: a valid run never schedules into the past
		return Handle{}, fmt.Errorf("eventsim: schedule at %v before now %v", at, s.now)
	}
	s.nextSeq++
	slot := s.alloc()
	it := &s.items[slot]
	it.at = at
	it.seq = s.nextSeq
	it.fn = fn
	it.canceled = false
	s.heap = append(s.heap, heapEnt{at: at, seq: s.nextSeq, slot: slot})
	s.siftUp(len(s.heap) - 1)
	return Handle{slot: slot, seq: it.seq}, nil
}

// After schedules fn to run after delay d from the current virtual time.
// Negative delays are clamped to zero (run "immediately", after currently
// queued same-time events).
func (s *Simulator) After(d time.Duration, fn Event) (Handle, error) {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending (false when already executed, cancelled, or invalid). The entry is
// marked in place (O(1)); the heap is compacted once cancelled entries
// outnumber live ones, so cancellation never leaks queue space.
//
//mlorass:hotpath
func (s *Simulator) Cancel(h Handle) bool {
	if h.seq == 0 || h.slot < 0 || int(h.slot) >= len(s.items) {
		return false
	}
	it := &s.items[h.slot]
	if it.seq != h.seq || it.canceled || it.fn == nil {
		return false
	}
	it.canceled = true
	it.fn = nil
	s.canceled++
	if s.canceled*2 > len(s.heap) && len(s.heap) >= compactMinHeap {
		s.compact()
	}
	return true
}

// compact removes every cancelled entry from the heap in one pass and
// re-establishes the heap property bottom-up. The (time, sequence) order is
// total, so the pop sequence after compaction is identical to the lazy
// skip-on-pop behaviour.
//
//mlorass:hotpath
func (s *Simulator) compact() {
	kept := s.heap[:0]
	for _, e := range s.heap {
		if s.items[e.slot].canceled {
			s.release(e.slot)
			continue
		}
		kept = append(kept, e)
	}
	s.heap = kept
	s.canceled = 0
	for i := (len(s.heap) - 2) >> 2; i >= 0; i-- {
		s.siftDown(i)
	}
}

// popMin removes and returns the heap's minimum entry. Callers check
// emptiness first.
//
//mlorass:hotpath
func (s *Simulator) popMin() heapEnt {
	e := s.heap[0]
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	if n > 0 {
		s.siftDown(0)
	}
	return e
}

// Stop halts the run loop after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// step executes the next pending event. It reports false when the queue is
// exhausted.
//
//mlorass:hotpath
func (s *Simulator) step() bool {
	for len(s.heap) > 0 {
		e := s.popMin()
		it := &s.items[e.slot]
		if it.canceled {
			s.canceled--
			s.release(e.slot)
			continue
		}
		at, fn := it.at, it.fn
		// Free the slot before running the callback: events commonly
		// reschedule, and reusing the hot slot keeps the slab compact.
		s.release(e.slot)
		s.now = at
		s.executed++
		fn(at)
		if s.probe != nil {
			s.probe.OnEvent(at)
		}
		return true
	}
	return false
}

// Run executes events until the queue empties or Stop is called. It returns
// ErrStopped in the latter case.
func (s *Simulator) Run() error {
	s.stopped = false
	for !s.stopped {
		if !s.step() {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil executes events with scheduled time <= horizon, then advances the
// clock to horizon. Events scheduled beyond the horizon stay queued. It
// returns ErrStopped when halted early by Stop.
func (s *Simulator) RunUntil(horizon time.Duration) error {
	s.stopped = false
	for !s.stopped {
		next, ok := s.peek()
		if !ok || next > horizon {
			break
		}
		s.step()
	}
	if s.stopped {
		return ErrStopped
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

// peek returns the scheduled time of the next live event, discarding
// cancelled entries from the top of the heap along the way.
//
//mlorass:hotpath
func (s *Simulator) peek() (time.Duration, bool) {
	for len(s.heap) > 0 {
		e := s.heap[0]
		if !s.items[e.slot].canceled {
			return e.at, true
		}
		s.popMin()
		s.canceled--
		s.release(e.slot)
	}
	return 0, false
}

// Ticker invokes fn every interval starting at start until the simulation
// ends or the returned cancel function is called. The callback may reschedule
// freely; ticks are anchored to the original phase (start + k*interval), so
// long-running callbacks do not drift the schedule.
func (s *Simulator) Ticker(start, interval time.Duration, fn Event) (cancel func(), err error) {
	if interval <= 0 {
		return nil, fmt.Errorf("eventsim: ticker interval %v must be positive", interval)
	}
	if start < s.now {
		return nil, fmt.Errorf("eventsim: ticker start %v before now %v", start, s.now)
	}
	stopped := false
	var schedule func(at time.Duration)
	var handle Handle
	schedule = func(at time.Duration) {
		h, err := s.At(at, func(now time.Duration) {
			if stopped {
				return
			}
			fn(now)
			if !stopped {
				schedule(at + interval)
			}
		})
		if err == nil {
			handle = h
		}
	}
	schedule(start)
	return func() {
		stopped = true
		s.Cancel(handle)
	}, nil
}
