// Package eventsim implements the discrete-event simulation kernel that
// replaces OMNeT++ in this reproduction.
//
// The kernel maintains virtual time as a time.Duration offset from the start
// of the simulation, an event priority queue ordered by (time, sequence), and
// deterministic FIFO tie-breaking for events scheduled at the same instant.
// All higher layers (radio medium, LoRaWAN MAC, routing schemes, experiment
// harness) run on top of a single Simulator and therefore share one totally
// ordered virtual timeline, which keeps full experiment runs bit-for-bit
// reproducible for a given seed.
package eventsim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// ErrStopped is returned by Run variants when the simulation was halted by
// Stop before reaching its scheduled horizon.
var ErrStopped = errors.New("eventsim: simulation stopped")

// Event is a callback scheduled to execute at a virtual time instant.
type Event func(now time.Duration)

// Handle identifies a scheduled event so it can be cancelled. The zero Handle
// is invalid.
type Handle struct {
	seq uint64
}

// Valid reports whether h refers to a scheduled (possibly executed) event.
func (h Handle) Valid() bool { return h.seq != 0 }

type item struct {
	at       time.Duration
	seq      uint64
	fn       Event
	canceled bool
	index    int // heap index, -1 once popped
}

type eventHeap []*item

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	it, ok := x.(*item)
	if !ok {
		return
	}
	it.index = len(*h)
	*h = append(*h, it)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}

// Probe observes kernel activity: OnEvent is invoked after every executed
// event with the event's clock-stamped virtual time. Probes feed the
// telemetry layer (kernel event rates, trace timestamps) without the kernel
// importing it; a nil probe costs the run loop a single branch per event.
type Probe interface {
	OnEvent(now time.Duration)
}

// Simulator is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; simulations that need parallelism should run multiple
// independent Simulators.
type Simulator struct {
	now      time.Duration
	queue    eventHeap
	nextSeq  uint64
	byHandle map[uint64]*item
	stopped  bool
	executed uint64
	probe    Probe
}

// New returns an empty simulator positioned at virtual time zero.
func New() *Simulator {
	return &Simulator{byHandle: make(map[uint64]*item)}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration { return s.now }

// Pending returns the number of events still queued (excluding cancelled
// events not yet garbage-collected from the heap).
func (s *Simulator) Pending() int {
	n := 0
	for _, it := range s.queue {
		if !it.canceled {
			n++
		}
	}
	return n
}

// Executed returns how many events have run so far.
func (s *Simulator) Executed() uint64 { return s.executed }

// SetProbe installs (or, with nil, removes) the kernel activity probe.
func (s *Simulator) SetProbe(p Probe) { s.probe = p }

// At schedules fn to run at absolute virtual time at. Scheduling in the past
// returns an error: the kernel never rewinds the clock.
func (s *Simulator) At(at time.Duration, fn Event) (Handle, error) {
	if fn == nil {
		return Handle{}, errors.New("eventsim: nil event")
	}
	if at < s.now {
		return Handle{}, fmt.Errorf("eventsim: schedule at %v before now %v", at, s.now)
	}
	s.nextSeq++
	it := &item{at: at, seq: s.nextSeq, fn: fn}
	heap.Push(&s.queue, it)
	s.byHandle[it.seq] = it
	return Handle{seq: it.seq}, nil
}

// After schedules fn to run after delay d from the current virtual time.
// Negative delays are clamped to zero (run "immediately", after currently
// queued same-time events).
func (s *Simulator) After(d time.Duration, fn Event) (Handle, error) {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Cancel removes a scheduled event. It reports whether the event was still
// pending (false when already executed, cancelled, or invalid).
func (s *Simulator) Cancel(h Handle) bool {
	it, ok := s.byHandle[h.seq]
	if !ok || it.canceled {
		return false
	}
	it.canceled = true
	delete(s.byHandle, h.seq)
	return true
}

// Stop halts the run loop after the currently executing event returns.
func (s *Simulator) Stop() { s.stopped = true }

// step executes the next pending event. It reports false when the queue is
// exhausted.
func (s *Simulator) step() bool {
	for len(s.queue) > 0 {
		top, ok := heap.Pop(&s.queue).(*item)
		if !ok {
			return false
		}
		if top.canceled {
			continue
		}
		delete(s.byHandle, top.seq)
		s.now = top.at
		s.executed++
		top.fn(s.now)
		if s.probe != nil {
			s.probe.OnEvent(top.at)
		}
		return true
	}
	return false
}

// Run executes events until the queue empties or Stop is called. It returns
// ErrStopped in the latter case.
func (s *Simulator) Run() error {
	s.stopped = false
	for !s.stopped {
		if !s.step() {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil executes events with scheduled time <= horizon, then advances the
// clock to horizon. Events scheduled beyond the horizon stay queued. It
// returns ErrStopped when halted early by Stop.
func (s *Simulator) RunUntil(horizon time.Duration) error {
	s.stopped = false
	for !s.stopped {
		if len(s.queue) == 0 {
			break
		}
		next := s.peek()
		if next == nil {
			break
		}
		if next.at > horizon {
			break
		}
		s.step()
	}
	if s.stopped {
		return ErrStopped
	}
	if s.now < horizon {
		s.now = horizon
	}
	return nil
}

func (s *Simulator) peek() *item {
	for len(s.queue) > 0 {
		top := s.queue[0]
		if !top.canceled {
			return top
		}
		heap.Pop(&s.queue)
	}
	return nil
}

// Ticker invokes fn every interval starting at start until the simulation
// ends or the returned cancel function is called. The callback may reschedule
// freely; ticks are anchored to the original phase (start + k*interval), so
// long-running callbacks do not drift the schedule.
func (s *Simulator) Ticker(start, interval time.Duration, fn Event) (cancel func(), err error) {
	if interval <= 0 {
		return nil, fmt.Errorf("eventsim: ticker interval %v must be positive", interval)
	}
	if start < s.now {
		return nil, fmt.Errorf("eventsim: ticker start %v before now %v", start, s.now)
	}
	stopped := false
	var schedule func(at time.Duration)
	var handle Handle
	schedule = func(at time.Duration) {
		h, err := s.At(at, func(now time.Duration) {
			if stopped {
				return
			}
			fn(now)
			if !stopped {
				schedule(at + interval)
			}
		})
		if err == nil {
			handle = h
		}
	}
	schedule(start)
	return func() {
		stopped = true
		s.Cancel(handle)
	}, nil
}
