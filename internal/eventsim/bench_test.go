package eventsim

import (
	"testing"
	"time"
)

// BenchmarkKernelSchedule measures the kernel's steady-state schedule/pop
// cycle: a standing population of pending events with one event scheduled
// per event executed, the shape of the simulator's slot-tick and
// transmission-resolve traffic. The loop never rebuilds the Simulator, so
// the number reflects the per-event cost a long run actually pays.
func BenchmarkKernelSchedule(b *testing.B) {
	s := New()
	fn := Event(func(time.Duration) {})
	// Standing population: the experiment keeps thousands of device
	// slots armed at any instant.
	const standing = 4096
	for j := 0; j < standing; j++ {
		if _, err := s.At(time.Duration(j)*time.Millisecond, fn); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.After(time.Duration(standing)*time.Millisecond, fn); err != nil {
			b.Fatal(err)
		}
		if !s.step() {
			b.Fatal("queue drained")
		}
	}
}

// BenchmarkKernelScheduleCancel measures the schedule+cancel pair: the
// duty-cycle retry path arms and disarms timers constantly.
func BenchmarkKernelScheduleCancel(b *testing.B) {
	s := New()
	fn := Event(func(time.Duration) {})
	const standing = 1024
	for j := 0; j < standing; j++ {
		if _, err := s.At(time.Duration(j)*time.Second, fn); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := s.After(time.Hour, fn)
		if err != nil {
			b.Fatal(err)
		}
		if !s.Cancel(h) {
			b.Fatal("cancel failed")
		}
	}
}
