package eventsim

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestRunExecutesInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	mustAt(t, s, 30*time.Second, func(time.Duration) { order = append(order, 3) })
	mustAt(t, s, 10*time.Second, func(time.Duration) { order = append(order, 1) })
	mustAt(t, s, 20*time.Second, func(time.Duration) { order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("execution order = %v", order)
	}
	if s.Now() != 30*time.Second {
		t.Fatalf("final time = %v", s.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		mustAt(t, s, time.Second, func(time.Duration) { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events out of FIFO order: %v", order)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	s := New()
	mustAt(t, s, 5*time.Second, func(time.Duration) {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.At(time.Second, func(time.Duration) {}); err == nil {
		t.Fatal("scheduling in the past succeeded")
	}
}

func TestNilEventRejected(t *testing.T) {
	s := New()
	if _, err := s.At(0, nil); err == nil {
		t.Fatal("nil event accepted")
	}
}

func TestAfterNegativeClamps(t *testing.T) {
	s := New()
	ran := false
	if _, err := s.After(-time.Second, func(time.Duration) { ran = true }); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran || s.Now() != 0 {
		t.Fatalf("negative After ran=%v at %v", ran, s.Now())
	}
}

func TestCancel(t *testing.T) {
	s := New()
	ran := false
	h, err := s.At(time.Second, func(time.Duration) { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(h) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(h) {
		t.Fatal("double Cancel returned true")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("cancelled event executed")
	}
}

func TestCancelInvalidHandle(t *testing.T) {
	s := New()
	if s.Cancel(Handle{}) {
		t.Fatal("Cancel of zero handle returned true")
	}
	if (Handle{}).Valid() {
		t.Fatal("zero handle reports valid")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := 1; i <= 5; i++ {
		d := time.Duration(i) * time.Second
		mustAt(t, s, d, func(time.Duration) {
			count++
			if count == 2 {
				s.Stop()
			}
		})
	}
	err := s.Run()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run err = %v, want ErrStopped", err)
	}
	if count != 2 {
		t.Fatalf("executed %d events after Stop, want 2", count)
	}
}

func TestRunUntil(t *testing.T) {
	s := New()
	var ran []time.Duration
	for _, d := range []time.Duration{time.Second, 3 * time.Second, 10 * time.Second} {
		d := d
		mustAt(t, s, d, func(now time.Duration) { ran = append(ran, now) })
	}
	if err := s.RunUntil(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 2 {
		t.Fatalf("RunUntil executed %d events, want 2", len(ran))
	}
	if s.Now() != 5*time.Second {
		t.Fatalf("clock = %v, want 5s", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	// Continue to the end.
	if err := s.RunUntil(20 * time.Second); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 3 || s.Now() != 20*time.Second {
		t.Fatalf("second RunUntil: ran=%v now=%v", ran, s.Now())
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New()
	var order []string
	mustAt(t, s, time.Second, func(now time.Duration) {
		order = append(order, "a")
		if _, err := s.After(time.Second, func(time.Duration) { order = append(order, "b") }); err != nil {
			t.Errorf("inner schedule: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 2*time.Second {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestTicker(t *testing.T) {
	s := New()
	var ticks []time.Duration
	cancel, err := s.Ticker(time.Minute, time.Minute, func(now time.Duration) {
		ticks = append(ticks, now)
		if len(ticks) == 4 {
			s.Stop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if err := s.Run(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Run err = %v", err)
	}
	want := []time.Duration{time.Minute, 2 * time.Minute, 3 * time.Minute, 4 * time.Minute}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, ticks[i], want[i])
		}
	}
}

func TestTickerCancel(t *testing.T) {
	s := New()
	count := 0
	cancel, err := s.Ticker(0, time.Second, func(time.Duration) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	mustAt(t, s, 2500*time.Millisecond, func(time.Duration) { cancel() })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 3 { // ticks at 0s, 1s, 2s; cancelled at 2.5s
		t.Fatalf("ticker fired %d times, want 3", count)
	}
}

func TestTickerValidation(t *testing.T) {
	s := New()
	if _, err := s.Ticker(0, 0, func(time.Duration) {}); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := s.Ticker(0, -time.Second, func(time.Duration) {}); err == nil {
		t.Fatal("negative interval accepted")
	}
	mustAt(t, s, time.Second, func(time.Duration) {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ticker(0, time.Second, func(time.Duration) {}); err == nil {
		t.Fatal("ticker start in the past accepted")
	}
}

func TestExecutedCounter(t *testing.T) {
	s := New()
	for i := 0; i < 7; i++ {
		mustAt(t, s, time.Duration(i)*time.Second, func(time.Duration) {})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Executed() != 7 {
		t.Fatalf("Executed = %d, want 7", s.Executed())
	}
}

// Property: any multiset of event times executes in non-decreasing order.
func TestQuickTimeOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		s := New()
		for _, o := range offsets {
			d := time.Duration(o) * time.Millisecond
			if _, err := s.At(d, func(time.Duration) {}); err != nil {
				return false
			}
		}
		last := time.Duration(-1)
		ok := true
		// Drain manually via RunUntil checkpoints to observe ordering.
		s2 := New()
		var seen []time.Duration
		for _, o := range offsets {
			d := time.Duration(o) * time.Millisecond
			if _, err := s2.At(d, func(now time.Duration) { seen = append(seen, now) }); err != nil {
				return false
			}
		}
		if err := s2.Run(); err != nil {
			return false
		}
		for _, v := range seen {
			if v < last {
				ok = false
			}
			last = v
		}
		return ok && len(seen) == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func mustAt(t *testing.T, s *Simulator, at time.Duration, fn Event) {
	t.Helper()
	if _, err := s.At(at, fn); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			_, _ = s.At(time.Duration(j%97)*time.Millisecond, func(time.Duration) {})
		}
		_ = s.Run()
	}
}

// probeRecorder captures OnEvent clock stamps.
type probeRecorder struct {
	stamps []time.Duration
}

func (p *probeRecorder) OnEvent(now time.Duration) { p.stamps = append(p.stamps, now) }

// TestProbeObservesEveryExecutedEvent checks the telemetry hook point: the
// probe sees one clock-stamped callback per executed event, in execution
// order, and cancelled events never reach it.
func TestProbeObservesEveryExecutedEvent(t *testing.T) {
	s := New()
	p := &probeRecorder{}
	s.SetProbe(p)
	mustAt(t, s, 10*time.Millisecond, func(time.Duration) {})
	mustAt(t, s, 30*time.Millisecond, func(time.Duration) {})
	h, err := s.At(20*time.Millisecond, func(time.Duration) {})
	if err != nil {
		t.Fatal(err)
	}
	s.Cancel(h)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 30 * time.Millisecond}
	if len(p.stamps) != len(want) {
		t.Fatalf("probe saw %d events, want %d", len(p.stamps), len(want))
	}
	for i, at := range want {
		if p.stamps[i] != at {
			t.Fatalf("stamp[%d] = %v, want %v", i, p.stamps[i], at)
		}
	}
	if s.Executed() != uint64(len(want)) {
		t.Fatalf("Executed = %d, want %d", s.Executed(), len(want))
	}
	// Removing the probe silences it.
	s.SetProbe(nil)
	mustAt(t, s, 40*time.Millisecond, func(time.Duration) {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(p.stamps) != len(want) {
		t.Fatal("probe saw events after removal")
	}
}

// TestCancelHeavyQueueBounded is the cancelled-event-leak regression test:
// a workload that schedules far-future events and cancels nearly all of them
// (the duty-cycle retry pattern) must keep the physical queue bounded by the
// live pending count — cancelled entries are compacted, not leaked until
// popped.
func TestCancelHeavyQueueBounded(t *testing.T) {
	s := New()
	const live = 100
	var keep []Handle
	for i := 0; i < live; i++ {
		h, err := s.At(time.Hour+time.Duration(i)*time.Second, func(time.Duration) {})
		if err != nil {
			t.Fatal(err)
		}
		keep = append(keep, h)
	}
	for round := 0; round < 1000; round++ {
		var hs []Handle
		for i := 0; i < 64; i++ {
			h, err := s.At(2*time.Hour+time.Duration(i)*time.Second, func(time.Duration) {})
			if err != nil {
				t.Fatal(err)
			}
			hs = append(hs, h)
		}
		for _, h := range hs {
			if !s.Cancel(h) {
				t.Fatal("cancel of pending event failed")
			}
		}
		if s.Pending() != live {
			t.Fatalf("round %d: pending = %d, want %d", round, s.Pending(), live)
		}
		// The compaction threshold is 1/2, so the physical queue may
		// carry up to one cancelled entry per live one (plus the batch
		// in flight), but must never grow round over round.
		if max := 2*live + 2*64 + 1; s.QueueLen() > max {
			t.Fatalf("round %d: queue len %d exceeds bound %d — cancelled events leak", round, s.QueueLen(), max)
		}
	}
	for _, h := range keep {
		if !s.Cancel(h) {
			t.Fatal("cancel of long-lived event failed")
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Executed() != 0 {
		t.Fatalf("executed %d cancelled events", s.Executed())
	}
}

// TestCancelAfterSlotReuse locks the handle-staleness guard: once an event
// has executed (or been cancelled) its slab slot may be reused, and the old
// handle must not cancel the new occupant.
func TestCancelAfterSlotReuse(t *testing.T) {
	s := New()
	ran := 0
	h1, err := s.At(time.Second, func(time.Duration) { ran++ })
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// h1's slot is now free; the next schedule reuses it.
	h2, err := s.At(2*time.Second, func(time.Duration) { ran++ })
	if err != nil {
		t.Fatal(err)
	}
	if s.Cancel(h1) {
		t.Fatal("stale handle cancelled a reused slot")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran = %d, want 2", ran)
	}
	if s.Cancel(h2) {
		t.Fatal("cancel of executed event succeeded")
	}
}

// TestKernelZeroAllocSteadyState locks the zero-allocation invariant of the
// kernel hot path: once the slab and heap have grown to the workload's
// standing size, schedule/pop cycles and schedule/cancel pairs allocate
// nothing.
func TestKernelZeroAllocSteadyState(t *testing.T) {
	s := New()
	fn := Event(func(time.Duration) {})
	for i := 0; i < 512; i++ {
		if _, err := s.At(time.Duration(i)*time.Millisecond, fn); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the slab/heap/free-list past their steady-state size.
	for i := 0; i < 1024; i++ {
		if _, err := s.After(time.Second, fn); err != nil {
			t.Fatal(err)
		}
		s.step()
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := s.After(time.Second, fn); err != nil {
			t.Fatal(err)
		}
		if !s.step() {
			t.Fatal("queue drained")
		}
	}); n != 0 {
		t.Fatalf("schedule/pop allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		h, err := s.After(time.Hour, fn)
		if err != nil {
			t.Fatal(err)
		}
		if !s.Cancel(h) {
			t.Fatal("cancel failed")
		}
	}); n != 0 {
		t.Fatalf("schedule/cancel allocates %v per op, want 0", n)
	}
}
