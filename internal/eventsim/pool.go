package eventsim

import "sync"

// Pool runs one long-lived worker goroutine per simulation shard and
// provides the phase barrier the sharded experiment engine synchronises
// windows on. Each Run(phase) wakes every worker with the phase number,
// invokes the shared runner as runner(phase, shard), and returns only after
// all workers finish — a full barrier, so memory written by the coordinator
// before Run is visible to workers (channel send) and memory written by
// workers is visible to the coordinator after Run (WaitGroup.Wait).
//
// The single-shard pool takes a fast path: the runner is called inline on
// the caller's goroutine, so `-shards 1` runs without any goroutine
// hand-off and stays trivially deterministic.
//
// Run allocates nothing in steady state: workers block on a plain int
// channel each, so a 24 h simulated day crossing tens of thousands of
// window barriers adds no GC pressure.
type Pool struct {
	k      int
	runner func(phase, shard int)
	start  []chan int
	wg     sync.WaitGroup
	closed bool
}

// NewPool spawns k-1 additional worker goroutines (shard 0..k-1 all run
// phases; with k == 1 no goroutine is spawned at all). The runner must be
// safe for concurrent invocation with distinct shard arguments.
func NewPool(k int, runner func(phase, shard int)) *Pool {
	if k < 1 {
		k = 1
	}
	p := &Pool{k: k, runner: runner}
	if k == 1 {
		return p
	}
	p.start = make([]chan int, k)
	for i := range p.start {
		ch := make(chan int, 1)
		p.start[i] = ch
		go p.work(i, ch)
	}
	return p
}

func (p *Pool) work(shard int, ch chan int) {
	for phase := range ch {
		p.runner(phase, shard)
		p.wg.Done()
	}
}

// Shards returns the number of shards the pool drives.
func (p *Pool) Shards() int { return p.k }

// Run executes runner(phase, shard) for every shard and waits for all of
// them: one window-phase barrier.
//
//mlorass:hotpath
func (p *Pool) Run(phase int) {
	if p.start == nil {
		p.runner(phase, 0)
		return
	}
	p.wg.Add(p.k)
	for _, ch := range p.start {
		ch <- phase
	}
	p.wg.Wait()
}

// Close terminates the worker goroutines. The pool must not be Run after
// Close; Close is idempotent.
func (p *Pool) Close() {
	if p.start == nil || p.closed {
		return
	}
	p.closed = true
	for _, ch := range p.start {
		close(ch)
	}
}
