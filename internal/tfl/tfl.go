// Package tfl generates and (de)serialises a synthetic London-bus-network
// dataset: routes, speeds, and a 24-hour timetable of trips.
//
// The paper's evaluation is trace-driven from Transport for London (TFL) open
// timetable data, which this reproduction cannot ship. Instead, this package
// synthesises a dataset whose aggregate properties match what the paper's
// protocols actually depend on (DESIGN.md §2):
//
//   - fixed polyline routes inside a 600 km² planar area,
//   - per-route average speeds between 5.4 and 23.1 mph (Sec. III-A),
//   - a diurnal headway profile producing the Fig. 7a active-bus curve
//     (near-empty network overnight, broad daytime plateau),
//   - trip durations distributed over tens of minutes to ~2.5 h (Fig. 7b).
//
// Datasets round-trip through a small CSV format so a real TFL export can be
// converted and dropped in without touching the simulator.
package tfl

import (
	"fmt"
	"math"
	"time"

	"mlorass/internal/geo"
	"mlorass/internal/rng"
)

// Day is the timetable horizon.
const Day = 24 * time.Hour

// Route is one bus line: a fixed polyline with an average operating speed.
type Route struct {
	// ID names the route, e.g. "R017".
	ID string
	// Points are the polyline vertices in metres.
	Points []geo.Point
	// SpeedMPS is the route's effective average speed (stop dwell folded
	// in), in metres per second.
	SpeedMPS float64
}

// Polyline builds the arc-length parameterised polyline for the route.
func (r Route) Polyline() (*geo.Polyline, error) {
	pl, err := geo.NewPolyline(r.Points)
	if err != nil {
		return nil, fmt.Errorf("route %s: %w", r.ID, err)
	}
	return pl, nil
}

// Trip is one vehicle's service shift on a route: the bus enters service at
// Start, shuttles back and forth along the route polyline for Duration, and
// then leaves service. Modelling shifts rather than single one-way runs
// matches the TFL data's bus-active-duration distribution (Fig. 7b), where
// vehicles stay on the road from tens of minutes up to many hours.
type Trip struct {
	// ID is unique within the dataset and doubles as the bus identifier:
	// the paper counts a bus as active exactly while it runs a trip.
	ID int
	// RouteID references Dataset.Routes.
	RouteID string
	// Start is the shift start offset from midnight.
	Start time.Duration
	// Duration is the length of the service shift.
	Duration time.Duration
	// Reverse reports whether the first leg runs the route end-to-start.
	Reverse bool
}

// End returns the trip's completion time.
func (t Trip) End() time.Duration { return t.Start + t.Duration }

// ActiveAt reports whether the bus is on the road at instant at.
func (t Trip) ActiveAt(at time.Duration) bool {
	return at >= t.Start && at < t.End()
}

// Dataset is a full synthetic day of the bus network.
type Dataset struct {
	Area   geo.Rect
	Routes []Route
	Trips  []Trip
}

// RouteByID returns the route with the given ID, or false.
func (d *Dataset) RouteByID(id string) (Route, bool) {
	for _, r := range d.Routes {
		if r.ID == id {
			return r, true
		}
	}
	return Route{}, false
}

// ActiveBuses returns the number of trips active at each bin of width bin
// across the 24-hour day: the data behind Fig. 7a.
func (d *Dataset) ActiveBuses(bin time.Duration) []int {
	if bin <= 0 {
		return nil
	}
	n := int(Day / bin)
	counts := make([]int, n)
	for _, tr := range d.Trips {
		first := int(tr.Start / bin)
		last := int((tr.End() - 1) / bin)
		if last >= n {
			last = n - 1
		}
		for b := first; b <= last && b >= 0; b++ {
			counts[b]++
		}
	}
	return counts
}

// TripDurations returns every trip's run time: the data behind Fig. 7b.
func (d *Dataset) TripDurations() []time.Duration {
	out := make([]time.Duration, len(d.Trips))
	for i, tr := range d.Trips {
		out[i] = tr.Duration
	}
	return out
}

// GenConfig parameterises the synthetic dataset generator.
type GenConfig struct {
	// Seed drives all randomness.
	Seed uint64
	// Area is the operating area; the default evaluation uses a 24.5 km
	// square (≈600 km², Sec. VII-A1).
	Area geo.Rect
	// NumRoutes is the number of bus lines.
	NumRoutes int
	// PeakHeadway is the departure interval per route and direction at
	// the busiest hour; off-peak headways stretch by the diurnal profile.
	PeakHeadway time.Duration
	// RouteMinM and RouteMaxM bound route lengths in metres.
	RouteMinM float64
	RouteMaxM float64
	// SpeedMinMPS and SpeedMaxMPS bound per-route average speeds. The
	// London bus network averages 5.4–23.1 mph = 2.41–10.33 m/s.
	SpeedMinMPS float64
	SpeedMaxMPS float64
	// HourlyWeight scales service frequency per hour of day, 0..1.
	// A zero-valued array selects DefaultHourlyWeight.
	HourlyWeight [24]float64
}

// DefaultHourlyWeight is a TFL-like diurnal service profile: minimal night
// service, a morning ramp, a broad daytime plateau and an evening decline.
// Values are relative departure rates (1 = peak).
func DefaultHourlyWeight() [24]float64 {
	return [24]float64{
		0.10, 0.06, 0.05, 0.05, 0.08, 0.25, // 00-05
		0.55, 0.90, 1.00, 0.95, 0.90, 0.90, // 06-11
		0.90, 0.90, 0.92, 0.97, 1.00, 1.00, // 12-17
		0.95, 0.80, 0.60, 0.45, 0.30, 0.18, // 18-23
	}
}

// DefaultGenConfig returns the configuration used by the paper-scale
// experiments: 600 km² area and London-bus speed bounds. numRoutes and
// peakHeadway control the fleet size (≈ routes × 2 directions × day/headway
// trips).
func DefaultGenConfig(seed uint64, numRoutes int, peakHeadway time.Duration) GenConfig {
	return GenConfig{
		Seed:         seed,
		Area:         geo.Square(24500),
		NumRoutes:    numRoutes,
		PeakHeadway:  peakHeadway,
		RouteMinM:    5000,
		RouteMaxM:    14000,
		SpeedMinMPS:  2.41,
		SpeedMaxMPS:  10.33,
		HourlyWeight: DefaultHourlyWeight(),
	}
}

// Validate reports configuration errors.
func (c GenConfig) Validate() error {
	if c.Area.Area() <= 0 {
		return fmt.Errorf("tfl: empty area")
	}
	if c.NumRoutes <= 0 {
		return fmt.Errorf("tfl: NumRoutes %d must be positive", c.NumRoutes)
	}
	if c.PeakHeadway <= 0 {
		return fmt.Errorf("tfl: PeakHeadway %v must be positive", c.PeakHeadway)
	}
	if c.RouteMinM <= 0 || c.RouteMaxM < c.RouteMinM {
		return fmt.Errorf("tfl: route length bounds [%v, %v] invalid", c.RouteMinM, c.RouteMaxM)
	}
	if c.SpeedMinMPS <= 0 || c.SpeedMaxMPS < c.SpeedMinMPS {
		return fmt.Errorf("tfl: speed bounds [%v, %v] invalid", c.SpeedMinMPS, c.SpeedMaxMPS)
	}
	return nil
}

// Generate builds a deterministic synthetic dataset from the configuration.
func Generate(cfg GenConfig) (*Dataset, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	weights := cfg.HourlyWeight
	if weightsZero(weights) {
		weights = DefaultHourlyWeight()
	}
	r := rng.New(cfg.Seed)
	ds := &Dataset{Area: cfg.Area}

	routeRNG := r.Split()
	for i := 0; i < cfg.NumRoutes; i++ {
		route := genRoute(routeRNG, cfg, i)
		ds.Routes = append(ds.Routes, route)
	}

	tripRNG := r.Split()
	nextID := 0
	for _, route := range ds.Routes {
		if _, err := route.Polyline(); err != nil {
			return nil, err
		}
		for _, reverse := range []bool{false, true} {
			// Offset the two directions by half a headway so they
			// interleave like a real timetable.
			t := time.Duration(0)
			if reverse {
				t = cfg.PeakHeadway / 2
			}
			for t < Day {
				hour := int(t / time.Hour)
				if hour > 23 {
					hour = 23
				}
				w := weights[hour]
				if w <= 0.01 {
					w = 0.01
				}
				headway := time.Duration(float64(cfg.PeakHeadway) / w)
				ds.Trips = append(ds.Trips, Trip{
					ID:       nextID,
					RouteID:  route.ID,
					Start:    t + time.Duration(tripRNG.Uniform(0, 30))*time.Second,
					Duration: shiftDuration(tripRNG),
					Reverse:  reverse,
				})
				nextID++
				t += headway
			}
		}
	}
	return ds, nil
}

// shiftDuration draws a vehicle's service-shift length: log-normal with a
// ~2.5 h median, clamped to [30 min, 10 h]. The resulting distribution
// reproduces the Fig. 7b spread of bus active durations.
func shiftDuration(r *rng.Source) time.Duration {
	const medianSec = 9000 // 2.5 h
	sec := r.LogNormal(math.Log(medianSec), 0.55)
	if sec < 1800 {
		sec = 1800
	}
	if sec > 36000 {
		sec = 36000
	}
	return time.Duration(sec * float64(time.Second))
}

func weightsZero(w [24]float64) bool {
	for _, v := range w {
		if v != 0 {
			return false
		}
	}
	return true
}

// genRoute draws one route: a mostly straight corridor polyline with gentle
// turns, clamped to the area, plus a speed drawn from the configured band.
//
// Corridor-shaped routes matter for the evaluation: like real London bus
// lines, each route has a *persistent* spatial relationship to the gateway
// grid. Some corridors run close to gateways and their buses enjoy frequent
// sink contact; others thread between grid cells and their buses stay
// disconnected for long stretches — precisely the heterogeneity that makes
// contact-aware forwarding at route crossings worthwhile (Sec. VII-B's
// observation that gateway accessibility per route drives performance).
func genRoute(r *rng.Source, cfg GenConfig, idx int) Route {
	targetLen := r.Uniform(cfg.RouteMinM, cfg.RouteMaxM)
	// Start away from the border so routes spread over the whole area.
	margin := 0.05
	start := geo.Point{
		X: cfg.Area.Min.X + r.Uniform(margin, 1-margin)*cfg.Area.Width(),
		Y: cfg.Area.Min.Y + r.Uniform(margin, 1-margin)*cfg.Area.Height(),
	}
	heading := r.Uniform(0, 2*math.Pi)
	pts := []geo.Point{start}
	total := 0.0
	cur := start
	for total < targetLen {
		segLen := r.Uniform(500, 1200)
		next := geo.Point{
			X: cur.X + segLen*math.Cos(heading),
			Y: cur.Y + segLen*math.Sin(heading),
		}
		if !cfg.Area.Contains(next) {
			// Bounce: turn back toward the area centre.
			c := cfg.Area.Center()
			heading = math.Atan2(c.Y-cur.Y, c.X-cur.X) + r.Uniform(-0.5, 0.5)
			continue
		}
		pts = append(pts, next)
		total += segLen
		cur = next
		heading += r.Uniform(-0.18, 0.18) // near-straight corridors
	}
	return Route{
		ID:       fmt.Sprintf("R%03d", idx),
		Points:   pts,
		SpeedMPS: r.Uniform(cfg.SpeedMinMPS, cfg.SpeedMaxMPS),
	}
}
