package tfl

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// FuzzDecode drives the CSV parser with arbitrary input. Two properties must
// hold for any input the parser accepts:
//
//  1. Decode never panics (the fuzzer's implicit crash check), and
//  2. the parser's own output re-parses: Encode(Decode(input)) must Decode
//     again into a structurally identical dataset. Exact float equality is
//     deliberately not asserted — second-hand inputs may carry values whose
//     seconds→Duration conversion is lossy — but record counts, IDs, route
//     shapes, and flags must survive the round trip bit for bit.
func FuzzDecode(f *testing.F) {
	// Seed corpus: real generator output at two scales, plus hand-written
	// records covering every kind and a few near-miss shapes.
	for _, gc := range []GenConfig{
		DefaultGenConfig(1, 2, time.Hour),
		DefaultGenConfig(7, 5, 20*time.Minute),
	} {
		ds, err := Generate(gc)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Encode(&buf, ds); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.String())
	}
	f.Add("area,0,0,100,100\nroute,R0,5,0:0;10:10\ntrip,0,R0,0,60,1\n")
	f.Add("area,0,0,1e300,NaN\nroute,R,1e-300,0:0;1:1\ntrip,-1,R,9e18,-5,0\n")
	f.Add("route,R0,5,\ntrip,x,R0,a,b,2\narea,1,2,3\nbogus,1\n")
	f.Add("\"area\",\"0\",\"0\",\"10\",\"10\"\nroute,\"R;0\",1,\"0:0;1:1\"")

	f.Fuzz(func(t *testing.T, input string) {
		ds, err := Decode(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		var enc1 bytes.Buffer
		if err := Encode(&enc1, ds); err != nil {
			t.Fatalf("Encode of decoded dataset failed: %v", err)
		}
		ds2, err := Decode(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("re-Decode of encoder output failed: %v\noutput:\n%s", err, enc1.String())
		}
		if len(ds2.Routes) != len(ds.Routes) || len(ds2.Trips) != len(ds.Trips) {
			t.Fatalf("round trip changed counts: %d/%d routes, %d/%d trips",
				len(ds.Routes), len(ds2.Routes), len(ds.Trips), len(ds2.Trips))
		}
		for i := range ds.Routes {
			if ds2.Routes[i].ID != ds.Routes[i].ID {
				t.Fatalf("route %d ID %q -> %q", i, ds.Routes[i].ID, ds2.Routes[i].ID)
			}
			if len(ds2.Routes[i].Points) != len(ds.Routes[i].Points) {
				t.Fatalf("route %d point count %d -> %d", i, len(ds.Routes[i].Points), len(ds2.Routes[i].Points))
			}
		}
		for i := range ds.Trips {
			if ds2.Trips[i].ID != ds.Trips[i].ID ||
				ds2.Trips[i].RouteID != ds.Trips[i].RouteID ||
				ds2.Trips[i].Reverse != ds.Trips[i].Reverse {
				t.Fatalf("trip %d identity changed: %+v -> %+v", i, ds.Trips[i], ds2.Trips[i])
			}
		}
	})
}

// TestEncodeDecodeExactOnGeneratorOutput pins the strong round-trip property
// for well-formed datasets: generator output survives Encode/Decode with
// exact field equality (the basis of the fuzz corpus).
func TestEncodeDecodeExactOnGeneratorOutput(t *testing.T) {
	ds, err := Generate(DefaultGenConfig(3, 4, 30*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Area != ds.Area {
		t.Fatalf("area %+v -> %+v", ds.Area, got.Area)
	}
	if len(got.Routes) != len(ds.Routes) || len(got.Trips) != len(ds.Trips) {
		t.Fatal("counts changed")
	}
	for i := range ds.Routes {
		if got.Routes[i].ID != ds.Routes[i].ID || got.Routes[i].SpeedMPS != ds.Routes[i].SpeedMPS {
			t.Fatalf("route %d changed", i)
		}
		for j := range ds.Routes[i].Points {
			if got.Routes[i].Points[j] != ds.Routes[i].Points[j] {
				t.Fatalf("route %d point %d changed", i, j)
			}
		}
	}
	for i := range ds.Trips {
		if got.Trips[i] != ds.Trips[i] {
			t.Fatalf("trip %d changed: %+v -> %+v", i, ds.Trips[i], got.Trips[i])
		}
	}
}
