package tfl

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func genSmall(t *testing.T, seed uint64) *Dataset {
	t.Helper()
	ds, err := Generate(DefaultGenConfig(seed, 10, 20*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestGenerateDeterministic(t *testing.T) {
	a := genSmall(t, 42)
	b := genSmall(t, 42)
	if len(a.Routes) != len(b.Routes) || len(a.Trips) != len(b.Trips) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", len(a.Routes), len(a.Trips), len(b.Routes), len(b.Trips))
	}
	for i := range a.Trips {
		if a.Trips[i] != b.Trips[i] {
			t.Fatalf("trip %d differs: %+v vs %+v", i, a.Trips[i], b.Trips[i])
		}
	}
	for i := range a.Routes {
		if a.Routes[i].SpeedMPS != b.Routes[i].SpeedMPS || len(a.Routes[i].Points) != len(b.Routes[i].Points) {
			t.Fatalf("route %d differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := genSmall(t, 1)
	b := genSmall(t, 2)
	if len(a.Routes) > 0 && len(b.Routes) > 0 &&
		a.Routes[0].SpeedMPS == b.Routes[0].SpeedMPS &&
		a.Routes[0].Points[0] == b.Routes[0].Points[0] {
		t.Fatal("different seeds produced identical first route")
	}
}

func TestGenerateValidation(t *testing.T) {
	base := DefaultGenConfig(1, 5, 10*time.Minute)
	muts := []func(*GenConfig){
		func(c *GenConfig) { c.NumRoutes = 0 },
		func(c *GenConfig) { c.PeakHeadway = 0 },
		func(c *GenConfig) { c.RouteMinM = 0 },
		func(c *GenConfig) { c.RouteMaxM = c.RouteMinM - 1 },
		func(c *GenConfig) { c.SpeedMinMPS = 0 },
		func(c *GenConfig) { c.SpeedMaxMPS = 1 },
		func(c *GenConfig) { c.Area.Max = c.Area.Min },
	}
	for i, mut := range muts {
		cfg := base
		mut(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestRoutesInsideAreaWithValidSpeeds(t *testing.T) {
	ds := genSmall(t, 7)
	cfg := DefaultGenConfig(7, 10, 20*time.Minute)
	for _, r := range ds.Routes {
		if r.SpeedMPS < cfg.SpeedMinMPS || r.SpeedMPS > cfg.SpeedMaxMPS {
			t.Fatalf("route %s speed %v outside bounds", r.ID, r.SpeedMPS)
		}
		pl, err := r.Polyline()
		if err != nil {
			t.Fatalf("route %s: %v", r.ID, err)
		}
		if pl.Length() < cfg.RouteMinM {
			t.Fatalf("route %s length %v below minimum", r.ID, pl.Length())
		}
		for _, p := range r.Points {
			if !ds.Area.Contains(p) {
				t.Fatalf("route %s point %v outside area", r.ID, p)
			}
		}
	}
}

func TestTripsWithinDayAndReferencingRoutes(t *testing.T) {
	ds := genSmall(t, 9)
	ids := map[int]bool{}
	for _, tr := range ds.Trips {
		if ids[tr.ID] {
			t.Fatalf("duplicate trip ID %d", tr.ID)
		}
		ids[tr.ID] = true
		if tr.Start < 0 || tr.Start >= Day+time.Hour {
			t.Fatalf("trip %d starts at %v", tr.ID, tr.Start)
		}
		if tr.Duration <= 0 {
			t.Fatalf("trip %d has non-positive duration", tr.ID)
		}
		if _, ok := ds.RouteByID(tr.RouteID); !ok {
			t.Fatalf("trip %d references unknown route %s", tr.ID, tr.RouteID)
		}
	}
}

func TestDiurnalActiveBusShape(t *testing.T) {
	// Fig. 7a property: daytime plateau well above the overnight trough.
	ds, err := Generate(DefaultGenConfig(3, 25, 15*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	counts := ds.ActiveBuses(time.Hour)
	if len(counts) != 24 {
		t.Fatalf("hourly bins = %d", len(counts))
	}
	night := avgInts(counts[1:5]) // 01:00-05:00
	day := avgInts(counts[10:17]) // 10:00-17:00
	if day < 3*night {
		t.Fatalf("daytime %v not >= 3x night %v: diurnal shape lost (%v)", day, night, counts)
	}
	if day == 0 {
		t.Fatal("no daytime buses")
	}
}

func TestTripDurationRange(t *testing.T) {
	// Fig. 7b property: shifts span from tens of minutes to many hours,
	// hard-clamped to [30 min, 10 h], with a broad middle mass.
	ds := genSmall(t, 5)
	durations := ds.TripDurations()
	if len(durations) == 0 {
		t.Fatal("no trips generated")
	}
	var mid int
	for _, d := range durations {
		if d < 30*time.Minute || d > 10*time.Hour {
			t.Fatalf("shift duration %v outside [30m, 10h]", d)
		}
		if d >= time.Hour && d <= 6*time.Hour {
			mid++
		}
	}
	if mid < len(durations)/2 {
		t.Fatalf("only %d/%d shifts between 1 h and 6 h; distribution off", mid, len(durations))
	}
}

func TestActiveBusesEdgeCases(t *testing.T) {
	ds := &Dataset{Trips: []Trip{{ID: 1, Start: 0, Duration: time.Hour}}}
	if got := ds.ActiveBuses(0); got != nil {
		t.Fatal("zero bin accepted")
	}
	counts := ds.ActiveBuses(30 * time.Minute)
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 0 {
		t.Fatalf("counts = %v", counts[:3])
	}
}

func TestTripActiveAt(t *testing.T) {
	tr := Trip{Start: time.Hour, Duration: time.Hour}
	if tr.ActiveAt(59 * time.Minute) {
		t.Fatal("active before start")
	}
	if !tr.ActiveAt(time.Hour) || !tr.ActiveAt(90*time.Minute) {
		t.Fatal("inactive during trip")
	}
	if tr.ActiveAt(2 * time.Hour) {
		t.Fatal("active at end instant")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := genSmall(t, 11)
	var buf bytes.Buffer
	if err := Encode(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Area != ds.Area {
		t.Fatalf("area: %+v vs %+v", got.Area, ds.Area)
	}
	if len(got.Routes) != len(ds.Routes) || len(got.Trips) != len(ds.Trips) {
		t.Fatalf("sizes differ after round trip")
	}
	for i := range ds.Routes {
		a, b := ds.Routes[i], got.Routes[i]
		if a.ID != b.ID || a.SpeedMPS != b.SpeedMPS || len(a.Points) != len(b.Points) {
			t.Fatalf("route %d mismatch", i)
		}
		for j := range a.Points {
			if a.Points[j] != b.Points[j] {
				t.Fatalf("route %d point %d mismatch", i, j)
			}
		}
	}
	for i := range ds.Trips {
		// Durations round-trip through seconds; compare at 1 ms.
		a, b := ds.Trips[i], got.Trips[i]
		if a.ID != b.ID || a.RouteID != b.RouteID || a.Reverse != b.Reverse {
			t.Fatalf("trip %d mismatch: %+v vs %+v", i, a, b)
		}
		if dd := a.Start - b.Start; dd > time.Millisecond || dd < -time.Millisecond {
			t.Fatalf("trip %d start drift %v", i, dd)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []string{
		"area,1,2,3\n",           // wrong arity
		"route,R1,abc,0:0;1:1\n", // bad speed
		"route,R1,5,0:0;11\n",    // bad point
		"trip,x,R1,0,10,0\n",     // bad id
		"trip,1,R1,x,10,0\n",     // bad start
		"trip,1,R1,0,x,0\n",      // bad duration
		"bogus,1\n",              // unknown kind
		"trip,1,R1,0,10\n",       // wrong arity
	}
	for i, c := range cases {
		if _, err := Decode(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}

func TestDecodeEmpty(t *testing.T) {
	ds, err := Decode(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Routes) != 0 || len(ds.Trips) != 0 {
		t.Fatal("empty input produced records")
	}
}

func TestDefaultHourlyWeightShape(t *testing.T) {
	w := DefaultHourlyWeight()
	if w[8] != 1.0 && w[16] != 1.0 {
		t.Fatal("no peak hour at weight 1.0")
	}
	for h, v := range w {
		if v <= 0 || v > 1 {
			t.Fatalf("hour %d weight %v outside (0,1]", h, v)
		}
	}
	if w[3] > 0.2 {
		t.Fatalf("night weight %v too high", w[3])
	}
}

func avgInts(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	return float64(sum) / float64(len(xs))
}

func BenchmarkGenerate(b *testing.B) {
	cfg := DefaultGenConfig(1, 25, 15*time.Minute)
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
