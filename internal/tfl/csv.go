package tfl

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"mlorass/internal/geo"
)

// The CSV dataset format carries both record kinds in one file so a dataset
// is a single artefact:
//
//	area,<minX>,<minY>,<maxX>,<maxY>
//	route,<id>,<speed_mps>,<x1:y1;x2:y2;...>
//	trip,<id>,<route_id>,<start_s>,<duration_s>,<reverse 0|1>
//
// Real TFL timetable exports convert into this format with a small external
// script; the simulator is agnostic to the dataset's origin.

// Encode writes the dataset as CSV.
func Encode(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	area := []string{
		"area",
		formatFloat(d.Area.Min.X), formatFloat(d.Area.Min.Y),
		formatFloat(d.Area.Max.X), formatFloat(d.Area.Max.Y),
	}
	if err := cw.Write(area); err != nil {
		return fmt.Errorf("tfl: encode area: %w", err)
	}
	for _, r := range d.Routes {
		var sb strings.Builder
		for i, p := range r.Points {
			if i > 0 {
				sb.WriteByte(';')
			}
			sb.WriteString(formatFloat(p.X))
			sb.WriteByte(':')
			sb.WriteString(formatFloat(p.Y))
		}
		rec := []string{"route", r.ID, formatFloat(r.SpeedMPS), sb.String()}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("tfl: encode route %s: %w", r.ID, err)
		}
	}
	for _, t := range d.Trips {
		rev := "0"
		if t.Reverse {
			rev = "1"
		}
		rec := []string{
			"trip",
			strconv.Itoa(t.ID),
			t.RouteID,
			formatFloat(t.Start.Seconds()),
			formatFloat(t.Duration.Seconds()),
			rev,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("tfl: encode trip %d: %w", t.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Decode parses a dataset previously written by Encode (or converted from a
// real TFL export).
func Decode(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	ds := &Dataset{}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("tfl: decode line %d: %w", line+1, err)
		}
		line++
		if len(rec) == 0 {
			continue
		}
		switch rec[0] {
		case "area":
			if len(rec) != 5 {
				return nil, fmt.Errorf("tfl: line %d: area needs 5 fields, got %d", line, len(rec))
			}
			vals, err := parseFloats(rec[1:])
			if err != nil {
				return nil, fmt.Errorf("tfl: line %d: %w", line, err)
			}
			ds.Area = geo.Rect{
				Min: geo.Point{X: vals[0], Y: vals[1]},
				Max: geo.Point{X: vals[2], Y: vals[3]},
			}
		case "route":
			if len(rec) != 4 {
				return nil, fmt.Errorf("tfl: line %d: route needs 4 fields, got %d", line, len(rec))
			}
			speed, err := strconv.ParseFloat(rec[2], 64)
			if err != nil {
				return nil, fmt.Errorf("tfl: line %d: speed: %w", line, err)
			}
			pts, err := parsePoints(rec[3])
			if err != nil {
				return nil, fmt.Errorf("tfl: line %d: %w", line, err)
			}
			ds.Routes = append(ds.Routes, Route{ID: rec[1], SpeedMPS: speed, Points: pts})
		case "trip":
			if len(rec) != 6 {
				return nil, fmt.Errorf("tfl: line %d: trip needs 6 fields, got %d", line, len(rec))
			}
			id, err := strconv.Atoi(rec[1])
			if err != nil {
				return nil, fmt.Errorf("tfl: line %d: trip id: %w", line, err)
			}
			start, err := strconv.ParseFloat(rec[3], 64)
			if err != nil {
				return nil, fmt.Errorf("tfl: line %d: start: %w", line, err)
			}
			dur, err := strconv.ParseFloat(rec[4], 64)
			if err != nil {
				return nil, fmt.Errorf("tfl: line %d: duration: %w", line, err)
			}
			ds.Trips = append(ds.Trips, Trip{
				ID:       id,
				RouteID:  rec[2],
				Start:    secondsToDuration(start),
				Duration: secondsToDuration(dur),
				Reverse:  rec[5] == "1",
			})
		default:
			return nil, fmt.Errorf("tfl: line %d: unknown record kind %q", line, rec[0])
		}
	}
	return ds, nil
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// secondsToDuration converts decimal seconds to a Duration, rounding to the
// nearest nanosecond. Truncating (a plain Duration(s * 1e9) conversion) loses
// 1 ns on roughly half of all encoded timestamps, breaking the exact
// Encode/Decode round trip the fuzz harness checks. NaN maps to zero and
// values beyond the int64 nanosecond range saturate instead of wrapping:
// both conversions are implementation-defined in the spec and would
// otherwise differ across architectures, breaking run determinism.
func secondsToDuration(s float64) time.Duration {
	ns := math.Round(s * float64(time.Second))
	if math.IsNaN(ns) {
		return 0
	}
	if ns >= math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	if ns <= math.MinInt64 {
		return time.Duration(math.MinInt64)
	}
	return time.Duration(ns)
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("field %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

func parsePoints(s string) ([]geo.Point, error) {
	parts := strings.Split(s, ";")
	pts := make([]geo.Point, 0, len(parts))
	for i, part := range parts {
		xy := strings.SplitN(part, ":", 2)
		if len(xy) != 2 {
			return nil, fmt.Errorf("point %d: %q not x:y", i, part)
		}
		x, err := strconv.ParseFloat(xy[0], 64)
		if err != nil {
			return nil, fmt.Errorf("point %d x: %w", i, err)
		}
		y, err := strconv.ParseFloat(xy[1], 64)
		if err != nil {
			return nil, fmt.Errorf("point %d y: %w", i, err)
		}
		pts = append(pts, geo.Point{X: x, Y: y})
	}
	return pts, nil
}
