// Package disruption schedules infrastructure failure into a simulation run:
// gateway outage/recovery windows and permanent mid-run device churn.
//
// The paper evaluates RCA-ETX and ROBC with permanently healthy gateways and
// a fixed device population; this package opens the resilience axis. A
// Config describes how much of the infrastructure fails; Compile expands it
// deterministically (from the run seed) into a concrete Plan of per-gateway
// outage windows and per-device failure instants, which the experiment
// harness turns into events on the eventsim timeline. Same seed, same plan —
// disruption runs stay bit-for-bit reproducible.
package disruption

import (
	"fmt"
	"time"

	"mlorass/internal/rng"
)

// Config parameterises scheduled infrastructure failure. The zero value
// disables disruption entirely, preserving the paper's permanently healthy
// world.
type Config struct {
	// GatewayOutageFraction in [0, 1] is the fraction of gateways that
	// suffer one outage window during the run.
	GatewayOutageFraction float64
	// OutageDuration is each affected gateway's downtime. Zero defaults
	// to a quarter of the horizon at Compile time; durations are clamped
	// to the horizon.
	OutageDuration time.Duration
	// DeviceChurnFraction in [0, 1] is the fraction of devices that fail
	// permanently at a uniform random instant mid-run.
	DeviceChurnFraction float64
}

// Enabled reports whether the configuration schedules any disruption.
func (c Config) Enabled() bool {
	return c.GatewayOutageFraction > 0 || c.DeviceChurnFraction > 0
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.GatewayOutageFraction < 0 || c.GatewayOutageFraction > 1 {
		return fmt.Errorf("disruption: GatewayOutageFraction %v outside [0, 1]", c.GatewayOutageFraction)
	}
	if c.DeviceChurnFraction < 0 || c.DeviceChurnFraction > 1 {
		return fmt.Errorf("disruption: DeviceChurnFraction %v outside [0, 1]", c.DeviceChurnFraction)
	}
	if c.OutageDuration < 0 {
		return fmt.Errorf("disruption: OutageDuration %v negative", c.OutageDuration)
	}
	return nil
}

// Window is one [Start, End) downtime interval.
type Window struct {
	Start time.Duration
	End   time.Duration
}

// Contains reports whether the instant falls inside the window.
func (w Window) Contains(at time.Duration) bool { return at >= w.Start && at < w.End }

// Plan is a compiled disruption schedule for one concrete run.
type Plan struct {
	// GatewayOutages holds each gateway's outage windows (usually zero or
	// one), indexed by gateway.
	GatewayOutages [][]Window
	// DeviceFailAt holds each device's permanent failure instant, indexed
	// by device; a negative value means the device never fails.
	DeviceFailAt []time.Duration
}

// Compile expands a Config into a concrete Plan for gateways×devices over
// the horizon. Victims are drawn by a seeded permutation and failure times
// uniformly, so the plan is a pure function of its arguments.
func Compile(cfg Config, seed uint64, gateways, devices int, horizon time.Duration) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if gateways < 0 || devices < 0 {
		return nil, fmt.Errorf("disruption: negative population %d gateways / %d devices", gateways, devices)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("disruption: horizon %v must be positive", horizon)
	}
	p := &Plan{
		GatewayOutages: make([][]Window, gateways),
		DeviceFailAt:   make([]time.Duration, devices),
	}
	for i := range p.DeviceFailAt {
		p.DeviceFailAt[i] = -1
	}

	r := rng.New(seed)
	gwRNG := r.Split()
	devRNG := r.Split()

	if cfg.GatewayOutageFraction > 0 && gateways > 0 {
		dur := cfg.OutageDuration
		if dur == 0 {
			dur = horizon / 4
		}
		if dur > horizon {
			dur = horizon
		}
		nDown := victims(cfg.GatewayOutageFraction, gateways)
		perm := gwRNG.Perm(gateways)
		for _, gw := range perm[:nDown] {
			start := time.Duration(gwRNG.Uniform(0, (horizon-dur).Seconds()+1) * float64(time.Second))
			if start+dur > horizon {
				start = horizon - dur
			}
			p.GatewayOutages[gw] = append(p.GatewayOutages[gw], Window{Start: start, End: start + dur})
		}
	}

	if cfg.DeviceChurnFraction > 0 && devices > 0 {
		nFail := victims(cfg.DeviceChurnFraction, devices)
		perm := devRNG.Perm(devices)
		for _, dev := range perm[:nFail] {
			p.DeviceFailAt[dev] = time.Duration(devRNG.Uniform(0, horizon.Seconds()) * float64(time.Second))
		}
	}
	return p, nil
}

// victims rounds fraction×n to the nearest count, clamped to [0, n].
func victims(fraction float64, n int) int {
	v := int(fraction*float64(n) + 0.5)
	if v > n {
		v = n
	}
	if v < 0 {
		v = 0
	}
	return v
}

// GatewayUp reports whether the gateway is outside all its outage windows.
func (p *Plan) GatewayUp(gw int, at time.Duration) bool {
	if gw < 0 || gw >= len(p.GatewayOutages) {
		return true
	}
	for _, w := range p.GatewayOutages[gw] {
		if w.Contains(at) {
			return false
		}
	}
	return true
}

// DeviceAlive reports whether the device has not yet hit its failure instant.
func (p *Plan) DeviceAlive(dev int, at time.Duration) bool {
	if dev < 0 || dev >= len(p.DeviceFailAt) {
		return true
	}
	f := p.DeviceFailAt[dev]
	return f < 0 || at < f
}

// OutageWindows counts scheduled gateway outage windows.
func (p *Plan) OutageWindows() int {
	n := 0
	for _, ws := range p.GatewayOutages {
		n += len(ws)
	}
	return n
}

// DeviceFailures counts devices scheduled to fail.
func (p *Plan) DeviceFailures() int {
	n := 0
	for _, f := range p.DeviceFailAt {
		if f >= 0 {
			n++
		}
	}
	return n
}
