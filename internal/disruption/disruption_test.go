package disruption

import (
	"testing"
	"time"
)

func TestZeroConfigDisabled(t *testing.T) {
	var cfg Config
	if cfg.Enabled() {
		t.Fatal("zero config enabled")
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(cfg, 1, 10, 100, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if plan.OutageWindows() != 0 || plan.DeviceFailures() != 0 {
		t.Fatalf("zero config scheduled %d outages, %d failures", plan.OutageWindows(), plan.DeviceFailures())
	}
	for gw := 0; gw < 10; gw++ {
		if !plan.GatewayUp(gw, 12*time.Hour) {
			t.Fatalf("gateway %d down without disruption", gw)
		}
	}
}

func TestCompileGatewayOutages(t *testing.T) {
	cfg := Config{GatewayOutageFraction: 0.5, OutageDuration: time.Hour}
	plan, err := Compile(cfg, 42, 10, 0, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.OutageWindows(); got != 5 {
		t.Fatalf("outage windows %d, want 5 (50%% of 10)", got)
	}
	for gw, ws := range plan.GatewayOutages {
		for _, w := range ws {
			if w.End-w.Start != time.Hour {
				t.Fatalf("gateway %d window %v long", gw, w.End-w.Start)
			}
			if w.Start < 0 || w.End > 24*time.Hour {
				t.Fatalf("gateway %d window [%v, %v) outside horizon", gw, w.Start, w.End)
			}
			if plan.GatewayUp(gw, w.Start) || plan.GatewayUp(gw, w.End-time.Second) {
				t.Fatalf("gateway %d up inside its own outage", gw)
			}
			if !plan.GatewayUp(gw, w.End) {
				t.Fatalf("gateway %d still down after recovery", gw)
			}
		}
	}
}

func TestCompileDefaultsOutageDurationToQuarterHorizon(t *testing.T) {
	cfg := Config{GatewayOutageFraction: 1}
	plan, err := Compile(cfg, 1, 4, 0, 8*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range plan.GatewayOutages {
		for _, w := range ws {
			if w.End-w.Start != 2*time.Hour {
				t.Fatalf("default outage %v, want horizon/4 = 2h", w.End-w.Start)
			}
		}
	}
}

func TestCompileDeviceChurn(t *testing.T) {
	cfg := Config{DeviceChurnFraction: 0.25}
	plan, err := Compile(cfg, 7, 0, 80, 10*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.DeviceFailures(); got != 20 {
		t.Fatalf("device failures %d, want 20 (25%% of 80)", got)
	}
	for dev, at := range plan.DeviceFailAt {
		if at < 0 {
			if !plan.DeviceAlive(dev, 10*time.Hour) {
				t.Fatalf("unchurned device %d died", dev)
			}
			continue
		}
		if at >= 10*time.Hour {
			t.Fatalf("device %d fails at %v, beyond horizon", dev, at)
		}
		if plan.DeviceAlive(dev, at) || !plan.DeviceAlive(dev, at-time.Second) {
			t.Fatalf("device %d alive/dead boundary wrong around %v", dev, at)
		}
	}
}

func TestCompileDeterminism(t *testing.T) {
	cfg := Config{GatewayOutageFraction: 0.7, DeviceChurnFraction: 0.3}
	a, err := Compile(cfg, 5, 20, 50, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(cfg, 5, 20, 50, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for gw := range a.GatewayOutages {
		if len(a.GatewayOutages[gw]) != len(b.GatewayOutages[gw]) {
			t.Fatalf("gateway %d window counts differ", gw)
		}
		for i := range a.GatewayOutages[gw] {
			if a.GatewayOutages[gw][i] != b.GatewayOutages[gw][i] {
				t.Fatalf("gateway %d window %d differs", gw, i)
			}
		}
	}
	for dev := range a.DeviceFailAt {
		if a.DeviceFailAt[dev] != b.DeviceFailAt[dev] {
			t.Fatalf("device %d failure instant differs", dev)
		}
	}
	// A different seed picks different victims or instants.
	c, err := Compile(cfg, 6, 20, 50, 24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for dev := range a.DeviceFailAt {
		if a.DeviceFailAt[dev] != c.DeviceFailAt[dev] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds compiled identical churn plans")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{GatewayOutageFraction: -0.1},
		{GatewayOutageFraction: 1.1},
		{DeviceChurnFraction: 2},
		{OutageDuration: -time.Hour},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestOutageDurationClampedToHorizon(t *testing.T) {
	cfg := Config{GatewayOutageFraction: 1, OutageDuration: 48 * time.Hour}
	plan, err := Compile(cfg, 1, 3, 0, 6*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, ws := range plan.GatewayOutages {
		for _, w := range ws {
			if w.Start != 0 || w.End != 6*time.Hour {
				t.Fatalf("clamped window [%v, %v), want full horizon", w.Start, w.End)
			}
		}
	}
}
