package gwplan

import (
	"testing"

	"mlorass/internal/geo"
)

func TestPlaceGrid(t *testing.T) {
	area := geo.Square(24500)
	for _, n := range []int{40, 50, 60, 70, 80, 90, 100} {
		pts, err := Place(Grid, area, n, 0)
		if err != nil {
			t.Fatalf("Place(Grid, %d): %v", n, err)
		}
		if len(pts) != n {
			t.Fatalf("Place(Grid, %d) returned %d points", n, len(pts))
		}
		for _, p := range pts {
			if !area.Contains(p) {
				t.Fatalf("grid point %v outside area", p)
			}
		}
	}
}

func TestPlaceGridDeterministic(t *testing.T) {
	area := geo.Square(1000)
	a, err := Place(Grid, area, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(Grid, area, 50, 2) // seed must not matter for Grid
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("grid placement depends on seed at %d", i)
		}
	}
}

func TestPlaceRandom(t *testing.T) {
	area := geo.Square(1000)
	a, err := Place(Random, area, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(Random, area, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Place(Random, area, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a {
		if !area.Contains(a[i]) {
			t.Fatalf("random point %v outside area", a[i])
		}
		if a[i] != b[i] {
			t.Fatal("same seed produced different random placement")
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical random placement")
	}
}

func TestPlaceValidation(t *testing.T) {
	area := geo.Square(1000)
	if _, err := Place(Strategy(0), area, 10, 0); err == nil {
		t.Error("invalid strategy accepted")
	}
	if _, err := Place(Grid, area, 0, 0); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := Place(Grid, geo.Rect{}, 10, 0); err == nil {
		t.Error("empty area accepted")
	}
}

func TestStrategyString(t *testing.T) {
	if Grid.String() != "grid" || Random.String() != "random" {
		t.Fatal("strategy names wrong")
	}
	if Strategy(9).Valid() {
		t.Fatal("bogus strategy valid")
	}
}
