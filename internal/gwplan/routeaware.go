package gwplan

import (
	"fmt"

	"mlorass/internal/geo"
	"mlorass/internal/tfl"
)

// PlaceRouteAware implements the paper's stated future-work direction
// (Secs. VII-C and VIII): "selecting better gateway positioning … where we
// aim to find the gateway location where can better support mobility and
// device-to-device data forwarding".
//
// It is a greedy maximum-coverage placement over the bus network itself:
// candidate sites are sampled along every route polyline, demand points are
// a finer sampling of the same polylines (weighted equally — every route
// metre carries telemetry), and gateways are chosen one at a time to cover
// the largest amount of still-uncovered route length within rangeM. Greedy
// maximum coverage carries the classic (1 − 1/e) approximation guarantee,
// which is ample for an evaluation ablation.
//
// Compared with the paper's uniform grid — which spends gateways on empty
// parkland — route-aware placement concentrates coverage where buses
// actually drive, raising baseline delivery and shrinking the forwarding
// schemes' rescue opportunities; the ablation bench quantifies both.
func PlaceRouteAware(ds *tfl.Dataset, n int, rangeM float64) ([]geo.Point, error) {
	if ds == nil || len(ds.Routes) == 0 {
		return nil, fmt.Errorf("gwplan: route-aware placement needs a dataset with routes")
	}
	if n <= 0 {
		return nil, fmt.Errorf("gwplan: gateway count %d must be positive", n)
	}
	if rangeM <= 0 {
		return nil, fmt.Errorf("gwplan: range %v must be positive", rangeM)
	}

	const (
		candidateStepM = 500 // candidate sites along routes
		demandStepM    = 200 // demand points along routes
	)
	candidates := samplePolylines(ds, candidateStepM)
	demand := samplePolylines(ds, demandStepM)
	if len(candidates) == 0 || len(demand) == 0 {
		return nil, fmt.Errorf("gwplan: dataset routes too short to sample")
	}

	covered := make([]bool, len(demand))
	r2 := rangeM * rangeM
	var out []geo.Point
	for g := 0; g < n; g++ {
		bestIdx := -1
		bestGain := -1
		for ci, c := range candidates {
			gain := 0
			for di, d := range demand {
				if covered[di] {
					continue
				}
				if c.DistSq(d) <= r2 {
					gain++
				}
			}
			if gain > bestGain {
				bestGain = gain
				bestIdx = ci
			}
		}
		if bestIdx < 0 {
			break
		}
		site := candidates[bestIdx]
		out = append(out, site)
		for di, d := range demand {
			if !covered[di] && site.DistSq(d) <= r2 {
				covered[di] = true
			}
		}
		// Remove the chosen candidate so ties don't repeat a site.
		candidates = append(candidates[:bestIdx], candidates[bestIdx+1:]...)
		if len(candidates) == 0 {
			break
		}
	}
	// Pad with grid points if the demand saturated early (all route
	// length covered before n gateways were placed).
	if len(out) < n {
		for _, p := range geo.GridPoints(ds.Area, n-len(out)) {
			out = append(out, p)
		}
	}
	return out, nil
}

// RouteCoverage reports the fraction of sampled route length within rangeM
// of at least one gateway: the objective the route-aware placement
// maximises, exposed for tests and reports.
func RouteCoverage(ds *tfl.Dataset, gateways []geo.Point, rangeM float64) (float64, error) {
	if ds == nil || len(ds.Routes) == 0 {
		return 0, fmt.Errorf("gwplan: coverage needs a dataset with routes")
	}
	demand := samplePolylines(ds, 200)
	if len(demand) == 0 {
		return 0, fmt.Errorf("gwplan: no demand points")
	}
	r2 := rangeM * rangeM
	hit := 0
	for _, d := range demand {
		for _, g := range gateways {
			if g.DistSq(d) <= r2 {
				hit++
				break
			}
		}
	}
	return float64(hit) / float64(len(demand)), nil
}

// samplePolylines returns points every stepM metres along every route.
func samplePolylines(ds *tfl.Dataset, stepM float64) []geo.Point {
	var pts []geo.Point
	for _, r := range ds.Routes {
		pl, err := r.Polyline()
		if err != nil {
			continue
		}
		for d := 0.0; d <= pl.Length(); d += stepM {
			pts = append(pts, pl.At(d))
		}
	}
	return pts
}
