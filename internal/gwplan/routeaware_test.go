package gwplan

import (
	"testing"
	"time"

	"mlorass/internal/geo"
	"mlorass/internal/tfl"
)

func twoCorridorDataset() *tfl.Dataset {
	return &tfl.Dataset{
		Area: geo.Square(10000),
		Routes: []tfl.Route{
			{
				ID: "A", SpeedMPS: 6,
				Points: []geo.Point{{X: 1000, Y: 2000}, {X: 9000, Y: 2000}},
			},
			{
				ID: "B", SpeedMPS: 6,
				Points: []geo.Point{{X: 1000, Y: 8000}, {X: 9000, Y: 8000}},
			},
		},
		Trips: []tfl.Trip{
			{ID: 0, RouteID: "A", Start: 0, Duration: time.Hour},
			{ID: 1, RouteID: "B", Start: 0, Duration: time.Hour},
		},
	}
}

func TestPlaceRouteAwareValidation(t *testing.T) {
	ds := twoCorridorDataset()
	if _, err := PlaceRouteAware(nil, 3, 1000); err == nil {
		t.Error("nil dataset accepted")
	}
	if _, err := PlaceRouteAware(&tfl.Dataset{}, 3, 1000); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := PlaceRouteAware(ds, 0, 1000); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := PlaceRouteAware(ds, 3, 0); err == nil {
		t.Error("zero range accepted")
	}
}

func TestPlaceRouteAwareSitesNearRoutes(t *testing.T) {
	ds := twoCorridorDataset()
	sites, err := PlaceRouteAware(ds, 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 4 {
		t.Fatalf("placed %d sites, want 4", len(sites))
	}
	for _, s := range sites {
		// Candidate sites are sampled on the corridors, which run at
		// y = 2000 and y = 8000.
		if s.Y != 2000 && s.Y != 8000 {
			t.Fatalf("site %v not on a corridor", s)
		}
	}
	// Both corridors deserve gateways: the greedy objective must not
	// stack everything on one.
	var onA, onB int
	for _, s := range sites {
		if s.Y == 2000 {
			onA++
		} else {
			onB++
		}
	}
	if onA == 0 || onB == 0 {
		t.Fatalf("coverage unbalanced: %d on A, %d on B", onA, onB)
	}
}

func TestRouteAwareBeatsGridOnCoverage(t *testing.T) {
	ds := twoCorridorDataset()
	const n, rangeM = 8, 1000

	aware, err := PlaceRouteAware(ds, n, rangeM)
	if err != nil {
		t.Fatal(err)
	}
	grid, err := Place(Grid, ds.Area, n, 0)
	if err != nil {
		t.Fatal(err)
	}

	cAware, err := RouteCoverage(ds, aware, rangeM)
	if err != nil {
		t.Fatal(err)
	}
	cGrid, err := RouteCoverage(ds, grid, rangeM)
	if err != nil {
		t.Fatal(err)
	}
	if cAware <= cGrid {
		t.Fatalf("route-aware coverage %.2f not above grid %.2f", cAware, cGrid)
	}
	if cAware < 0.9 {
		t.Fatalf("8 gateways at 1 km should blanket two 8 km corridors, got %.2f", cAware)
	}
}

func TestPlaceRouteAwarePadsWhenSaturated(t *testing.T) {
	// One short route saturates with a single gateway; the remaining
	// sites must still be returned (grid padding).
	ds := &tfl.Dataset{
		Area: geo.Square(10000),
		Routes: []tfl.Route{{
			ID: "S", SpeedMPS: 6,
			Points: []geo.Point{{X: 4900, Y: 5000}, {X: 5100, Y: 5000}},
		}},
		Trips: []tfl.Trip{{ID: 0, RouteID: "S", Start: 0, Duration: time.Hour}},
	}
	sites, err := PlaceRouteAware(ds, 5, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if len(sites) != 5 {
		t.Fatalf("placed %d sites, want 5 (with padding)", len(sites))
	}
}

func TestRouteCoverageValidation(t *testing.T) {
	if _, err := RouteCoverage(nil, nil, 1000); err == nil {
		t.Error("nil dataset accepted")
	}
	ds := twoCorridorDataset()
	cov, err := RouteCoverage(ds, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if cov != 0 {
		t.Fatalf("coverage with no gateways = %v", cov)
	}
}
