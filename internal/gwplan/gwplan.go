// Package gwplan places LoRaWAN gateways in the simulation area.
//
// The paper's main evaluation deploys gateways on a uniform grid "instead of
// a randomly deployed topology" so performance gains are attributable to the
// forwarding protocols rather than placement luck (Sec. VII-A6); random
// placement is kept for the paper's "further observations" ablation.
package gwplan

import (
	"fmt"

	"mlorass/internal/geo"
	"mlorass/internal/rng"
)

// Strategy selects a placement algorithm.
type Strategy int

// Placement strategies.
const (
	// Grid places gateways on a uniform cell-centred grid (the paper's
	// main setup).
	Grid Strategy = iota + 1
	// Random places gateways uniformly at random (the paper's ablation).
	Random
	// RouteAware places gateways greedily to maximise route coverage
	// (the paper's future-work direction; see PlaceRouteAware). It needs
	// the mobility dataset, so Place rejects it — the experiment layer
	// dispatches to PlaceRouteAware directly.
	RouteAware
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case Grid:
		return "grid"
	case Random:
		return "random"
	case RouteAware:
		return "route-aware"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// Valid reports whether s is a known strategy.
func (s Strategy) Valid() bool { return s == Grid || s == Random || s == RouteAware }

// Place returns n gateway positions inside area using the given strategy.
// The seed matters only for Random placement. It returns an error for
// invalid inputs so experiment configs fail loudly.
func Place(strategy Strategy, area geo.Rect, n int, seed uint64) ([]geo.Point, error) {
	if !strategy.Valid() {
		return nil, fmt.Errorf("gwplan: unknown strategy %d", int(strategy))
	}
	if strategy == RouteAware {
		return nil, fmt.Errorf("gwplan: route-aware placement needs a dataset; use PlaceRouteAware")
	}
	if n <= 0 {
		return nil, fmt.Errorf("gwplan: gateway count %d must be positive", n)
	}
	if area.Area() <= 0 {
		return nil, fmt.Errorf("gwplan: empty area")
	}
	switch strategy {
	case Grid:
		return geo.GridPoints(area, n), nil
	default:
		r := rng.New(seed)
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.Point{
				X: area.Min.X + r.Float64()*area.Width(),
				Y: area.Min.Y + r.Float64()*area.Height(),
			}
		}
		return pts, nil
	}
}
