package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 100 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			t.Fatalf("split children matched at draw %d", i)
		}
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(9)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Intn(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if math.Abs(float64(c-want)) > float64(want)/10 {
			t.Fatalf("bucket %d count %d deviates >10%% from %d", b, c, want)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("normal mean = %v, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(0.5)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-2) > 0.05 {
		t.Fatalf("exponential mean = %v, want ~2", mean)
	}
}

func TestExpPanicsOnNonPositiveRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestPoissonMean(t *testing.T) {
	r := New(19)
	for _, mean := range []float64{0.5, 3, 20, 100} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Fatalf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	r := New(1)
	if got := r.Poisson(0); got != 0 {
		t.Fatalf("Poisson(0) = %d, want 0", got)
	}
	if got := r.Poisson(-3); got != 0 {
		t.Fatalf("Poisson(-3) = %d, want 0", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate element %d", v)
		}
		seen[v] = true
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(29)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 36 {
		t.Fatalf("shuffle changed element multiset (sum=%d)", sum)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(31)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-3, 9)
		if v < -3 || v >= 9 {
			t.Fatalf("Uniform(-3,9) = %v out of range", v)
		}
	}
}

// Property: Intn always lands in range regardless of seed and bound.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, bound uint16) bool {
		n := int(bound)%1000 + 1
		r := New(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: same seed, same stream, for arbitrary seeds.
func TestQuickDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 20; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Norm(0, 1)
	}
	_ = sink
}
