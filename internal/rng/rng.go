// Package rng provides a deterministic, splittable pseudo-random number
// generator and the distributions the simulator needs.
//
// Every source of randomness in the repository flows from a single seed
// through this package so that complete simulation runs are bit-for-bit
// reproducible. The generator is xoshiro256** seeded via SplitMix64, the
// combination recommended by the xoshiro authors; it is not cryptographically
// secure and must never be used for security purposes.
package rng

import (
	"math"
	"math/bits"
)

// Source is a deterministic xoshiro256** generator.
//
// The zero value is NOT usable; construct with New or Split. Source is not
// safe for concurrent use: give each goroutine its own Split.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64, so that nearby seeds
// still produce uncorrelated streams.
func New(seed uint64) *Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not be seeded with all zeros; SplitMix64 of any seed
	// cannot produce four zero words, but guard anyway.
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return &src
}

// Split derives an independent child generator from the current state. The
// parent advances, so successive Splits return distinct streams.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xa0761d6478bd642f)
}

// Seeded is New returning the Source by value instead of by pointer, so a
// short-lived generator for a keyed draw can live on the caller's stack.
// Seeded(s) and *New(s) are bit-identical.
//
//mlorass:hotpath
func Seeded(seed uint64) Source {
	var src Source
	sm := seed
	for i := range src.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		src.s[i] = z ^ (z >> 31)
	}
	if src.s[0]|src.s[1]|src.s[2]|src.s[3] == 0 {
		src.s[0] = 0x9e3779b97f4a7c15
	}
	return src
}

// mix absorbs one word into a running SplitMix64-finalised key. Used by the
// KeyN helpers below; the fixed arity keeps key derivation allocation-free
// (a variadic signature would box the words into a slice).
//
//mlorass:hotpath
func mix(h, w uint64) uint64 {
	h += 0x9e3779b97f4a7c15
	z := h ^ w
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Key2 derives a draw key from a seed and two identity words. Keys feed
// Seeded so that a draw depends only on the intrinsic identities mixed in —
// never on how many draws other actors made before it — which is what makes
// concurrent simulation shards partition-invariant.
//
//mlorass:hotpath
func Key2(seed, a, b uint64) uint64 {
	return mix(mix(seed, a), b)
}

// Key3 derives a draw key from a seed and three identity words.
//
//mlorass:hotpath
func Key3(seed, a, b, c uint64) uint64 {
	return mix(mix(mix(seed, a), b), c)
}

// Key4 derives a draw key from a seed and four identity words.
//
//mlorass:hotpath
func Key4(seed, a, b, c, d uint64) uint64 {
	return mix(mix(mix(mix(seed, a), b), c), d)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Lemire's unbiased bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed float64 with the given mean and
// standard deviation, using the polar Box–Muller method.
func (r *Source) Norm(mean, stddev float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return mean + stddev*u*math.Sqrt(-2*math.Log(s)/s)
	}
}

// LogNormal returns exp(N(mu, sigma)): a log-normal variate parameterised by
// the underlying normal's mean and standard deviation.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Exp returns an exponentially distributed float64 with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with non-positive rate")
	}
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u) / rate
		}
	}
}

// Poisson returns a Poisson-distributed int with the given mean, using
// Knuth's method for small means and normal approximation above 64.
func (r *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 64 {
		n := int(math.Round(r.Norm(mean, math.Sqrt(mean))))
		if n < 0 {
			return 0
		}
		return n
	}
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
