package rng

import "testing"

// TestSeededMatchesNew pins the contract that Seeded is the by-value twin
// of New: same seed, bit-identical stream.
func TestSeededMatchesNew(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, 0x9e3779b97f4a7c15, ^uint64(0)} {
		p := New(seed)
		v := Seeded(seed)
		for i := 0; i < 64; i++ {
			a, b := p.Uint64(), v.Uint64()
			if a != b {
				t.Fatalf("seed %#x draw %d: New=%#x Seeded=%#x", seed, i, a, b)
			}
		}
	}
}

// TestSeededZeroGuard proves the all-zero xoshiro state guard survives in
// the by-value constructor (same guard as New).
func TestSeededZeroGuard(t *testing.T) {
	v := Seeded(0)
	if v.s[0]|v.s[1]|v.s[2]|v.s[3] == 0 {
		t.Fatal("Seeded(0) produced an all-zero state")
	}
}

// TestKeyMixersSensitivity checks every argument position of the key
// mixers changes the derived key, and that arities don't collide trivially.
func TestKeyMixersSensitivity(t *testing.T) {
	base := Key4(7, 1, 2, 3, 4)
	variants := []uint64{
		Key4(8, 1, 2, 3, 4),
		Key4(7, 9, 2, 3, 4),
		Key4(7, 1, 9, 3, 4),
		Key4(7, 1, 2, 9, 4),
		Key4(7, 1, 2, 3, 9),
		Key3(7, 1, 2, 3),
		Key2(7, 1, 2),
	}
	for i, v := range variants {
		if v == base {
			t.Fatalf("variant %d collides with base key %#x", i, base)
		}
	}
	// Argument order matters: swapped identities must not collide.
	if Key2(7, 1, 2) == Key2(7, 2, 1) {
		t.Fatal("Key2 is symmetric in its identity words")
	}
	if Key3(7, 1, 2, 3) == Key3(7, 3, 2, 1) {
		t.Fatal("Key3 is symmetric in its identity words")
	}
}

// TestKeyMixersDeterministic pins that key derivation is a pure function.
func TestKeyMixersDeterministic(t *testing.T) {
	if Key4(1, 2, 3, 4, 5) != Key4(1, 2, 3, 4, 5) {
		t.Fatal("Key4 not deterministic")
	}
	a := Seeded(Key3(1, 2, 3, 4))
	b := Seeded(Key3(1, 2, 3, 4))
	for i := 0; i < 8; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("keyed streams diverge at draw %d", i)
		}
	}
}

// TestKeyedDrawAllocs pins the whole keyed-draw path — key mixing, stack
// Source construction, one uniform draw — at zero heap allocations, the
// property the sharded engine's hot path depends on.
func TestKeyedDrawAllocs(t *testing.T) {
	var sink float64
	allocs := testing.AllocsPerRun(1000, func() {
		src := Seeded(Key3(0xabcdef, 12, 34, 56))
		sink += src.Float64()
	})
	if allocs != 0 {
		t.Fatalf("keyed draw allocates %.1f times per run, want 0", allocs)
	}
	_ = sink
}
