package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Fatalf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
}

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{-1, -1}, Point{2, 3}, 5},
	}
	for _, tt := range tests {
		if got := tt.p.Dist(tt.q); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("Dist(%v,%v) = %v, want %v", tt.p, tt.q, got, tt.want)
		}
		if got := tt.p.DistSq(tt.q); !almostEq(got, tt.want*tt.want, 1e-9) {
			t.Errorf("DistSq(%v,%v) = %v", tt.p, tt.q, got)
		}
	}
}

func TestLerp(t *testing.T) {
	p, q := Point{0, 0}, Point{10, 20}
	if got := p.Lerp(q, 0); got != p {
		t.Fatalf("Lerp(0) = %v", got)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Fatalf("Lerp(1) = %v", got)
	}
	if got := p.Lerp(q, 0.5); got != (Point{5, 10}) {
		t.Fatalf("Lerp(0.5) = %v", got)
	}
}

func TestRect(t *testing.T) {
	r := Square(100)
	if r.Width() != 100 || r.Height() != 100 || r.Area() != 10000 {
		t.Fatalf("Square(100) dims wrong: %+v", r)
	}
	if !r.Contains(Point{50, 50}) || !r.Contains(Point{0, 0}) || !r.Contains(Point{100, 100}) {
		t.Fatal("Contains failed on interior/boundary")
	}
	if r.Contains(Point{-0.01, 50}) || r.Contains(Point{50, 100.01}) {
		t.Fatal("Contains accepted exterior point")
	}
	if got := r.Center(); got != (Point{50, 50}) {
		t.Fatalf("Center = %v", got)
	}
	if got := r.Clamp(Point{-5, 120}); got != (Point{0, 100}) {
		t.Fatalf("Clamp = %v", got)
	}
}

func TestEmptyRectArea(t *testing.T) {
	r := Rect{Min: Point{5, 5}, Max: Point{1, 1}}
	if got := r.Area(); got != 0 {
		t.Fatalf("inverted rect area = %v, want 0", got)
	}
}

func TestNewPolylineValidation(t *testing.T) {
	if _, err := NewPolyline(nil); err == nil {
		t.Fatal("nil points accepted")
	}
	if _, err := NewPolyline([]Point{{0, 0}}); err == nil {
		t.Fatal("single point accepted")
	}
	if _, err := NewPolyline([]Point{{1, 1}, {1, 1}}); err == nil {
		t.Fatal("zero-length polyline accepted")
	}
}

func TestPolylineCopiesInput(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}}
	pl, err := NewPolyline(pts)
	if err != nil {
		t.Fatal(err)
	}
	pts[0] = Point{999, 999}
	if pl.Start() != (Point{0, 0}) {
		t.Fatal("polyline aliased caller slice")
	}
}

func TestPolylineAt(t *testing.T) {
	pl, err := NewPolyline([]Point{{0, 0}, {10, 0}, {10, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Length(); !almostEq(got, 20, 1e-12) {
		t.Fatalf("Length = %v", got)
	}
	tests := []struct {
		d    float64
		want Point
	}{
		{-5, Point{0, 0}},
		{0, Point{0, 0}},
		{5, Point{5, 0}},
		{10, Point{10, 0}},
		{15, Point{10, 5}},
		{20, Point{10, 10}},
		{25, Point{10, 10}},
	}
	for _, tt := range tests {
		got := pl.At(tt.d)
		if !almostEq(got.X, tt.want.X, 1e-9) || !almostEq(got.Y, tt.want.Y, 1e-9) {
			t.Errorf("At(%v) = %v, want %v", tt.d, got, tt.want)
		}
	}
}

func TestPolylineEndpoints(t *testing.T) {
	pl, err := NewPolyline([]Point{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if pl.NumPoints() != 3 {
		t.Fatalf("NumPoints = %d", pl.NumPoints())
	}
	if pl.Start() != (Point{1, 2}) || pl.End() != (Point{5, 6}) {
		t.Fatal("Start/End wrong")
	}
	if pl.Point(1) != (Point{3, 4}) {
		t.Fatal("Point(1) wrong")
	}
}

func TestGridPointsCountAndBounds(t *testing.T) {
	r := Square(24500)
	for _, n := range []int{1, 2, 40, 50, 60, 70, 80, 90, 100, 97} {
		pts := GridPoints(r, n)
		if len(pts) != n {
			t.Fatalf("GridPoints(%d) returned %d points", n, len(pts))
		}
		for _, p := range pts {
			if !r.Contains(p) {
				t.Fatalf("GridPoints(%d) point %v outside area", n, p)
			}
		}
	}
}

func TestGridPointsZero(t *testing.T) {
	if pts := GridPoints(Square(10), 0); pts != nil {
		t.Fatalf("GridPoints(0) = %v, want nil", pts)
	}
}

func TestGridPointsSpread(t *testing.T) {
	// Grid points must be well separated: for 100 points in a 24.5 km
	// square the nearest-neighbour distance should be close to one cell.
	r := Square(24500)
	pts := GridPoints(r, 100)
	minDist := math.Inf(1)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d < minDist {
				minDist = d
			}
		}
	}
	if minDist < 2000 {
		t.Fatalf("grid min pairwise distance %v m too small", minDist)
	}
}

// Property: At(d) is always on or between the polyline's bounding coordinates.
func TestQuickPolylineAtWithinBounds(t *testing.T) {
	pl, err := NewPolyline([]Point{{0, 0}, {100, 50}, {200, 0}, {300, 120}})
	if err != nil {
		t.Fatal(err)
	}
	f := func(d float64) bool {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return true
		}
		p := pl.At(math.Mod(math.Abs(d), 500))
		return p.X >= 0 && p.X <= 300 && p.Y >= 0 && p.Y <= 120
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: arc-length parameterisation is monotone in distance travelled
// from the start vertex.
func TestQuickPolylineMonotone(t *testing.T) {
	pl, err := NewPolyline([]Point{{0, 0}, {50, 0}, {100, 0}})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		da := math.Mod(math.Abs(a), 100)
		db := math.Mod(math.Abs(b), 100)
		if da > db {
			da, db = db, da
		}
		return pl.At(da).X <= pl.At(db).X+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPolylineAt(b *testing.B) {
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{float64(i * 10), float64((i % 7) * 3)}
	}
	pl, err := NewPolyline(pts)
	if err != nil {
		b.Fatal(err)
	}
	length := pl.Length()
	b.ResetTimer()
	var sink Point
	for i := 0; i < b.N; i++ {
		sink = pl.At(length * float64(i%1000) / 1000)
	}
	_ = sink
}
