// Package geo provides the planar geometry primitives the mobility and radio
// substrates are built on: points, segments, arc-length parameterised
// polylines, rectangles, and uniform grid placement.
//
// All coordinates are metres in a local planar frame. The paper's 600 km²
// London evaluation area maps to a square roughly 24.5 km on each side; at
// that scale a planar approximation of the Earth's surface introduces less
// error than LoRa shadowing, so no geodesic maths is required.
package geo

import (
	"fmt"
	"math"
)

// Point is a position in metres in the local planar frame.
type Point struct {
	X float64
	Y float64
}

// String renders the point with centimetre precision for logs.
func (p Point) String() string {
	return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y)
}

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dist returns the Euclidean distance in metres between p and q.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance, avoiding the square root on
// hot paths such as neighbourhood queries.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Lerp linearly interpolates from p to q; t=0 yields p, t=1 yields q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Rect is an axis-aligned rectangle. Min is the lower-left corner and Max the
// upper-right; a Rect with Max components below Min is empty.
type Rect struct {
	Min Point
	Max Point
}

// Square returns a square of the given side length anchored at the origin.
func Square(side float64) Rect {
	return Rect{Min: Point{0, 0}, Max: Point{side, side}}
}

// Width returns the horizontal extent of the rectangle.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of the rectangle.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the rectangle's area in square metres; empty rects report 0.
func (r Rect) Area() float64 {
	w, h := r.Width(), r.Height()
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Contains reports whether p lies inside r (inclusive of edges).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Center returns the rectangle's midpoint.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Clamp returns the point in r nearest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// Polyline is an open chain of points with a precomputed arc-length
// parameterisation, supporting O(log n) position lookup by distance along the
// line. Construct with NewPolyline.
type Polyline struct {
	pts []Point
	// cum[i] is the arc length from pts[0] to pts[i]; cum[0] == 0.
	cum []float64
}

// NewPolyline builds a polyline from at least two points. The input slice is
// copied. It returns an error when fewer than two points are supplied or when
// the total length is zero (all points coincident).
func NewPolyline(pts []Point) (*Polyline, error) {
	if len(pts) < 2 {
		return nil, fmt.Errorf("geo: polyline needs >= 2 points, got %d", len(pts))
	}
	cp := make([]Point, len(pts))
	copy(cp, pts)
	cum := make([]float64, len(cp))
	for i := 1; i < len(cp); i++ {
		cum[i] = cum[i-1] + cp[i-1].Dist(cp[i])
	}
	if cum[len(cum)-1] == 0 {
		return nil, fmt.Errorf("geo: polyline has zero length")
	}
	return &Polyline{pts: cp, cum: cum}, nil
}

// Length returns the total arc length in metres.
func (pl *Polyline) Length() float64 { return pl.cum[len(pl.cum)-1] }

// NumPoints returns the number of vertices.
func (pl *Polyline) NumPoints() int { return len(pl.pts) }

// Point returns vertex i.
func (pl *Polyline) Point(i int) Point { return pl.pts[i] }

// Start returns the first vertex.
func (pl *Polyline) Start() Point { return pl.pts[0] }

// End returns the last vertex.
func (pl *Polyline) End() Point { return pl.pts[len(pl.pts)-1] }

// At returns the position at arc-length distance d from the start. Distances
// below zero clamp to the start and beyond Length() clamp to the end.
func (pl *Polyline) At(d float64) Point {
	if d <= 0 {
		return pl.pts[0]
	}
	if d >= pl.Length() {
		return pl.pts[len(pl.pts)-1]
	}
	return pl.interpolate(pl.segmentOf(d), d)
}

// AtHint is At with a resumable segment cursor: *hint is the caller's last
// segment index, updated in place. Queries that stay on or near the hinted
// segment — the simulator's pattern, where a vehicle advances a few metres
// between events — resolve by walking at most walkLimit segments instead of
// a full binary search; larger jumps (non-monotonic query time, shift
// wrap-around) fall back to the search. The returned position is identical
// to At's for every d; only the lookup cost differs.
func (pl *Polyline) AtHint(d float64, hint *int) Point {
	if d <= 0 {
		*hint = 0
		return pl.pts[0]
	}
	if d >= pl.Length() {
		*hint = len(pl.pts) - 2
		return pl.pts[len(pl.pts)-1]
	}
	// walkLimit bounds the linear resume before falling back to binary
	// search; small enough that a cold hint costs one extra cache line,
	// large enough that consecutive queries almost never fall back.
	const walkLimit = 8
	i := *hint
	if i < 0 || i > len(pl.pts)-2 {
		i = pl.segmentOf(d)
	} else {
		for steps := 0; ; steps++ {
			if steps > walkLimit {
				i = pl.segmentOf(d)
				break
			}
			if pl.cum[i] > d {
				i--
				continue
			}
			if d >= pl.cum[i+1] {
				i++
				continue
			}
			break
		}
	}
	*hint = i
	return pl.interpolate(i, d)
}

// segmentOf binary-searches the segment containing arc length d: the
// largest index i with cum[i] <= d. Callers have excluded the clamped ends.
func (pl *Polyline) segmentOf(d float64) int {
	lo, hi := 0, len(pl.cum)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if pl.cum[mid] <= d {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// interpolate returns the position at arc length d within segment i.
func (pl *Polyline) interpolate(i int, d float64) Point {
	segLen := pl.cum[i+1] - pl.cum[i]
	if segLen == 0 {
		return pl.pts[i]
	}
	t := (d - pl.cum[i]) / segLen
	return pl.pts[i].Lerp(pl.pts[i+1], t)
}

// GridPoints places n points on an approximately square uniform grid inside
// r, cell-centred so no point sits on the boundary. This mirrors the paper's
// uniform-grid gateway deployment (Sec. VII-A6). It returns exactly n points;
// when n is not a perfect rectangle count the trailing row is centred.
func GridPoints(r Rect, n int) []Point {
	if n <= 0 {
		return nil
	}
	cols := int(math.Ceil(math.Sqrt(float64(n) * r.Width() / math.Max(r.Height(), 1e-9))))
	if cols < 1 {
		cols = 1
	}
	rows := (n + cols - 1) / cols
	pts := make([]Point, 0, n)
	cellW := r.Width() / float64(cols)
	cellH := r.Height() / float64(rows)
	for row := 0; row < rows && len(pts) < n; row++ {
		remaining := n - len(pts)
		rowCount := cols
		if remaining < cols {
			rowCount = remaining
		}
		// Centre short rows so the grid stays symmetric.
		offset := (r.Width() - float64(rowCount)*cellW) / 2
		for c := 0; c < rowCount; c++ {
			pts = append(pts, Point{
				X: r.Min.X + offset + (float64(c)+0.5)*cellW,
				Y: r.Min.Y + (float64(row)+0.5)*cellH,
			})
		}
	}
	return pts
}
