package core

import (
	"math"
	"testing"
	"testing/quick"

	"mlorass/internal/radio"
)

func TestLinkModelValidate(t *testing.T) {
	if err := DefaultLinkModel(0.1).Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	bad := []LinkModel{
		{GammaMinDBm: -70, GammaMaxDBm: -124, CMaxPPS: 1}, // inverted
		{GammaMinDBm: -124, GammaMaxDBm: -70, CMaxPPS: 0}, // zero cmax
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestCapacityEq5(t *testing.T) {
	m := LinkModel{GammaMinDBm: -120, GammaMaxDBm: -80, CMaxPPS: 2}
	tests := []struct {
		rssi radio.DBm
		want float64
	}{
		{-130, 0}, // below γmin
		{-120, 0}, // at γmin: zero capacity
		{-100, 1}, // midpoint of the ramp
		{-80, 2},  // at γmax: full capacity
		{-50, 2},  // above γmax clamps
	}
	for _, tt := range tests {
		if got := m.Capacity(tt.rssi); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Capacity(%v) = %v, want %v", tt.rssi, got, tt.want)
		}
	}
}

func TestRCAETXEq6(t *testing.T) {
	m := LinkModel{GammaMinDBm: -120, GammaMaxDBm: -80, CMaxPPS: 2}
	if got := m.RCAETX(-80); got != 0.5 {
		t.Fatalf("RCAETX at full capacity = %v, want 0.5", got)
	}
	if got := m.RCAETX(-125); !math.IsInf(got, 1) {
		t.Fatalf("RCAETX of dead link = %v, want +Inf", got)
	}
}

func TestCustomCapacityFunc(t *testing.T) {
	// A hyperbolic shape, as the paper suggests users may substitute.
	m := LinkModel{
		GammaMinDBm: -120, GammaMaxDBm: -80, CMaxPPS: 1,
		CapacityFunc: func(norm float64) float64 { return norm * norm },
	}
	if got := m.Capacity(-100); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("quadratic capacity at midpoint = %v, want 0.25", got)
	}
	// Out-of-range custom outputs are clamped.
	m.CapacityFunc = func(norm float64) float64 { return 5 }
	if got := m.Capacity(-100); got != 1 {
		t.Fatalf("overdriven capacity = %v, want clamped 1", got)
	}
	m.CapacityFunc = func(norm float64) float64 { return -5 }
	if got := m.Capacity(-100); got != 0 {
		t.Fatalf("negative capacity = %v, want clamped 0", got)
	}
}

func TestShouldForwardGreedyEq1(t *testing.T) {
	inf := math.Inf(1)
	tests := []struct {
		name                 string
		own, neighbour, link float64
		want                 bool
	}{
		{"clear win", 100, 10, 5, true},
		{"exact tie keeps", 15, 10, 5, false},
		{"neighbour worse", 10, 100, 5, false},
		{"own inf forwards", inf, 10, 5, true},
		{"neighbour inf refuses", 100, inf, 5, false},
		{"link inf refuses", 100, 10, inf, false},
		{"both inf refuses", inf, inf, 5, false},
		{"nan rhs refuses", 100, inf, -inf, false},
	}
	for _, tt := range tests {
		if got := ShouldForwardGreedy(tt.own, tt.neighbour, tt.link); got != tt.want {
			t.Errorf("%s: ShouldForwardGreedy(%v,%v,%v) = %v", tt.name, tt.own, tt.neighbour, tt.link, got)
		}
	}
}

// Property: capacity is monotone non-decreasing in RSSI and bounded by
// [0, CMax].
func TestQuickCapacityMonotoneBounded(t *testing.T) {
	m := DefaultLinkModel(0.5)
	f := func(a, b int16) bool {
		ra, rb := radio.DBm(a)/100, radio.DBm(b)/100
		if ra > rb {
			ra, rb = rb, ra
		}
		ca, cb := m.Capacity(ra), m.Capacity(rb)
		return ca <= cb+1e-12 && ca >= 0 && cb <= m.CMaxPPS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: forwarding never happens toward a strictly worse total cost.
func TestQuickGreedyNeverWorsens(t *testing.T) {
	f := func(own, neighbour, link float64) bool {
		own, neighbour, link = math.Abs(own), math.Abs(neighbour), math.Abs(link)
		if ShouldForwardGreedy(own, neighbour, link) {
			return neighbour+link < own
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
