package core

import "math"

// ROBCWeight computes ω(x,y)(t) from Eq. (10):
//
//	ω = Qx/φx − Qy/φy
//
// where the queue lengths are corrected by each device's Real-time Gateway
// Quality: Q/φ approximates how long the backlog will take to drain through
// that device's sink contacts. Device x forwards toward y only when ω > 0
// (forwarding to itself has weight ω(x,x) = 0, so "keep" is the ω ≤ 0 case).
func ROBCWeight(qx, qy int, phiX, phiY float64) float64 {
	return float64(qx)/phiX - float64(qy)/phiY
}

// ROBCTransfer computes δ(x,y)(t), the number of messages x hands to y when
// ω > 0 (Sec. V-B2):
//
//	δ = Qx − Qy · φx/φy
//
// the amount that equalises the φ-corrected queues, rather than the full
// link capacity — the paper sends only δ to suppress recursive loops under
// sparse duty-cycled links. The result is clamped to [0, Qx].
func ROBCTransfer(qx, qy int, phiX, phiY float64) int {
	if qx <= 0 {
		return 0
	}
	d := float64(qx) - float64(qy)*(phiX/phiY)
	if math.IsNaN(d) || d <= 0 {
		return 0
	}
	n := int(math.Ceil(d))
	if n > qx {
		n = qx
	}
	return n
}

// ShouldForwardROBC reports whether ROBC forwards from x to y: the weight
// comparison ω(x,y) > ω(x,x) = 0, guarded against non-finite φ.
func ShouldForwardROBC(qx, qy int, phiX, phiY float64) bool {
	if phiX <= 0 || phiY <= 0 || math.IsNaN(phiX) || math.IsNaN(phiY) {
		return false
	}
	return ROBCWeight(qx, qy, phiX, phiY) > 0
}
