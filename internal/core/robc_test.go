package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestROBCWeightEq10(t *testing.T) {
	tests := []struct {
		name       string
		qx, qy     int
		phiX, phiY float64
		want       float64
	}{
		{"equal state", 10, 10, 0.5, 0.5, 0},
		{"x backed up", 20, 10, 0.5, 0.5, 20},
		{"y better quality compensates", 10, 10, 0.5, 1.0, 10},
		{"x better quality", 10, 10, 1.0, 0.5, -10},
		{"empty x", 0, 10, 0.5, 0.5, -20},
	}
	for _, tt := range tests {
		if got := ROBCWeight(tt.qx, tt.qy, tt.phiX, tt.phiY); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s: ω = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestROBCTransferDelta(t *testing.T) {
	tests := []struct {
		name       string
		qx, qy     int
		phiX, phiY float64
		want       int
	}{
		{"equalise equal phi", 20, 10, 0.5, 0.5, 10},
		{"empty queue", 0, 10, 0.5, 0.5, 0},
		{"negative delta keeps", 10, 20, 0.5, 0.5, 0},
		{"phi ratio scales", 20, 10, 1.0, 0.5, 0},      // δ = 20 − 10·2 = 0
		{"phi ratio favours y", 20, 10, 0.25, 0.5, 15}, // δ = 20 − 10·0.5 = 15
		{"clamped to queue", 5, 0, 10, 0.001, 5},
		{"y empty sends all", 12, 0, 0.5, 0.5, 12},
	}
	for _, tt := range tests {
		if got := ROBCTransfer(tt.qx, tt.qy, tt.phiX, tt.phiY); got != tt.want {
			t.Errorf("%s: δ = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestROBCTransferCeils(t *testing.T) {
	// δ = 10 − 3·(0.5/0.3) = 5, exactly integral; perturb φ to force a
	// fractional δ and confirm ceiling.
	got := ROBCTransfer(10, 3, 0.5, 0.4) // 10 − 3·1.25 = 6.25 → 7
	if got != 7 {
		t.Fatalf("δ = %d, want 7 (ceil of 6.25)", got)
	}
}

func TestShouldForwardROBC(t *testing.T) {
	if !ShouldForwardROBC(20, 10, 0.5, 0.5) {
		t.Fatal("positive weight refused")
	}
	if ShouldForwardROBC(10, 10, 0.5, 0.5) {
		t.Fatal("zero weight forwarded (must compare against ω(x,x)=0)")
	}
	if ShouldForwardROBC(10, 0, 0, 0.5) || ShouldForwardROBC(10, 0, 0.5, 0) {
		t.Fatal("non-positive φ forwarded")
	}
	if ShouldForwardROBC(10, 0, math.NaN(), 0.5) {
		t.Fatal("NaN φ forwarded")
	}
}

// Property: δ never exceeds the sender's queue and never moves data toward a
// node whose φ-corrected backlog is already larger (the Lyapunov-drift
// safety property backpressure stability rests on).
func TestQuickROBCTransferSafety(t *testing.T) {
	f := func(qxRaw, qyRaw uint16, pxRaw, pyRaw uint8) bool {
		qx, qy := int(qxRaw%1000), int(qyRaw%1000)
		phiX := float64(pxRaw%100+1) / 100
		phiY := float64(pyRaw%100+1) / 100
		d := ROBCTransfer(qx, qy, phiX, phiY)
		if d < 0 || d > qx {
			return false
		}
		if d > 0 && ROBCWeight(qx, qy, phiX, phiY) < 0 {
			// A strictly negative weight must never transfer. (A
			// zero weight can yield δ>0 only through the ceil,
			// which moves at most one message — accept δ≤1.)
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: after transferring δ, the sender's φ-corrected queue is no
// smaller than the receiver's would-have-been — i.e. δ never overshoots the
// equalisation point by more than the integer ceiling.
func TestQuickROBCNoOvershoot(t *testing.T) {
	f := func(qxRaw, qyRaw uint16, pxRaw, pyRaw uint8) bool {
		qx, qy := int(qxRaw%1000), int(qyRaw%1000)
		phiX := float64(pxRaw%100+1) / 100
		phiY := float64(pyRaw%100+1) / 100
		d := ROBCTransfer(qx, qy, phiX, phiY)
		if d == 0 {
			return true
		}
		// Ideal δ* satisfies qx − δ* = (qy + 0)·φx/φy; integer δ may
		// overshoot by at most 1.
		ideal := float64(qx) - float64(qy)*phiX/phiY
		return float64(d) <= ideal+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkROBCDecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if ShouldForwardROBC(i%100, (i+7)%100, 0.3, 0.6) {
			ROBCTransfer(i%100, (i+7)%100, 0.3, 0.6)
		}
	}
}
