package core_test

import (
	"fmt"
	"time"

	"mlorass/internal/core"
	"mlorass/internal/radio"
)

// ExampleGatewayEstimator shows the RCA-ETX life cycle: the metric tracks
// contact history in real time, growing while a device is disconnected and
// recovering once it reaches a gateway again.
func ExampleGatewayEstimator() {
	est, err := core.NewGatewayEstimator(core.DefaultGatewayConfig())
	if err != nil {
		panic(err)
	}
	slot := 3 * time.Minute

	// Three connected slots at 0.05 packets/s (PST 20 s each).
	now := time.Duration(0)
	for i := 0; i < 3; i++ {
		est.Observe(now, true, 0.05, 0)
		now += slot
	}
	fmt.Printf("connected: %.1f s\n", est.RCAETX())

	// Two disconnected slots: the estimate climbs with elapsed time.
	for i := 0; i < 2; i++ {
		est.Observe(now, false, 0, 0)
		now += slot
	}
	fmt.Printf("after outage: %.1f s\n", est.RCAETX())

	// Reconnection pulls it back down (EWMA, α = 0.5).
	est.Observe(now, true, 0.05, 0)
	fmt.Printf("reconnected: %.1f s\n", est.RCAETX())
	// Output:
	// connected: 20.0 s
	// after outage: 245.0 s
	// reconnected: 132.5 s
}

// ExampleShouldForwardGreedy demonstrates the Eq. (1) decision: forward
// exactly when the neighbour's total cost undercuts holding the data.
func ExampleShouldForwardGreedy() {
	own := 800.0       // my RCA-ETX to the sinks, seconds
	neighbour := 120.0 // their advertised RCA-ETX
	link := 200.0      // RCA-ETX of the link between us (Eq. 6)

	fmt.Println(core.ShouldForwardGreedy(own, neighbour, link))
	fmt.Println(core.ShouldForwardGreedy(300, neighbour, link))
	// Output:
	// true
	// false
}

// ExampleROBCTransfer shows the backpressure transfer amount δ: enough to
// equalise the φ-corrected queues, never more than the sender holds.
func ExampleROBCTransfer() {
	myQueue, theirQueue := 30, 6
	myPhi, theirPhi := 0.02, 0.05 // they reach gateways 2.5x as fast

	if core.ShouldForwardROBC(myQueue, theirQueue, myPhi, theirPhi) {
		delta := core.ROBCTransfer(myQueue, theirQueue, myPhi, theirPhi)
		fmt.Printf("forward %d messages\n", delta)
	}
	// Output:
	// forward 28 messages
}

// ExampleLinkModel maps an overheard RSSI to a link cost per Eqs. (5)–(6).
func ExampleLinkModel() {
	link := core.DefaultLinkModel(0.023) // cmax: one bundle per duty window

	for _, rssi := range []radio.DBm{-80, -100, -130} {
		fmt.Printf("RSSI %4.0f dBm -> capacity %.4f pkt/s\n", rssi, link.Capacity(rssi))
	}
	// Output:
	// RSSI  -80 dBm -> capacity 0.0187 pkt/s
	// RSSI -100 dBm -> capacity 0.0102 pkt/s
	// RSSI -130 dBm -> capacity 0.0000 pkt/s
}
