// Package core implements the paper's primary contribution: the Real-Time
// Contact-Aware Expected Transmission Count (RCA-ETX) metric and the
// Real-time Opportunistic Backpressure Collection (ROBC) scheme.
//
// The layout mirrors the paper:
//
//   - GatewayEstimator: Packet Service Time and its real-time estimate RPST
//     (Eqs. 2–3) smoothed by an EWMA (Eq. 4) into RCA-ETX(x, S), plus the
//     Real-time Gateway Quality φ = 1/RCA-ETX with stability clamps
//     (Sec. V-B1).
//   - LinkModel: the RSSI→capacity map (Eq. 5) and RCA-ETX(x, y) = 1/c
//     (Eq. 6) for device-to-device links.
//   - Greedy forwarding rule (Eq. 1) and ROBC weights/transfer amounts
//     (Eq. 10 and the δ rule in Sec. V-B2).
//   - Baselines for ablation: classic ETX (delivery-ratio based) and the
//     long-term-average CA-ETX this work generalises.
//
// All metric values are expressed in seconds of expected packet service
// time, so gateway and link terms in Eq. (1) add without unit conversion.
package core

import (
	"fmt"
	"math"
	"time"
)

// GatewayConfig parameterises the RCA-ETX(x, S) estimator.
type GatewayConfig struct {
	// Alpha is the EWMA weight in Eq. (4); the paper's evaluation uses
	// 0.5. Higher values track mobility faster but schedule less stably.
	Alpha float64
	// Delta is Δt, the device-to-sink communication interval (the
	// paper's devices attempt an uplink every 3 minutes).
	Delta time.Duration
	// DefaultCapacity (packets/second) is the service rate assumed for a
	// contact whose capacity has not been measured yet; 1/DefaultCapacity
	// is the transmission-time term of the PST.
	DefaultCapacity float64
	// PhiMin and PhiMax clamp the Real-time Gateway Quality
	// φ = 1/RCA-ETX; the bounds are required for ROBC stability
	// (Sec. V-B1: 0 < φmin ≤ φ ≤ φmax < ∞).
	PhiMin float64
	PhiMax float64
}

// DefaultGatewayConfig returns the evaluation parameters: α = 0.5,
// Δt = 3 min, and RGQ clamps spanning service rates from one packet per
// ~3 hours to one per second.
func DefaultGatewayConfig() GatewayConfig {
	return GatewayConfig{
		Alpha:           0.5,
		Delta:           3 * time.Minute,
		DefaultCapacity: 0.05,
		PhiMin:          1.0 / 10000,
		PhiMax:          1.0,
	}
}

// Validate reports configuration errors.
func (c GatewayConfig) Validate() error {
	if c.Alpha <= 0 || c.Alpha > 1 {
		return fmt.Errorf("core: alpha %v outside (0, 1]", c.Alpha)
	}
	if c.Delta <= 0 {
		return fmt.Errorf("core: delta %v must be positive", c.Delta)
	}
	if c.DefaultCapacity <= 0 {
		return fmt.Errorf("core: default capacity %v must be positive", c.DefaultCapacity)
	}
	if c.PhiMin <= 0 || c.PhiMax < c.PhiMin || math.IsInf(c.PhiMax, 1) {
		return fmt.Errorf("core: phi bounds [%v, %v] violate 0 < φmin ≤ φmax < ∞", c.PhiMin, c.PhiMax)
	}
	return nil
}

// GatewayEstimator maintains one device's RCA-ETX(x, S): the expected packet
// service time toward the set of sinks, estimated in real time from contact
// history (Eqs. 2–4). One estimator lives on each device; Observe is called
// at every uplink slot.
type GatewayEstimator struct {
	cfg GatewayConfig

	// est is E[µ'(t)], the EWMA of the real-time PST, in seconds.
	est    float64
	hasEst bool

	// Contact bookkeeping: ẗ n (end of the most recent sink contact) and
	// the capacity measured during it, for the disconnected branch of
	// Eq. (3).
	lastContactEnd time.Duration
	lastContactCap float64
	everContacted  bool

	observations uint64
}

// NewGatewayEstimator builds an estimator; the configuration is validated.
func NewGatewayEstimator(cfg GatewayConfig) (*GatewayEstimator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &GatewayEstimator{cfg: cfg}, nil
}

// Config returns the estimator's configuration.
func (e *GatewayEstimator) Config() GatewayConfig { return e.cfg }

// Observations returns how many slots have been observed.
func (e *GatewayEstimator) Observations() uint64 { return e.observations }

// Observe records the device's sink-contact state at uplink slot time now.
//
// connected reports whether the device currently reaches any sink;
// capacityPPS is the measured service rate of that contact in packets per
// second (ignored when disconnected; zero or negative values fall back to
// the configured default). tDelta is t∆x from Eq. (3): the residual wait
// before the device's next broadcast opportunity within its slot.
//
// The method computes the RPST µ'(t) per Eq. (3) and folds it into the EWMA
// per Eq. (4).
func (e *GatewayEstimator) Observe(now time.Duration, connected bool, capacityPPS float64, tDelta time.Duration) {
	e.observations++
	if tDelta < 0 {
		tDelta = 0
	}

	var rpst float64
	switch {
	case connected:
		cap := capacityPPS
		if cap <= 0 {
			cap = e.cfg.DefaultCapacity
		}
		// Connected branch of Eq. (3): transmission time at the
		// capacity observed in the current/last slot, plus the wait
		// to the slot itself.
		rpst = 1/cap + tDelta.Seconds()
		e.lastContactEnd = now
		e.lastContactCap = cap
		e.everContacted = true
	case e.everContacted:
		// Disconnected branch: last contact's transmission time plus
		// the time elapsed since that contact (the estimated delay
		// standing in for the unknowable next-contact time t̊ n+1).
		rpst = 1/e.lastContactCap + (now - e.lastContactEnd).Seconds() + tDelta.Seconds()
	default:
		// Never contacted any sink: be pessimistic and grow with
		// elapsed time so devices with sink history always win.
		rpst = 1/e.cfg.DefaultCapacity + now.Seconds() + tDelta.Seconds()
	}

	if !e.hasEst {
		// Eq. (4), t = 0 case.
		e.est = rpst
		e.hasEst = true
		return
	}
	// Eq. (4): E[µ'(t)] = (1-α)·E[µ'(t-Δt)] + α·µ'(t).
	a := e.cfg.Alpha
	e.est = (1-a)*e.est + a*rpst
}

// RCAETX returns the device's current RCA-ETX(x, S) in seconds. Before any
// observation it returns +Inf: a device with no estimate never attracts
// traffic.
func (e *GatewayEstimator) RCAETX() float64 {
	if !e.hasEst {
		return math.Inf(1)
	}
	return e.est
}

// Phi returns the Real-time Gateway Quality φ = 1/RCA-ETX clamped to
// [PhiMin, PhiMax] (Sec. V-B1).
func (e *GatewayEstimator) Phi() float64 {
	return ClampPhi(1/e.RCAETX(), e.cfg.PhiMin, e.cfg.PhiMax)
}

// ClampPhi bounds an RGQ value into [phiMin, phiMax]; non-finite inputs
// collapse to phiMin (worst quality).
func ClampPhi(phi, phiMin, phiMax float64) float64 {
	if math.IsNaN(phi) || phi < phiMin {
		return phiMin
	}
	if phi > phiMax {
		return phiMax
	}
	return phi
}
