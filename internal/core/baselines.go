package core

import (
	"math"
	"time"
)

// ETXEstimator is the classic Expected Transmission Count metric (De Couto
// et al.), kept as an ablation baseline: the inverse of the link's delivery
// ratio over a sliding window of attempts. Classic ETX ignores contact
// dynamics entirely, which is exactly the deficiency RCA-ETX addresses.
type ETXEstimator struct {
	window  int
	history []bool // true = delivered
	head    int
	filled  bool
}

// NewETXEstimator builds an estimator over a sliding window of the given
// number of transmission attempts (minimum 1).
func NewETXEstimator(window int) *ETXEstimator {
	if window < 1 {
		window = 1
	}
	return &ETXEstimator{window: window, history: make([]bool, window)}
}

// Record adds one transmission attempt outcome.
func (e *ETXEstimator) Record(delivered bool) {
	e.history[e.head] = delivered
	e.head++
	if e.head == e.window {
		e.head = 0
		e.filled = true
	}
}

// DeliveryRatio returns the fraction of recorded attempts that succeeded;
// with no history it returns 0.
func (e *ETXEstimator) DeliveryRatio() float64 {
	n := e.window
	if !e.filled {
		n = e.head
	}
	if n == 0 {
		return 0
	}
	ok := 0
	for i := 0; i < n; i++ {
		if e.history[i] {
			ok++
		}
	}
	return float64(ok) / float64(n)
}

// ETX returns 1/delivery-ratio, or +Inf for a dead link.
func (e *ETXEstimator) ETX() float64 {
	r := e.DeliveryRatio()
	if r <= 0 {
		return math.Inf(1)
	}
	return 1 / r
}

// CAETXEstimator is the Contact-Aware ETX of Yang et al. that RCA-ETX
// builds on, kept as an ablation baseline. It characterises the packet
// service time by its *long-term* statistics (cumulative mean and variance
// over all observed slots) instead of RCA-ETX's real-time EWMA — the
// staleness the paper argues disqualifies it for MLoRa-SS, where low duty
// cycles make historical µ and σ outdated (Sec. III-C).
type CAETXEstimator struct {
	n    uint64
	mean float64
	m2   float64 // Welford accumulator

	lastContactEnd time.Duration
	lastContactCap float64
	everContacted  bool
	defaultCap     float64
}

// NewCAETXEstimator builds a baseline estimator with the given default
// contact capacity in packets/second (must be positive; falls back to 0.05).
func NewCAETXEstimator(defaultCapacityPPS float64) *CAETXEstimator {
	if defaultCapacityPPS <= 0 {
		defaultCapacityPPS = 0.05
	}
	return &CAETXEstimator{defaultCap: defaultCapacityPPS}
}

// Observe mirrors GatewayEstimator.Observe but accumulates long-term
// statistics rather than an EWMA.
func (e *CAETXEstimator) Observe(now time.Duration, connected bool, capacityPPS float64, tDelta time.Duration) {
	if tDelta < 0 {
		tDelta = 0
	}
	var pst float64
	switch {
	case connected:
		cap := capacityPPS
		if cap <= 0 {
			cap = e.defaultCap
		}
		pst = 1/cap + tDelta.Seconds()
		e.lastContactEnd = now
		e.lastContactCap = cap
		e.everContacted = true
	case e.everContacted:
		pst = 1/e.lastContactCap + (now - e.lastContactEnd).Seconds() + tDelta.Seconds()
	default:
		pst = 1/e.defaultCap + now.Seconds() + tDelta.Seconds()
	}
	// Welford's online mean/variance.
	e.n++
	d := pst - e.mean
	e.mean += d / float64(e.n)
	e.m2 += d * (pst - e.mean)
}

// CAETX returns the long-term mean packet service time in seconds (+Inf
// before any observation).
func (e *CAETXEstimator) CAETX() float64 {
	if e.n == 0 {
		return math.Inf(1)
	}
	return e.mean
}

// Variance returns the long-term PST variance (0 with fewer than two
// observations).
func (e *CAETXEstimator) Variance() float64 {
	if e.n < 2 {
		return 0
	}
	return e.m2 / float64(e.n-1)
}

// Observations returns the number of recorded slots.
func (e *CAETXEstimator) Observations() uint64 { return e.n }
