package core

import (
	"math"
	"testing"
	"time"
)

func TestETXEstimatorBasics(t *testing.T) {
	e := NewETXEstimator(4)
	if !math.IsInf(e.ETX(), 1) {
		t.Fatal("fresh ETX not +Inf")
	}
	e.Record(true)
	e.Record(true)
	if got := e.ETX(); got != 1 {
		t.Fatalf("perfect link ETX = %v", got)
	}
	e.Record(false)
	e.Record(false)
	if got := e.DeliveryRatio(); got != 0.5 {
		t.Fatalf("delivery ratio = %v", got)
	}
	if got := e.ETX(); got != 2 {
		t.Fatalf("ETX = %v, want 2", got)
	}
}

func TestETXSlidingWindow(t *testing.T) {
	e := NewETXEstimator(2)
	e.Record(false)
	e.Record(false)
	e.Record(true)
	e.Record(true)
	// Window of 2 only remembers the two successes.
	if got := e.ETX(); got != 1 {
		t.Fatalf("windowed ETX = %v, want 1", got)
	}
}

func TestETXDeadLink(t *testing.T) {
	e := NewETXEstimator(3)
	for i := 0; i < 5; i++ {
		e.Record(false)
	}
	if !math.IsInf(e.ETX(), 1) {
		t.Fatalf("dead link ETX = %v", e.ETX())
	}
}

func TestETXWindowFloor(t *testing.T) {
	e := NewETXEstimator(0) // clamps to 1
	e.Record(true)
	if got := e.ETX(); got != 1 {
		t.Fatalf("ETX = %v", got)
	}
}

func TestCAETXLongTermMean(t *testing.T) {
	e := NewCAETXEstimator(0.1)
	if !math.IsInf(e.CAETX(), 1) {
		t.Fatal("fresh CA-ETX not +Inf")
	}
	// Two connected slots at capacities 0.1 and 0.05 → PSTs 10 and 20.
	e.Observe(0, true, 0.1, 0)
	e.Observe(3*time.Minute, true, 0.05, 0)
	if got := e.CAETX(); math.Abs(got-15) > 1e-9 {
		t.Fatalf("CA-ETX mean = %v, want 15", got)
	}
	if got := e.Variance(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("variance = %v, want 50", got)
	}
	if e.Observations() != 2 {
		t.Fatalf("observations = %d", e.Observations())
	}
}

func TestCAETXStaleness(t *testing.T) {
	// The paper's core argument (Sec. III-C): after a long stable history
	// the long-term CA-ETX reacts sluggishly to a sudden disconnection,
	// while RCA-ETX (EWMA) tracks it. Reproduce that ordering.
	cfg := DefaultGatewayConfig()
	rca := mustEstimator(t, cfg)
	ca := NewCAETXEstimator(cfg.DefaultCapacity)

	now := time.Duration(0)
	for i := 0; i < 100; i++ { // long good history: PST 10 s
		rca.Observe(now, true, 0.1, 0)
		ca.Observe(now, true, 0.1, 0)
		now += cfg.Delta
	}
	for i := 0; i < 10; i++ { // sudden disconnection
		rca.Observe(now, false, 0, 0)
		ca.Observe(now, false, 0, 0)
		now += cfg.Delta
	}
	if rca.RCAETX() <= ca.CAETX() {
		t.Fatalf("RCA-ETX %v should exceed stale CA-ETX %v after disconnection", rca.RCAETX(), ca.CAETX())
	}
}

func TestCAETXDefaultCapacityFallback(t *testing.T) {
	e := NewCAETXEstimator(-1) // invalid → falls back to 0.05
	e.Observe(0, true, 0, 0)
	if got := e.CAETX(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("CA-ETX = %v, want 20 (1/0.05)", got)
	}
}

func TestCAETXNeverContacted(t *testing.T) {
	e := NewCAETXEstimator(0.1)
	e.Observe(10*time.Minute, false, 0, 0)
	// 1/0.1 + 600 s elapsed.
	if got := e.CAETX(); math.Abs(got-610) > 1e-9 {
		t.Fatalf("orphan CA-ETX = %v, want 610", got)
	}
}
