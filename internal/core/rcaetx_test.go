package core

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func mustEstimator(t *testing.T, cfg GatewayConfig) *GatewayEstimator {
	t.Helper()
	e, err := NewGatewayEstimator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestGatewayConfigValidate(t *testing.T) {
	if err := DefaultGatewayConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	muts := []struct {
		name string
		mut  func(*GatewayConfig)
	}{
		{"alpha 0", func(c *GatewayConfig) { c.Alpha = 0 }},
		{"alpha > 1", func(c *GatewayConfig) { c.Alpha = 1.5 }},
		{"delta 0", func(c *GatewayConfig) { c.Delta = 0 }},
		{"cap 0", func(c *GatewayConfig) { c.DefaultCapacity = 0 }},
		{"phiMin 0", func(c *GatewayConfig) { c.PhiMin = 0 }},
		{"phiMax < phiMin", func(c *GatewayConfig) { c.PhiMax = c.PhiMin / 2 }},
		{"phiMax inf", func(c *GatewayConfig) { c.PhiMax = math.Inf(1) }},
	}
	for _, tt := range muts {
		cfg := DefaultGatewayConfig()
		tt.mut(&cfg)
		if _, err := NewGatewayEstimator(cfg); err == nil {
			t.Errorf("%s: accepted", tt.name)
		}
	}
}

func TestRCAETXBeforeObservation(t *testing.T) {
	e := mustEstimator(t, DefaultGatewayConfig())
	if !math.IsInf(e.RCAETX(), 1) {
		t.Fatalf("fresh estimator RCAETX = %v, want +Inf", e.RCAETX())
	}
	// φ collapses to the stability floor.
	if got := e.Phi(); got != e.Config().PhiMin {
		t.Fatalf("fresh φ = %v, want PhiMin", got)
	}
}

func TestConnectedRPST(t *testing.T) {
	e := mustEstimator(t, DefaultGatewayConfig())
	// First observation seeds the EWMA directly (Eq. 4, t = 0 branch).
	e.Observe(0, true, 0.1, 2*time.Second)
	want := 1/0.1 + 2.0
	if got := e.RCAETX(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("RCAETX = %v, want %v", got, want)
	}
}

func TestEWMAUpdate(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.Alpha = 0.5
	e := mustEstimator(t, cfg)
	e.Observe(0, true, 0.1, 0) // seeds at 10 s
	e.Observe(cfg.Delta, true, 0.05, 0)
	// Eq. 4: 0.5*10 + 0.5*20 = 15.
	if got := e.RCAETX(); math.Abs(got-15) > 1e-9 {
		t.Fatalf("EWMA = %v, want 15", got)
	}
}

func TestAlphaControlsAdaptation(t *testing.T) {
	// Higher α adapts faster: after the same jump in RPST, the high-α
	// estimator must be closer to the new value (Sec. IV-B discussion).
	mk := func(alpha float64) *GatewayEstimator {
		cfg := DefaultGatewayConfig()
		cfg.Alpha = alpha
		return mustEstimator(t, cfg)
	}
	slow, fast := mk(0.1), mk(0.9)
	for _, e := range []*GatewayEstimator{slow, fast} {
		e.Observe(0, true, 1, 0) // 1 s
		e.Observe(3*time.Minute, true, 0.01, 0)
	}
	target := 100.0
	if math.Abs(fast.RCAETX()-target) >= math.Abs(slow.RCAETX()-target) {
		t.Fatalf("α=0.9 (%v) no closer to %v than α=0.1 (%v)", fast.RCAETX(), target, slow.RCAETX())
	}
}

func TestDisconnectedRPSTGrowsWithTime(t *testing.T) {
	// Eq. 3 disconnected branch: estimated delay t − ẗn grows while out
	// of contact, so RCA-ETX must increase monotonically.
	cfg := DefaultGatewayConfig()
	e := mustEstimator(t, cfg)
	e.Observe(0, true, 0.1, 0)
	prev := e.RCAETX()
	for i := 1; i <= 10; i++ {
		now := time.Duration(i) * cfg.Delta
		e.Observe(now, false, 0, 0)
		cur := e.RCAETX()
		if cur <= prev {
			t.Fatalf("slot %d: RCAETX %v did not grow from %v while disconnected", i, cur, prev)
		}
		prev = cur
	}
}

func TestReconnectionRecovers(t *testing.T) {
	cfg := DefaultGatewayConfig()
	e := mustEstimator(t, cfg)
	e.Observe(0, true, 0.1, 0)
	for i := 1; i <= 5; i++ {
		e.Observe(time.Duration(i)*cfg.Delta, false, 0, 0)
	}
	peak := e.RCAETX()
	for i := 6; i <= 12; i++ {
		e.Observe(time.Duration(i)*cfg.Delta, true, 0.1, 0)
	}
	if got := e.RCAETX(); got >= peak {
		t.Fatalf("RCAETX %v did not recover below disconnected peak %v", got, peak)
	}
}

func TestNeverContactedPessimism(t *testing.T) {
	// A device with sink history must look better than one that has
	// never seen a sink, once enough time has passed.
	cfg := DefaultGatewayConfig()
	contacted := mustEstimator(t, cfg)
	orphan := mustEstimator(t, cfg)
	contacted.Observe(0, true, 0.1, 0)
	for i := 1; i <= 20; i++ {
		now := time.Duration(i) * cfg.Delta
		contacted.Observe(now, true, 0.1, 0)
		orphan.Observe(now, false, 0, 0)
	}
	if contacted.RCAETX() >= orphan.RCAETX() {
		t.Fatalf("contacted %v not better than orphan %v", contacted.RCAETX(), orphan.RCAETX())
	}
}

func TestZeroCapacityContactUsesDefault(t *testing.T) {
	cfg := DefaultGatewayConfig()
	e := mustEstimator(t, cfg)
	e.Observe(0, true, 0, 0) // unmeasured capacity
	want := 1 / cfg.DefaultCapacity
	if got := e.RCAETX(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("RCAETX = %v, want default-capacity PST %v", got, want)
	}
}

func TestNegativeTDeltaClamped(t *testing.T) {
	e := mustEstimator(t, DefaultGatewayConfig())
	e.Observe(0, true, 0.1, -time.Hour)
	if got := e.RCAETX(); got != 10 {
		t.Fatalf("RCAETX with negative t∆ = %v, want 10", got)
	}
}

func TestPhiClampsAndInversion(t *testing.T) {
	cfg := DefaultGatewayConfig()
	cfg.PhiMin = 0.001
	cfg.PhiMax = 0.5
	e := mustEstimator(t, cfg)
	// Excellent contact: 1/RCAETX would exceed PhiMax.
	e.Observe(0, true, 100, 0) // RPST = 0.01 s → φ raw = 100
	if got := e.Phi(); got != 0.5 {
		t.Fatalf("φ = %v, want clamped 0.5", got)
	}
	// Terrible contact: long disconnection pushes φ below PhiMin.
	for i := 1; i < 600; i++ {
		e.Observe(time.Duration(i)*cfg.Delta, false, 0, 0)
	}
	if got := e.Phi(); got != 0.001 {
		t.Fatalf("φ = %v, want clamped 0.001", got)
	}
}

func TestClampPhi(t *testing.T) {
	tests := []struct {
		phi  float64
		want float64
	}{
		{0.5, 0.5},
		{2, 1},
		{1e-9, 1e-4},
		{math.Inf(1), 1},
		{math.NaN(), 1e-4},
		{-1, 1e-4},
	}
	for _, tt := range tests {
		if got := ClampPhi(tt.phi, 1e-4, 1); got != tt.want {
			t.Errorf("ClampPhi(%v) = %v, want %v", tt.phi, got, tt.want)
		}
	}
}

func TestObservationsCounter(t *testing.T) {
	e := mustEstimator(t, DefaultGatewayConfig())
	for i := 0; i < 5; i++ {
		e.Observe(time.Duration(i)*time.Minute, i%2 == 0, 0.1, 0)
	}
	if e.Observations() != 5 {
		t.Fatalf("Observations = %d", e.Observations())
	}
}

// Property: RCA-ETX is always positive and finite after the first
// observation, and φ always respects its clamps.
func TestQuickEstimatorInvariants(t *testing.T) {
	cfg := DefaultGatewayConfig()
	f := func(steps []bool, caps []uint8) bool {
		e, err := NewGatewayEstimator(cfg)
		if err != nil {
			return false
		}
		now := time.Duration(0)
		for i, connected := range steps {
			capPPS := 0.0
			if len(caps) > 0 {
				capPPS = float64(caps[i%len(caps)]) / 100
			}
			e.Observe(now, connected, capPPS, time.Second)
			now += cfg.Delta
			v := e.RCAETX()
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return false
			}
			phi := e.Phi()
			if phi < cfg.PhiMin || phi > cfg.PhiMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the estimator implements Eqs. (3)–(4) exactly — for any contact
// pattern, each update equals (1−α)·previous + α·RPST with the RPST computed
// from the branch the pattern selects. This pins the implementation to the
// paper's maths rather than a plausible variant.
func TestQuickEWMAExactSemantics(t *testing.T) {
	cfg := DefaultGatewayConfig()
	const capPPS = 0.1
	f := func(pattern []bool) bool {
		e, err := NewGatewayEstimator(cfg)
		if err != nil {
			return false
		}
		now := time.Duration(0)
		var (
			est           float64
			haveEst       bool
			lastContact   time.Duration
			everContacted bool
		)
		for _, connected := range pattern {
			e.Observe(now, connected, capPPS, 0)
			var rpst float64
			switch {
			case connected:
				rpst = 1 / capPPS
				lastContact = now
				everContacted = true
			case everContacted:
				rpst = 1/capPPS + (now - lastContact).Seconds()
			default:
				rpst = 1/cfg.DefaultCapacity + now.Seconds()
			}
			if !haveEst {
				est = rpst
				haveEst = true
			} else {
				est = (1-cfg.Alpha)*est + cfg.Alpha*rpst
			}
			if math.Abs(e.RCAETX()-est) > 1e-6*math.Max(1, est) {
				return false
			}
			now += cfg.Delta
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkObserve(b *testing.B) {
	e, err := NewGatewayEstimator(DefaultGatewayConfig())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		e.Observe(time.Duration(i)*time.Second, i%3 != 0, 0.1, time.Second)
	}
}
