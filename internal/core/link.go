package core

import (
	"fmt"
	"math"

	"mlorass/internal/radio"
)

// LinkModel maps an overheard broadcast's RSSI to a device-to-device link
// capacity (Eq. 5) and on to RCA-ETX(x, y) = 1/c (Eq. 6).
//
// The linear RSSI→capacity ramp between GammaMin and GammaMax mirrors the
// Contiki link stack the paper cites; users may substitute a hyperbolic
// shape by implementing CapacityFunc.
type LinkModel struct {
	// GammaMinDBm is γ_min: at or below this RSSI the link has zero
	// capacity.
	GammaMinDBm radio.DBm
	// GammaMaxDBm is γ_max: at or above this RSSI the link reaches
	// CMaxPPS.
	GammaMaxDBm radio.DBm
	// CMaxPPS is c_max(x,y), the maximum link service rate in packets
	// per second (one bundled frame per duty-cycled transmission
	// opportunity).
	CMaxPPS float64
	// CapacityFunc optionally replaces the linear ramp; it receives the
	// normalised signal quality in [0, 1] and returns a fraction of
	// CMaxPPS in [0, 1].
	CapacityFunc func(norm float64) float64 `json:"-"`
}

// DefaultLinkModel returns the evaluation's device-to-device model: a linear
// ramp between the SF7 sensitivity floor and a strong-signal ceiling.
func DefaultLinkModel(cmaxPPS float64) LinkModel {
	return LinkModel{GammaMinDBm: -124, GammaMaxDBm: -70, CMaxPPS: cmaxPPS}
}

// Validate reports configuration errors.
func (m LinkModel) Validate() error {
	if m.GammaMaxDBm <= m.GammaMinDBm {
		return fmt.Errorf("core: γmax %v must exceed γmin %v", m.GammaMaxDBm, m.GammaMinDBm)
	}
	if m.CMaxPPS <= 0 {
		return fmt.Errorf("core: cmax %v must be positive", m.CMaxPPS)
	}
	return nil
}

// Capacity computes c(x,y)(t) from an observed RSSI per Eq. (5):
//
//	c = cmax · (γ − γmin)/(γmax − γmin)   for γmin ≤ γ ≤ γmax
//	c = cmax                              for γ > γmax
//	c = 0                                 for γ < γmin
func (m LinkModel) Capacity(rssi radio.DBm) float64 {
	switch {
	case rssi < m.GammaMinDBm:
		return 0
	case rssi > m.GammaMaxDBm:
		return m.CMaxPPS
	}
	norm := float64(rssi.Sub(m.GammaMinDBm)) / float64(m.GammaMaxDBm.Sub(m.GammaMinDBm))
	if m.CapacityFunc != nil {
		f := m.CapacityFunc(norm)
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return m.CMaxPPS * f
	}
	return m.CMaxPPS * norm
}

// RCAETX computes RCA-ETX(x, y) = 1/c per Eq. (6), in seconds. A dead link
// (zero capacity) returns +Inf so it never wins a forwarding comparison.
func (m LinkModel) RCAETX(rssi radio.DBm) float64 {
	c := m.Capacity(rssi)
	if c <= 0 {
		return math.Inf(1)
	}
	return 1 / c
}

// ShouldForwardGreedy implements the RCA-ETX forwarding rule, Eq. (1):
// device x hands its data to neighbour y exactly when
//
//	RCA-ETX(x,S) > RCA-ETX(y,S) + RCA-ETX(x,y).
//
// Infinite own-cost with finite neighbour cost forwards; any non-finite
// right-hand side refuses.
func ShouldForwardGreedy(ownETX, neighbourETX, linkETX float64) bool {
	rhs := neighbourETX + linkETX
	if math.IsNaN(rhs) || math.IsInf(rhs, 1) {
		return false
	}
	return ownETX > rhs
}
