package mlorass_test

import (
	"bytes"
	"math"
	"testing"
	"time"

	"mlorass"
)

func TestPublicRunQuick(t *testing.T) {
	cfg := mlorass.QuickConfig()
	cfg.Duration = 2 * time.Hour
	cfg.Scheme = mlorass.SchemeROBC
	res, err := mlorass.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 || res.Generated == 0 {
		t.Fatalf("empty result: %+v", res)
	}
	if res.Report() == "" {
		t.Fatal("empty report")
	}
}

func TestPublicDefaultsValid(t *testing.T) {
	for _, cfg := range []mlorass.Config{mlorass.DefaultConfig(), mlorass.QuickConfig()} {
		cfg.Normalize()
		if err := cfg.Validate(); err != nil {
			t.Fatalf("default config invalid: %v", err)
		}
	}
}

func TestPublicSchemeAndClassNames(t *testing.T) {
	if mlorass.SchemeNoRouting.String() != "NoRouting" ||
		mlorass.SchemeRCAETX.String() != "RCA-ETX" ||
		mlorass.SchemeROBC.String() != "ROBC" {
		t.Fatal("scheme names do not match the paper's labels")
	}
	if mlorass.ClassModifiedC.String() != "Modified-Class-C" ||
		mlorass.ClassQueueA.String() != "Queue-based-Class-A" {
		t.Fatal("device-class names wrong")
	}
}

func TestPublicMetricRoundTrip(t *testing.T) {
	est, err := mlorass.NewGatewayEstimator(mlorass.DefaultGatewayConfig())
	if err != nil {
		t.Fatal(err)
	}
	est.Observe(0, true, 0.05, 0)
	if got := est.RCAETX(); math.Abs(got-20) > 1e-9 {
		t.Fatalf("RCAETX = %v, want 20", got)
	}
	link := mlorass.DefaultLinkModel(0.05)
	if !mlorass.ShouldForwardGreedy(1000, est.RCAETX(), link.RCAETX(-70)) {
		t.Fatal("greedy rule refused an obvious win")
	}
	if got := mlorass.ROBCTransfer(20, 10, 0.5, 0.5); got != 10 {
		t.Fatalf("ROBCTransfer = %d, want 10", got)
	}
	if got := mlorass.ROBCWeight(20, 10, 0.5, 0.5); got != 20 {
		t.Fatalf("ROBCWeight = %v, want 20", got)
	}
}

func TestPublicDatasetRoundTrip(t *testing.T) {
	ds, err := mlorass.GenerateDataset(3, 5, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mlorass.EncodeDataset(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := mlorass.DecodeDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Routes) != len(ds.Routes) || len(back.Trips) != len(ds.Trips) {
		t.Fatal("dataset round trip lost records")
	}
}

func TestPublicCustomDataset(t *testing.T) {
	ds := &mlorass.Dataset{
		Area: mlorass.SquareArea(4000),
		Routes: []mlorass.Route{{
			ID:       "R",
			SpeedMPS: 6,
			Points:   []mlorass.Point{{X: 500, Y: 2000}, {X: 3500, Y: 2000}},
		}},
		Trips: []mlorass.Trip{
			{ID: 0, RouteID: "R", Start: 0, Duration: time.Hour},
			{ID: 1, RouteID: "R", Start: 10 * time.Minute, Duration: time.Hour, Reverse: true},
		},
	}
	cfg := mlorass.DefaultConfig()
	cfg.Dataset = ds
	cfg.Duration = 90 * time.Minute
	cfg.NumGateways = 1
	res, err := mlorass.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ActiveDevices != 2 {
		t.Fatalf("ActiveDevices = %d, want 2", res.ActiveDevices)
	}
	if res.Delivered == 0 {
		t.Fatal("no deliveries on the custom dataset")
	}
}

func TestPublicGatewaySweepMatchesTables(t *testing.T) {
	if len(mlorass.GatewaySweep()) == 0 {
		t.Fatal("empty gateway sweep")
	}
	// A one-cell sweep renders in every table.
	cfg := mlorass.QuickConfig()
	cfg.Duration = time.Hour
	cfg.Scheme = mlorass.SchemeNoRouting
	res, err := mlorass.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	points := []mlorass.SweepPoint{{
		Environment: mlorass.Urban,
		Scheme:      mlorass.SchemeNoRouting,
		Gateways:    mlorass.GatewaySweep()[0],
		Result:      res,
	}}
	for _, table := range []string{
		mlorass.Fig8Table(points),
		mlorass.Fig9Table(points),
		mlorass.Fig12Table(points),
		mlorass.Fig13Table(points),
	} {
		if table == "" {
			t.Fatal("empty figure table")
		}
	}
}

// TestPublicTelemetryAndStore exercises the telemetry + runstore surface
// through the public API: a traced run captures per-packet events and a
// store-backed sweep round-trips without re-simulating.
func TestPublicTelemetryAndStore(t *testing.T) {
	var buf bytes.Buffer
	cfg := mlorass.QuickConfig()
	cfg.Duration = 2 * time.Hour
	cfg.Telemetry.Trace = mlorass.NewTracer(mlorass.NewJSONLTraceSink(&buf), 1)
	res, err := mlorass.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry.Delay.N() != uint64(res.Delivered) {
		t.Fatalf("delay histogram %d samples, want %d", res.Telemetry.Delay.N(), res.Delivered)
	}
	if p99 := res.Telemetry.Delay.Percentile(99); p99 <= 0 || p99 > res.Delay.Max() {
		t.Fatalf("p99 = %v outside (0, %v]", p99, res.Delay.Max())
	}
	if cfg.Telemetry.Trace.Close() != nil || buf.Len() == 0 {
		t.Fatal("trace sink captured nothing")
	}

	store, err := mlorass.OpenRunStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	base := mlorass.QuickConfig()
	base.Duration = time.Hour
	opts := mlorass.SweepOptions{Workers: 2, Reps: 1, Store: store}
	first, err := mlorass.ParallelSweep(base, mlorass.Urban, opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := mlorass.ParallelSweep(base, mlorass.Urban, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Hits == 0 || st.Puts != uint64(len(first)) {
		t.Fatalf("store stats %+v: second sweep did not reuse artefacts", st)
	}
	if mlorass.Fig8PercentilesAggTable(second) != mlorass.Fig8PercentilesAggTable(first) {
		t.Fatal("cached percentile table differs")
	}
}
